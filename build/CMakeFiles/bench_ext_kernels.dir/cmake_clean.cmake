file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_kernels.dir/bench/ext_kernels.cpp.o"
  "CMakeFiles/bench_ext_kernels.dir/bench/ext_kernels.cpp.o.d"
  "bench_ext_kernels"
  "bench_ext_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
