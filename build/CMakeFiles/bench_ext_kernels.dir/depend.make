# Empty dependencies file for bench_ext_kernels.
# This may be replaced when dependencies are built.
