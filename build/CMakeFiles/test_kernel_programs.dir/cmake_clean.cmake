file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_programs.dir/tests/test_kernel_programs.cpp.o"
  "CMakeFiles/test_kernel_programs.dir/tests/test_kernel_programs.cpp.o.d"
  "test_kernel_programs"
  "test_kernel_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
