# Empty dependencies file for test_kernel_programs.
# This may be replaced when dependencies are built.
