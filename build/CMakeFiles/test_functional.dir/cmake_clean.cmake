file(REMOVE_RECURSE
  "CMakeFiles/test_functional.dir/tests/test_functional.cpp.o"
  "CMakeFiles/test_functional.dir/tests/test_functional.cpp.o.d"
  "test_functional"
  "test_functional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
