# Empty dependencies file for bench_table2_area_scaling.
# This may be replaced when dependencies are built.
