file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_area_scaling.dir/bench/table2_area_scaling.cpp.o"
  "CMakeFiles/bench_table2_area_scaling.dir/bench/table2_area_scaling.cpp.o.d"
  "bench_table2_area_scaling"
  "bench_table2_area_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_area_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
