file(REMOVE_RECURSE
  "libaraxl.a"
)
