
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/masku.cpp" "CMakeFiles/araxl.dir/src/cluster/masku.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/cluster/masku.cpp.o.d"
  "/root/repo/src/cluster/sequencer.cpp" "CMakeFiles/araxl.dir/src/cluster/sequencer.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/cluster/sequencer.cpp.o.d"
  "/root/repo/src/cluster/sldu.cpp" "CMakeFiles/araxl.dir/src/cluster/sldu.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/cluster/sldu.cpp.o.d"
  "/root/repo/src/cluster/vlsu.cpp" "CMakeFiles/araxl.dir/src/cluster/vlsu.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/cluster/vlsu.cpp.o.d"
  "/root/repo/src/common/contracts.cpp" "CMakeFiles/araxl.dir/src/common/contracts.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/common/contracts.cpp.o.d"
  "/root/repo/src/common/fmt.cpp" "CMakeFiles/araxl.dir/src/common/fmt.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/common/fmt.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/araxl.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/common/table.cpp.o.d"
  "/root/repo/src/interconnect/glsu.cpp" "CMakeFiles/araxl.dir/src/interconnect/glsu.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/interconnect/glsu.cpp.o.d"
  "/root/repo/src/interconnect/reqi.cpp" "CMakeFiles/araxl.dir/src/interconnect/reqi.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/interconnect/reqi.cpp.o.d"
  "/root/repo/src/interconnect/ring.cpp" "CMakeFiles/araxl.dir/src/interconnect/ring.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/interconnect/ring.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "CMakeFiles/araxl.dir/src/isa/disasm.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/ew.cpp" "CMakeFiles/araxl.dir/src/isa/ew.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/isa/ew.cpp.o.d"
  "/root/repo/src/isa/instr.cpp" "CMakeFiles/araxl.dir/src/isa/instr.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/isa/instr.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "CMakeFiles/araxl.dir/src/isa/program.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/isa/program.cpp.o.d"
  "/root/repo/src/isa/vtype.cpp" "CMakeFiles/araxl.dir/src/isa/vtype.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/isa/vtype.cpp.o.d"
  "/root/repo/src/kernels/common.cpp" "CMakeFiles/araxl.dir/src/kernels/common.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/kernels/common.cpp.o.d"
  "/root/repo/src/kernels/fconv2d.cpp" "CMakeFiles/araxl.dir/src/kernels/fconv2d.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/kernels/fconv2d.cpp.o.d"
  "/root/repo/src/kernels/fdotproduct.cpp" "CMakeFiles/araxl.dir/src/kernels/fdotproduct.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/kernels/fdotproduct.cpp.o.d"
  "/root/repo/src/kernels/fexp.cpp" "CMakeFiles/araxl.dir/src/kernels/fexp.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/kernels/fexp.cpp.o.d"
  "/root/repo/src/kernels/fmatmul.cpp" "CMakeFiles/araxl.dir/src/kernels/fmatmul.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/kernels/fmatmul.cpp.o.d"
  "/root/repo/src/kernels/fsoftmax.cpp" "CMakeFiles/araxl.dir/src/kernels/fsoftmax.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/kernels/fsoftmax.cpp.o.d"
  "/root/repo/src/kernels/jacobi2d.cpp" "CMakeFiles/araxl.dir/src/kernels/jacobi2d.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/kernels/jacobi2d.cpp.o.d"
  "/root/repo/src/kernels/spmv.cpp" "CMakeFiles/araxl.dir/src/kernels/spmv.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/kernels/spmv.cpp.o.d"
  "/root/repo/src/kernels/stream_triad.cpp" "CMakeFiles/araxl.dir/src/kernels/stream_triad.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/kernels/stream_triad.cpp.o.d"
  "/root/repo/src/lane/lane_group.cpp" "CMakeFiles/araxl.dir/src/lane/lane_group.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/lane/lane_group.cpp.o.d"
  "/root/repo/src/machine/config.cpp" "CMakeFiles/araxl.dir/src/machine/config.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/machine/config.cpp.o.d"
  "/root/repo/src/machine/functional.cpp" "CMakeFiles/araxl.dir/src/machine/functional.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/machine/functional.cpp.o.d"
  "/root/repo/src/machine/inflight.cpp" "CMakeFiles/araxl.dir/src/machine/inflight.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/machine/inflight.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "CMakeFiles/araxl.dir/src/machine/machine.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/machine/machine.cpp.o.d"
  "/root/repo/src/machine/timing.cpp" "CMakeFiles/araxl.dir/src/machine/timing.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/machine/timing.cpp.o.d"
  "/root/repo/src/machine/timing_event.cpp" "CMakeFiles/araxl.dir/src/machine/timing_event.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/machine/timing_event.cpp.o.d"
  "/root/repo/src/mem/axi.cpp" "CMakeFiles/araxl.dir/src/mem/axi.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/mem/axi.cpp.o.d"
  "/root/repo/src/mem/main_memory.cpp" "CMakeFiles/araxl.dir/src/mem/main_memory.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/mem/main_memory.cpp.o.d"
  "/root/repo/src/ppa/area_model.cpp" "CMakeFiles/araxl.dir/src/ppa/area_model.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/ppa/area_model.cpp.o.d"
  "/root/repo/src/ppa/floorplan.cpp" "CMakeFiles/araxl.dir/src/ppa/floorplan.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/ppa/floorplan.cpp.o.d"
  "/root/repo/src/ppa/freq_model.cpp" "CMakeFiles/araxl.dir/src/ppa/freq_model.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/ppa/freq_model.cpp.o.d"
  "/root/repo/src/ppa/power_model.cpp" "CMakeFiles/araxl.dir/src/ppa/power_model.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/ppa/power_model.cpp.o.d"
  "/root/repo/src/ppa/soa.cpp" "CMakeFiles/araxl.dir/src/ppa/soa.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/ppa/soa.cpp.o.d"
  "/root/repo/src/scalar/cva6.cpp" "CMakeFiles/araxl.dir/src/scalar/cva6.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/scalar/cva6.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "CMakeFiles/araxl.dir/src/sim/scheduler.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "CMakeFiles/araxl.dir/src/sim/stats.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/sim/stats.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/araxl.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/trace/trace.cpp.o.d"
  "/root/repo/src/vrf/layout.cpp" "CMakeFiles/araxl.dir/src/vrf/layout.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/vrf/layout.cpp.o.d"
  "/root/repo/src/vrf/mapping.cpp" "CMakeFiles/araxl.dir/src/vrf/mapping.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/vrf/mapping.cpp.o.d"
  "/root/repo/src/vrf/vrf.cpp" "CMakeFiles/araxl.dir/src/vrf/vrf.cpp.o" "gcc" "CMakeFiles/araxl.dir/src/vrf/vrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
