# Empty dependencies file for araxl.
# This may be replaced when dependencies are built.
