file(REMOVE_RECURSE
  "CMakeFiles/test_vrf.dir/tests/test_vrf.cpp.o"
  "CMakeFiles/test_vrf.dir/tests/test_vrf.cpp.o.d"
  "test_vrf"
  "test_vrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
