# Empty dependencies file for test_vrf.
# This may be replaced when dependencies are built.
