file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_kernel_params.dir/bench/table1_kernel_params.cpp.o"
  "CMakeFiles/bench_table1_kernel_params.dir/bench/table1_kernel_params.cpp.o.d"
  "bench_table1_kernel_params"
  "bench_table1_kernel_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_kernel_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
