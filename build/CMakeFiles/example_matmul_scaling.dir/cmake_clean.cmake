file(REMOVE_RECURSE
  "CMakeFiles/example_matmul_scaling.dir/examples/matmul_scaling.cpp.o"
  "CMakeFiles/example_matmul_scaling.dir/examples/matmul_scaling.cpp.o.d"
  "example_matmul_scaling"
  "example_matmul_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matmul_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
