# Empty dependencies file for example_matmul_scaling.
# This may be replaced when dependencies are built.
