file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_perf_scalability.dir/bench/fig6_perf_scalability.cpp.o"
  "CMakeFiles/bench_fig6_perf_scalability.dir/bench/fig6_perf_scalability.cpp.o.d"
  "bench_fig6_perf_scalability"
  "bench_fig6_perf_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_perf_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
