# Empty dependencies file for bench_fig6_perf_scalability.
# This may be replaced when dependencies are built.
