# Empty dependencies file for test_disasm_all.
# This may be replaced when dependencies are built.
