file(REMOVE_RECURSE
  "CMakeFiles/test_disasm_all.dir/tests/test_disasm_all.cpp.o"
  "CMakeFiles/test_disasm_all.dir/tests/test_disasm_all.cpp.o.d"
  "test_disasm_all"
  "test_disasm_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disasm_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
