# Empty dependencies file for test_golden_timing.
# This may be replaced when dependencies are built.
