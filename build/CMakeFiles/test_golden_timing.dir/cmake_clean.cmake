file(REMOVE_RECURSE
  "CMakeFiles/test_golden_timing.dir/tests/test_golden_timing.cpp.o"
  "CMakeFiles/test_golden_timing.dir/tests/test_golden_timing.cpp.o.d"
  "test_golden_timing"
  "test_golden_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
