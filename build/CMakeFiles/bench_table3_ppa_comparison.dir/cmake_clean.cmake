file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ppa_comparison.dir/bench/table3_ppa_comparison.cpp.o"
  "CMakeFiles/bench_table3_ppa_comparison.dir/bench/table3_ppa_comparison.cpp.o.d"
  "bench_table3_ppa_comparison"
  "bench_table3_ppa_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ppa_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
