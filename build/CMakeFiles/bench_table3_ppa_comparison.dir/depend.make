# Empty dependencies file for bench_table3_ppa_comparison.
# This may be replaced when dependencies are built.
