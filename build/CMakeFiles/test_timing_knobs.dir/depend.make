# Empty dependencies file for test_timing_knobs.
# This may be replaced when dependencies are built.
