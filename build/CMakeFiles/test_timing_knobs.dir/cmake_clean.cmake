file(REMOVE_RECURSE
  "CMakeFiles/test_timing_knobs.dir/tests/test_timing_knobs.cpp.o"
  "CMakeFiles/test_timing_knobs.dir/tests/test_timing_knobs.cpp.o.d"
  "test_timing_knobs"
  "test_timing_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
