# Empty dependencies file for bench_fig1_soa_landscape.
# This may be replaced when dependencies are built.
