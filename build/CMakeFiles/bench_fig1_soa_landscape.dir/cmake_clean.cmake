file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_soa_landscape.dir/bench/fig1_soa_landscape.cpp.o"
  "CMakeFiles/bench_fig1_soa_landscape.dir/bench/fig1_soa_landscape.cpp.o.d"
  "bench_fig1_soa_landscape"
  "bench_fig1_soa_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_soa_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
