# Empty dependencies file for bench_ablation_vlen.
# This may be replaced when dependencies are built.
