file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vlen.dir/bench/ablation_vlen.cpp.o"
  "CMakeFiles/bench_ablation_vlen.dir/bench/ablation_vlen.cpp.o.d"
  "bench_ablation_vlen"
  "bench_ablation_vlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
