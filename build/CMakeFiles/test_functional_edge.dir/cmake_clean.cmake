file(REMOVE_RECURSE
  "CMakeFiles/test_functional_edge.dir/tests/test_functional_edge.cpp.o"
  "CMakeFiles/test_functional_edge.dir/tests/test_functional_edge.cpp.o.d"
  "test_functional_edge"
  "test_functional_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_functional_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
