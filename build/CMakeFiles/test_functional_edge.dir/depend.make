# Empty dependencies file for test_functional_edge.
# This may be replaced when dependencies are built.
