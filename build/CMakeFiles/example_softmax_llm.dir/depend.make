# Empty dependencies file for example_softmax_llm.
# This may be replaced when dependencies are built.
