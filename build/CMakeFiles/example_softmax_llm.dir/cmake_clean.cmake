file(REMOVE_RECURSE
  "CMakeFiles/example_softmax_llm.dir/examples/softmax_llm.cpp.o"
  "CMakeFiles/example_softmax_llm.dir/examples/softmax_llm.cpp.o.d"
  "example_softmax_llm"
  "example_softmax_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_softmax_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
