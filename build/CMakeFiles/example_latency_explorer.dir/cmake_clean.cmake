file(REMOVE_RECURSE
  "CMakeFiles/example_latency_explorer.dir/examples/latency_explorer.cpp.o"
  "CMakeFiles/example_latency_explorer.dir/examples/latency_explorer.cpp.o.d"
  "example_latency_explorer"
  "example_latency_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_latency_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
