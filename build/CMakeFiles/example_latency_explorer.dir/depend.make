# Empty dependencies file for example_latency_explorer.
# This may be replaced when dependencies are built.
