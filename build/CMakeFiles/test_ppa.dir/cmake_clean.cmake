file(REMOVE_RECURSE
  "CMakeFiles/test_ppa.dir/tests/test_ppa.cpp.o"
  "CMakeFiles/test_ppa.dir/tests/test_ppa.cpp.o.d"
  "test_ppa"
  "test_ppa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
