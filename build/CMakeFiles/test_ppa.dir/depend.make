# Empty dependencies file for test_ppa.
# This may be replaced when dependencies are built.
