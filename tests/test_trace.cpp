// Tests for the instruction trace and Gantt renderer.
#include <gtest/gtest.h>

#include "kernels/common.hpp"
#include "machine/machine.hpp"
#include "trace/trace.hpp"

namespace araxl {
namespace {

TEST(Trace, RecordsEveryDispatchedInstruction) {
  Machine m(MachineConfig::araxl(16));
  ProgramBuilder pb(m.config().effective_vlen(), "t");
  pb.vsetvli(256, Sew::k64, kLmul1);
  pb.vle(8, 0x10000);
  pb.vfadd_vv(12, 8, 8);
  pb.vse(12, 0x20000);
  InstrTrace trace;
  m.run(pb.take(), &trace);
  // vsetvli executes on the CVA6 side; the three dispatched ops are traced.
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_NE(trace.records()[0].text.find("vle64.v"), std::string::npos);
  EXPECT_NE(trace.records()[1].text.find("vfadd.vv"), std::string::npos);
  EXPECT_NE(trace.records()[2].text.find("vse64.v"), std::string::npos);
}

TEST(Trace, TimesAreOrderedPerRecord) {
  Machine m(MachineConfig::araxl(16));
  auto kernel = make_kernel("jacobi2d");
  const Program prog = kernel->build(m, 64);
  InstrTrace trace;
  const RunStats stats = m.run(prog, &trace);
  EXPECT_GT(trace.size(), 100u);
  for (const TraceRecord& r : trace.records()) {
    EXPECT_LE(r.issued, r.dispatched) << r.text;
    EXPECT_LE(r.dispatched, r.completed) << r.text;
    if (r.first_result > 0) {
      EXPECT_LE(r.dispatched, r.first_result) << r.text;
      EXPECT_LE(r.first_result, r.completed) << r.text;
    }
    EXPECT_LE(r.completed, stats.cycles) << r.text;
  }
}

TEST(Trace, ChainingVisibleInTrace) {
  // A chained consumer starts producing before its producer completes.
  Machine m(MachineConfig::araxl(16));
  ProgramBuilder pb(m.config().effective_vlen(), "chain");
  pb.vsetvli(1024, Sew::k64, kLmul4);
  pb.vle(8, 0x10000);
  pb.vfmul_vv(16, 8, 8);
  InstrTrace trace;
  m.run(pb.take(), &trace);
  ASSERT_EQ(trace.size(), 2u);
  const TraceRecord& load = trace.records()[0];
  const TraceRecord& mul = trace.records()[1];
  EXPECT_LT(mul.first_result, load.completed);
}

TEST(Trace, GanttRendersWindow) {
  Machine m(MachineConfig::araxl(16));
  ProgramBuilder pb(m.config().effective_vlen(), "g");
  pb.vsetvli(512, Sew::k64, kLmul2);
  pb.vle(8, 0x10000);
  pb.vfmacc_vf(16, 2.0, 8);
  pb.vse(16, 0x20000);
  InstrTrace trace;
  const RunStats stats = m.run(pb.take(), &trace);
  const std::string art = trace.gantt(0, stats.cycles, 60);
  EXPECT_NE(art.find("vfmacc.vf"), std::string::npos);
  EXPECT_NE(art.find("load"), std::string::npos);
  EXPECT_NE(art.find('='), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Trace, GanttEmptyWindow) {
  InstrTrace trace;
  const std::string art = trace.gantt(0, 100, 40);
  EXPECT_NE(art.find("no instructions"), std::string::npos);
  EXPECT_THROW(trace.gantt(10, 10), ContractViolation);
}

TEST(Trace, NoTraceSinkMeansNoOverheadPath) {
  // Smoke: running without a sink is identical in stats.
  Machine m1(MachineConfig::araxl(16));
  Machine m2(MachineConfig::araxl(16));
  auto k1 = make_kernel("exp");
  auto k2 = make_kernel("exp");
  const Program p1 = k1->build(m1, 64);
  const Program p2 = k2->build(m2, 64);
  InstrTrace trace;
  EXPECT_EQ(m1.run(p1).cycles, m2.run(p2, &trace).cycles);
}

}  // namespace
}  // namespace araxl
