// Functional tests: every instruction of the RVV subset against golden
// scalar semantics, swept over element widths, vector lengths (including
// edge cases) and masking, through the full machine (so the physical VRF
// mapping is exercised by every check).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "kernels/common.hpp"  // random_doubles
#include "machine/machine.hpp"

namespace araxl {
namespace {

constexpr std::uint64_t kA = 0x10000;  // operand buffers in memory
constexpr std::uint64_t kB = 0x20000;
constexpr std::uint64_t kC = 0x30000;

Machine small_machine() { return Machine(MachineConfig::araxl(8)); }

/// Writes `n` doubles to a vreg directly through the VRF.
void fill_vreg(Machine& m, unsigned vreg, const std::vector<double>& v) {
  for (std::uint64_t i = 0; i < v.size(); ++i) m.vrf().write_f64(vreg, i, v[i]);
}

std::vector<double> rnd(std::uint64_t n, std::uint64_t seed, double lo = -4.0,
                        double hi = 4.0) {
  return random_doubles(n, lo, hi, seed);
}

// ---- element-wise FP ops, parameterized over (op, vl) ----------------------

struct FpCase {
  const char* name;
  // emits op with vd=16, vs2=8, vs1=12, fs=1.5
  std::function<void(ProgramBuilder&)> emit;
  // reference: f(vs2_elem, vs1_elem, old_vd_elem)
  std::function<double(double, double, double)> ref;
};

const double kFs = 1.5;

const std::vector<FpCase>& fp_cases() {
  static const std::vector<FpCase> cases{
      {"vfadd_vv", [](ProgramBuilder& pb) { pb.vfadd_vv(16, 8, 12); },
       [](double a, double b, double) { return a + b; }},
      {"vfadd_vf", [](ProgramBuilder& pb) { pb.vfadd_vf(16, 8, kFs); },
       [](double a, double, double) { return a + kFs; }},
      {"vfsub_vv", [](ProgramBuilder& pb) { pb.vfsub_vv(16, 8, 12); },
       [](double a, double b, double) { return a - b; }},
      {"vfsub_vf", [](ProgramBuilder& pb) { pb.vfsub_vf(16, 8, kFs); },
       [](double a, double, double) { return a - kFs; }},
      {"vfrsub_vf", [](ProgramBuilder& pb) { pb.vfrsub_vf(16, 8, kFs); },
       [](double a, double, double) { return kFs - a; }},
      {"vfmul_vv", [](ProgramBuilder& pb) { pb.vfmul_vv(16, 8, 12); },
       [](double a, double b, double) { return a * b; }},
      {"vfmul_vf", [](ProgramBuilder& pb) { pb.vfmul_vf(16, 8, kFs); },
       [](double a, double, double) { return a * kFs; }},
      {"vfdiv_vv", [](ProgramBuilder& pb) { pb.vfdiv_vv(16, 8, 12); },
       [](double a, double b, double) { return a / b; }},
      {"vfdiv_vf", [](ProgramBuilder& pb) { pb.vfdiv_vf(16, 8, kFs); },
       [](double a, double, double) { return a / kFs; }},
      {"vfrdiv_vf", [](ProgramBuilder& pb) { pb.vfrdiv_vf(16, 8, kFs); },
       [](double a, double, double) { return kFs / a; }},
      {"vfmacc_vv", [](ProgramBuilder& pb) { pb.vfmacc_vv(16, 12, 8); },
       [](double a, double b, double d) { return std::fma(b, a, d); }},
      {"vfmacc_vf", [](ProgramBuilder& pb) { pb.vfmacc_vf(16, kFs, 8); },
       [](double a, double, double d) { return std::fma(kFs, a, d); }},
      {"vfnmsac_vv", [](ProgramBuilder& pb) { pb.vfnmsac_vv(16, 12, 8); },
       [](double a, double b, double d) { return std::fma(-b, a, d); }},
      {"vfnmsac_vf", [](ProgramBuilder& pb) { pb.vfnmsac_vf(16, kFs, 8); },
       [](double a, double, double d) { return std::fma(-kFs, a, d); }},
      {"vfmadd_vf", [](ProgramBuilder& pb) { pb.vfmadd_vf(16, kFs, 8); },
       [](double a, double, double d) { return std::fma(d, kFs, a); }},
      {"vfmadd_vv", [](ProgramBuilder& pb) { pb.vfmadd_vv(16, 12, 8); },
       [](double a, double b, double d) { return std::fma(d, b, a); }},
      {"vfmsac_vf", [](ProgramBuilder& pb) { pb.vfmsac_vf(16, kFs, 8); },
       [](double a, double, double d) { return std::fma(kFs, a, -d); }},
      {"vfmin_vv", [](ProgramBuilder& pb) { pb.vfmin_vv(16, 8, 12); },
       [](double a, double b, double) { return std::fmin(a, b); }},
      {"vfmax_vf", [](ProgramBuilder& pb) { pb.vfmax_vf(16, 8, kFs); },
       [](double a, double, double) { return std::fmax(a, kFs); }},
      {"vfsgnj_vv", [](ProgramBuilder& pb) { pb.vfsgnj_vv(16, 8, 12); },
       [](double a, double b, double) { return std::copysign(a, b); }},
      {"vfsgnjn_vv", [](ProgramBuilder& pb) { pb.vfsgnjn_vv(16, 8, 12); },
       [](double a, double b, double) { return std::copysign(a, -b); }},
  };
  return cases;
}

struct FpParam {
  std::size_t case_idx;
  std::uint64_t vl;
};

class FpElementwise : public testing::TestWithParam<FpParam> {};

TEST_P(FpElementwise, MatchesGolden) {
  const FpCase& c = fp_cases()[GetParam().case_idx];
  const std::uint64_t vl = GetParam().vl;
  Machine m = small_machine();
  const auto a = rnd(vl, 1);
  const auto b = rnd(vl, 2);
  const auto d0 = rnd(vl, 3);

  ProgramBuilder pb(m.config().effective_vlen(), c.name);
  const std::uint64_t granted = pb.vsetvli(vl, Sew::k64, kLmul2);
  ASSERT_EQ(granted, vl);
  c.emit(pb);
  const Program prog = pb.take();

  fill_vreg(m, 8, a);
  fill_vreg(m, 12, b);
  fill_vreg(m, 16, d0);
  m.run(prog);

  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i), c.ref(a[i], b[i], d0[i]))
        << c.name << " at element " << i;
  }
}

std::vector<FpParam> fp_params() {
  std::vector<FpParam> out;
  for (std::size_t i = 0; i < fp_cases().size(); ++i) {
    for (const std::uint64_t vl : {1ull, 7ull, 64ull, 256ull}) {
      out.push_back({i, vl});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllFpOps, FpElementwise, testing::ValuesIn(fp_params()),
                         [](const testing::TestParamInfo<FpParam>& info) {
                           return std::string(fp_cases()[info.param.case_idx].name) +
                                  "_vl" + std::to_string(info.param.vl);
                         });

// ---- masking ----------------------------------------------------------------

TEST(Masked, InactiveElementsUndisturbed) {
  Machine m = small_machine();
  const std::uint64_t vl = 100;
  const auto a = rnd(vl, 4);
  const auto d0 = rnd(vl, 5);

  ProgramBuilder pb(m.config().effective_vlen(), "masked");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vfadd_vf(16, 8, 1.0, /*masked=*/true);
  const Program prog = pb.take();

  fill_vreg(m, 8, a);
  fill_vreg(m, 16, d0);
  Rng rng(77);
  std::vector<bool> mask(vl);
  for (std::uint64_t i = 0; i < vl; ++i) {
    mask[i] = rng.next_below(2) == 1;
    m.vrf().set_mask_bit(0, i, mask[i]);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const double expect = mask[i] ? a[i] + 1.0 : d0[i];
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i), expect) << i;
  }
}

TEST(Masked, CompareThenMergeSelects) {
  Machine m = small_machine();
  const std::uint64_t vl = 64;
  const auto a = rnd(vl, 6);

  ProgramBuilder pb(m.config().effective_vlen(), "cmp-merge");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vmfgt_vf(0, 8, 0.0);        // mask = a > 0
  pb.vfmerge_vfm(16, 8, -7.0);   // vd = mask ? -7.0 : a
  const Program prog = pb.take();
  fill_vreg(m, 8, a);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i), a[i] > 0.0 ? -7.0 : a[i]) << i;
  }
}

TEST(Masked, MaskLogicalOps) {
  Machine m = small_machine();
  const std::uint64_t vl = 96;
  ProgramBuilder pb(m.config().effective_vlen(), "mask-logic");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vmflt_vf(4, 8, 0.0);   // m1 = a < 0
  pb.vmfgt_vf(5, 8, -1.0);  // m2 = a > -1
  pb.vmand_mm(6, 4, 5);
  pb.vmor_mm(7, 4, 5);
  pb.vmxor_mm(9, 4, 5);
  pb.vmandn_mm(10, 4, 5);   // m1 AND NOT m2
  const Program prog = pb.take();
  const auto a = rnd(vl, 8, -2.0, 2.0);
  fill_vreg(m, 8, a);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const bool m1 = a[i] < 0.0;
    const bool m2 = a[i] > -1.0;
    EXPECT_EQ(m.vrf().mask_bit(6, i), m1 && m2) << i;
    EXPECT_EQ(m.vrf().mask_bit(7, i), m1 || m2) << i;
    EXPECT_EQ(m.vrf().mask_bit(9, i), m1 != m2) << i;
    EXPECT_EQ(m.vrf().mask_bit(10, i), m1 && !m2) << i;
  }
}

// ---- integer / moves ---------------------------------------------------------

TEST(Integer, AddShiftAndMove) {
  Machine m = small_machine();
  const std::uint64_t vl = 48;
  ProgramBuilder pb(m.config().effective_vlen(), "int");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vid_v(4);
  pb.vadd_vx(6, 4, 100);
  pb.vsll_vx(8, 4, 3);
  pb.vsrl_vx(10, 8, 1);
  pb.vand_vx(12, 4, 0x7);
  pb.vmv_v_x(14, -5);
  pb.vadd_vv(16, 4, 6);
  pb.vsub_vv(18, 6, 4);
  const Program prog = pb.take();
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_EQ(m.vrf().read_elem(4, i, 8), i);
    EXPECT_EQ(m.vrf().read_elem(6, i, 8), i + 100);
    EXPECT_EQ(m.vrf().read_elem(8, i, 8), i << 3);
    EXPECT_EQ(m.vrf().read_elem(10, i, 8), (i << 3) >> 1);
    EXPECT_EQ(m.vrf().read_elem(12, i, 8), i & 0x7);
    EXPECT_EQ(m.vrf().read_i64(14, i), -5);
    EXPECT_EQ(m.vrf().read_elem(16, i, 8), 2 * i + 100);
    EXPECT_EQ(m.vrf().read_elem(18, i, 8), 100u);
  }
}

TEST(Integer, NarrowWidthWraps) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "int8");
  pb.vsetvli(32, Sew::k8, kLmul1);
  pb.vmv_v_x(4, 200);
  pb.vadd_vx(6, 4, 100);  // 300 wraps to 44 in 8 bits
  const Program prog = pb.take();
  m.run(prog);
  EXPECT_EQ(m.vrf().read_elem(6, 0, 1), (200u + 100u) & 0xFF);
}

TEST(Moves, BroadcastAndScalarMove) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "mv");
  pb.vsetvli(32, Sew::k64, kLmul1);
  pb.vfmv_v_f(4, 2.75);
  pb.vfmv_s_f(6, 9.5);
  pb.vmv_v_v(8, 4);
  const Program prog = pb.take();
  m.vrf().write_f64(6, 1, 111.0);  // must stay (vfmv.s.f writes elem 0 only)
  m.run(prog);
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(4, i), 2.75);
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, i), 2.75);
  }
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(6, 0), 9.5);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(6, 1), 111.0);
}

TEST(Moves, ScalarAccumulatorFlow) {
  // vfmv.f.s captures element 0; subsequent _acc ops consume it.
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "acc");
  pb.vsetvli(16, Sew::k64, kLmul1);
  pb.vfmv_s_f(4, 3.0);
  pb.vfmv_f_s(4);           // acc = 3.0
  pb.vfmv_v_f(8, 2.0);
  pb.vfmul_vf_acc(12, 8);   // 2 * 3
  pb.vfrdiv_vf_acc(16, 8);  // 3 / 2
  const Program prog = pb.take();
  m.run(prog);
  EXPECT_DOUBLE_EQ(m.scalar_acc(), 3.0);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 0), 6.0);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, 5), 1.5);
}

TEST(Convert, RoundTripAndRounding) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "cvt");
  pb.vsetvli(8, Sew::k64, kLmul1);
  pb.vfcvt_x_f(8, 4);
  pb.vfcvt_f_x(12, 8);
  const Program prog = pb.take();
  const std::vector<double> xs{0.0, 0.5, 1.5, 2.5, -0.5, -1.5, 3.49, -3.51};
  fill_vreg(m, 4, xs);
  m.run(prog);
  // Round-to-nearest-even.
  const std::vector<std::int64_t> expect{0, 0, 2, 2, 0, -2, 3, -4};
  for (std::uint64_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(m.vrf().read_i64(8, i), expect[i]) << i;
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, i), static_cast<double>(expect[i])) << i;
  }
}

// ---- slides -------------------------------------------------------------------

TEST(Slides, Slide1DownAndUp) {
  Machine m = small_machine();
  const std::uint64_t vl = 70;  // not a multiple of the lane count
  ProgramBuilder pb(m.config().effective_vlen(), "slide1");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vfslide1down(12, 8, -1.0);
  pb.vfslide1up(16, 8, -2.0);
  const Program prog = pb.take();
  const auto a = rnd(vl, 9);
  fill_vreg(m, 8, a);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const double down = i + 1 < vl ? a[i + 1] : -1.0;
    const double up = i == 0 ? -2.0 : a[i - 1];
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, i), down) << i;
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i), up) << i;
  }
}

TEST(Slides, SlideNDownZeroFillsPastVlmax) {
  Machine m = small_machine();
  const std::uint64_t vl = 64;
  ProgramBuilder pb(m.config().effective_vlen(), "sliden");
  const std::uint64_t vlmax1 = pb.vlmax(Sew::k64, kLmul1);
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vslidedown_vx(12, 8, 10);
  const Program prog = pb.take();
  const auto a = rnd(vlmax1, 10);  // fill the whole register
  fill_vreg(m, 8, a);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const double expect = i + 10 < vlmax1 ? a[i + 10] : 0.0;
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, i), expect) << i;
  }
}

TEST(Slides, SlideUpLeavesHeadUndisturbed) {
  Machine m = small_machine();
  const std::uint64_t vl = 40;
  ProgramBuilder pb(m.config().effective_vlen(), "slideup");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vslideup_vx(12, 8, 5);
  const Program prog = pb.take();
  const auto a = rnd(vl, 11);
  const auto d0 = rnd(vl, 12);
  fill_vreg(m, 8, a);
  fill_vreg(m, 12, d0);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const double expect = i < 5 ? d0[i] : a[i - 5];
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, i), expect) << i;
  }
}

TEST(Slides, Slide1DownInPlace) {
  // vd == vs2 is legal for slidedown (reads ahead of writes).
  Machine m = small_machine();
  const std::uint64_t vl = 32;
  ProgramBuilder pb(m.config().effective_vlen(), "inplace");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vfslide1down(8, 8, 42.0);
  const Program prog = pb.take();
  const auto a = rnd(vl, 13);
  fill_vreg(m, 8, a);
  m.run(prog);
  for (std::uint64_t i = 0; i + 1 < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, i), a[i + 1]) << i;
  }
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, vl - 1), 42.0);
}

// ---- reductions ----------------------------------------------------------------

TEST(Reductions, SumMaxMin) {
  Machine m = small_machine();
  const std::uint64_t vl = 200;  // exceeds the LMUL=1 VLMAX of 128
  ProgramBuilder pb(m.config().effective_vlen(), "red");
  ASSERT_EQ(pb.vsetvli(vl, Sew::k64, kLmul2), vl);
  pb.vfmv_s_f(4, 0.5);   // seed
  pb.vfredusum(12, 8, 4);
  pb.vfredmax(13, 8, 4);
  pb.vfredmin(14, 8, 4);
  const Program prog = pb.take();
  const auto a = rnd(vl, 14);
  fill_vreg(m, 8, a);
  m.run(prog);
  double sum = 0.5;
  double mx = 0.5;
  double mn = 0.5;
  for (const double v : a) {
    sum += v;
    mx = std::fmax(mx, v);
    mn = std::fmin(mn, v);
  }
  EXPECT_NEAR(m.vrf().read_f64(12, 0), sum, 1e-9);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(13, 0), mx);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(14, 0), mn);
}

TEST(Reductions, Vl1) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "red1");
  pb.vsetvli(1, Sew::k64, kLmul1);
  pb.vfmv_s_f(4, 10.0);
  pb.vfmv_s_f(8, 32.0);
  pb.vfredusum(12, 8, 4);
  const Program prog = pb.take();
  m.run(prog);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 0), 42.0);
}

// ---- memory -------------------------------------------------------------------

TEST(Memory, UnitStrideRoundTrip) {
  Machine m = small_machine();
  const std::uint64_t vl = 120;
  ProgramBuilder pb(m.config().effective_vlen(), "mem");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vle(8, kA);
  pb.vse(8, kC);
  const Program prog = pb.take();
  const auto a = rnd(vl, 15);
  m.mem().store_doubles(kA, a);
  m.run(prog);
  EXPECT_EQ(m.mem().load_doubles(kC, vl), a);
}

TEST(Memory, MisalignedUnitStride) {
  Machine m = small_machine();
  const std::uint64_t vl = 33;
  ProgramBuilder pb(m.config().effective_vlen(), "mis");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vle(8, kA + 8 * 5 + 0);  // 8-byte aligned but bus-misaligned
  pb.vse(8, kC + 24);
  const Program prog = pb.take();
  const auto a = rnd(vl + 5, 16);
  m.mem().store_doubles(kA, a);
  m.run(prog);
  const auto out = m.mem().load_doubles(kC + 24, vl);
  for (std::uint64_t i = 0; i < vl; ++i) EXPECT_DOUBLE_EQ(out[i], a[i + 5]) << i;
}

TEST(Memory, Strided) {
  Machine m = small_machine();
  const std::uint64_t vl = 50;
  const std::int64_t stride = 40;  // 5 doubles
  ProgramBuilder pb(m.config().effective_vlen(), "strided");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vlse(8, kA, stride);
  pb.vsse(8, kC, 16);
  const Program prog = pb.take();
  const auto a = rnd(vl * 5, 17);
  m.mem().store_doubles(kA, a);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.mem().load<double>(kC + i * 16), a[i * 5]) << i;
  }
}

TEST(Memory, NegativeStride) {
  Machine m = small_machine();
  const std::uint64_t vl = 16;
  ProgramBuilder pb(m.config().effective_vlen(), "negstride");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vlse(8, kA + (vl - 1) * 8, -8);
  const Program prog = pb.take();
  const auto a = rnd(vl, 18);
  m.mem().store_doubles(kA, a);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, i), a[vl - 1 - i]) << i;
  }
}

TEST(Memory, StrideZeroLoadBroadcastsAndStoreLastWins) {
  // stride 0 is legal RVV: every element reads (or writes) the same
  // address. The bulk strided path must preserve the ascending-element
  // order so the *last* element wins the store.
  Machine m = small_machine();
  const std::uint64_t vl = 40;
  ProgramBuilder pb(m.config().effective_vlen(), "stride0");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vlse(8, kA, 0);
  pb.vsse(12, kC, 0);
  const Program prog = pb.take();
  m.mem().store<double>(kA, 2.5);
  fill_vreg(m, 12, rnd(vl, 21));
  const double last = m.vrf().read_f64(12, vl - 1);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, i), 2.5) << i;
  }
  EXPECT_DOUBLE_EQ(m.mem().load<double>(kC), last);
}

TEST(Memory, OverlappingStridedStore) {
  // |stride| < ew: writes overlap. Ascending order means element i+1
  // clobbers the top half of element i — replay the same writes through a
  // scalar reference and compare bytes.
  Machine m = small_machine();
  const std::uint64_t vl = 25;
  const std::int64_t stride = 4;
  ProgramBuilder pb(m.config().effective_vlen(), "overlap");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vsse(12, kC, stride);
  const Program prog = pb.take();
  const auto vals = rnd(vl, 22);
  fill_vreg(m, 12, vals);
  m.run(prog);

  std::vector<std::uint8_t> expect(vl * 4 + 8, 0);
  for (std::uint64_t i = 0; i < vl; ++i) {
    std::memcpy(expect.data() + i * 4, &vals[i], 8);
  }
  for (std::uint64_t b = 0; b < expect.size(); ++b) {
    EXPECT_EQ(m.mem().load<std::uint8_t>(kC + b), expect[b]) << b;
  }
}

TEST(Memory, BulkStridedMatchesPerElementPath) {
  // Differential guard for the bulk constant-stride fast path: the same
  // strided program run masked with an all-true v0 (which takes the
  // per-element fallback) must leave identical architectural state.
  const std::uint64_t vl = 60;
  const std::int64_t stride = 24;
  const auto build = [&](bool masked) {
    ProgramBuilder pb(MachineConfig::araxl(8).effective_vlen(), "diff");
    pb.vsetvli(vl, Sew::k64, kLmul1);
    pb.vlse(8, kA + (vl - 1) * 8, -8);  // descending load
    pb.vsse(8, kC, stride);
    Program prog = pb.take();
    if (masked) {
      for (ProgOp& op : prog.ops) {
        if (auto* in = std::get_if<VInstr>(&op)) {
          if (in->op == Op::kVlse || in->op == Op::kVsse) in->masked = true;
        }
      }
    }
    return prog;
  };

  const auto run = [&](bool masked) {
    auto m = std::make_unique<Machine>(MachineConfig::araxl(8));
    m->mem().store_doubles(kA, rnd(vl, 23));
    for (std::uint64_t i = 0; i < vl; ++i) m->vrf().set_mask_bit(0, i, true);
    m->run(build(masked));
    std::vector<double> out = m->vrf().read_f64_slice(8, vl);
    for (std::uint64_t i = 0; i < vl; ++i) {
      out.push_back(m->mem().load<double>(kC + static_cast<std::uint64_t>(
                                                   static_cast<std::int64_t>(i) *
                                                   stride)));
    }
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Memory, StridedOutOfBoundsIsRejected) {
  // A stride that escapes memory must fail the same way the per-element
  // path always has (the bulk path falls back rather than mapping a bad
  // window).
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "oob");
  pb.vsetvli(16, Sew::k64, kLmul1);
  pb.vlse(8, kA, static_cast<std::int64_t>(m.mem().size() / 4));
  const Program prog = pb.take();
  EXPECT_THROW(m.run(prog), ContractViolation);
}

TEST(Memory, IndexedGatherScatter) {
  Machine m = small_machine();
  const std::uint64_t vl = 64;
  ProgramBuilder pb(m.config().effective_vlen(), "indexed");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vluxei(8, kA, 4);   // gather A[idx]
  pb.vsuxei(8, kC, 6);   // scatter to C at other idx
  const Program prog = pb.take();
  const auto a = rnd(256, 19);
  m.mem().store_doubles(kA, a);
  Rng rng(20);
  std::vector<std::uint64_t> gidx(vl);
  std::vector<std::uint64_t> sidx(vl);
  for (std::uint64_t i = 0; i < vl; ++i) {
    gidx[i] = rng.next_below(256) * 8;
    sidx[i] = i * 8;  // unique scatter targets
    m.vrf().write_elem(4, i, 8, gidx[i]);
    m.vrf().write_elem(6, i, 8, sidx[i]);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.mem().load<double>(kC + sidx[i]), a[gidx[i] / 8]) << i;
  }
}

TEST(Memory, MaskedLoadLeavesInactive) {
  Machine m = small_machine();
  const std::uint64_t vl = 40;
  ProgramBuilder pb(m.config().effective_vlen(), "maskedload");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vle(8, kA, /*masked=*/true);
  const Program prog = pb.take();
  const auto a = rnd(vl, 21);
  const auto d0 = rnd(vl, 22);
  m.mem().store_doubles(kA, a);
  fill_vreg(m, 8, d0);
  for (std::uint64_t i = 0; i < vl; ++i) m.vrf().set_mask_bit(0, i, i % 2 == 0);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, i), i % 2 == 0 ? a[i] : d0[i]) << i;
  }
}

TEST(Memory, Lmul8LongVector) {
  // One vle across an LMUL=8 group spanning multiple registers.
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "lmul8");
  const std::uint64_t vl = pb.vlmax(Sew::k64, kLmul8);
  pb.vsetvli(vl, Sew::k64, kLmul8);
  pb.vle(8, kA);
  pb.vse(8, kC);
  const Program prog = pb.take();
  const auto a = rnd(vl, 23);
  m.mem().store_doubles(kA, a);
  m.run(prog);
  EXPECT_EQ(m.mem().load_doubles(kC, vl), a);
}

// ---- vl edge cases --------------------------------------------------------------

TEST(EdgeCases, VlZeroIsNoOp) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "vl0");
  pb.vsetvli(0, Sew::k64, kLmul1);
  pb.vfadd_vv(16, 8, 12);
  pb.vle(20, kA);
  const Program prog = pb.take();
  const auto d0 = rnd(4, 24);
  fill_vreg(m, 16, d0);
  const RunStats stats = m.run(prog);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, 0), d0[0]);
  EXPECT_GT(stats.cycles, 0u);
}

TEST(EdgeCases, TailUndisturbed) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "tail");
  pb.vsetvli(10, Sew::k64, kLmul1);
  pb.vfmv_v_f(8, 1.0);
  const Program prog = pb.take();
  m.vrf().write_f64(8, 10, 99.0);
  m.vrf().write_f64(8, 20, 98.0);
  m.run(prog);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, 9), 1.0);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, 10), 99.0);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, 20), 98.0);
}

TEST(EdgeCases, Float32Arithmetic) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "f32");
  pb.vsetvli(16, Sew::k32, kLmul1);
  pb.vfadd_vv(16, 8, 12);
  const Program prog = pb.take();
  for (std::uint64_t i = 0; i < 16; ++i) {
    m.vrf().write_f32(8, i, static_cast<float>(i) * 0.5f);
    m.vrf().write_f32(12, i, 1.25f);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(m.vrf().read_f32(16, i), static_cast<float>(i) * 0.5f + 1.25f);
  }
}

}  // namespace
}  // namespace araxl
