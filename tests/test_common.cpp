// Unit tests: common utilities (bits, contracts, fmt, rng, table).
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "common/fmt.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace araxl {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(65536), 16u);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
}

TEST(Bits, AlignUpDown) {
  EXPECT_EQ(align_down(0x1234, 0x100), 0x1200u);
  EXPECT_EQ(align_up(0x1234, 0x100), 0x1300u);
  EXPECT_EQ(align_up(0x1200, 0x100), 0x1200u);
  EXPECT_EQ(align_down(7, 8), 0u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Bits, BitsOf) {
  EXPECT_EQ(bits_of(0xABCD, 4, 8), 0xBCu);
  EXPECT_EQ(bits_of(~0ull, 0, 64), ~0ull);
  EXPECT_EQ(bits_of(0xF0, 4, 4), 0xFu);
}

TEST(Contracts, CheckPassesAndFails) {
  EXPECT_NO_THROW(check(true, "fine"));
  EXPECT_THROW(check(false, "nope"), ContractViolation);
  try {
    check(false, "my message");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("my message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

TEST(Fmt, Numbers) {
  EXPECT_EQ(fmt_f(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.973, 1), "97.3%");
  EXPECT_EQ(fmt_group(0), "0");
  EXPECT_EQ(fmt_group(999), "999");
  EXPECT_EQ(fmt_group(1000), "1,000");
  EXPECT_EQ(fmt_group(12641), "12,641");
  EXPECT_EQ(fmt_group(1234567890), "1,234,567,890");
}

TEST(Fmt, Engineering) {
  EXPECT_EQ(fmt_eng(950.0, 0), "950");
  EXPECT_EQ(fmt_eng(1500.0, 1), "1.5K");
  EXPECT_EQ(fmt_eng(2.5e6, 1), "2.5M");
  EXPECT_EQ(fmt_eng(3e9, 0), "3G");
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UnitRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_unit();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, DoubleRange) {
  Rng rng(9);
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double(-3.0, 5.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
  EXPECT_LT(lo, -2.0);  // covers the range
  EXPECT_GT(hi, 4.0);
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.align_right(1);
  t.add_row({"a", "1"});
  t.add_row({"long-name", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name      |"), std::string::npos);
  EXPECT_NE(out.find("|     1 |"), std::string::npos);
  EXPECT_NE(out.find("| 12345 |"), std::string::npos);
}

TEST(Table, RejectsBadArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, RuleRendering) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + rule between rows + top/bottom = at least 4 rules
  std::size_t rules = 0;
  for (std::size_t p = out.find("+--"); p != std::string::npos;
       p = out.find("+--", p + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

}  // namespace
}  // namespace araxl
