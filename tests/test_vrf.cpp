// Unit tests: VRF element mapping (paper §III-B.2), mask layouts
// (§III-B.5), physical storage, and the reshuffle operation.
#include <gtest/gtest.h>

#include "vrf/vrf.hpp"

namespace araxl {
namespace {

TEST(Mapping, PaperExampleElementToClusterLane) {
  // Paper: element i -> cluster (i/L) mod C, lane i mod L. With L=4, C=4:
  // elements 0..3 in cluster 0 lanes 0..3, 4..7 in cluster 1, etc.
  const VrfMapping map(Topology{4, 4}, 16384);
  EXPECT_EQ(map.cluster_of(0), 0u);
  EXPECT_EQ(map.lane_of(3), 3u);
  EXPECT_EQ(map.cluster_of(4), 1u);
  EXPECT_EQ(map.cluster_of(15), 3u);
  EXPECT_EQ(map.cluster_of(16), 0u);  // wraps to cluster 0, row 1
  EXPECT_EQ(map.row_of(16), 1u);
}

TEST(Mapping, EwIndependentLaneAssignment) {
  // The Ara2/AraXL property: the cluster/lane of element i does not depend
  // on the element width (no cross-lane reshuffles on width changes).
  const VrfMapping map(Topology{8, 4}, 32768);
  for (std::uint64_t i = 0; i < 512; ++i) {
    const VregLoc l8 = map.element_loc(0, i, 8);
    const VregLoc l4 = map.element_loc(0, i, 4);
    const VregLoc l2 = map.element_loc(0, i, 2);
    EXPECT_EQ(l8.cluster, l4.cluster);
    EXPECT_EQ(l8.lane, l4.lane);
    EXPECT_EQ(l4.cluster, l2.cluster);
    EXPECT_EQ(l4.lane, l2.lane);
  }
}

TEST(Mapping, SliceBytes) {
  // 64-lane AraXL: VLEN = 64 Kibit => 65536/8/64 = 128 B per lane per vreg.
  const VrfMapping map(Topology{16, 4}, 65536);
  EXPECT_EQ(map.slice_bytes(), 128u);
  EXPECT_EQ(map.elems_per_reg(8), 1024u);
}

TEST(Mapping, LmulSpillsToNextRegister) {
  const VrfMapping map(Topology{2, 4}, 8192);
  const std::uint64_t epr = map.elems_per_reg(8);  // 128
  const VregLoc loc = map.element_loc(8, epr + 5, 8);
  EXPECT_EQ(loc.vreg, 9u);
  const VregLoc loc2 = map.element_loc(8, 5, 8);
  EXPECT_EQ(loc2.cluster, loc.cluster);  // same offset within register
  EXPECT_EQ(loc2.lane, loc.lane);
  EXPECT_EQ(loc2.byte_offset, loc.byte_offset);
}

TEST(Mapping, SpillPastV31Throws) {
  const VrfMapping map(Topology{2, 4}, 8192);
  EXPECT_THROW(static_cast<void>(map.element_loc(31, map.elems_per_reg(8), 8)),
               ContractViolation);
}

TEST(Mapping, RejectsBadGeometry) {
  EXPECT_THROW(VrfMapping(Topology{3, 4}, 16384), ContractViolation);  // non-pow2
  EXPECT_THROW(VrfMapping(Topology{4, 4}, 12345), ContractViolation);
  // each lane must hold whole 64-bit words: 64 lanes x 64 bits = 4096 min
  EXPECT_THROW(VrfMapping(Topology{16, 4}, 2048), ContractViolation);
}

TEST(MaskLayout, LaneLocalKeepsBitsWithElements) {
  const VrfMapping map(Topology{4, 4}, 16384);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const MaskBitLoc loc = mask_bit_loc(map, MaskLayout::kLaneLocal, i);
    EXPECT_EQ(loc.cluster, map.cluster_of(i));
    EXPECT_EQ(loc.lane, map.lane_of(i));
  }
  EXPECT_DOUBLE_EQ(mask_locality_fraction(map, MaskLayout::kLaneLocal, 256), 1.0);
}

TEST(MaskLayout, StandardLayoutScattersBits) {
  // Under the RVV bitstring layout almost all mask bits live in a different
  // lane than the element they guard — the Ara2 A2A MASKU problem.
  const VrfMapping map(Topology{4, 4}, 16384);
  const double frac = mask_locality_fraction(map, MaskLayout::kStandard, 256);
  EXPECT_LT(frac, 0.2);
}

TEST(MaskLayout, StandardPacksSixtyFourBitsPerWord) {
  const VrfMapping map(Topology{4, 4}, 16384);
  // Bits 0..63 share the first logical 64-bit word (cluster 0, lane 0).
  for (std::uint64_t i = 0; i < 64; ++i) {
    const MaskBitLoc loc = mask_bit_loc(map, MaskLayout::kStandard, i);
    EXPECT_EQ(loc.cluster, 0u);
    EXPECT_EQ(loc.lane, 0u);
  }
  const MaskBitLoc loc64 = mask_bit_loc(map, MaskLayout::kStandard, 64);
  EXPECT_EQ(loc64.cluster, 0u);
  EXPECT_EQ(loc64.lane, 1u);
}

TEST(Vrf, ElementRoundTrip) {
  Vrf vrf(Topology{4, 4}, 16384, MaskLayout::kLaneLocal);
  for (std::uint64_t i = 0; i < 256; ++i) {
    vrf.write_f64(8, i, 1.5 * static_cast<double>(i));
  }
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_DOUBLE_EQ(vrf.read_f64(8, i), 1.5 * static_cast<double>(i));
  }
}

TEST(Vrf, NarrowElements) {
  Vrf vrf(Topology{2, 4}, 8192, MaskLayout::kLaneLocal);
  vrf.write_f32(4, 7, 2.5f);
  EXPECT_FLOAT_EQ(vrf.read_f32(4, 7), 2.5f);
  vrf.write_elem(6, 3, 2, 0xBEEF);
  EXPECT_EQ(vrf.read_elem(6, 3, 2), 0xBEEFu);
  vrf.write_elem(6, 9, 1, 0x7F);
  EXPECT_EQ(vrf.read_elem(6, 9, 1), 0x7Fu);
}

TEST(Vrf, RegistersAreIndependent) {
  Vrf vrf(Topology{2, 4}, 8192, MaskLayout::kLaneLocal);
  vrf.write_i64(3, 0, 111);
  vrf.write_i64(4, 0, 222);
  EXPECT_EQ(vrf.read_i64(3, 0), 111);
  EXPECT_EQ(vrf.read_i64(4, 0), 222);
}

TEST(Vrf, PhysicalPlacementMatchesMapping) {
  Vrf vrf(Topology{4, 4}, 16384, MaskLayout::kLaneLocal);
  const VrfMapping& map = vrf.mapping();
  const std::uint64_t idx = 37;
  vrf.write_elem(5, idx, 8, 0x4142434445464748ull);
  const VregLoc loc = map.element_loc(5, idx, 8);
  // The first byte of the value must be at the mapped physical location.
  EXPECT_EQ(vrf.lane_byte(loc.cluster, loc.lane, loc.vreg, loc.byte_offset), 0x48);
}

TEST(Vrf, MaskBitsRoundTrip) {
  Vrf vrf(Topology{4, 4}, 16384, MaskLayout::kLaneLocal);
  for (std::uint64_t i = 0; i < 128; ++i) {
    vrf.set_mask_bit(0, i, i % 3 == 0);
  }
  for (std::uint64_t i = 0; i < 128; ++i) {
    EXPECT_EQ(vrf.mask_bit(0, i), i % 3 == 0) << i;
  }
}

TEST(Vrf, ReshuffleConvertsLayouts) {
  // Write a pattern in the standard layout, reshuffle to lane-local, and
  // expect identical logical content plus a positive moved-bit count
  // (the SLDU+RINGI traffic of paper §III-B.5).
  Vrf vrf(Topology{4, 4}, 16384, MaskLayout::kStandard);
  const std::uint64_t bits = 256;
  for (std::uint64_t i = 0; i < bits; ++i) {
    vrf.set_mask_bit(7, i, (i * 7) % 5 < 2);
  }
  const std::uint64_t moved =
      vrf.reshuffle_mask(7, MaskLayout::kStandard, MaskLayout::kLaneLocal, bits);
  EXPECT_GT(moved, bits / 2);  // most bits cross lanes
  Vrf check(Topology{4, 4}, 16384, MaskLayout::kLaneLocal);
  for (std::uint64_t i = 0; i < bits; ++i) {
    const MaskBitLoc loc = mask_bit_loc(vrf.mapping(), MaskLayout::kLaneLocal, i);
    const bool bit =
        (vrf.lane_byte(loc.cluster, loc.lane, 7, loc.byte_offset) >> loc.bit) & 1;
    EXPECT_EQ(bit, (i * 7) % 5 < 2) << i;
  }
}

TEST(Vrf, TotalBytesMatchGeometry) {
  // 64-lane, VLEN 64 Kibit: 4 KiB per lane x 64 lanes = 256 KiB of VRF.
  Vrf vrf(Topology{16, 4}, 65536, MaskLayout::kLaneLocal);
  EXPECT_EQ(vrf.total_bytes(), 256u * 1024);
}

}  // namespace
}  // namespace araxl
