// Analysis-layer tests: dataset construction from both sources (result
// store, merged JSON report), the canonical-config round trip into the
// PPA models, filtering, and the determinism contract — the artifact
// bundle must be byte-identical regardless of input order, and every
// figure must be structurally valid SVG/CSV.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "analysis/analysis.hpp"
#include "analysis/svg.hpp"
#include "driver/job.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "ppa/area_model.hpp"
#include "ppa/freq_model.hpp"
#include "store/fingerprint.hpp"

namespace araxl {
namespace {

using analysis::Artifact;
using analysis::Dataset;
using analysis::RowFilter;
using store::StoredResult;

/// A synthetic store entry whose stall partition tiles the slot universe
/// with dyadic fractions, so CSV fractions re-sum to exactly 1.0.
StoredResult entry(const MachineConfig& cfg, const std::string& label,
                   const std::string& kernel, std::uint64_t bpl,
                   std::uint64_t cycles) {
  StoredResult r;
  r.config = store::canonical_config(cfg);
  r.label = label;
  r.kernel = kernel;
  r.bytes_per_lane = bpl;
  r.seed = 0;
  r.version = "v-test";
  r.stats.cycles = cycles;
  r.stats.total_lanes = cfg.total_lanes();
  r.stats.flops = cycles * cfg.total_lanes();  // flop/cycle = lanes
  r.stats.fpu_result_elems = cycles * cfg.total_lanes() / 2;
  const std::uint64_t universe = cycles * cfg.total_lanes() * 8;
  r.stats.fpu_busy_slots = universe / 2;
  r.stats.stall_cycles = {universe / 4,   universe / 8,   universe / 16,
                          universe / 32,  universe / 64,  universe / 128,
                          universe / 128};
  return r;
}

std::vector<StoredResult> sample_entries() {
  std::vector<StoredResult> es;
  es.push_back(entry(MachineConfig::araxl(8), "araxl:8", "exp", 64, 1024));
  es.push_back(entry(MachineConfig::araxl(8), "araxl:8", "axpy", 64, 2048));
  es.push_back(entry(MachineConfig::araxl(64), "araxl:64", "exp", 64, 512));
  es.push_back(entry(MachineConfig::ara2(8), "ara2:8", "exp", 64, 4096));
  return es;
}

TEST(Analysis, CanonicalConfigRoundTripsIntoPpaModels) {
  // dataset_from_store reconstructs the MachineConfig from its canonical
  // serialization; the derived PPA numbers must match the models applied
  // to the original config.
  const MachineConfig cfg = MachineConfig::araxl(64);
  const Dataset ds =
      dataset_from_store(sample_entries(), "v-test", RowFilter{});
  const auto it =
      std::find_if(ds.rows.begin(), ds.rows.end(),
                   [](const analysis::Row& r) { return r.label == "araxl:64"; });
  ASSERT_NE(it, ds.rows.end());
  EXPECT_EQ(it->freq_ghz, FreqModel().freq_ghz(cfg));
  EXPECT_EQ(it->area_mm2, AreaModel().total_mm2(cfg));
  EXPECT_EQ(it->vlen_bits, cfg.effective_vlen());
  EXPECT_EQ(it->family, "araxl");
  EXPECT_EQ(it->stats.total_lanes, 64u);
}

TEST(Analysis, DatasetSortsFiltersAndDropsForeignVersions) {
  std::vector<StoredResult> es = sample_entries();
  es.push_back(entry(MachineConfig::araxl(16), "araxl:16", "exp", 64, 256));
  es.back().version = "v-other";

  const Dataset all = dataset_from_store(es, "v-test", RowFilter{});
  ASSERT_EQ(all.rows.size(), 4u);  // the v-other record is not comparable
  // Sorted by (total_lanes, label, kernel, ...).
  EXPECT_EQ(all.rows[0].label, "ara2:8");
  EXPECT_EQ(all.rows[1].kernel, "axpy");
  EXPECT_EQ(all.rows[2].kernel, "exp");
  EXPECT_EQ(all.rows[3].label, "araxl:64");

  RowFilter f;
  f.kernels = {"exp"};
  f.configs = {"araxl"};
  const Dataset filtered = dataset_from_store(es, "v-test", f);
  ASSERT_EQ(filtered.rows.size(), 2u);
  for (const analysis::Row& r : filtered.rows) {
    EXPECT_EQ(r.kernel, "exp");
    EXPECT_EQ(r.family, "araxl");
  }
}

TEST(Analysis, ReportIsByteIdenticalUnderInputShuffle) {
  // The determinism contract: the artifact bundle depends only on the set
  // of records, never on store order (worker count, shard interleaving).
  std::vector<StoredResult> fwd = sample_entries();
  std::vector<StoredResult> rev = fwd;
  std::reverse(rev.begin(), rev.end());

  const std::vector<Artifact> a =
      build_report(dataset_from_store(fwd, "v-test", RowFilter{}));
  const std::vector<Artifact> b =
      build_report(dataset_from_store(rev, "v-test", RowFilter{}));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].content, b[i].content) << a[i].name;
  }
}

TEST(Analysis, ArtifactBundleIsStructurallyValid) {
  const std::vector<Artifact> arts =
      build_report(dataset_from_store(sample_entries(), "v-test", RowFilter{}));
  const char* expected[] = {
      "summary.txt",     "report.csv",         "pareto_perf_w.csv",
      "pareto_perf_w.svg", "pareto_perf_mm2.csv", "pareto_perf_mm2.svg",
      "scaling.csv",     "scaling.svg",        "stalls.csv",
      "stalls.svg",      "soa_landscape.csv",  "soa_landscape.svg",
  };
  ASSERT_EQ(arts.size(), std::size(expected));
  for (std::size_t i = 0; i < arts.size(); ++i) {
    EXPECT_EQ(arts[i].name, expected[i]);
    EXPECT_FALSE(arts[i].content.empty());
    const std::string& name = arts[i].name;
    const std::string& body = arts[i].content;
    // Machine-readable artifacts may not leak unformatted floating-point
    // garbage. (summary.txt is exempt: "dominant" contains "nan".)
    if (name != "summary.txt") {
      EXPECT_EQ(body.find("nan"), std::string::npos) << name;
      EXPECT_EQ(body.find("inf"), std::string::npos) << name;
    }
    if (name.size() > 4 && name.substr(name.size() - 4) == ".svg") {
      EXPECT_EQ(body.rfind("<svg ", 0), 0u) << name;
      EXPECT_EQ(body.substr(body.size() - 7), "</svg>\n") << name;
    }
    if (name.size() > 4 && name.substr(name.size() - 4) == ".csv") {
      // Header line plus at least one data row.
      EXPECT_GE(std::count(body.begin(), body.end(), '\n'), 2) << name;
    }
  }
}

TEST(Analysis, StallFractionsTileUnityExactly) {
  // The synthetic entries partition the slot universe into dyadic
  // fractions, so the emitted per-group fractions must re-sum to exactly
  // 1.0 — the attribution partition identity surviving the CSV round trip.
  const std::vector<Artifact> arts =
      build_report(dataset_from_store(sample_entries(), "v-test", RowFilter{}));
  const auto it = std::find_if(arts.begin(), arts.end(), [](const Artifact& a) {
    return a.name == "stalls.csv";
  });
  ASSERT_NE(it, arts.end());
  std::size_t rows = 0;
  std::size_t pos = it->content.find('\n') + 1;  // skip header
  while (pos < it->content.size()) {
    const std::size_t end = it->content.find('\n', pos);
    const std::string line = it->content.substr(pos, end - pos);
    pos = end + 1;
    // Skip the two leading label fields, then sum the 8 fractions.
    std::size_t field_start = line.find(',', line.find(',') + 1) + 1;
    double sum = 0.0;
    while (field_start <= line.size()) {
      sum += std::strtod(line.c_str() + field_start, nullptr);
      const std::size_t next = line.find(',', field_start);
      if (next == std::string::npos) break;
      field_start = next + 1;
    }
    EXPECT_EQ(sum, 1.0) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 4u);  // one group per (label, kernel)
}

TEST(Analysis, JsonReportPathConsumesDriverOutput) {
  // End-to-end through the driver's own JSON writer: what `araxl sweep
  // --json` emits, `araxl report --from-json` must consume.
  driver::SweepSpec spec;
  spec.configs.push_back({"araxl:8", MachineConfig::araxl(8)});
  spec.kernels = {"fdotproduct"};
  spec.bytes_per_lane = {64};
  const std::vector<driver::JobResult> results =
      driver::run_sweep(spec, driver::RunnerOptions{});
  const Dataset ds =
      analysis::dataset_from_json_report(driver::to_json(results), RowFilter{});
  ASSERT_EQ(ds.rows.size(), 1u);
  EXPECT_EQ(ds.rows[0].label, "araxl:8");
  EXPECT_EQ(ds.rows[0].kernel, "fdotproduct");
  EXPECT_GT(ds.rows[0].gflops, 0.0);
  EXPECT_GT(ds.rows[0].stats.cycles, 0u);
  // PPA numbers ride the report verbatim — the JSON path never re-derives
  // them from a config it does not have.
  EXPECT_GT(ds.rows[0].freq_ghz, 0.0);
  EXPECT_GT(ds.rows[0].area_mm2, 0.0);
  const std::vector<Artifact> arts = build_report(ds);
  EXPECT_EQ(arts.size(), 12u);
}

TEST(Analysis, SvgEscapeHandlesMarkup) {
  EXPECT_EQ(analysis::svg_escape("a<b&\"c\">"), "a&lt;b&amp;&quot;c&quot;&gt;");
}

}  // namespace
}  // namespace araxl
