// Tests for the persistent result store (src/store/): canonical job
// fingerprints, JSONL round trips, corruption-tolerant loading, the
// runner's cache consultation, and shard/merge determinism.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "driver/job.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/spec.hpp"
#include "store/fingerprint.hpp"
#include "store/json.hpp"
#include "store/merge.hpp"
#include "store/result_store.hpp"
#include "store/version.hpp"

namespace araxl::store {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "araxl_store_test_" + name + ".jsonl";
}

JobKey key_of(const MachineConfig& cfg, const char* kernel, std::uint64_t bpl,
              std::uint64_t seed, const std::string& version = "v-test") {
  return JobKey{canonical_config(cfg), kernel, bpl, seed, version};
}

// ---- fingerprints -----------------------------------------------------------

TEST(Fingerprint, SemanticallyIdenticalConfigsHashIdentically) {
  const MachineConfig base = MachineConfig::araxl(16);

  // An explicit VLEN equal to the paper's configuration rule is the same
  // machine as vlen_bits = 0.
  MachineConfig explicit_vlen = base;
  explicit_vlen.vlen_bits = base.effective_vlen();
  EXPECT_EQ(canonical_config(base), canonical_config(explicit_vlen));

  // The two timing engines are bit-identical by contract, so either
  // engine's result serves both.
  MachineConfig oracle = base;
  oracle.timing_mode = TimingMode::kCycleStepped;
  EXPECT_EQ(canonical_config(base), canonical_config(oracle));

  EXPECT_EQ(fingerprint(key_of(base, "exp", 64, 7)),
            fingerprint(key_of(explicit_vlen, "exp", 64, 7)));
}

TEST(Fingerprint, EveryKeyFieldChangesTheHash) {
  const MachineConfig base = MachineConfig::araxl(16);
  const std::string fp = fingerprint(key_of(base, "exp", 64, 7));

  // Machine knobs.
  for (int knob = 0; knob < 6; ++knob) {
    MachineConfig mod = base;
    switch (knob) {
      case 0: mod.glsu_regs = 4; break;
      case 1: mod.reqi_regs = 1; break;
      case 2: mod.l2_latency = 24; break;
      case 3: mod.vlen_bits = 8192; break;
      case 4: mod.topo = Topology{8, 4}; break;
      // Hierarchy is results-affecting (group hops, tree depths): the same
      // 16 lanes split 2x2x4 must fingerprint differently from 4x4 flat.
      case 5: mod.topo = Topology{2, 4, 2}; break;
    }
    EXPECT_NE(fp, fingerprint(key_of(mod, "exp", 64, 7))) << "knob " << knob;
  }
  // Kernel / size / seed / salt.
  EXPECT_NE(fp, fingerprint(key_of(base, "softmax", 64, 7)));
  EXPECT_NE(fp, fingerprint(key_of(base, "exp", 128, 7)));
  EXPECT_NE(fp, fingerprint(key_of(base, "exp", 64, 8)));
  EXPECT_NE(fp, fingerprint(key_of(base, "exp", 64, 7, "v-other")));
}

// ---- canonical_config coverage ---------------------------------------------
//
// The contract "every results-affecting MachineConfig field appears in
// canonical_config" used to live only in a ROADMAP note. This probe turns
// it into a compile-time tripwire: it counts the aggregate's fields via
// brace-initializability, so growing MachineConfig (or Topology) without
// revisiting the serialization fails this test until the counts — and, for
// a serialized field, canonical_config + kConfigSchemaVersion — are
// updated together.
struct AnyField {
  template <class T>
  constexpr operator T() const;  // NOLINT(google-explicit-constructor)
};

template <class T, std::size_t N>
constexpr bool brace_constructible_with =
    []<std::size_t... I>(std::index_sequence<I...>) {
      return requires { T{((void)I, AnyField{})...}; };
    }(std::make_index_sequence<N>{});

template <class T, std::size_t N = 0>
constexpr std::size_t aggregate_field_count() {
  if constexpr (!brace_constructible_with<T, N + 1>) {
    return N;
  } else {
    return aggregate_field_count<T, N + 1>();
  }
}

TEST(CanonicalConfig, EveryMachineConfigFieldIsSerializedOrExempt) {
  // Keys emitted by canonical_config (store/fingerprint.cpp): kind +
  // clusters/lanes/groups (the whole Topology) + vlen + mem + the 16
  // latency/shape knobs => 20 top-level members covered.
  constexpr std::size_t kSerializedMembers = 20;
  // Explicitly exempt members, each with a reason that must stay true:
  //  * timing_mode      — the two engines are bit-identical by contract;
  //  * watchdog_budget  — liveness-failure policy, never changes the
  //                       RunStats of a run that completes.
  constexpr std::size_t kExemptMembers = 2;

  static_assert(aggregate_field_count<MachineConfig>() ==
                    kSerializedMembers + kExemptMembers,
                "MachineConfig grew or lost a field: update "
                "store::canonical_config (and bump kConfigSchemaVersion) or "
                "the exempt list above, then fix these counts");
  // Topology is serialized as one member above but must itself stay in
  // sync: all three levels are covered by clusters/lanes/groups keys.
  static_assert(aggregate_field_count<Topology>() == 3,
                "Topology grew a field: serialize it in canonical_config, "
                "bump kConfigSchemaVersion, and update this count");

  // The keys themselves must actually appear in the serialization.
  const std::string canon = canonical_config(MachineConfig::araxl(8));
  for (const char* key :
       {"kind=", "clusters=", "lanes=", "groups=", "vlen=", "mem=", "reqi=",
        "glsu=", "ring=", "fpu_lat=", "alu_lat=", "sldu_lat=", "load_lag=",
        "div=", "start=", "uq=", "sq=", "dcache=", "l2=", "red_step=",
        "red_add=", "wb="}) {
    EXPECT_NE(canon.find(key), std::string::npos) << key;
  }
}

TEST(Fingerprint, CanonicalFormIsStableAcrossCalls) {
  const MachineConfig cfg = MachineConfig::ara2(8);
  EXPECT_EQ(canonical_config(cfg), canonical_config(cfg));
  EXPECT_EQ(fingerprint(key_of(cfg, "exp", 64, 0)),
            fingerprint(key_of(cfg, "exp", 64, 0)));
  // 32 lowercase hex characters.
  const std::string fp = fingerprint(key_of(cfg, "exp", 64, 0));
  ASSERT_EQ(fp.size(), 32u);
  for (const char c : fp) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

// ---- store round trip -------------------------------------------------------

StoredResult sample_record(const char* kernel, std::uint64_t bpl,
                           const std::string& version = "v-test") {
  StoredResult r;
  r.config = canonical_config(MachineConfig::araxl(8));
  r.label = "araxl:8";
  r.kernel = kernel;
  r.bytes_per_lane = bpl;
  r.seed = 42;
  r.version = version;
  r.fingerprint = fingerprint(
      JobKey{r.config, r.kernel, r.bytes_per_lane, r.seed, r.version});
  r.stats.cycles = 12345;
  r.stats.total_lanes = 8;
  r.stats.vinstrs = 99;
  r.stats.flops = 1u << 20;
  r.stats.fpu_result_elems = 777;
  r.stats.mem_read_bytes = 4096;
  r.stats.unit_busy_elems[1] = 31337;
  r.stats.stall_cycles[0] = 11;
  r.stats.stall_cycles[4] = 2222;
  r.stats.fpu_busy_slots = 424242;
  r.verified = true;
  r.tolerance = 1e-12;
  r.verify.checked = 512;
  r.verify.max_rel_err = 3.0000000000000004e-13;  // exercises %.17g round trip
  return r;
}

TEST(ResultStoreTest, RoundTripsThroughDisk) {
  const std::string path = temp_path("roundtrip");
  std::remove(path.c_str());
  {
    ResultStore store(path);
    EXPECT_EQ(store.size(), 0u);
    store.put(sample_record("exp", 64));
    store.put(sample_record("softmax", 128));
    store.flush();
  }
  ResultStore store(path);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.load_report().loaded, 2u);
  EXPECT_EQ(store.load_report().bad_lines, 0u);

  const StoredResult expect = sample_record("exp", 64);
  const auto hit = store.find(expect.fingerprint);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kernel, "exp");
  EXPECT_EQ(hit->label, "araxl:8");
  EXPECT_TRUE(hit->stats == expect.stats);
  EXPECT_TRUE(hit->verified);
  EXPECT_EQ(hit->tolerance, expect.tolerance);
  EXPECT_EQ(hit->verify.checked, expect.verify.checked);
  EXPECT_EQ(hit->verify.max_rel_err, expect.verify.max_rel_err);
  EXPECT_FALSE(store.find("no-such-fingerprint").has_value());
  std::remove(path.c_str());
}

TEST(ResultStoreTest, SerializedLineRoundTripsExactly) {
  const StoredResult r = sample_record("exp", 64);
  const std::string line = ResultStore::serialize(r);
  const StoredResult back = ResultStore::deserialize(line);
  EXPECT_EQ(ResultStore::serialize(back), line);
  EXPECT_TRUE(back.stats == r.stats);
}

TEST(ResultStoreTest, LoadSkipsCorruptTruncatedAndTamperedLines) {
  const std::string path = temp_path("corrupt");
  const std::string good1 = ResultStore::serialize(sample_record("exp", 64));
  const std::string good2 = ResultStore::serialize(sample_record("softmax", 64));

  // A line whose stats were edited after writing: checksum fails.
  std::string tampered = ResultStore::serialize(sample_record("jacobi2d", 64));
  const std::size_t pos = tampered.find("\"cycles\":12345");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 14, "\"cycles\":99999");

  // A record whose provenance was re-keyed (fingerprint no longer matches
  // its own fields) but whose checksum is freshly valid.
  StoredResult rekeyed = sample_record("fdotproduct", 64);
  rekeyed.bytes_per_lane = 4096;  // fingerprint still claims bpl=64
  const std::string mismatched = ResultStore::serialize(rekeyed);

  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << good1 << "\n";
    f << "this is not json\n";
    f << good2.substr(0, good2.size() / 2) << "\n";  // truncated mid-record
    f << tampered << "\n";
    f << mismatched << "\n";
    f << good2 << "\n";
  }
  ResultStore store(path);
  EXPECT_EQ(store.size(), 2u);  // good1 + good2 survive
  const LoadReport& lr = store.load_report();
  EXPECT_EQ(lr.lines, 6u);
  EXPECT_EQ(lr.loaded, 2u);
  EXPECT_EQ(lr.bad_lines, 3u);       // garbage, truncated, checksum-tampered
  EXPECT_EQ(lr.fp_mismatches, 1u);   // re-keyed provenance
  EXPECT_TRUE(store.find(sample_record("exp", 64).fingerprint).has_value());
  EXPECT_TRUE(store.find(sample_record("softmax", 64).fingerprint).has_value());
  // The tampered jacobi2d entry must be recomputed, i.e. not served.
  EXPECT_FALSE(store.find(sample_record("jacobi2d", 64).fingerprint).has_value());
  std::remove(path.c_str());
}

TEST(ResultStoreTest, LaterDuplicateSupersedesEarlier) {
  const std::string path = temp_path("dup");
  StoredResult old_rec = sample_record("exp", 64);
  old_rec.stats.cycles = 1;
  // Rewriting stats does not change the fingerprint (same key fields).
  StoredResult new_rec = sample_record("exp", 64);
  new_rec.stats.cycles = 2;
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << ResultStore::serialize(old_rec) << "\n";
    f << ResultStore::serialize(new_rec) << "\n";
  }
  ResultStore store(path);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.load_report().superseded, 1u);
  EXPECT_EQ(store.find(new_rec.fingerprint)->stats.cycles, 2u);
  std::remove(path.c_str());
}

TEST(ResultStoreTest, IndependentWritersOnOneFileDoNotClobber) {
  // Two shard processes sharing one store file: each opens its own
  // ResultStore, computes disjoint jobs, and flushes. Appends interleave
  // at line granularity, so neither writer loses the other's records.
  const std::string path = temp_path("two_writers");
  std::remove(path.c_str());
  ResultStore a(path);
  ResultStore b(path);  // opened before a wrote anything (both see empty)
  a.put(sample_record("exp", 64));
  a.flush();
  b.put(sample_record("softmax", 64));
  b.flush();
  a.put(sample_record("exp", 128));
  a.flush();

  ResultStore merged(path);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.load_report().bad_lines, 0u);
  EXPECT_TRUE(merged.find(sample_record("exp", 64).fingerprint).has_value());
  EXPECT_TRUE(merged.find(sample_record("softmax", 64).fingerprint).has_value());
  EXPECT_TRUE(merged.find(sample_record("exp", 128).fingerprint).has_value());
  std::remove(path.c_str());
}

TEST(ResultStoreTest, GcDropsOnlyStaleVersions) {
  const std::string path = temp_path("gc");
  std::remove(path.c_str());
  ResultStore store(path);
  store.put(sample_record("exp", 64, "v-old"));
  store.put(sample_record("exp", 128, "v-new"));
  store.put(sample_record("softmax", 64, "v-new"));
  EXPECT_EQ(store.gc("v-new"), 1u);  // compacts the file itself

  ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 2u);
  for (const StoredResult& r : reloaded.entries()) {
    EXPECT_EQ(r.version, "v-new");
  }
  std::remove(path.c_str());
}

// ---- runner integration -----------------------------------------------------

driver::SweepSpec small_spec() {
  driver::SweepSpec spec;
  spec.configs = {driver::parse_config_spec("araxl:8"),
                  driver::parse_config_spec("ara2:8")};
  spec.kernels = {"fdotproduct", "stream_triad"};
  spec.bytes_per_lane = {64};
  spec.base_seed = 11;
  return spec;
}

TEST(RunnerCache, WarmRunReplaysEverythingByteIdentically) {
  const std::string path = temp_path("runner");
  std::remove(path.c_str());
  ResultStore store(path);

  driver::RunnerOptions opts;
  opts.workers = 2;
  opts.store = &store;
  opts.cache_salt = "v-test";

  const auto cold = driver::run_sweep(small_spec(), opts);
  ASSERT_EQ(cold.size(), 4u);
  for (const auto& r : cold) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.cache_hit);
  }
  EXPECT_EQ(store.size(), 4u);

  // Reopen from disk (a second process / a resumed sweep).
  ResultStore warm_store(path);
  EXPECT_EQ(warm_store.size(), 4u);
  opts.store = &warm_store;
  const auto warm = driver::run_sweep(small_spec(), opts);
  for (const auto& r : warm) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.cache_hit);
    EXPECT_TRUE(r.verified);
  }
  // Deterministic reports: byte-identical cold vs warm, in both formats.
  EXPECT_EQ(driver::to_json(cold), driver::to_json(warm));
  EXPECT_EQ(driver::to_csv(cold), driver::to_csv(warm));
  // The provenance mode *does* distinguish simulated from replayed.
  driver::ReportOptions live;
  live.live_cache_flags = true;
  EXPECT_NE(driver::to_json(cold, live), driver::to_json(warm, live));
  std::remove(path.c_str());
}

TEST(RunnerCache, RefreshAndNoCacheBypassReplay) {
  const std::string path = temp_path("refresh");
  std::remove(path.c_str());
  ResultStore store(path);

  driver::RunnerOptions opts;
  opts.store = &store;
  opts.cache_salt = "v-test";
  (void)driver::run_sweep(small_spec(), opts);

  opts.refresh = true;
  for (const auto& r : driver::run_sweep(small_spec(), opts)) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.cache_hit);  // recomputed and overwritten
  }
  opts.refresh = false;
  opts.use_cache = false;
  for (const auto& r : driver::run_sweep(small_spec(), opts)) {
    EXPECT_FALSE(r.cache_hit);  // write-only mode never replays
  }
  std::remove(path.c_str());
}

TEST(RunnerCache, StaleSaltAndUnverifiedEntriesAreRecomputed) {
  const std::string path = temp_path("salt");
  std::remove(path.c_str());
  ResultStore store(path);

  // Populate without verification under an old build salt.
  driver::RunnerOptions opts;
  opts.store = &store;
  opts.verify = false;
  opts.cache_salt = "v-old";
  (void)driver::run_sweep(small_spec(), opts);

  // New build: nothing may be served.
  opts.cache_salt = "v-new";
  for (const auto& r : driver::run_sweep(small_spec(), opts)) {
    EXPECT_FALSE(r.cache_hit);
  }
  // Same salt but verification now required: the unverified entries
  // cannot satisfy it, so jobs simulate (and re-store verified results).
  opts.cache_salt = "v-old";
  opts.verify = true;
  for (const auto& r : driver::run_sweep(small_spec(), opts)) {
    EXPECT_FALSE(r.cache_hit);
    EXPECT_TRUE(r.verified);
  }
  // ...after which the verified record satisfies both modes.
  for (const auto& r : driver::run_sweep(small_spec(), opts)) {
    EXPECT_TRUE(r.cache_hit);
  }
  opts.verify = false;
  for (const auto& r : driver::run_sweep(small_spec(), opts)) {
    EXPECT_TRUE(r.cache_hit);
    EXPECT_FALSE(r.verified);  // projected onto the requested options
  }
  std::remove(path.c_str());
}

TEST(RunnerCache, OracleCheckAlwaysSimulates) {
  const std::string path = temp_path("oracle");
  std::remove(path.c_str());
  ResultStore store(path);
  driver::RunnerOptions opts;
  opts.store = &store;
  opts.cache_salt = "v-test";
  (void)driver::run_sweep(small_spec(), opts);

  opts.check_oracle = true;
  for (const auto& r : driver::run_sweep(small_spec(), opts)) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.cache_hit);  // differential mode must really simulate
  }
  std::remove(path.c_str());
}

// ---- sharding + merge -------------------------------------------------------

TEST(ShardMergeDeterminism, MergedShardReportsAreByteIdentical) {
  const driver::SweepSpec spec = small_spec();
  driver::RunnerOptions opts;
  opts.workers = 2;

  const std::vector<driver::Job> all = driver::expand(spec);
  const auto full = driver::run_jobs(all, opts);
  const std::string full_json = driver::to_json(full);
  const std::string full_csv = driver::to_csv(full);

  for (const unsigned shards : {1u, 4u}) {
    std::vector<std::string> json_docs;
    std::vector<std::string> csv_docs;
    for (unsigned i = 1; i <= shards; ++i) {
      const auto slice =
          driver::filter_shard(all, driver::ShardSpec{i, shards});
      const auto results = driver::run_jobs(slice, opts);
      json_docs.push_back(driver::to_json(results));
      csv_docs.push_back(driver::to_csv(results));
    }
    EXPECT_EQ(merge_json_reports(json_docs), full_json) << shards << " shards";
    EXPECT_EQ(merge_csv_reports(csv_docs), full_csv) << shards << " shards";
  }
}

TEST(ShardMergeDeterminism, ShardsPartitionTheJobList) {
  const std::vector<driver::Job> all = driver::expand(small_spec());
  std::vector<bool> seen(all.size(), false);
  for (unsigned i = 1; i <= 3; ++i) {
    for (const driver::Job& j :
         driver::filter_shard(all, driver::ShardSpec{i, 3})) {
      EXPECT_FALSE(seen[j.index]);
      seen[j.index] = true;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_TRUE(seen[i]) << i;
  EXPECT_THROW(
      (void)driver::filter_shard(all, driver::ShardSpec{5, 3}),
      ContractViolation);
  EXPECT_THROW((void)driver::parse_shard_spec("0/4"), ContractViolation);
  EXPECT_THROW((void)driver::parse_shard_spec("nope"), ContractViolation);
  EXPECT_EQ(driver::parse_shard_spec("2/4").index, 2u);
}

TEST(ShardMergeDeterminism, MergeRejectsGapsAndConflicts) {
  const driver::SweepSpec spec = small_spec();
  driver::RunnerOptions opts;
  const std::vector<driver::Job> all = driver::expand(spec);

  const auto s1 = driver::to_json(driver::run_jobs(
      driver::filter_shard(all, driver::ShardSpec{1, 2}), opts));
  const auto s2 = driver::to_json(driver::run_jobs(
      driver::filter_shard(all, driver::ShardSpec{2, 2}), opts));

  // Missing shard → gap in the index space.
  EXPECT_THROW((void)merge_json_reports({s1}), ContractViolation);
  // Duplicate identical shard is idempotent; merge still completes.
  EXPECT_EQ(merge_json_reports({s1, s2, s2}),
            merge_json_reports({s1, s2}));
  // Conflicting record for the same index is rejected.
  std::string forged = s2;
  const std::size_t pos = forged.find("\"cycles\":");
  ASSERT_NE(pos, std::string::npos);
  forged.replace(pos, 10, "\"cycles\":4");
  EXPECT_THROW((void)merge_json_reports({s1, s2, forged}), ContractViolation);
}

// ---- json reader ------------------------------------------------------------

TEST(Json, ParsesAndRejects) {
  const JsonValue v = parse_json(
      R"({"a":1,"b":[true,null,"x\n"],"c":{"d":18446744073709551615}})");
  EXPECT_EQ(v.get("a")->as_u64(), 1u);
  EXPECT_EQ(v.get("b")->items.size(), 3u);
  EXPECT_TRUE(v.get("b")->items[0].as_bool());
  EXPECT_EQ(v.get("b")->items[2].as_string(), "x\n");
  // Full 64-bit integers survive (a double-typed parser would round).
  EXPECT_EQ(v.get("c")->get("d")->as_u64(), 18446744073709551615ull);
  EXPECT_EQ(v.get("missing"), nullptr);

  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "{}junk", "1e"}) {
    EXPECT_THROW((void)parse_json(bad), ContractViolation) << bad;
  }
}

TEST(Version, SaltIncludesGitRevisionAndSchema) {
  const std::string v = build_version();
  EXPECT_NE(v.find("+schema"), std::string::npos);
  EXPECT_EQ(v, std::string(git_revision()) + "+schema" +
                   std::to_string(kConfigSchemaVersion));
}

}  // namespace
}  // namespace araxl::store
