// Integration tests: every Table-I kernel, functionally verified against
// its scalar golden reference on multiple machine configurations and
// weak-scaling points, on both AraXL and the Ara2 baseline.
#include <gtest/gtest.h>

#include "kernels/common.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

struct KernelCase {
  const char* kernel;
  MachineKind kind;
  unsigned lanes;
  std::uint64_t bytes_per_lane;
};

std::string case_name(const testing::TestParamInfo<KernelCase>& info) {
  const KernelCase& c = info.param;
  return std::string(c.kernel) + "_" +
         (c.kind == MachineKind::kAraXL ? "araxl" : "ara2") +
         std::to_string(c.lanes) + "L_" + std::to_string(c.bytes_per_lane) + "B";
}

MachineConfig config_for(const KernelCase& c) {
  return c.kind == MachineKind::kAraXL ? MachineConfig::araxl(c.lanes)
                                       : MachineConfig::ara2(c.lanes);
}

class KernelVerify : public testing::TestWithParam<KernelCase> {};

TEST_P(KernelVerify, MatchesScalarReference) {
  const KernelCase& c = GetParam();
  Machine m(config_for(c));
  auto kernel = make_kernel(c.kernel);
  const Program prog = kernel->build(m, c.bytes_per_lane);
  const RunStats stats = m.run(prog);

  const VerifyResult vr = kernel->verify(m);
  EXPECT_LE(vr.max_rel_err, kernel->tolerance())
      << "kernel result mismatch on " << m.config().name();
  EXPECT_GT(vr.checked, 0u);

  // Timing sanity: the run took at least as long as the FPU-bound floor.
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_GT(stats.flops, 0u);
  EXPECT_LE(stats.fpu_util(), 1.0);
  EXPECT_GE(stats.flops, kernel->useful_flops());
}

std::vector<KernelCase> all_cases() {
  std::vector<KernelCase> cases;
  const char* kernels[] = {"fmatmul", "fconv2d",    "jacobi2d",     "fdotproduct",
                           "exp",     "softmax",    "spmv",         "stream_triad"};
  for (const char* k : kernels) {
    // AraXL at two scales, two weak-scaling points.
    cases.push_back({k, MachineKind::kAraXL, 8, 64});
    cases.push_back({k, MachineKind::kAraXL, 16, 128});
    // Ara2 baseline.
    cases.push_back({k, MachineKind::kAra2, 8, 64});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelVerify, testing::ValuesIn(all_cases()),
                         case_name);

// The big configurations are exercised once per kernel (64-lane AraXL at a
// long-vector point) to keep test time reasonable while still covering the
// paper's headline machine.
class KernelVerify64L : public testing::TestWithParam<const char*> {};

TEST_P(KernelVerify64L, MatchesScalarReferenceAt64Lanes) {
  Machine m(MachineConfig::araxl(64));
  auto kernel = make_kernel(GetParam());
  const Program prog = kernel->build(m, 256);
  m.run(prog);
  const VerifyResult vr = kernel->verify(m);
  EXPECT_LE(vr.max_rel_err, kernel->tolerance());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelVerify64L,
                         testing::Values("fmatmul", "fconv2d", "jacobi2d",
                                         "fdotproduct", "exp", "softmax"));

}  // namespace
}  // namespace araxl
