// Tests for the fault-tolerance layer: the deterministic fault injector
// (src/common/faults.*), store I/O injection + recovery, the runner's
// typed-error classification, retry/backoff on a fake clock, job
// deadlines and cooperative cancellation, and the byte-identity contract
// under chaos (a fault-injected, retried sweep reports identically to a
// clean one).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/faults.hpp"
#include "driver/errors.hpp"
#include "driver/job.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/spec.hpp"
#include "store/result_store.hpp"
#include "store/version.hpp"

namespace araxl {
namespace {

using driver::ErrorKind;
using driver::Job;
using driver::JobResult;
using driver::RunnerOptions;
using driver::SweepSpec;

std::string temp_path(const char* name) {
  // Per-process suffix: concurrent test runs (ctest -j, overlapping CI
  // invocations) must not clobber each other's store files.
  return testing::TempDir() + "araxl_faults_test_" + name + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".jsonl";
}

store::StoredResult record(int i) {
  store::StoredResult r;
  r.version = "v-test";
  r.config = "cfg";
  r.kernel = "exp";
  r.bytes_per_lane = 64;
  r.seed = static_cast<std::uint64_t>(i);
  r.fingerprint = store::fingerprint(
      store::JobKey{r.config, r.kernel, r.bytes_per_lane, r.seed, r.version});
  r.stats.cycles = 100 + static_cast<std::uint64_t>(i);
  return r;
}

// ---- spec parsing -----------------------------------------------------------

TEST(FaultSpec, ParsesAndRoundTripsThroughDescribe) {
  const FaultInjector f("seed=7,store.write=0.25,job=0.5@2,job.hang=0.1");
  EXPECT_EQ(f.seed(), 7u);
  EXPECT_EQ(f.transient_attempts(), 2u);
  EXPECT_EQ(f.describe(), "seed=7,store.write=0.25,job=0.5@2,job.hang=0.1");
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultInjector(""), ContractViolation);
  EXPECT_THROW(FaultInjector("bogus=1"), ContractViolation);
  EXPECT_THROW(FaultInjector("job"), ContractViolation);          // no '='
  EXPECT_THROW(FaultInjector("job=1.5"), ContractViolation);      // rate > 1
  EXPECT_THROW(FaultInjector("job=-0.1"), ContractViolation);     // rate < 0
  EXPECT_THROW(FaultInjector("job=x"), ContractViolation);        // not a number
  EXPECT_THROW(FaultInjector("seed=12x"), ContractViolation);     // not an int
  EXPECT_THROW(FaultInjector("job=0.5@0"), ContractViolation);    // attempts < 1
}

// ---- job-fault determinism --------------------------------------------------

TEST(FaultInjection, JobFaultsArePureFunctionsOfSeedAndFingerprint) {
  const FaultInjector a("seed=3,job=0.5,job.fail=0.2");
  const FaultInjector b("seed=3,job=0.5,job.fail=0.2");
  const FaultInjector other_seed("seed=4,job=0.5,job.fail=0.2");

  int faulted = 0, differs = 0;
  for (int i = 0; i < 256; ++i) {
    const std::string fp = "fp-" + std::to_string(i);
    const auto fa = a.job_fault(fp, 1);
    // Two injectors with the same spec agree on every decision, however
    // many times and in whatever order they are asked.
    EXPECT_EQ(fa, b.job_fault(fp, 1));
    EXPECT_EQ(fa, a.job_fault(fp, 1));
    if (fa != FaultInjector::JobFault::kNone) ++faulted;
    if (fa != other_seed.job_fault(fp, 1)) ++differs;
  }
  // The rates actually bite, and the seed actually matters.
  EXPECT_GT(faulted, 64);
  EXPECT_LT(faulted, 256);
  EXPECT_GT(differs, 0);
}

TEST(FaultInjection, TransientFaultsClearAfterConfiguredAttempts) {
  const FaultInjector f("seed=1,job=1@2");
  EXPECT_EQ(f.job_fault("fp", 1), FaultInjector::JobFault::kTransient);
  EXPECT_EQ(f.job_fault("fp", 2), FaultInjector::JobFault::kTransient);
  EXPECT_EQ(f.job_fault("fp", 3), FaultInjector::JobFault::kNone);

  const FaultInjector permanent("seed=1,job.fail=1");
  for (unsigned attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_EQ(permanent.job_fault("fp", attempt),
              FaultInjector::JobFault::kPermanent);
  }
  // Precedence when rates overlap: hang > permanent > transient.
  const FaultInjector all("seed=1,job=1,job.fail=1,job.hang=1");
  EXPECT_EQ(all.job_fault("fp", 1), FaultInjector::JobFault::kHang);
}

// ---- store I/O injection ----------------------------------------------------

TEST(FaultInjection, StoreOpenFailureKeepsPendingForRetry) {
  const std::string path = temp_path("open_fail");
  std::remove(path.c_str());
  store::ResultStore s(path);
  FaultInjector faults("seed=1,store.open=1");
  s.set_fault_injector(&faults);
  s.put(record(0));
  EXPECT_THROW(s.flush(), store::StoreIoError);
  // Pending survived the failed flush: with the fault gone, everything
  // lands on disk.
  s.set_fault_injector(nullptr);
  s.flush();
  store::ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 1u);
  std::remove(path.c_str());
}

TEST(FaultInjection, ShortWriteTearsTailButLaterFlushRecoversAllRecords) {
  const std::string path = temp_path("short_write");
  std::remove(path.c_str());
  store::ResultStore s(path);
  FaultInjector faults("seed=2,store.write=1");
  s.set_fault_injector(&faults);
  for (int i = 0; i < 3; ++i) s.put(record(i));
  EXPECT_THROW(s.flush(), store::StoreIoError);  // wrote a torn prefix
  s.set_fault_injector(nullptr);
  s.flush();  // re-appends every record as whole lines

  // The corruption-tolerant loader skips the torn line and dedups the
  // doubly-appended records: all three results survive.
  store::ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto hit = reloaded.find(record(i).fingerprint);
    ASSERT_TRUE(hit.has_value()) << "record " << i;
    EXPECT_EQ(hit->stats.cycles, 100u + static_cast<std::uint64_t>(i));
  }
  std::remove(path.c_str());
}

TEST(FaultInjection, ConcurrentWritersSurviveInjectedShortWrites) {
  const std::string path = temp_path("chaos_writers");
  std::remove(path.c_str());
  FaultInjector faults("seed=5,store.write=0.5");

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 8;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      store::ResultStore s(path);  // each writer its own handle, same file
      s.set_fault_injector(&faults);
      for (int i = 0; i < kPerWriter; ++i) {
        s.put(record(w * kPerWriter + i));
        // A failed flush keeps pending; retry until this append survives
        // (rate 0.5 => some sequence number soon passes).
        for (int tries = 0; tries < 1000; ++tries) {
          try {
            s.flush();
            break;
          } catch (const store::StoreIoError&) {
          }
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();

  store::ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), static_cast<std::size_t>(kWriters * kPerWriter));
  for (int i = 0; i < kWriters * kPerWriter; ++i) {
    EXPECT_TRUE(reloaded.find(record(i).fingerprint).has_value())
        << "record " << i << " lost under injected short writes";
  }
  std::remove(path.c_str());
}

TEST(FaultInjection, GcRenameFailureLeavesOriginalStoreIntact) {
  const std::string path = temp_path("gc_rename");
  std::remove(path.c_str());
  {
    store::ResultStore s(path);
    for (int i = 0; i < 3; ++i) s.put(record(i));
    s.flush();
  }
  store::ResultStore s(path);
  FaultInjector faults("seed=1,store.rename=1");
  s.set_fault_injector(&faults);
  EXPECT_THROW((void)s.gc("v-test"), store::StoreIoError);
  // The compaction temp file was discarded and the original is untouched.
  store::ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 3u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---- retry policy -----------------------------------------------------------

TEST(RetryPolicy, BackoffIsExponentialAndCapped) {
  driver::RetryPolicy p;
  p.backoff_ms = 100;
  p.backoff_mult = 2.0;
  p.max_backoff_ms = 500;
  EXPECT_EQ(p.backoff(1), 100u);
  EXPECT_EQ(p.backoff(2), 200u);
  EXPECT_EQ(p.backoff(3), 400u);
  EXPECT_EQ(p.backoff(4), 500u);  // capped
  EXPECT_EQ(p.backoff(9), 500u);

  EXPECT_TRUE(p.retryable(ErrorKind::kInjected));
  EXPECT_FALSE(p.retryable(ErrorKind::kTimeout));
  p.retry_timeouts = true;
  EXPECT_TRUE(p.retryable(ErrorKind::kTimeout));
  EXPECT_FALSE(p.retryable(ErrorKind::kConfig));
  EXPECT_FALSE(p.retryable(ErrorKind::kVerifyFailed));
  EXPECT_FALSE(p.retryable(ErrorKind::kOracleDivergence));
}

// ---- runner integration -----------------------------------------------------

Job small_job() {
  Job job;
  job.index = 0;
  job.config_label = "araxl:8";
  job.cfg = driver::parse_config_spec("araxl:8").cfg;
  job.kernel = "stream_triad";
  job.bytes_per_lane = 64;
  return job;
}

/// Options with a fake clock (advances 1 ms per read) and a recording
/// sleeper, so retry/backoff and deadlines run instantly and observably.
struct FakeTime {
  std::uint64_t now = 0;
  std::vector<std::uint64_t> sleeps;

  void wire(RunnerOptions& opts) {
    opts.clock_ms = [this] { return ++now; };
    opts.sleep_ms = [this](std::uint64_t ms) {
      sleeps.push_back(ms);
      now += ms;
    };
  }
};

TEST(RunnerFaults, TransientInjectedFaultRetriesWithBackoffThenSucceeds) {
  FaultInjector faults("seed=1,job=1@2");  // every job fails attempts 1-2
  FakeTime time;
  RunnerOptions opts;
  opts.faults = &faults;
  opts.retry.max_attempts = 3;
  opts.retry.backoff_ms = 100;
  time.wire(opts);

  const Job job = small_job();
  const JobResult res = driver::run_job(job, opts);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.attempts, 3u);
  EXPECT_EQ(res.error_kind, ErrorKind::kNone);
  // The backoff schedule is jittered deterministically by the job's store
  // fingerprint (decorrelates a fleet retrying in lockstep); reproduce the
  // key the runner derives and expect the exact dithered values.
  const std::string fp = store::fingerprint(
      store::JobKey{store::canonical_config(job.cfg), job.kernel,
                    job.bytes_per_lane, job.seed, store::build_version()});
  ASSERT_EQ(time.sleeps.size(), 2u);  // backoff between the three attempts
  EXPECT_EQ(time.sleeps[0], opts.retry.backoff_jittered(1, fp));
  EXPECT_EQ(time.sleeps[1], opts.retry.backoff_jittered(2, fp));
  // Jitter factor lives in [0.5, 1.5) of the undithered 100/200 schedule.
  EXPECT_GE(time.sleeps[0], 50u);
  EXPECT_LT(time.sleeps[0], 150u);
  EXPECT_GE(time.sleeps[1], 100u);
  EXPECT_LT(time.sleeps[1], 300u);
}

TEST(RetryPolicy, JitterIsDeterministicBoundedAndKeyedOnFingerprint) {
  driver::RetryPolicy p;
  p.backoff_ms = 100;
  p.max_backoff_ms = 5000;
  // Same (fingerprint, retry index) -> same delay, run to run.
  EXPECT_EQ(p.backoff_jittered(1, "fp-a"), p.backoff_jittered(1, "fp-a"));
  // An empty fingerprint falls back to the undithered schedule.
  EXPECT_EQ(p.backoff_jittered(1, ""), p.backoff(1));
  EXPECT_EQ(p.backoff_jittered(3, ""), p.backoff(3));
  // Different fingerprints decorrelate; different indices re-dither.
  bool any_differs = false;
  for (const char* fp : {"fp-a", "fp-b", "fp-c", "fp-d"}) {
    for (unsigned i = 1; i <= 4; ++i) {
      const std::uint64_t base = p.backoff(i);
      const std::uint64_t jit = p.backoff_jittered(i, fp);
      EXPECT_GE(jit, base / 2) << fp << " i=" << i;
      EXPECT_LE(jit, base + base / 2) << fp << " i=" << i;
      EXPECT_LE(jit, p.max_backoff_ms);
      if (jit != base) any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
  EXPECT_NE(p.backoff_jittered(1, "fp-a"), p.backoff_jittered(1, "fp-b"));
}

TEST(RunnerFaults, PermanentInjectedFaultExhaustsAttempts) {
  FaultInjector faults("seed=1,job.fail=1");
  FakeTime time;
  RunnerOptions opts;
  opts.faults = &faults;
  opts.retry.max_attempts = 3;
  time.wire(opts);

  const JobResult res = driver::run_job(small_job(), opts);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error_kind, ErrorKind::kInjected);
  EXPECT_EQ(res.attempts, 3u);
  EXPECT_EQ(time.sleeps.size(), 2u);
}

TEST(RunnerFaults, DeterministicFailuresAreNotRetried) {
  Job bad = small_job();
  bad.cfg.topo.clusters = 3;  // fails validate()
  FakeTime time;
  RunnerOptions opts;
  opts.retry.max_attempts = 5;
  time.wire(opts);

  const JobResult res = driver::run_job(bad, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error_kind, ErrorKind::kConfig);
  EXPECT_EQ(res.attempts, 1u);
  EXPECT_TRUE(time.sleeps.empty());
}

TEST(RunnerFaults, InjectedHangTimesOutViaDeadlineNotAStuckThread) {
  FaultInjector faults("seed=1,job.hang=1");
  FakeTime time;
  RunnerOptions opts;
  opts.faults = &faults;
  opts.job_timeout_s = 0.005;  // 5 fake milliseconds
  opts.retry.max_attempts = 1;
  time.wire(opts);
  opts.sleep_ms = [&time](std::uint64_t ms) { time.now += ms; };  // silent

  const JobResult res = driver::run_job(small_job(), opts);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error_kind, ErrorKind::kTimeout);
  // The deadline diagnostic must stay wall-clock-free (reports are pure
  // functions of the job set).
  EXPECT_EQ(res.error, "job deadline exceeded");
}

TEST(RunnerFaults, ExpiredDeadlineCancelsARealSimulationAsTimeout) {
  // Cycle-stepped engines poll the deadline from cycle 0, so a deadline
  // that expires on the first clock read cancels the run immediately.
  Job job = small_job();
  job.cfg.timing_mode = TimingMode::kCycleStepped;
  RunnerOptions opts;
  opts.job_timeout_s = 0.001;
  std::uint64_t now = 0;
  opts.clock_ms = [&now] {
    now += 10'000;  // every read jumps 10 s: the budget is gone instantly
    return now;
  };

  const JobResult res = driver::run_job(job, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error_kind, ErrorKind::kTimeout);
}

TEST(RunnerFaults, PreRequestedShutdownCancelsQueuedJobs) {
  CancelToken cancel;
  cancel.request();
  RunnerOptions opts;
  opts.cancel = &cancel;
  const JobResult res = driver::run_job(small_job(), opts);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error_kind, ErrorKind::kCancelled);
  EXPECT_EQ(res.attempts, 1u);
}

TEST(RunnerFaults, MidSweepShutdownKeepsFinishedResults) {
  SweepSpec spec;
  spec.configs = {driver::parse_config_spec("araxl:8")};
  spec.kernels = {"stream_triad", "exp", "fdotproduct"};
  spec.bytes_per_lane = {64};

  CancelToken cancel;
  RunnerOptions opts;
  opts.workers = 1;  // deterministic completion order
  opts.cancel = &cancel;
  opts.progress = [&cancel](const JobResult&, std::size_t done, std::size_t) {
    if (done == 1) cancel.request();  // "Ctrl-C" after the first job
  };

  const std::vector<JobResult> results = driver::run_sweep(spec, opts);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].ok);
    EXPECT_EQ(results[i].error_kind, ErrorKind::kCancelled);
  }
}

TEST(RunnerFaults, EnabledControlDoesNotPerturbCompletedRuns) {
  // The cancellation polls must be pure observers: the same job with and
  // without an (unfired) RunControl yields bit-identical stats.
  RunnerOptions plain;
  const JobResult base = driver::run_job(small_job(), plain);
  ASSERT_TRUE(base.ok) << base.error;

  CancelToken never;
  RunnerOptions watched;
  watched.cancel = &never;
  watched.job_timeout_s = 3600.0;  // real clock, far-future deadline
  const JobResult res = driver::run_job(small_job(), watched);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.stats == base.stats);
}

// Kernel whose build() throws a non-std::exception value: the worker loop
// must isolate it like any other failure instead of letting it unwind
// into std::terminate.
class ThrowingKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "throws_int"; }
  [[nodiscard]] double max_perf_factor() const override { return 0.0; }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul1; }
  Program build(Machine&, std::uint64_t) override { throw 42; }
  [[nodiscard]] std::uint64_t useful_flops() const override { return 0; }
  [[nodiscard]] VerifyResult verify(const Machine&) const override {
    return VerifyResult{};
  }
};

TEST(RunnerFaults, NonStdExceptionThrowIsIsolatedAndClassified) {
  driver::KernelRegistry& reg = driver::KernelRegistry::instance();
  if (reg.find("throws_int") == nullptr) {
    driver::KernelInfo info;
    info.name = "throws_int";
    info.factory = [] { return std::make_unique<ThrowingKernel>(); };
    info.default_bpl_grid = {64};
    info.extension = true;
    reg.add(std::move(info));
  }
  Job job = small_job();
  job.kernel = "throws_int";
  const JobResult res = driver::run_job(job, RunnerOptions{});
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error_kind, ErrorKind::kSimulation);
  EXPECT_NE(res.error.find("non-std::exception"), std::string::npos);
}

TEST(RunnerFaults, StoreWriteFailureDegradesToUncachedNotFailed) {
  const std::string path = temp_path("degraded");
  std::remove(path.c_str());
  store::ResultStore s(path);
  FaultInjector faults("seed=1,store.open=1");  // store I/O only, no job faults
  s.set_fault_injector(&faults);
  RunnerOptions opts;
  opts.store = &s;

  const JobResult res = driver::run_job(small_job(), opts);
  EXPECT_TRUE(res.ok) << res.error;  // the simulation itself succeeded
  EXPECT_EQ(res.error_kind, ErrorKind::kNone);
  EXPECT_TRUE(res.store_degraded);
  EXPECT_FALSE(res.store_warning.empty());
  EXPECT_FALSE(res.cache_hit);
  std::remove(path.c_str());
}

// ---- byte-identity under chaos ----------------------------------------------

TEST(RunnerFaults, RetriedSweepReportsByteIdenticalToCleanSweep) {
  SweepSpec spec;
  spec.configs = {driver::parse_config_spec("araxl:8"),
                  driver::parse_config_spec("ara2:8")};
  spec.kernels = {"stream_triad", "exp"};
  spec.bytes_per_lane = {64};

  RunnerOptions clean;
  clean.workers = 2;
  const auto clean_results = driver::run_sweep(spec, clean);
  for (const JobResult& r : clean_results) ASSERT_TRUE(r.ok) << r.error;

  // Every job fails its first attempt, then succeeds on retry. Attempts
  // are provenance (zeroed in reports), so the chaos run's report must be
  // byte-identical to the clean run's — the acceptance contract the CI
  // chaos job enforces end to end.
  FaultInjector faults("seed=9,job=1");
  FakeTime time;
  RunnerOptions chaos;
  chaos.workers = 2;
  chaos.faults = &faults;
  chaos.retry.max_attempts = 3;
  time.wire(chaos);
  const auto chaos_results = driver::run_sweep(spec, chaos);
  for (const JobResult& r : chaos_results) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.attempts, 2u);
  }

  EXPECT_EQ(driver::to_json(clean_results), driver::to_json(chaos_results));
  EXPECT_EQ(driver::to_csv(clean_results), driver::to_csv(chaos_results));

  // With live provenance requested, the retries become visible.
  driver::ReportOptions live;
  live.live_provenance = true;
  EXPECT_NE(driver::to_json(clean_results, live),
            driver::to_json(chaos_results, live));
}

TEST(Report, FailedJobsCarryTheirStatusKind) {
  FaultInjector faults("seed=1,job.fail=1");
  RunnerOptions opts;
  opts.faults = &faults;
  opts.retry.max_attempts = 1;
  const std::vector<JobResult> results = {driver::run_job(small_job(), opts)};
  const std::string json = driver::to_json(results);
  EXPECT_NE(json.find("\"status\":\"injected\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  const std::string csv = driver::to_csv(results);
  EXPECT_NE(csv.find(",injected,"), std::string::npos);
}

}  // namespace
}  // namespace araxl
