#!/bin/sh
# CLI exit-code contract (documented in `araxl --help`):
#   0  every job succeeded          2  usage or configuration error
#   1  one or more jobs failed      3  internal or store I/O error
# Driven end to end through the built binary with deterministic fault
# injection, so the codes stay a contract rather than an accident.
set -u

ARAXL=${1:?usage: cli_exit_codes.sh /path/to/araxl}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" || exit 99

fails=0
expect() {
  desc=$1
  want=$2
  shift 2
  "$@" >stdout.log 2>stderr.log
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: expected exit $want, got $got" >&2
    sed 's/^/  stderr: /' stderr.log >&2
    fails=$((fails + 1))
  else
    echo "ok: $desc (exit $got)"
  fi
}

run_ok="$ARAXL run --kernel stream_triad --config araxl:8 --bpl 64 --store cache.jsonl --quiet"

# 0 — clean success (and the resume path: the rerun replays from the store).
expect "clean run succeeds" 0 $run_ok
expect "rerun resumes from store" 0 $run_ok

# 1 — job failures: every job is injected to fail permanently.
expect "injected job failure" 1 \
  "$ARAXL" run --kernel stream_triad --config araxl:8 --bpl 64 \
  --no-cache --quiet --retries 0 --inject-faults seed=1,job.fail=1

# 2 — usage and configuration errors.
expect "unknown kernel" 2 "$ARAXL" run --kernel no_such_kernel --no-cache --quiet
expect "malformed config spec" 2 \
  "$ARAXL" run --kernel exp --config araxl:not-a-number --no-cache --quiet
expect "malformed fault spec" 2 \
  "$ARAXL" run --kernel exp --config araxl:8 --bpl 64 --no-cache --quiet \
  --inject-faults bogus=1
expect "missing flag value" 2 "$ARAXL" sweep --configs

# 3 — store I/O errors: gc's compaction rename is injected to fail.
expect "injected gc rename failure" 3 \
  "$ARAXL" cache gc --store cache.jsonl --inject-faults seed=1,store.rename=1
expect "store survived the failed gc" 0 \
  "$ARAXL" cache stats --store cache.jsonl

# The JSON report carries the per-job status classification.
"$ARAXL" run --kernel stream_triad --config araxl:8 --bpl 64 --no-cache --quiet \
  --retries 0 --inject-faults seed=1,job.fail=1 --json report.json
grep -q '"status":"injected"' report.json || {
  echo "FAIL: report.json lacks status=injected" >&2
  fails=$((fails + 1))
}
"$ARAXL" run --kernel stream_triad --config araxl:8 --bpl 64 --no-cache --quiet \
  --json clean.json
grep -q '"status":"ok"' clean.json || {
  echo "FAIL: clean.json lacks status=ok" >&2
  fails=$((fails + 1))
}

# Fleet orchestration: serve -> worker -> merge --ledger round-trips with
# the same exit-code contract.
serve_axes="--configs araxl:8 --kernels stream_triad --bpl 64"
expect "serve enqueues a ledger" 0 \
  "$ARAXL" serve --ledger fleet.jsonl $serve_axes
expect "serve refuses an existing ledger" 2 \
  "$ARAXL" serve --ledger fleet.jsonl $serve_axes
expect "merge --ledger refuses an incomplete ledger" 2 \
  "$ARAXL" merge --ledger fleet.jsonl --json fleet.json
expect "worker drains the ledger" 0 \
  "$ARAXL" worker --ledger fleet.jsonl --id w1 --store cache.jsonl --quiet
expect "merge --ledger assembles the report" 0 \
  "$ARAXL" merge --ledger fleet.jsonl --json fleet.json --csv fleet.csv
grep -q '"status":"ok"' fleet.json || {
  echo "FAIL: fleet.json lacks status=ok" >&2
  fails=$((fails + 1))
}
expect "worker needs a ledger that exists" 2 \
  "$ARAXL" worker --ledger no-such-ledger.jsonl --quiet
"$ARAXL" serve --ledger fail.jsonl $serve_axes 2>/dev/null
expect "worker surfaces job failures" 1 \
  "$ARAXL" worker --ledger fail.jsonl --id w1 --no-cache --quiet --retries 0 \
  --inject-faults seed=1,job.fail=1

# --help documents the contract.
"$ARAXL" --help | grep -q "exit codes:" || {
  echo "FAIL: --help does not document exit codes" >&2
  fails=$((fails + 1))
}

[ "$fails" -eq 0 ] || exit 1
echo "all exit-code checks passed"
