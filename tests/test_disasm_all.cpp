// Exhaustive disassembler coverage: every opcode renders with its
// mnemonic and plausibly formed operands, and program-level disassembly
// truncates long programs gracefully.
#include <gtest/gtest.h>

#include "isa/disasm.hpp"

namespace araxl {
namespace {

TEST(DisasmAll, EveryOpcodeRenders) {
  for (unsigned op = 0; op < kNumOps; ++op) {
    VInstr in;
    in.op = static_cast<Op>(op);
    in.vd = 8;
    in.vs1 = 4;
    in.vs2 = 12;
    in.fs = 1.25;
    in.xs = 3;
    in.addr = 0x1000;
    in.stride = 16;
    in.avl = 64;
    in.vtype = {Sew::k64, kLmul2};
    const std::string text = disasm(in);
    const OpSpec& spec = op_spec(in.op);
    EXPECT_EQ(text.rfind(std::string(spec.mnemonic), 0), 0u)
        << "disasm must start with the mnemonic: " << text;
    if (spec.reads_vs2 && in.op != Op::kVsetvli) {
      EXPECT_NE(text.find("v12"), std::string::npos) << text;
    }
    if (spec.writes_vd) {
      EXPECT_NE(text.find("v8"), std::string::npos) << text;
    }
  }
}

TEST(DisasmAll, MemoryOperandsRendered) {
  VInstr in;
  in.op = Op::kVlse;
  in.vd = 2;
  in.addr = 0xABC0;
  in.stride = -8;
  const std::string text = disasm(in);
  EXPECT_NE(text.find("0xabc0"), std::string::npos) << text;
  EXPECT_NE(text.find("stride=-8"), std::string::npos) << text;
}

TEST(DisasmAll, ProgramTruncation) {
  ProgramBuilder pb(8192, "long");
  pb.vsetvli(64, Sew::k64, kLmul1);
  for (int i = 0; i < 500; ++i) pb.vfadd_vv(8, 4, 4);
  const Program p = pb.take();
  const std::string text = disasm(p, 50);
  EXPECT_NE(text.find("more)"), std::string::npos);
  EXPECT_NE(text.find("program 'long'"), std::string::npos);
  // Count rendered lines: header + 50 ops + truncation notice.
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 52u);
}

TEST(DisasmAll, MnemonicsAreUnique) {
  for (unsigned a = 0; a < kNumOps; ++a) {
    for (unsigned b = a + 1; b < kNumOps; ++b) {
      EXPECT_NE(op_spec(static_cast<Op>(a)).mnemonic,
                op_spec(static_cast<Op>(b)).mnemonic)
          << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace araxl
