// Unit tests: main memory and AXI burst decomposition.
#include <gtest/gtest.h>

#include "mem/axi.hpp"
#include "mem/main_memory.hpp"

namespace araxl {
namespace {

TEST(MainMemory, RoundTripsScalars) {
  MainMemory mem(1 << 20);
  mem.store<double>(0x100, 3.25);
  mem.store<std::uint32_t>(0x200, 0xDEADBEEF);
  EXPECT_DOUBLE_EQ(mem.load<double>(0x100), 3.25);
  EXPECT_EQ(mem.load<std::uint32_t>(0x200), 0xDEADBEEFu);
}

TEST(MainMemory, RoundTripsSpans) {
  MainMemory mem(1 << 16);
  const std::vector<double> data{1.0, 2.0, 3.0};
  mem.store_doubles(64, data);
  EXPECT_EQ(mem.load_doubles(64, 3), data);
}

TEST(MainMemory, ZeroInitialized) {
  MainMemory mem(4096);
  EXPECT_EQ(mem.load<std::uint64_t>(0), 0u);
  EXPECT_EQ(mem.load<std::uint8_t>(4095), 0u);
}

TEST(MainMemory, OutOfBoundsThrows) {
  MainMemory mem(4096);
  EXPECT_THROW(static_cast<void>(mem.load<std::uint64_t>(4090)),
               ContractViolation);
  EXPECT_THROW(mem.store<std::uint8_t>(4096, 1), ContractViolation);
  EXPECT_NO_THROW(static_cast<void>(mem.load<std::uint64_t>(4088)));
}

TEST(MainMemory, ByteAccessUnaligned) {
  MainMemory mem(4096);
  mem.store<std::uint64_t>(13, 0x1122334455667788ull);
  EXPECT_EQ(mem.load<std::uint64_t>(13), 0x1122334455667788ull);
  EXPECT_EQ(mem.load<std::uint8_t>(13), 0x88u);  // little-endian
}

TEST(Axi, AlignedSingleBurst) {
  const auto bursts = split_bursts(0x1000, 512, 64);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].beats, 8u);
}

TEST(Axi, MisalignmentCostsOneBeat) {
  EXPECT_EQ(total_beats(0x1000, 512, 64), 8u);
  EXPECT_EQ(total_beats(0x1008, 512, 64), 9u);  // head + tail partial beats
  EXPECT_EQ(total_beats(0x1001, 64, 64), 2u);
}

TEST(Axi, FourKibSplit) {
  const auto bursts = split_bursts(0x0F80, 0x100, 64);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].addr, 0x0F80u);
  EXPECT_EQ(bursts[0].len_bytes, 0x80u);
  EXPECT_EQ(bursts[1].addr, 0x1000u);
  EXPECT_EQ(bursts[1].len_bytes, 0x80u);
}

TEST(Axi, ZeroLength) {
  EXPECT_TRUE(split_bursts(0x1000, 0, 64).empty());
  EXPECT_EQ(total_beats(0x1000, 0, 64), 0u);
}

TEST(Axi, NonPow2BusRejected) {
  EXPECT_THROW(split_bursts(0, 64, 48), ContractViolation);
}

TEST(Axi, BeatsCoverExactSpan) {
  // Property: for any (addr, len), beats * bus >= len and the aligned span
  // equals beats * bus.
  for (std::uint64_t addr : {0ull, 1ull, 7ull, 63ull, 0xFFFull}) {
    for (std::uint64_t len : {1ull, 64ull, 100ull, 4096ull, 5000ull}) {
      const std::uint64_t beats = total_beats(addr, len, 64);
      EXPECT_GE(beats * 64, len);
      EXPECT_LE(beats * 64, len + 2 * 64 + 4096 / 64 * 0 + 64);  // head+tail
    }
  }
}

}  // namespace
}  // namespace araxl
