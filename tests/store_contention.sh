#!/bin/sh
# Multi-process store contention under chaos: three real araxl processes
# simulate the same sweep concurrently and append to ONE shared cache file
# while 50% of store writes are injected to tear mid-line. The contract:
#
#   * concurrent appends interleave at line granularity (O_APPEND,
#     single-write flushes) and torn tails are healed by the next writer,
#     so the store always LOADS afterwards — bad lines are skipped and
#     counted, never fatal;
#   * a clean resume run over the recovered store re-simulates whatever
#     the chaos lost and produces a report byte-identical to a cache-free
#     clean run.
set -u

ARAXL=${1:?usage: store_contention.sh /path/to/araxl}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" || exit 99

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# Reference reports from a clean, cache-free run.
"$ARAXL" sweep --smoke --no-cache --quiet --json ref.json --csv ref.csv \
  || fail "reference sweep"

# Three writer processes, one store, 50% torn writes (per-process fault
# seeds so the tears decorrelate). Store failures degrade, never abort:
# each sweep itself must still exit 0.
pids=""
for i in 1 2 3; do
  "$ARAXL" sweep --smoke --store shared.jsonl --quiet \
    --inject-faults "seed=$i,store.write=0.5" >"writer$i.log" 2>&1 &
  pids="$pids $!"
done
st=0
for p in $pids; do
  wait "$p" || st=$?
done
[ "$st" -eq 0 ] || fail "a chaos writer exited $st"

# The shared store must load after the chaos (torn lines skipped).
"$ARAXL" cache stats --store shared.jsonl >stats.log 2>&1 \
  || fail "recovered store does not load"
grep -q "^entries:" stats.log || fail "cache stats output malformed"

# A clean resume over the recovered store fills in whatever was lost and
# reports byte-identically to the cache-free reference.
"$ARAXL" sweep --smoke --store shared.jsonl --quiet \
  --json got.json --csv got.csv || fail "resume sweep"
cmp ref.json got.json || fail "JSON report differs after recovery"
cmp ref.csv got.csv || fail "CSV report differs after recovery"

echo "store contention: 3 writers, 50% torn writes, recovered byte-identically"
