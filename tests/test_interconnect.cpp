// Unit tests: component models — REQI, GLSU, RINGI, lane group, sequencer
// rules, per-cluster VLSU/SLDU/MASKU helpers, CVA6 cost model, machine
// configuration.
#include <gtest/gtest.h>

#include "cluster/masku.hpp"
#include "cluster/sequencer.hpp"
#include "cluster/sldu.hpp"
#include "cluster/vlsu.hpp"
#include "common/contracts.hpp"
#include "interconnect/glsu.hpp"
#include "interconnect/reqi.hpp"
#include "interconnect/ring.hpp"
#include "lane/lane_group.hpp"
#include "scalar/cva6.hpp"

namespace araxl {
namespace {

TEST(Config, FactoriesAndNames) {
  const MachineConfig a = MachineConfig::araxl(64);
  EXPECT_EQ(a.topo.clusters, 16u);
  EXPECT_EQ(a.topo.lanes, 4u);
  EXPECT_EQ(a.name(), "64L-AraXL");
  const MachineConfig b = MachineConfig::ara2(16);
  EXPECT_EQ(b.topo.clusters, 1u);
  EXPECT_EQ(b.name(), "16L-Ara2");
}

TEST(Config, VlenRule) {
  // VLEN = 1024 bits x total lanes, capped at the RVV maximum.
  EXPECT_EQ(MachineConfig::araxl(8).effective_vlen(), 8192u);
  EXPECT_EQ(MachineConfig::araxl(16).effective_vlen(), 16384u);
  EXPECT_EQ(MachineConfig::araxl(64).effective_vlen(), 65536u);
  EXPECT_EQ(MachineConfig::ara2(16).effective_vlen(), 16384u);
}

TEST(Config, RejectsInvalid) {
  EXPECT_THROW(MachineConfig::ara2(32), ContractViolation);   // Ara2 caps at 16
  EXPECT_THROW(MachineConfig::araxl(4), ContractViolation);   // needs >= 2 clusters
  EXPECT_THROW(MachineConfig::araxl(12), ContractViolation);  // non-pow2 clusters
  // Clusters of 2-8 lanes are allowed for design-space exploration; 16 is
  // past the A2A scalability knee and rejected.
  EXPECT_NO_THROW(MachineConfig::araxl_shaped(8, 8));
  EXPECT_THROW(MachineConfig::araxl_shaped(4, 16), ContractViolation);
  EXPECT_THROW(MachineConfig::araxl_shaped(1, 4), ContractViolation);
}

TEST(Config, HierarchicalFactories) {
  // Past the 16-stop flat ring the lane factory becomes hierarchical:
  // 8-cluster groups at the paper's 4-lane building block.
  const MachineConfig h128 = MachineConfig::araxl(128);
  EXPECT_EQ(h128.topo.groups, 4u);
  EXPECT_EQ(h128.topo.clusters, 8u);
  EXPECT_EQ(h128.topo.lanes, 4u);
  EXPECT_EQ(h128.total_lanes(), 128u);
  EXPECT_EQ(h128.topo.total_clusters(), 32u);
  EXPECT_EQ(h128.name(), "128L-AraXL");
  EXPECT_EQ(h128.effective_vlen(), 65536u);  // RVV ceiling, more lanes

  const MachineConfig h256 = MachineConfig::araxl(256);
  EXPECT_EQ(h256.topo.groups, 8u);
  EXPECT_EQ(h256.topo.total_clusters(), 64u);

  const MachineConfig explicit_hier = MachineConfig::araxl_hier(2, 4, 4);
  EXPECT_EQ(explicit_hier.total_lanes(), 32u);
  // groups == 1 degenerates to the flat shape.
  EXPECT_EQ(MachineConfig::araxl_hier(1, 4, 4).topo,
            MachineConfig::araxl_shaped(4, 4).topo);

  // Single rings cap at 16 stops on either level.
  EXPECT_THROW(MachineConfig::araxl_shaped(32, 4), ContractViolation);
  EXPECT_THROW(MachineConfig::araxl_hier(32, 2, 4), ContractViolation);
  EXPECT_THROW(MachineConfig::araxl_hier(3, 4, 4), ContractViolation);  // pow2
  EXPECT_THROW(MachineConfig::araxl(96), ContractViolation);  // 3 groups
  // Lane counts that do not fill whole 8-cluster groups must be rejected,
  // never silently truncated to a smaller machine.
  EXPECT_THROW(MachineConfig::araxl(72), ContractViolation);
  EXPECT_THROW(MachineConfig::araxl(80), ContractViolation);
}

TEST(Config, MemBandwidthPerLane) {
  EXPECT_EQ(MachineConfig::araxl(64).mem_bytes_per_cycle(), 512u);
  EXPECT_EQ(MachineConfig::ara2(8).mem_bytes_per_cycle(), 64u);
}

TEST(Config, MaskLayoutPerKind) {
  EXPECT_EQ(MachineConfig::araxl(16).mask_layout(), MaskLayout::kLaneLocal);
  EXPECT_EQ(MachineConfig::ara2(16).mask_layout(), MaskLayout::kStandard);
}

TEST(Spec, PresetsMatchLegacyFlatNumbers) {
  // The descriptor presets must reproduce the paper-calibrated flat
  // latencies exactly (they gate the Fig. 6/7 reproduction).
  const InterconnectSpec xl = MachineConfig::araxl(64).interconnect();
  EXPECT_FALSE(xl.lumped);
  EXPECT_EQ(xl.broadcast_levels, 0u);
  EXPECT_EQ(xl.reqi_fwd_latency, 2u);
  EXPECT_EQ(xl.reqi_ack_latency, 6u);
  EXPECT_EQ(xl.glsu_load_latency, 5u);
  EXPECT_EQ(xl.glsu_store_latency, 3u);
  EXPECT_EQ(xl.ring_hop_latency, 1u);
  EXPECT_EQ(xl.bus_bytes, 512u);
  EXPECT_EQ(xl.max_ring_stops(), 16u);
  EXPECT_EQ(xl.total_ring_stops(), 16u);

  const InterconnectSpec a2 = MachineConfig::ara2(16).interconnect();
  EXPECT_TRUE(a2.lumped);
  EXPECT_EQ(a2.reqi_fwd_latency, 1u);
  EXPECT_EQ(a2.reqi_ack_latency, 4u);
  EXPECT_EQ(a2.glsu_load_latency, 2u);
  EXPECT_EQ(a2.glsu_store_latency, 2u);
  EXPECT_FALSE(a2.ring_present());
}

TEST(Spec, HierarchyAddsBroadcastAndShuffleStages) {
  // Each group level deepens the REQI broadcast tree (+1/direction => ack
  // +2) and adds a GLSU group-distribution stage (+2 load, +1 store).
  const InterconnectSpec flat = MachineConfig::araxl(64).interconnect();
  const InterconnectSpec h128 = MachineConfig::araxl(128).interconnect();
  EXPECT_EQ(h128.broadcast_levels, 2u);  // log2(4 groups)
  EXPECT_EQ(h128.reqi_fwd_latency, flat.reqi_fwd_latency + 2);
  EXPECT_EQ(h128.reqi_ack_latency, flat.reqi_ack_latency + 4);
  EXPECT_EQ(h128.glsu_load_latency, flat.glsu_load_latency + 4);
  EXPECT_EQ(h128.glsu_store_latency, flat.glsu_store_latency + 2);
  // A group hop spans the group floorplan: two local hops.
  EXPECT_EQ(h128.group_hop_latency, 2 * h128.ring_hop_latency);
  // Hierarchy keeps every single ring short — that is its point.
  EXPECT_EQ(h128.max_ring_stops(), 8u);
  EXPECT_EQ(h128.total_ring_stops(), 32u + 4u);

  // Register knobs and tree levels stack.
  MachineConfig knobbed = MachineConfig::araxl(128);
  knobbed.reqi_regs = 1;
  knobbed.glsu_regs = 4;
  knobbed.ring_regs = 1;
  const InterconnectSpec k = knobbed.interconnect();
  EXPECT_EQ(k.reqi_ack_latency, h128.reqi_ack_latency + 2);
  EXPECT_EQ(k.glsu_load_latency, h128.glsu_load_latency + 8);
  EXPECT_EQ(k.ring_hop_latency, 2u);
  EXPECT_EQ(k.group_hop_latency, 4u);
}

TEST(Reqi, RegisterCutsCostTwoCyclesOnAck) {
  // Paper §IV-C.b: +1 register => instruction acknowledged 2 cycles later.
  MachineConfig cfg = MachineConfig::araxl(64);
  const unsigned base = ReqiModel(cfg).ack_latency();
  cfg.reqi_regs = 1;
  EXPECT_EQ(ReqiModel(cfg).ack_latency(), base + 2);
  cfg.reqi_regs = 2;
  EXPECT_EQ(ReqiModel(cfg).ack_latency(), base + 4);
}

TEST(Reqi, Ara2HasShorterIssuePath) {
  const MachineConfig xl = MachineConfig::araxl(16);
  const MachineConfig a2 = MachineConfig::ara2(16);
  EXPECT_GT(ReqiModel(xl).ack_latency(), ReqiModel(a2).ack_latency());
  EXPECT_GT(ReqiModel(xl).fwd_latency(), ReqiModel(a2).fwd_latency());
}

TEST(Glsu, FourRegistersCostEightCycles) {
  // Paper §IV-C.a: +4 registers => +8 cycles request-response latency.
  MachineConfig cfg = MachineConfig::araxl(64);
  const unsigned base = GlsuModel(cfg).load_latency();
  cfg.glsu_regs = 4;
  EXPECT_EQ(GlsuModel(cfg).load_latency(), base + 8);
}

TEST(Glsu, Ara2SingleStageAlignShuffle) {
  // Ara2's A2A VLSU aligns+shuffles in one cycle; AraXL pays the 3-stage
  // GLSU pipeline on top of L2 latency.
  const MachineConfig xl = MachineConfig::araxl(16);
  const MachineConfig a2 = MachineConfig::ara2(16);
  EXPECT_GT(GlsuModel(xl).load_latency(), GlsuModel(a2).load_latency());
}

TEST(Glsu, HeadSkewTracksMisalignment) {
  const MachineConfig cfg = MachineConfig::araxl(16);  // 128 B bus
  const GlsuModel glsu(cfg);
  EXPECT_EQ(glsu.head_skew(0x1000), 0u);
  EXPECT_EQ(glsu.head_skew(0x1008), 8u);
  EXPECT_EQ(glsu.head_skew(0x107F), 0x7Fu);
}

TEST(Glsu, ClusterByteShareMatchesMapping) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const GlsuModel glsu(cfg);
  const VrfMapping map(cfg.topo, cfg.effective_vlen());
  for (const std::uint64_t vl : {1ull, 16ull, 100ull, 256ull}) {
    const auto share = glsu.cluster_byte_share(vl, 8);
    std::vector<std::uint64_t> expect(cfg.topo.clusters, 0);
    for (std::uint64_t i = 0; i < vl; ++i) expect[map.cluster_of(i)] += 8;
    EXPECT_EQ(share, expect) << "vl=" << vl;
  }
}

TEST(Ring, HopLatencyWithRegisters) {
  MachineConfig cfg = MachineConfig::araxl(64);
  EXPECT_EQ(RingModel(cfg).hop_latency(), 1u);
  cfg.ring_regs = 1;
  EXPECT_EQ(RingModel(cfg).hop_latency(), 2u);
}

TEST(Ring, ReductionTreeUsesLogSteps) {
  // Step s pays 2^s hops + one add: total (C-1)*hop + log2(C)*add.
  MachineConfig cfg = MachineConfig::araxl(64);  // C=16
  const RingModel ring(cfg);
  const Cycle expected = (16 - 1) * 1 + 4 * cfg.red_add_latency;
  EXPECT_EQ(ring.reduction_tree_cycles(), expected);
  cfg.ring_regs = 1;
  EXPECT_EQ(RingModel(cfg).reduction_tree_cycles(),
            (16 - 1) * 2 + 4 * cfg.red_add_latency);
}

TEST(Ring, AbsentOnAra2) {
  const MachineConfig cfg = MachineConfig::ara2(16);
  const RingModel ring(cfg);
  EXPECT_FALSE(ring.present());
  EXPECT_EQ(ring.reduction_tree_cycles(), 0u);
  EXPECT_EQ(ring.slide_start_penalty(1), 0u);
}

TEST(Ring, SlidePenaltiesGrowWithDistance) {
  const MachineConfig cfg = MachineConfig::araxl(64);
  const RingModel ring(cfg);
  EXPECT_EQ(ring.slide_start_penalty(1), 1u);    // one hop for slide-by-1
  EXPECT_EQ(ring.slide_start_penalty(-1), 1u);
  EXPECT_EQ(ring.slide_start_penalty(8), 2u);    // ceil(8/4) hops
  EXPECT_GE(ring.slide_start_penalty(1000), 15u);  // capped at C-1 hops
  EXPECT_FALSE(ring.long_slide(1));
  EXPECT_TRUE(ring.long_slide(5));
}

TEST(Ring, Slide1BoundaryTrafficFitsLinkBandwidth) {
  // One boundary element per occupied row per cluster: the 64-bit/cycle
  // neighbour links sustain slide-by-1 at full SLDU throughput (the design
  // argument of paper §III-B.4).
  const MachineConfig cfg = MachineConfig::araxl(64);
  const RingModel ring(cfg);
  const std::uint64_t vl = 4096;
  const std::uint64_t transfers = ring.slide1_boundary_elems(vl);
  const std::uint64_t local_cycles = vl / cfg.total_lanes();
  EXPECT_LE(transfers, local_cycles);
}

TEST(Ring, GroupBoundarySlidesPayGroupHops) {
  // 4 groups x 8 clusters x 4 lanes: slide-by-1 crosses one boundary in
  // the worst case (the two adjacent clusters sit in different groups).
  const MachineConfig h = MachineConfig::araxl(128);
  const RingModel ring(h);
  EXPECT_TRUE(ring.present());
  EXPECT_EQ(ring.hop_latency(), 1u);
  EXPECT_EQ(ring.group_hop_latency(), 2u);
  EXPECT_EQ(ring.slide_start_penalty(1), 2u);  // 1 hop, crossing
  // 8 hops = ceil(32/4): one full group away => 1 group crossing + 7 local.
  EXPECT_EQ(ring.slide_start_penalty(32), 7u * 1 + 1u * 2);
  // Capped at C_total - 1 = 31 hops => ceil(31/8) = 4 crossings.
  EXPECT_EQ(ring.slide_start_penalty(100000), 27u * 1 + 4u * 2);

  // A flat machine of the same total cluster count pays plain hops.
  const RingModel flat(MachineConfig::araxl(64));
  EXPECT_EQ(flat.group_hop_latency(), flat.hop_latency());
  EXPECT_EQ(flat.slide_start_penalty(1), 1u);
}

TEST(Ring, HierarchicalReductionTreeGainsGroupStages) {
  // 2 groups x 8 clusters: 3 per-group stages (1+2+4 hops) then one
  // group stage at group-hop latency.
  const MachineConfig h = MachineConfig::araxl_hier(2, 8, 4);
  const RingModel ring(h);
  const Cycle local = (1 + 2 + 4) * 1 + 3 * h.red_add_latency;
  const Cycle group = 1 * 2 + h.red_add_latency;
  EXPECT_EQ(ring.reduction_tree_cycles(), local + group);

  // Same total clusters flat: 4 stages, all at local hop latency — the
  // hierarchical tree trades the two longest flat stages (8- and 4-hop
  // spans... here 8-hop) for one short group stage.
  const RingModel flat(MachineConfig::araxl(64));
  EXPECT_EQ(flat.reduction_tree_cycles(),
            Cycle{(16 - 1) * 1} + 4 * h.red_add_latency);
}

TEST(Glsu, HierarchicalClusterByteShareMatchesMapping) {
  const MachineConfig cfg = MachineConfig::araxl(128);
  const GlsuModel glsu(cfg);
  const VrfMapping map(cfg.topo, cfg.effective_vlen());
  for (const std::uint64_t vl : {1ull, 16ull, 100ull, 1000ull}) {
    const auto share = glsu.cluster_byte_share(vl, 8);
    std::vector<std::uint64_t> expect(cfg.topo.total_clusters(), 0);
    for (std::uint64_t i = 0; i < vl; ++i) expect[map.cluster_of(i)] += 8;
    EXPECT_EQ(share, expect) << "vl=" << vl;
  }
}

TEST(LaneGroup, RatesScaleWithWidthAndLanes) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const LaneGroupModel lanes(cfg);
  EXPECT_EQ(lanes.rate256(Op::kVfaddVV, 8), 16u * 256);
  EXPECT_EQ(lanes.rate256(Op::kVfaddVV, 4), 32u * 256);  // SIMD packing
  EXPECT_EQ(lanes.rate256(Op::kVaddVV, 8), 16u * 256);
}

TEST(LaneGroup, DividerIsSlow) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const LaneGroupModel lanes(cfg);
  EXPECT_EQ(lanes.rate256(Op::kVfdivVV, 8),
            16u * 256 / cfg.div_cycles_per_elem);
}

TEST(LaneGroup, ChainLagsPositiveAndOrdered) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const LaneGroupModel lanes(cfg);
  EXPECT_GT(lanes.chain_lag(Unit::kFpu), lanes.chain_lag(Unit::kAlu));
  EXPECT_GT(lanes.chain_lag(Unit::kFpu), 0u);
  EXPECT_EQ(lanes.chain_lag(Unit::kNone), 0u);
}

TEST(SequencerRules, WriteGroups) {
  VInstr in;
  in.op = Op::kVfaddVV;
  in.vd = 8;
  EXPECT_EQ(write_group(in, 4), (std::pair<unsigned, unsigned>{8, 4}));
  in.op = Op::kVmfltVV;  // mask destination: single register
  EXPECT_EQ(write_group(in, 4), (std::pair<unsigned, unsigned>{8, 1}));
  in.op = Op::kVfredusum;
  EXPECT_EQ(write_group(in, 8), (std::pair<unsigned, unsigned>{8, 1}));
  in.op = Op::kVse;  // stores write no register
  EXPECT_EQ(write_group(in, 4).second, 0u);
}

TEST(SequencerRules, ReadGroupsIncludeMaskAndVdSource) {
  VInstr in;
  in.op = Op::kVfmaccVV;
  in.vd = 16;
  in.vs1 = 4;
  in.vs2 = 8;
  in.masked = true;
  const ReadGroups g = read_groups(in, 2);
  ASSERT_EQ(g.n, 4u);  // vs1, vs2, vd-as-source, v0
  EXPECT_EQ(g.base[0], 4u);
  EXPECT_EQ(g.base[1], 8u);
  EXPECT_EQ(g.base[2], 16u);
  EXPECT_EQ(g.base[3], 0u);
  EXPECT_EQ(g.count[3], 1u);
}

TEST(SequencerRules, SlideOffsets) {
  VInstr in;
  in.op = Op::kVfslide1down;
  EXPECT_EQ(slide_offset(in), 1);
  in.op = Op::kVfslide1up;
  EXPECT_EQ(slide_offset(in), -1);
  in.op = Op::kVslidedownVX;
  in.xs = 7;
  EXPECT_EQ(slide_offset(in), 7);
  in.op = Op::kVslideupVX;
  EXPECT_EQ(slide_offset(in), -7);
}

TEST(Vlsu, ElementwisePredicate) {
  EXPECT_FALSE(elementwise_mem_op(Op::kVle));
  EXPECT_FALSE(elementwise_mem_op(Op::kVse));
  EXPECT_TRUE(elementwise_mem_op(Op::kVlse));
  EXPECT_TRUE(elementwise_mem_op(Op::kVluxei));
}

TEST(Vlsu, LaneSharesBalanced) {
  const VrfMapping map(Topology{4, 4}, 16384);
  const std::uint64_t vl = 256;
  // Every lane of every cluster receives exactly vl/(L*C) elements when vl
  // is a multiple of the machine width.
  for (unsigned c = 0; c < 4; ++c) {
    for (unsigned l = 0; l < 4; ++l) {
      EXPECT_EQ(vlsu_lane_byte_share(map, vl, 8, c, l), vl / 16 * 8);
    }
  }
}

TEST(Sldu, Slide1RemoteFraction) {
  // For slide-by-1 down, element i sources i+1, which lives in another
  // cluster exactly when i is the last lane of a cluster row: 1/L of all
  // elements.
  const VrfMapping map(Topology{4, 4}, 16384);
  const std::uint64_t vl = 256;
  EXPECT_EQ(slide_remote_elems(map, 1, vl), vl / 4 - 1);  // minus final fill
}

TEST(Sldu, IntraClusterSlideHasNoRemote) {
  // With a single cluster (Ara2 topology) nothing is remote.
  const VrfMapping map(Topology{1, 8}, 8192);
  EXPECT_EQ(slide_remote_elems(map, 1, 256), 0u);
  EXPECT_EQ(slide_remote_elems(map, 5, 256), 0u);
}

TEST(Masku, LaneLocalLayoutMovesNothing) {
  const VrfMapping map(Topology{4, 4}, 16384);
  EXPECT_EQ(masku_bits_to_move(map, MaskLayout::kLaneLocal, 256), 0u);
  const std::uint64_t moved = masku_bits_to_move(map, MaskLayout::kStandard, 256);
  EXPECT_GT(moved, 200u);  // nearly all bits cross lanes in the RVV layout
  EXPECT_EQ(masku_distribution_cycles(moved), (moved + 63) / 64);
}

TEST(Cva6, ScalarCosts) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const Cva6Model cva6(cfg);
  EXPECT_EQ(cva6.scalar_cost({ScalarOp::Kind::kCycles, 5}), 5u);
  EXPECT_EQ(cva6.scalar_cost({ScalarOp::Kind::kLoad, 1}), cfg.dcache_load_latency);
  EXPECT_EQ(cva6.scalar_cost({ScalarOp::Kind::kStore, 1}), 1u);
}

}  // namespace
}  // namespace araxl
