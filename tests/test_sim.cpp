// Unit tests: simulation primitives (DelayLine, BoundedQueue, LaggedCounter,
// RunStats metrics).
#include <gtest/gtest.h>

#include "sim/pipe.hpp"
#include "sim/stats.hpp"

namespace araxl {
namespace {

TEST(DelayLine, DelaysByLatency) {
  DelayLine<int> dl(3);
  dl.push(10, 42);
  EXPECT_FALSE(dl.ready(10));
  EXPECT_FALSE(dl.ready(12));
  EXPECT_TRUE(dl.ready(13));
  EXPECT_EQ(dl.pop(13), 42);
  EXPECT_TRUE(dl.empty());
}

TEST(DelayLine, PreservesOrder) {
  DelayLine<int> dl(2);
  dl.push(0, 1);
  dl.push(1, 2);
  dl.push(2, 3);
  EXPECT_EQ(dl.pop(5), 1);
  EXPECT_EQ(dl.pop(5), 2);
  EXPECT_EQ(dl.pop(5), 3);
}

TEST(DelayLine, ZeroLatency) {
  DelayLine<int> dl(0);
  dl.push(7, 9);
  EXPECT_TRUE(dl.ready(7));
  EXPECT_EQ(dl.pop(7), 9);
}

TEST(DelayLine, PopNotReadyThrows) {
  DelayLine<int> dl(5);
  dl.push(0, 1);
  EXPECT_THROW(dl.pop(3), ContractViolation);
}

TEST(BoundedQueue, Backpressure) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_TRUE(q.full());
  q.pop();
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.front(), 2);
}

TEST(BoundedQueue, EmptyAccessThrows) {
  BoundedQueue<int> q(1);
  EXPECT_THROW(static_cast<void>(q.front()), ContractViolation);
  EXPECT_THROW(q.pop(), ContractViolation);
}

TEST(BoundedQueue, ZeroCapacityRejected) {
  EXPECT_THROW(BoundedQueue<int>(0), ContractViolation);
}

TEST(LaggedCounter, ZeroLagReturnsLatest) {
  LaggedCounter c;
  c.record(10, 5);
  c.record(11, 8);
  EXPECT_EQ(c.value_at_lag(11, 0), 8u);
  EXPECT_EQ(c.latest(), 8u);
}

TEST(LaggedCounter, LagLooksBack) {
  LaggedCounter c;
  c.record(10, 5);
  c.record(12, 9);
  c.record(13, 12);
  EXPECT_EQ(c.value_at_lag(13, 1), 9u);   // value at cycle 12
  EXPECT_EQ(c.value_at_lag(13, 2), 5u);   // value at cycle 11 (still 5)
  EXPECT_EQ(c.value_at_lag(13, 3), 5u);   // value at cycle 10
  EXPECT_EQ(c.value_at_lag(13, 4), 0u);   // before any record
}

TEST(LaggedCounter, BeforeHistoryIsZero) {
  LaggedCounter c;
  EXPECT_EQ(c.value_at_lag(100, 5), 0u);
  c.record(100, 7);
  EXPECT_EQ(c.value_at_lag(100, 50), 0u);
}

TEST(LaggedCounter, SameCycleOverwrite) {
  LaggedCounter c;
  c.record(5, 1);
  c.record(5, 3);
  EXPECT_EQ(c.value_at_lag(5, 0), 3u);
}

TEST(LaggedCounter, LongHistoryStaysCorrectWithinDepth) {
  LaggedCounter c;
  for (Cycle t = 0; t < 200; ++t) c.record(t, t * 2);
  // lag within the retained window (64 entries at 1/cycle).
  EXPECT_EQ(c.value_at_lag(199, 10), (199u - 10) * 2);
  EXPECT_EQ(c.value_at_lag(199, 63), (199u - 63) * 2);
}

TEST(RunStats, UtilAndFlops) {
  RunStats s;
  s.cycles = 100;
  s.total_lanes = 16;
  s.fpu_result_elems = 800;
  s.flops = 1600;
  EXPECT_DOUBLE_EQ(s.fpu_util(), 0.5);
  EXPECT_DOUBLE_EQ(s.flop_per_cycle(), 16.0);
  EXPECT_DOUBLE_EQ(s.gflops(1.25), 20.0);
}

TEST(RunStats, EmptyIsSafe) {
  RunStats s;
  EXPECT_DOUBLE_EQ(s.fpu_util(), 0.0);
  EXPECT_DOUBLE_EQ(s.flop_per_cycle(), 0.0);
}

TEST(RunStats, SummaryMentionsKeyFields) {
  RunStats s;
  s.cycles = 1234;
  s.total_lanes = 8;
  const std::string out = s.summary();
  EXPECT_NE(out.find("1,234"), std::string::npos);
  EXPECT_NE(out.find("FPU utilization"), std::string::npos);
}

TEST(UnitNames, AllDistinct) {
  for (std::size_t a = 0; a < kNumUnits; ++a) {
    for (std::size_t b = a + 1; b < kNumUnits; ++b) {
      EXPECT_NE(unit_name(static_cast<Unit>(a)), unit_name(static_cast<Unit>(b)));
    }
  }
}

}  // namespace
}  // namespace araxl
