// Unit tests: simulation primitives (DelayLine, BoundedQueue, LaggedCounter,
// EventHorizon/WakeupWatchdog, RunStats metrics).
#include <gtest/gtest.h>

#include "sim/pipe.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace araxl {
namespace {

TEST(DelayLine, DelaysByLatency) {
  DelayLine<int> dl(3);
  dl.push(10, 42);
  EXPECT_FALSE(dl.ready(10));
  EXPECT_FALSE(dl.ready(12));
  EXPECT_TRUE(dl.ready(13));
  EXPECT_EQ(dl.pop(13), 42);
  EXPECT_TRUE(dl.empty());
}

TEST(DelayLine, PreservesOrder) {
  DelayLine<int> dl(2);
  dl.push(0, 1);
  dl.push(1, 2);
  dl.push(2, 3);
  EXPECT_EQ(dl.pop(5), 1);
  EXPECT_EQ(dl.pop(5), 2);
  EXPECT_EQ(dl.pop(5), 3);
}

TEST(DelayLine, ZeroLatency) {
  DelayLine<int> dl(0);
  dl.push(7, 9);
  EXPECT_TRUE(dl.ready(7));
  EXPECT_EQ(dl.pop(7), 9);
}

TEST(DelayLine, PopNotReadyThrows) {
  DelayLine<int> dl(5);
  dl.push(0, 1);
  EXPECT_THROW(dl.pop(3), ContractViolation);
}

TEST(BoundedQueue, Backpressure) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_TRUE(q.full());
  q.pop();
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.front(), 2);
}

TEST(BoundedQueue, EmptyAccessThrows) {
  BoundedQueue<int> q(1);
  EXPECT_THROW(static_cast<void>(q.front()), ContractViolation);
  EXPECT_THROW(q.pop(), ContractViolation);
}

TEST(BoundedQueue, ZeroCapacityRejected) {
  EXPECT_THROW(BoundedQueue<int>(0), ContractViolation);
}

TEST(LaggedCounter, ZeroLagReturnsLatest) {
  LaggedCounter c;
  c.record(10, 5);
  c.record(11, 8);
  EXPECT_EQ(c.value_at_lag(11, 0), 8u);
  EXPECT_EQ(c.latest(), 8u);
}

TEST(LaggedCounter, LagLooksBack) {
  LaggedCounter c;
  c.record(10, 5);
  c.record(12, 9);
  c.record(13, 12);
  EXPECT_EQ(c.value_at_lag(13, 1), 9u);   // value at cycle 12
  EXPECT_EQ(c.value_at_lag(13, 2), 5u);   // value at cycle 11 (still 5)
  EXPECT_EQ(c.value_at_lag(13, 3), 5u);   // value at cycle 10
  EXPECT_EQ(c.value_at_lag(13, 4), 0u);   // before any record
}

TEST(LaggedCounter, BeforeHistoryIsZero) {
  LaggedCounter c;
  EXPECT_EQ(c.value_at_lag(100, 5), 0u);
  c.record(100, 7);
  EXPECT_EQ(c.value_at_lag(100, 50), 0u);
}

TEST(LaggedCounter, SameCycleOverwrite) {
  LaggedCounter c;
  c.record(5, 1);
  c.record(5, 3);
  EXPECT_EQ(c.value_at_lag(5, 0), 3u);
}

TEST(LaggedCounter, LongHistoryStaysCorrectWithinDepth) {
  LaggedCounter c;
  for (Cycle t = 0; t < 200; ++t) c.record(t, t * 2);
  // lag within the retained window (64 entries at 1/cycle).
  EXPECT_EQ(c.value_at_lag(199, 10), (199u - 10) * 2);
  EXPECT_EQ(c.value_at_lag(199, 63), (199u - 63) * 2);
}

TEST(LaggedCounter, RampInterpolatesLikePerCycleRecords) {
  // A segment entry must answer value_at_lag exactly as the equivalent
  // per-cycle point records would (the event engine's compression contract).
  LaggedCounter ramp;
  LaggedCounter points;
  // 5 elements per cycle over cycles [10, 19], i.e. value 5..50.
  ramp.record_ramp(10, 5, 5, 1, 0, 19);
  for (Cycle t = 10; t <= 19; ++t) points.record(t, (t - 9) * 5);
  for (Cycle now = 10; now <= 30; ++now) {
    for (Cycle lag = 0; lag <= 12; ++lag) {
      EXPECT_EQ(ramp.value_at_lag(now, lag), points.value_at_lag(now, lag))
          << "now " << now << " lag " << lag;
    }
  }
  EXPECT_EQ(ramp.latest(), 50u);
}

TEST(LaggedCounter, FractionalRampMatchesAccumulator) {
  // Rate 170/256 elements per cycle — the unpipelined-divider pattern.
  // One ramp entry must reproduce the per-cycle quota recurrence exactly.
  LaggedCounter ramp;
  LaggedCounter points;
  std::uint64_t acc = 0;
  std::uint64_t produced = 0;
  for (Cycle t = 100; t <= 140; ++t) {
    acc += 170;
    produced += acc >> 8;
    acc &= 0xFF;
    points.record(t, produced);
    if (t == 100) ramp.record_ramp(100, produced, 170, 256, acc, 140);
  }
  for (Cycle now = 100; now <= 150; ++now) {
    EXPECT_EQ(ramp.value_at_lag(now, 3), points.value_at_lag(now, 3)) << now;
  }
}

TEST(LaggedCounter, ContiguousIntegerRampsMerge) {
  LaggedCounter c;
  c.record_ramp(10, 4, 4, 1, 0, 14);   // 4/cycle through cycle 14 (value 20)
  c.record_ramp(15, 24, 4, 1, 0, 19);  // seamless continuation to 40
  EXPECT_EQ(c.value_at(12), 12u);
  EXPECT_EQ(c.value_at(17), 32u);
  EXPECT_EQ(c.latest(), 40u);
}

TEST(LaggedCounter, PieceAtDescribesSegments) {
  LaggedCounter c;
  c.record(5, 2);
  c.record_ramp(10, 4, 2, 1, 0, 14);
  const auto before = c.piece_at(3);
  EXPECT_EQ(before.value, 0u);
  EXPECT_EQ(before.num, 0u);
  EXPECT_EQ(before.change_at, 5u);
  const auto flat = c.piece_at(7);
  EXPECT_EQ(flat.value, 2u);
  EXPECT_EQ(flat.num, 0u);
  EXPECT_EQ(flat.change_at, 10u);
  const auto growing = c.piece_at(11);
  EXPECT_EQ(growing.value, 6u);
  EXPECT_EQ(growing.num, 2u);
  EXPECT_EQ(growing.grow_until, 14u);
  const auto held = c.piece_at(20);
  EXPECT_EQ(held.value, 12u);
  EXPECT_EQ(held.num, 0u);
  EXPECT_EQ(held.change_at, kNeverCycle);
}

TEST(EventHorizon, KeepsEarliestFutureProposal) {
  EventHorizon h;
  h.reset(100);
  EXPECT_TRUE(h.empty());
  h.propose(99);   // past: ignored
  h.propose(100);  // present: ignored
  EXPECT_TRUE(h.empty());
  h.propose(140);
  h.propose(120);
  h.propose(130);
  EXPECT_EQ(h.next(), 120u);
  h.reset(120);
  EXPECT_TRUE(h.empty());
}

TEST(WakeupWatchdog, TripsAfterBudgetWithoutProgress) {
  WakeupWatchdog wd(3);
  for (int i = 0; i < 3; ++i) wd.note_wakeup();
  EXPECT_FALSE(wd.stuck());
  wd.note_wakeup();
  EXPECT_TRUE(wd.stuck());
  wd.note_progress();
  EXPECT_FALSE(wd.stuck());
  EXPECT_EQ(wd.wakeups_total(), 4u);
}

TEST(WakeupWatchdog, BatchedProgressCountsPerIteration) {
  // Regression for the loop batcher: fast-forwarding K iterations inside
  // one wakeup must register as K progress events. Before note_progress
  // took an event count, a batch looked like a single note — the progress
  // total undercounted by K-1 and long fast-forwards were indistinguishable
  // from a machine inching along one element at a time.
  WakeupWatchdog wd(4);
  wd.note_wakeup();
  wd.note_progress(1000);  // one batch, 1000 iterations
  EXPECT_FALSE(wd.stuck());
  EXPECT_EQ(wd.progress_total(), 1000u);
  for (int i = 0; i < 4; ++i) wd.note_wakeup();
  EXPECT_FALSE(wd.stuck());  // budget counts wakeups since the batch
  wd.note_wakeup();
  EXPECT_TRUE(wd.stuck());
  wd.note_progress();
  EXPECT_EQ(wd.progress_total(), 1001u);
  wd.reset();
  EXPECT_EQ(wd.progress_total(), 0u);
}

TEST(RunStats, EqualityComparesAllCounters) {
  RunStats a;
  a.cycles = 10;
  a.flops = 5;
  RunStats b = a;
  EXPECT_TRUE(a == b);
  b.issue_stall_cycles = 1;
  EXPECT_TRUE(a != b);
  b = a;
  b.unit_busy_elems[2] = 7;
  EXPECT_TRUE(a != b);
}

TEST(RunStats, UtilAndFlops) {
  RunStats s;
  s.cycles = 100;
  s.total_lanes = 16;
  s.fpu_result_elems = 800;
  s.flops = 1600;
  EXPECT_DOUBLE_EQ(s.fpu_util(), 0.5);
  EXPECT_DOUBLE_EQ(s.flop_per_cycle(), 16.0);
  EXPECT_DOUBLE_EQ(s.gflops(1.25), 20.0);
}

TEST(RunStats, EmptyIsSafe) {
  RunStats s;
  EXPECT_DOUBLE_EQ(s.fpu_util(), 0.0);
  EXPECT_DOUBLE_EQ(s.flop_per_cycle(), 0.0);
}

TEST(RunStats, SummaryMentionsKeyFields) {
  RunStats s;
  s.cycles = 1234;
  s.total_lanes = 8;
  const std::string out = s.summary();
  EXPECT_NE(out.find("1,234"), std::string::npos);
  EXPECT_NE(out.find("FPU utilization"), std::string::npos);
}

TEST(UnitNames, AllDistinct) {
  for (std::size_t a = 0; a < kNumUnits; ++a) {
    for (std::size_t b = a + 1; b < kNumUnits; ++b) {
      EXPECT_NE(unit_name(static_cast<Unit>(a)), unit_name(static_cast<Unit>(b)));
    }
  }
}

}  // namespace
}  // namespace araxl
