// Structural tests of the generated kernel programs: the Table-I
// instruction-mix accounting (FPU slots and DP-FLOP per element) is a
// property of the emitted instruction stream, so pin it there — if a
// kernel's structure drifts, the Max-Perf column of table1 and the Fig. 6
// utilization interpretation drift with it.
#include <gtest/gtest.h>

#include "kernels/common.hpp"
#include "kernels/exp_core.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

struct OpCounts {
  std::uint64_t fpu = 0;
  std::uint64_t fma = 0;
  std::uint64_t sldu = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t reductions = 0;
  std::uint64_t vsetvli = 0;
  std::uint64_t total_v = 0;
};

OpCounts count_ops(const Program& p) {
  OpCounts c;
  for (const ProgOp& op : p.ops) {
    const auto* v = std::get_if<VInstr>(&op);
    if (v == nullptr) continue;
    ++c.total_v;
    const OpSpec& spec = op_spec(v->op);
    if (v->op == Op::kVsetvli) ++c.vsetvli;
    if (spec.unit == Unit::kFpu) ++c.fpu;
    if (spec.flops_per_elem == 2) ++c.fma;
    if (spec.unit == Unit::kSldu) ++c.sldu;
    if (spec.reads_mem) ++c.loads;
    if (spec.writes_mem) ++c.stores;
    if (spec.is_reduction) ++c.reductions;
  }
  return c;
}

TEST(KernelPrograms, FmatmulIsPureFmaStream) {
  Machine m(MachineConfig::araxl(16));
  auto k = make_kernel("fmatmul");
  const OpCounts c = count_ops(k->build(m, 512));
  // 1 strip x (64/4 row blocks) x 256 k-steps x 4 FMAs.
  EXPECT_EQ(c.fma, 16u * 256 * 4);
  EXPECT_EQ(c.fpu, c.fma);                  // no non-FMA FPU work
  EXPECT_EQ(c.loads, 16u * 256);            // one B-row load per k per block
  EXPECT_EQ(c.stores, 64u);                 // one store per C row
  EXPECT_EQ(c.sldu, 0u);
  EXPECT_EQ(c.reductions, 0u);
}

TEST(KernelPrograms, Fconv2dMixPerOutputRow) {
  Machine m(MachineConfig::araxl(16));
  auto k = make_kernel("fconv2d");
  const OpCounts c = count_ops(k->build(m, 512));
  // Paper structure: per output row, 7x7 FMAs and 7x6 slides; 2 strips at
  // 512 B/lane with LMUL=2.
  const std::uint64_t rows = 256 * 2;
  EXPECT_EQ(c.fma, rows * 49);
  EXPECT_EQ(c.sldu, rows * 42);
  EXPECT_EQ(c.loads, rows * 7);
  EXPECT_EQ(c.stores, rows);
}

TEST(KernelPrograms, Jacobi2dFiveFpuSlotsPerElement) {
  Machine m(MachineConfig::araxl(16));
  auto k = make_kernel("jacobi2d");
  const OpCounts c = count_ops(k->build(m, 512));
  const std::uint64_t rows = 256;  // single strip at LMUL=4
  EXPECT_EQ(c.fpu, rows * 5);      // 4 adds + 1 mul
  EXPECT_EQ(c.fma, 0u);
  EXPECT_EQ(c.sldu, rows * 2);
  EXPECT_EQ(c.stores, rows);
}

TEST(KernelPrograms, FdotproductStripCount) {
  // At 16384 B/lane on the 64-lane machine the paper's "strip-mined over
  // 16 loop iterations" case must emit exactly 16 vfmacc strips.
  Machine m(MachineConfig::araxl(64));
  auto k = make_kernel("fdotproduct");
  const OpCounts c = count_ops(k->build(m, 16384));
  EXPECT_EQ(c.fma, 16u);
  EXPECT_EQ(c.loads, 32u);
  EXPECT_EQ(c.reductions, 1u);  // single final vfredusum
}

TEST(KernelPrograms, ExpMixMatchesDocumentedAccounting) {
  Machine m(MachineConfig::araxl(16));
  auto k = make_kernel("exp");
  const Program p = k->build(m, 128);  // single strip per vlmax at LMUL=1
  const OpCounts c = count_ops(p);
  const std::uint64_t strips = c.vsetvli;  // one vsetvli per strip
  ASSERT_GT(strips, 0u);
  // kExpFpuSlots FPU-busy instructions per strip (EXPERIMENTS.md: ours is
  // 20 slots / 30 FLOP vs the paper's 21/28).
  EXPECT_EQ(c.fpu, strips * kExpFpuSlots);
  // FLOP accounting: kExpFlops per element.
  const double factor = k->max_perf_factor();
  EXPECT_DOUBLE_EQ(factor, static_cast<double>(kExpFlops) / kExpFpuSlots);
}

TEST(KernelPrograms, SoftmaxHasTwoReductionsPerStrip) {
  Machine m(MachineConfig::araxl(16));
  auto k = make_kernel("softmax");
  const OpCounts c = count_ops(k->build(m, 512));
  // Per row: strips x (redmax + redsum); 64 rows, 4 strips at 512 B/lane.
  EXPECT_EQ(c.reductions, 64u * 4 * 2);
}

TEST(KernelPrograms, SimulatedFlopsMatchAccounting) {
  // For the FMA-exact kernels the simulator's FLOP counter must equal the
  // kernel's useful-FLOP accounting exactly.
  for (const char* name : {"fmatmul", "fconv2d", "jacobi2d", "stream_triad"}) {
    Machine m(MachineConfig::araxl(8));
    auto k = make_kernel(name);
    const Program p = k->build(m, 128);
    const RunStats s = m.run(p);
    EXPECT_EQ(s.flops, k->useful_flops()) << name;
  }
}

TEST(KernelPrograms, AllKernelFactoriesAgreeWithNames) {
  for (const auto& k : make_all_kernels()) {
    EXPECT_EQ(make_kernel(k->name())->name(), k->name());
  }
  for (const auto& k : make_extension_kernels()) {
    EXPECT_EQ(make_kernel(k->name())->name(), k->name());
  }
  EXPECT_THROW(make_kernel("nope"), ContractViolation);
}

TEST(KernelPrograms, WeakScalingSizesProblems) {
  // N = bytes_per_lane x lanes / 8, so the per-lane stream is constant.
  const MachineConfig small = MachineConfig::araxl(8);
  const MachineConfig big = MachineConfig::araxl(64);
  EXPECT_EQ(elems_for_bytes_per_lane(small, 512), 512u);
  EXPECT_EQ(elems_for_bytes_per_lane(big, 512), 4096u);
  EXPECT_THROW(elems_for_bytes_per_lane(small, 13), ContractViolation);
}

}  // namespace
}  // namespace araxl
