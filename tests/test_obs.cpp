// Observability-layer tests: metrics registry semantics, Chrome-trace
// export validity and determinism, and the metrics-are-pure-observers
// contract (attaching a registry must not change a single report byte).
#include <gtest/gtest.h>

#include <thread>

#include "driver/job.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "store/json.hpp"

namespace araxl {
namespace {

using driver::JobResult;
using driver::ReportOptions;
using driver::RunnerOptions;
using driver::SweepSpec;

// ---- metrics registry -------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("a.count");
  c->inc();
  c->add(41);
  EXPECT_EQ(c->value(), 42u);

  obs::Gauge* g = reg.gauge("a.level");
  g->set(7);
  g->set(3);  // gauges overwrite, never accumulate
  EXPECT_EQ(g->value(), 3u);

  obs::Histogram* h = reg.histogram("a.dist");
  h->observe(0);
  h->observe(1);
  h->observe(5);
  h->observe(1000);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->sum(), 1006u);
  EXPECT_EQ(h->max(), 1000u);
  EXPECT_EQ(h->bucket(obs::Histogram::bucket_of(0)), 1u);
  EXPECT_EQ(h->bucket(obs::Histogram::bucket_of(5)), 1u);
}

TEST(Metrics, HistogramBucketOfIsBitWidth) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(~0ull), 64u);
}

TEST(Metrics, FindOrCreateReturnsStablePointers) {
  obs::MetricsRegistry reg;
  obs::Counter* c1 = reg.counter("x");
  // Registering many more instruments must not invalidate c1.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(reg.counter("x"), c1);
  c1->inc();
  EXPECT_EQ(reg.counter("x")->value(), 1u);
}

TEST(Metrics, JsonIsNameSortedAndIndependentOfRegistrationOrder) {
  obs::MetricsRegistry a;
  a.counter("zeta")->add(1);
  a.counter("alpha")->add(2);
  obs::MetricsRegistry b;
  b.counter("alpha")->add(2);
  b.counter("zeta")->add(1);
  EXPECT_EQ(a.to_json(), b.to_json());
  // Valid JSON, with both instruments present.
  const store::JsonValue doc = store::parse_json(a.to_json());
  ASSERT_NE(doc.get("alpha"), nullptr);
  EXPECT_EQ(doc.get("alpha")->as_u64(), 2u);
  EXPECT_EQ(doc.get("zeta")->as_u64(), 1u);
}

TEST(Metrics, ConcurrentFindOrCreateAndCountIsSafe) {
  obs::MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("shared")->inc();
        reg.histogram("dist")->observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared")->value(), 4000u);
  EXPECT_EQ(reg.histogram("dist")->count(), 4000u);
}

// ---- sweep helpers ----------------------------------------------------------

SweepSpec smoke_spec() {
  SweepSpec spec;
  spec.configs.push_back({"araxl:8", MachineConfig::araxl(8)});
  spec.kernels = {"axpy", "fdotproduct"};
  spec.bytes_per_lane = {2048, 4096};
  return spec;
}

// ---- metrics are pure observers --------------------------------------------

TEST(Observability, MetricsOnReportsByteIdenticalToMetricsOff) {
  // The reproducibility contract extended to observability: attaching a
  // registry must not change a single byte of the default JSON/CSV
  // reports — metrics mirror what the engine already counts, they never
  // perturb it.
  const SweepSpec spec = smoke_spec();
  RunnerOptions off;
  off.workers = 2;
  const std::vector<JobResult> r_off = driver::run_sweep(spec, off);

  obs::MetricsRegistry reg;
  RunnerOptions on = off;
  on.metrics = &reg;
  const std::vector<JobResult> r_on = driver::run_sweep(spec, on);

  EXPECT_EQ(driver::to_json(r_off), driver::to_json(r_on));
  EXPECT_EQ(driver::to_csv(r_off), driver::to_csv(r_on));

  // And the registry actually observed the sweep.
  EXPECT_GT(reg.counter("runner.jobs_simulated")->value(), 0u);
  EXPECT_GT(reg.counter("engine.wakeups")->value(), 0u);
}

TEST(Observability, MetricsCaptureEngineAndRunnerPhases) {
  obs::MetricsRegistry reg;
  RunnerOptions opts;
  opts.metrics = &reg;
  const std::vector<JobResult> results = driver::run_sweep(smoke_spec(), opts);
  for (const JobResult& r : results) EXPECT_TRUE(r.ok);

  // Per-unit cycle accounting exists and is consistent: a streaming kernel
  // keeps load units busy for at least some cycles.
  EXPECT_GT(reg.counter("engine.unit.load.busy_cycles")->value(), 0u);
  EXPECT_GT(reg.counter("engine.unit.fpu.busy_cycles")->value(), 0u);
  // Occupancy histogram saw at least one in-flight op per wakeup sample.
  EXPECT_GT(reg.histogram("engine.inflight_occupancy")->count(), 0u);
  // Runner phase timers ran (wall-clock, so only > 0 is assertable).
  EXPECT_GT(reg.counter("runner.phase.simulate_ns")->value(), 0u);
  EXPECT_GT(reg.counter("runner.phase.verify_ns")->value(), 0u);
}

// ---- Chrome-trace export ----------------------------------------------------

std::vector<obs::TraceExportJob> export_jobs(
    const std::vector<JobResult>& results) {
  std::vector<obs::TraceExportJob> jobs;
  for (const JobResult& r : results) {
    jobs.push_back({r.job.kernel, r.trace.get()});
  }
  return jobs;
}

TEST(Observability, TraceExportIsValidJsonWithSpansAndMarkers) {
  RunnerOptions opts;
  opts.capture_trace = true;
  const std::vector<JobResult> results = driver::run_sweep(smoke_spec(), opts);
  const std::string doc_text = export_chrome_trace(export_jobs(results));

  const store::JsonValue doc = store::parse_json(doc_text);
  const store::JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, store::JsonValue::Kind::kArray);

  std::size_t spans = 0;
  std::size_t instants = 0;
  std::size_t metadata = 0;
  bool saw_wakeup = false;
  for (const store::JsonValue& ev : events->items) {
    const std::string& ph = ev.get("ph")->as_string();
    if (ph == "X") {
      ++spans;
      // Spans carry cycle timestamps and a duration.
      EXPECT_NE(ev.get("ts"), nullptr);
      EXPECT_NE(ev.get("dur"), nullptr);
    } else if (ph == "i") {
      ++instants;
      if (ev.get("name")->as_string() == "wakeup") saw_wakeup = true;
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_GT(spans, 0u);
  EXPECT_GT(instants, 0u);
  EXPECT_GT(metadata, 0u);
  EXPECT_TRUE(saw_wakeup);
}

TEST(Observability, TraceExportDeterministicAcrossWorkerCounts) {
  const SweepSpec spec = smoke_spec();
  RunnerOptions opts;
  opts.capture_trace = true;
  opts.workers = 1;
  const std::string doc1 = export_chrome_trace(
      export_jobs(driver::run_sweep(spec, opts)));
  opts.workers = 4;
  const std::string doc4 = export_chrome_trace(
      export_jobs(driver::run_sweep(spec, opts)));
  EXPECT_EQ(doc1, doc4);
}

TEST(Observability, TraceExportHandlesNullTraces) {
  // Cache-replayed jobs carry no trace; the exporter must still emit their
  // process metadata so job indices stay dense.
  std::vector<obs::TraceExportJob> jobs;
  jobs.push_back({"replayed", nullptr});
  const store::JsonValue doc =
      store::parse_json(export_chrome_trace(jobs));
  const store::JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->items.empty());
  EXPECT_EQ(events->items[0].get("ph")->as_string(), "M");
}

// ---- provenance columns -----------------------------------------------------

TEST(Observability, ProvenanceColumnsZeroedByDefaultLiveOnRequest) {
  RunnerOptions opts;
  const std::vector<JobResult> results = driver::run_sweep(smoke_spec(), opts);

  const store::JsonValue dflt = store::parse_json(driver::to_json(results));
  const store::JsonValue* row = &dflt.get("results")->items[0];
  const store::JsonValue* stats = row->get("stats");
  ASSERT_NE(stats->get("batch_rejects"), nullptr);
  for (const auto& [name, v] : stats->get("batch_rejects")->fields) {
    EXPECT_EQ(v.as_u64(), 0u) << name;
  }
  EXPECT_EQ(stats->get("wakeups_total")->as_u64(), 0u);
  // The stall taxonomy follows the same convention: keys always present,
  // zeroed unless live provenance is requested.
  ASSERT_NE(stats->get("stall_cycles"), nullptr);
  for (const auto& [name, v] : stats->get("stall_cycles")->fields) {
    EXPECT_EQ(v.as_u64(), 0u) << name;
  }
  EXPECT_EQ(stats->get("fpu_busy_slots")->as_u64(), 0u);

  ReportOptions live;
  live.live_provenance = true;
  const store::JsonValue ldoc =
      store::parse_json(driver::to_json(results, live));
  const store::JsonValue* lstats = ldoc.get("results")->items[0].get("stats");
  EXPECT_GT(lstats->get("wakeups_total")->as_u64(), 0u);
  EXPECT_GT(lstats->get("fpu_busy_slots")->as_u64(), 0u);
  std::uint64_t live_stalls = 0;
  for (const auto& [name, v] : lstats->get("stall_cycles")->fields) {
    live_stalls += v.as_u64();
  }
  EXPECT_GT(live_stalls, 0u);
}

TEST(Observability, TraceSpansCarryDominantStallAnnotation) {
  // Every FPU instruction the attributor charged gets its argmax stall
  // reason on the Perfetto span; unattributed (non-FPU) spans stay clean.
  const SweepSpec spec = smoke_spec();
  RunnerOptions opts;
  opts.capture_trace = true;
  const std::vector<JobResult> results = driver::run_sweep(spec, opts);
  const store::JsonValue doc = store::parse_json(
      export_chrome_trace(export_jobs(results)));
  std::size_t annotated = 0;
  for (const store::JsonValue& ev : doc.get("traceEvents")->items) {
    if (ev.get("ph")->as_string() != "X") continue;
    const store::JsonValue* args = ev.get("args");
    const store::JsonValue* stall = args->get("stall");
    if (stall == nullptr) continue;
    ++annotated;
    // The reason is one of the taxonomy names, with a positive slot count.
    bool known = false;
    for (std::size_t r = 0; r < kNumStallReasons; ++r) {
      if (stall->as_string() == stall_reason_name(static_cast<StallReason>(r))) {
        known = true;
      }
    }
    EXPECT_TRUE(known) << stall->as_string();
    EXPECT_GT(args->get("stall_slots")->as_u64(), 0u);
  }
  EXPECT_GT(annotated, 0u);
}

}  // namespace
}  // namespace araxl
