// Tests for the fleet-orchestration layer (src/serve/): the crash-safe
// job ledger (header + done records, torn-line recovery, duplicate
// dedupe), the filesystem lease protocol (atomic claim, generation-bumped
// takeover, heartbeat renewal on a fake clock), the straggler/expiry
// scheduling policy, and the end-to-end worker loop — including the
// byte-identity contract: a fleet-assembled report equals the
// single-process sweep's report exactly.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/faults.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/spec.hpp"
#include "serve/ledger.hpp"
#include "serve/lease.hpp"
#include "serve/worker.hpp"
#include "sim/cancel.hpp"
#include "store/fingerprint.hpp"

namespace araxl {
namespace {

using serve::DoneRecord;
using serve::Lease;
using serve::LedgerLoad;
using serve::LedgerSpec;
using serve::SpeculationPolicy;
using serve::WorkItem;
using serve::WorkKind;

std::string temp_path(const char* name) {
  return testing::TempDir() + "araxl_serve_test_" + name + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".jsonl";
}

/// Removes a ledger file and its lease directory.
void cleanup(const std::string& ledger) {
  std::remove(ledger.c_str());
  const std::string dir = serve::lease_dir_for(ledger);
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::remove(serve::lease_path(dir, i).c_str());
  }
  ::rmdir(dir.c_str());
}

/// A tiny 2-job sweep (2 configs x 1 kernel x 1 B/lane) with a test salt
/// so the ledger version never depends on the live build fingerprint.
LedgerSpec tiny_spec() {
  LedgerSpec spec;
  spec.configs = {"araxl:8", "ara2:8"};
  spec.kernels = {"stream_triad"};
  spec.bytes_per_lane = {64};
  spec.base_seed = 0;
  spec.verify = true;
  spec.version = "serve-test-salt";
  spec.jobs = 2;
  return spec;
}

DoneRecord done_record(std::uint64_t job, const std::string& worker,
                       const std::string& status) {
  DoneRecord rec;
  rec.job = job;
  rec.fingerprint = "fp-" + std::to_string(job);
  rec.worker = worker;
  rec.status = status;
  rec.attempts = 1;
  rec.duration_ms = 10 + job;
  rec.json_record = "{\"job\":" + std::to_string(job) + "}";
  rec.csv_row = "row-" + std::to_string(job) + "\n";
  return rec;
}

// ---- ledger serialization ---------------------------------------------------

TEST(Ledger, HeaderRoundTrips) {
  const LedgerSpec spec = tiny_spec();
  const LedgerSpec back = serve::parse_header(serve::serialize_header(spec));
  EXPECT_EQ(back.configs, spec.configs);
  EXPECT_EQ(back.kernels, spec.kernels);
  EXPECT_EQ(back.bytes_per_lane, spec.bytes_per_lane);
  EXPECT_EQ(back.base_seed, spec.base_seed);
  EXPECT_EQ(back.verify, spec.verify);
  EXPECT_EQ(back.version, spec.version);
  EXPECT_EQ(back.jobs, spec.jobs);
}

TEST(Ledger, DoneRecordRoundTripsWithExactReportTexts) {
  DoneRecord rec = done_record(1, "w1", "ok");
  rec.json_record = "{\"x\":\"quoted \\\"stuff\\\", commas, \\n\"}";
  rec.csv_row = "a,b,\"c,d\"\n";
  const DoneRecord back = serve::parse_done(serve::serialize_done(rec));
  EXPECT_EQ(back.job, rec.job);
  EXPECT_EQ(back.fingerprint, rec.fingerprint);
  EXPECT_EQ(back.worker, rec.worker);
  EXPECT_EQ(back.status, rec.status);
  EXPECT_EQ(back.attempts, rec.attempts);
  EXPECT_EQ(back.duration_ms, rec.duration_ms);
  EXPECT_EQ(back.json_record, rec.json_record);
  EXPECT_EQ(back.csv_row, rec.csv_row);
}

TEST(Ledger, TamperedLineFailsItsChecksum) {
  std::string line = serve::serialize_done(done_record(1, "w1", "ok"));
  line.replace(line.find("\"job\":1"), 7, "\"job\":2");
  EXPECT_THROW((void)serve::parse_done(line), ContractViolation);
}

// ---- ledger file lifecycle --------------------------------------------------

TEST(Ledger, CreateLoadAppendRoundTrips) {
  const std::string path = temp_path("lifecycle");
  cleanup(path);
  serve::ledger_create(path, tiny_spec());
  // Enqueue-once: a second serve against the same path must refuse.
  EXPECT_THROW(serve::ledger_create(path, tiny_spec()), ContractViolation);

  LedgerLoad led = serve::ledger_load(path);
  EXPECT_EQ(led.spec.jobs, 2u);
  EXPECT_EQ(led.done_count, 0u);
  EXPECT_FALSE(led.complete());

  serve::ledger_append_done(path, done_record(0, "w1", "ok"));
  serve::ledger_append_done(path, done_record(1, "w2", "ok"));
  led = serve::ledger_load(path);
  EXPECT_EQ(led.done_count, 2u);
  EXPECT_TRUE(led.complete());
  ASSERT_TRUE(led.done[0].has_value());
  EXPECT_EQ(led.done[0]->worker, "w1");
  cleanup(path);
}

TEST(Ledger, LoadRejectsMissingFileAndMissingHeader) {
  const std::string path = temp_path("missing");
  cleanup(path);
  EXPECT_THROW((void)serve::ledger_load(path), ContractViolation);
  std::ofstream(path) << "not a header line\n";
  EXPECT_THROW((void)serve::ledger_load(path), ContractViolation);
  cleanup(path);
}

TEST(Ledger, DuplicateCompletionsAreIdempotent) {
  const std::string path = temp_path("dupes");
  cleanup(path);
  serve::ledger_create(path, tiny_spec());
  // Failure, then success, then a late duplicate failure (a straggler that
  // lost its lease finishing after the re-dispatch already succeeded):
  // "ok" wins and is never superseded.
  serve::ledger_append_done(path, done_record(0, "w1", "timeout"));
  serve::ledger_append_done(path, done_record(0, "w2", "ok"));
  serve::ledger_append_done(path, done_record(0, "w3", "injected"));
  // Two equal-rank records: the later line wins.
  serve::ledger_append_done(path, done_record(1, "w1", "ok"));
  serve::ledger_append_done(path, done_record(1, "w2", "ok"));

  const LedgerLoad led = serve::ledger_load(path);
  EXPECT_EQ(led.done_count, 2u);
  EXPECT_EQ(led.duplicates, 3u);
  ASSERT_TRUE(led.done[0].has_value());
  EXPECT_EQ(led.done[0]->status, "ok");
  EXPECT_EQ(led.done[0]->worker, "w2");
  ASSERT_TRUE(led.done[1].has_value());
  EXPECT_EQ(led.done[1]->worker, "w2");
  cleanup(path);
}

TEST(Ledger, TornTailIsHealedAndCorruptLinesAreSkipped) {
  const std::string path = temp_path("torn");
  cleanup(path);
  serve::ledger_create(path, tiny_spec());
  serve::ledger_append_done(path, done_record(0, "w1", "ok"));
  {
    // A writer crashed mid-append: half a line, no trailing newline.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "{\"type\":\"done\",\"job\":1,\"trunca";
  }
  // The next append heals the tail (newline first), so the good record
  // lands on its own line instead of gluing onto the torn one.
  serve::ledger_append_done(path, done_record(1, "w2", "ok"));

  const LedgerLoad led = serve::ledger_load(path);
  EXPECT_EQ(led.done_count, 2u);
  EXPECT_EQ(led.bad_lines, 1u);
  EXPECT_TRUE(led.complete());
  ASSERT_TRUE(led.done[1].has_value());
  EXPECT_EQ(led.done[1]->worker, "w2");
  cleanup(path);
}

TEST(Ledger, InjectedAppendFaultsThrowAndRecordIsRetriable) {
  const std::string path = temp_path("faults");
  cleanup(path);
  serve::ledger_create(path, tiny_spec());
  FaultInjector faults("seed=1,ledger.write=1");
  EXPECT_THROW(
      serve::ledger_append_done(path, done_record(0, "w1", "ok"), &faults),
      store::StoreIoError);
  // The torn line from the injected short write is skipped on load...
  LedgerLoad led = serve::ledger_load(path);
  EXPECT_EQ(led.done_count, 0u);
  // ...and a clean retry of the same record commits (healing whatever the
  // injected short write left at the tail).
  serve::ledger_append_done(path, done_record(0, "w1", "ok"));
  led = serve::ledger_load(path);
  EXPECT_EQ(led.done_count, 1u);
  cleanup(path);
}

// ---- report assembly --------------------------------------------------------

TEST(Ledger, ReportAssemblyRequiresCompleteness) {
  const std::string path = temp_path("report");
  cleanup(path);
  serve::ledger_create(path, tiny_spec());
  serve::ledger_append_done(path, done_record(0, "w1", "ok"));
  LedgerLoad led = serve::ledger_load(path);
  EXPECT_THROW((void)serve::ledger_report_json(led), ContractViolation);
  EXPECT_THROW((void)serve::ledger_report_csv(led), ContractViolation);

  serve::ledger_append_done(path, done_record(1, "w1", "ok"));
  led = serve::ledger_load(path);
  const std::string json = serve::ledger_report_json(led);
  EXPECT_EQ(json,
            "{\"results\":[\n{\"job\":0},\n{\"job\":1}\n]}\n");
  const std::string csv = serve::ledger_report_csv(led);
  EXPECT_EQ(csv, driver::csv_header() + "row-0\nrow-1\n");
  cleanup(path);
}

// ---- leases -----------------------------------------------------------------

struct LeaseDirFixture : testing::Test {
  std::string ledger = temp_path("leasedir");
  std::string dir = serve::lease_dir_for(ledger);

  void SetUp() override {
    cleanup(ledger);
    serve::ensure_lease_dir(dir);
  }
  void TearDown() override { cleanup(ledger); }
};

TEST_F(LeaseDirFixture, ClaimIsExclusive) {
  const auto a = serve::try_claim(dir, 3, "w1", 1000, 500);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->generation, 1u);
  EXPECT_EQ(a->expires_ms, 1500u);
  // The kernel arbitrates O_EXCL: the second claimant loses.
  EXPECT_FALSE(serve::try_claim(dir, 3, "w2", 1001, 500).has_value());
  const auto read = serve::read_lease(dir, 3);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->worker, "w1");
}

TEST_F(LeaseDirFixture, CorruptLeaseReadsAsClaimable) {
  std::ofstream(serve::lease_path(dir, 5)) << "torn garbage";
  EXPECT_FALSE(serve::read_lease(dir, 5).has_value());
}

TEST_F(LeaseDirFixture, TakeOverBumpsGenerationAndDisplacesOldOwner) {
  const auto a = serve::try_claim(dir, 0, "w1", 1000, 500);
  ASSERT_TRUE(a.has_value());
  // w1 goes silent; at t=2000 the lease is expired and w2 takes over.
  const auto b = serve::take_over(dir, *a, "w2", 2000, 500);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->generation, 2u);
  EXPECT_EQ(b->worker, "w2");
  // w1 wakes up and tries to heartbeat: the read-back shows a foreign
  // (worker, generation), so the renewal reports lost ownership...
  EXPECT_FALSE(serve::renew(dir, *a, 2100, 500).has_value());
  // ...and w1's release is a no-op on w2's lease.
  serve::release(dir, *a);
  const auto still = serve::read_lease(dir, 0);
  ASSERT_TRUE(still.has_value());
  EXPECT_EQ(still->worker, "w2");
}

TEST_F(LeaseDirFixture, HeartbeatRenewalExtendsExpiryOnFakeClock) {
  const auto a = serve::try_claim(dir, 7, "w1", 1000, 500);
  ASSERT_TRUE(a.has_value());
  const auto r1 = serve::renew(dir, *a, 1400, 500);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->expires_ms, 1900u);
  EXPECT_EQ(r1->generation, 1u);        // renewal never bumps generation
  EXPECT_EQ(r1->claimed_ms, 1000u);     // straggler age keeps accruing
  const auto r2 = serve::renew(dir, *r1, 1800, 500);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->expires_ms, 2300u);
  serve::release(dir, *r2);
  EXPECT_FALSE(serve::read_lease(dir, 7).has_value());
}

TEST_F(LeaseDirFixture, InjectedClaimAndRenewFaultsDrop) {
  FaultInjector faults("seed=1,lease.claim=1,lease.renew=1");
  EXPECT_FALSE(serve::try_claim(dir, 1, "w1", 0, 500, &faults).has_value());
  const auto a = serve::try_claim(dir, 1, "w1", 0, 500);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(serve::renew(dir, *a, 100, 500, &faults).has_value());
  // A dropped renewal leaves the lease intact (just not extended).
  const auto read = serve::read_lease(dir, 1);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->expires_ms, 500u);
}

// ---- scheduling policy ------------------------------------------------------

/// A LedgerLoad with `jobs` pending slots and the given done durations.
LedgerLoad load_with_done(std::size_t jobs,
                          const std::vector<std::uint64_t>& durations) {
  LedgerLoad led;
  led.spec.jobs = jobs;
  led.done.resize(jobs);
  for (std::size_t i = 0; i < durations.size(); ++i) {
    DoneRecord rec = done_record(i, "w0", "ok");
    rec.duration_ms = durations[i];
    led.done[i] = rec;
    ++led.done_count;
  }
  return led;
}

Lease live_lease(std::uint64_t job, const std::string& worker,
                 std::uint64_t claimed_ms, std::uint64_t expires_ms) {
  Lease l;
  l.job = job;
  l.worker = worker;
  l.generation = 1;
  l.claimed_ms = claimed_ms;
  l.expires_ms = expires_ms;
  return l;
}

TEST(FindWork, PrefersFreshOverExpiredOverStraggler) {
  const LedgerLoad led = load_with_done(4, {});
  std::vector<std::optional<Lease>> leases(4);
  leases[0] = live_lease(0, "other", 0, 100);  // expired at now=1000
  // job 1 unclaimed, jobs 2/3 live
  leases[2] = live_lease(2, "other", 900, 2000);
  leases[3] = live_lease(3, "other", 900, 2000);

  const auto work =
      serve::find_work(led, leases, "me", 1000, 0, SpeculationPolicy{});
  ASSERT_TRUE(work.has_value());
  EXPECT_EQ(work->kind, WorkKind::kFresh);
  EXPECT_EQ(work->job, 1u);

  // With job 1 also leased and live, the expired lease is next best.
  leases[1] = live_lease(1, "other", 900, 2000);
  const auto work2 =
      serve::find_work(led, leases, "me", 1000, 0, SpeculationPolicy{});
  ASSERT_TRUE(work2.has_value());
  EXPECT_EQ(work2->kind, WorkKind::kExpired);
  EXPECT_EQ(work2->job, 0u);
}

TEST(FindWork, SpeculatesOnStragglersOnlyWithEnoughMedianEvidence) {
  SpeculationPolicy policy;
  policy.straggler_mult = 3.0;
  policy.floor_ms = 100;
  policy.min_done = 3;

  // 3 done jobs with median 100 ms -> threshold max(100, 300) = 300 ms.
  LedgerLoad led = load_with_done(5, {100, 100, 100});
  std::vector<std::optional<Lease>> leases(5);
  leases[3] = live_lease(3, "other", 0, 99000);    // age 1000 > 300
  leases[4] = live_lease(4, "other", 900, 99000);  // age 100 <= 300

  const auto work = serve::find_work(led, leases, "me", 1000, 0, policy);
  ASSERT_TRUE(work.has_value());
  EXPECT_EQ(work->kind, WorkKind::kStraggler);
  EXPECT_EQ(work->job, 3u);

  // Below min_done the median is not trusted: no speculation at all (job
  // 2 is now pending too, so it gets a live lease to keep it unclaimable).
  LedgerLoad thin = load_with_done(5, {100, 100});
  std::vector<std::optional<Lease>> thin_leases = leases;
  thin_leases[2] = live_lease(2, "other", 900, 99000);
  const auto none = serve::find_work(thin, thin_leases, "me", 1000, 0, policy);
  EXPECT_FALSE(none.has_value());
}

TEST(FindWork, NeverSpeculatesAgainstOwnLease) {
  SpeculationPolicy policy;
  policy.floor_ms = 100;
  LedgerLoad led = load_with_done(4, {50, 50, 50});
  std::vector<std::optional<Lease>> leases(4);
  leases[3] = live_lease(3, "me", 0, 99000);  // ancient, but it's ours
  EXPECT_FALSE(
      serve::find_work(led, leases, "me", 5000, 0, policy).has_value());
  // The same lease held by someone else IS a straggler.
  leases[3]->worker = "other";
  const auto work = serve::find_work(led, leases, "me", 5000, 0, policy);
  ASSERT_TRUE(work.has_value());
  EXPECT_EQ(work->kind, WorkKind::kStraggler);
}

TEST(MedianDuration, IgnoresPendingSlots) {
  EXPECT_EQ(serve::median_done_duration_ms(load_with_done(8, {})), 0u);
  EXPECT_EQ(serve::median_done_duration_ms(
                load_with_done(8, {10, 1000, 20, 30, 40})),
            30u);
}

// ---- worker loop ------------------------------------------------------------

driver::RunnerOptions test_runner_opts() {
  driver::RunnerOptions opts;
  opts.cache_salt = "serve-test-salt";  // matches tiny_spec().version
  return opts;
}

TEST(Worker, CompletesLedgerAndReportMatchesSingleProcessByteForByte) {
  const std::string path = temp_path("worker_e2e");
  cleanup(path);
  const LedgerSpec spec = tiny_spec();
  serve::ledger_create(path, spec);

  serve::WorkerOptions wopts;
  wopts.ledger_path = path;
  wopts.worker_id = "w1";
  wopts.lease_ttl_ms = 60000;
  wopts.runner = test_runner_opts();
  const serve::WorkerReport rep = serve::run_worker(wopts);
  EXPECT_EQ(rep.executed, 2u);
  EXPECT_EQ(rep.ok, 2u);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_FALSE(rep.cancelled);

  const LedgerLoad led = serve::ledger_load(path);
  ASSERT_TRUE(led.complete());

  // The reference: the exact same jobs through the single-process path.
  const std::vector<driver::Job> jobs = serve::expand_ledger_jobs(spec);
  std::vector<driver::JobResult> results;
  results.reserve(jobs.size());
  for (const driver::Job& job : jobs) {
    results.push_back(driver::run_job(job, test_runner_opts()));
  }
  EXPECT_EQ(serve::ledger_report_json(led), driver::to_json(results));
  EXPECT_EQ(serve::ledger_report_csv(led), driver::to_csv(results));
  cleanup(path);
}

TEST(Worker, TakesOverExpiredLeaseFromDeadWorker) {
  const std::string path = temp_path("worker_expiry");
  cleanup(path);
  serve::ledger_create(path, tiny_spec());
  const std::string dir = serve::lease_dir_for(path);
  serve::ensure_lease_dir(dir);
  // A "worker" that died after claiming job 0: its lease expired long ago
  // on the monotonic clock (claimed at t=0 with a 1 ms TTL).
  ASSERT_TRUE(serve::try_claim(dir, 0, "dead-worker", 0, 1).has_value());

  serve::WorkerOptions wopts;
  wopts.ledger_path = path;
  wopts.worker_id = "w2";
  wopts.lease_ttl_ms = 60000;
  wopts.runner = test_runner_opts();
  const serve::WorkerReport rep = serve::run_worker(wopts);
  EXPECT_EQ(rep.executed, 2u);
  EXPECT_EQ(rep.takeovers, 1u);
  EXPECT_TRUE(serve::ledger_load(path).complete());
  // The taken-over lease was released after commit.
  EXPECT_FALSE(serve::read_lease(dir, 0).has_value());
  cleanup(path);
}

TEST(Worker, RefusesVersionMismatchedLedger) {
  const std::string path = temp_path("worker_version");
  cleanup(path);
  LedgerSpec spec = tiny_spec();
  spec.version = "some-other-build";
  serve::ledger_create(path, spec);
  serve::WorkerOptions wopts;
  wopts.ledger_path = path;
  wopts.worker_id = "w1";
  wopts.runner = test_runner_opts();
  EXPECT_THROW((void)serve::run_worker(wopts), ContractViolation);
  cleanup(path);
}

TEST(Worker, CancelTokenDrainsBeforeClaimingAnything) {
  const std::string path = temp_path("worker_cancel");
  cleanup(path);
  serve::ledger_create(path, tiny_spec());
  CancelToken cancel;
  cancel.request();
  serve::WorkerOptions wopts;
  wopts.ledger_path = path;
  wopts.worker_id = "w1";
  wopts.runner = test_runner_opts();
  wopts.runner.cancel = &cancel;
  const serve::WorkerReport rep = serve::run_worker(wopts);
  EXPECT_TRUE(rep.cancelled);
  EXPECT_EQ(rep.executed, 0u);
  EXPECT_EQ(serve::ledger_load(path).done_count, 0u);
  cleanup(path);
}

TEST(Worker, PulseHookFiresDuringSimulation) {
  // The lease heartbeat rides RunnerOptions::pulse at the engine's check
  // cadence (~every 1024 wakeups), so the job must be big enough to cross
  // that cadence at least once — fmatmul at 512 B/lane on 64 lanes makes
  // a few thousand wakeups.
  driver::SweepSpec sweep;
  sweep.configs.push_back(driver::parse_config_spec("araxl:64"));
  sweep.kernels = {"fmatmul"};
  sweep.bytes_per_lane = {512};
  const std::vector<driver::Job> jobs = driver::expand(sweep);
  ASSERT_EQ(jobs.size(), 1u);
  driver::RunnerOptions opts = test_runner_opts();
  std::size_t pulses = 0;
  opts.pulse = [&pulses] { ++pulses; };
  const driver::JobResult res = driver::run_job(jobs[0], opts);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_GT(pulses, 0u);
}

}  // namespace
}  // namespace araxl
