// PPA model tests: area anchors against the paper's published numbers
// (Fig. 9, Table II), frequency rules, power-model anchors (Table III),
// SoA data sanity, and floorplan invariants.
#include <gtest/gtest.h>

#include <algorithm>

#include "isa/vtype.hpp"  // kMaxVlenBits
#include "ppa/area_model.hpp"
#include "ppa/floorplan.hpp"
#include "ppa/freq_model.hpp"
#include "ppa/power_model.hpp"
#include "ppa/soa.hpp"

namespace araxl {
namespace {

const AreaModel kArea;
const FreqModel kFreq;
const PowerModel kPower;

TEST(Area, TableIIAnchors) {
  // Paper Table II, kGE within 0.1%.
  const struct {
    unsigned lanes;
    double clusters, cva6, glsu, ringi, reqi, total;
  } rows[] = {
      {16, 11354, 936, 291, 25, 34, 12641},
      {32, 22708, 901, 618, 44, 81, 24352},
      {64, 45415, 931, 1385, 76, 144, 47950},
  };
  for (const auto& r : rows) {
    const AreaBreakdown bd = kArea.breakdown(MachineConfig::araxl(r.lanes));
    EXPECT_NEAR(bd.block_kge("Clusters"), r.clusters, r.clusters * 0.001);
    EXPECT_NEAR(bd.block_kge("CVA6"), r.cva6, 1.0);
    EXPECT_NEAR(bd.block_kge("GLSU"), r.glsu, r.glsu * 0.01);
    EXPECT_NEAR(bd.block_kge("RINGI"), r.ringi, 2.0);
    EXPECT_NEAR(bd.block_kge("REQI"), r.reqi, 1.0);
    EXPECT_NEAR(bd.total_kge(), r.total, r.total * 0.002);
  }
}

TEST(Area, LinearScalingClaim) {
  // Paper: "almost perfect area scaling (2x when doubling the lane count)"
  // and 64L total = 3.8x the 16L total.
  const double t16 = kArea.total_kge(MachineConfig::araxl(16));
  const double t32 = kArea.total_kge(MachineConfig::araxl(32));
  const double t64 = kArea.total_kge(MachineConfig::araxl(64));
  EXPECT_NEAR(t32 / t16, 1.93, 0.05);
  EXPECT_NEAR(t64 / t32, 1.97, 0.05);
  EXPECT_NEAR(t64 / t16, 3.79, 0.05);
}

TEST(Area, Fig9Anchors) {
  const AreaBreakdown ara2 = kArea.breakdown(MachineConfig::ara2(16));
  EXPECT_NEAR(ara2.block_kge("LANES"), 10048, 1);
  EXPECT_NEAR(ara2.block_kge("MASKU"), 1105, 1);
  EXPECT_NEAR(ara2.block_kge("SLDU"), 196, 1);
  EXPECT_NEAR(ara2.block_kge("VLSU"), 1677, 1);
  EXPECT_NEAR(ara2.block_kge("SEQ+DISP"), 52, 1);
  EXPECT_NEAR(ara2.total_kge(), 14773, 5);

  const AreaBreakdown araxl = kArea.fig9_breakdown(MachineConfig::araxl(16));
  EXPECT_NEAR(araxl.block_kge("LANES"), 10032, 1);
  EXPECT_NEAR(araxl.block_kge("MASKU"), 328, 1);
  EXPECT_NEAR(araxl.block_kge("SLDU"), 425, 1);
  EXPECT_NEAR(araxl.block_kge("VLSU"), 507, 3);
  EXPECT_NEAR(araxl.block_kge("SEQ+DISP"), 134, 1);
}

TEST(Area, A2AReductionClaims) {
  // Paper Fig. 9 headline: A2A units -58%, total -14%.
  const AreaBreakdown ara2 = kArea.breakdown(MachineConfig::ara2(16));
  const AreaBreakdown araxl = kArea.fig9_breakdown(MachineConfig::araxl(16));
  const double a2a2 = ara2.block_kge("MASKU") + ara2.block_kge("SLDU") +
                      ara2.block_kge("VLSU");
  const double a2ax = araxl.block_kge("MASKU") + araxl.block_kge("SLDU") +
                      araxl.block_kge("VLSU");
  EXPECT_NEAR(a2ax / a2a2, 0.42, 0.02);
  EXPECT_NEAR(araxl.total_kge() / ara2.total_kge(), 0.86, 0.01);
}

TEST(Area, InterfacesAreSmallFraction) {
  // Paper: GLSU+RINGI+REQI account for only ~3% of the total.
  for (unsigned lanes : {16u, 32u, 64u}) {
    const AreaBreakdown bd = kArea.breakdown(MachineConfig::araxl(lanes));
    const double ifc = bd.block_kge("GLSU") + bd.block_kge("RINGI") +
                       bd.block_kge("REQI");
    EXPECT_LT(ifc / bd.total_kge(), 0.04) << lanes;
  }
}

TEST(Area, QuadraticA2ATermsDominateAra2Growth) {
  // Ara2's VLSU/MASKU grow ~4x when doubling lanes (the scalability
  // problem AraXL removes).
  const AreaBreakdown a8 = kArea.breakdown(MachineConfig::ara2(8));
  const AreaBreakdown a16 = kArea.breakdown(MachineConfig::ara2(16));
  EXPECT_NEAR(a16.block_kge("VLSU") / a8.block_kge("VLSU"), 4.0, 0.01);
  EXPECT_NEAR(a16.block_kge("MASKU") / a8.block_kge("MASKU"), 4.0, 0.01);
}

TEST(Area, GeToMm2MatchesTableIII) {
  // 0.201 um^2/GE reproduces the paper's GFLOPS/mm^2 denominators.
  EXPECT_NEAR(kArea.total_mm2(MachineConfig::araxl(16)), 2.54, 0.03);
  EXPECT_NEAR(kArea.total_mm2(MachineConfig::araxl(64)), 9.64, 0.1);
  EXPECT_NEAR(kArea.total_mm2(MachineConfig::ara2(16)), 2.97, 0.03);
}

TEST(Freq, PaperValues) {
  EXPECT_DOUBLE_EQ(kFreq.freq_ghz(MachineConfig::araxl(16)), 1.40);
  EXPECT_DOUBLE_EQ(kFreq.freq_ghz(MachineConfig::araxl(32)), 1.40);
  EXPECT_DOUBLE_EQ(kFreq.freq_ghz(MachineConfig::araxl(64)), 1.15);
  EXPECT_NEAR(kFreq.freq_ghz(MachineConfig::ara2(16)), 1.08, 1e-9);
}

TEST(Freq, Ara2LineClampsToFloorOverFullLaneGrid) {
  // The raw A2A wiring line 1.40 - 0.02*L crosses zero past ~70 lanes; the
  // model must clamp to a positive floor everywhere, including lane counts
  // far outside Ara2's validated 2..16 range (the model is total — PPA
  // what-ifs feed it unvalidated shapes).
  for (unsigned lanes = 1; lanes <= 1024; lanes *= 2) {
    MachineConfig cfg;
    cfg.kind = MachineKind::kAra2;
    cfg.topo = Topology{1, lanes};
    const double f = kFreq.freq_ghz(cfg);
    EXPECT_GT(f, 0.0) << lanes << " lanes";
    EXPECT_GE(f, kAra2FreqFloorGhz - 1e-12) << lanes << " lanes";
    EXPECT_LE(f, 1.40) << lanes << " lanes";
  }
  // Inside the calibrated range the clamp must not engage.
  EXPECT_DOUBLE_EQ(kFreq.freq_ghz(MachineConfig::ara2(16)), 1.40 - 0.02 * 16);
  // Far outside, the floor holds exactly.
  MachineConfig big;
  big.kind = MachineKind::kAra2;
  big.topo = Topology{1, 128};
  EXPECT_DOUBLE_EQ(kFreq.freq_ghz(big), kAra2FreqFloorGhz);
}

TEST(Freq, HierarchyRestoresTheTimingCorner) {
  // Congestion tracks the longest single ring: a flat 16-stop ring (64
  // lanes) degrades to 1.15 GHz, while the hierarchical 128- and 256-lane
  // machines keep every ring at <= 8 stops and hold 1.40 GHz — the paper's
  // physical-scalability argument extended one level.
  EXPECT_DOUBLE_EQ(kFreq.freq_ghz(MachineConfig::araxl(128)), 1.40);
  EXPECT_DOUBLE_EQ(kFreq.freq_ghz(MachineConfig::araxl(256)), 1.40);
  // But an over-long ring at either level still congests.
  EXPECT_DOUBLE_EQ(kFreq.freq_ghz(MachineConfig::araxl_hier(2, 16, 4)), 1.15);
  EXPECT_DOUBLE_EQ(kFreq.freq_ghz(MachineConfig::araxl_hier(16, 2, 4)), 1.15);
}

TEST(Area, HierarchicalScalingStaysNearLinear) {
  // Doubling lanes through the group level must preserve the paper's
  // "almost perfect area scaling" — the interface overheads grow with
  // ring stops and tree depth, not quadratically in the machine.
  const double t64 = kArea.total_kge(MachineConfig::araxl(64));
  const double t128 = kArea.total_kge(MachineConfig::araxl(128));
  const double t256 = kArea.total_kge(MachineConfig::araxl(256));
  EXPECT_NEAR(t128 / t64, 1.98, 0.05);
  EXPECT_NEAR(t256 / t128, 1.98, 0.05);
  // Top-level interfaces stay a small fraction at 256 lanes.
  const AreaBreakdown bd = kArea.breakdown(MachineConfig::araxl(256));
  const double ifc = bd.block_kge("GLSU") + bd.block_kge("RINGI") +
                     bd.block_kge("REQI");
  EXPECT_LT(ifc / bd.total_kge(), 0.04);
  // And the hierarchical GLSU shuffle is cheaper than the flat quadratic
  // extrapolated to the same cluster count would be.
  const InterconnectSpec h = MachineConfig::araxl(128).interconnect();
  const double flat_quad = 68.25 * 32 + 1.125 * 32 * 32;
  EXPECT_LT(kArea.glsu_kge(h), flat_quad);
}

TEST(Floorplan, HierarchicalMachinePlacesGroupMacros) {
  const Floorplan fp = machine_floorplan(MachineConfig::araxl(128));
  unsigned groups = 0;
  for (const PlacedBlock& b : fp.blocks) {
    if (b.name.rfind("group", 0) == 0) ++groups;
    EXPECT_GT(b.area(), 0.0);
  }
  EXPECT_EQ(groups, 4u);
  // The top-level interfaces place alongside the group macros (CVA6 is too
  // small relative to a 32-lane group macro for its render label to fit,
  // so assert on the block list).
  for (const char* name : {"CVA6", "GLSU", "RINGI", "REQI"}) {
    bool found = false;
    for (const PlacedBlock& b : fp.blocks) found |= b.name == name;
    EXPECT_TRUE(found) << name;
  }
  const std::string art = fp.render(60);
  EXPECT_NE(art.find("group0"), std::string::npos);
}

TEST(Power, HierarchicalEfficiencyStaysOnThePaperPlateau) {
  // The per-group quadratic wire terms keep GFLOPS/W roughly flat through
  // the hierarchy level (the flat quadratic would start eating it).
  const MachineConfig cfg = MachineConfig::araxl(128);
  const double f = kFreq.freq_ghz(cfg);
  const double eff = kPower.gflops_per_w(cfg, f, 0.99 * 2 * 128, 0.99);
  EXPECT_GT(eff, 38.0);
  EXPECT_LT(eff, 44.0);
}

TEST(Freq, AraXLFasterThanAra2AtSameLanes) {
  // Paper: +30% maximum frequency at 16 lanes.
  const double xl = kFreq.freq_ghz(MachineConfig::araxl(16));
  const double a2 = kFreq.freq_ghz(MachineConfig::ara2(16));
  EXPECT_NEAR(xl / a2, 1.30, 0.01);
}

TEST(Power, TableIIIEfficiencyAnchors) {
  // Evaluate at the paper's operating points (fmatmul, ~99% utilization).
  const struct {
    MachineConfig cfg;
    double gflops, eff;
  } rows[] = {
      {MachineConfig::araxl(16), 44.3, 39.6},
      {MachineConfig::araxl(32), 87.2, 40.4},
      {MachineConfig::araxl(64), 146.0, 40.1},
      {MachineConfig::ara2(16), 34.2, 30.3},
  };
  for (const auto& r : rows) {
    const double f = kFreq.freq_ghz(r.cfg);
    const double eff = kPower.gflops_per_w(r.cfg, f, r.gflops / f, 0.99);
    EXPECT_NEAR(eff, r.eff, r.eff * 0.03) << r.cfg.name();
  }
}

TEST(Power, IdlePowerIsLowerButNonzero) {
  const MachineConfig cfg = MachineConfig::araxl(64);
  const double busy = kPower.power_w(cfg, 1.15, 1.0);
  const double idle = kPower.power_w(cfg, 1.15, 0.0);
  EXPECT_LT(idle, busy);
  EXPECT_GT(idle, 0.2 * busy);  // clock tree + static share
}

TEST(Soa, VitruviusRowMatchesPaper) {
  const SoaPpaRow v = vitruvius_row();
  EXPECT_EQ(v.lanes, 8u);
  EXPECT_DOUBLE_EQ(v.max_perf_gflops, 22.4);
  EXPECT_DOUBLE_EQ(v.energy_eff_gflops_w, 47.3);
}

TEST(Soa, LandscapeContainsHeadliners) {
  const auto procs = fig1_landscape();
  const auto find = [&](std::string_view name) {
    return std::find_if(procs.begin(), procs.end(),
                        [&](const SoaProcessor& p) { return p.name == name; });
  };
  auto araxl = find("64L-AraXL");
  ASSERT_NE(araxl, procs.end());
  EXPECT_EQ(araxl->vlen_bits, kMaxVlenBits);  // the RVV ceiling
  EXPECT_EQ(araxl->fpus, 64u);
  // AraXL is the max along both axes among RISC-V entries.
  for (const SoaProcessor& p : procs) {
    if (p.riscv) {
      EXPECT_LE(p.vlen_bits, araxl->vlen_bits);
      EXPECT_LE(p.fpus, araxl->fpus);
    }
  }
  EXPECT_NE(find("Vitruvius+"), procs.end());
  EXPECT_NE(find("NEC VE30"), procs.end());
}

TEST(Soa, AreaEffBeatsOldNecVeByPaperMargin) {
  // §IV-E: 64L AraXL >= +45% area efficiency vs the older NEC VE unit.
  const MachineConfig cfg = MachineConfig::araxl(64);
  const double gflops = 146.0;
  const double area_eff = gflops / kArea.total_mm2(cfg);
  EXPECT_GT(area_eff, nec_ve_area_eff_gflops_mm2() * 1.45);
}

TEST(Floorplan, BlocksInsideDieAndNonOverlapping) {
  const Floorplan fp = machine_floorplan(MachineConfig::araxl(16));
  for (const PlacedBlock& b : fp.blocks) {
    EXPECT_GE(b.x, -1e-9);
    EXPECT_GE(b.y, -1e-9);
    EXPECT_LE(b.x + b.w, fp.die_w + 1e-9);
    EXPECT_LE(b.y + b.h, fp.die_h + 1e-9);
    EXPECT_GT(b.area(), 0.0);
  }
  for (std::size_t i = 0; i < fp.blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < fp.blocks.size(); ++j) {
      const PlacedBlock& a = fp.blocks[i];
      const PlacedBlock& b = fp.blocks[j];
      const double ox = std::min(a.x + a.w, b.x + b.w) - std::max(a.x, b.x);
      const double oy = std::min(a.y + a.h, b.y + b.h) - std::max(a.y, b.y);
      EXPECT_FALSE(ox > 1e-9 && oy > 1e-9)
          << a.name << " overlaps " << b.name;
    }
  }
}

TEST(Floorplan, AreasProportionalToModel) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const Floorplan fp = machine_floorplan(cfg);
  const AreaModel model;
  // Each cluster block's share of placed area equals its share of kGE.
  double placed_total = 0.0;
  for (const PlacedBlock& b : fp.blocks) placed_total += b.area();
  const double model_total = model.total_kge(cfg);
  for (const PlacedBlock& b : fp.blocks) {
    if (b.name.rfind("cluster", 0) == 0) {
      EXPECT_NEAR(b.area() / placed_total, model.cluster_kge() / model_total,
                  1e-6);
    }
  }
}

TEST(Floorplan, CoversConfiguredUtilization) {
  const Floorplan fp = machine_floorplan(MachineConfig::araxl(64));
  double placed = 0.0;
  for (const PlacedBlock& b : fp.blocks) placed += b.area();
  EXPECT_NEAR(placed / (fp.die_w * fp.die_h), 0.8, 0.01);
}

TEST(Floorplan, RenderShowsClusters) {
  const Floorplan fp = machine_floorplan(MachineConfig::araxl(16));
  const std::string art = fp.render(60);
  EXPECT_NE(art.find("cluster0"), std::string::npos);
  EXPECT_NE(art.find("CVA6"), std::string::npos);
}

TEST(Floorplan, RejectsBadInput) {
  EXPECT_THROW(slice_floorplan({}, 0.8), ContractViolation);
  EXPECT_THROW(slice_floorplan({{"x", 1.0}}, 0.0), ContractViolation);
  EXPECT_THROW(slice_floorplan({{"x", -1.0}}, 0.8), ContractViolation);
}

}  // namespace
}  // namespace araxl
