// Sensitivity tests for the remaining microarchitectural knobs: buffer
// depths, unit latencies, divider occupancy, and the independence of the
// read/write memory channels. These document which way each knob moves the
// model and keep refactors honest.
#include <gtest/gtest.h>

#include <functional>

#include "kernels/common.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

constexpr std::uint64_t kA = 0x10000;
constexpr std::uint64_t kB = 0x40000;

Cycle run_cycles(const MachineConfig& cfg,
                 const std::function<void(ProgramBuilder&)>& body) {
  Machine m(cfg);
  ProgramBuilder pb(cfg.effective_vlen(), "t");
  body(pb);
  return m.run(pb.take()).cycles;
}

TEST(TimingKnobs, ShallowUnitQueueThrottlesBackToBackIssue) {
  MachineConfig deep = MachineConfig::araxl(16);
  MachineConfig shallow = deep;
  shallow.unit_queue_depth = 1;
  const auto body = [](ProgramBuilder& pb) {
    pb.vsetvli(16, Sew::k64, kLmul1);  // short ops: queue depth matters
    for (int i = 0; i < 40; ++i) pb.vfadd_vv(8, 4, 4);
  };
  EXPECT_GT(run_cycles(shallow, body), run_cycles(deep, body));
}

TEST(TimingKnobs, ShallowSequencerQueueStallsCva6) {
  MachineConfig deep = MachineConfig::araxl(16);
  MachineConfig shallow = deep;
  shallow.seq_queue_depth = 1;
  Machine m(shallow);
  ProgramBuilder pb(shallow.effective_vlen(), "t");
  pb.vsetvli(1024, Sew::k64, kLmul4);
  for (int i = 0; i < 8; ++i) pb.vfadd_vv(8, 4, 4);
  const RunStats s = m.run(pb.take());
  EXPECT_GT(s.issue_stall_cycles, 0u);
}

TEST(TimingKnobs, FpuLatencyStretchesDependentChains) {
  MachineConfig fast = MachineConfig::araxl(16);
  MachineConfig slow = fast;
  slow.fpu_latency = 20;
  // Dependent chain: each op consumes the previous result.
  const auto chain = [](ProgramBuilder& pb) {
    pb.vsetvli(256, Sew::k64, kLmul1);
    for (int i = 0; i < 10; ++i) pb.vfadd_vf(8, 8, 1.0);
  };
  const Cycle chain_fast = run_cycles(fast, chain);
  const Cycle chain_slow = run_cycles(slow, chain);
  // Per dependent stage the cost behaves like max(busy, lag): with busy =
  // 256/16 = 16 cycles, raising the lag from 5 to 20 stretches each of the
  // ~10 stages by roughly (20 - 16) cycles.
  EXPECT_GE(chain_slow, chain_fast + 10 * (20 - 16) - 8);
  EXPECT_LE(chain_slow, chain_fast + 10 * 20);
}

TEST(TimingKnobs, DividerOccupancyScalesLinearly) {
  MachineConfig a = MachineConfig::araxl(16);
  MachineConfig b = a;
  a.div_cycles_per_elem = 8;
  b.div_cycles_per_elem = 24;
  const auto body = [](ProgramBuilder& pb) {
    pb.vsetvli(512, Sew::k64, kLmul2);
    pb.vfdiv_vv(8, 4, 4);
  };
  const Cycle ca = run_cycles(a, body);
  const Cycle cb = run_cycles(b, body);
  // Data portion scales 3x; overhead is constant.
  const double data_a = 512.0 / 16 * 8;
  const double data_b = 512.0 / 16 * 24;
  EXPECT_NEAR(static_cast<double>(cb - ca), data_b - data_a, 16.0);
}

TEST(TimingKnobs, ReadAndWriteChannelsAreIndependent) {
  // A load stream and a store stream to disjoint ranges overlap almost
  // fully (separate AXI channels); two load streams serialize.
  const MachineConfig cfg = MachineConfig::araxl(16);
  const auto load_only = [](ProgramBuilder& pb) {
    pb.vsetvli(2048, Sew::k64, kLmul8);
    pb.vle(8, kA);
  };
  const auto load_plus_store = [](ProgramBuilder& pb) {
    pb.vsetvli(2048, Sew::k64, kLmul8);
    pb.vle(8, kA);
    pb.vse(16, kB);
  };
  const auto two_loads = [](ProgramBuilder& pb) {
    pb.vsetvli(2048, Sew::k64, kLmul8);
    pb.vle(8, kA);
    pb.vle(16, kB);
  };
  const Cycle t_load = run_cycles(cfg, load_only);
  const Cycle t_ls = run_cycles(cfg, load_plus_store);
  const Cycle t_ll = run_cycles(cfg, two_loads);
  const Cycle stream = 2048 / 16;  // data beats per stream
  EXPECT_LT(t_ls, t_load + stream / 2);   // store overlaps the load
  EXPECT_GE(t_ll, t_load + stream - 8);   // second load serializes
}

TEST(TimingKnobs, L2LatencyShiftsLoadsOneForOne) {
  MachineConfig near = MachineConfig::araxl(16);
  MachineConfig far = near;
  far.l2_latency = near.l2_latency + 30;
  const auto body = [](ProgramBuilder& pb) {
    pb.vsetvli(128, Sew::k64, kLmul1);
    pb.vle(8, kA);
  };
  EXPECT_EQ(run_cycles(far, body), run_cycles(near, body) + 30);
}

TEST(TimingKnobs, DcacheLatencyChargesScalarLoads) {
  MachineConfig fast = MachineConfig::araxl(16);
  MachineConfig slow = fast;
  slow.dcache_load_latency = fast.dcache_load_latency + 5;
  const auto body = [](ProgramBuilder& pb) {
    pb.vsetvli(16, Sew::k64, kLmul1);
    for (int i = 0; i < 20; ++i) pb.scalar_load();
    pb.vfadd_vv(8, 4, 4);
  };
  EXPECT_EQ(run_cycles(slow, body), run_cycles(fast, body) + 20 * 5);
}

TEST(TimingKnobs, StartLatencyDelaysFirstResultOnly) {
  MachineConfig a = MachineConfig::araxl(16);
  MachineConfig b = a;
  b.unit_start_latency = a.unit_start_latency + 7;
  const auto body = [](ProgramBuilder& pb) {
    pb.vsetvli(1024, Sew::k64, kLmul4);
    pb.vfadd_vv(8, 4, 4);
  };
  EXPECT_EQ(run_cycles(b, body), run_cycles(a, body) + 7);
}

}  // namespace
}  // namespace araxl
