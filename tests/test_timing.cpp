// Timing-model tests: chaining, hazards, issue serialization, interface
// latency knobs, reduction scheduling, bandwidth and misalignment — each
// checked through observable cycle counts of small programs.
#include <gtest/gtest.h>

#include "kernels/common.hpp"
#include "machine/machine.hpp"
#include "machine/timing.hpp"

namespace araxl {
namespace {

constexpr std::uint64_t kA = 0x10000;
constexpr std::uint64_t kB = 0x40000;
constexpr std::uint64_t kC = 0x80000;

RunStats run_prog(const MachineConfig& cfg, const std::function<void(ProgramBuilder&)>& body) {
  Machine m(cfg);
  m.mem().store_doubles(kA, random_doubles(8192, -1, 1, 1));
  m.mem().store_doubles(kB, random_doubles(8192, -1, 1, 2));
  ProgramBuilder pb(cfg.effective_vlen(), "t");
  body(pb);
  return m.run(pb.take());
}

TEST(Timing, ChainingOverlapsLoadAndCompute) {
  // A dependent vfmul chained onto a vle must finish far earlier than the
  // sum of both operations run back-to-back (two independent programs).
  const MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vl = 1024;
  const RunStats both = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vle(8, kA);
    pb.vfmul_vv(16, 8, 8);
  });
  const RunStats load_only = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vle(8, kA);
  });
  const RunStats mul_only = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfmul_vv(16, 8, 8);
  });
  // Chaining: total < load + mul (minus the shared setup, conservatively).
  EXPECT_LT(both.cycles, load_only.cycles + mul_only.cycles - 20);
}

TEST(Timing, SameUnitOpsSerialize) {
  // Two independent FPU ops occupy the same unit: their element slots
  // cannot overlap, so time grows by ~vl/lanes. (vl = VLMAX at m4.)
  const MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vl = 1024;
  const RunStats one = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfadd_vv(8, 4, 4);
  });
  const RunStats two = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfadd_vv(8, 4, 4);
    pb.vfadd_vv(16, 12, 12);
  });
  EXPECT_GE(two.cycles, one.cycles + vl / cfg.total_lanes() - 5);
}

TEST(Timing, DifferentUnitsOverlap) {
  // An FPU op and an ALU op run concurrently: two ops cost barely more
  // than one.
  const MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vl = 1024;
  const RunStats fpu_only = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfadd_vv(8, 4, 4);
  });
  const RunStats fpu_alu = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfadd_vv(8, 4, 4);
    pb.vadd_vv(16, 12, 12);
  });
  EXPECT_LT(fpu_alu.cycles, fpu_only.cycles + 32);
}

TEST(Timing, WarHazardStallsCrossUnitWriter) {
  // vse reads v8 while a later vle wants to overwrite it: the load must
  // wait, and the stored values must be the OLD contents.
  const MachineConfig cfg = MachineConfig::araxl(16);
  Machine m(cfg);
  const std::uint64_t vl = 512;
  const auto a = random_doubles(vl, -1, 1, 3);
  const auto b = random_doubles(vl, -1, 1, 4);
  m.mem().store_doubles(kA, a);
  m.mem().store_doubles(kB, b);
  ProgramBuilder pb(cfg.effective_vlen(), "war");
  pb.vsetvli(vl, Sew::k64, kLmul2);
  pb.vle(8, kA);
  pb.vse(8, kC);   // store old v8 = A
  pb.vle(8, kB);   // overwrite v8 with B
  const Program prog = pb.take();
  m.run(prog);
  EXPECT_EQ(m.mem().load_doubles(kC, vl), a);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, i), b[i]);
  }
}

TEST(Timing, MemoryRawConflictOrdersLoadAfterStore) {
  // vse to a range followed by vle from the same range must return the
  // stored data (the dispatcher holds the load until the store retires).
  const MachineConfig cfg = MachineConfig::araxl(16);
  Machine m(cfg);
  const std::uint64_t vl = 256;
  const auto a = random_doubles(vl, -1, 1, 5);
  m.mem().store_doubles(kA, a);
  ProgramBuilder pb(cfg.effective_vlen(), "raw");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vle(8, kA);
  pb.vfadd_vf(12, 8, 1.0);
  pb.vse(12, kC);
  pb.vle(16, kC);  // must see a[i] + 1
  const Program prog = pb.take();
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i), a[i] + 1.0) << i;
  }
}

TEST(Timing, ReqiRegistersDelayIssue) {
  // A back-to-back issue-bound instruction stream slows by ~2 cycles per
  // instruction with +1 REQI register.
  MachineConfig base = MachineConfig::araxl(16);
  MachineConfig mod = base;
  mod.reqi_regs = 1;
  const auto body = [&](ProgramBuilder& pb) {
    pb.vsetvli(16, Sew::k64, kLmul1);  // one element per lane: issue-bound
    for (int i = 0; i < 50; ++i) pb.vfadd_vv(8, 4, 4);
  };
  const RunStats s0 = run_prog(base, body);
  const RunStats s1 = run_prog(mod, body);
  EXPECT_GE(s1.cycles, s0.cycles + 2 * 50 - 10);
}

TEST(Timing, GlsuRegistersDelayLoadsEndToEnd) {
  MachineConfig base = MachineConfig::araxl(16);
  MachineConfig mod = base;
  mod.glsu_regs = 4;
  const auto body = [&](ProgramBuilder& pb) {
    pb.vsetvli(64, Sew::k64, kLmul1);
    pb.vle(8, kA);
  };
  const RunStats s0 = run_prog(base, body);
  const RunStats s1 = run_prog(mod, body);
  EXPECT_EQ(s1.cycles, s0.cycles + 8);  // paper: +4 registers => +8 cycles
}

TEST(Timing, RingRegistersDelayReductions) {
  MachineConfig base = MachineConfig::araxl(64);  // C=16
  MachineConfig mod = base;
  mod.ring_regs = 1;
  const auto body = [&](ProgramBuilder& pb) {
    pb.vsetvli(1024, Sew::k64, kLmul1);
    pb.vfredusum(12, 8, 4);
  };
  const RunStats s0 = run_prog(base, body);
  const RunStats s1 = run_prog(mod, body);
  EXPECT_EQ(s1.cycles, s0.cycles + 15);  // (C-1) extra hop cycles
}

TEST(Timing, ReductionCostGrowsWithClusters) {
  // Same per-lane work, more clusters: the inter-cluster log-tree adds
  // latency (the mechanism behind fdotproduct's 6.1x scaling).
  const auto red_cycles = [&](unsigned lanes) {
    const MachineConfig cfg = MachineConfig::araxl(lanes);
    return run_prog(cfg, [&](ProgramBuilder& pb) {
      pb.vsetvli(16ull * lanes, Sew::k64, kLmul1);  // fixed work per lane
      pb.vfredusum(12, 8, 4);
    }).cycles;
  };
  EXPECT_GT(red_cycles(64), red_cycles(16));
  EXPECT_GT(red_cycles(16), red_cycles(8));
}

TEST(Timing, Ara2ReductionHasNoClusterTree) {
  const RunStats a2 = run_prog(MachineConfig::ara2(16), [&](ProgramBuilder& pb) {
    pb.vsetvli(256, Sew::k64, kLmul1);
    pb.vfredusum(12, 8, 4);
  });
  const RunStats xl = run_prog(MachineConfig::araxl(16), [&](ProgramBuilder& pb) {
    pb.vsetvli(256, Sew::k64, kLmul1);
    pb.vfredusum(12, 8, 4);
  });
  EXPECT_LT(a2.cycles, xl.cycles);
}

TEST(Timing, DividerMuchSlowerThanMultiplier) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vl = 1024;
  const RunStats mul = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfmul_vv(8, 4, 4);
  });
  const RunStats div = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfdiv_vv(8, 4, 4);
  });
  EXPECT_GT(div.cycles, mul.cycles * 5);
}

TEST(Timing, StridedSlowerThanUnitStride) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vl = 512;
  const RunStats unit = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul2);
    pb.vle(8, kA);
  });
  const RunStats strided = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul2);
    pb.vlse(8, kA, 16);
  });
  EXPECT_GT(strided.cycles, unit.cycles * 2);
}

TEST(Timing, MisalignedLoadCostsExtra) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vl = 1024;
  const RunStats aligned = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vle(8, kA);
  });
  const RunStats misaligned = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vle(8, kA + 8);
  });
  EXPECT_GT(misaligned.cycles, aligned.cycles);
  EXPECT_LE(misaligned.cycles, aligned.cycles + 4);
}

TEST(Timing, LoadBandwidthIsEightBytesPerLane) {
  // A long unit-stride load streams at 8 B/lane/cycle: doubling vl adds
  // vl/lanes cycles.
  const MachineConfig cfg = MachineConfig::araxl(16);
  const RunStats short_load = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(1024, Sew::k64, kLmul4);
    pb.vle(8, kA);
  });
  const RunStats long_load = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(2048, Sew::k64, kLmul8);
    pb.vle(8, kA);
  });
  EXPECT_NEAR(static_cast<double>(long_load.cycles - short_load.cycles),
              1024.0 / 16, 8.0);
}

TEST(Timing, BusyAccountingMatchesWork) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vl = 777;
  const RunStats s = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfmacc_vv(16, 8, 12);
    pb.vfadd_vv(20, 8, 12);
    pb.vadd_vv(24, 8, 12);
    pb.vle(28, kA);
  });
  EXPECT_EQ(s.unit_busy_elems[static_cast<std::size_t>(Unit::kFpu)], 2 * vl);
  EXPECT_EQ(s.unit_busy_elems[static_cast<std::size_t>(Unit::kAlu)], vl);
  EXPECT_EQ(s.unit_busy_elems[static_cast<std::size_t>(Unit::kLoad)], vl);
  EXPECT_EQ(s.fpu_result_elems, 2 * vl);
  EXPECT_EQ(s.flops, 3 * vl);  // FMA(2) + add(1)
  EXPECT_EQ(s.mem_read_bytes, vl * 8);
}

TEST(Timing, ScalarReadBlocksOnProducer) {
  // vfmv.f.s after a reduction stalls CVA6 until the result exists.
  const MachineConfig cfg = MachineConfig::araxl(64);
  const RunStats s = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(4096, Sew::k64, kLmul8);
    pb.vle(8, kA);
    pb.vfredusum(24, 8, 25);
    pb.vfmv_f_s(24);
  });
  EXPECT_GT(s.scalar_wait_cycles, 50u);  // waited out the reduction
}

TEST(Timing, Vl0InstructionsCostOnlyIssue) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  const RunStats s = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(0, Sew::k64, kLmul1);
    for (int i = 0; i < 10; ++i) pb.vfadd_vv(8, 4, 4);
  });
  EXPECT_LT(s.cycles, 120u);
  EXPECT_EQ(s.fpu_result_elems, 0u);
}

TEST(MemRange, ZeroVlYieldsEmptyRange) {
  // Regression: strided ops with vl == 0 used to report [addr, addr + ew),
  // so a zero-element vlse/vsse could spuriously conflict with (and stall)
  // an overlapping access of the other kind at dispatch.
  for (const Op op : {Op::kVle, Op::kVse, Op::kVlse, Op::kVsse}) {
    VInstr in;
    in.op = op;
    in.addr = 0x1000;
    in.stride = -64;  // negative stride must not underflow the range either
    std::uint64_t lo = 1;
    std::uint64_t hi = 2;
    ASSERT_TRUE(mem_range(in, 0, 8, &lo, &hi)) << static_cast<int>(op);
    EXPECT_EQ(lo, hi) << "vl==0 must touch no bytes, op "
                      << static_cast<int>(op);
  }
}

TEST(MemRange, StridedCoversNegativeStrides) {
  VInstr in;
  in.op = Op::kVlse;
  in.addr = 0x2000;
  in.stride = -16;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  ASSERT_TRUE(mem_range(in, 4, 8, &lo, &hi));
  EXPECT_EQ(lo, 0x2000u - 48);
  EXPECT_EQ(hi, 0x2000u + 8);
}

TEST(MemRange, IndexedIsUnbounded) {
  VInstr in;
  in.op = Op::kVluxei;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  EXPECT_FALSE(mem_range(in, 16, 8, &lo, &hi));
}

TEST(Timing, DeterministicAcrossRuns) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  auto kernel = make_kernel("jacobi2d");
  Machine m(cfg);
  const Program prog = kernel->build(m, 64);
  const RunStats s1 = m.run(prog);
  const RunStats s2 = m.run(prog);
  EXPECT_EQ(s1.cycles, s2.cycles);
  EXPECT_EQ(s1.fpu_result_elems, s2.fpu_result_elems);
}

TEST(Timing, LongSlideSlowerThanSlide1) {
  const MachineConfig cfg = MachineConfig::araxl(64);
  const std::uint64_t vl = 4096;
  const RunStats s1 = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfslide1down(16, 8, 0.0);
  });
  const RunStats sk = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vslidedown_vx(16, 8, 37);
  });
  // The long slide funnels through the ring at one element per cluster per
  // cycle (paper §III-B.4).
  EXPECT_GT(sk.cycles, s1.cycles * 2);
}

TEST(Timing, Ara2LongSlideNotPenalized) {
  const MachineConfig cfg = MachineConfig::ara2(16);
  const std::uint64_t vl = 1024;
  const RunStats s1 = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vfslide1down(16, 8, 0.0);
  });
  const RunStats sk = run_prog(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vslidedown_vx(16, 8, 37);
  });
  EXPECT_LT(sk.cycles, s1.cycles + 16);  // lumped SLDU crossbar
}

// ---- steady-state loop batching ---------------------------------------------

/// Runs `kernel_name` under both engines on fresh machines and returns the
/// (event, oracle) stats pair.
std::pair<RunStats, RunStats> run_both_engines(const char* kernel_name,
                                               unsigned lanes,
                                               std::uint64_t bpl) {
  MachineConfig cfg = MachineConfig::araxl(lanes);
  cfg.timing_mode = TimingMode::kEventDriven;
  Machine ev(cfg);
  auto k1 = make_kernel(kernel_name);
  const RunStats s_ev = ev.run(k1->build(ev, bpl));

  cfg.timing_mode = TimingMode::kCycleStepped;
  Machine oracle(cfg);
  auto k2 = make_kernel(kernel_name);
  const RunStats s_or = oracle.run(k2->build(oracle, bpl));
  return {s_ev, s_or};
}

TEST(LoopBatching, EngagesOnFdotproductSteadyState) {
  // fdotproduct strip-mines vfmacc chains over LMUL=8 groups; at 16384
  // B/lane the event engine must detect the steady state, fast-forward
  // whole iterations, and still match the oracle on every counter.
  const auto [ev, oracle] = run_both_engines("fdotproduct", 8, 16384);
  EXPECT_GT(ev.batched_iterations, 0u);
  EXPECT_LT(ev.wakeups_total, oracle.wakeups_total / 4);
  EXPECT_TRUE(ev == oracle);
}

TEST(LoopBatching, EngagesOnStreamTriadSteadyState) {
  // stream_triad double-buffers its LMUL=8 groups, so its steady-state
  // period is TWO strips; give it enough strips for several periods.
  const auto [ev, oracle] = run_both_engines("stream_triad", 8, 32768);
  EXPECT_GT(ev.batched_iterations, 0u);
  EXPECT_TRUE(ev == oracle);
}

TEST(LoopBatching, DisengagesOnVlTail) {
  // A strip total that is NOT a multiple of VLMAX ends on a smaller
  // vsetvli grant: the batcher must stop before the tail iteration and the
  // run must stay bit-identical to the oracle through it.
  MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vlmax_m4 = 4 * cfg.effective_vlen() / 64;
  const std::uint64_t total = 12 * vlmax_m4 + vlmax_m4 / 3;  // partial tail
  const auto body = [&](ProgramBuilder& pb) {
    std::uint64_t done = 0;
    std::uint64_t a = kA;
    while (done < total) {
      const std::uint64_t vl = pb.vsetvli(total - done, Sew::k64, kLmul4);
      pb.vle(8, a);
      pb.vfmacc_vf(16, 1.5, 8);
      pb.vse(16, a + 0x100000);
      a += vl * 8;
      done += vl;
    }
  };
  const RunStats ev = run_prog(cfg, body);
  MachineConfig oracle_cfg = cfg;
  oracle_cfg.timing_mode = TimingMode::kCycleStepped;
  const RunStats oracle = run_prog(oracle_cfg, body);
  EXPECT_GT(ev.batched_iterations, 0u);
  EXPECT_TRUE(ev == oracle);
  EXPECT_EQ(oracle.batched_iterations, 0u);  // the oracle never batches
}

TEST(LoopBatching, DisengagesOnMidLoopVsetvli) {
  // A mid-loop vsetvli whose grant changes every iteration breaks the
  // period signature: no batching, identical RunStats either way.
  MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vlmax_m2 = 2 * cfg.effective_vlen() / 64;
  const auto body = [&](ProgramBuilder& pb) {
    std::uint64_t a = kA;
    for (std::uint64_t i = 0; i < 14; ++i) {
      pb.vsetvli(vlmax_m2, Sew::k64, kLmul2);
      pb.vle(8, a);
      pb.vsetvli(1 + (i % 5), Sew::k64, kLmul1);  // vl changes mid-loop
      pb.vfadd_vf(16, 8, 1.0);
      a += vlmax_m2 * 8;
    }
  };
  const RunStats ev = run_prog(cfg, body);
  MachineConfig oracle_cfg = cfg;
  oracle_cfg.timing_mode = TimingMode::kCycleStepped;
  const RunStats oracle = run_prog(oracle_cfg, body);
  EXPECT_EQ(ev.batched_iterations, 0u);
  EXPECT_TRUE(ev == oracle);
}

TEST(LoopBatching, WatchdogCountsBatchedIterationsAsProgress) {
  // Regression: a long batched fast-forward must feed the liveness
  // watchdog one progress note per iteration, so a tiny wakeup budget —
  // far smaller than the number of iterations fast-forwarded — cannot trip
  // the stuck detector mid-batch.
  MachineConfig cfg = MachineConfig::araxl(8);
  cfg.watchdog_budget = 48;  // << iterations below; default is 2^20
  Machine m(cfg);
  const std::uint64_t vlmax_m4 = 4 * cfg.effective_vlen() / 64;
  ProgramBuilder pb(cfg.effective_vlen(), "wd");
  std::uint64_t a = kA;
  for (std::uint64_t i = 0; i < 200; ++i) {
    pb.vsetvli(vlmax_m4, Sew::k64, kLmul4);
    pb.vle(8, a);
    pb.vfmacc_vf(16, 1.5, 8);
    a += vlmax_m4 * 8;
  }
  const RunStats s = m.run(pb.take());
  EXPECT_GT(s.batched_iterations, 150u);
  EXPECT_LT(s.wakeups_total, 2000u);
}

// ---- batching-decision telemetry: one test per rejection-reason counter -----

std::uint64_t rejects(const RunStats& s, BatchReject r) {
  return s.batch_rejects[static_cast<std::size_t>(r)];
}

TEST(LoopBatching, EngagesOnJacobi2dStencil) {
  // The jacobi2d row loop carries TWO different per-position progressions —
  // the loads step by the (padded) input row pitch, the stores by the
  // output row pitch. The per-position barrier gate admits that shape, so
  // the stencil batches at both bench lane counts, bit-identically.
  const auto [ev, oracle] = run_both_engines("jacobi2d", 16, 256);
  EXPECT_GT(ev.batched_iterations, 0u);
  EXPECT_EQ(rejects(ev, BatchReject::kAddrProgression), 0u);
  EXPECT_TRUE(ev == oracle);

  const auto [ev64, oracle64] = run_both_engines("jacobi2d", 64, 256);
  EXPECT_GT(ev64.batched_iterations, 0u);
  EXPECT_TRUE(ev64 == oracle64);
}

TEST(LoopBatching, RejectCounterAddrProgression) {
  // Bus-phase breaks at irregular spacing (iterations 5, 9, 16): neither a
  // per-position progression nor a two-level nest explains them, so the
  // static pass files the region under addr_progression — while the run
  // itself stays bit-identical (the barrier gate batches the clean
  // stretches and stops at each break instead of lying).
  MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vlmax_m2 = 2 * cfg.effective_vlen() / 64;
  const std::uint64_t stride = vlmax_m2 * 8;
  const auto body = [&](ProgramBuilder& pb) {
    for (std::uint64_t i = 0; i < 18; ++i) {
      pb.vsetvli(vlmax_m2, Sew::k64, kLmul2);
      const std::uint64_t wobble = (i == 5 || i == 9 || i == 16) ? 8 : 0;
      pb.vle(8, kA + i * stride + wobble);
      pb.vfadd_vf(16, 8, 1.0);
    }
  };
  const RunStats ev = run_prog(cfg, body);
  MachineConfig oracle_cfg = cfg;
  oracle_cfg.timing_mode = TimingMode::kCycleStepped;
  const RunStats oracle = run_prog(oracle_cfg, body);
  EXPECT_GE(rejects(ev, BatchReject::kAddrProgression), 1u);
  EXPECT_TRUE(ev == oracle);
  // The oracle never attempts batching, so it never rejects either.
  for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
    EXPECT_EQ(oracle.batch_rejects[i], 0u);
  }
}

TEST(LoopBatching, NestedLoopClampsAtRowBoundaries) {
  // A two-level tiled loop: twelve strips per row, then the load jumps to
  // the next row with a bus-phase-breaking pitch. The nest detector
  // recognises the constant row spacing, so the region is NOT filed under
  // addr_progression; batching engages inside rows (once the sequencer
  // backlog has drained past the previous row boundary), clamps at each
  // row boundary, re-arms in the next row, and stays bit-identical.
  MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vlmax_m2 = 2 * cfg.effective_vlen() / 64;
  const std::uint64_t stride = vlmax_m2 * 8;
  const std::uint64_t row_pitch = 12 * stride + 8;  // +8 breaks bus phase
  const auto body = [&](ProgramBuilder& pb) {
    for (std::uint64_t row = 0; row < 4; ++row) {
      for (std::uint64_t s = 0; s < 12; ++s) {
        pb.vsetvli(vlmax_m2, Sew::k64, kLmul2);
        pb.vle(8, kA + row * row_pitch + s * stride);
        pb.vfadd_vf(16, 8, 1.0);
      }
    }
  };
  const RunStats ev = run_prog(cfg, body);
  MachineConfig oracle_cfg = cfg;
  oracle_cfg.timing_mode = TimingMode::kCycleStepped;
  const RunStats oracle = run_prog(oracle_cfg, body);
  EXPECT_GT(ev.batched_iterations, 0u);
  EXPECT_GE(ev.batch_clamps, 1u);
  EXPECT_EQ(rejects(ev, BatchReject::kAddrProgression), 0u);
  EXPECT_TRUE(ev == oracle);
}

TEST(LoopBatching, WarmupProjectionEngagesShortDeepRun) {
  // fdotproduct at 64 lanes / 8192 B-per-lane: a handful of strip-mine
  // iterations on a deep machine. The boundary snapshots keep differing in
  // warmup residue — issue stamps of drained ops and long-passed ready
  // times — none of which can affect future timing. Projecting that
  // residue away engages batching on a run this short, and the provenance
  // records it.
  const auto [ev, oracle] = run_both_engines("fdotproduct", 64, 8192);
  EXPECT_GT(ev.batched_iterations, 0u);
  EXPECT_GE(ev.warmup_projected, 1u);
  EXPECT_TRUE(ev == oracle);
  EXPECT_EQ(oracle.warmup_projected, 0u);
}

TEST(LoopBatching, RejectCounterSnapshotMismatch) {
  // The earliest boundaries of that same 64-lane run genuinely differ —
  // the fill transient is still reshaping queue timing — so the mismatch
  // counter fires before projection takes over and batching engages.
  const auto [ev, oracle] = run_both_engines("axpy", 64, 8192);
  EXPECT_GE(rejects(ev, BatchReject::kSnapshotMismatch), 1u);
  EXPECT_GT(ev.batched_iterations, 0u);
  EXPECT_TRUE(ev == oracle);
}

TEST(LoopBatching, RejectCounterVlTail) {
  // Same shape as DisengagesOnVlTail: the region ends on a smaller vsetvli
  // grant at unchanged vtype. The static classifier must file that under
  // vl_tail, not grant_change.
  MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vlmax_m4 = 4 * cfg.effective_vlen() / 64;
  const std::uint64_t total = 12 * vlmax_m4 + vlmax_m4 / 3;
  const RunStats ev = run_prog(cfg, [&](ProgramBuilder& pb) {
    std::uint64_t done = 0;
    std::uint64_t a = kA;
    while (done < total) {
      const std::uint64_t vl = pb.vsetvli(total - done, Sew::k64, kLmul4);
      pb.vle(8, a);
      pb.vfmacc_vf(16, 1.5, 8);
      pb.vse(16, a + 0x100000);
      a += vl * 8;
      done += vl;
    }
  });
  EXPECT_GT(ev.batched_iterations, 0u);  // batches up to the tail...
  EXPECT_GE(rejects(ev, BatchReject::kVlTail), 1u);  // ...and names the stop
  EXPECT_EQ(rejects(ev, BatchReject::kGrantChange), 0u);
}

TEST(LoopBatching, RejectCounterGrantChange) {
  // A steady loop whose region ends on a vsetvli with a *different vtype*
  // (SEW narrows): not a strip-mine tail, a different loop shape. Must be
  // filed under grant_change, not vl_tail.
  MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vlmax_m4 = 4 * cfg.effective_vlen() / 64;
  const RunStats ev = run_prog(cfg, [&](ProgramBuilder& pb) {
    std::uint64_t a = kA;
    for (std::uint64_t i = 0; i < 12; ++i) {
      pb.vsetvli(vlmax_m4, Sew::k64, kLmul4);
      pb.vle(8, a);
      pb.vfmacc_vf(16, 1.5, 8);
      a += vlmax_m4 * 8;
    }
    pb.vsetvli(vlmax_m4, Sew::k32, kLmul4);  // vtype changes: region ends here
    pb.vadd_vv(24, 20, 20);
  });
  EXPECT_GE(rejects(ev, BatchReject::kGrantChange), 1u);
  EXPECT_EQ(rejects(ev, BatchReject::kVlTail), 0u);
}

TEST(LoopBatching, RejectCounterLivenessGateBackstopStaysZero) {
  // The liveness gate (an in-flight op still < 1 period into the region)
  // is a defensive backstop: snapshot equality at two consecutive period
  // boundaries forces the live-op set to be a rigid one-period shift of
  // itself, which puts the oldest live op at least one period into the
  // region — so whenever the snapshot check passes, the gate passes too.
  // No program reachable through the builder has been found that trips it
  // (a wide empirical scan fires it nowhere). Pin it at zero on the
  // canonical engaging shapes so any engine change that starts tripping
  // the backstop — i.e. breaks the invariant above — is surfaced here.
  const auto [ev_axpy, oracle_axpy] = run_both_engines("axpy", 8, 16384);
  EXPECT_GT(ev_axpy.batched_iterations, 0u);
  EXPECT_EQ(rejects(ev_axpy, BatchReject::kLivenessGate), 0u);
  EXPECT_TRUE(ev_axpy == oracle_axpy);

  const auto [ev_dot, oracle_dot] = run_both_engines("fdotproduct", 8, 16384);
  EXPECT_GT(ev_dot.batched_iterations, 0u);
  EXPECT_EQ(rejects(ev_dot, BatchReject::kLivenessGate), 0u);
  EXPECT_TRUE(ev_dot == oracle_dot);
}

TEST(LoopBatching, SignatureCollisionAddressBreakRejected) {
  // Adversarial: op signatures repeat perfectly, but one load's address
  // progression silently breaks two periods after steady state would have
  // been declared. The address checks must clamp the batch before the
  // break, and every counter must still match the oracle.
  MachineConfig cfg = MachineConfig::araxl(16);
  const std::uint64_t vlmax_m2 = 2 * cfg.effective_vlen() / 64;
  const std::uint64_t stride = vlmax_m2 * 8;
  const auto body = [&](ProgramBuilder& pb) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      pb.vsetvli(vlmax_m2, Sew::k64, kLmul2);
      // Progression holds for 10 iterations, then jumps backwards so the
      // store starts colliding with earlier loads.
      const std::uint64_t a = i < 10 ? kA + i * stride : kA + (i - 10) * stride;
      pb.vle(8, a);
      pb.vfadd_vf(16, 8, 2.0);
      pb.vse(16, a + 0x100000);
    }
  };
  const RunStats ev = run_prog(cfg, body);
  MachineConfig oracle_cfg = cfg;
  oracle_cfg.timing_mode = TimingMode::kCycleStepped;
  const RunStats oracle = run_prog(oracle_cfg, body);
  EXPECT_TRUE(ev == oracle);
}

}  // namespace
}  // namespace araxl
