// Stall-taxonomy tests: the cycle attributor must account for every
// (cycle x lane-FPU byte-slot) exactly once — busy or one typed stall
// reason — bit-identically on both timing kernels. These assertions are
// always-on EXPECT_EQs because the engine's internal partition
// debug_checks compile away in Release builds.
#include <gtest/gtest.h>

#include "kernels/common.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

constexpr std::uint64_t kA = 0x10000;
constexpr std::uint64_t kB = 0x40000;
constexpr std::uint64_t kC = 0x80000;

std::uint64_t stall_sum(const RunStats& s) {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : s.stall_cycles) sum += v;
  return sum;
}

/// The attribution contract: busy slots plus every stall bucket tile the
/// slot universe `cycles * total_lanes * 8` with no gap and no overlap.
void expect_totality(const RunStats& s, const std::string& label) {
  EXPECT_EQ(stall_sum(s) + s.fpu_busy_slots, s.cycles * s.total_lanes * 8)
      << label;
}

RunStats run_mode(const MachineConfig& base, TimingMode mode,
                  const std::function<void(ProgramBuilder&)>& body) {
  MachineConfig cfg = base;
  cfg.timing_mode = mode;
  Machine m(cfg);
  m.mem().store_doubles(kA, random_doubles(8192, -1, 1, 1));
  m.mem().store_doubles(kB, random_doubles(8192, -1, 1, 2));
  ProgramBuilder pb(cfg.effective_vlen(), "stall");
  body(pb);
  return m.run(pb.take());
}

/// Runs `body` through both timing kernels, checks totality on each and
/// bit-identical attribution between them, and returns the event result.
RunStats run_attributed(const MachineConfig& cfg,
                        const std::function<void(ProgramBuilder&)>& body) {
  const RunStats ev = run_mode(cfg, TimingMode::kEventDriven, body);
  const RunStats oracle = run_mode(cfg, TimingMode::kCycleStepped, body);
  expect_totality(ev, "event");
  expect_totality(oracle, "oracle");
  for (std::size_t r = 0; r < kNumStallReasons; ++r) {
    EXPECT_EQ(ev.stall_cycles[r], oracle.stall_cycles[r])
        << stall_reason_name(static_cast<StallReason>(r));
  }
  EXPECT_EQ(ev.fpu_busy_slots, oracle.fpu_busy_slots);
  EXPECT_TRUE(ev == oracle);
  return ev;
}

TEST(StallTaxonomy, TotalityAcrossConfigsOnMixedProgram) {
  // A program touching every attribution path: loads feeding FPU work, an
  // ALU op, a reduction, and a trailing store drain.
  const auto body = [](ProgramBuilder& pb) {
    pb.vsetvli(512, Sew::k64, kLmul2);
    pb.vle(8, kA);
    pb.vle(16, kB);
    pb.vfmacc_vv(24, 8, 16);
    pb.vadd_vv(0, 8, 16);
    pb.vsetvli(1, Sew::k64, kLmul1);
    pb.vfmv_s_f(4, 0.0);
    pb.vsetvli(512, Sew::k64, kLmul2);
    pb.vfredusum(4, 24, 4);
    pb.vse(24, kC);
  };
  const MachineConfig configs[] = {
      MachineConfig::araxl(8),
      MachineConfig::ara2(8),
      MachineConfig::araxl(16),
      MachineConfig::araxl_hier(2, 4, 4),
  };
  for (const MachineConfig& cfg : configs) {
    const RunStats s = run_attributed(cfg, body);
    EXPECT_GT(stall_sum(s), 0u) << cfg.name();
    EXPECT_GT(s.fpu_busy_slots, 0u) << cfg.name();
  }
}

TEST(StallTaxonomy, RawChainChargesRawDependency) {
  // A long chain of dependent FPU ops at tiny vl: each link spends the
  // producer's latency waiting on live FPU results, which the attributor
  // must file as raw_dependency — not as generic structural pressure.
  const MachineConfig cfg = MachineConfig::araxl(8);
  const RunStats s = run_attributed(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(8, Sew::k64, kLmul1);
    pb.vle(1, kA);
    for (unsigned i = 1; i < 30; ++i) {
      pb.vfmul_vv(i + 1, i, i);
    }
  });
  const std::uint64_t raw =
      s.stall_cycles[static_cast<std::size_t>(StallReason::kRawDependency)];
  EXPECT_GT(raw, 0u);
  // The chain is the program: RAW waiting dwarfs memory- and
  // reduction-related buckets.
  EXPECT_GT(raw, s.stall_cycles[static_cast<std::size_t>(
                     StallReason::kMemBandwidth)]);
  EXPECT_GT(raw, s.stall_cycles[static_cast<std::size_t>(
                     StallReason::kReductionSlideLatency)]);
}

TEST(StallTaxonomy, BandwidthBoundStreamChargesMemory) {
  // Streaming loads feeding cheap FPU work: the FPU starves on memory, so
  // the mem_latency/mem_bandwidth buckets must carry the wait — and
  // dominate raw_dependency (no FPU->FPU chains here) and reductions.
  const MachineConfig cfg = MachineConfig::araxl(8);
  const RunStats s = run_attributed(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(1024, Sew::k64, kLmul4);
    for (unsigned i = 0; i < 3; ++i) {
      pb.vle(8, kA + i * 64);
      pb.vle(16, kB + i * 64);
      pb.vfadd_vv(24, 8, 16);
    }
  });
  const std::uint64_t mem =
      s.stall_cycles[static_cast<std::size_t>(StallReason::kMemLatency)] +
      s.stall_cycles[static_cast<std::size_t>(StallReason::kMemBandwidth)];
  EXPECT_GT(mem, 0u);
  EXPECT_GT(
      mem, s.stall_cycles[static_cast<std::size_t>(StallReason::kRawDependency)]);
  EXPECT_GT(mem, s.stall_cycles[static_cast<std::size_t>(
                     StallReason::kReductionSlideLatency)]);
}

TEST(StallTaxonomy, ReductionTailChargesReductionLatency) {
  // After the elementwise phase of a dot product, the lane tree + cluster
  // ring reduction leaves the FPUs waiting on slide/reduction hardware.
  const MachineConfig cfg = MachineConfig::araxl(16);
  const RunStats s = run_attributed(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(512, Sew::k64, kLmul2);
    pb.vle(8, kA);
    pb.vle(16, kB);
    pb.vfmul_vv(24, 8, 16);
    pb.vsetvli(1, Sew::k64, kLmul1);
    pb.vfmv_s_f(4, 0.0);
    pb.vsetvli(512, Sew::k64, kLmul2);
    pb.vfredusum(4, 24, 4);
    pb.vfmv_f_s(4);
  });
  EXPECT_GT(s.stall_cycles[static_cast<std::size_t>(
                StallReason::kReductionSlideLatency)],
            0u);
}

TEST(StallTaxonomy, DrainTailCoversPostRetirementCycles) {
  // Once the last FPU instruction has retired, the cycles spent draining
  // the trailing store belong to drain_tail — nothing else is eligible.
  const MachineConfig cfg = MachineConfig::araxl(8);
  const RunStats s = run_attributed(cfg, [&](ProgramBuilder& pb) {
    pb.vsetvli(512, Sew::k64, kLmul2);
    pb.vle(8, kA);
    pb.vfadd_vf(16, 8, 1.0);
    pb.vse(16, kC);
  });
  EXPECT_GT(
      s.stall_cycles[static_cast<std::size_t>(StallReason::kDrainTail)], 0u);
}

TEST(StallTaxonomy, KernelProgramsSatisfyTotalityOnBothEngines) {
  // Real kernel programs (including ones whose steady-state loops engage
  // the event engine's iteration batching) must keep the partition exact:
  // batched iterations multiply the per-iteration attribution, never
  // approximate it.
  for (const char* name : {"fdotproduct", "exp", "stream_triad", "fmatmul"}) {
    for (const MachineConfig& base :
         {MachineConfig::araxl(8), MachineConfig::ara2(8)}) {
      RunStats results[2];
      int i = 0;
      for (const TimingMode mode :
           {TimingMode::kEventDriven, TimingMode::kCycleStepped}) {
        MachineConfig cfg = base;
        cfg.timing_mode = mode;
        Machine m(cfg);
        auto kernel = make_kernel(name);
        const Program prog = kernel->build(m, 128);
        results[i] = m.run(prog);
        expect_totality(results[i], std::string(name) + " " + cfg.name());
        ++i;
      }
      EXPECT_TRUE(results[0] == results[1]) << name << " " << base.name();
    }
  }
}

}  // namespace
}  // namespace araxl
