// Golden cycle-count regression tests.
//
// The bench results in EXPERIMENTS.md depend on the calibrated timing
// model; these tests pin exact cycle counts of representative programs so
// that any change to the issue path, chaining, memory pipeline, or
// reduction schedule is a *conscious* recalibration (update the constants
// here and re-derive EXPERIMENTS.md), never an accident.
#include <gtest/gtest.h>

#include "kernels/common.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

TEST(GoldenTiming, StripMinedAxpy16L) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  Machine m(cfg);
  ProgramBuilder pb(cfg.effective_vlen(), "axpy");
  for (std::uint64_t done = 0; done < 8192;) {
    const std::uint64_t vl = pb.vsetvli(8192 - done, Sew::k64, kLmul4);
    pb.vle(8, 0x100000 + done * 8);
    pb.vle(16, 0x200000 + done * 8);
    pb.vfmacc_vf(16, 1.5, 8);
    pb.vse(16, 0x200000 + done * 8);
    pb.scalar_cycles(2);
    done += vl;
  }
  // Read-bandwidth bound: 2 x 8192 doubles over 128 B/cycle = 1024 cycles
  // of data, plus pipeline fill/drain and 8 strip overheads.
  EXPECT_EQ(m.run(pb.take()).cycles, 1764u);
}

TEST(GoldenTiming, SingleUnitStrideLoad16L) {
  const MachineConfig cfg = MachineConfig::araxl(16);
  Machine m(cfg);
  ProgramBuilder pb(cfg.effective_vlen(), "ld");
  pb.vsetvli(256, Sew::k64, kLmul1);
  pb.vle(8, 0x100000);
  // vsetvli round trip + issue + GLSU pipe (5) + L2 (12) + 16 data beats +
  // retire lag.
  EXPECT_EQ(m.run(pb.take()).cycles, 45u);
}

TEST(GoldenTiming, Reduction64LPaysRingTree) {
  const MachineConfig cfg = MachineConfig::araxl(64);
  Machine m(cfg);
  ProgramBuilder pb(cfg.effective_vlen(), "red");
  pb.vsetvli(1024, Sew::k64, kLmul1);
  pb.vfredusum(12, 8, 4);
  // Intra-lane 16 + inter-lane 2x4 + ring tree (15 hops + 4x8 adds) + SIMD 0
  // + writeback 2 + issue/dispatch overhead.
  EXPECT_EQ(m.run(pb.take()).cycles, 86u);
}

TEST(GoldenTiming, ReductionAra2HasNoRingTree) {
  const MachineConfig cfg = MachineConfig::ara2(16);
  Machine m(cfg);
  ProgramBuilder pb(cfg.effective_vlen(), "red");
  pb.vsetvli(256, Sew::k64, kLmul1);
  pb.vfredusum(12, 8, 4);
  EXPECT_EQ(m.run(pb.take()).cycles, 44u);
}

TEST(GoldenTiming, ChainedSlides32L) {
  const MachineConfig cfg = MachineConfig::araxl(32);
  Machine m(cfg);
  ProgramBuilder pb(cfg.effective_vlen(), "slides");
  pb.vsetvli(2048, Sew::k64, kLmul4);
  pb.vfslide1down(8, 4, 0.0);
  pb.vfslide1down(12, 8, 0.0);
  pb.vfadd_vv(16, 12, 8);
  EXPECT_EQ(m.run(pb.take()).cycles, 150u);
}

TEST(GoldenTiming, Jacobi2dKernel8L) {
  Machine m(MachineConfig::araxl(8));
  auto k = make_kernel("jacobi2d");
  const Program p = k->build(m, 64);
  EXPECT_EQ(m.run(p).cycles, 14625u);
}

TEST(GoldenTiming, Fdotproduct64LLongVector) {
  Machine m(MachineConfig::araxl(64));
  auto k = make_kernel("fdotproduct");
  const Program p = k->build(m, 512);
  EXPECT_EQ(m.run(p).cycles, 303u);
}

}  // namespace
}  // namespace araxl
