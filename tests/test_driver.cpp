// Tests for the experiment-driver subsystem (src/driver/): kernel
// registry coverage, sweep expansion, thread-pooled execution with
// worker-count-independent results, golden-verifier enforcement, failure
// isolation, and degenerate (vl==0 / tiny-AVL) jobs.
#include <gtest/gtest.h>

#include <set>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "driver/job.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/spec.hpp"
#include "isa/program.hpp"
#include "kernels/common.hpp"

namespace araxl::driver {
namespace {

// ---- registry ---------------------------------------------------------------

TEST(Registry, CoversEveryKernelInSrcKernels) {
  // Everything src/kernels/ exports must be sweepable by name.
  std::vector<std::string> expected;
  for (const auto& k : make_all_kernels()) expected.emplace_back(k->name());
  for (const auto& k : make_extension_kernels()) expected.emplace_back(k->name());
  ASSERT_EQ(expected.size(), 9u);

  const KernelRegistry& reg = KernelRegistry::instance();
  for (const std::string& name : expected) {
    const KernelInfo* info = reg.find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_FALSE(info->default_bpl_grid.empty()) << name;
    const auto made = reg.make(name);
    ASSERT_NE(made, nullptr) << name;
    EXPECT_EQ(made->name(), name);
    EXPECT_EQ(made->max_perf_factor(), info->max_perf_factor) << name;
  }
  // Paper set is the six Table-I kernels, in paper order.
  EXPECT_EQ(reg.paper_names(),
            (std::vector<std::string>{"fmatmul", "fconv2d", "jacobi2d",
                                      "fdotproduct", "exp", "softmax"}));
}

TEST(Registry, RejectsDuplicatesNullsAndUnknownNames) {
  KernelRegistry& reg = KernelRegistry::instance();
  EXPECT_EQ(reg.find("no_such_kernel"), nullptr);
  EXPECT_THROW((void)reg.at("no_such_kernel"), ContractViolation);

  KernelInfo dup;
  dup.name = "fmatmul";
  dup.factory = [] { return make_kernel("fmatmul"); };
  EXPECT_THROW(reg.add(std::move(dup)), ContractViolation);

  KernelInfo null_factory;
  null_factory.name = "null_factory_kernel";
  EXPECT_THROW(reg.add(std::move(null_factory)), ContractViolation);
}

// ---- splittable RNG ---------------------------------------------------------

TEST(RngFork, IndependentOfForkOrderAndParentUse) {
  const Rng master(42);
  Rng a = master.fork(7);

  // Interleave arbitrary other forks and parent-independent copies: the
  // child stream for index 7 must be bit-identical.
  Rng scratch = master.fork(3);
  (void)scratch.next_u64();
  Rng b = master.fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  // Distinct streams and distinct bases diverge.
  Rng c = master.fork(8);
  EXPECT_NE(master.fork(7).next_u64(), c.next_u64());
  EXPECT_NE(Rng(1).fork(7).next_u64(), Rng(2).fork(7).next_u64());
}

// ---- expansion --------------------------------------------------------------

SweepSpec small_spec(std::uint64_t base_seed) {
  SweepSpec spec;
  spec.configs = {parse_config_spec("araxl:8"), parse_config_spec("ara2:8")};
  spec.kernels = {"fdotproduct", "exp", "stream_triad"};
  spec.bytes_per_lane = {64};
  spec.base_seed = base_seed;
  return spec;
}

TEST(Expand, FlattensConfigMajorWithStableSeeds) {
  const std::vector<Job> jobs = expand(small_spec(99));
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].config_label, "araxl:8");
  EXPECT_EQ(jobs[0].kernel, "fdotproduct");
  EXPECT_EQ(jobs[3].config_label, "ara2:8");
  EXPECT_EQ(jobs[5].kernel, "stream_triad");
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].index, i);

  // Seeds are a pure function of (base_seed, index): re-expansion agrees,
  // jobs do not share streams, and base 0 keeps legacy inputs.
  const std::vector<Job> again = expand(small_spec(99));
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].seed, again[i].seed);
    EXPECT_NE(jobs[i].seed, 0u);
    seeds.insert(jobs[i].seed);
  }
  EXPECT_EQ(seeds.size(), jobs.size());
  for (const Job& j : expand(small_spec(0))) EXPECT_EQ(j.seed, 0u);
}

TEST(Expand, RejectsUnknownKernelsAndEmptyAxes) {
  SweepSpec spec = small_spec(0);
  spec.kernels.push_back("no_such_kernel");
  EXPECT_THROW((void)expand(spec), ContractViolation);
  spec = small_spec(0);
  spec.bytes_per_lane.clear();
  EXPECT_THROW((void)expand(spec), ContractViolation);
}

// ---- config specs -----------------------------------------------------------

TEST(ConfigSpec, ParsesShapesAndKnobs) {
  EXPECT_EQ(parse_config_spec("araxl:64").cfg.topo.clusters, 16u);
  EXPECT_EQ(parse_config_spec("araxl:8x8").cfg.topo.lanes, 8u);
  EXPECT_EQ(parse_config_spec("ara2:8").cfg.kind, MachineKind::kAra2);

  const ConfigPoint p =
      parse_config_spec("araxl:64:glsu=4:l2=24:vlen=32768:mode=cycle");
  EXPECT_EQ(p.label, "araxl:64:glsu=4:l2=24:vlen=32768:mode=cycle");
  EXPECT_EQ(p.cfg.glsu_regs, 4u);
  EXPECT_EQ(p.cfg.l2_latency, 24u);
  EXPECT_EQ(p.cfg.vlen_bits, 32768u);
  EXPECT_EQ(p.cfg.timing_mode, TimingMode::kCycleStepped);

  for (const char* bad : {"araxl", "araxl:sixty", "frankenmachine:8",
                          "araxl:64:warp=9", "ara2:8x2", "araxl:64:glsu"}) {
    EXPECT_THROW((void)parse_config_spec(bad), ContractViolation) << bad;
  }
}

// ---- runner: determinism across worker counts -------------------------------

TEST(Runner, SweepReportsByteIdenticalFor1And8Workers) {
  const SweepSpec spec = small_spec(42);

  RunnerOptions serial;
  serial.workers = 1;
  const std::vector<JobResult> r1 = run_sweep(spec, serial);

  RunnerOptions pooled;
  pooled.workers = 8;
  const std::vector<JobResult> r8 = run_sweep(spec, pooled);

  ASSERT_EQ(r1.size(), 6u);
  for (const JobResult& r : r1) EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(to_json(r1), to_json(r8));
  EXPECT_EQ(to_csv(r1), to_csv(r8));
}

TEST(Runner, ProgressReportsEveryJobExactlyOnce) {
  const SweepSpec spec = small_spec(0);
  RunnerOptions opts;
  opts.workers = 4;
  std::set<std::size_t> seen;
  std::size_t max_done = 0;
  opts.progress = [&](const JobResult& r, std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 6u);
    EXPECT_TRUE(seen.insert(r.job.index).second);
    EXPECT_GE(done, max_done);  // done counts are monotone under the lock
    max_done = done;
  };
  (void)run_sweep(spec, opts);
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(max_done, 6u);
}

// ---- runner: golden verifiers + failure isolation ---------------------------

TEST(Runner, GoldenVerifierCatchesInjectedCorruptionIsolated) {
  // exp verifies from memory; corrupting the machine's memory after the
  // run but before verification must fail that job — and only that job.
  SweepSpec spec;
  spec.configs = {parse_config_spec("araxl:8")};
  spec.kernels = {"fdotproduct", "exp", "stream_triad"};
  spec.bytes_per_lane = {64};

  RunnerOptions opts;
  opts.workers = 2;
  opts.corrupt_before_verify = [](Machine& m, const Job& job) {
    if (job.kernel == "exp") m.mem().fill(0x55);
  };
  const std::vector<JobResult> results = run_sweep(spec, opts);
  ASSERT_EQ(results.size(), 3u);
  for (const JobResult& r : results) {
    if (r.job.kernel == "exp") {
      EXPECT_FALSE(r.ok);
      EXPECT_NE(r.error.find("verification failed"), std::string::npos)
          << r.error;
    } else {
      EXPECT_TRUE(r.ok) << r.job.kernel << ": " << r.error;
    }
  }
  // The failed job still reports provenance in both report formats.
  const std::string json = to_json(results);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("verification failed"), std::string::npos);
  EXPECT_NE(to_csv(results).find("verification failed"), std::string::npos);
}

TEST(Runner, InvalidConfigJobIsIsolatedNotFatal) {
  // Hand-build jobs so one carries a config that fails validate(): the
  // bad job must error out while its neighbours complete.
  std::vector<Job> jobs(2);
  jobs[0].index = 0;
  jobs[0].config_label = "good";
  jobs[0].cfg = MachineConfig::araxl(8);
  jobs[0].kernel = "stream_triad";
  jobs[0].bytes_per_lane = 64;
  jobs[1] = jobs[0];
  jobs[1].index = 1;
  jobs[1].config_label = "bad";
  jobs[1].cfg.topo.clusters = 3;  // not a power of two

  RunnerOptions opts;
  opts.workers = 2;
  const std::vector<JobResult> results = run_jobs(jobs, opts);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[1].error.empty());
}

// ---- degenerate jobs --------------------------------------------------------

/// Synthetic kernel whose program runs with vl == 0: vsetvli grants zero
/// elements, the load/compute/store bodies must all retire as no-ops.
class Vl0ProbeKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "vl0_probe"; }
  [[nodiscard]] double max_perf_factor() const override { return 0.0; }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul1; }

  Program build(Machine& m, std::uint64_t) override {
    ProgramBuilder pb(m.config().effective_vlen(), "vl0_probe");
    const std::uint64_t addr = 1u << 20;
    pb.vsetvli(0, Sew::k64, kLmul1);
    pb.vle(1, addr);
    pb.vfadd_vf(2, 1, 1.0);
    pb.vse(2, addr + 4096);
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override { return 0; }

  [[nodiscard]] VerifyResult verify(const Machine&) const override {
    return VerifyResult{};  // nothing to check; the run completing is the test
  }
};

TEST(Runner, ZeroVlAndTinyAvlJobsRunClean) {
  KernelRegistry& reg = KernelRegistry::instance();
  if (reg.find("vl0_probe") == nullptr) {
    KernelInfo info;
    info.name = "vl0_probe";
    info.factory = [] { return std::make_unique<Vl0ProbeKernel>(); };
    info.default_bpl_grid = {8};
    info.extension = true;  // keep paper_names() stable for other tests
    reg.add(std::move(info));
  }

  SweepSpec spec;
  spec.configs = {parse_config_spec("araxl:8"), parse_config_spec("ara2:8")};
  spec.kernels = reg.names();  // every registered kernel, probe included
  spec.bytes_per_lane = {8};   // tiny AVL: one element per lane
  RunnerOptions opts;
  opts.workers = 4;
  for (const JobResult& r : run_sweep(spec, opts)) {
    EXPECT_TRUE(r.ok) << r.job.config_label << "/" << r.job.kernel << ": "
                      << r.error;
    if (r.job.kernel == "vl0_probe") {
      EXPECT_EQ(r.stats.flops, 0u);
      EXPECT_EQ(r.stats.mem_read_bytes, 0u);
      EXPECT_EQ(r.stats.mem_write_bytes, 0u);
    }
  }
}

// ---- differential oracle at sweep scale -------------------------------------

TEST(Runner, OracleCheckConfirmsEventEngineOnDriverJobs) {
  SweepSpec spec;
  spec.configs = {parse_config_spec("araxl:8"),
                  parse_config_spec("araxl:16:glsu=4:reqi=1:ring=1")};
  spec.kernels = {"fdotproduct", "softmax"};
  spec.bytes_per_lane = {64};
  spec.base_seed = 7;  // fresh inputs, not the legacy fixed ones
  RunnerOptions opts;
  opts.workers = 4;
  opts.check_oracle = true;
  for (const JobResult& r : run_sweep(spec, opts)) {
    EXPECT_TRUE(r.ok) << r.job.config_label << "/" << r.job.kernel << ": "
                      << r.error;
  }
}

}  // namespace
}  // namespace araxl::driver
