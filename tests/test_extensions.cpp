// Tests for the extended RVV coverage beyond the paper's core subset:
// widening FP arithmetic, vfsqrt, vrgather/vcompress, mask-population ops,
// and the extra integer instructions — functional golden checks plus the
// timing behaviour the AraXL interconnect implies for each.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "kernels/common.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

Machine small_machine() { return Machine(MachineConfig::araxl(8)); }

TEST(Widening, AddSubMul) {
  Machine m = small_machine();
  const std::uint64_t vl = 60;
  ProgramBuilder pb(m.config().effective_vlen(), "vfw");
  pb.vsetvli(vl, Sew::k32, kLmul1);
  pb.vfwadd_vv(16, 8, 12);
  pb.vfwsub_vv(20, 8, 12);
  pb.vfwmul_vv(24, 8, 12);
  const Program prog = pb.take();
  Rng rng(31);
  std::vector<float> a(vl);
  std::vector<float> b(vl);
  for (std::uint64_t i = 0; i < vl; ++i) {
    a[i] = static_cast<float>(rng.next_double(-3, 3));
    b[i] = static_cast<float>(rng.next_double(-3, 3));
    m.vrf().write_f32(8, i, a[i]);
    m.vrf().write_f32(12, i, b[i]);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    // Widening ops are exact: the f64 result of f32 inputs has no rounding.
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i),
                     static_cast<double>(a[i]) + static_cast<double>(b[i]));
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(20, i),
                     static_cast<double>(a[i]) - static_cast<double>(b[i]));
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(24, i),
                     static_cast<double>(a[i]) * static_cast<double>(b[i]));
  }
}

TEST(Widening, MaccAccumulatesInDouble) {
  Machine m = small_machine();
  const std::uint64_t vl = 32;
  ProgramBuilder pb(m.config().effective_vlen(), "vfwmacc");
  pb.vsetvli(vl, Sew::k32, kLmul1);
  pb.vfwmacc_vv(16, 8, 12);
  const Program prog = pb.take();
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().write_f32(8, i, 1.5f);
    m.vrf().write_f32(12, i, 2.0f);
    m.vrf().write_f64(16, i, 10.0);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i), 13.0);
  }
}

TEST(Widening, BuilderRejectsMisuse) {
  ProgramBuilder pb(8192, "w");
  pb.vsetvli(16, Sew::k64, kLmul1);
  EXPECT_THROW(pb.vfwadd_vv(16, 8, 12), ContractViolation);  // needs SEW=32
  pb.vsetvli(16, Sew::k32, kLmul2);
  EXPECT_THROW(pb.vfwadd_vv(18, 8, 12), ContractViolation);  // 2xLMUL align
  EXPECT_THROW(pb.vfwadd_vv(8, 8, 12), ContractViolation);   // overlap
  EXPECT_NO_THROW(pb.vfwadd_vv(16, 8, 12));
}

TEST(Sqrt, GoldenAndSlow) {
  Machine m = small_machine();
  const std::uint64_t vl = 64;
  ProgramBuilder pb(m.config().effective_vlen(), "sqrt");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vfsqrt_v(12, 8);
  const Program prog = pb.take();
  const auto a = random_doubles(vl, 0.01, 100.0, 33);
  for (std::uint64_t i = 0; i < vl; ++i) m.vrf().write_f64(8, i, a[i]);
  const RunStats s = m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, i), std::sqrt(a[i]));
  }
  // Unpipelined: slower than an add of the same length would be.
  EXPECT_GT(s.cycles, vl / 8 * m.config().div_cycles_per_elem / 2);
}

TEST(Gather, PermutesByIndex) {
  Machine m = small_machine();
  const std::uint64_t vl = 100;
  ProgramBuilder pb(m.config().effective_vlen(), "gather");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vrgather_vv(16, 8, 12);
  const Program prog = pb.take();
  const auto a = random_doubles(128, -1, 1, 34);
  Rng rng(35);
  std::vector<std::uint64_t> idx(vl);
  for (std::uint64_t i = 0; i < vl; ++i) {
    idx[i] = rng.next_below(130);  // a few indices beyond VLMAX=128 -> 0
    m.vrf().write_f64(8, i % 128, a[i % 128]);
    m.vrf().write_elem(12, i, 8, idx[i]);
  }
  for (std::uint64_t i = 0; i < 128; ++i) m.vrf().write_f64(8, i, a[i]);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const double expect = idx[i] < 128 ? a[idx[i]] : 0.0;
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i), expect) << i;
  }
}

TEST(Gather, RingLimitedOnAraXL) {
  // vrgather is an all-to-all permutation: on multi-cluster AraXL it
  // funnels through the ring, on lumped Ara2 it runs at full SLDU rate.
  const auto cycles = [&](MachineConfig cfg) {
    Machine m(cfg);
    ProgramBuilder pb(cfg.effective_vlen(), "g");
    const std::uint64_t vl = pb.vlmax(Sew::k64, kLmul4);
    pb.vsetvli(vl, Sew::k64, kLmul4);
    pb.vrgather_vv(16, 8, 12);
    return m.run(pb.take()).cycles;
  };
  EXPECT_GT(cycles(MachineConfig::araxl(16)), 2 * cycles(MachineConfig::ara2(16)));
}

TEST(Compress, PacksActiveElements) {
  Machine m = small_machine();
  const std::uint64_t vl = 90;
  ProgramBuilder pb(m.config().effective_vlen(), "compress");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vcompress_vm(16, 8, 4);
  const Program prog = pb.take();
  const auto a = random_doubles(vl, -1, 1, 36);
  Rng rng(37);
  std::vector<bool> mask(vl);
  std::vector<double> expect;
  for (std::uint64_t i = 0; i < vl; ++i) {
    mask[i] = rng.next_below(3) == 0;
    m.vrf().write_f64(8, i, a[i]);
    m.vrf().set_mask_bit(4, i, mask[i]);
    if (mask[i]) expect.push_back(a[i]);
  }
  m.run(prog);
  for (std::size_t k = 0; k < expect.size(); ++k) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, k), expect[k]) << k;
  }
}

TEST(MaskPopulation, CpopAndFirst) {
  Machine m = small_machine();
  const std::uint64_t vl = 77;
  ProgramBuilder pb(m.config().effective_vlen(), "cpop");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vmfgt_vf(4, 8, 0.5);
  pb.vcpop_m(4);
  const Program prog = pb.take();
  const auto a = random_doubles(vl, 0, 1, 38);
  std::int64_t count = 0;
  std::int64_t first = -1;
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().write_f64(8, i, a[i]);
    if (a[i] > 0.5) {
      ++count;
      if (first < 0) first = static_cast<std::int64_t>(i);
    }
  }
  m.run(prog);
  EXPECT_EQ(m.scalar_iacc(), count);

  ProgramBuilder pb2(m.config().effective_vlen(), "first");
  pb2.vsetvli(vl, Sew::k64, kLmul1);
  pb2.vfirst_m(4);
  m.run(pb2.take());
  EXPECT_EQ(m.scalar_iacc(), first);
}

TEST(MaskPopulation, FirstOnEmptyMaskIsMinusOne) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "first-empty");
  pb.vsetvli(32, Sew::k64, kLmul1);
  pb.vmfgt_vf(4, 8, 1e30);  // nothing passes
  pb.vfirst_m(4);
  m.run(pb.take());
  EXPECT_EQ(m.scalar_iacc(), -1);
}

TEST(MaskPopulation, IotaPrefixCounts) {
  Machine m = small_machine();
  const std::uint64_t vl = 64;
  ProgramBuilder pb(m.config().effective_vlen(), "iota");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.viota_m(12, 4);
  const Program prog = pb.take();
  std::uint64_t run = 0;
  std::vector<std::uint64_t> expect(vl);
  Rng rng(39);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const bool bit = rng.next_below(2) == 1;
    m.vrf().set_mask_bit(4, i, bit);
    expect[i] = run;
    if (bit) ++run;
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_EQ(m.vrf().read_elem(12, i, 8), expect[i]) << i;
  }
}

TEST(MaskPopulation, SetBeforeIncludingOnlyFirst) {
  Machine m = small_machine();
  const std::uint64_t vl = 24;
  ProgramBuilder pb(m.config().effective_vlen(), "msbf");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vmsbf_m(5, 4);
  pb.vmsif_m(6, 4);
  pb.vmsof_m(7, 4);
  const Program prog = pb.take();
  const std::uint64_t first = 9;
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().set_mask_bit(4, i, i == first || i == first + 5);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_EQ(m.vrf().mask_bit(5, i), i < first) << i;       // before
    EXPECT_EQ(m.vrf().mask_bit(6, i), i <= first) << i;      // including
    EXPECT_EQ(m.vrf().mask_bit(7, i), i == first) << i;      // only
  }
}

TEST(IntegerExt, MulMaccRsubMinMax) {
  Machine m = small_machine();
  const std::uint64_t vl = 40;
  ProgramBuilder pb(m.config().effective_vlen(), "intext");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vid_v(4);
  pb.vmul_vx(6, 4, 3);
  pb.vmul_vv(8, 4, 6);
  pb.vmv_v_x(10, 100);
  pb.vmacc_vv(10, 4, 6);   // 100 + i * 3i
  pb.vrsub_vx(12, 4, 50);  // 50 - i
  pb.vmax_vv(14, 4, 12);
  pb.vmin_vv(16, 4, 12);
  const Program prog = pb.take();
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_EQ(m.vrf().read_elem(6, i, 8), 3 * i);
    EXPECT_EQ(m.vrf().read_elem(8, i, 8), 3 * i * i);
    EXPECT_EQ(m.vrf().read_elem(10, i, 8), 100 + 3 * i * i);
    EXPECT_EQ(m.vrf().read_i64(12, i), 50 - static_cast<std::int64_t>(i));
    const std::int64_t a = static_cast<std::int64_t>(i);
    const std::int64_t b = 50 - a;
    EXPECT_EQ(m.vrf().read_i64(14, i), std::max(a, b));
    EXPECT_EQ(m.vrf().read_i64(16, i), std::min(a, b));
  }
}

TEST(IntegerExt, SignedMinMaxNegative) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "signed");
  pb.vsetvli(8, Sew::k64, kLmul1);
  pb.vmv_v_x(4, -10);
  pb.vmv_v_x(6, 3);
  pb.vmax_vv(8, 4, 6);
  pb.vmin_vv(10, 4, 6);
  m.run(pb.take());
  EXPECT_EQ(m.vrf().read_i64(8, 0), 3);
  EXPECT_EQ(m.vrf().read_i64(10, 0), -10);
}

TEST(Extensions, CrossTopologyEquivalence) {
  // The new ops must also be topology-invisible: run a mixed sequence on
  // AraXL 8L and Ara2 8L and compare results.
  const auto build = [&](std::uint64_t vlen) {
    ProgramBuilder pb(vlen, "ext-equiv");
    pb.vsetvli(96, Sew::k64, kLmul1);
    pb.vid_v(4);
    pb.vmul_vx(6, 4, 7);
    pb.vand_vx(8, 4, 0x3);
    pb.vmfgt_vf(10, 6, 100.0);  // wait: v6 holds ints; compare reads as f64
    pb.viota_m(12, 10);
    pb.vcompress_vm(14, 6, 10);
    pb.vrgather_vv(16, 6, 8);
    return pb.take();
  };
  Machine a(MachineConfig::araxl(8));
  Machine b(MachineConfig::ara2(8));
  const Program prog = build(8192);
  a.run(prog);
  b.run(prog);
  for (unsigned v = 4; v <= 16; v += 2) {
    for (std::uint64_t i = 0; i < 96; ++i) {
      if (v == 10) continue;  // mask register: physical layouts differ
      EXPECT_EQ(a.vrf().read_elem(v, i, 8), b.vrf().read_elem(v, i, 8))
          << "v" << v << "[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace araxl
