// Property-based tests.
//
// 1. Cross-topology equivalence: a random (but valid) vector program must
//    produce bit-identical architectural state (all registers + memory) on
//    machines with different cluster topologies and mask layouts but the
//    same VLEN — the mapping/layout machinery must be functionally
//    invisible.
// 2. Paper-claim properties over parameter sweeps: weak scaling, long-
//    vector utilization floors, latency-tolerance bounds, medium-vector
//    setup-time ordering, and alignment robustness.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "driver/registry.hpp"
#include "driver/runner.hpp"
#include "driver/spec.hpp"
#include "kernels/common.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

constexpr std::uint64_t kBase = 0x10000;
constexpr std::uint64_t kRegionBytes = 64 * 1024;

// ---- 1. cross-topology equivalence fuzzer -----------------------------------

/// Generates a random valid program using even registers v4..v28, v0 as a
/// mask (written only by compares), and memory traffic inside the region.
Program random_program(std::uint64_t vlen_bits, std::uint64_t seed) {
  Rng rng(seed);
  ProgramBuilder pb(vlen_bits, "fuzz" + std::to_string(seed));
  const auto reg = [&]() { return 4 + 2 * static_cast<unsigned>(rng.next_below(13)); };
  const auto addr = [&]() { return kBase + 8 * rng.next_below(kRegionBytes / 16); };
  const auto fs = [&]() { return rng.next_double(-2.0, 2.0); };

  const Lmul lmul = rng.next_below(2) == 0 ? kLmul1 : kLmul2;
  std::uint64_t vl =
      pb.vsetvli(1 + rng.next_below(pb.vlmax(Sew::k64, lmul)), Sew::k64, lmul);
  bool mask_valid = false;

  const auto distinct = [&](unsigned avoid) {
    unsigned r = reg();
    while (r == avoid) r = reg();
    return r;
  };

  const unsigned ops = 50 + static_cast<unsigned>(rng.next_below(50));
  for (unsigned i = 0; i < ops; ++i) {
    switch (rng.next_below(26)) {
      case 0: pb.vle(reg(), addr()); break;
      case 1: pb.vse(reg(), addr()); break;
      case 2: pb.vfadd_vv(reg(), reg(), reg()); break;
      case 3: pb.vfsub_vf(reg(), reg(), fs()); break;
      case 4: pb.vfmul_vv(reg(), reg(), reg()); break;
      case 5: pb.vfmacc_vf(reg(), fs(), reg()); break;
      case 6: pb.vfmax_vf(reg(), reg(), fs()); break;
      case 7: pb.vfslide1down(reg(), reg(), fs()); break;
      case 8: {
        const unsigned vd = reg();
        pb.vfslide1up(vd, distinct(vd), fs());
        break;
      }
      case 9: pb.vmfgt_vf(0, reg(), fs()); mask_valid = true; break;
      case 10:
        if (mask_valid) pb.vfmerge_vfm(reg(), reg(), fs());
        break;
      case 11:
        if (mask_valid) pb.vfadd_vf(reg(), reg(), fs(), /*masked=*/true);
        break;
      case 12: pb.vfredusum(30, reg(), 31); break;
      case 13: pb.vid_v(reg()); break;
      case 14: {
        // Strided load within bounds: stride 16, vl elements.
        pb.vlse(reg(), kBase + 8 * rng.next_below(64), 16);
        break;
      }
      case 15: {
        const Lmul ml = rng.next_below(2) == 0 ? kLmul1 : kLmul2;
        vl = pb.vsetvli(1 + rng.next_below(pb.vlmax(Sew::k64, ml)), Sew::k64, ml);
        mask_valid = false;  // layout of v0 under new vtype is unchanged, but
                             // keep the generator conservative
        break;
      }
      // --- extension coverage -------------------------------------------
      case 16: pb.vmul_vx(reg(), reg(), static_cast<std::int64_t>(rng.next_below(7))); break;
      case 17: pb.vmax_vv(reg(), reg(), reg()); break;
      case 18: pb.vrsub_vx(reg(), reg(), 13); break;
      case 19: {
        // Gather with in-range indices derived from vid & mask.
        const unsigned idx = reg();
        pb.vid_v(idx);
        pb.vand_vx(idx, idx, 0xF);
        const unsigned vd = reg();
        unsigned vs2 = distinct(vd);
        while (vs2 == idx) vs2 = distinct(vd);
        if (idx != vd) pb.vrgather_vv(vd, vs2, idx);
        break;
      }
      case 20: {
        pb.vmfgt_vf(2, reg(), fs());  // mask into v2
        const unsigned vd = reg();
        unsigned vs2 = distinct(vd);
        pb.vcompress_vm(vd, vs2, 2);
        break;
      }
      case 21: {
        pb.vmflt_vf(2, reg(), fs());
        const unsigned vd = reg();
        pb.viota_m(vd, 2);
        break;
      }
      case 22: pb.vfredmax(30, reg(), 31); break;
      case 23: pb.vfsqrt_v(reg(), reg()); break;
      case 24: {
        // Strided store into the upper half of the region (stride 24 x the
        // largest vl stays in bounds; exercises the bulk scatter path).
        pb.vsse(reg(), kBase + kRegionBytes / 2 + 8 * rng.next_below(64), 24);
        break;
      }
      case 25: {
        // Descending strided load ending exactly at the region base.
        pb.vlse(reg(), kBase + 8 * (vl - 1), -8);
        break;
      }
    }
  }
  (void)vl;
  return pb.take();
}

void init_machine(Machine& m, std::uint64_t seed) {
  m.mem().store_doubles(kBase,
                        random_doubles(kRegionBytes / 8, -2.0, 2.0, seed + 1000));
  // Registers start at deterministic values so reads-before-writes agree.
  const std::uint64_t epr = m.config().effective_vlen() / 64;
  for (unsigned v = 0; v < kNumVregs; ++v) {
    for (std::uint64_t i = 0; i < epr; ++i) {
      m.vrf().write_f64(v, i, static_cast<double>(v) + 0.001 * static_cast<double>(i));
    }
  }
}

class CrossTopology : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossTopology, SameArchitecturalState) {
  const std::uint64_t seed = GetParam();
  // Four machines, same VLEN (8192), different topologies/mask layouts:
  // 2x4 AraXL, lumped 8-lane Ara2, a 16-lane AraXL with reduced VLEN, and
  // a 4x2-lane-cluster AraXL.
  MachineConfig a = MachineConfig::araxl(8);
  MachineConfig b = MachineConfig::ara2(8);
  MachineConfig c = MachineConfig::araxl(16);
  c.vlen_bits = 8192;
  c.validate();
  MachineConfig d = MachineConfig::araxl_shaped(4, 2);  // 2-lane clusters
  d.vlen_bits = 8192;
  d.validate();
  // Hierarchical: the group level must be architecturally invisible (the
  // mapping flattens it), so a 2x4x4 machine agrees bit-for-bit too.
  MachineConfig e = MachineConfig::araxl_hier(2, 4, 4);
  e.vlen_bits = 8192;
  e.validate();

  const Program prog = random_program(8192, seed);
  // Machines are non-movable (self-referencing engines): heap-allocate.
  std::vector<std::unique_ptr<Machine>> machine_ptrs;
  machine_ptrs.push_back(std::make_unique<Machine>(a));
  machine_ptrs.push_back(std::make_unique<Machine>(b));
  machine_ptrs.push_back(std::make_unique<Machine>(c));
  machine_ptrs.push_back(std::make_unique<Machine>(d));
  machine_ptrs.push_back(std::make_unique<Machine>(e));
  const auto machines = [&](std::size_t i) -> Machine& { return *machine_ptrs[i]; };
  for (auto& m : machine_ptrs) {
    init_machine(*m, seed);
    m->run(prog);
  }

  // v0 and v2 hold masks: their *physical* bytes legitimately differ
  // between the lane-local (AraXL) and standard (Ara2) layouts — the
  // paper's §III-B.5 point. Their logical effect is compared through the
  // results of merges, masked ops, viota and vcompress in regular
  // registers, so the raw comparison skips the mask registers.
  const std::uint64_t epr = 8192 / 64;
  for (unsigned v = 1; v < kNumVregs; ++v) {
    if (v == 2) continue;  // mask register (see above)
    for (std::uint64_t i = 0; i < epr; ++i) {
      const std::uint64_t ref = machines(0).vrf().read_elem(v, i, 8);
      EXPECT_EQ(machines(1).vrf().read_elem(v, i, 8), ref)
          << "v" << v << "[" << i << "] differs on " << b.name();
      EXPECT_EQ(machines(2).vrf().read_elem(v, i, 8), ref)
          << "v" << v << "[" << i << "] differs on 16L/8Kib";
      EXPECT_EQ(machines(3).vrf().read_elem(v, i, 8), ref)
          << "v" << v << "[" << i << "] differs on 4x2L/8Kib";
      EXPECT_EQ(machines(4).vrf().read_elem(v, i, 8), ref)
          << "v" << v << "[" << i << "] differs on 2x4x4L/8Kib";
    }
  }
  for (std::uint64_t off = 0; off < kRegionBytes; off += 8) {
    const auto ref = machines(0).mem().load<std::uint64_t>(kBase + off);
    ASSERT_EQ(machines(1).mem().load<std::uint64_t>(kBase + off), ref)
        << "memory differs at offset " << off;
    ASSERT_EQ(machines(2).mem().load<std::uint64_t>(kBase + off), ref)
        << "memory differs at offset " << off;
    ASSERT_EQ(machines(3).mem().load<std::uint64_t>(kBase + off), ref)
        << "memory differs at offset " << off;
    ASSERT_EQ(machines(4).mem().load<std::uint64_t>(kBase + off), ref)
        << "memory differs at offset " << off;
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, CrossTopology, testing::Range<std::uint64_t>(0, 12));

// ---- 2. paper-claim properties -----------------------------------------------

RunStats run_kernel_on(const MachineConfig& cfg, const char* name,
                       std::uint64_t bpl) {
  Machine m(cfg);
  auto k = make_kernel(name);
  const Program p = k->build(m, bpl);
  return m.run(p);
}

TEST(PaperClaims, FmatmulLongVectorUtilization) {
  // "reaching more than 99% utilization on sufficiently large matrix
  // multiplications even with 64 lanes".
  for (unsigned lanes : {8u, 16u, 32u, 64u}) {
    const RunStats s = run_kernel_on(MachineConfig::araxl(lanes), "fmatmul", 512);
    EXPECT_GT(s.fpu_util(), 0.985) << lanes << " lanes";
  }
}

TEST(PaperClaims, Fconv2dUtilization97) {
  const RunStats s = run_kernel_on(MachineConfig::araxl(64), "fconv2d", 512);
  EXPECT_GT(s.fpu_util(), 0.95);
  EXPECT_LT(s.fpu_util(), 0.99);
}

TEST(PaperClaims, WeakScalingIsFlatForComputeKernels) {
  // Under weak scaling, cycles should stay ~constant as lanes grow for the
  // compute-bound kernels (that IS linear performance scaling).
  for (const char* k : {"fmatmul", "fconv2d", "jacobi2d", "exp"}) {
    const Cycle c8 = run_kernel_on(MachineConfig::araxl(8), k, 256).cycles;
    const Cycle c64 = run_kernel_on(MachineConfig::araxl(64), k, 256).cycles;
    EXPECT_LT(static_cast<double>(c64) / static_cast<double>(c8), 1.10) << k;
  }
}

TEST(PaperClaims, ReductionKernelsScaleSublinearly) {
  // fdotproduct and softmax lose ground at 64 lanes (paper: 6.1x / 7.3x).
  for (const char* k : {"fdotproduct", "softmax"}) {
    const RunStats s8 = run_kernel_on(MachineConfig::ara2(8), k, 512);
    const RunStats s64 = run_kernel_on(MachineConfig::araxl(64), k, 512);
    const double scaling = s64.flop_per_cycle() / s8.flop_per_cycle();
    EXPECT_GT(scaling, 5.5) << k;
    EXPECT_LT(scaling, 7.9) << k;
  }
}

TEST(PaperClaims, LongerVectorsRecoverDotproductScaling) {
  // §IV-B: 16384 B/lane strip-mined dotproduct reaches ~7.6x.
  const RunStats s8 = run_kernel_on(MachineConfig::ara2(8), "fdotproduct", 16384);
  const RunStats s64 =
      run_kernel_on(MachineConfig::araxl(64), "fdotproduct", 16384);
  const double scaling = s64.flop_per_cycle() / s8.flop_per_cycle();
  EXPECT_GT(scaling, 7.3);
  EXPECT_LE(scaling, 8.0);
}

TEST(PaperClaims, UtilizationGrowsWithVectorLength) {
  for (const char* k : {"fmatmul", "fconv2d", "jacobi2d", "exp"}) {
    double prev = 0.0;
    for (std::uint64_t bpl : {64ull, 128ull, 256ull, 512ull}) {
      const double util = run_kernel_on(MachineConfig::araxl(64), k, bpl).fpu_util();
      EXPECT_GE(util, prev - 0.01) << k << " at " << bpl;
      prev = util;
    }
  }
}

TEST(PaperClaims, AraXLSetupTimeWorseThanAra2AtMediumVectors) {
  // §IV-B: at 64 B/lane the effect "is worse in AraXL since the newly
  // designed interfaces increase the vector instruction setup time".
  for (const char* k : {"fmatmul", "fconv2d", "jacobi2d"}) {
    const double a2 = run_kernel_on(MachineConfig::ara2(8), k, 64).fpu_util();
    const double xl = run_kernel_on(MachineConfig::araxl(8), k, 64).fpu_util();
    EXPECT_LT(xl, a2) << k;
  }
}

TEST(PaperClaims, LatencyToleranceInLongVectorRegime) {
  // Fig. 7: each interface cut costs < 3 utilization points at 512 B/lane.
  const MachineConfig base = MachineConfig::araxl(64);
  for (const char* k : {"fmatmul", "fconv2d", "jacobi2d", "fdotproduct", "exp",
                        "softmax"}) {
    const double u0 = run_kernel_on(base, k, 512).fpu_util();
    for (int which = 0; which < 3; ++which) {
      MachineConfig mod = base;
      mod.glsu_regs = which == 0 ? 4 : 0;
      mod.reqi_regs = which == 1 ? 1 : 0;
      mod.ring_regs = which == 2 ? 1 : 0;
      const double u1 = run_kernel_on(mod, k, 512).fpu_util();
      EXPECT_LT(u0 - u1, 0.03) << k << " variant " << which;
    }
  }
}

TEST(PaperClaims, FlopAccountingMatchesKernelMath) {
  // Simulated FLOP >= the kernel's useful FLOP, and for the pure-FMA
  // fmatmul they agree exactly.
  Machine m(MachineConfig::araxl(16));
  auto k = make_kernel("fmatmul");
  const Program p = k->build(m, 128);
  const RunStats s = m.run(p);
  EXPECT_EQ(s.flops, k->useful_flops());
}

class AlignmentSweep : public testing::TestWithParam<unsigned> {};

TEST_P(AlignmentSweep, LoadStoreRoundTripAtAnyOffset) {
  const unsigned skew = GetParam();
  Machine m(MachineConfig::araxl(16));
  const std::uint64_t vl = 300;
  const auto a = random_doubles(vl, -1, 1, skew);
  const std::uint64_t src = kBase + skew * 8 + 8;
  const std::uint64_t dst = kBase + 32768 + skew * 8;
  m.mem().store_doubles(src, a);
  ProgramBuilder pb(m.config().effective_vlen(), "align");
  pb.vsetvli(vl, Sew::k64, kLmul2);
  pb.vle(8, src);
  pb.vse(8, dst);
  m.run(pb.take());
  EXPECT_EQ(m.mem().load_doubles(dst, vl), a);
}

INSTANTIATE_TEST_SUITE_P(AllLaneOffsets, AlignmentSweep,
                         testing::Values(0u, 1u, 2u, 3u, 5u, 7u, 9u, 15u));

// ---- 3. engine equivalence: event-driven vs cycle-stepped oracle ------------
//
// The event-driven kernel fast-forwards simulated time between wakeups;
// its contract is that every RunStats counter — cycles, flops, stall
// breakdowns, per-unit busy elements — is bit-for-bit identical to the
// per-cycle oracle's. Randomized programs across topologies exercise
// chaining, slides, gathers, reductions, divides (fractional rates), and
// misaligned memory traffic through both kernels.

void expect_same_stats(const RunStats& ev, const RunStats& oracle,
                       const std::string& label) {
  EXPECT_EQ(ev.cycles, oracle.cycles) << label;
  EXPECT_EQ(ev.vinstrs, oracle.vinstrs) << label;
  EXPECT_EQ(ev.scalar_ops, oracle.scalar_ops) << label;
  EXPECT_EQ(ev.flops, oracle.flops) << label;
  EXPECT_EQ(ev.fpu_result_elems, oracle.fpu_result_elems) << label;
  EXPECT_EQ(ev.mem_read_bytes, oracle.mem_read_bytes) << label;
  EXPECT_EQ(ev.mem_write_bytes, oracle.mem_write_bytes) << label;
  EXPECT_EQ(ev.issue_stall_cycles, oracle.issue_stall_cycles) << label;
  EXPECT_EQ(ev.scalar_wait_cycles, oracle.scalar_wait_cycles) << label;
  for (std::size_t u = 0; u < kNumUnits; ++u) {
    EXPECT_EQ(ev.unit_busy_elems[u], oracle.unit_busy_elems[u])
        << label << " unit " << unit_name(static_cast<Unit>(u));
  }
  EXPECT_TRUE(ev == oracle) << label;
}

RunStats run_fuzz_with_mode(MachineConfig cfg, TimingMode mode,
                            const Program& prog, std::uint64_t seed) {
  cfg.timing_mode = mode;
  Machine m(cfg);
  init_machine(m, seed);
  return m.run(prog);
}

class EngineEquivalence : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalence, RandomProgramsBitIdenticalStats) {
  const std::uint64_t seed = GetParam();
  MachineConfig shaped = MachineConfig::araxl_shaped(4, 2);
  shaped.vlen_bits = 8192;
  shaped.validate();
  MachineConfig laggy = MachineConfig::araxl(16);
  laggy.glsu_regs = 4;
  laggy.reqi_regs = 1;
  laggy.ring_regs = 1;
  laggy.validate();
  // Hierarchical machine (2 groups x 4 clusters x 4 lanes): group-hop
  // slides, group reduction stages and the deeper REQI/GLSU pipes all ride
  // the same differential gate. Reduced VLEN keeps the oracle cheap.
  MachineConfig hier = MachineConfig::araxl_hier(2, 4, 4);
  hier.vlen_bits = 8192;
  hier.validate();
  const MachineConfig configs[] = {
      MachineConfig::araxl(8),
      MachineConfig::ara2(8),
      MachineConfig::araxl(64),
      shaped,
      laggy,
      hier,
  };
  for (const MachineConfig& cfg : configs) {
    const Program prog = random_program(cfg.effective_vlen(), seed);
    const RunStats ev =
        run_fuzz_with_mode(cfg, TimingMode::kEventDriven, prog, seed);
    const RunStats oracle =
        run_fuzz_with_mode(cfg, TimingMode::kCycleStepped, prog, seed);
    expect_same_stats(ev, oracle, cfg.name() + " seed " + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, EngineEquivalence,
                         testing::Range<std::uint64_t>(0, 16));

TEST(EngineEquivalence, KernelsBitIdenticalStats) {
  for (const char* k : {"fmatmul", "fconv2d", "jacobi2d", "fdotproduct", "exp",
                        "softmax"}) {
    for (unsigned lanes : {8u, 64u}) {
      MachineConfig cfg = MachineConfig::araxl(lanes);
      cfg.timing_mode = TimingMode::kEventDriven;
      Machine ev(cfg);
      auto kernel = make_kernel(k);
      const Program prog = kernel->build(ev, 256);
      const RunStats s_ev = ev.run(prog);

      cfg.timing_mode = TimingMode::kCycleStepped;
      Machine oracle(cfg);
      auto kernel2 = make_kernel(k);
      const Program prog2 = kernel2->build(oracle, 256);
      const RunStats s_or = oracle.run(prog2);
      expect_same_stats(s_ev, s_or,
                        std::string(k) + " " + std::to_string(lanes) + "L");
    }
  }
}

TEST(EngineEquivalence, Hierarchical128LaneKernelsBitIdentical) {
  // The acceptance bar for the topology layer: a >64-lane hierarchical
  // machine (4 groups x 8 clusters x 4 lanes) runs real kernels end to end
  // with the event and oracle kernels bit-identical — including the
  // reduction tree's group stages (fdotproduct) and group-hop slides.
  for (const char* k : {"fdotproduct", "stream_triad", "fmatmul"}) {
    MachineConfig cfg = MachineConfig::araxl(128);
    cfg.timing_mode = TimingMode::kEventDriven;
    Machine ev(cfg);
    auto kernel = make_kernel(k);
    const Program prog = kernel->build(ev, 64);
    const RunStats s_ev = ev.run(prog);

    cfg.timing_mode = TimingMode::kCycleStepped;
    Machine oracle(cfg);
    auto kernel2 = make_kernel(k);
    const Program prog2 = kernel2->build(oracle, 64);
    const RunStats s_or = oracle.run(prog2);
    expect_same_stats(s_ev, s_or, std::string(k) + " 128L hierarchical");
  }
}

TEST(EngineEquivalence, ManyLiveChainingDepsBitIdentical) {
  // Regression: a consumer can legitimately depend on six or more live
  // producers (LMUL groups fan each source across several registers, each
  // with its own in-flight writer). The event engine's cap combiner must
  // handle an unbounded dep count, not a fixed-size line array.
  MachineConfig cfg = MachineConfig::araxl(8);
  ProgramBuilder pb(cfg.effective_vlen(), "manydeps");
  const std::uint64_t vlmax1 = pb.vlmax(Sew::k64, kLmul1);
  pb.vsetvli(vlmax1, Sew::k64, kLmul1);
  pb.vfadd_vf(8, 4, 1.0);   // FPU writer of v8
  pb.vfadd_vf(9, 5, 2.0);   // FPU writer of v9
  pb.vle(0, kBase);          // load writers of v0..v3
  pb.vle(1, kBase + 8 * vlmax1);
  pb.vle(2, kBase + 16 * vlmax1);
  pb.vle(3, kBase + 24 * vlmax1);
  pb.vsetvli(2 * vlmax1, Sew::k64, kLmul2);
  pb.vfmacc_vv(8, 0, 2);     // deps on v0,v1 (vs1), v2,v3 (vs2), v8,v9 (vd)
  const Program prog = pb.take();

  const RunStats ev = run_fuzz_with_mode(cfg, TimingMode::kEventDriven, prog, 1);
  const RunStats oracle =
      run_fuzz_with_mode(cfg, TimingMode::kCycleStepped, prog, 1);
  expect_same_stats(ev, oracle, "many live chaining deps");
}

TEST(EngineEquivalence, DriverSweepRegistryKernelsMatchOracle) {
  // Differential fuzz at sweep scale: sample topologies and programs via
  // the driver's kernel registry (every kernel in src/kernels/, including
  // the extension set the KernelsBitIdenticalStats test does not cover)
  // with freshly seeded inputs, and let the runner's oracle-check re-run
  // every driver-generated job under TimingMode::kCycleStepped and demand
  // bit-identical RunStats.
  driver::SweepSpec spec;
  spec.configs = {
      driver::parse_config_spec("araxl:8"),
      driver::parse_config_spec("ara2:8"),
      driver::parse_config_spec("araxl:4x2:vlen=8192"),
      driver::parse_config_spec("araxl:16:glsu=4:reqi=1:ring=1"),
      driver::parse_config_spec("araxl:2x4x4:vlen=8192"),  // hierarchical
  };
  spec.kernels = driver::KernelRegistry::instance().names();
  spec.bytes_per_lane = {64};
  spec.base_seed = 0xA5A5;  // new input streams, not the legacy fixed data

  driver::RunnerOptions opts;
  opts.workers = 4;
  opts.check_oracle = true;
  for (const driver::JobResult& r : driver::run_sweep(spec, opts)) {
    EXPECT_TRUE(r.ok) << r.job.config_label << "/" << r.job.kernel << ": "
                      << r.error;
  }
}

// ---- 4. loop batching: steady-state fast-forward vs the oracle --------------
//
// The event engine batches whole strip-mined iterations once two
// consecutive loop-period boundaries snapshot identically. These programs
// are built to stress exactly the edges of that detector: long steady
// loops (must batch, must stay exact through the vl tail), mid-loop vl
// changes (must fall out of batch mode), and adversarial signature
// collisions — bodies whose op signatures repeat perfectly while the
// address pattern silently changes (progression breaks, per-op deltas
// diverge, or deltas misalign with the bus), which MUST either be rejected
// by the address checks or still simulate bit-identically.
Program loop_program(std::uint64_t vlen_bits, std::uint64_t seed) {
  Rng rng(seed);
  ProgramBuilder pb(vlen_bits, "loopfuzz" + std::to_string(seed));
  const Lmul lmul = rng.next_below(2) == 0 ? kLmul1 : kLmul2;
  const std::uint64_t vlmax_b = pb.vlmax(Sew::k64, lmul);
  // Long enough that the batchable variants actually reach steady state
  // (queue backpressure takes ~a dozen iterations to saturate), short
  // enough that the per-cycle oracle stays cheap.
  const std::uint64_t iters = 14 + rng.next_below(22);
  // Half the programs end on a partial (tail) strip.
  const std::uint64_t total =
      vlmax_b * iters + (rng.next_below(2) == 0 ? 1 + rng.next_below(vlmax_b - 1) : 0);
  const std::uint64_t variant = rng.next_below(5);
  const std::uint64_t stride_bytes = vlmax_b * 8;

  std::uint64_t a = kBase;
  std::uint64_t b = kBase + kRegionBytes / 4;
  std::uint64_t c = kBase + kRegionBytes / 2;
  std::uint64_t done = 0;
  std::uint64_t iter = 0;
  while (done < total) {
    const std::uint64_t vl = pb.vsetvli(total - done, Sew::k64, lmul);
    switch (variant) {
      case 0:  // plain strip-mined triad: the must-batch case
        pb.vle(8, a);
        pb.vle(16, b);
        pb.vfmacc_vv(24, 8, 16);
        pb.vse(24, c);
        pb.scalar_cycles(2);
        a += stride_bytes;
        b += stride_bytes;
        c += stride_bytes;
        break;
      case 1: {  // mid-loop vsetvli with an iteration-dependent grant
        pb.vle(8, a);
        pb.vsetvli(1 + (iter % 7), Sew::k64, kLmul1);
        pb.vfadd_vf(16, 8, 1.5);
        pb.vsetvli(total - done, Sew::k64, lmul);
        pb.vfmul_vv(24, 8, 8);
        a += stride_bytes;
        break;
      }
      case 2:  // signature collision: identical keys, diverging per-op deltas
        pb.vle(8, a);
        pb.vle(16, b);
        pb.vfadd_vv(24, 8, 16);
        pb.vse(24, c);
        a += stride_bytes;
        b += stride_bytes / 2;  // not the common delta
        c += 8 * (iter % 3);    // not even a progression
        break;
      case 3:  // bus-misaligned deltas + store/load overlap churn
        pb.vle(8, a);
        pb.vfadd_vf(16, 8, 0.25);
        pb.vse(16, a + 8);  // overlaps the next iteration's load
        a += 24;            // not a multiple of any bus width
        break;
      default:  // batchable body with slides, reductions and scalar work
        pb.vle(8, a);
        pb.vfslide1down(16, 8, 3.25);
        pb.vfmacc_vv(24, 8, 16);
        pb.vfredusum(30, 24, 31);
        pb.scalar_cycles(1 + seed % 3);
        a += stride_bytes;
        break;
    }
    done += vl;
    ++iter;
  }
  return pb.take();
}

struct LoopRun {
  RunStats stats;
  InstrTrace trace;
  std::unique_ptr<Machine> machine;
};

LoopRun run_loop_with_mode(MachineConfig cfg, TimingMode mode,
                           const Program& prog, std::uint64_t seed) {
  cfg.timing_mode = mode;
  LoopRun out;
  out.machine = std::make_unique<Machine>(cfg);
  init_machine(*out.machine, seed);
  out.stats = out.machine->run(prog, &out.trace);
  return out;
}

class LoopEquivalence : public testing::TestWithParam<std::uint64_t> {};

TEST_P(LoopEquivalence, BatchedLoopsBitIdenticalToOracle) {
  const std::uint64_t seed = GetParam();
  MachineConfig shaped = MachineConfig::araxl_shaped(4, 2);
  shaped.vlen_bits = 8192;
  shaped.validate();
  MachineConfig laggy = MachineConfig::araxl(16);
  laggy.glsu_regs = 4;
  laggy.reqi_regs = 1;
  laggy.ring_regs = 1;
  laggy.validate();
  // Hierarchical topology: loop batching must stay gated on the group-hop
  // latencies and deeper pipes too (snapshots taken on a machine whose
  // descriptor differs from every flat config).
  MachineConfig hier = MachineConfig::araxl_hier(2, 4, 4);
  hier.vlen_bits = 8192;
  hier.validate();
  const MachineConfig configs[] = {
      MachineConfig::araxl(8),
      MachineConfig::ara2(8),
      MachineConfig::araxl(64),
      shaped,
      laggy,
      hier,
  };
  for (const MachineConfig& cfg : configs) {
    const Program prog = loop_program(cfg.effective_vlen(), seed);
    const LoopRun ev =
        run_loop_with_mode(cfg, TimingMode::kEventDriven, prog, seed);
    const LoopRun oracle =
        run_loop_with_mode(cfg, TimingMode::kCycleStepped, prog, seed);
    const std::string label = cfg.name() + " loopseed " + std::to_string(seed);
    expect_same_stats(ev.stats, oracle.stats, label);

    // Retirement order and per-instruction timestamps: the batched trace
    // replay must be indistinguishable from the oracle's per-cycle trace.
    ASSERT_EQ(ev.trace.records().size(), oracle.trace.records().size()) << label;
    for (std::size_t i = 0; i < ev.trace.records().size(); ++i) {
      const TraceRecord& x = ev.trace.records()[i];
      const TraceRecord& y = oracle.trace.records()[i];
      EXPECT_EQ(x.id, y.id) << label << " #" << i;
      EXPECT_EQ(x.prog_index, y.prog_index) << label << " #" << i;
      EXPECT_EQ(x.text, y.text) << label << " #" << i;
      EXPECT_EQ(x.issued, y.issued) << label << " #" << i << " " << x.text;
      EXPECT_EQ(x.dispatched, y.dispatched) << label << " #" << i << " " << x.text;
      EXPECT_EQ(x.first_result, y.first_result) << label << " #" << i << " " << x.text;
      EXPECT_EQ(x.completed, y.completed) << label << " #" << i << " " << x.text;
    }

    // Architectural state: the batch path re-executes every op through the
    // functional engine; registers and memory must match the oracle's.
    const std::uint64_t epr = cfg.effective_vlen() / 64;
    for (unsigned v = 1; v < kNumVregs; ++v) {
      for (std::uint64_t i = 0; i < epr; ++i) {
        ASSERT_EQ(ev.machine->vrf().read_elem(v, i, 8),
                  oracle.machine->vrf().read_elem(v, i, 8))
            << label << " v" << v << "[" << i << "]";
      }
    }
    for (std::uint64_t off = 0; off < kRegionBytes; off += 8) {
      ASSERT_EQ(ev.machine->mem().load<std::uint64_t>(kBase + off),
                oracle.machine->mem().load<std::uint64_t>(kBase + off))
          << label << " mem offset " << off;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, LoopEquivalence,
                         testing::Range<std::uint64_t>(0, 15));

TEST(EngineEquivalence, TracesBitIdentical) {
  // Retirement order and per-instruction trace timestamps must match too,
  // not just the aggregate counters.
  MachineConfig cfg = MachineConfig::araxl(16);
  const Program prog = random_program(cfg.effective_vlen(), 7);

  const auto traced = [&](TimingMode mode) {
    MachineConfig c = cfg;
    c.timing_mode = mode;
    Machine m(c);
    init_machine(m, 7);
    InstrTrace trace;
    m.run(prog, &trace);
    return trace;
  };
  const InstrTrace ev = traced(TimingMode::kEventDriven);
  const InstrTrace oracle = traced(TimingMode::kCycleStepped);
  ASSERT_EQ(ev.records().size(), oracle.records().size());
  for (std::size_t i = 0; i < ev.records().size(); ++i) {
    const TraceRecord& a = ev.records()[i];
    const TraceRecord& b = oracle.records()[i];
    EXPECT_EQ(a.id, b.id) << i;
    EXPECT_EQ(a.issued, b.issued) << i << " " << a.text;
    EXPECT_EQ(a.dispatched, b.dispatched) << i << " " << a.text;
    EXPECT_EQ(a.first_result, b.first_result) << i << " " << a.text;
    EXPECT_EQ(a.completed, b.completed) << i << " " << a.text;
  }
}

}  // namespace
}  // namespace araxl
