// Unit tests: ISA layer — SEW, vtype/VLMAX semantics, opcode property
// table invariants, program builder validation, disassembler.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "isa/disasm.hpp"
#include "isa/program.hpp"

namespace araxl {
namespace {

TEST(Sew, BitsAndBytes) {
  EXPECT_EQ(sew_bits(Sew::k8), 8u);
  EXPECT_EQ(sew_bits(Sew::k64), 64u);
  EXPECT_EQ(sew_bytes(Sew::k32), 4u);
  EXPECT_EQ(sew_from_bits(16), Sew::k16);
  EXPECT_THROW(sew_from_bits(128), ContractViolation);
}

TEST(Vtype, VlmaxBasics) {
  // VLEN=16384 (16-lane AraXL): e64/m1 -> 256 elements.
  EXPECT_EQ(vlmax(16384, {Sew::k64, kLmul1}), 256u);
  EXPECT_EQ(vlmax(16384, {Sew::k64, kLmul8}), 2048u);
  EXPECT_EQ(vlmax(16384, {Sew::k32, kLmul1}), 512u);
  EXPECT_EQ(vlmax(16384, {Sew::k64, kLmulF2}), 128u);
}

TEST(Vtype, RvvMaximumReached) {
  // The RVV 1.0 ceiling the paper reaches: 64 Kibit/register at 64 lanes =>
  // 8192 DP elements per register.
  EXPECT_EQ(vlmax(kMaxVlenBits, {Sew::k64, kLmul1}), 1024u);
  EXPECT_EQ(vlmax(kMaxVlenBits, {Sew::k64, kLmul8}), 8192u);
}

TEST(Vtype, VsetvlClamps) {
  EXPECT_EQ(vsetvl_result(16384, 100, {Sew::k64, kLmul1}), 100u);
  EXPECT_EQ(vsetvl_result(16384, 100000, {Sew::k64, kLmul1}), 256u);
  EXPECT_EQ(vsetvl_result(16384, 0, {Sew::k64, kLmul1}), 0u);
}

TEST(Vtype, InvalidVlenRejected) {
  EXPECT_THROW(vlmax(100, {Sew::k64, kLmul1}), ContractViolation);
  EXPECT_THROW(vlmax(131072, {Sew::k64, kLmul1}), ContractViolation);
}

TEST(Vtype, Names) {
  EXPECT_EQ(vtype_name({Sew::k64, kLmul4}), "e64,m4");
  EXPECT_EQ(vtype_name({Sew::k32, kLmulF4}), "e32,mf4");
}

TEST(Lmul, GroupRegs) {
  EXPECT_EQ(kLmul1.group_regs(), 1u);
  EXPECT_EQ(kLmul8.group_regs(), 8u);
  EXPECT_EQ(kLmulF8.group_regs(), 1u);
  EXPECT_TRUE(kLmulF2.fractional());
  EXPECT_FALSE(kLmul2.fractional());
}

TEST(OpSpec, TableInvariants) {
  // Walk every opcode: the property table must be self-consistent.
  for (unsigned op = 0; op < kNumOps; ++op) {
    const OpSpec& s = op_spec(static_cast<Op>(op));
    EXPECT_FALSE(s.mnemonic.empty());
    if (s.reads_mem || s.writes_mem) {
      EXPECT_TRUE(s.unit == Unit::kLoad || s.unit == Unit::kStore)
          << s.mnemonic;
    }
    if (s.is_reduction) {
      EXPECT_EQ(s.unit, Unit::kFpu) << s.mnemonic;
    }
    if (s.is_slide) {
      EXPECT_EQ(s.unit, Unit::kSldu) << s.mnemonic;
    }
    if (s.flops_per_elem > 0) {
      EXPECT_EQ(s.unit, Unit::kFpu) << s.mnemonic;
    }
    if (s.writes_mask) {
      EXPECT_TRUE(s.writes_vd) << s.mnemonic;
    }
  }
}

TEST(OpSpec, FmaCountsTwoFlops) {
  EXPECT_EQ(op_spec(Op::kVfmaccVV).flops_per_elem, 2);
  EXPECT_EQ(op_spec(Op::kVfmaddVV).flops_per_elem, 2);
  EXPECT_EQ(op_spec(Op::kVfaddVV).flops_per_elem, 1);
  EXPECT_EQ(op_spec(Op::kVmfleVV).flops_per_elem, 0);
  EXPECT_EQ(op_spec(Op::kVle).flops_per_elem, 0);
}

TEST(Builder, RequiresVsetvliFirst) {
  ProgramBuilder pb(16384, "t");
  EXPECT_THROW(pb.vfadd_vv(8, 4, 0), ContractViolation);
}

TEST(Builder, GrantsMinOfAvlAndVlmax) {
  ProgramBuilder pb(16384, "t");
  EXPECT_EQ(pb.vsetvli(1000, Sew::k64, kLmul1), 256u);
  EXPECT_EQ(pb.vsetvli(100, Sew::k64, kLmul1), 100u);
  EXPECT_EQ(pb.vl(), 100u);
}

TEST(Builder, EnforcesGroupAlignment) {
  ProgramBuilder pb(16384, "t");
  pb.vsetvli(16, Sew::k64, kLmul4);
  EXPECT_THROW(pb.vfadd_vv(9, 4, 0), ContractViolation);   // vd not 4-aligned
  EXPECT_THROW(pb.vfadd_vv(8, 5, 0), ContractViolation);   // vs2 not aligned
  EXPECT_NO_THROW(pb.vfadd_vv(8, 4, 0));
}

TEST(Builder, ScalarMoveExemptFromAlignment) {
  ProgramBuilder pb(65536, "t");
  pb.vsetvli(16, Sew::k64, kLmul8);
  EXPECT_NO_THROW(pb.vfmv_f_s(25));   // single-element read
  EXPECT_NO_THROW(pb.vfredusum(25, 16, 24));
}

TEST(Builder, MaskedOpMayNotWriteV0) {
  ProgramBuilder pb(16384, "t");
  pb.vsetvli(16, Sew::k64, kLmul1);
  EXPECT_THROW(pb.vfadd_vv(0, 4, 8, /*masked=*/true), ContractViolation);
  EXPECT_NO_THROW(pb.vfadd_vv(4, 4, 8, /*masked=*/true));
}

TEST(Builder, SlideOverlapRejected) {
  ProgramBuilder pb(16384, "t");
  pb.vsetvli(16, Sew::k64, kLmul1);
  EXPECT_THROW(pb.vfslide1up(8, 8, 0.0), ContractViolation);
  EXPECT_NO_THROW(pb.vfslide1down(8, 8, 0.0));  // down may overlap
}

TEST(Builder, RegisterRangeChecked) {
  ProgramBuilder pb(16384, "t");
  pb.vsetvli(16, Sew::k64, kLmul1);
  EXPECT_THROW(pb.vfadd_vv(32, 0, 0), ContractViolation);
  EXPECT_THROW(pb.vle(40, 0), ContractViolation);
}

TEST(Builder, CountsOps) {
  ProgramBuilder pb(16384, "t");
  pb.vsetvli(16, Sew::k64, kLmul1);
  pb.vle(8, 0x1000);
  pb.vfadd_vv(12, 8, 8);
  pb.scalar_cycles(3);
  const Program p = pb.take();
  EXPECT_EQ(p.ops.size(), 4u);
  EXPECT_EQ(p.vinstr_count(), 3u);  // vsetvli counts as a vector instruction
  EXPECT_EQ(p.scalar_op_count(), 1u);
}

TEST(Builder, TakeResets) {
  ProgramBuilder pb(16384, "t");
  pb.vsetvli(16, Sew::k64, kLmul1);
  (void)pb.take();
  EXPECT_THROW(pb.vfadd_vv(8, 4, 0), ContractViolation);  // needs new vsetvli
}

TEST(Builder, ZeroScalarCyclesElided) {
  ProgramBuilder pb(16384, "t");
  pb.scalar_cycles(0);
  EXPECT_EQ(pb.take().ops.size(), 0u);
}

// ---- two-level nest detection ----------------------------------------------

/// 4 rows x 5 strips of (vle, vfadd) with `pitch` between row starts.
Program tiled_program(std::uint64_t pitch, std::uint64_t stride,
                      std::uint64_t wobble_row = ~0ull) {
  ProgramBuilder pb(16384, "tiled");
  pb.vsetvli(16, Sew::k64, kLmul1);
  for (std::uint64_t row = 0; row < 4; ++row) {
    for (std::uint64_t s = 0; s < 5; ++s) {
      const std::uint64_t nudge = row == wobble_row && s == 2 ? 16 : 0;
      pb.vle(8, 0x1000 + row * pitch + s * stride + nudge);
      pb.vfadd_vf(12, 8, 1.0);
    }
  }
  return pb.take();
}

TEST(LoopNest, DetectsTiledRowJumps) {
  // Row pitch != 5*stride, so the load's per-period delta is `stride` four
  // times then one jump — a valid two-level nest with outer period 5 and
  // the jump entering each row's first iteration (phase 4).
  const std::uint64_t stride = 0x100;
  const Program p = tiled_program(/*pitch=*/5 * stride + 8, stride);
  const LoopRegion region{1, p.ops.size(), 2};
  const LoopNest nest = find_loop_nest(p, region);
  ASSERT_TRUE(nest.valid);
  EXPECT_EQ(nest.outer_period, 5u);
  EXPECT_EQ(nest.phase, 4u);
}

TEST(LoopNest, PlainProgressionIsNotANest) {
  // pitch == 5*stride makes the walk a single constant progression: no
  // jumps, so there is no outer loop to find.
  const std::uint64_t stride = 0x100;
  const Program p = tiled_program(/*pitch=*/5 * stride, stride);
  const LoopRegion region{1, p.ops.size(), 2};
  EXPECT_FALSE(find_loop_nest(p, region).valid);
}

TEST(LoopNest, AperiodicJumpInvalidates) {
  // A wobbled strip mid-row introduces a third delta value: the walk is
  // not a two-level nest and the detector must say so rather than guess.
  const std::uint64_t stride = 0x100;
  const Program p =
      tiled_program(/*pitch=*/5 * stride + 8, stride, /*wobble_row=*/1);
  const LoopRegion region{1, p.ops.size(), 2};
  EXPECT_FALSE(find_loop_nest(p, region).valid);
}

TEST(Disasm, RendersOperands) {
  ProgramBuilder pb(16384, "t");
  pb.vsetvli(16, Sew::k64, kLmul2);
  pb.vfmacc_vf(8, 1.5, 16);
  pb.vle(4, 0x2000);
  pb.vslidedown_vx(6, 4, 3);
  const Program p = pb.take();
  const std::string text = disasm(p);
  EXPECT_NE(text.find("vsetvli avl=16, e64,m2"), std::string::npos);
  EXPECT_NE(text.find("vfmacc.vf v8, v16, fs=1.5000"), std::string::npos);
  EXPECT_NE(text.find("vle64.v v4, 0x2000"), std::string::npos);
  EXPECT_NE(text.find("vslidedown.vx v6, v4, x=3"), std::string::npos);
}

TEST(Disasm, MaskedSuffix) {
  ProgramBuilder pb(16384, "t");
  pb.vsetvli(16, Sew::k64, kLmul1);
  pb.vfadd_vv(8, 4, 2, /*masked=*/true);
  const VInstr& in = std::get<VInstr>(pb.take().ops[1]);
  EXPECT_NE(disasm(in).find("v0.t"), std::string::npos);
}

TEST(Disasm, AccumulatorScalarShown) {
  ProgramBuilder pb(16384, "t");
  pb.vsetvli(16, Sew::k64, kLmul1);
  pb.vfmul_vf_acc(8, 4);
  const VInstr& in = std::get<VInstr>(pb.take().ops[1]);
  EXPECT_NE(disasm(in).find("fs=<acc>"), std::string::npos);
}

}  // namespace
}  // namespace araxl
