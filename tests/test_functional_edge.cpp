// Edge-case functional tests: IEEE special values, masked execution of
// every instruction class, LMUL sweeps, narrow-element memory, and the exp
// kernel's clamp masks.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "kernels/common.hpp"
#include "kernels/exp_core.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

Machine small_machine() { return Machine(MachineConfig::araxl(8)); }

TEST(IeeeEdge, MinMaxWithNanAndInf) {
  // vfmin/vfmax follow IEEE 754 minNum/maxNum (fmin/fmax): a NaN operand
  // yields the other operand.
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "nan");
  pb.vsetvli(4, Sew::k64, kLmul1);
  pb.vfmax_vv(12, 8, 10);
  pb.vfmin_vv(14, 8, 10);
  const Program prog = pb.take();
  const double a[4] = {kNan, 1.0, kInf, -kInf};
  const double b[4] = {2.0, kNan, 5.0, 5.0};
  for (int i = 0; i < 4; ++i) {
    m.vrf().write_f64(8, i, a[i]);
    m.vrf().write_f64(10, i, b[i]);
  }
  m.run(prog);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 2), kInf);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(14, 3), -kInf);
}

TEST(IeeeEdge, DivisionSpecials) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "div");
  pb.vsetvli(3, Sew::k64, kLmul1);
  pb.vfdiv_vv(12, 8, 10);
  const Program prog = pb.take();
  const double a[3] = {1.0, -1.0, 0.0};
  const double b[3] = {0.0, 0.0, 0.0};
  for (int i = 0; i < 3; ++i) {
    m.vrf().write_f64(8, i, a[i]);
    m.vrf().write_f64(10, i, b[i]);
  }
  m.run(prog);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 0), kInf);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 1), -kInf);
  EXPECT_TRUE(std::isnan(m.vrf().read_f64(12, 2)));
}

TEST(IeeeEdge, SignedZeroThroughSgnj) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "szero");
  pb.vsetvli(1, Sew::k64, kLmul1);
  pb.vfsgnjn_vv(12, 8, 8);  // negate
  const Program prog = pb.take();
  m.vrf().write_f64(8, 0, 0.0);
  m.run(prog);
  EXPECT_TRUE(std::signbit(m.vrf().read_f64(12, 0)));
}

TEST(MaskedEdge, SlidesRespectMask) {
  Machine m = small_machine();
  const std::uint64_t vl = 32;
  ProgramBuilder pb(m.config().effective_vlen(), "mslide");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  // Masked slide through the raw instruction interface: builder emits the
  // unmasked form, so drive the engine directly via a masked vfadd after a
  // slide to prove mask+slide composition (paper kernels never mask
  // slides; the ISA allows it and the model must not corrupt inactive
  // elements).
  pb.vfslide1down(12, 8, 7.0);
  pb.vfadd_vf(12, 12, 100.0, /*masked=*/true);
  const Program prog = pb.take();
  const auto a = random_doubles(vl, -1, 1, 41);
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().write_f64(8, i, a[i]);
    m.vrf().set_mask_bit(0, i, i % 4 == 0);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const double slid = i + 1 < vl ? a[i + 1] : 7.0;
    const double expect = i % 4 == 0 ? slid + 100.0 : slid;
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, i), expect) << i;
  }
}

TEST(MaskedEdge, ReductionSkipsInactive) {
  Machine m = small_machine();
  const std::uint64_t vl = 48;
  ProgramBuilder pb(m.config().effective_vlen(), "mred");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vfmv_s_f(4, 0.0);
  {
    // Masked reduction via the raw instruction (builder keeps reductions
    // unmasked for the paper kernels).
    VInstr in;
    in.op = Op::kVfredusum;
    in.vd = 12;
    in.vs1 = 4;
    in.vs2 = 8;
    in.masked = true;
    // Emit through a tiny manual program extension:
    Program p = pb.take();
    p.ops.emplace_back(in);
    const auto a = random_doubles(vl, -1, 1, 42);
    double expect = 0.0;
    for (std::uint64_t i = 0; i < vl; ++i) {
      m.vrf().write_f64(8, i, a[i]);
      const bool bit = i % 3 == 0;
      m.vrf().set_mask_bit(0, i, bit);
      if (bit) expect += a[i];
    }
    m.run(p);
    EXPECT_NEAR(m.vrf().read_f64(12, 0), expect, 1e-12);
  }
}

class LmulSweep : public testing::TestWithParam<int> {};

TEST_P(LmulSweep, ElementwiseAcrossGroups) {
  const Lmul ml{static_cast<std::int8_t>(GetParam())};
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "lmul");
  const std::uint64_t vl = pb.vlmax(Sew::k64, ml);
  pb.vsetvli(vl, Sew::k64, ml);
  pb.vfmacc_vv(16, 0, 8);
  const Program prog = pb.take();
  const auto a = random_doubles(vl, -1, 1, 43);
  const auto b = random_doubles(vl, -1, 1, 44);
  const auto d = random_doubles(vl, -1, 1, 45);
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().write_f64(0, i, a[i]);
    m.vrf().write_f64(8, i, b[i]);
    m.vrf().write_f64(16, i, d[i]);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i), std::fma(a[i], b[i], d[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLmuls, LmulSweep, testing::Values(-1, 0, 1, 2, 3),
                         [](const testing::TestParamInfo<int>& info) {
                           const int v = info.param;
                           return v < 0 ? "mf" + std::to_string(1 << -v)
                                        : "m" + std::to_string(1 << v);
                         });

class NarrowMem : public testing::TestWithParam<Sew> {};

TEST_P(NarrowMem, LoadStoreRoundTrip) {
  const Sew sew = GetParam();
  const unsigned ew = sew_bytes(sew);
  Machine m = small_machine();
  const std::uint64_t vl = 100;
  ProgramBuilder pb(m.config().effective_vlen(), "narrow");
  pb.vsetvli(vl, sew, kLmul1);
  pb.vle(8, 0x10000);
  pb.vadd_vx(12, 8, 1);
  pb.vse(12, 0x20000);
  const Program prog = pb.take();
  Rng rng(46);
  std::vector<std::uint8_t> data(vl * ew);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.next_below(256));
  m.mem().write(0x10000, data);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    std::uint64_t in_bits = 0;
    std::memcpy(&in_bits, data.data() + i * ew, ew);
    std::uint64_t out_bits = 0;
    std::vector<std::uint8_t> out(ew);
    m.mem().read(0x20000 + i * ew, out);
    std::memcpy(&out_bits, out.data(), ew);
    const std::uint64_t mask = ew >= 8 ? ~0ull : ((1ull << (8 * ew)) - 1);
    EXPECT_EQ(out_bits, (in_bits + 1) & mask) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, NarrowMem,
                         testing::Values(Sew::k8, Sew::k16, Sew::k32, Sew::k64),
                         [](const testing::TestParamInfo<Sew>& info) {
                           return std::string(sew_name(info.param));
                         });

TEST(ExpClamps, OverflowToInfUnderflowToZero) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "clamp");
  pb.vsetvli(4, Sew::k64, kLmul1);
  ExpRegs regs;
  emit_exp_core(pb, regs);
  const Program prog = pb.take();
  m.vrf().write_f64(regs.x, 0, 800.0);    // overflow
  m.vrf().write_f64(regs.x, 1, -800.0);   // underflow
  m.vrf().write_f64(regs.x, 2, 0.0);      // exp(0) = 1
  m.vrf().write_f64(regs.x, 3, 1.0);      // exp(1) = e
  m.run(prog);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(regs.out, 0), kInf);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(regs.out, 1), 0.0);
  EXPECT_NEAR(m.vrf().read_f64(regs.out, 2), 1.0, 1e-14);
  EXPECT_NEAR(m.vrf().read_f64(regs.out, 3), std::exp(1.0), 1e-13);
}

TEST(ExpCore, AccuracyOverFullRange) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "expacc");
  const std::uint64_t vl = 128;
  pb.vsetvli(vl, Sew::k64, kLmul1);
  ExpRegs regs;
  emit_exp_core(pb, regs);
  const Program prog = pb.take();
  const auto xs = random_doubles(vl, -700.0, 700.0, 47);
  for (std::uint64_t i = 0; i < vl; ++i) m.vrf().write_f64(regs.x, i, xs[i]);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const double expect = std::exp(xs[i]);
    const double got = m.vrf().read_f64(regs.out, i);
    EXPECT_NEAR(got, expect, std::abs(expect) * 1e-12) << "x=" << xs[i];
  }
}

}  // namespace
}  // namespace araxl
