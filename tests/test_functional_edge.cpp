// Edge-case functional tests: IEEE special values, masked execution of
// every instruction class, LMUL sweeps, narrow-element memory, and the exp
// kernel's clamp masks.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "kernels/common.hpp"
#include "kernels/exp_core.hpp"
#include "machine/machine.hpp"

namespace araxl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

Machine small_machine() { return Machine(MachineConfig::araxl(8)); }

TEST(IeeeEdge, MinMaxWithNanAndInf) {
  // vfmin/vfmax follow IEEE 754 minNum/maxNum (fmin/fmax): a NaN operand
  // yields the other operand.
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "nan");
  pb.vsetvli(4, Sew::k64, kLmul1);
  pb.vfmax_vv(12, 8, 10);
  pb.vfmin_vv(14, 8, 10);
  const Program prog = pb.take();
  const double a[4] = {kNan, 1.0, kInf, -kInf};
  const double b[4] = {2.0, kNan, 5.0, 5.0};
  for (int i = 0; i < 4; ++i) {
    m.vrf().write_f64(8, i, a[i]);
    m.vrf().write_f64(10, i, b[i]);
  }
  m.run(prog);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 2), kInf);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(14, 3), -kInf);
}

TEST(IeeeEdge, DivisionSpecials) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "div");
  pb.vsetvli(3, Sew::k64, kLmul1);
  pb.vfdiv_vv(12, 8, 10);
  const Program prog = pb.take();
  const double a[3] = {1.0, -1.0, 0.0};
  const double b[3] = {0.0, 0.0, 0.0};
  for (int i = 0; i < 3; ++i) {
    m.vrf().write_f64(8, i, a[i]);
    m.vrf().write_f64(10, i, b[i]);
  }
  m.run(prog);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 0), kInf);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, 1), -kInf);
  EXPECT_TRUE(std::isnan(m.vrf().read_f64(12, 2)));
}

TEST(IeeeEdge, SignedZeroThroughSgnj) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "szero");
  pb.vsetvli(1, Sew::k64, kLmul1);
  pb.vfsgnjn_vv(12, 8, 8);  // negate
  const Program prog = pb.take();
  m.vrf().write_f64(8, 0, 0.0);
  m.run(prog);
  EXPECT_TRUE(std::signbit(m.vrf().read_f64(12, 0)));
}

TEST(MaskedEdge, SlidesRespectMask) {
  Machine m = small_machine();
  const std::uint64_t vl = 32;
  ProgramBuilder pb(m.config().effective_vlen(), "mslide");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  // Masked slide through the raw instruction interface: builder emits the
  // unmasked form, so drive the engine directly via a masked vfadd after a
  // slide to prove mask+slide composition (paper kernels never mask
  // slides; the ISA allows it and the model must not corrupt inactive
  // elements).
  pb.vfslide1down(12, 8, 7.0);
  pb.vfadd_vf(12, 12, 100.0, /*masked=*/true);
  const Program prog = pb.take();
  const auto a = random_doubles(vl, -1, 1, 41);
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().write_f64(8, i, a[i]);
    m.vrf().set_mask_bit(0, i, i % 4 == 0);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const double slid = i + 1 < vl ? a[i + 1] : 7.0;
    const double expect = i % 4 == 0 ? slid + 100.0 : slid;
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(12, i), expect) << i;
  }
}

TEST(MaskedEdge, ReductionSkipsInactive) {
  Machine m = small_machine();
  const std::uint64_t vl = 48;
  ProgramBuilder pb(m.config().effective_vlen(), "mred");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vfmv_s_f(4, 0.0);
  {
    // Masked reduction via the raw instruction (builder keeps reductions
    // unmasked for the paper kernels).
    VInstr in;
    in.op = Op::kVfredusum;
    in.vd = 12;
    in.vs1 = 4;
    in.vs2 = 8;
    in.masked = true;
    // Emit through a tiny manual program extension:
    Program p = pb.take();
    p.ops.emplace_back(in);
    const auto a = random_doubles(vl, -1, 1, 42);
    double expect = 0.0;
    for (std::uint64_t i = 0; i < vl; ++i) {
      m.vrf().write_f64(8, i, a[i]);
      const bool bit = i % 3 == 0;
      m.vrf().set_mask_bit(0, i, bit);
      if (bit) expect += a[i];
    }
    m.run(p);
    EXPECT_NEAR(m.vrf().read_f64(12, 0), expect, 1e-12);
  }
}

class LmulSweep : public testing::TestWithParam<int> {};

TEST_P(LmulSweep, ElementwiseAcrossGroups) {
  const Lmul ml{static_cast<std::int8_t>(GetParam())};
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "lmul");
  const std::uint64_t vl = pb.vlmax(Sew::k64, ml);
  pb.vsetvli(vl, Sew::k64, ml);
  pb.vfmacc_vv(16, 0, 8);
  const Program prog = pb.take();
  const auto a = random_doubles(vl, -1, 1, 43);
  const auto b = random_doubles(vl, -1, 1, 44);
  const auto d = random_doubles(vl, -1, 1, 45);
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().write_f64(0, i, a[i]);
    m.vrf().write_f64(8, i, b[i]);
    m.vrf().write_f64(16, i, d[i]);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(16, i), std::fma(a[i], b[i], d[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLmuls, LmulSweep, testing::Values(-1, 0, 1, 2, 3),
                         [](const testing::TestParamInfo<int>& info) {
                           const int v = info.param;
                           return v < 0 ? "mf" + std::to_string(1 << -v)
                                        : "m" + std::to_string(1 << v);
                         });

class NarrowMem : public testing::TestWithParam<Sew> {};

TEST_P(NarrowMem, LoadStoreRoundTrip) {
  const Sew sew = GetParam();
  const unsigned ew = sew_bytes(sew);
  Machine m = small_machine();
  const std::uint64_t vl = 100;
  ProgramBuilder pb(m.config().effective_vlen(), "narrow");
  pb.vsetvli(vl, sew, kLmul1);
  pb.vle(8, 0x10000);
  pb.vadd_vx(12, 8, 1);
  pb.vse(12, 0x20000);
  const Program prog = pb.take();
  Rng rng(46);
  std::vector<std::uint8_t> data(vl * ew);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.next_below(256));
  m.mem().write(0x10000, data);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    std::uint64_t in_bits = 0;
    std::memcpy(&in_bits, data.data() + i * ew, ew);
    std::uint64_t out_bits = 0;
    std::vector<std::uint8_t> out(ew);
    m.mem().read(0x20000 + i * ew, out);
    std::memcpy(&out_bits, out.data(), ew);
    const std::uint64_t mask = ew >= 8 ? ~0ull : ((1ull << (8 * ew)) - 1);
    EXPECT_EQ(out_bits, (in_bits + 1) & mask) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, NarrowMem,
                         testing::Values(Sew::k8, Sew::k16, Sew::k32, Sew::k64),
                         [](const testing::TestParamInfo<Sew>& info) {
                           return std::string(sew_name(info.param));
                         });

class BulkMaskedMem : public testing::TestWithParam<Sew> {};

TEST_P(BulkMaskedMem, LoadMergesInactiveElements) {
  // Masked unit-stride load through the bulk path (whole range in bounds):
  // active elements come from memory, inactive ones keep the destination's
  // prior (sentinel) contents — the load-merge the per-element path
  // implements one element at a time.
  const Sew sew = GetParam();
  const unsigned ew = sew_bytes(sew);
  Machine m = small_machine();
  const std::uint64_t vl = 171;  // odd length: tail not mask-word aligned
  ProgramBuilder pb(m.config().effective_vlen(), "bmload");
  pb.vsetvli(vl, sew, kLmul2);
  pb.vle(8, 0x10000, /*masked=*/true);
  const Program prog = pb.take();
  Rng rng(47);
  std::vector<std::uint8_t> data(vl * ew);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.next_below(256));
  m.mem().write(0x10000, data);
  const std::uint64_t sentinel_mask =
      ew >= 8 ? ~0ull : ((1ull << (8 * ew)) - 1);
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().write_elem(8, i, ew, (0xA5A5A5A5A5A5A5A5ull + i) & sentinel_mask);
    m.vrf().set_mask_bit(0, i, rng.next_below(3) != 0);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    std::uint64_t mem_bits = 0;
    std::memcpy(&mem_bits, data.data() + i * ew, ew);
    const std::uint64_t expect =
        m.vrf().mask_bit(0, i) ? mem_bits
                               : ((0xA5A5A5A5A5A5A5A5ull + i) & sentinel_mask);
    EXPECT_EQ(m.vrf().read_elem(8, i, ew), expect) << "i=" << i;
  }
}

TEST_P(BulkMaskedMem, StoreSkipsInactiveElements) {
  const Sew sew = GetParam();
  const unsigned ew = sew_bytes(sew);
  Machine m = small_machine();
  const std::uint64_t vl = 171;
  ProgramBuilder pb(m.config().effective_vlen(), "bmstore");
  pb.vsetvli(vl, sew, kLmul2);
  pb.vse(8, 0x20000, /*masked=*/true);
  const Program prog = pb.take();
  Rng rng(48);
  std::vector<std::uint8_t> sentinel(vl * ew);
  for (auto& byte : sentinel) {
    byte = static_cast<std::uint8_t>(rng.next_below(256));
  }
  m.mem().write(0x20000, sentinel);
  const std::uint64_t val_mask = ew >= 8 ? ~0ull : ((1ull << (8 * ew)) - 1);
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().write_elem(8, i, ew, (0x123456789ABCDEFull * (i + 1)) & val_mask);
    m.vrf().set_mask_bit(0, i, rng.next_below(3) != 0);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    std::uint64_t got = 0;
    std::vector<std::uint8_t> out(ew);
    m.mem().read(0x20000 + i * ew, out);
    std::memcpy(&got, out.data(), ew);
    std::uint64_t untouched = 0;
    std::memcpy(&untouched, sentinel.data() + i * ew, ew);
    const std::uint64_t expect = m.vrf().mask_bit(0, i)
                                     ? ((0x123456789ABCDEFull * (i + 1)) & val_mask)
                                     : untouched;
    EXPECT_EQ(got, expect) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BulkMaskedMem,
                         testing::Values(Sew::k8, Sew::k16, Sew::k32, Sew::k64),
                         [](const testing::TestParamInfo<Sew>& info) {
                           return std::string(sew_name(info.param));
                         });

TEST(BulkMaskedMemEdge, OobTailInactiveFallsBackToPerElement) {
  // The whole-range bounds check fails (the tail runs past the end of
  // memory), so the bulk path must decline and the per-element fallback —
  // which never touches inactive addresses — must complete the access.
  Machine m = small_machine();
  const std::uint64_t vl = 100;
  const std::uint64_t active_n = 40;
  const std::uint64_t base = m.mem().size() - active_n * 8;
  ProgramBuilder pb(m.config().effective_vlen(), "bmoob");
  pb.vsetvli(vl, Sew::k64, kLmul1);
  pb.vle(8, base, /*masked=*/true);
  const Program prog = pb.take();
  std::vector<double> data(active_n);
  for (std::uint64_t i = 0; i < active_n; ++i) {
    data[i] = static_cast<double>(i) * 1.5 - 7.0;
  }
  m.mem().store_doubles(base, data);
  for (std::uint64_t i = 0; i < vl; ++i) {
    m.vrf().write_f64(8, i, -99.0);
    m.vrf().set_mask_bit(0, i, i < active_n);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_DOUBLE_EQ(m.vrf().read_f64(8, i), i < active_n ? data[i] : -99.0)
        << i;
  }
}

class NarrowFpBulk : public testing::TestWithParam<Sew> {};

TEST_P(NarrowFpBulk, BulkMatchesPerElementBitForBit) {
  // Differential check of the narrow-SEW bulk FP path against the
  // per-element path: a masked op with an all-ones mask computes the same
  // elements but is routed per element (the bulk path declines masked
  // shapes), so the two destinations must agree bit for bit.
  const Sew sew = GetParam();
  const unsigned ew = sew_bytes(sew);
  Machine m = small_machine();
  const std::uint64_t vl = 157;
  ProgramBuilder pb(m.config().effective_vlen(), "nfpbulk");
  pb.vsetvli(vl, sew, kLmul2);
  pb.vfmul_vv(16, 8, 12);                   // bulk
  pb.vfmul_vv(20, 8, 12, /*masked=*/true);  // per-element (all-ones mask)
  pb.vfadd_vf(24, 16, 0.333333);
  pb.vfadd_vf(28, 20, 0.333333, /*masked=*/true);
  pb.vfmacc_vv(16, 8, 12);
  pb.vfmacc_vv(20, 8, 12, /*masked=*/true);
  const Program prog = pb.take();
  Rng rng(49);
  for (std::uint64_t i = 0; i < vl; ++i) {
    // Random element bit patterns: covers subnormals, NaNs, infinities.
    const std::uint64_t mask = ew >= 8 ? ~0ull : ((1ull << (8 * ew)) - 1);
    const std::uint64_t bits =
        (rng.next_below(1u << 16) | (std::uint64_t{rng.next_below(1u << 16)} << 16) |
         (std::uint64_t{rng.next_below(1u << 16)} << 32) |
         (std::uint64_t{rng.next_below(1u << 16)} << 48)) & mask;
    m.vrf().write_elem(8, i, ew, bits);
    m.vrf().write_elem(12, i, ew, bits ^ (mask >> 1));
    m.vrf().write_elem(16, i, ew, 0);
    m.vrf().write_elem(20, i, ew, 0);
    m.vrf().set_mask_bit(0, i, true);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    EXPECT_EQ(m.vrf().read_elem(16, i, ew), m.vrf().read_elem(20, i, ew))
        << "vfmacc i=" << i;
    EXPECT_EQ(m.vrf().read_elem(24, i, ew), m.vrf().read_elem(28, i, ew))
        << "vfadd i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(NarrowWidths, NarrowFpBulk,
                         testing::Values(Sew::k16, Sew::k32),
                         [](const testing::TestParamInfo<Sew>& info) {
                           return std::string(sew_name(info.param));
                         });

TEST(Binary16, ConversionSpecialsRoundTrip) {
  // The SEW=16 FP path converts binary16 -> double, computes, and rounds
  // once back. vfsgnj with itself is a pure pass-through (exact even for
  // signed zero, which an add would rewrite), so each pattern must
  // round-trip exactly: zeros and signed zero, the smallest/largest
  // subnormals, one, and the largest finite value (65504).
  const std::uint16_t patterns[] = {0x0000, 0x8000, 0x0001, 0x03FF,
                                    0x3C00, 0x4000, 0x7BFF};
  Machine m = small_machine();
  const std::uint64_t n = std::size(patterns);
  ProgramBuilder pb(m.config().effective_vlen(), "f16id");
  pb.vsetvli(n, Sew::k16, kLmul1);
  pb.vfsgnj_vv(12, 8, 8);
  const Program prog = pb.take();
  for (std::uint64_t i = 0; i < n; ++i) {
    m.vrf().write_elem(8, i, 2, patterns[i]);
  }
  m.run(prog);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(m.vrf().read_elem(12, i, 2), patterns[i]) << "pattern " << i;
  }
}

TEST(Binary16, OverflowRoundingAndNan) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "f16ovf");
  pb.vsetvli(4, Sew::k16, kLmul1);
  pb.vfadd_vv(12, 8, 10);
  const Program prog = pb.take();
  // 65504 + 65504 overflows to +inf; -65504 + -65504 to -inf. 1.0 + 2^-11
  // is a half-ulp tie (ulp of 1.0 is 2^-10) and rounds to the even
  // fraction, back to 1.0. NaN + 1.0 stays NaN.
  const std::uint16_t a[4] = {0x7BFF, 0xFBFF, 0x3C00, 0x7E00};
  const std::uint16_t b[4] = {0x7BFF, 0xFBFF, 0x1000, 0x3C00};
  for (int i = 0; i < 4; ++i) {
    m.vrf().write_elem(8, i, 2, a[i]);
    m.vrf().write_elem(10, i, 2, b[i]);
  }
  m.run(prog);
  EXPECT_EQ(m.vrf().read_elem(12, 0, 2), 0x7C00u);  // +inf
  EXPECT_EQ(m.vrf().read_elem(12, 1, 2), 0xFC00u);  // -inf
  EXPECT_EQ(m.vrf().read_elem(12, 2, 2), 0x3C00u);  // tie to even
  EXPECT_EQ(m.vrf().read_elem(12, 3, 2), 0x7E00u);  // quiet NaN
}

TEST(ExpClamps, OverflowToInfUnderflowToZero) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "clamp");
  pb.vsetvli(4, Sew::k64, kLmul1);
  ExpRegs regs;
  emit_exp_core(pb, regs);
  const Program prog = pb.take();
  m.vrf().write_f64(regs.x, 0, 800.0);    // overflow
  m.vrf().write_f64(regs.x, 1, -800.0);   // underflow
  m.vrf().write_f64(regs.x, 2, 0.0);      // exp(0) = 1
  m.vrf().write_f64(regs.x, 3, 1.0);      // exp(1) = e
  m.run(prog);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(regs.out, 0), kInf);
  EXPECT_DOUBLE_EQ(m.vrf().read_f64(regs.out, 1), 0.0);
  EXPECT_NEAR(m.vrf().read_f64(regs.out, 2), 1.0, 1e-14);
  EXPECT_NEAR(m.vrf().read_f64(regs.out, 3), std::exp(1.0), 1e-13);
}

TEST(ExpCore, AccuracyOverFullRange) {
  Machine m = small_machine();
  ProgramBuilder pb(m.config().effective_vlen(), "expacc");
  const std::uint64_t vl = 128;
  pb.vsetvli(vl, Sew::k64, kLmul1);
  ExpRegs regs;
  emit_exp_core(pb, regs);
  const Program prog = pb.take();
  const auto xs = random_doubles(vl, -700.0, 700.0, 47);
  for (std::uint64_t i = 0; i < vl; ++i) m.vrf().write_f64(regs.x, i, xs[i]);
  m.run(prog);
  for (std::uint64_t i = 0; i < vl; ++i) {
    const double expect = std::exp(xs[i]);
    const double got = m.vrf().read_f64(regs.out, i);
    EXPECT_NEAR(got, expect, std::abs(expect) * 1e-12) << "x=" << xs[i];
  }
}

}  // namespace
}  // namespace araxl
