#!/usr/bin/env python3
"""Gate the sim-speed trajectory against the committed baseline.

Compares BENCH_sim_speed.json files on the *event/oracle speedup ratio* per
entry, not on absolute sim_cycles/s: absolute rates track the host CI
happens to run on, while the ratio tracks the engine (both engines run on
the same host in the same process). A ratio drifting below tolerance means
the event-driven engine lost ground against the oracle — e.g. steady-state
batching silently stopped engaging.

Usage:
  diff_sim_speed.py <baseline.json> <current.json> [--tolerance 0.2]
                    [--smoke-wall <measured_s> --smoke-baseline <s>]

Exit code 0 when every entry is within tolerance (and the optional smoke
wall-time gate passes), 1 otherwise.
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def entries_by_key(doc):
    return {(e["name"], e["lanes"], e["bpl"]): e for e in doc["entries"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed relative drift of the speedup ratio")
    ap.add_argument("--smoke-wall", type=float, default=None,
                    help="measured smoke-sweep wall seconds to gate")
    ap.add_argument("--smoke-baseline", type=float, default=1.0,
                    help="recorded smoke-sweep wall baseline; fails at >2x")
    args = ap.parse_args()

    base_doc = load_doc(args.baseline)
    cur_doc = load_doc(args.current)
    base = entries_by_key(base_doc)
    cur = entries_by_key(cur_doc)
    ok = True

    # The entry grid may legitimately evolve (rows added for new kernels or
    # shapes, obsolete ones dropped), so the gate compares the intersection
    # and only *reports* additions/removals. An empty intersection, though,
    # means the files aren't comparable at all — that always fails.
    common = set(base) & set(cur)
    if not common:
        print(f"no common entries: baseline {sorted(base)} vs current {sorted(cur)}")
        return 1
    for key in sorted(set(cur) - set(base)):
        print("%s/%dL/bpl=%d" % key + "  added (no baseline, not gated)")
    for key in sorted(set(base) - set(cur)):
        print("%s/%dL/bpl=%d" % key + "  removed from current grid")

    for key in sorted(common):
        b, c = base[key], cur[key]
        drift = (c["speedup"] - b["speedup"]) / b["speedup"]
        status = "ok"
        # Only drift *below* baseline indicates a regression; getting faster
        # than the recorded trajectory point is progress, not failure.
        if drift < -args.tolerance:
            status = "REGRESSED"
            ok = False
        name = "%s/%dL/bpl=%d" % key
        print(f"{name:32s} speedup {b['speedup']:7.3f} -> {c['speedup']:7.3f} "
              f"({drift:+6.1%}) {status}")
        if b.get("batched_iterations", 0) > 0 and c.get("batched_iterations", 0) == 0:
            print(f"{name:32s} steady-state batching stopped engaging "
                  f"({b['batched_iterations']} -> 0) REGRESSED")
            ok = False
        # Deterministic fields (stall_frac: attributed stall slots over the
        # cycle x lane x byte slot universe) are host-independent, so they
        # gate exactly. A field present only in the current file is new —
        # tolerated until the committed baseline is regenerated with it.
        for field, tol in (("stall_frac", 1e-6),):
            if field in b and field in c:
                if abs(c[field] - b[field]) > tol:
                    print(f"{name:32s} {field} {b[field]:.6f} -> "
                          f"{c[field]:.6f} REGRESSED")
                    ok = False
            elif field in c:
                print(f"{name:32s} new field {field}={c[field]:.6f} "
                      f"(no baseline, not gated)")

    # Overhead ratios ((rate without feature) / (rate with), so 1.0 is
    # free) are gated absolutely — not against the baseline value, which is
    # host-noisy — with generous slack. Any *_overhead_ratio field a newer
    # bench emits is tolerated until the committed baseline carries it too.
    for field in sorted(set(base_doc) | set(cur_doc)):
        if not field.endswith("_overhead_ratio"):
            continue
        cur_ratio = cur_doc.get(field)
        if cur_ratio is None:
            continue
        if field not in base_doc:
            print(f"new field {field}={cur_ratio:.3f} (no baseline, not gated)")
            continue
        limit = 1.10
        verdict = "ok" if cur_ratio <= limit else "REGRESSED"
        print(f"{field}: {cur_ratio:.3f} (limit {limit:.2f}) {verdict}")
        if cur_ratio > limit:
            ok = False

    if args.smoke_wall is not None:
        limit = 2.0 * args.smoke_baseline
        verdict = "ok" if args.smoke_wall <= limit else "REGRESSED"
        print(f"smoke sweep wall: {args.smoke_wall:.2f}s "
              f"(baseline {args.smoke_baseline:.2f}s, limit {limit:.2f}s) {verdict}")
        if args.smoke_wall > limit:
            ok = False

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
