// araxl — the experiment-driver CLI.
//
//   araxl list-kernels
//   araxl run   --kernel fdotproduct --config araxl:64 --bpl 512
//   araxl sweep --fig6 --workers 8 --json fig6.json --csv fig6.csv
//   araxl sweep --configs araxl:8,ara2:8 --kernels fdotproduct,exp \
//               --bpl 64,128 --workers 4 --seed 42
//
// Sweeps expand a config grid x kernel list x bytes-per-lane grid into
// independent jobs and execute them on a worker pool (see src/driver/).
// Reports are deterministic: the same sweep yields byte-identical JSON/CSV
// for any worker count. Presets: --fig6 and --fig7 reproduce the paper's
// scalability and latency-tolerance grids; --smoke is the small CI grid.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/spec.hpp"
#include "ppa/freq_model.hpp"

using namespace araxl;

namespace {

int usage(std::FILE* out) {
  std::fputs(
      "usage:\n"
      "  araxl list-kernels\n"
      "  araxl run   --kernel <name> --config <spec> --bpl <bytes-per-lane>\n"
      "              [--seed <n>] [--no-verify] [--oracle-check]\n"
      "  araxl sweep [--configs <spec,spec,...>] [--kernels <k,...>|all|paper]\n"
      "              [--bpl <n,n,...>] [--fig6 | --fig7 | --smoke]\n"
      "              [--workers <n>] [--seed <n>] [--json <file|->]\n"
      "              [--csv <file|->] [--no-verify] [--oracle-check] [--quiet]\n"
      "\n"
      "config spec: araxl:<lanes> | araxl:<clusters>x<lanes> | ara2:<lanes>,\n"
      "  with optional knobs :glsu=N :reqi=N :ring=N :l2=N :vlen=N\n"
      "  :mode=event|cycle — e.g. araxl:64:glsu=4 is the Fig. 7a variant.\n"
      "presets:\n"
      "  --fig6   paper kernels x {8L/16L Ara2, 8..64L AraXL} x {64..512} B/lane\n"
      "  --fig7   paper kernels x 64L AraXL {baseline,+4 GLSU,+1 REQI,+1 RINGI}\n"
      "  --smoke  2 configs x 3 kernels x 64 B/lane (CI-sized)\n",
      out);
  return out == stderr ? 2 : 0;
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  [[nodiscard]] const std::string* get(std::string_view key) const {
    for (const auto& [k, v] : flags) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] bool has(std::string_view key) const { return get(key) != nullptr; }
};

// Flags that take a value; everything else is boolean.
bool flag_takes_value(std::string_view name) {
  static constexpr std::string_view kValued[] = {
      "--kernel", "--kernels", "--config", "--configs", "--bpl",
      "--workers", "--seed",   "--json",   "--csv",
  };
  for (const std::string_view v : kValued) {
    if (name == v) return true;
  }
  return false;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--", 0) != 0) {
      args.positional.emplace_back(a);
      continue;
    }
    const std::size_t eq = a.find('=');
    if (eq != std::string_view::npos) {
      args.flags.emplace_back(std::string(a.substr(0, eq)),
                              std::string(a.substr(eq + 1)));
    } else if (flag_takes_value(a)) {
      check(i + 1 < argc, "flag needs a value: " + std::string(a));
      args.flags.emplace_back(std::string(a), argv[++i]);
    } else {
      args.flags.emplace_back(std::string(a), "");
    }
  }
  return args;
}

std::uint64_t parse_u64_single(const std::string& v) {
  const auto list = driver::parse_u64_list(v);
  check(list.size() == 1, "expected one number, got a list");
  return list[0];
}

std::uint64_t flag_u64(const Args& args, std::string_view key,
                       std::uint64_t fallback) {
  const std::string* v = args.get(key);
  return v == nullptr ? fallback : parse_u64_single(*v);
}

std::vector<std::string> resolve_kernels(const std::string& spec) {
  const driver::KernelRegistry& reg = driver::KernelRegistry::instance();
  if (spec == "all") return reg.names();
  if (spec == "paper") return reg.paper_names();
  std::vector<std::string> out = driver::split_list(spec);
  for (const std::string& k : out) (void)reg.at(k);
  return out;
}

int cmd_list_kernels() {
  TextTable table({"kernel", "set", "max DP-FLOP/cycle/lane", "default B/lane"});
  table.align_right(2);
  const driver::KernelRegistry& reg = driver::KernelRegistry::instance();
  for (const std::string& name : reg.names()) {
    const driver::KernelInfo& info = reg.at(name);
    std::string grid;
    for (const std::uint64_t b : info.default_bpl_grid) {
      if (!grid.empty()) grid += ",";
      grid += std::to_string(b);
    }
    table.add_row({info.name, info.extension ? "extension" : "Table I",
                   fmt_f(info.max_perf_factor, 1), grid});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

driver::SweepSpec preset_fig6() {
  driver::SweepSpec spec;
  for (const char* c : {"ara2:8", "araxl:8", "ara2:16", "araxl:16", "araxl:32",
                        "araxl:64"}) {
    spec.configs.push_back(driver::parse_config_spec(c));
  }
  spec.kernels = driver::KernelRegistry::instance().paper_names();
  spec.bytes_per_lane = {64, 128, 256, 512};
  return spec;
}

driver::SweepSpec preset_fig7() {
  driver::SweepSpec spec;
  for (const char* c : {"araxl:64", "araxl:64:glsu=4", "araxl:64:reqi=1",
                        "araxl:64:ring=1"}) {
    spec.configs.push_back(driver::parse_config_spec(c));
  }
  spec.kernels = driver::KernelRegistry::instance().paper_names();
  spec.bytes_per_lane = {128, 256, 512};
  return spec;
}

driver::SweepSpec preset_smoke() {
  driver::SweepSpec spec;
  spec.configs.push_back(driver::parse_config_spec("araxl:8"));
  spec.configs.push_back(driver::parse_config_spec("ara2:8"));
  spec.kernels = {"fdotproduct", "exp", "stream_triad"};
  spec.bytes_per_lane = {64};
  return spec;
}

int run_and_report(const driver::SweepSpec& spec, const Args& args,
                   bool print_summary) {
  // A report routed to stdout must stay machine-parseable: keep the
  // human-readable summary off that stream.
  for (const char* key : {"--json", "--csv"}) {
    const std::string* path = args.get(key);
    if (path != nullptr && *path == "-") print_summary = false;
  }
  driver::RunnerOptions opts;
  opts.workers = static_cast<unsigned>(flag_u64(args, "--workers", 1));
  opts.verify = !args.has("--no-verify");
  opts.check_oracle = args.has("--oracle-check");
  const bool quiet = args.has("--quiet");
  if (!quiet) {
    opts.progress = [](const driver::JobResult& r, std::size_t done,
                       std::size_t total) {
      std::fprintf(stderr, "[%zu/%zu] %-18s %-12s bpl=%-6llu %s\n", done, total,
                   r.job.config_label.c_str(), r.job.kernel.c_str(),
                   static_cast<unsigned long long>(r.job.bytes_per_lane),
                   r.ok ? "ok" : "FAILED");
    };
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<driver::JobResult> results = driver::run_sweep(spec, opts);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (const std::string* path = args.get("--json")) {
    driver::write_report(*path, driver::to_json(results));
  }
  if (const std::string* path = args.get("--csv")) {
    driver::write_report(*path, driver::to_csv(results));
  }

  std::size_t failed = 0;
  for (const driver::JobResult& r : results) {
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED job %zu (%s %s bpl=%llu): %s\n", r.job.index,
                   r.job.config_label.c_str(), r.job.kernel.c_str(),
                   static_cast<unsigned long long>(r.job.bytes_per_lane),
                   r.error.c_str());
    }
  }

  if (print_summary) {
    TextTable table({"config", "kernel", "B/lane", "cycles", "DP-FLOP/cycle",
                     "FPU util", "GFLOPS@fmax", "status"});
    for (std::size_t c = 2; c < 7; ++c) table.align_right(c);
    const FreqModel freq_model;
    for (const driver::JobResult& r : results) {
      if (r.ok) {
        table.add_row({r.job.config_label, r.job.kernel,
                       std::to_string(r.job.bytes_per_lane),
                       fmt_group(r.stats.cycles),
                       fmt_f(r.stats.flop_per_cycle(), 2),
                       fmt_pct(r.stats.fpu_util(), 1),
                       fmt_f(r.stats.gflops(freq_model.freq_ghz(r.job.cfg)), 1),
                       "ok"});
      } else {
        table.add_row({r.job.config_label, r.job.kernel,
                       std::to_string(r.job.bytes_per_lane), "-", "-", "-", "-",
                       "FAILED"});
      }
    }
    std::printf("%s", table.render().c_str());
  }
  if (!quiet) {
    std::fprintf(stderr, "%zu jobs, %zu failed, %u worker(s), %.2fs wall\n",
                 results.size(), failed, opts.workers == 0
                     ? std::thread::hardware_concurrency()
                     : opts.workers,
                 wall_s);
  }
  return failed == 0 ? 0 : 1;
}

int cmd_run(const Args& args) {
  const std::string* kernel = args.get("--kernel");
  check(kernel != nullptr, "run needs --kernel");
  const std::string* config = args.get("--config");
  driver::SweepSpec spec;
  spec.configs.push_back(
      driver::parse_config_spec(config != nullptr ? *config : "araxl:64"));
  spec.kernels = {*kernel};
  spec.bytes_per_lane = {flag_u64(args, "--bpl", 512)};
  spec.base_seed = flag_u64(args, "--seed", 0);
  return run_and_report(spec, args, /*print_summary=*/true);
}

int cmd_sweep(const Args& args) {
  driver::SweepSpec spec;
  if (args.has("--fig6")) {
    spec = preset_fig6();
  } else if (args.has("--fig7")) {
    spec = preset_fig7();
  } else if (args.has("--smoke")) {
    spec = preset_smoke();
  }

  if (const std::string* configs = args.get("--configs")) {
    spec.configs.clear();
    for (const std::string& c : driver::split_list(*configs)) {
      spec.configs.push_back(driver::parse_config_spec(c));
    }
  }
  if (const std::string* kernels = args.get("--kernels")) {
    spec.kernels = resolve_kernels(*kernels);
  }
  if (const std::string* bpl = args.get("--bpl")) {
    spec.bytes_per_lane = driver::parse_u64_list(*bpl);
  }
  check(!spec.configs.empty(),
        "sweep needs --configs (or a preset: --fig6/--fig7/--smoke)");
  if (spec.kernels.empty()) {
    spec.kernels = driver::KernelRegistry::instance().paper_names();
  }
  if (spec.bytes_per_lane.empty()) spec.bytes_per_lane = {64, 128, 256, 512};
  spec.base_seed = flag_u64(args, "--seed", 0);
  return run_and_report(spec, args, !args.has("--quiet"));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.positional.empty() || args.has("--help")) {
      return usage(args.has("--help") ? stdout : stderr);
    }
    const std::string& cmd = args.positional[0];
    if (cmd == "list-kernels") return cmd_list_kernels();
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sweep") return cmd_sweep(args);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return usage(stderr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "araxl: %s\n", e.what());
    return 2;
  }
}
