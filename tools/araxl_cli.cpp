// araxl — the experiment-driver CLI.
//
//   araxl list-kernels
//   araxl run   --kernel fdotproduct --config araxl:64 --bpl 512
//   araxl sweep --fig6 --workers 8 --json fig6.json --csv fig6.csv
//   araxl sweep --fig6 --shard 2/4 --json shard2.json      # one of 4 hosts
//   araxl merge --json fig6.json shard1.json ... shard4.json
//   araxl cache stats
//
// Sweeps expand a config grid x kernel list x bytes-per-lane grid into
// independent jobs and execute them on a worker pool (see src/driver/).
// Reports are deterministic: the same sweep yields byte-identical JSON/CSV
// for any worker count, shard split, or cache state. Results persist in a
// JSONL store (src/store/) keyed by (config, kernel, B/lane, seed, build
// version), so re-running a sweep only simulates missing jobs; `--shard
// i/N` + `araxl merge` distribute one sweep over many processes/hosts.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/analysis.hpp"
#include "common/contracts.hpp"
#include "common/faults.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "ppa/freq_model.hpp"
#include "serve/ledger.hpp"
#include "serve/worker.hpp"
#include "store/merge.hpp"
#include "store/result_store.hpp"
#include "store/version.hpp"

using namespace araxl;

namespace {

constexpr const char* kDefaultStorePath = "araxl-cache.jsonl";

// Graceful shutdown: SIGINT/SIGTERM set this token (a lock-free atomic
// store, safe in a signal handler); workers observe it cooperatively at
// scheduler wakeups, queued jobs fail fast as cancelled, the store keeps
// every already-flushed result, and rerunning the same command resumes.
CancelToken g_shutdown;

extern "C" void handle_shutdown_signal(int /*signum*/) {
  g_shutdown.request();
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
}

/// Injector from --inject-faults, else ARAXL_FAULTS, else null.
std::unique_ptr<FaultInjector> make_fault_injector(
    const std::string* flag_spec) {
  if (flag_spec != nullptr && !flag_spec->empty()) {
    return std::make_unique<FaultInjector>(*flag_spec);
  }
  return FaultInjector::from_env();
}

int usage(std::FILE* out) {
  std::fputs(
      "usage:\n"
      "  araxl version | --version\n"
      "  araxl list-kernels\n"
      "  araxl run   --kernel <name> --config <spec> --bpl <bytes-per-lane>\n"
      "              [--seed <n>] [--no-verify] [--oracle-check]\n"
      "  araxl sweep [--configs <spec,spec,...>] [--kernels <k,...>|all|paper]\n"
      "              [--bpl <n,n,...>] [--fig6 | --fig7 | --smoke | --scaling]\n"
      "              [--workers <n>] [--seed <n>] [--shard <i/N>]\n"
      "              [--json <file|->] [--csv <file|->]\n"
      "              [--store <file>] [--no-cache] [--refresh]\n"
      "              [--cache-provenance] [--provenance] [--no-verify]\n"
      "              [--oracle-check] [--quiet]\n"
      "              [--job-timeout <s>] [--watchdog-budget <wakeups>]\n"
      "              [--retries <n>] [--backoff-ms <ms>]\n"
      "              [--inject-faults <spec>]\n"
      "              [--trace-out <file>] [--metrics-out <file|->]\n"
      "  araxl serve --ledger <file> [sweep axes/presets as above]\n"
      "              [--no-verify] [--fsync] [--seed <n>]\n"
      "  araxl worker --ledger <file> [--id <worker-id>]\n"
      "              [--lease-ttl-ms <ms>] [--heartbeat-ms <ms>]\n"
      "              [--straggler-mult <x>] [--straggler-floor-ms <ms>]\n"
      "              [--poll-ms <ms>] [--store <file>] [--no-cache]\n"
      "              [--fsync] [--job-timeout <s>] [--retries <n>]\n"
      "              [--backoff-ms <ms>] [--inject-faults <spec>] [--quiet]\n"
      "  araxl merge (--json <out>|--csv <out>) <shard-report>...\n"
      "  araxl merge --ledger <file> [--json <out>] [--csv <out>]\n"
      "  araxl cache (ls | stats | gc) [--store <file>]\n"
      "  araxl stats [--store <file>] [--kernels <k,...>]\n"
      "              [--config <substr,...>] [--csv <file|->]\n"
      "  araxl report [--store <file> | --from-json <report.json>]\n"
      "              [--out <dir>] [--kernels <k,...>] [--config <substr,...>]\n"
      "\n"
      "config spec: araxl:<lanes> | araxl:<clusters>x<lanes> |\n"
      "  araxl:<groups>x<clusters>x<lanes> (hierarchical) | ara2:<lanes>,\n"
      "  with optional knobs :groups=N :glsu=N :reqi=N :ring=N :l2=N :vlen=N\n"
      "  :mode=event|cycle — e.g. araxl:64:glsu=4 is the Fig. 7a variant and\n"
      "  araxl:128 auto-hierarchizes to 4 groups x 8 clusters x 4 lanes.\n"
      "presets:\n"
      "  --fig6   paper kernels x {8L/16L Ara2, 8..64L AraXL} x {64..512} B/lane\n"
      "  --fig7   paper kernels x 64L AraXL {baseline,+4 GLSU,+1 REQI,+1 RINGI}\n"
      "  --smoke  2 configs x 3 kernels x 64 B/lane (CI-sized)\n"
      "  --scaling  paper kernels x 16..64L flat + 128/256L hierarchical AraXL\n"
      "caching/sharding:\n"
      "  Results are cached in a JSONL store (default araxl-cache.jsonl)\n"
      "  keyed by (config, kernel, B/lane, seed, build version); repeated or\n"
      "  interrupted sweeps only simulate missing jobs. --no-cache ignores\n"
      "  the store, --refresh recomputes and overwrites. --shard i/N runs a\n"
      "  deterministic 1/N slice; `araxl merge` reassembles shard reports\n"
      "  byte-identically to the unsharded run. --cache-provenance reports\n"
      "  real cache_hit flags instead of the deterministic zeros;\n"
      "  --provenance likewise reports the real wakeups_total /\n"
      "  batched_iterations / batch_clamps / warmup_projected engine\n"
      "  counters (and retry attempts).\n"
      "fleet orchestration (serve / worker / merge --ledger):\n"
      "  `araxl serve` enqueues a sweep into a crash-safe append-only job\n"
      "  ledger (checksummed JSONL, same torn-tail discipline as the store);\n"
      "  any number of `araxl worker` processes then pull jobs under lease:\n"
      "  atomic O_EXCL claim files in <ledger>.leases/, heartbeat renewal\n"
      "  while a job simulates, lease expiry -> automatic re-dispatch of a\n"
      "  killed worker's jobs, and straggler jobs exceeding\n"
      "  --straggler-mult x the fleet's median job time are speculatively\n"
      "  re-dispatched. Execution is at-least-once but byte-exact: duplicate\n"
      "  completions dedupe by job fingerprint, and `araxl merge --ledger`\n"
      "  reassembles a final report cmp-identical to a single-process sweep.\n"
      "  SIGTERM drains a worker gracefully (in-flight job unwinds, lease\n"
      "  released, exit 130); a kill -9'd worker's lease simply expires.\n"
      "  --fsync makes ledger/store appends power-loss durable.\n"
      "fault tolerance:\n"
      "  --job-timeout <s>       per-job wall-clock deadline, checked\n"
      "                          cooperatively at scheduler wakeups; an\n"
      "                          expired job fails with status=timeout while\n"
      "                          the rest of the sweep completes\n"
      "  --watchdog-budget <n>   liveness-watchdog override: wakeups without\n"
      "                          progress before a job is declared hung\n"
      "  --retries <n>           retry transient failures up to n times with\n"
      "                          exponential backoff (default 2)\n"
      "  --backoff-ms <ms>       base backoff before the first retry, doubling\n"
      "                          per retry (default 100)\n"
      "  --inject-faults <spec>  deterministic fault injection (also read from\n"
      "                          ARAXL_FAULTS); spec items, comma-separated:\n"
      "                          seed=<u64> store.open=<rate> store.write=<rate>\n"
      "                          store.rename=<rate> ledger.open=<rate>\n"
      "                          ledger.write=<rate> lease.claim=<rate>\n"
      "                          lease.renew=<rate> job=<rate>[@k]\n"
      "                          job.fail=<rate> job.hang=<rate>\n"
      "  Ctrl-C / SIGTERM stop the sweep gracefully: running jobs unwind at\n"
      "  their next wakeup check, finished results are already flushed to the\n"
      "  store, and rerunning the same command resumes (cached jobs replay).\n"
      "observability:\n"
      "  --trace-out <file>      write a Chrome-trace-event JSON timeline of\n"
      "                          the sweep (open at https://ui.perfetto.dev):\n"
      "                          per-unit instruction spans plus scheduler\n"
      "                          wakeups and batching engage/clamp/reject\n"
      "                          markers; timestamps are simulation cycles and\n"
      "                          the file is byte-deterministic. Implies\n"
      "                          simulating every job (cache lookups are\n"
      "                          skipped; results are still stored).\n"
      "  --metrics-out <file|->  write the sweep's metrics registry (per-unit\n"
      "                          busy/stall/idle cycles, occupancy histogram,\n"
      "                          batching-rejection counters, per-phase wall\n"
      "                          times, store flush traffic) as flat JSON\n"
      "  araxl stats             roll up batching telemetry (iterations and\n"
      "                          typed rejection reasons) per job from the\n"
      "                          result store of a finished sweep; --config\n"
      "                          filters rows by config-label substring and\n"
      "                          --csv emits a machine-readable table that\n"
      "                          also carries the stall taxonomy\n"
      "  araxl report            regenerate the paper's analysis surfaces\n"
      "                          from a finished sweep (store or merged JSON\n"
      "                          report): summary tables, flat CSV, and\n"
      "                          dependency-free SVGs — pareto frontiers\n"
      "                          (GFLOPS vs W / vs mm^2), fmax-vs-lanes\n"
      "                          scaling, per-kernel stall-taxonomy stacked\n"
      "                          bars, and the Fig. 1 SoA landscape with this\n"
      "                          run's configs overlaid; artifacts land in\n"
      "                          --out (default araxl-report/) and are\n"
      "                          byte-identical for any worker count or\n"
      "                          shard split\n"
      "exit codes:\n"
      "  0  every job succeeded          2  usage or configuration error\n"
      "  1  one or more jobs failed      3  internal or store I/O error\n"
      "  130  interrupted by SIGINT/SIGTERM (rerun to resume)\n",
      out);
  return out == stderr ? 2 : 0;
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  [[nodiscard]] const std::string* get(std::string_view key) const {
    for (const auto& [k, v] : flags) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] bool has(std::string_view key) const { return get(key) != nullptr; }
};

// Flags that take a value; everything else is boolean.
bool flag_takes_value(std::string_view name) {
  static constexpr std::string_view kValued[] = {
      "--kernel",      "--kernels",       "--config",  "--configs",
      "--bpl",         "--workers",       "--seed",    "--json",
      "--csv",         "--store",         "--shard",   "--job-timeout",
      "--watchdog-budget", "--retries",   "--backoff-ms",
      "--inject-faults",   "--trace-out", "--metrics-out",
      "--out",         "--from-json",     "--ledger",  "--id",
      "--lease-ttl-ms",    "--heartbeat-ms",
      "--straggler-mult",  "--straggler-floor-ms",     "--poll-ms",
  };
  for (const std::string_view v : kValued) {
    if (name == v) return true;
  }
  return false;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--", 0) != 0) {
      args.positional.emplace_back(a);
      continue;
    }
    const std::size_t eq = a.find('=');
    if (eq != std::string_view::npos) {
      args.flags.emplace_back(std::string(a.substr(0, eq)),
                              std::string(a.substr(eq + 1)));
    } else if (flag_takes_value(a)) {
      check(i + 1 < argc, "flag needs a value: " + std::string(a));
      args.flags.emplace_back(std::string(a), argv[++i]);
    } else {
      args.flags.emplace_back(std::string(a), "");
    }
  }
  return args;
}

std::uint64_t parse_u64_single(const std::string& v) {
  const auto list = driver::parse_u64_list(v);
  check(list.size() == 1, "expected one number, got a list");
  return list[0];
}

std::uint64_t flag_u64(const Args& args, std::string_view key,
                       std::uint64_t fallback) {
  const std::string* v = args.get(key);
  return v == nullptr ? fallback : parse_u64_single(*v);
}

double flag_double(const Args& args, std::string_view key, double fallback) {
  const std::string* v = args.get(key);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  check(end != nullptr && *end == '\0' && !v->empty() && parsed >= 0.0,
        "flag " + std::string(key) + " needs a non-negative number, got '" +
            *v + "'");
  return parsed;
}

std::vector<std::string> resolve_kernels(const std::string& spec) {
  const driver::KernelRegistry& reg = driver::KernelRegistry::instance();
  if (spec == "all") return reg.names();
  if (spec == "paper") return reg.paper_names();
  std::vector<std::string> out = driver::split_list(spec);
  for (const std::string& k : out) (void)reg.at(k);
  return out;
}

int cmd_list_kernels() {
  TextTable table({"kernel", "set", "max DP-FLOP/cycle/lane", "default B/lane"});
  table.align_right(2);
  const driver::KernelRegistry& reg = driver::KernelRegistry::instance();
  for (const std::string& name : reg.names()) {
    const driver::KernelInfo& info = reg.at(name);
    std::string grid;
    for (const std::uint64_t b : info.default_bpl_grid) {
      if (!grid.empty()) grid += ",";
      grid += std::to_string(b);
    }
    table.add_row({info.name, info.extension ? "extension" : "Table I",
                   fmt_f(info.max_perf_factor, 1), grid});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

driver::SweepSpec preset_fig6() {
  driver::SweepSpec spec;
  for (const char* c : {"ara2:8", "araxl:8", "ara2:16", "araxl:16", "araxl:32",
                        "araxl:64"}) {
    spec.configs.push_back(driver::parse_config_spec(c));
  }
  spec.kernels = driver::KernelRegistry::instance().paper_names();
  spec.bytes_per_lane = {64, 128, 256, 512};
  return spec;
}

driver::SweepSpec preset_fig7() {
  driver::SweepSpec spec;
  for (const char* c : {"araxl:64", "araxl:64:glsu=4", "araxl:64:reqi=1",
                        "araxl:64:ring=1"}) {
    spec.configs.push_back(driver::parse_config_spec(c));
  }
  spec.kernels = driver::KernelRegistry::instance().paper_names();
  spec.bytes_per_lane = {128, 256, 512};
  return spec;
}

driver::SweepSpec preset_scaling() {
  // The paper's Table II scaling study extended past its 64-lane flagship:
  // flat machines up to the 16-stop ring ceiling, then the hierarchical
  // topologies that keep every ring at <= 8 stops (and the 1.40 GHz
  // corner) at 128 and 256 lanes.
  driver::SweepSpec spec;
  for (const char* c :
       {"araxl:16", "araxl:32", "araxl:64", "araxl:128", "araxl:256"}) {
    spec.configs.push_back(driver::parse_config_spec(c));
  }
  spec.kernels = driver::KernelRegistry::instance().paper_names();
  spec.bytes_per_lane = {256};
  return spec;
}

driver::SweepSpec preset_smoke() {
  driver::SweepSpec spec;
  spec.configs.push_back(driver::parse_config_spec("araxl:8"));
  spec.configs.push_back(driver::parse_config_spec("ara2:8"));
  spec.kernels = {"fdotproduct", "exp", "stream_triad"};
  spec.bytes_per_lane = {64};
  return spec;
}

int run_and_report(const driver::SweepSpec& spec, const Args& args,
                   bool print_summary) {
  // A report routed to stdout must stay machine-parseable: keep the
  // human-readable summary off that stream.
  for (const char* key : {"--json", "--csv"}) {
    const std::string* path = args.get(key);
    if (path != nullptr && *path == "-") print_summary = false;
  }
  driver::RunnerOptions opts;
  opts.workers = static_cast<unsigned>(flag_u64(args, "--workers", 1));
  opts.verify = !args.has("--no-verify");
  opts.check_oracle = args.has("--oracle-check");
  opts.refresh = args.has("--refresh");
  opts.job_timeout_s = flag_double(args, "--job-timeout", 0.0);
  opts.watchdog_budget = flag_u64(args, "--watchdog-budget", 0);
  opts.retry.max_attempts =
      1 + static_cast<unsigned>(flag_u64(args, "--retries", 2));
  opts.retry.backoff_ms = flag_u64(args, "--backoff-ms", 100);
  install_signal_handlers();
  opts.cancel = &g_shutdown;
  const std::unique_ptr<FaultInjector> faults =
      make_fault_injector(args.get("--inject-faults"));
  opts.faults = faults.get();

  // Observability: the registry only exists (and instrumentation only
  // costs anything) when a sink asked for it.
  const std::string* metrics_out = args.get("--metrics-out");
  const std::string* trace_out = args.get("--trace-out");
  obs::MetricsRegistry metrics;
  if (metrics_out != nullptr) opts.metrics = &metrics;
  if (trace_out != nullptr) {
    opts.capture_trace = true;
    // A replayed job has no trace; a complete timeline needs every job
    // simulated. Results still flow into the store for later sweeps.
    opts.use_cache = false;
  }

  std::unique_ptr<store::ResultStore> result_store;
  if (!args.has("--no-cache")) {
    const std::string* path = args.get("--store");
    result_store = std::make_unique<store::ResultStore>(
        path != nullptr ? *path : kDefaultStorePath);
    result_store->set_fault_injector(faults.get());
    result_store->set_metrics(opts.metrics);
    result_store->set_fsync(args.has("--fsync"));
    opts.store = result_store.get();
  }
  const bool quiet = args.has("--quiet");
  std::atomic<std::size_t> hb_done{0};
  std::atomic<std::size_t> hb_cached{0};
  if (!quiet) {
    if (faults != nullptr) {
      std::fprintf(stderr, "fault injection active: %s\n",
                   faults->describe().c_str());
    }
    opts.progress = [&hb_done, &hb_cached](const driver::JobResult& r,
                                           std::size_t done,
                                           std::size_t total) {
      hb_done.store(done, std::memory_order_relaxed);
      if (r.cache_hit) hb_cached.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "[%zu/%zu] %-18s %-12s bpl=%-6llu %s\n", done, total,
                   r.job.config_label.c_str(), r.job.kernel.c_str(),
                   static_cast<unsigned long long>(r.job.bytes_per_lane),
                   r.ok ? (r.cache_hit ? "ok (cached)" : "ok")
                        : strprintf("FAILED (%s)",
                                    std::string(driver::error_kind_name(
                                                    r.error_kind))
                                        .c_str())
                              .c_str());
    };
  }

  driver::ShardSpec shard;
  if (const std::string* s = args.get("--shard")) {
    shard = driver::parse_shard_spec(*s);
  }
  const std::vector<driver::Job> jobs =
      driver::filter_shard(driver::expand(spec), shard);

  const auto t0 = std::chrono::steady_clock::now();

  // Heartbeat: one status line every ~2s on long sweeps so an operator
  // watching a multi-minute run sees progress and an ETA without the
  // per-job log noise. stderr only; silenced by --quiet (CI byte-identity
  // cmp runs pass --quiet, and reports never carry wall-clock data).
  std::atomic<bool> hb_stop{false};
  std::thread heartbeat;
  // Every heartbeat line carries a stable worker-id prefix (--id, default
  // w0) so interleaved stderr from a fleet of processes stays attributable.
  const std::string* id_flag = args.get("--id");
  const std::string hb_id = id_flag != nullptr ? *id_flag : "w0";
  if (!quiet && jobs.size() > 1) {
    heartbeat = std::thread([&hb_stop, &hb_done, &hb_cached, &hb_id, &jobs,
                             t0] {
      while (!hb_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2000));
        if (hb_stop.load(std::memory_order_relaxed)) break;
        const std::size_t done = hb_done.load(std::memory_order_relaxed);
        const std::size_t cached = hb_cached.load(std::memory_order_relaxed);
        if (done == 0 || done >= jobs.size()) continue;
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        const double eta =
            elapsed / static_cast<double>(done) *
            static_cast<double>(jobs.size() - done);
        std::fprintf(stderr,
                     "[%s] [heartbeat] %zu/%zu jobs (%zu cached, %zu "
                     "simulated), %.1fs elapsed, ETA %.1fs\n",
                     hb_id.c_str(), done, jobs.size(), cached, done - cached,
                     elapsed, eta);
      }
    });
  }

  const std::vector<driver::JobResult> results = driver::run_jobs(jobs, opts);
  hb_stop.store(true, std::memory_order_relaxed);
  if (heartbeat.joinable()) heartbeat.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  driver::ReportOptions report_opts;
  report_opts.live_cache_flags = args.has("--cache-provenance");
  report_opts.live_provenance = args.has("--provenance");
  if (const std::string* path = args.get("--json")) {
    driver::write_report(*path, driver::to_json(results, report_opts));
  }
  if (const std::string* path = args.get("--csv")) {
    driver::write_report(*path, driver::to_csv(results, report_opts));
  }
  if (trace_out != nullptr) {
    std::vector<obs::TraceExportJob> tjobs;
    tjobs.reserve(results.size());
    for (const driver::JobResult& r : results) {
      obs::TraceExportJob tj;
      tj.name = strprintf("%s %s bpl=%llu seed=%llu",
                          r.job.config_label.c_str(), r.job.kernel.c_str(),
                          static_cast<unsigned long long>(r.job.bytes_per_lane),
                          static_cast<unsigned long long>(r.job.seed));
      tj.trace = r.trace.get();
      tjobs.push_back(std::move(tj));
    }
    driver::write_report(*trace_out, obs::export_chrome_trace(tjobs));
  }
  if (metrics_out != nullptr) {
    driver::write_report(*metrics_out, metrics.to_json());
  }

  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t degraded = 0;
  std::size_t retried = 0;
  for (const driver::JobResult& r : results) {
    if (r.attempts > 1) ++retried;
    if (r.store_degraded) {
      ++degraded;
      std::fprintf(stderr, "WARN job %zu (%s %s bpl=%llu): result not cached: %s\n",
                   r.job.index, r.job.config_label.c_str(),
                   r.job.kernel.c_str(),
                   static_cast<unsigned long long>(r.job.bytes_per_lane),
                   r.store_warning.c_str());
    }
    if (!r.ok) {
      ++failed;
      if (r.error_kind == driver::ErrorKind::kCancelled) ++cancelled;
      std::fprintf(stderr, "FAILED job %zu (%s %s bpl=%llu) [%s]: %s\n",
                   r.job.index, r.job.config_label.c_str(),
                   r.job.kernel.c_str(),
                   static_cast<unsigned long long>(r.job.bytes_per_lane),
                   std::string(driver::error_kind_name(r.error_kind)).c_str(),
                   r.error.c_str());
    }
  }

  if (print_summary) {
    TextTable table({"config", "kernel", "B/lane", "cycles", "DP-FLOP/cycle",
                     "FPU util", "GFLOPS@fmax", "wakeups", "batched", "status"});
    for (std::size_t c = 2; c < 9; ++c) table.align_right(c);
    const FreqModel freq_model;
    for (const driver::JobResult& r : results) {
      if (r.ok) {
        // Cached results carry no engine provenance (nothing was simulated).
        table.add_row({r.job.config_label, r.job.kernel,
                       std::to_string(r.job.bytes_per_lane),
                       fmt_group(r.stats.cycles),
                       fmt_f(r.stats.flop_per_cycle(), 2),
                       fmt_pct(r.stats.fpu_util(), 1),
                       fmt_f(r.stats.gflops(freq_model.freq_ghz(r.job.cfg)), 1),
                       r.cache_hit ? "-" : fmt_group(r.stats.wakeups_total),
                       r.cache_hit ? "-" : fmt_group(r.stats.batched_iterations),
                       "ok"});
      } else {
        table.add_row({r.job.config_label, r.job.kernel,
                       std::to_string(r.job.bytes_per_lane), "-", "-", "-", "-",
                       "-", "-",
                       std::string(driver::error_kind_name(r.error_kind))});
      }
    }
    std::printf("%s", table.render().c_str());
  }
  if (!quiet) {
    std::size_t cached = 0;
    for (const driver::JobResult& r : results) {
      if (r.cache_hit) ++cached;
    }
    std::string shard_note;
    if (shard.count > 1) {
      shard_note = strprintf(" [shard %u/%u]", shard.index, shard.count);
    }
    std::string robustness_note;
    if (cancelled > 0) {
      robustness_note += strprintf(" (%zu cancelled)", cancelled);
    }
    if (retried > 0) robustness_note += strprintf(", %zu retried", retried);
    if (degraded > 0) {
      robustness_note += strprintf(", %zu uncached (store degraded)", degraded);
    }
    std::fprintf(stderr,
                 "%zu jobs, %zu failed%s, %zu cached, %zu simulated, "
                 "%u worker(s), %.2fs wall%s\n",
                 results.size(), failed, robustness_note.c_str(), cached,
                 results.size() - cached,
                 opts.workers == 0 ? std::thread::hardware_concurrency()
                                   : opts.workers,
                 wall_s, shard_note.c_str());
  }
  if (g_shutdown.requested()) {
    std::fprintf(stderr,
                 "interrupted — completed results are in the store; rerun the "
                 "same command to resume\n");
    return 130;
  }
  return failed == 0 ? 0 : 1;
}

int cmd_version() {
  std::printf("araxl %s (config schema v%u)\n",
              store::build_version().c_str(), store::kConfigSchemaVersion);
  return 0;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.good(), "cannot open report file for reading: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  check(f.good() || f.eof(), "failed reading report file: " + path);
  return std::move(ss).str();
}

int cmd_merge(const Args& args) {
  const std::string* json_out = args.get("--json");
  const std::string* csv_out = args.get("--csv");
  if (const std::string* ledger = args.get("--ledger")) {
    // Fleet mode: reassemble the final report from a complete ledger's
    // done records. Both outputs are allowed at once — the ledger carries
    // each job's JSON and CSV record text.
    check(json_out != nullptr || csv_out != nullptr,
          "merge --ledger needs --json <out> and/or --csv <out>");
    check(args.positional.size() == 1,
          "merge --ledger takes no input reports");
    const serve::LedgerLoad led = serve::ledger_load(*ledger);
    if (json_out != nullptr) {
      driver::write_report(*json_out, serve::ledger_report_json(led));
    }
    if (csv_out != nullptr) {
      driver::write_report(*csv_out, serve::ledger_report_csv(led));
    }
    std::fprintf(stderr, "assembled %zu job(s) from ledger %s\n",
                 led.done_count, ledger->c_str());
    return 0;
  }
  check((json_out != nullptr) != (csv_out != nullptr),
        "merge needs exactly one of --json <out> or --csv <out>");
  check(args.positional.size() >= 2,
        "merge needs at least one input report");
  std::vector<std::string> docs;
  docs.reserve(args.positional.size() - 1);
  for (std::size_t i = 1; i < args.positional.size(); ++i) {
    docs.push_back(slurp(args.positional[i]));
  }
  if (json_out != nullptr) {
    driver::write_report(*json_out, store::merge_json_reports(docs));
  } else {
    driver::write_report(*csv_out, store::merge_csv_reports(docs));
  }
  std::fprintf(stderr, "merged %zu report(s)\n", docs.size());
  return 0;
}

int cmd_cache(const Args& args) {
  check(args.positional.size() >= 2,
        "cache needs a subcommand: ls | stats | gc");
  const std::string& sub = args.positional[1];
  const std::string* path = args.get("--store");
  store::ResultStore result_store(path != nullptr ? *path : kDefaultStorePath);
  // Chaos testing reaches cache maintenance too: an injected gc failure
  // surfaces as StoreIoError -> exit code 3.
  const std::unique_ptr<FaultInjector> faults =
      make_fault_injector(args.get("--inject-faults"));
  result_store.set_fault_injector(faults.get());
  const std::string current = store::build_version();

  if (sub == "ls") {
    TextTable table({"fingerprint", "kernel", "config", "B/lane", "seed",
                     "verified", "version"});
    table.align_right(3);
    table.align_right(4);
    for (const store::StoredResult& r : result_store.entries()) {
      table.add_row({r.fingerprint.substr(0, 16), r.kernel,
                     r.label.empty() ? r.config.substr(0, 24) : r.label,
                     std::to_string(r.bytes_per_lane), std::to_string(r.seed),
                     r.verified ? "yes" : "no",
                     r.version == current ? "current" : "stale"});
    }
    std::printf("%s", table.render().c_str());
    std::fprintf(stderr, "%zu entr%s in %s\n", result_store.size(),
                 result_store.size() == 1 ? "y" : "ies",
                 result_store.path().c_str());
    return 0;
  }
  if (sub == "stats") {
    const store::LoadReport& lr = result_store.load_report();
    std::size_t stale = 0;
    for (const store::StoredResult& r : result_store.entries()) {
      if (r.version != current) ++stale;
    }
    std::printf("store:          %s\n", result_store.path().c_str());
    std::printf("entries:        %zu\n", result_store.size());
    std::printf("stale version:  %zu\n", stale);
    std::printf("current salt:   %s\n", current.c_str());
    std::printf("load: %zu line(s), %zu bad, %zu fingerprint mismatch(es), "
                "%zu superseded\n",
                lr.lines, lr.bad_lines, lr.fp_mismatches, lr.superseded);
    return 0;
  }
  if (sub == "gc") {
    const std::size_t before = result_store.size();
    const std::size_t removed = result_store.gc(current);  // compacts on disk
    std::fprintf(stderr, "dropped %zu stale entr%s, kept %zu (%s)\n", removed,
                 removed == 1 ? "y" : "ies", before - removed,
                 result_store.path().c_str());
    return 0;
  }
  fail("unknown cache subcommand '" + sub + "' (ls | stats | gc)");
}

// `araxl stats` — batching-telemetry rollup from the result store. The
// store persists the engine-provenance counters (wakeups, batched
// iterations, typed rejection reasons) that default reports zero out, so a
// finished sweep can be diagnosed after the fact: a kernel showing
// batched=0 names the gate that rejected it in its nonzero reject column.
int cmd_stats(const Args& args) {
  const std::string* path = args.get("--store");
  store::ResultStore result_store(path != nullptr ? *path : kDefaultStorePath);
  std::vector<std::string> kernel_filter;
  if (const std::string* k = args.get("--kernels")) {
    kernel_filter = resolve_kernels(*k);
  }
  // --config filters rows whose display label (or canonical config, when no
  // label was stored) contains any of the given substrings.
  std::vector<std::string> config_filter;
  if (const std::string* c = args.get("--config")) {
    config_filter = driver::split_list(*c);
  }

  std::vector<store::StoredResult> entries = result_store.entries();
  std::sort(entries.begin(), entries.end(),
            [](const store::StoredResult& a, const store::StoredResult& b) {
              if (a.label != b.label) return a.label < b.label;
              if (a.kernel != b.kernel) return a.kernel < b.kernel;
              if (a.bytes_per_lane != b.bytes_per_lane) {
                return a.bytes_per_lane < b.bytes_per_lane;
              }
              return a.seed < b.seed;
            });

  std::vector<std::string> header = {"config", "kernel",  "B/lane", "cycles",
                                     "wakeups", "batched", "clamps", "warmproj"};
  for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
    header.push_back(std::string(batch_reject_name(static_cast<BatchReject>(i))));
  }
  TextTable table(header);
  for (std::size_t c = 2; c < header.size(); ++c) table.align_right(c);

  // --csv routes a machine-readable table (with the stall taxonomy, which
  // the human-readable table omits for width) to a file or stdout.
  std::string csv =
      "config,kernel,bytes_per_lane,seed,cycles,wakeups_total,"
      "batched_iterations,batch_clamps,warmup_projected";
  for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
    csv += ",reject_";
    csv += batch_reject_name(static_cast<BatchReject>(i));
  }
  for (std::size_t i = 0; i < kNumStallReasons; ++i) {
    csv += ",stall_";
    csv += stall_reason_name(static_cast<StallReason>(i));
  }
  csv += ",fpu_busy_slots\n";

  std::size_t shown = 0;
  std::uint64_t total_batched = 0;
  std::uint64_t total_clamps = 0;
  std::uint64_t total_warmproj = 0;
  std::array<std::uint64_t, kNumBatchRejects> total_rejects{};
  for (const store::StoredResult& r : entries) {
    if (!kernel_filter.empty() &&
        std::find(kernel_filter.begin(), kernel_filter.end(), r.kernel) ==
            kernel_filter.end()) {
      continue;
    }
    const std::string label = r.label.empty() ? r.config : r.label;
    if (!config_filter.empty()) {
      bool hit = false;
      for (const std::string& sub : config_filter) {
        if (label.find(sub) != std::string::npos) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
    }
    ++shown;
    total_batched += r.stats.batched_iterations;
    total_clamps += r.stats.batch_clamps;
    total_warmproj += r.stats.warmup_projected;
    std::vector<std::string> row = {
        r.label.empty() ? r.config.substr(0, 24) : r.label, r.kernel,
        std::to_string(r.bytes_per_lane), fmt_group(r.stats.cycles),
        fmt_group(r.stats.wakeups_total),
        fmt_group(r.stats.batched_iterations),
        fmt_group(r.stats.batch_clamps),
        fmt_group(r.stats.warmup_projected)};
    for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
      total_rejects[i] += r.stats.batch_rejects[i];
      row.push_back(fmt_group(r.stats.batch_rejects[i]));
    }
    table.add_row(row);

    csv += label + "," + r.kernel + "," + std::to_string(r.bytes_per_lane) +
           "," + std::to_string(r.seed) + "," +
           std::to_string(r.stats.cycles) + "," +
           std::to_string(r.stats.wakeups_total) + "," +
           std::to_string(r.stats.batched_iterations) + "," +
           std::to_string(r.stats.batch_clamps) + "," +
           std::to_string(r.stats.warmup_projected);
    for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
      csv += "," + std::to_string(r.stats.batch_rejects[i]);
    }
    for (std::size_t i = 0; i < kNumStallReasons; ++i) {
      csv += "," + std::to_string(r.stats.stall_cycles[i]);
    }
    csv += "," + std::to_string(r.stats.fpu_busy_slots) + "\n";
  }
  if (shown > 1) {
    table.add_rule();
    std::vector<std::string> totals = {"total",
                                       "",
                                       "",
                                       "",
                                       "",
                                       fmt_group(total_batched),
                                       fmt_group(total_clamps),
                                       fmt_group(total_warmproj)};
    for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
      totals.push_back(fmt_group(total_rejects[i]));
    }
    table.add_row(totals);
  }
  if (const std::string* csv_out = args.get("--csv")) {
    driver::write_report(*csv_out, csv);
  } else {
    std::printf("%s", table.render().c_str());
  }
  std::fprintf(stderr,
               "%zu entr%s from %s (counters persist only for simulated "
               "runs; pre-telemetry store entries read as zero)\n",
               shown, shown == 1 ? "y" : "ies", result_store.path().c_str());
  return 0;
}

// `araxl report` — regenerate the paper's analysis surfaces from a finished
// sweep. The dataset comes from the result store (the primary path: it
// persists the real stall taxonomy) or from a merged driver JSON report
// (--from-json). Artifacts are written into --out and are byte-identical
// for any worker count or shard split of the producing sweep.
int cmd_report(const Args& args) {
  analysis::RowFilter filter;
  if (const std::string* k = args.get("--kernels")) {
    filter.kernels = resolve_kernels(*k);
  }
  if (const std::string* c = args.get("--config")) {
    filter.configs = driver::split_list(*c);
  }

  analysis::Dataset ds;
  if (const std::string* json_in = args.get("--from-json")) {
    ds = analysis::dataset_from_json_report(slurp(*json_in), filter);
  } else {
    const std::string* path = args.get("--store");
    store::ResultStore result_store(path != nullptr ? *path
                                                    : kDefaultStorePath);
    // Only current-version records are comparable (and carry this build's
    // stall attribution) — same rule the sweep cache applies.
    ds = analysis::dataset_from_store(result_store.entries(),
                                      store::build_version(), filter);
  }
  check(!ds.rows.empty(),
        "no analyzable rows (empty/stale store or over-restrictive filters); "
        "run a sweep first, e.g. `araxl sweep --smoke`");

  const std::string* out = args.get("--out");
  const std::string dir = out != nullptr ? *out : "araxl-report";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  check(!ec, "cannot create report directory: " + dir);
  const std::vector<analysis::Artifact> artifacts =
      analysis::build_report(ds);
  for (const analysis::Artifact& a : artifacts) {
    driver::write_report(dir + "/" + a.name, a.content);
  }
  std::fprintf(stderr, "wrote %zu artifact(s) from %zu row(s) to %s/\n",
               artifacts.size(), ds.rows.size(), dir.c_str());
  return 0;
}

int cmd_run(const Args& args) {
  const std::string* kernel = args.get("--kernel");
  check(kernel != nullptr, "run needs --kernel");
  const std::string* config = args.get("--config");
  driver::SweepSpec spec;
  spec.configs.push_back(
      driver::parse_config_spec(config != nullptr ? *config : "araxl:64"));
  spec.kernels = {*kernel};
  spec.bytes_per_lane = {flag_u64(args, "--bpl", 512)};
  spec.base_seed = flag_u64(args, "--seed", 0);
  return run_and_report(spec, args, /*print_summary=*/true);
}

// Sweep axes from presets + overrides; shared by `sweep` (execute here)
// and `serve` (enqueue into a ledger for a worker fleet).
driver::SweepSpec build_sweep_spec(const Args& args) {
  driver::SweepSpec spec;
  if (args.has("--fig6")) {
    spec = preset_fig6();
  } else if (args.has("--fig7")) {
    spec = preset_fig7();
  } else if (args.has("--smoke")) {
    spec = preset_smoke();
  } else if (args.has("--scaling")) {
    spec = preset_scaling();
  }

  if (const std::string* configs = args.get("--configs")) {
    spec.configs.clear();
    for (const std::string& c : driver::split_list(*configs)) {
      spec.configs.push_back(driver::parse_config_spec(c));
    }
  }
  if (const std::string* kernels = args.get("--kernels")) {
    spec.kernels = resolve_kernels(*kernels);
  }
  if (const std::string* bpl = args.get("--bpl")) {
    spec.bytes_per_lane = driver::parse_u64_list(*bpl);
  }
  check(!spec.configs.empty(),
        "sweep needs --configs (or a preset: --fig6/--fig7/--smoke)");
  if (spec.kernels.empty()) {
    spec.kernels = driver::KernelRegistry::instance().paper_names();
  }
  if (spec.bytes_per_lane.empty()) spec.bytes_per_lane = {64, 128, 256, 512};
  spec.base_seed = flag_u64(args, "--seed", 0);
  return spec;
}

int cmd_sweep(const Args& args) {
  return run_and_report(build_sweep_spec(args), args, !args.has("--quiet"));
}

// `araxl serve` — enqueue a sweep into a crash-safe job ledger. Workers
// re-expand the job list from the header, so the ledger stores the
// declarative axes (a ConfigPoint's label IS its parseable spec string),
// not per-job configs.
int cmd_serve(const Args& args) {
  const std::string* ledger = args.get("--ledger");
  check(ledger != nullptr, "serve needs --ledger <file>");
  const driver::SweepSpec spec = build_sweep_spec(args);

  serve::LedgerSpec lspec;
  lspec.configs.reserve(spec.configs.size());
  for (const driver::ConfigPoint& cp : spec.configs) {
    lspec.configs.push_back(cp.label);
  }
  lspec.kernels = spec.kernels;
  lspec.bytes_per_lane = spec.bytes_per_lane;
  lspec.base_seed = spec.base_seed;
  lspec.verify = !args.has("--no-verify");
  lspec.version = store::build_version();
  lspec.jobs = driver::expand(spec).size();

  const std::unique_ptr<FaultInjector> faults =
      make_fault_injector(args.get("--inject-faults"));
  serve::ledger_create(*ledger, lspec, faults.get(), args.has("--fsync"));
  std::fprintf(stderr,
               "enqueued %llu job(s) into %s (build %s); start workers with: "
               "araxl worker --ledger %s\n",
               static_cast<unsigned long long>(lspec.jobs), ledger->c_str(),
               lspec.version.c_str(), ledger->c_str());
  return 0;
}

// `araxl worker` — one fleet worker process pulling ledger jobs under
// lease. Any number of these run concurrently against one ledger; see
// src/serve/worker.hpp for the protocol.
int cmd_worker(const Args& args) {
  const std::string* ledger = args.get("--ledger");
  check(ledger != nullptr, "worker needs --ledger <file>");

  serve::WorkerOptions wopts;
  wopts.ledger_path = *ledger;
  const std::string* id = args.get("--id");
  wopts.worker_id =
      id != nullptr ? *id : strprintf("w-%d", static_cast<int>(::getpid()));
  wopts.lease_ttl_ms = flag_u64(args, "--lease-ttl-ms", 15000);
  wopts.heartbeat_ms = flag_u64(args, "--heartbeat-ms", 0);
  wopts.speculation.straggler_mult =
      flag_double(args, "--straggler-mult", 3.0);
  wopts.speculation.floor_ms = flag_u64(args, "--straggler-floor-ms", 2000);
  wopts.poll_ms = flag_u64(args, "--poll-ms", 200);
  wopts.fsync = args.has("--fsync");

  wopts.runner.job_timeout_s = flag_double(args, "--job-timeout", 0.0);
  wopts.runner.watchdog_budget = flag_u64(args, "--watchdog-budget", 0);
  wopts.runner.retry.max_attempts =
      1 + static_cast<unsigned>(flag_u64(args, "--retries", 2));
  wopts.runner.retry.backoff_ms = flag_u64(args, "--backoff-ms", 100);
  install_signal_handlers();
  wopts.runner.cancel = &g_shutdown;
  const std::unique_ptr<FaultInjector> faults =
      make_fault_injector(args.get("--inject-faults"));
  wopts.runner.faults = faults.get();

  std::unique_ptr<store::ResultStore> result_store;
  if (!args.has("--no-cache")) {
    const std::string* path = args.get("--store");
    result_store = std::make_unique<store::ResultStore>(
        path != nullptr ? *path : kDefaultStorePath);
    result_store->set_fault_injector(faults.get());
    result_store->set_fsync(args.has("--fsync"));
    wopts.runner.store = result_store.get();
  }
  if (!args.has("--quiet")) {
    if (faults != nullptr) {
      std::fprintf(stderr, "fault injection active: %s\n",
                   faults->describe().c_str());
    }
    wopts.log = [](const std::string& msg) {
      std::fprintf(stderr, "%s\n", msg.c_str());
    };
  }

  const serve::WorkerReport rep = serve::run_worker(wopts);
  if (rep.cancelled) {
    std::fprintf(stderr,
                 "interrupted — completed jobs are in the ledger; restart "
                 "the worker to resume\n");
    return 130;
  }
  return rep.failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.has("--version")) return cmd_version();
    if (args.positional.empty() || args.has("--help")) {
      return usage(args.has("--help") ? stdout : stderr);
    }
    const std::string& cmd = args.positional[0];
    if (cmd == "version") return cmd_version();
    if (cmd == "list-kernels") return cmd_list_kernels();
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "worker") return cmd_worker(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "cache") return cmd_cache(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "report") return cmd_report(args);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return usage(stderr);
  } catch (const store::StoreIoError& e) {
    std::fprintf(stderr, "araxl: store I/O error: %s\n", e.what());
    return 3;
  } catch (const ContractViolation& e) {
    // Bad flags, malformed specs, unknown kernels: the user's input.
    std::fprintf(stderr, "araxl: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "araxl: internal error: %s\n", e.what());
    return 3;
  }
}
