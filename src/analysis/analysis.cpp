#include "analysis/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/fmt.hpp"
#include "common/table.hpp"
#include "analysis/svg.hpp"
#include "machine/config.hpp"
#include "ppa/area_model.hpp"
#include "ppa/freq_model.hpp"
#include "ppa/power_model.hpp"
#include "ppa/soa.hpp"
#include "store/json.hpp"

namespace araxl::analysis {

namespace {

// Number spellings shared with the driver reporters: CSV artifacts must be
// byte-stable and re-parse exactly.
std::string fnum(double v) { return store::json_double(v); }
std::string unum(std::uint64_t v) { return store::json_u64(v); }

/// Reconstructs a MachineConfig from its store::canonical_config()
/// serialization ("cfg-vN;kind=araxl;clusters=16;..."). The canonical
/// string intentionally covers every result-affecting field, which is
/// exactly what the PPA models need; unknown keys (from a newer schema)
/// are ignored — the caller already filtered records to one build version.
MachineConfig config_from_canonical(std::string_view text) {
  MachineConfig cfg;
  std::size_t pos = text.find(';');
  check(pos != std::string_view::npos && text.substr(0, 4) == "cfg-",
        "not a canonical config string: " + std::string(text));
  while (pos != std::string_view::npos) {
    std::string_view rest = text.substr(pos + 1);
    const std::size_t end = rest.find(';');
    const std::string_view item = rest.substr(0, end);
    pos = end == std::string_view::npos ? std::string_view::npos
                                        : pos + 1 + end;
    const std::size_t eq = item.find('=');
    check(eq != std::string_view::npos,
          "malformed canonical config item: " + std::string(item));
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    if (key == "kind") {
      cfg.kind = val == "ara2" ? MachineKind::kAra2 : MachineKind::kAraXL;
      continue;
    }
    std::uint64_t n = 0;
    for (const char c : val) {
      check(c >= '0' && c <= '9',
            "malformed canonical config value: " + std::string(item));
      n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
    const auto u = static_cast<unsigned>(n);
    if (key == "clusters") cfg.topo.clusters = u;
    else if (key == "lanes") cfg.topo.lanes = u;
    else if (key == "groups") cfg.topo.groups = u;
    else if (key == "vlen") cfg.vlen_bits = n;
    else if (key == "mem") cfg.mem_size_bytes = n;
    else if (key == "reqi") cfg.reqi_regs = u;
    else if (key == "glsu") cfg.glsu_regs = u;
    else if (key == "ring") cfg.ring_regs = u;
    else if (key == "fpu_lat") cfg.fpu_latency = u;
    else if (key == "alu_lat") cfg.alu_latency = u;
    else if (key == "sldu_lat") cfg.sldu_latency = u;
    else if (key == "load_lag") cfg.load_chain_lag = u;
    else if (key == "div") cfg.div_cycles_per_elem = u;
    else if (key == "start") cfg.unit_start_latency = u;
    else if (key == "uq") cfg.unit_queue_depth = u;
    else if (key == "sq") cfg.seq_queue_depth = u;
    else if (key == "dcache") cfg.dcache_load_latency = u;
    else if (key == "l2") cfg.l2_latency = u;
    else if (key == "red_step") cfg.red_step_latency = u;
    else if (key == "red_add") cfg.red_add_latency = u;
    else if (key == "wb") cfg.writeback_latency = u;
  }
  return cfg;
}

void fill_ppa(Row& row, const MachineConfig& cfg) {
  const FreqModel freq_model;
  const AreaModel area_model;
  const PowerModel power_model;
  row.freq_ghz = freq_model.freq_ghz(cfg);
  row.area_mm2 = area_model.total_mm2(cfg);
  const double util = row.stats.fpu_util();
  row.power_w = power_model.power_w(cfg, row.freq_ghz, util);
  row.gflops = row.stats.gflops(row.freq_ghz);
  row.gflops_per_w = power_model.gflops_per_w(
      cfg, row.freq_ghz, row.stats.flop_per_cycle(), util);
  row.gflops_per_mm2 = row.area_mm2 > 0.0 ? row.gflops / row.area_mm2 : 0.0;
}

bool filter_accepts(const RowFilter& filter, const Row& row) {
  if (!filter.kernels.empty() &&
      std::find(filter.kernels.begin(), filter.kernels.end(), row.kernel) ==
          filter.kernels.end()) {
    return false;
  }
  if (!filter.configs.empty()) {
    bool hit = false;
    for (const std::string& sub : filter.configs) {
      if (row.label.find(sub) != std::string::npos) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

void sort_rows(std::vector<Row>& rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.stats.total_lanes != b.stats.total_lanes) {
      return a.stats.total_lanes < b.stats.total_lanes;
    }
    if (a.label != b.label) return a.label < b.label;
    if (a.kernel != b.kernel) return a.kernel < b.kernel;
    if (a.bytes_per_lane != b.bytes_per_lane) {
      return a.bytes_per_lane < b.bytes_per_lane;
    }
    return a.seed < b.seed;
  });
}

/// Byte-slot universe of one run — the denominator of every stall/busy
/// fraction (see RunStats::stall_cycles).
std::uint64_t slot_universe(const RunStats& s) {
  return s.cycles * s.total_lanes * 8;
}

/// Index of the largest stall bucket, or kNumStallReasons when no slot was
/// charged (fully busy or no attribution data in the source).
std::size_t dominant_stall(const RunStats& s) {
  std::size_t best = kNumStallReasons;
  std::uint64_t best_v = 0;
  for (std::size_t r = 0; r < kNumStallReasons; ++r) {
    if (s.stall_cycles[r] > best_v) {
      best_v = s.stall_cycles[r];
      best = r;
    }
  }
  return best;
}

// Fixed palette: busy first, then one color per StallReason in enum order.
constexpr std::string_view kBusyColor = "#2d5d8e";
constexpr std::array<std::string_view, kNumStallReasons> kStallColors = {
    "#9e9e9e",  // issue_pressure
    "#4c72b0",  // raw_dependency
    "#dd8452",  // structural_unit
    "#55a868",  // mem_latency
    "#c44e52",  // mem_bandwidth
    "#8172b3",  // reduction_slide_latency
    "#bcbd22",  // drain_tail
};

// ---- aggregations ----------------------------------------------------------

/// Best-GFLOPS row per (label, kernel) — the operating points the pareto
/// views plot. Input order is the dataset's total order, so ties resolve
/// deterministically to the first (lowest bpl/seed) row.
std::vector<const Row*> best_points(const Dataset& ds) {
  std::vector<const Row*> out;
  for (const Row& r : ds.rows) {
    if (!out.empty() && out.back()->label == r.label &&
        out.back()->kernel == r.kernel) {
      if (r.gflops > out.back()->gflops) out.back() = &r;
    } else {
      out.push_back(&r);
    }
  }
  return out;
}

/// Marks pareto-optimal points: cost (x) to minimize, perf (y) to
/// maximize. Quadratic, but the point sets here are tens of entries.
std::vector<bool> pareto_mask(const std::vector<const Row*>& pts,
                              double (*cost)(const Row&)) {
  std::vector<bool> on(pts.size(), true);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (i == j) continue;
      const bool better_cost = cost(*pts[j]) <= cost(*pts[i]);
      const bool better_perf = pts[j]->gflops >= pts[i]->gflops;
      const bool strictly = cost(*pts[j]) < cost(*pts[i]) ||
                            pts[j]->gflops > pts[i]->gflops;
      if (better_cost && better_perf && strictly) {
        on[i] = false;
        break;
      }
    }
  }
  return on;
}

/// One distinct machine configuration with its per-config aggregates.
struct ConfigPoint {
  std::string label;
  std::string family;
  std::uint64_t lanes = 0;
  std::uint64_t vlen_bits = 0;
  double freq_ghz = 0.0;
  double area_mm2 = 0.0;
  double peak_gflops = 0.0;
  double peak_gflops_per_w = 0.0;
  double peak_gflops_per_mm2 = 0.0;
  std::string peak_kernel;
};

std::vector<ConfigPoint> config_points(const Dataset& ds) {
  std::vector<ConfigPoint> out;
  for (const Row& r : ds.rows) {
    if (out.empty() || out.back().label != r.label) {
      ConfigPoint p;
      p.label = r.label;
      p.family = r.family;
      p.lanes = r.stats.total_lanes;
      p.vlen_bits = r.vlen_bits;
      p.freq_ghz = r.freq_ghz;
      p.area_mm2 = r.area_mm2;
      out.push_back(p);
    }
    ConfigPoint& p = out.back();
    if (r.gflops > p.peak_gflops) {
      p.peak_gflops = r.gflops;
      p.peak_kernel = r.kernel;
    }
    p.peak_gflops_per_w = std::max(p.peak_gflops_per_w, r.gflops_per_w);
    p.peak_gflops_per_mm2 = std::max(p.peak_gflops_per_mm2, r.gflops_per_mm2);
  }
  return out;
}

/// Slot-fraction aggregate per (label, kernel), summed over bpl and seed.
/// The partition identity survives summation: busy + all stalls == 1.
struct StallGroup {
  std::string label;
  std::string kernel;
  std::uint64_t universe = 0;
  std::uint64_t busy = 0;
  std::array<std::uint64_t, kNumStallReasons> stalls{};
};

std::vector<StallGroup> stall_groups(const Dataset& ds) {
  std::vector<StallGroup> out;
  for (const Row& r : ds.rows) {
    if (out.empty() || out.back().label != r.label ||
        out.back().kernel != r.kernel) {
      out.push_back({r.label, r.kernel, 0, 0, {}});
    }
    StallGroup& g = out.back();
    g.universe += slot_universe(r.stats);
    g.busy += r.stats.fpu_busy_slots;
    for (std::size_t i = 0; i < kNumStallReasons; ++i) {
      g.stalls[i] += r.stats.stall_cycles[i];
    }
  }
  return out;
}

// ---- artifacts -------------------------------------------------------------

std::string render_summary(const Dataset& ds) {
  std::string out = "araxl report\n============\n\n";
  out += "results (" + std::to_string(ds.rows.size()) + " rows)\n";
  {
    TextTable table({"config", "kernel", "B/lane", "cycles", "DP-FLOP/cycle",
                     "FPU util", "GFLOPS", "GFLOPS/W", "GFLOPS/mm2",
                     "dominant stall"});
    for (std::size_t c = 2; c < 9; ++c) table.align_right(c);
    for (const Row& r : ds.rows) {
      const std::size_t dom = dominant_stall(r.stats);
      table.add_row(
          {r.label, r.kernel, std::to_string(r.bytes_per_lane),
           fmt_group(r.stats.cycles), fmt_f(r.stats.flop_per_cycle(), 2),
           fmt_pct(r.stats.fpu_util(), 1), fmt_f(r.gflops, 1),
           fmt_f(r.gflops_per_w, 1), fmt_f(r.gflops_per_mm2, 2),
           dom == kNumStallReasons
               ? "-"
               : std::string(
                     stall_reason_name(static_cast<StallReason>(dom)))});
    }
    out += table.render();
  }

  out += "\nstall taxonomy (% of lane byte-slots; busy + stalls = 100%)\n";
  {
    std::vector<std::string> header = {"config", "kernel", "busy"};
    for (std::size_t i = 0; i < kNumStallReasons; ++i) {
      header.emplace_back(stall_reason_name(static_cast<StallReason>(i)));
    }
    TextTable table(header);
    for (std::size_t c = 2; c < header.size(); ++c) table.align_right(c);
    for (const StallGroup& g : stall_groups(ds)) {
      const double u = g.universe > 0 ? static_cast<double>(g.universe) : 1.0;
      std::vector<std::string> row = {
          g.label, g.kernel, fmt_pct(static_cast<double>(g.busy) / u, 1)};
      for (std::size_t i = 0; i < kNumStallReasons; ++i) {
        row.push_back(fmt_pct(static_cast<double>(g.stalls[i]) / u, 1));
      }
      table.add_row(row);
    }
    out += table.render();
  }

  out += "\nstate of the art (Table III)\n";
  {
    TextTable table({"design", "lanes", "fmax GHz", "peak GFLOPS", "GFLOPS/W",
                     "GFLOPS/mm2", "note"});
    for (std::size_t c = 1; c < 6; ++c) table.align_right(c);
    for (const ConfigPoint& p : config_points(ds)) {
      table.add_row({p.label, std::to_string(p.lanes), fmt_f(p.freq_ghz, 2),
                     fmt_f(p.peak_gflops, 1), fmt_f(p.peak_gflops_per_w, 1),
                     fmt_f(p.peak_gflops_per_mm2, 2),
                     "peak kernel: " + p.peak_kernel});
    }
    const SoaPpaRow v = vitruvius_row();
    table.add_rule();
    table.add_row({v.name, std::to_string(v.lanes), fmt_f(v.freq_ghz, 2),
                   fmt_f(v.max_perf_gflops, 1),
                   fmt_f(v.energy_eff_gflops_w, 1),
                   fmt_f(v.area_eff_gflops_mm2, 2), v.note});
    table.add_row({"NEC VE (prev. gen)", "-", "-", "-", "-",
                   fmt_f(nec_ve_area_eff_gflops_mm2(), 2),
                   "area efficiency quoted in paper SIV-E"});
    out += table.render();
  }
  return out;
}

std::string render_rows_csv(const Dataset& ds) {
  std::string out =
      "config,kernel,bytes_per_lane,seed,total_lanes,vlen_bits,cycles,flops,"
      "fpu_util,flop_per_cycle,freq_ghz,area_mm2,power_w,gflops,gflops_per_w,"
      "gflops_per_mm2,fpu_busy_slots";
  for (std::size_t i = 0; i < kNumStallReasons; ++i) {
    out += ",stall_";
    out += stall_reason_name(static_cast<StallReason>(i));
  }
  out += ",batched_iterations,batch_clamps,warmup_projected\n";
  for (const Row& r : ds.rows) {
    out += r.label + "," + r.kernel + "," + unum(r.bytes_per_lane) + "," +
           unum(r.seed) + "," + unum(r.stats.total_lanes) + "," +
           unum(r.vlen_bits) + "," + unum(r.stats.cycles) + "," +
           unum(r.stats.flops) + "," + fnum(r.stats.fpu_util()) + "," +
           fnum(r.stats.flop_per_cycle()) + "," + fnum(r.freq_ghz) + "," +
           fnum(r.area_mm2) + "," + fnum(r.power_w) + "," + fnum(r.gflops) +
           "," + fnum(r.gflops_per_w) + "," + fnum(r.gflops_per_mm2) + "," +
           unum(r.stats.fpu_busy_slots);
    for (std::size_t i = 0; i < kNumStallReasons; ++i) {
      out += "," + unum(r.stats.stall_cycles[i]);
    }
    out += "," + unum(r.stats.batched_iterations) + "," +
           unum(r.stats.batch_clamps) + "," + unum(r.stats.warmup_projected);
    out += "\n";
  }
  return out;
}

double cost_power(const Row& r) { return r.power_w; }
double cost_area(const Row& r) { return r.area_mm2; }

void pareto_artifacts(const Dataset& ds, std::vector<Artifact>& arts,
                      const std::string& stem, const std::string& cost_name,
                      double (*cost)(const Row&)) {
  const std::vector<const Row*> pts = best_points(ds);
  const std::vector<bool> on = pareto_mask(pts, cost);

  std::string csv = "config,kernel," + cost_name + ",gflops,frontier\n";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    csv += pts[i]->label + "," + pts[i]->kernel + "," + fnum(cost(*pts[i])) +
           "," + fnum(pts[i]->gflops) + "," + (on[i] ? "1" : "0") + "\n";
  }
  arts.push_back({stem + ".csv", std::move(csv)});

  double x_hi = 0.0, y_hi = 0.0;
  for (const Row* p : pts) {
    x_hi = std::max(x_hi, cost(*p));
    y_hi = std::max(y_hi, p->gflops);
  }
  SvgPlot plot(640, 480, "Performance vs " + cost_name, cost_name,
               "DP-GFLOPS");
  plot.set_x_range(0.0, x_hi * 1.05 + 1e-9);
  plot.set_y_range(0.0, y_hi * 1.05 + 1e-9);
  // Frontier polyline first (under the points), sorted by cost.
  std::vector<std::pair<double, double>> frontier;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (on[i]) frontier.emplace_back(cost(*pts[i]), pts[i]->gflops);
  }
  std::sort(frontier.begin(), frontier.end());
  plot.polyline(frontier, "#c44e52", 1.5, /*dashed=*/true);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    plot.circle(cost(*pts[i]), pts[i]->gflops, on[i] ? 4.0 : 3.0,
                on[i] ? "#c44e52" : "#4c72b0", /*filled=*/on[i]);
    if (on[i]) {
      plot.label(cost(*pts[i]), pts[i]->gflops,
                 " " + pts[i]->label + " " + pts[i]->kernel, 9);
    }
  }
  arts.push_back({stem + ".svg", plot.render()});
}

void scaling_artifacts(const Dataset& ds, std::vector<Artifact>& arts) {
  const std::vector<ConfigPoint> pts = config_points(ds);
  std::string csv = "config,family,total_lanes,freq_ghz,peak_gflops,"
                    "peak_kernel\n";
  for (const ConfigPoint& p : pts) {
    csv += p.label + "," + p.family + "," + unum(p.lanes) + "," +
           fnum(p.freq_ghz) + "," + fnum(p.peak_gflops) + "," + p.peak_kernel +
           "\n";
  }
  arts.push_back({"scaling.csv", std::move(csv)});

  std::uint64_t lanes_lo = UINT64_MAX, lanes_hi = 1;
  for (const ConfigPoint& p : pts) {
    lanes_lo = std::min(lanes_lo, p.lanes);
    lanes_hi = std::max(lanes_hi, p.lanes);
  }
  if (pts.empty()) lanes_lo = 1;
  SvgPlot plot(640, 480, "Max frequency vs lane count", "total lanes",
               "fmax (GHz)");
  plot.set_x_log2(true);
  plot.set_x_range(static_cast<double>(lanes_lo) / 1.3,
                   static_cast<double>(lanes_hi) * 1.3);
  plot.set_y_range(0.0, 1.6);
  // One curve per machine family, points in lane order (the dataset sort).
  std::vector<std::string> families;
  for (const ConfigPoint& p : pts) {
    if (std::find(families.begin(), families.end(), p.family) ==
        families.end()) {
      families.push_back(p.family);
    }
  }
  std::sort(families.begin(), families.end());
  const std::array<std::string_view, 2> fam_colors = {"#4c72b0", "#dd8452"};
  std::vector<std::pair<std::string, std::string>> legend;
  for (std::size_t f = 0; f < families.size(); ++f) {
    const std::string_view color = fam_colors[f % fam_colors.size()];
    std::vector<std::pair<double, double>> curve;
    for (const ConfigPoint& p : pts) {
      if (p.family != families[f]) continue;
      curve.emplace_back(static_cast<double>(p.lanes), p.freq_ghz);
      plot.circle(static_cast<double>(p.lanes), p.freq_ghz, 3.5, color);
    }
    std::sort(curve.begin(), curve.end());
    plot.polyline(curve, color, 1.5);
    legend.emplace_back(families[f], std::string(color));
  }
  plot.legend(legend);
  arts.push_back({"scaling.svg", plot.render()});
}

void stalls_artifacts(const Dataset& ds, std::vector<Artifact>& arts) {
  const std::vector<StallGroup> groups = stall_groups(ds);
  std::string csv = "config,kernel,busy_frac";
  for (std::size_t i = 0; i < kNumStallReasons; ++i) {
    csv += ",";
    csv += stall_reason_name(static_cast<StallReason>(i));
    csv += "_frac";
  }
  csv += "\n";
  for (const StallGroup& g : groups) {
    const double u = g.universe > 0 ? static_cast<double>(g.universe) : 1.0;
    csv += g.label + "," + g.kernel + "," +
           fnum(static_cast<double>(g.busy) / u);
    for (std::size_t i = 0; i < kNumStallReasons; ++i) {
      csv += "," + fnum(static_cast<double>(g.stalls[i]) / u);
    }
    csv += "\n";
  }
  arts.push_back({"stalls.csv", std::move(csv)});

  // Stacked horizontal bars, one row per (config, kernel); the busy
  // segment leads, then the stall reasons in enum order. Segments tile
  // [0, 1] exactly — the attribution partition identity, visually.
  const double row_pitch = 30.0, bar_h = 12.0;
  const unsigned height =
      static_cast<unsigned>(32 + 48 + 30 + row_pitch * groups.size());
  SvgPlot plot(860, height, "FPU byte-slot breakdown", "fraction of slots",
               "");
  plot.set_x_range(0.0, 1.0);
  double y = plot.plot_top() + 24.0;
  for (const StallGroup& g : groups) {
    const double u = g.universe > 0 ? static_cast<double>(g.universe) : 1.0;
    plot.text_px(plot.plot_left(), y - 3.0, g.label + " " + g.kernel, 10);
    double x = 0.0;
    const double busy = static_cast<double>(g.busy) / u;
    plot.bar(x, x + busy, y, bar_h, kBusyColor);
    x += busy;
    for (std::size_t i = 0; i < kNumStallReasons; ++i) {
      const double frac = static_cast<double>(g.stalls[i]) / u;
      if (frac > 0.0) plot.bar(x, x + frac, y, bar_h, kStallColors[i]);
      x += frac;
    }
    y += row_pitch;
  }
  std::vector<std::pair<std::string, std::string>> legend;
  legend.emplace_back("busy", std::string(kBusyColor));
  for (std::size_t i = 0; i < kNumStallReasons; ++i) {
    legend.emplace_back(
        std::string(stall_reason_name(static_cast<StallReason>(i))),
        std::string(kStallColors[i]));
  }
  plot.legend(legend);
  arts.push_back({"stalls.svg", plot.render()});
}

void soa_artifacts(const Dataset& ds, std::vector<Artifact>& arts) {
  const std::vector<SoaProcessor> soa = fig1_landscape();
  const std::vector<ConfigPoint> ours = config_points(ds);

  std::string csv = "name,vlen_bits,fpus,riscv,source\n";
  for (const SoaProcessor& p : soa) {
    csv += p.name + "," + unum(p.vlen_bits) + "," + unum(p.fpus) + "," +
           (p.riscv ? "1" : "0") + ",soa\n";
  }
  for (const ConfigPoint& p : ours) {
    csv += p.label + "," + unum(p.vlen_bits) + "," + unum(p.lanes) +
           ",1,this-run\n";
  }
  arts.push_back({"soa_landscape.csv", std::move(csv)});

  std::uint64_t v_lo = UINT64_MAX, v_hi = 1, f_lo = UINT64_MAX, f_hi = 1;
  const auto widen = [&](std::uint64_t vlen, std::uint64_t fpus) {
    v_lo = std::min(v_lo, vlen);
    v_hi = std::max(v_hi, vlen);
    f_lo = std::min(f_lo, fpus);
    f_hi = std::max(f_hi, fpus);
  };
  for (const SoaProcessor& p : soa) widen(p.vlen_bits, p.fpus);
  for (const ConfigPoint& p : ours) widen(p.vlen_bits, p.lanes);

  SvgPlot plot(720, 520, "Vector-processor landscape (paper Fig. 1)",
               "VLEN (bits)", "FPUs per vector instruction");
  plot.set_x_log2(true);
  plot.set_y_log2(true);
  plot.set_x_range(static_cast<double>(v_lo) / 2.0,
                   static_cast<double>(v_hi) * 2.0);
  plot.set_y_range(static_cast<double>(f_lo) / 2.0,
                   static_cast<double>(f_hi) * 2.0);
  for (const SoaProcessor& p : soa) {
    plot.circle(static_cast<double>(p.vlen_bits), static_cast<double>(p.fpus),
                4.0, p.riscv ? "#4c72b0" : "#9e9e9e", /*filled=*/p.riscv);
    plot.label(static_cast<double>(p.vlen_bits), static_cast<double>(p.fpus),
               " " + p.name, 9);
  }
  for (const ConfigPoint& p : ours) {
    plot.circle(static_cast<double>(p.vlen_bits), static_cast<double>(p.lanes),
                5.0, "#c44e52");
    plot.label(static_cast<double>(p.vlen_bits), static_cast<double>(p.lanes),
               " " + p.label, 10, "start", "#c44e52");
  }
  plot.legend({{"RISC-V", "#4c72b0"},
               {"other ISA", "#9e9e9e"},
               {"this run", "#c44e52"}});
  arts.push_back({"soa_landscape.svg", plot.render()});
}

}  // namespace

Dataset dataset_from_store(const std::vector<store::StoredResult>& entries,
                           const std::string& version,
                           const RowFilter& filter) {
  Dataset ds;
  for (const store::StoredResult& e : entries) {
    if (!version.empty() && e.version != version) continue;
    Row row;
    row.label = e.label.empty() ? e.config : e.label;
    row.kernel = e.kernel;
    row.bytes_per_lane = e.bytes_per_lane;
    row.seed = e.seed;
    row.stats = e.stats;
    const MachineConfig cfg = config_from_canonical(e.config);
    row.family = cfg.kind == MachineKind::kAra2 ? "ara2" : "araxl";
    row.vlen_bits = cfg.effective_vlen();
    if (!filter_accepts(filter, row)) continue;
    fill_ppa(row, cfg);
    ds.rows.push_back(std::move(row));
  }
  sort_rows(ds.rows);
  return ds;
}

Dataset dataset_from_json_report(std::string_view doc,
                                 const RowFilter& filter) {
  const store::JsonValue root = store::parse_json(doc);
  const store::JsonValue* results = root.get("results");
  check(results != nullptr &&
            results->kind == store::JsonValue::Kind::kArray,
        "not a driver JSON report ({\"results\":[...]})");
  Dataset ds;
  for (const store::JsonValue& rec : results->items) {
    const store::JsonValue* ok = rec.get("ok");
    if (ok == nullptr || !ok->as_bool()) continue;
    const store::JsonValue* cfg = rec.get("config");
    const store::JsonValue* stats = rec.get("stats");
    const store::JsonValue* ppa = rec.get("ppa");
    check(cfg != nullptr && stats != nullptr && ppa != nullptr,
          "report record is missing config/stats/ppa");
    Row row;
    row.label = cfg->get("label")->as_string();
    row.family = cfg->get("kind")->as_string();
    row.kernel = rec.get("kernel")->as_string();
    row.bytes_per_lane = rec.get("bytes_per_lane")->as_u64();
    row.seed = rec.get("seed")->as_u64();
    row.vlen_bits = cfg->get("vlen_bits")->as_u64();
    row.stats.total_lanes = cfg->get("total_lanes")->as_u64();
    row.stats.cycles = stats->get("cycles")->as_u64();
    row.stats.flops = stats->get("flops")->as_u64();
    row.stats.fpu_result_elems = stats->get("fpu_result_elems")->as_u64();
    if (const store::JsonValue* st = stats->get("stall_cycles")) {
      for (std::size_t i = 0; i < kNumStallReasons; ++i) {
        const store::JsonValue* v =
            st->get(stall_reason_name(static_cast<StallReason>(i)));
        if (v != nullptr) row.stats.stall_cycles[i] = v->as_u64();
      }
    }
    if (const store::JsonValue* v = stats->get("fpu_busy_slots")) {
      row.stats.fpu_busy_slots = v->as_u64();
    }
    // Batching provenance: present (and nonzero) only in --provenance
    // reports; default reports carry deterministic zeros.
    if (const store::JsonValue* v = stats->get("batched_iterations")) {
      row.stats.batched_iterations = v->as_u64();
    }
    if (const store::JsonValue* v = stats->get("batch_clamps")) {
      row.stats.batch_clamps = v->as_u64();
    }
    if (const store::JsonValue* v = stats->get("warmup_projected")) {
      row.stats.warmup_projected = v->as_u64();
    }
    row.freq_ghz = ppa->get("freq_ghz")->as_double();
    row.area_mm2 = ppa->get("area_mm2")->as_double();
    row.power_w = ppa->get("power_w")->as_double();
    row.gflops = ppa->get("gflops")->as_double();
    row.gflops_per_w = ppa->get("gflops_per_w")->as_double();
    row.gflops_per_mm2 =
        row.area_mm2 > 0.0 ? row.gflops / row.area_mm2 : 0.0;
    if (!filter_accepts(filter, row)) continue;
    ds.rows.push_back(std::move(row));
  }
  sort_rows(ds.rows);
  return ds;
}

std::vector<Artifact> build_report(const Dataset& ds) {
  std::vector<Artifact> arts;
  arts.push_back({"summary.txt", render_summary(ds)});
  arts.push_back({"report.csv", render_rows_csv(ds)});
  pareto_artifacts(ds, arts, "pareto_perf_w", "power_w", cost_power);
  pareto_artifacts(ds, arts, "pareto_perf_mm2", "area_mm2", cost_area);
  scaling_artifacts(ds, arts);
  stalls_artifacts(ds, arts);
  soa_artifacts(ds, arts);
  return arts;
}

}  // namespace araxl::analysis
