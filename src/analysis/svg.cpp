#include "analysis/svg.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/fmt.hpp"

namespace araxl::analysis {

namespace {

// Plot-area margins (pixels). Left is generous for y tick labels.
constexpr double kLeft = 72.0;
constexpr double kRight = 16.0;
constexpr double kTop = 32.0;
constexpr double kBottom = 48.0;

/// Pixel coordinate spelling: one decimal is below SVG viewer resolution
/// and keeps files small and byte-stable.
std::string pxnum(double v) { return fmt_f(v, 1); }

/// Tick label spelling: trims the trailing zeros %.3f would carry so axis
/// labels read naturally ("1.4", "0.25", "64").
std::string ticknum(double v) {
  std::string s = fmt_f(v, 3);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s.empty() ? "0" : s;
}

double tf(double v, bool log2_axis) {
  return log2_axis ? std::log2(v) : v;
}

}  // namespace

std::string svg_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

SvgPlot::SvgPlot(unsigned width, unsigned height, std::string title,
                 std::string x_label, std::string y_label)
    : width_(width), height_(height), title_(std::move(title)),
      x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

void SvgPlot::set_x_range(double lo, double hi) {
  check(hi >= lo, "SvgPlot x range is inverted");
  if (hi == lo) {
    lo -= 0.5;
    hi += 0.5;
  }
  x_lo_ = lo;
  x_hi_ = hi;
}

void SvgPlot::set_y_range(double lo, double hi) {
  check(hi >= lo, "SvgPlot y range is inverted");
  if (hi == lo) {
    lo -= 0.5;
    hi += 0.5;
  }
  y_lo_ = lo;
  y_hi_ = hi;
}

double SvgPlot::plot_left() const { return kLeft; }
double SvgPlot::plot_top() const { return kTop; }
double SvgPlot::plot_width() const { return width_ - kLeft - kRight; }
double SvgPlot::plot_height() const { return height_ - kTop - kBottom; }

double SvgPlot::px(double x) const {
  const double lo = tf(x_lo_, x_log2_), hi = tf(x_hi_, x_log2_);
  return kLeft + (tf(x, x_log2_) - lo) / (hi - lo) * plot_width();
}

double SvgPlot::py(double y) const {
  const double lo = tf(y_lo_, y_log2_), hi = tf(y_hi_, y_log2_);
  return kTop + (hi - tf(y, y_log2_)) / (hi - lo) * plot_height();
}

void SvgPlot::polyline(const std::vector<std::pair<double, double>>& pts,
                       std::string_view color, double width_px, bool dashed) {
  if (pts.size() < 2) return;
  body_ += "<polyline fill=\"none\" stroke=\"";
  body_ += color;
  body_ += "\" stroke-width=\"" + pxnum(width_px) + "\"";
  if (dashed) body_ += " stroke-dasharray=\"5,4\"";
  body_ += " points=\"";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i != 0) body_ += " ";
    body_ += pxnum(px(pts[i].first)) + "," + pxnum(py(pts[i].second));
  }
  body_ += "\"/>\n";
}

void SvgPlot::circle(double x, double y, double r_px, std::string_view color,
                     bool filled) {
  body_ += "<circle cx=\"" + pxnum(px(x)) + "\" cy=\"" + pxnum(py(y)) +
           "\" r=\"" + pxnum(r_px) + "\"";
  if (filled) {
    body_ += " fill=\"";
    body_ += color;
    body_ += "\"/>\n";
  } else {
    body_ += " fill=\"none\" stroke=\"";
    body_ += color;
    body_ += "\" stroke-width=\"1.5\"/>\n";
  }
}

void SvgPlot::bar(double x_lo, double x_hi, double y_px, double h_px,
                  std::string_view color) {
  const double left = px(x_lo);
  body_ += "<rect x=\"" + pxnum(left) + "\" y=\"" + pxnum(y_px) +
           "\" width=\"" + pxnum(px(x_hi) - left) + "\" height=\"" +
           pxnum(h_px) + "\" fill=\"";
  body_ += color;
  body_ += "\"/>\n";
}

void SvgPlot::label(double x, double y, std::string_view s, unsigned size_px,
                    std::string_view anchor, std::string_view color) {
  text_px(px(x), py(y), s, size_px, anchor, color);
}

void SvgPlot::text_px(double x_px, double y_px, std::string_view s,
                      unsigned size_px, std::string_view anchor,
                      std::string_view color) {
  body_ += "<text x=\"" + pxnum(x_px) + "\" y=\"" + pxnum(y_px) +
           "\" font-size=\"" + std::to_string(size_px) +
           "\" font-family=\"sans-serif\" text-anchor=\"";
  body_ += anchor;
  body_ += "\" fill=\"";
  body_ += color;
  body_ += "\">" + svg_escape(s) + "</text>\n";
}

void SvgPlot::legend(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  const double x = kLeft + plot_width() - 150.0;
  double y = kTop + 10.0;
  for (const auto& [name, color] : entries) {
    body_ += "<rect x=\"" + pxnum(x) + "\" y=\"" + pxnum(y - 8.0) +
             "\" width=\"10\" height=\"10\" fill=\"" + color + "\"/>\n";
    text_px(x + 14.0, y + 1.0, name, 11);
    y += 15.0;
  }
}

void SvgPlot::append_ticks(std::string& out, bool x_axis) const {
  const bool log2_axis = x_axis ? x_log2_ : y_log2_;
  const double lo = x_axis ? x_lo_ : y_lo_;
  const double hi = x_axis ? x_hi_ : y_hi_;
  // Tick values: 5 evenly spaced for linear axes; whole powers of two
  // (thinned to at most ~7) for log2 axes.
  std::vector<double> ticks;
  if (log2_axis) {
    const auto k_lo = static_cast<long>(std::ceil(std::log2(lo) - 1e-9));
    const auto k_hi = static_cast<long>(std::floor(std::log2(hi) + 1e-9));
    const long step = (k_hi - k_lo) / 7 + 1;
    for (long k = k_lo; k <= k_hi; k += step) ticks.push_back(std::ldexp(1.0, static_cast<int>(k)));
  } else {
    for (int i = 0; i <= 4; ++i) ticks.push_back(lo + (hi - lo) * i / 4.0);
  }
  for (const double v : ticks) {
    if (x_axis) {
      const double x = px(v);
      const double y0 = kTop + plot_height();
      out += "<line x1=\"" + pxnum(x) + "\" y1=\"" + pxnum(y0) + "\" x2=\"" +
             pxnum(x) + "\" y2=\"" + pxnum(y0 + 4.0) +
             "\" stroke=\"#333333\"/>\n";
      out += "<text x=\"" + pxnum(x) + "\" y=\"" + pxnum(y0 + 16.0) +
             "\" font-size=\"10\" font-family=\"sans-serif\" "
             "text-anchor=\"middle\" fill=\"#333333\">" +
             svg_escape(ticknum(v)) + "</text>\n";
    } else {
      const double y = py(v);
      out += "<line x1=\"" + pxnum(kLeft - 4.0) + "\" y1=\"" + pxnum(y) +
             "\" x2=\"" + pxnum(kLeft) + "\" y2=\"" + pxnum(y) +
             "\" stroke=\"#333333\"/>\n";
      out += "<text x=\"" + pxnum(kLeft - 7.0) + "\" y=\"" + pxnum(y + 3.0) +
             "\" font-size=\"10\" font-family=\"sans-serif\" "
             "text-anchor=\"end\" fill=\"#333333\">" +
             svg_escape(ticknum(v)) + "</text>\n";
    }
  }
}

std::string SvgPlot::render() const {
  std::string out = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(width_) + "\" height=\"" +
                    std::to_string(height_) + "\" viewBox=\"0 0 " +
                    std::to_string(width_) + " " + std::to_string(height_) +
                    "\">\n";
  out += "<rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n";
  // Frame.
  out += "<rect x=\"" + pxnum(kLeft) + "\" y=\"" + pxnum(kTop) +
         "\" width=\"" + pxnum(plot_width()) + "\" height=\"" +
         pxnum(plot_height()) +
         "\" fill=\"none\" stroke=\"#333333\" stroke-width=\"1\"/>\n";
  // Title and axis labels.
  out += "<text x=\"" + pxnum(width_ / 2.0) + "\" y=\"20\" font-size=\"14\" "
         "font-family=\"sans-serif\" text-anchor=\"middle\" "
         "fill=\"#111111\">" + svg_escape(title_) + "</text>\n";
  out += "<text x=\"" + pxnum(kLeft + plot_width() / 2.0) + "\" y=\"" +
         pxnum(height_ - 10.0) +
         "\" font-size=\"12\" font-family=\"sans-serif\" "
         "text-anchor=\"middle\" fill=\"#111111\">" +
         svg_escape(x_label_) + "</text>\n";
  out += "<text x=\"14\" y=\"" + pxnum(kTop + plot_height() / 2.0) +
         "\" font-size=\"12\" font-family=\"sans-serif\" "
         "text-anchor=\"middle\" fill=\"#111111\" transform=\"rotate(-90 14 " +
         pxnum(kTop + plot_height() / 2.0) + ")\">" + svg_escape(y_label_) +
         "</text>\n";
  append_ticks(out, /*x_axis=*/true);
  append_ticks(out, /*x_axis=*/false);
  out += body_;
  out += "</svg>\n";
  return out;
}

}  // namespace araxl::analysis
