// Dependency-free SVG plot canvas for the analysis layer.
//
// `araxl report` must render its figures (pareto frontiers, scaling
// curves, stall stacked bars, the SoA landscape) without any plotting
// dependency, and the output must be byte-deterministic: the same dataset
// yields the same SVG regardless of worker count or shard split. All
// coordinates and tick labels therefore go through the fixed-precision
// formatters in common/fmt.hpp — never ostream double formatting.
#ifndef ARAXL_ANALYSIS_SVG_HPP
#define ARAXL_ANALYSIS_SVG_HPP

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace araxl::analysis {

/// One x/y chart. Construct, set the data ranges, then add marks in data
/// coordinates; render() wraps them in a frame with axis ticks and labels.
/// Marks are emitted in call order (SVG painter's model), after the frame.
class SvgPlot {
 public:
  SvgPlot(unsigned width, unsigned height, std::string title,
          std::string x_label, std::string y_label);

  /// Data window; lo == hi is widened symmetrically so projection stays
  /// finite. Call before any mark.
  void set_x_range(double lo, double hi);
  void set_y_range(double lo, double hi);
  /// log2 axis: range and mark coordinates are given in raw data units and
  /// transformed internally; ticks land on powers of two.
  void set_x_log2(bool on) { x_log2_ = on; }
  void set_y_log2(bool on) { y_log2_ = on; }

  // ---- marks in data coordinates -------------------------------------------
  void polyline(const std::vector<std::pair<double, double>>& pts,
                std::string_view color, double width_px,
                bool dashed = false);
  void circle(double x, double y, double r_px, std::string_view color,
              bool filled = true);
  /// Axis-aligned bar given in data coords for x and pixel coords for the
  /// vertical extent (stacked-bar charts lay rows out in pixels).
  void bar(double x_lo, double x_hi, double y_px, double h_px,
           std::string_view color);
  /// Text anchored at a data point ("start" | "middle" | "end").
  void label(double x, double y, std::string_view s, unsigned size_px,
             std::string_view anchor = "start",
             std::string_view color = "#333333");
  /// Text in absolute pixel coordinates (legends, bar row names).
  void text_px(double x_px, double y_px, std::string_view s, unsigned size_px,
               std::string_view anchor = "start",
               std::string_view color = "#333333");
  /// Color-keyed legend in the top-right corner of the plot area.
  void legend(const std::vector<std::pair<std::string, std::string>>& entries);

  // ---- projection ----------------------------------------------------------
  [[nodiscard]] double px(double x) const;
  [[nodiscard]] double py(double y) const;
  [[nodiscard]] double plot_left() const;
  [[nodiscard]] double plot_top() const;
  [[nodiscard]] double plot_width() const;
  [[nodiscard]] double plot_height() const;

  /// Complete document: header, frame, ticks, axis labels, then the marks.
  [[nodiscard]] std::string render() const;

 private:
  void append_ticks(std::string& out, bool x_axis) const;

  unsigned width_, height_;
  std::string title_, x_label_, y_label_;
  double x_lo_ = 0.0, x_hi_ = 1.0, y_lo_ = 0.0, y_hi_ = 1.0;
  bool x_log2_ = false, y_log2_ = false;
  std::string body_;
};

/// Escapes text for an SVG (XML) text node or attribute.
[[nodiscard]] std::string svg_escape(std::string_view s);

}  // namespace araxl::analysis

#endif  // ARAXL_ANALYSIS_SVG_HPP
