// Post-sweep analysis layer — `araxl report`.
//
// Consumes a finished sweep (the result store, or a merged driver JSON
// report) and regenerates the paper's analysis surfaces as deterministic
// artifacts: text tables, flat CSV, and dependency-free SVG figures —
// pareto frontiers (GFLOPS vs W and vs mm^2), frequency-vs-lanes scaling
// curves, per-kernel utilization with the stall-taxonomy breakdown as
// stacked bars, and the Fig. 1 state-of-the-art landscape with this run's
// configurations overlaid (src/ppa/soa.*).
//
// Every artifact is byte-identical for a given dataset: rows are sorted by
// a total key before any aggregation, numbers go through fixed-precision
// formatters, and nothing wall-clock- or path-dependent is emitted. A
// sweep run with 1 or 32 workers, or sharded and merged, therefore
// produces identical reports — the same contract the driver's JSON/CSV
// reporters carry, extended through the analysis layer.
#ifndef ARAXL_ANALYSIS_ANALYSIS_HPP
#define ARAXL_ANALYSIS_ANALYSIS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"
#include "store/result_store.hpp"

namespace araxl::analysis {

/// One analyzable data point: a successful job with its PPA projection.
struct Row {
  std::string label;    ///< display config label ("araxl:64")
  std::string family;   ///< machine family ("araxl" | "ara2")
  std::string kernel;
  std::uint64_t bytes_per_lane = 0;
  std::uint64_t seed = 0;
  std::uint64_t vlen_bits = 0;
  RunStats stats;       ///< includes the stall taxonomy + fpu_busy_slots
  // PPA-model outputs (ppa/{freq,area,power}_model.hpp).
  double freq_ghz = 0.0;
  double area_mm2 = 0.0;
  double power_w = 0.0;
  double gflops = 0.0;
  double gflops_per_w = 0.0;
  double gflops_per_mm2 = 0.0;
};

/// Row filters (both conjunctive; empty lists pass everything).
struct RowFilter {
  std::vector<std::string> kernels;   ///< exact kernel names
  std::vector<std::string> configs;   ///< substring match on the config label
};

/// Rows sorted by (total_lanes, label, kernel, bytes_per_lane, seed) — the
/// total order every aggregation below iterates in.
struct Dataset {
  std::vector<Row> rows;
};

/// Builds a dataset from result-store entries. Only records written by
/// `version` are used (pass store::build_version(); other builds' records
/// cannot be compared — and an empty filter accepts every version). The
/// stall taxonomy comes straight from the persisted stats; pre-attribution
/// store entries read as all-zero stalls.
[[nodiscard]] Dataset dataset_from_store(
    const std::vector<store::StoredResult>& entries,
    const std::string& version, const RowFilter& filter);

/// Builds a dataset from a driver JSON report (as written by
/// `araxl sweep --json` or reassembled by `araxl merge`). Failed jobs are
/// skipped. Stall fields are zero unless the report was written with
/// --provenance — the store path is the primary source for stall analysis.
[[nodiscard]] Dataset dataset_from_json_report(std::string_view doc,
                                               const RowFilter& filter);

/// One output file of the report bundle.
struct Artifact {
  std::string name;     ///< file name within the output directory
  std::string content;
};

/// Renders the full artifact bundle for `ds`:
///   summary.txt            per-job results + stall-breakdown text tables
///   report.csv             flat rows incl. the live stall taxonomy
///   pareto_perf_w.csv/svg  GFLOPS vs W scatter with the pareto frontier
///   pareto_perf_mm2.csv/svg  GFLOPS vs mm^2 likewise
///   scaling.csv/svg        fmax and peak GFLOPS vs lane count per family
///   stalls.csv/svg         stacked busy+stall slot fractions per config/kernel
///   soa_landscape.csv/svg  Fig. 1 VLEN/FPU landscape + this run's configs
/// Artifact order (and all content) is deterministic.
[[nodiscard]] std::vector<Artifact> build_report(const Dataset& ds);

}  // namespace araxl::analysis

#endif  // ARAXL_ANALYSIS_ANALYSIS_HPP
