// Request Interface (REQI) model — paper §III-B.1.
//
// CVA6 broadcasts every vector instruction to all clusters; cluster 0 sends
// the acknowledge (exceptions / scalar results) back. The next vector
// instruction issues only after the ack returns, so the REQI round trip is
// the machine's issue interval floor. Each extra register cut (reqi_regs)
// adds one cycle per direction, i.e. the paper's "+1 register => the
// instruction is acknowledged 2 cycles later" — and each broadcast-tree
// level of a hierarchical machine costs the same. All numbers come from
// the InterconnectSpec descriptor; this model never sees MachineKind.
#ifndef ARAXL_INTERCONNECT_REQI_HPP
#define ARAXL_INTERCONNECT_REQI_HPP

#include "interconnect/spec.hpp"
#include "machine/config.hpp"

namespace araxl {

class ReqiModel {
 public:
  explicit ReqiModel(const InterconnectSpec& spec) : spec_(spec) {}
  explicit ReqiModel(const MachineConfig& cfg) : spec_(cfg.interconnect()) {}

  /// CVA6 -> cluster sequencer transport latency (broadcast direction).
  [[nodiscard]] unsigned fwd_latency() const { return spec_.reqi_fwd_latency; }

  /// Issue -> acknowledge round trip; gates back-to-back issue.
  [[nodiscard]] unsigned ack_latency() const { return spec_.reqi_ack_latency; }

 private:
  InterconnectSpec spec_;
};

}  // namespace araxl

#endif  // ARAXL_INTERCONNECT_REQI_HPP
