// Request Interface (REQI) model — paper §III-B.1.
//
// CVA6 broadcasts every vector instruction to all clusters; cluster 0 sends
// the acknowledge (exceptions / scalar results) back. The next vector
// instruction issues only after the ack returns, so the REQI round trip is
// the machine's issue interval floor. Each extra register cut (reqi_regs)
// adds one cycle per direction, i.e. the paper's "+1 register => the
// instruction is acknowledged 2 cycles later".
#ifndef ARAXL_INTERCONNECT_REQI_HPP
#define ARAXL_INTERCONNECT_REQI_HPP

#include "machine/config.hpp"

namespace araxl {

class ReqiModel {
 public:
  explicit ReqiModel(const MachineConfig& cfg) : cfg_(&cfg) {}

  /// CVA6 -> cluster sequencer transport latency (broadcast direction).
  [[nodiscard]] unsigned fwd_latency() const {
    return cfg_->kind == MachineKind::kAraXL ? 2 + cfg_->reqi_regs : 1;
  }

  /// Issue -> acknowledge round trip; gates back-to-back issue. The base
  /// values (CVA6 scoreboard + dispatcher handshake) are calibrated so the
  /// medium-vector (64 B/lane) utilization drop and the Fig. 7b REQI
  /// sensitivity match the paper; AraXL pays 2 extra cycles over Ara2 for
  /// the top-level broadcast/response stages, plus 2 per register cut.
  [[nodiscard]] unsigned ack_latency() const {
    return cfg_->kind == MachineKind::kAraXL ? 6 + 2 * cfg_->reqi_regs : 4;
  }

 private:
  const MachineConfig* cfg_;
};

}  // namespace araxl

#endif  // ARAXL_INTERCONNECT_REQI_HPP
