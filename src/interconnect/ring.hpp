// Ring Interface (RINGI) model — paper §III-B.4 and Fig. 4.
//
// Each cluster's SLDU owns two 64 bit/cycle output buses towards its
// neighbours (and two inputs), sized so that slide-by-1 — the dominant
// permutation in HPC/ML kernels — sustains full throughput: each cluster
// exchanges exactly one boundary element per row with its neighbour.
// Larger slides bypass over multiple hops at reduced throughput, and
// reductions use the ring for an inter-cluster log-tree whose step s moves
// a partial across 2^s hops. ring_regs adds one cycle per hop.
//
// Hierarchical machines (topo.groups > 1) keep one such ring per group and
// join the groups with a second-level ring: a hop that crosses a group
// boundary pays the longer group-hop latency, and the reduction tree gains
// log2(groups) group-level stages after the per-group stages. All numbers
// come from the InterconnectSpec descriptor; this model never sees
// MachineKind.
#ifndef ARAXL_INTERCONNECT_RING_HPP
#define ARAXL_INTERCONNECT_RING_HPP

#include <cstdint>

#include "interconnect/spec.hpp"
#include "machine/config.hpp"
#include "sim/cycle.hpp"

namespace araxl {

class RingModel {
 public:
  explicit RingModel(const InterconnectSpec& spec) : spec_(spec) {}
  explicit RingModel(const MachineConfig& cfg) : spec_(cfg.interconnect()) {}

  [[nodiscard]] bool present() const { return spec_.ring_present(); }

  /// Latency of one hop between adjacent clusters' SLDUs (within a group).
  [[nodiscard]] unsigned hop_latency() const { return spec_.ring_hop_latency; }

  /// Latency of a hop that crosses a group boundary (== hop_latency on a
  /// flat machine, longer when a group-level ring exists; the preset
  /// encodes that, so this is a plain descriptor read).
  [[nodiscard]] unsigned group_hop_latency() const {
    return spec_.group_hop_latency;
  }

  /// Start-up penalty of a slide by `k` (signed): ceil(|k|/L) hops of
  /// bypass, capped at C-1 (C = total clusters). Hops that cross a group
  /// boundary pay group_hop_latency instead of hop_latency (worst-case
  /// crossing count over the hop path). Zero on a lumped machine.
  [[nodiscard]] Cycle slide_start_penalty(std::int64_t k) const;

  /// Whether a slide by `k` exceeds the fast slide-by-1 path and funnels
  /// through the 64-bit ring links (one element per cluster per cycle).
  [[nodiscard]] bool long_slide(std::int64_t k) const {
    return present() && (k > 1 || k < -1);
  }

  /// Total cycles of the inter-cluster reduction log-tree: step s pays
  /// 2^s hops plus one FPU add (paper: "multiple hops for later reduction
  /// stages"). On a hierarchical machine the first log2(clusters) steps run
  /// on the per-group rings and the remaining log2(groups) steps cross the
  /// group-level ring at group-hop latency.
  [[nodiscard]] Cycle reduction_tree_cycles() const;

  /// Boundary elements each cluster must send for a slide-by-1 of `vl`
  /// elements: one per occupied row (used by tests to show the ring link is
  /// never the bottleneck for slide1).
  [[nodiscard]] std::uint64_t slide1_boundary_elems(std::uint64_t vl) const;

 private:
  InterconnectSpec spec_;
};

}  // namespace araxl

#endif  // ARAXL_INTERCONNECT_RING_HPP
