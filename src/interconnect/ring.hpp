// Ring Interface (RINGI) model — paper §III-B.4 and Fig. 4.
//
// Each cluster's SLDU owns two 64 bit/cycle output buses towards its
// neighbours (and two inputs), sized so that slide-by-1 — the dominant
// permutation in HPC/ML kernels — sustains full throughput: each cluster
// exchanges exactly one boundary element per row with its neighbour.
// Larger slides bypass over multiple hops at reduced throughput, and
// reductions use the ring for an inter-cluster log-tree whose step s moves
// a partial across 2^s hops. ring_regs adds one cycle per hop.
#ifndef ARAXL_INTERCONNECT_RING_HPP
#define ARAXL_INTERCONNECT_RING_HPP

#include <cstdint>

#include "machine/config.hpp"
#include "sim/cycle.hpp"

namespace araxl {

class RingModel {
 public:
  explicit RingModel(const MachineConfig& cfg) : cfg_(&cfg) {}

  [[nodiscard]] bool present() const {
    return cfg_->kind == MachineKind::kAraXL && cfg_->topo.clusters > 1;
  }

  /// Latency of one hop between adjacent clusters' SLDUs.
  [[nodiscard]] unsigned hop_latency() const { return 1 + cfg_->ring_regs; }

  /// Start-up penalty of a slide by `k` (signed): ceil(|k|/L) hops of
  /// bypass, capped at C-1. Zero on the lumped Ara2.
  [[nodiscard]] Cycle slide_start_penalty(std::int64_t k) const;

  /// Whether a slide by `k` exceeds the fast slide-by-1 path and funnels
  /// through the 64-bit ring links (one element per cluster per cycle).
  [[nodiscard]] bool long_slide(std::int64_t k) const {
    return present() && (k > 1 || k < -1);
  }

  /// Total cycles of the inter-cluster reduction log-tree: step s pays
  /// 2^s hops plus one FPU add (paper: "multiple hops for later reduction
  /// stages").
  [[nodiscard]] Cycle reduction_tree_cycles() const;

  /// Boundary elements each cluster must send for a slide-by-1 of `vl`
  /// elements: one per occupied row (used by tests to show the ring link is
  /// never the bottleneck for slide1).
  [[nodiscard]] std::uint64_t slide1_boundary_elems(std::uint64_t vl) const;

 private:
  const MachineConfig* cfg_;
};

}  // namespace araxl

#endif  // ARAXL_INTERCONNECT_RING_HPP
