#include "interconnect/glsu.hpp"

namespace araxl {

std::vector<std::uint64_t> GlsuModel::cluster_byte_share(std::uint64_t vl,
                                                         unsigned ew) const {
  const unsigned clusters = spec_.topo.total_clusters();
  const unsigned lanes = spec_.topo.lanes;
  std::vector<std::uint64_t> share(clusters, 0);
  // Element i belongs to cluster (i / L) mod C; whole L-element runs land
  // in one cluster, so the share can be computed run-wise.
  const std::uint64_t runs = vl / lanes;
  for (unsigned c = 0; c < clusters; ++c) {
    const std::uint64_t full = runs / clusters + (runs % clusters > c ? 1 : 0);
    share[c] = full * lanes * ew;
  }
  const std::uint64_t tail = vl % lanes;
  if (tail != 0) share[runs % clusters] += tail * ew;
  return share;
}

}  // namespace araxl
