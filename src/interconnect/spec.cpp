#include "interconnect/spec.hpp"

#include "common/bits.hpp"

namespace araxl {

InterconnectSpec InterconnectSpec::araxl(const Topology& topo,
                                         const InterconnectKnobs& knobs) {
  InterconnectSpec spec;
  spec.topo = topo;
  spec.lumped = false;
  spec.broadcast_levels = log2_ceil(topo.groups);

  // REQI: the flat base values (CVA6 scoreboard + dispatcher handshake +
  // top-level broadcast/response stages) are calibrated so the
  // medium-vector utilization drop and the Fig. 7b sensitivity match the
  // paper. Each extra register cut — and each extra broadcast-tree level
  // of a hierarchical machine — adds one cycle per direction, i.e. +2 on
  // the acknowledge round trip.
  const unsigned reqi_stages = knobs.reqi_regs + spec.broadcast_levels;
  spec.reqi_fwd_latency = 2 + reqi_stages;
  spec.reqi_ack_latency = 6 + 2 * reqi_stages;

  // GLSU: 3-stage pipe (Align 2 + Addrgen 1 + Shuffle 2) on the load path,
  // Align + Addrgen on the store path. A hierarchical machine adds one
  // group-distribution level to the shuffle per hierarchy level: +2 cycles
  // on the load request-response, +1 before the first store beat leaves.
  spec.glsu_load_latency = 5 + 2 * (knobs.glsu_regs + spec.broadcast_levels);
  spec.glsu_store_latency = 3 + knobs.glsu_regs + spec.broadcast_levels;
  spec.l2_latency = knobs.l2_latency;
  spec.bus_bytes = knobs.bus_bytes;

  // RINGI: one cycle between adjacent clusters of a group, plus one per
  // extra register. A group hop spans the whole group floorplan instead of
  // one cluster pitch, so it costs two local hops; on a flat machine every
  // hop is a local hop (the field must read correctly from the descriptor
  // alone, without consumers re-checking groups).
  spec.ring_hop_latency = 1 + knobs.ring_regs;
  spec.group_hop_latency =
      topo.groups > 1 ? 2 * spec.ring_hop_latency : spec.ring_hop_latency;
  spec.red_add_latency = knobs.red_add_latency;
  return spec;
}

InterconnectSpec InterconnectSpec::ara2(const Topology& topo,
                                        const InterconnectKnobs& knobs) {
  InterconnectSpec spec;
  spec.topo = topo;
  spec.lumped = true;
  // Lumped all-to-all structures: single-cycle CVA6 handshake, one-stage
  // VLSU align+shuffle, no ring. The interface register knobs model
  // top-level cuts that do not exist here.
  spec.reqi_fwd_latency = 1;
  spec.reqi_ack_latency = 4;
  spec.glsu_load_latency = 2;
  spec.glsu_store_latency = 2;
  spec.l2_latency = knobs.l2_latency;
  spec.bus_bytes = knobs.bus_bytes;
  spec.ring_hop_latency = 0;
  spec.group_hop_latency = 0;
  spec.red_add_latency = knobs.red_add_latency;
  return spec;
}

}  // namespace araxl
