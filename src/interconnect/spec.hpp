// Interconnect descriptor — the single source of truth for how a machine's
// units are wired together (paper §III-B, extended hierarchically per §V).
//
// Every latency and structure number the interconnect models (ReqiModel,
// GlsuModel, RingModel) and the PPA models consume lives here, computed
// once by a *preset constructor*:
//
//   * InterconnectSpec::araxl(topo, knobs) — pipelined REQI/GLSU/RINGI
//     top-level interfaces. With topo.groups > 1 the descriptors gain the
//     second hierarchy level: the REQI broadcast tree grows one stage per
//     group level (ack round trip +2/level), the GLSU shuffle gains a
//     group-distribution stage per level, and a group-level ring joins the
//     per-group cluster rings (slides crossing a group boundary pay the
//     longer group hop; inter-cluster reduction trees gain group stages).
//   * InterconnectSpec::ara2(topo, knobs) — the lumped baseline: all-to-all
//     MASKU/SLDU/VLSU, no top-level interfaces, no ring.
//
// MachineKind never reaches this layer: machine/config.cpp maps the kind
// to the matching preset (MachineConfig::interconnect()), and everything
// downstream branches only on descriptor properties (lumped, groups, ...).
// Adding a topology therefore means writing a descriptor instance, not
// editing a dozen call sites.
#ifndef ARAXL_INTERCONNECT_SPEC_HPP
#define ARAXL_INTERCONNECT_SPEC_HPP

#include <cstdint>

#include "vrf/mapping.hpp"

namespace araxl {

/// Latency-tolerance knobs threaded from MachineConfig into a preset
/// (paper Fig. 5: extra register cuts on each interface).
struct InterconnectKnobs {
  unsigned reqi_regs = 0;   ///< extra REQI register cuts
  unsigned glsu_regs = 0;   ///< extra GLSU pipeline registers
  unsigned ring_regs = 0;   ///< extra RINGI registers per hop
  unsigned l2_latency = 12; ///< L2 access latency beyond the GLSU pipe
  unsigned red_add_latency = 8;        ///< FPU add per inter-cluster tree step
  std::uint64_t bus_bytes = 0;         ///< memory bus width per direction
};

struct InterconnectSpec {
  Topology topo{};

  /// Lumped all-to-all machine (Ara2 style): single-cycle align+shuffle,
  /// no top-level interfaces, no ring. The structural opposite of the
  /// pipelined AraXL interconnects; models branch on this property, never
  /// on MachineKind.
  bool lumped = false;

  /// Extra broadcast-tree stages added by the hierarchy: log2(groups).
  unsigned broadcast_levels = 0;

  // ---- REQI (request interface) ---------------------------------------------
  unsigned reqi_fwd_latency = 1;  ///< CVA6 -> cluster sequencer transport
  unsigned reqi_ack_latency = 4;  ///< issue -> acknowledge round trip

  // ---- GLSU (global load-store unit) ----------------------------------------
  unsigned glsu_load_latency = 2;   ///< request -> first beat, excluding L2
  unsigned glsu_store_latency = 2;  ///< first beat leaves the cluster
  unsigned l2_latency = 12;
  std::uint64_t bus_bytes = 0;      ///< per direction (read/write separate)

  // ---- RINGI (ring interface) -----------------------------------------------
  unsigned ring_hop_latency = 1;   ///< between adjacent clusters in a group
  unsigned group_hop_latency = 1;  ///< crossing a group boundary
  unsigned red_add_latency = 8;

  /// The ring exists at all (pipelined machine with more than one cluster).
  [[nodiscard]] bool ring_present() const noexcept {
    return !lumped && topo.total_clusters() > 1;
  }

  /// Stops on the largest single physical ring: the per-group cluster ring
  /// or, in a hierarchical machine, the group-level ring — whichever is
  /// longer. This is what floorplan congestion tracks (ppa/freq_model).
  [[nodiscard]] unsigned max_ring_stops() const noexcept {
    return topo.groups > 1 ? (topo.clusters > topo.groups ? topo.clusters
                                                          : topo.groups)
                           : topo.clusters;
  }

  /// Ring stops summed over every ring in the machine: one per cluster on
  /// its group ring, plus one per group on the group-level ring (0 when
  /// flat). Drives the RINGI area model.
  [[nodiscard]] unsigned total_ring_stops() const noexcept {
    return topo.total_clusters() + (topo.groups > 1 ? topo.groups : 0);
  }

  // ---- preset constructors ---------------------------------------------------
  /// Pipelined AraXL interconnects (paper Fig. 2), hierarchical when
  /// topo.groups > 1.
  static InterconnectSpec araxl(const Topology& topo,
                                const InterconnectKnobs& knobs);

  /// Lumped Ara2 baseline: no top-level interfaces. The reqi/glsu/ring
  /// register knobs have no physical counterpart and are ignored.
  static InterconnectSpec ara2(const Topology& topo,
                               const InterconnectKnobs& knobs);
};

}  // namespace araxl

#endif  // ARAXL_INTERCONNECT_SPEC_HPP
