#include "interconnect/reqi.hpp"

// ReqiModel is header-only; this translation unit anchors the module in the
// build and hosts no code today.
