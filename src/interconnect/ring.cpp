#include "interconnect/ring.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace araxl {

Cycle RingModel::slide_start_penalty(std::int64_t k) const {
  if (!present()) return 0;
  const Topology& topo = spec_.topo;
  const std::uint64_t mag = static_cast<std::uint64_t>(k < 0 ? -k : k);
  const std::uint64_t hops = std::min<std::uint64_t>(
      topo.total_clusters() - 1,
      ceil_div(std::max<std::uint64_t>(mag, 1), topo.lanes));
  if (topo.groups <= 1) return hops * hop_latency();
  // Worst case over start clusters: a path of h consecutive hops crosses
  // ceil(h / clusters_per_group) group boundaries. Crossing hops pay the
  // group-hop latency, the rest stay on the local ring.
  const std::uint64_t crossings = ceil_div(hops, topo.clusters);
  return (hops - crossings) * hop_latency() + crossings * group_hop_latency();
}

Cycle RingModel::reduction_tree_cycles() const {
  if (!present()) return 0;
  Cycle total = 0;
  // Per-group stages first: with groups == 1, clusters_per_group equals the
  // total cluster count and this is the whole (flat) tree.
  const unsigned local_steps = log2_ceil(spec_.topo.clusters);
  for (unsigned s = 0; s < local_steps; ++s) {
    total += (Cycle{1} << s) * hop_latency() + spec_.red_add_latency;
  }
  const unsigned group_steps = log2_ceil(spec_.topo.groups);
  for (unsigned s = 0; s < group_steps; ++s) {
    total += (Cycle{1} << s) * group_hop_latency() + spec_.red_add_latency;
  }
  return total;
}

std::uint64_t RingModel::slide1_boundary_elems(std::uint64_t vl) const {
  if (!present()) return 0;
  // One element crosses each cluster boundary per fully-occupied row of
  // L*C elements; partial rows still cross for the occupied boundary.
  return ceil_div(vl, spec_.topo.total_lanes());
}

}  // namespace araxl
