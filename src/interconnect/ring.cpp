#include "interconnect/ring.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace araxl {

Cycle RingModel::slide_start_penalty(std::int64_t k) const {
  if (!present()) return 0;
  const std::uint64_t mag = static_cast<std::uint64_t>(k < 0 ? -k : k);
  const std::uint64_t hops = std::min<std::uint64_t>(
      cfg_->topo.clusters - 1,
      ceil_div(std::max<std::uint64_t>(mag, 1), cfg_->topo.lanes));
  return hops * hop_latency();
}

Cycle RingModel::reduction_tree_cycles() const {
  if (!present()) return 0;
  Cycle total = 0;
  const unsigned steps = log2_ceil(cfg_->topo.clusters);
  for (unsigned s = 0; s < steps; ++s) {
    total += (Cycle{1} << s) * hop_latency() + cfg_->red_add_latency;
  }
  return total;
}

std::uint64_t RingModel::slide1_boundary_elems(std::uint64_t vl) const {
  if (!present()) return 0;
  // One element crosses each cluster boundary per fully-occupied row of
  // L*C elements; partial rows still cross for the occupied boundary.
  return ceil_div(vl, cfg_->topo.total_lanes());
}

}  // namespace araxl
