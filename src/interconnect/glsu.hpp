// Global Load-Store Unit (GLSU) model — paper §III-B.3 and Fig. 3.
//
// The GLSU sits between the L2 memory and the per-cluster VLSUs. Its three
// pipelined stages are:
//   Align   — shifts misaligned data onto the memory bus with power-of-two
//             shift levels (2 levels modelled),
//   Addrgen — splits requests into AXI bursts and converts bandwidth,
//   Shuffle — distributes aligned data to the owning clusters per the
//             element mapping (2 levels modelled; hierarchical machines
//             add one group-distribution level per hierarchy level).
// Extra pipeline registers (glsu_regs) add 2 cycles each to the
// request-response latency (the paper's "+4 registers => +8 cycles").
//
// Functionally the GLSU's job is the element mapping itself, which lives in
// VrfMapping; this model supplies the timing and the per-cluster
// distribution math that the tests validate against the mapping. All
// latencies come from the InterconnectSpec descriptor; this model never
// sees MachineKind.
#ifndef ARAXL_INTERCONNECT_GLSU_HPP
#define ARAXL_INTERCONNECT_GLSU_HPP

#include <cstdint>
#include <vector>

#include "interconnect/spec.hpp"
#include "machine/config.hpp"
#include "mem/axi.hpp"
#include "sim/cycle.hpp"

namespace araxl {

class GlsuModel {
 public:
  explicit GlsuModel(const InterconnectSpec& spec) : spec_(spec) {}
  explicit GlsuModel(const MachineConfig& cfg) : spec_(cfg.interconnect()) {}

  /// Data bus width in bytes (per direction; read/write are separate
  /// channels).
  [[nodiscard]] std::uint64_t bus_bytes() const { return spec_.bus_bytes; }

  /// Load request -> first data beat written into the VRF: the GLSU pipe
  /// (single-stage on a lumped machine) on top of the L2 latency.
  [[nodiscard]] unsigned load_latency() const {
    return spec_.glsu_load_latency + spec_.l2_latency;
  }

  /// Store path latency before the first beat leaves the cluster.
  [[nodiscard]] unsigned store_latency() const {
    return spec_.glsu_store_latency;
  }

  /// Useless bytes transferred in the first beat of a misaligned access
  /// (the Align stage ships the full first bus word).
  [[nodiscard]] std::uint64_t head_skew(std::uint64_t addr) const {
    return addr % bus_bytes();
  }

  /// Total bus beats for a unit-stride access, including 4-KiB burst splits
  /// and the misalignment beat (delegates to the AXI splitter).
  [[nodiscard]] std::uint64_t transfer_beats(std::uint64_t addr,
                                             std::uint64_t len_bytes) const {
    return total_beats(addr, len_bytes, bus_bytes());
  }

  /// Bytes granted to the bus owner in one cycle (per-cycle engine).
  [[nodiscard]] std::uint64_t grant_bytes(std::uint64_t remaining) const {
    const std::uint64_t bus = bus_bytes();
    return remaining < bus ? remaining : bus;
  }

  /// Cycles a full-bandwidth owner needs to move `bytes` (bulk grant for
  /// the event-driven engine's closed-form advancement).
  [[nodiscard]] Cycle cycles_for_bytes(std::uint64_t bytes) const {
    const std::uint64_t bus = bus_bytes();
    return bytes == 0 ? 0 : (bytes + bus - 1) / bus;
  }

  /// Shuffle-stage distribution: how many bytes of a unit-stride access of
  /// `vl` elements (width `ew`) land in each (globally numbered) cluster.
  /// Tests validate this against the element mapping.
  [[nodiscard]] std::vector<std::uint64_t> cluster_byte_share(std::uint64_t vl,
                                                              unsigned ew) const;

 private:
  InterconnectSpec spec_;
};

}  // namespace araxl

#endif  // ARAXL_INTERCONNECT_GLSU_HPP
