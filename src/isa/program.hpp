// Program representation executed by the machine model, and the
// ProgramBuilder — the public API kernels (and library users) use to write
// vector programs. A Program is a flat, pre-unrolled sequence of scalar
// bookkeeping operations (consuming CVA6 cycles) and vector instructions
// (broadcast to the clusters over the REQI).
#ifndef ARAXL_ISA_PROGRAM_HPP
#define ARAXL_ISA_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "isa/instr.hpp"
#include "isa/vtype.hpp"

namespace araxl {

/// Scalar-core work between vector instructions. The timing model charges
/// CVA6 cycles for it; it carries no functional payload (kernel builders
/// compute all addresses and scalar values at build time).
struct ScalarOp {
  enum class Kind : std::uint8_t {
    kCycles,  ///< `count` cycles of ALU/branch work
    kLoad,    ///< one d-cache load (latency set by machine config)
    kStore,   ///< one d-cache store
  };
  Kind kind = Kind::kCycles;
  std::uint32_t count = 1;
};

using ProgOp = std::variant<ScalarOp, VInstr>;

/// A compiled vector program.
struct Program {
  std::string name;
  std::vector<ProgOp> ops;

  [[nodiscard]] std::size_t vinstr_count() const;
  [[nodiscard]] std::size_t scalar_op_count() const;
};

// ---- loop-body signatures --------------------------------------------------
//
// The event-driven timing engine batches whole strip-mined loop iterations
// once the machine reaches steady state. The *signature* of an operation is
// everything that can influence timing: opcode, register operands, masking,
// stride, the scalar immediate, and — for vsetvli — the granted vl and
// vtype (two vsetvlis with different AVLs but the same grant are timing-
// and architecture-equivalent; that is exactly how strip-mined loops count
// down their remaining AVL). Memory addresses and FP scalar operands are
// deliberately excluded: addresses are handled separately by the batcher's
// arithmetic-progression checks, and fs never reaches the timing model.
//
// Signatures are compared field-wise, never by hash: the batcher's
// correctness must not rest on hash-collision odds (the differential
// fuzzer includes adversarial near-collision programs).
struct OpKey {
  std::uint32_t tag = 0;     ///< 0 scalar op, 1 vector instruction
  std::uint32_t op = 0;      ///< Op, or ScalarOp::Kind
  std::uint32_t regs = 0;    ///< vd | vs1<<8 | vs2<<16 | masked<<24
  std::uint32_t vtype = 0;   ///< sew bits | (lmul.log2+8)<<16 (vsetvli only)
  std::uint64_t value = 0;   ///< granted vl (vsetvli) / count (scalar)
  std::uint64_t xs = 0;      ///< integer scalar operand (slides, shifts)
  std::uint64_t stride = 0;  ///< strided-access byte stride

  friend bool operator==(const OpKey&, const OpKey&) = default;
};

/// Timing signature of `op` on a machine with `vlen_bits` of register.
[[nodiscard]] OpKey op_key(const ProgOp& op, std::uint64_t vlen_bits);

/// A maximal periodic run of ops[start, end) where every op's signature
/// equals the signature one `period` earlier — the static shape of a
/// strip-mined loop. Regions contain at least two full periods.
struct LoopRegion {
  std::size_t start = 0;
  std::size_t end = 0;
  std::size_t period = 0;
};

/// Scans a signature sequence for periodic regions, preferring the
/// smallest period at each position. Greedy and non-overlapping, in
/// program order. `max_period` bounds the loop-body length considered.
[[nodiscard]] std::vector<LoopRegion> find_loop_regions(
    const std::vector<OpKey>& keys, std::size_t max_period = 64);

/// Two-level loop structure detected inside a LoopRegion: the region's
/// period is the *inner* loop body, and every `outer_period` inner
/// iterations the bounded-memory address deltas take one irregular "jump"
/// (a row boundary of a 2D stencil / tiled kernel). `phase` locates the
/// jump within the outer period: the delta entering inner iteration q
/// (from iteration q-1) is a jump iff (q - 1) % outer_period == phase.
/// Invalid when the region's address walk is a plain single-level
/// progression (no jumps) or the jumps are not themselves periodic.
struct LoopNest {
  bool valid = false;
  std::size_t outer_period = 0;  ///< inner iterations per outer iteration
  std::size_t phase = 0;         ///< jump offset within the outer period
};

/// Detects a two-level nest from the bounded-memory address walk of
/// `region` over `prog`. Each bounded mem op position class (op index mod
/// period) contributes its per-period address deltas; the nest is valid
/// only if every class with non-constant deltas jumps at the same
/// (outer_period, phase) with ≥2 jumps and constant values between/at
/// jumps. Classes with constant deltas are unconstrained (1D streams
/// riding inside the nest).
[[nodiscard]] LoopNest find_loop_nest(const Program& prog,
                                      const LoopRegion& region);

/// Fluent, validating builder for Programs.
///
/// The builder tracks the current vtype/vl the way the hardware would, so
/// kernels can strip-mine with the granted vl, and checks the RVV
/// register-group alignment rules at build time (catching kernel bugs long
/// before simulation).
class ProgramBuilder {
 public:
  ProgramBuilder(std::uint64_t vlen_bits, std::string name);

  // ---- scalar side -------------------------------------------------------
  void scalar_cycles(std::uint32_t n);
  void scalar_load();
  void scalar_store();

  // ---- configuration -----------------------------------------------------
  /// Emits vsetvli and returns the granted vl = min(avl, VLMAX).
  std::uint64_t vsetvli(std::uint64_t avl, Sew sew, Lmul lmul);

  [[nodiscard]] std::uint64_t vl() const { return vl_; }
  [[nodiscard]] Vtype vtype() const { return vtype_; }
  [[nodiscard]] std::uint64_t vlen_bits() const { return vlen_bits_; }
  [[nodiscard]] std::uint64_t vlmax(Sew sew, Lmul lmul) const;

  // ---- memory ------------------------------------------------------------
  void vle(unsigned vd, std::uint64_t addr, bool masked = false);
  void vse(unsigned vs3, std::uint64_t addr, bool masked = false);
  void vlse(unsigned vd, std::uint64_t addr, std::int64_t stride_bytes);
  void vsse(unsigned vs3, std::uint64_t addr, std::int64_t stride_bytes);
  void vluxei(unsigned vd, std::uint64_t base, unsigned index_vreg);
  void vsuxei(unsigned vs3, std::uint64_t base, unsigned index_vreg);

  // ---- floating point ----------------------------------------------------
  void vfadd_vv(unsigned vd, unsigned vs2, unsigned vs1, bool masked = false);
  void vfadd_vf(unsigned vd, unsigned vs2, double fs, bool masked = false);
  void vfsub_vv(unsigned vd, unsigned vs2, unsigned vs1, bool masked = false);
  void vfsub_vf(unsigned vd, unsigned vs2, double fs, bool masked = false);
  void vfrsub_vf(unsigned vd, unsigned vs2, double fs, bool masked = false);
  void vfmul_vv(unsigned vd, unsigned vs2, unsigned vs1, bool masked = false);
  void vfmul_vf(unsigned vd, unsigned vs2, double fs, bool masked = false);
  void vfdiv_vv(unsigned vd, unsigned vs2, unsigned vs1, bool masked = false);
  void vfdiv_vf(unsigned vd, unsigned vs2, double fs, bool masked = false);
  void vfrdiv_vf(unsigned vd, unsigned vs2, double fs, bool masked = false);
  void vfmacc_vv(unsigned vd, unsigned vs1, unsigned vs2, bool masked = false);
  void vfmacc_vf(unsigned vd, double fs, unsigned vs2, bool masked = false);
  void vfnmsac_vv(unsigned vd, unsigned vs1, unsigned vs2, bool masked = false);
  void vfnmsac_vf(unsigned vd, double fs, unsigned vs2, bool masked = false);
  void vfmadd_vf(unsigned vd, double fs, unsigned vs2, bool masked = false);
  void vfmadd_vv(unsigned vd, unsigned vs1, unsigned vs2, bool masked = false);
  void vfmsac_vf(unsigned vd, double fs, unsigned vs2, bool masked = false);
  void vfmin_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vfmin_vf(unsigned vd, unsigned vs2, double fs);
  void vfmax_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vfmax_vf(unsigned vd, unsigned vs2, double fs);
  void vfsgnj_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vfsgnjn_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vfabs(unsigned vd, unsigned vs);   // pseudo: vfsgnjx-style via sgnj
  void vfneg(unsigned vd, unsigned vs);   // pseudo: vfsgnjn vd, vs, vs
  void vfcvt_x_f(unsigned vd, unsigned vs2);
  void vfcvt_f_x(unsigned vd, unsigned vs2);

  // ---- integer / moves ---------------------------------------------------
  void vadd_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vadd_vx(unsigned vd, unsigned vs2, std::int64_t xs);
  void vsub_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vsll_vx(unsigned vd, unsigned vs2, std::int64_t shamt);
  void vsrl_vx(unsigned vd, unsigned vs2, std::int64_t shamt);
  void vand_vx(unsigned vd, unsigned vs2, std::int64_t xs);
  void vmv_v_x(unsigned vd, std::int64_t xs);
  void vmv_v_v(unsigned vd, unsigned vs1);
  void vfmv_v_f(unsigned vd, double fs);
  /// Reads element 0 of vs2 into the scalar FP accumulator; CVA6 blocks.
  void vfmv_f_s(unsigned vs2);
  void vfmv_s_f(unsigned vd, double fs);
  void vid_v(unsigned vd);

  /// .vf-style ops whose scalar operand is the accumulator captured by the
  /// last vfmv_f_s (data-dependent scalars, e.g. softmax normalization).
  void vfmul_vf_acc(unsigned vd, unsigned vs2);
  void vfadd_vf_acc(unsigned vd, unsigned vs2);
  void vfsub_vf_acc(unsigned vd, unsigned vs2, bool masked = false);
  void vfrdiv_vf_acc(unsigned vd, unsigned vs2);
  void vfmv_v_f_acc(unsigned vd);

  // ---- reductions --------------------------------------------------------
  void vfredusum(unsigned vd, unsigned vs2, unsigned vs1);
  void vfredmax(unsigned vd, unsigned vs2, unsigned vs1);
  void vfredmin(unsigned vd, unsigned vs2, unsigned vs1);

  // ---- permutation -------------------------------------------------------
  void vfslide1up(unsigned vd, unsigned vs2, double fs);
  void vfslide1down(unsigned vd, unsigned vs2, double fs);
  void vslideup_vx(unsigned vd, unsigned vs2, std::uint64_t amount);
  void vslidedown_vx(unsigned vd, unsigned vs2, std::uint64_t amount);

  // ---- mask --------------------------------------------------------------
  void vmfeq_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vmflt_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vmfle_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vmflt_vf(unsigned vd, unsigned vs2, double fs);
  void vmfle_vf(unsigned vd, unsigned vs2, double fs);
  void vmfgt_vf(unsigned vd, unsigned vs2, double fs);
  void vmfge_vf(unsigned vd, unsigned vs2, double fs);
  void vmand_mm(unsigned vd, unsigned vs2, unsigned vs1);
  void vmor_mm(unsigned vd, unsigned vs2, unsigned vs1);
  void vmxor_mm(unsigned vd, unsigned vs2, unsigned vs1);
  void vmandn_mm(unsigned vd, unsigned vs2, unsigned vs1);
  void vmerge_vvm(unsigned vd, unsigned vs2, unsigned vs1);
  void vfmerge_vfm(unsigned vd, unsigned vs2, double fs);

  // ---- widening FP (SEW=32 sources, 64-bit destination group) -------------
  void vfwadd_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vfwsub_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vfwmul_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vfwmacc_vv(unsigned vd, unsigned vs1, unsigned vs2);
  void vfsqrt_v(unsigned vd, unsigned vs2);

  // ---- gather / compress ---------------------------------------------------
  void vrgather_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vcompress_vm(unsigned vd, unsigned vs2, unsigned vs1);

  // ---- mask population ------------------------------------------------------
  void vcpop_m(unsigned vs2);    ///< population count -> scalar (CVA6 blocks)
  void vfirst_m(unsigned vs2);   ///< first set index (-1 if none) -> scalar
  void viota_m(unsigned vd, unsigned vs2);
  void vmsbf_m(unsigned vd, unsigned vs2);
  void vmsif_m(unsigned vd, unsigned vs2);
  void vmsof_m(unsigned vd, unsigned vs2);

  // ---- additional integer ---------------------------------------------------
  void vmul_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vmul_vx(unsigned vd, unsigned vs2, std::int64_t xs);
  void vmacc_vv(unsigned vd, unsigned vs1, unsigned vs2);
  void vrsub_vx(unsigned vd, unsigned vs2, std::int64_t xs);
  void vmax_vv(unsigned vd, unsigned vs2, unsigned vs1);
  void vmin_vv(unsigned vd, unsigned vs2, unsigned vs1);

  /// Finalizes and returns the program (builder becomes empty).
  [[nodiscard]] Program take();

 private:
  void push(VInstr in);
  void check_vreg(unsigned v, bool grouped = true) const;
  VInstr make(Op op, unsigned vd, unsigned vs1, unsigned vs2, bool masked) const;
  VInstr make_widening(Op op, unsigned vd, unsigned vs1, unsigned vs2);

  Program prog_;
  std::uint64_t vlen_bits_;
  Vtype vtype_{};
  std::uint64_t vl_ = 0;
  bool vtype_set_ = false;
};

}  // namespace araxl

#endif  // ARAXL_ISA_PROGRAM_HPP
