#include "isa/vtype.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace araxl {

std::uint64_t vlmax(std::uint64_t vlen_bits, Vtype vt) {
  check(is_pow2(vlen_bits) && vlen_bits >= 64 && vlen_bits <= kMaxVlenBits,
        "VLEN must be a power of two in [64, 65536]");
  check(vt.lmul.log2 >= -3 && vt.lmul.log2 <= 3, "LMUL out of range");
  const std::uint64_t per_reg = vlen_bits / sew_bits(vt.sew);
  if (vt.lmul.log2 >= 0) return per_reg << vt.lmul.log2;
  const std::uint64_t result = per_reg >> (-vt.lmul.log2);
  check(result > 0, "fractional LMUL yields VLMAX of zero");
  return result;
}

std::uint64_t vsetvl_result(std::uint64_t vlen_bits, std::uint64_t avl, Vtype vt) {
  return std::min(avl, vlmax(vlen_bits, vt));
}

std::string vtype_name(Vtype vt) {
  std::string out{sew_name(vt.sew)};
  out += ",m";
  if (vt.lmul.log2 >= 0) {
    out += std::to_string(1 << vt.lmul.log2);
  } else {
    out += 'f';
    out += std::to_string(1 << (-vt.lmul.log2));
  }
  return out;
}

}  // namespace araxl
