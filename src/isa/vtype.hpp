// vtype CSR semantics: SEW, LMUL (including fractional), and the derived
// VLMAX used by vsetvli. RISC-V V 1.0 caps VLEN at 64 Kibit per register —
// the limit AraXL is the first implementation to reach.
#ifndef ARAXL_ISA_VTYPE_HPP
#define ARAXL_ISA_VTYPE_HPP

#include <cstdint>
#include <string>

#include "isa/ew.hpp"

namespace araxl {

/// Maximum VLEN permitted by the RVV 1.0 specification (64 Kibit).
inline constexpr std::uint64_t kMaxVlenBits = 65536;

/// Number of architectural vector registers.
inline constexpr unsigned kNumVregs = 32;

/// Register-group multiplier as a signed power of two: log2(LMUL) in
/// [-3, 3] covering mf8 .. m8.
struct Lmul {
  std::int8_t log2 = 0;

  [[nodiscard]] constexpr bool fractional() const noexcept { return log2 < 0; }
  /// Number of architectural registers in a group (>= 1).
  [[nodiscard]] constexpr unsigned group_regs() const noexcept {
    return log2 <= 0 ? 1u : 1u << log2;
  }
};

constexpr Lmul kLmul1{0};
constexpr Lmul kLmul2{1};
constexpr Lmul kLmul4{2};
constexpr Lmul kLmul8{3};
constexpr Lmul kLmulF2{-1};
constexpr Lmul kLmulF4{-2};
constexpr Lmul kLmulF8{-3};

/// Decoded vtype: SEW + LMUL (tail/mask agnosticism is accepted but has no
/// behavioural effect in this model: tails are always left undisturbed).
struct Vtype {
  Sew sew = Sew::k64;
  Lmul lmul = kLmul1;

  friend bool operator==(const Vtype&, const Vtype&) = default;
};

/// VLMAX = LMUL * VLEN / SEW for a given register length.
std::uint64_t vlmax(std::uint64_t vlen_bits, Vtype vt);

/// vsetvli result: min(avl, vlmax).
std::uint64_t vsetvl_result(std::uint64_t vlen_bits, std::uint64_t avl, Vtype vt);

/// "e64,m4"-style rendering.
std::string vtype_name(Vtype vt);

}  // namespace araxl

#endif  // ARAXL_ISA_VTYPE_HPP
