// Instruction and program disassembly for debugging and tracing.
#ifndef ARAXL_ISA_DISASM_HPP
#define ARAXL_ISA_DISASM_HPP

#include <string>

#include "isa/program.hpp"

namespace araxl {

/// Renders one instruction ("vfmacc.vf v8, fs=1.5, v16").
std::string disasm(const VInstr& in);

/// Renders a full program, one op per line with indices.
std::string disasm(const Program& prog, std::size_t max_ops = 200);

}  // namespace araxl

#endif  // ARAXL_ISA_DISASM_HPP
