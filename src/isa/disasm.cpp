#include "isa/disasm.hpp"

#include "common/fmt.hpp"

namespace araxl {

std::string disasm(const VInstr& in) {
  const OpSpec& spec = op_spec(in.op);
  std::string out{spec.mnemonic};

  if (in.op == Op::kVsetvli) {
    out += " avl=" + std::to_string(in.avl) + ", " + vtype_name(in.vtype);
    return out;
  }

  bool first = true;
  const auto sep = [&]() -> std::string {
    if (first) {
      first = false;
      return " ";
    }
    return ", ";
  };

  if (spec.writes_vd || spec.reads_vd) out += sep() + "v" + std::to_string(in.vd);
  if (spec.reads_vs1) out += sep() + "v" + std::to_string(in.vs1);
  if (spec.reads_vs2) out += sep() + "v" + std::to_string(in.vs2);
  if (spec.reads_scalar_acc_ok) {
    out += sep() + (in.fs_from_acc ? std::string("fs=<acc>") : "fs=" + fmt_f(in.fs, 4));
  }
  if (in.op == Op::kVslideupVX || in.op == Op::kVslidedownVX || in.op == Op::kVaddVX ||
      in.op == Op::kVsllVX || in.op == Op::kVsrlVX || in.op == Op::kVandVX ||
      in.op == Op::kVmvVX || in.op == Op::kVmulVX || in.op == Op::kVrsubVX) {
    out += sep() + "x=" + std::to_string(in.xs);
  }
  if (spec.reads_mem || spec.writes_mem) {
    out += sep() + strprintf("0x%llx", static_cast<unsigned long long>(in.addr));
    if (in.op == Op::kVlse || in.op == Op::kVsse) {
      out += ", stride=" + std::to_string(in.stride);
    }
  }
  if (in.masked) out += ", v0.t";
  return out;
}

std::string disasm(const Program& prog, std::size_t max_ops) {
  std::string out = "program '" + prog.name + "' (" +
                    std::to_string(prog.ops.size()) + " ops, " +
                    std::to_string(prog.vinstr_count()) + " vector)\n";
  std::size_t idx = 0;
  for (const auto& op : prog.ops) {
    if (idx >= max_ops) {
      out += "  ... (" + std::to_string(prog.ops.size() - idx) + " more)\n";
      break;
    }
    out += strprintf("  %5zu: ", idx);
    if (const auto* s = std::get_if<ScalarOp>(&op)) {
      switch (s->kind) {
        case ScalarOp::Kind::kCycles:
          out += "scalar " + std::to_string(s->count) + " cycle(s)";
          break;
        case ScalarOp::Kind::kLoad: out += "scalar load"; break;
        case ScalarOp::Kind::kStore: out += "scalar store"; break;
      }
    } else {
      out += disasm(std::get<VInstr>(op));
    }
    out += '\n';
    ++idx;
  }
  return out;
}

}  // namespace araxl
