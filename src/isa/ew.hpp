// Standard element width (SEW) of the RISC-V V extension.
#ifndef ARAXL_ISA_EW_HPP
#define ARAXL_ISA_EW_HPP

#include <cstdint>
#include <string_view>

namespace araxl {

/// Selected element width. Values match the RVV vtype.vsew encoding.
enum class Sew : std::uint8_t { k8 = 0, k16 = 1, k32 = 2, k64 = 3 };

/// Element width in bits (8/16/32/64).
constexpr unsigned sew_bits(Sew s) noexcept { return 8u << static_cast<unsigned>(s); }

/// Element width in bytes (1/2/4/8).
constexpr unsigned sew_bytes(Sew s) noexcept { return 1u << static_cast<unsigned>(s); }

/// Inverse of sew_bits(); throws on invalid widths.
Sew sew_from_bits(unsigned bits);

/// "e8" / "e16" / "e32" / "e64".
std::string_view sew_name(Sew s);

}  // namespace araxl

#endif  // ARAXL_ISA_EW_HPP
