// The RVV-1.0 subset implemented by the AraXL model: the instructions the
// paper optimizes for (unit-stride memory, slide-by-1, reductions, basic
// mask operations) plus the strided/indexed accesses and utility ops that
// are "supported, albeit at lower throughput" (paper §III-A) and everything
// the six Table-I kernels need.
#ifndef ARAXL_ISA_INSTR_HPP
#define ARAXL_ISA_INSTR_HPP

#include <cstdint>
#include <string_view>

#include "isa/vtype.hpp"
#include "sim/stats.hpp"

namespace araxl {

/// Vector opcodes (assembler mnemonics in comments).
enum class Op : std::uint8_t {
  kVsetvli,      // vsetvli rd, rs1, vtypei

  // --- memory ---
  kVle,          // vle<sew>.v  vd, (rs1)
  kVse,          // vse<sew>.v  vs3, (rs1)
  kVlse,         // vlse<sew>.v vd, (rs1), rs2      (constant stride)
  kVsse,         // vsse<sew>.v vs3, (rs1), rs2
  kVluxei,       // vluxei<sew>.v vd, (rs1), vs2    (indexed/gather)
  kVsuxei,       // vsuxei<sew>.v vs3, (rs1), vs2   (indexed/scatter)

  // --- floating point arithmetic ---
  kVfaddVV,      // vfadd.vv vd, vs2, vs1
  kVfaddVF,      // vfadd.vf vd, vs2, rs1
  kVfsubVV,      // vfsub.vv vd, vs2, vs1
  kVfsubVF,      // vfsub.vf vd, vs2, rs1
  kVfrsubVF,     // vfrsub.vf vd, vs2, rs1          (rs1 - vs2)
  kVfmulVV,      // vfmul.vv vd, vs2, vs1
  kVfmulVF,      // vfmul.vf vd, vs2, rs1
  kVfdivVV,      // vfdiv.vv vd, vs2, vs1
  kVfdivVF,      // vfdiv.vf vd, vs2, rs1
  kVfrdivVF,     // vfrdiv.vf vd, vs2, rs1          (rs1 / vs2)
  kVfmaccVV,     // vfmacc.vv vd, vs1, vs2          (vd += vs1*vs2)
  kVfmaccVF,     // vfmacc.vf vd, rs1, vs2          (vd += fs*vs2)
  kVfnmsacVV,    // vfnmsac.vv vd, vs1, vs2         (vd -= vs1*vs2)
  kVfnmsacVF,    // vfnmsac.vf vd, rs1, vs2         (vd -= fs*vs2)
  kVfmaddVF,     // vfmadd.vf vd, rs1, vs2          (vd = vd*fs + vs2)
  kVfmaddVV,     // vfmadd.vv vd, vs1, vs2          (vd = vd*vs1 + vs2)
  kVfmsacVF,     // vfmsac.vf vd, rs1, vs2          (vd = fs*vs2 - vd)
  kVfminVV,      // vfmin.vv vd, vs2, vs1
  kVfminVF,      // vfmin.vf vd, vs2, rs1
  kVfmaxVV,      // vfmax.vv vd, vs2, vs1
  kVfmaxVF,      // vfmax.vf vd, vs2, rs1
  kVfsgnjVV,     // vfsgnj.vv vd, vs2, vs1
  kVfsgnjnVV,    // vfsgnjn.vv vd, vs2, vs1         (vfneg when vs1 == vs2)
  kVfcvtXF,      // vfcvt.x.f.v vd, vs2             (round to nearest even)
  kVfcvtFX,      // vfcvt.f.x.v vd, vs2

  // --- integer / moves ---
  kVaddVV,       // vadd.vv vd, vs2, vs1
  kVaddVX,       // vadd.vx vd, vs2, rs1
  kVsubVV,       // vsub.vv vd, vs2, vs1
  kVsllVX,       // vsll.vx vd, vs2, rs1
  kVsrlVX,       // vsrl.vx vd, vs2, rs1
  kVandVX,       // vand.vx vd, vs2, rs1
  kVmvVX,        // vmv.v.x vd, rs1
  kVmvVV,        // vmv.v.v vd, vs1
  kVfmvVF,       // vfmv.v.f vd, rs1
  kVfmvFS,       // vfmv.f.s rd, vs2                (scalar result)
  kVfmvSF,       // vfmv.s.f vd, rs1                (writes element 0)
  kVidV,         // vid.v vd

  // --- reductions ---
  kVfredusum,    // vfredusum.vs vd, vs2, vs1
  kVfredmax,     // vfredmax.vs vd, vs2, vs1
  kVfredmin,     // vfredmin.vs vd, vs2, vs1

  // --- permutation ---
  kVfslide1up,   // vfslide1up.vf vd, vs2, rs1
  kVfslide1down, // vfslide1down.vf vd, vs2, rs1
  kVslideupVX,   // vslideup.vx vd, vs2, rs1
  kVslidedownVX, // vslidedown.vx vd, vs2, rs1

  // --- mask ---
  kVmfeqVV,      // vmfeq.vv vd, vs2, vs1
  kVmfltVV,      // vmflt.vv vd, vs2, vs1
  kVmfleVV,      // vmfle.vv vd, vs2, vs1
  kVmfltVF,      // vmflt.vf vd, vs2, rs1
  kVmfleVF,      // vmfle.vf vd, vs2, rs1
  kVmfgtVF,      // vmfgt.vf vd, vs2, rs1
  kVmfgeVF,      // vmfge.vf vd, vs2, rs1
  kVmandMM,      // vmand.mm vd, vs2, vs1
  kVmorMM,       // vmor.mm vd, vs2, vs1
  kVmxorMM,      // vmxor.mm vd, vs2, vs1
  kVmandnMM,     // vmandn.mm vd, vs2, vs1
  kVmergeVVM,    // vmerge.vvm vd, vs2, vs1, v0
  kVfmergeVFM,   // vfmerge.vfm vd, vs2, rs1, v0

  // --- widening floating point (EEW = 2*SEW destination) ---
  kVfwaddVV,     // vfwadd.vv vd, vs2, vs1
  kVfwsubVV,     // vfwsub.vv vd, vs2, vs1
  kVfwmulVV,     // vfwmul.vv vd, vs2, vs1
  kVfwmaccVV,    // vfwmacc.vv vd, vs1, vs2     (vd += vs1*vs2, vd wide)
  kVfsqrtV,      // vfsqrt.v vd, vs2            (unpipelined like fdiv)

  // --- register gather / compress (all-to-all permutations) ---
  kVrgatherVV,   // vrgather.vv vd, vs2, vs1    (vd[i] = vs2[vs1[i]])
  kVcompressVM,  // vcompress.vm vd, vs2, vs1   (pack vs2 where mask vs1)

  // --- mask population ---
  kVcpopM,       // vcpop.m rd, vs2             (scalar result)
  kVfirstM,      // vfirst.m rd, vs2            (scalar result, -1 if none)
  kViotaM,       // viota.m vd, vs2             (prefix popcount)
  kVmsbfM,       // vmsbf.m vd, vs2             (set-before-first)
  kVmsifM,       // vmsif.m vd, vs2             (set-including-first)
  kVmsofM,       // vmsof.m vd, vs2             (set-only-first)

  // --- additional integer ---
  kVmulVV,       // vmul.vv vd, vs2, vs1
  kVmulVX,       // vmul.vx vd, vs2, rs1
  kVmaccVV,      // vmacc.vv vd, vs1, vs2       (vd += vs1*vs2)
  kVrsubVX,      // vrsub.vx vd, vs2, rs1       (rs1 - vs2)
  kVmaxVV,       // vmax.vv vd, vs2, vs1        (signed)
  kVminVV,       // vmin.vv vd, vs2, vs1        (signed)
};

/// Number of opcodes (for property tables and exhaustive tests).
inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kVminVV) + 1;

/// One decoded vector instruction as issued by CVA6 over the REQI.
struct VInstr {
  Op op = Op::kVsetvli;
  std::uint8_t vd = 0;   ///< destination register (or store data register)
  std::uint8_t vs1 = 0;  ///< first vector source
  std::uint8_t vs2 = 0;  ///< second vector source
  bool masked = false;   ///< vm=0: execution masked by v0

  double fs = 0.0;        ///< scalar FP operand (rs1 of .vf forms)
  std::int64_t xs = 0;    ///< scalar integer operand (.vx forms, slide amount)
  bool fs_from_acc = false;  ///< take fs from the machine's scalar FP
                             ///< accumulator (value of the last vfmv.f.s)

  std::uint64_t addr = 0;   ///< base address for memory operations
  std::int64_t stride = 0;  ///< byte stride for vlse/vsse

  std::uint64_t avl = 0;  ///< application vector length (vsetvli only)
  Vtype vtype{};          ///< requested vtype (vsetvli only)
};

/// Static properties of an opcode used by both the functional model and the
/// timing engine.
struct OpSpec {
  std::string_view mnemonic;
  Unit unit = Unit::kNone;
  bool reads_vs1 = false;
  bool reads_vs2 = false;
  bool reads_vd = false;    ///< FMA family, stores, merges, partial slides
  bool writes_vd = false;
  bool reads_mem = false;
  bool writes_mem = false;
  bool writes_mask = false;   ///< destination uses the mask layout
  bool reads_scalar_acc_ok = false;  ///< .vf form that may use fs_from_acc
  bool returns_scalar = false;       ///< CVA6 blocks on the result
  bool is_reduction = false;
  bool is_slide = false;
  bool widens = false;     ///< destination EEW is 2*SEW (2*LMUL registers)
  bool is_gather = false;  ///< all-to-all permutation (vrgather/vcompress)
  bool reads_mask_src = false;  ///< vs2 (and vs1) read as mask bit vectors
  std::uint8_t flops_per_elem = 0;  ///< DP-FLOP accounting (FMA = 2)
};

/// Property lookup for `op`.
const OpSpec& op_spec(Op op);

/// Convenience predicates.
bool is_mem_op(Op op);
bool is_arith_fp(Op op);

}  // namespace araxl

#endif  // ARAXL_ISA_INSTR_HPP
