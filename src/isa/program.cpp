#include "isa/program.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace araxl {

std::size_t Program::vinstr_count() const {
  std::size_t n = 0;
  for (const auto& op : ops) n += std::holds_alternative<VInstr>(op) ? 1 : 0;
  return n;
}

std::size_t Program::scalar_op_count() const { return ops.size() - vinstr_count(); }

OpKey op_key(const ProgOp& op, std::uint64_t vlen_bits) {
  OpKey k;
  if (const auto* s = std::get_if<ScalarOp>(&op)) {
    k.tag = 0;
    k.op = static_cast<std::uint32_t>(s->kind);
    k.value = s->count;
    return k;
  }
  const VInstr& in = std::get<VInstr>(op);
  k.tag = 1;
  k.op = static_cast<std::uint32_t>(in.op);
  k.regs = static_cast<std::uint32_t>(in.vd) |
           (static_cast<std::uint32_t>(in.vs1) << 8) |
           (static_cast<std::uint32_t>(in.vs2) << 16) |
           (static_cast<std::uint32_t>(in.masked ? 1 : 0) << 24);
  if (in.op == Op::kVsetvli) {
    k.vtype = static_cast<std::uint32_t>(sew_bits(in.vtype.sew)) |
              (static_cast<std::uint32_t>(in.vtype.lmul.log2 + 8) << 16);
    k.value = vsetvl_result(vlen_bits, in.avl, in.vtype);
  }
  k.xs = static_cast<std::uint64_t>(in.xs);
  k.stride = static_cast<std::uint64_t>(in.stride);
  return k;
}

std::vector<LoopRegion> find_loop_regions(const std::vector<OpKey>& keys,
                                          std::size_t max_period) {
  std::vector<LoopRegion> out;
  const std::size_t n = keys.size();
  std::size_t i = 0;
  while (i < n) {
    bool found = false;
    const std::size_t p_cap = std::min(max_period, (n - i) / 2);
    for (std::size_t p = 1; p <= p_cap; ++p) {
      // Cheap prefilter before the O(p) window compare.
      if (keys[i] != keys[i + p]) continue;
      std::size_t j = 1;
      while (j < p && keys[i + j] == keys[i + p + j]) ++j;
      if (j < p) continue;
      std::size_t e = i + 2 * p;
      while (e < n && keys[e] == keys[e - p]) ++e;
      out.push_back(LoopRegion{i, e, p});
      i = e;
      found = true;
      break;  // smallest period wins
    }
    if (!found) ++i;
  }
  return out;
}

LoopNest find_loop_nest(const Program& prog, const LoopRegion& region) {
  const std::size_t p = region.period;
  LoopNest nest;
  if (p == 0) return nest;
  bool have_class = false;
  for (std::size_t c = 0; c < p; ++c) {
    const std::size_t first = region.start + c;
    if (first >= region.end) break;
    const auto* in = std::get_if<VInstr>(&prog.ops[first]);
    if (in == nullptr) continue;
    if (in->op != Op::kVle && in->op != Op::kVse && in->op != Op::kVlse &&
        in->op != Op::kVsse) {
      continue;
    }
    // Per-period address deltas of this position class.
    std::vector<std::uint64_t> d;
    for (std::size_t i = first; i + p < region.end; i += p) {
      const auto& a = std::get<VInstr>(prog.ops[i]);
      const auto& b = std::get<VInstr>(prog.ops[i + p]);
      d.push_back(b.addr - a.addr);  // wrap-safe: compared for equality only
    }
    if (d.empty()) continue;
    bool constant = true;
    for (const std::uint64_t v : d) constant = constant && v == d[0];
    if (constant) continue;  // 1D stream riding inside the nest
    // Exactly two delta values: a majority "row step" and a minority "jump".
    std::uint64_t u = d[0];
    std::uint64_t v = 0;
    bool have_v = false;
    std::size_t cu = 0;
    std::size_t cv = 0;
    for (const std::uint64_t x : d) {
      if (x == u) {
        ++cu;
      } else if (!have_v || x == v) {
        v = x;
        have_v = true;
        ++cv;
      } else {
        return LoopNest{};  // three distinct deltas: not a two-level nest
      }
    }
    if (cu == cv) return LoopNest{};  // ambiguous which value is the jump
    const std::uint64_t jump = cu > cv ? v : u;
    std::vector<std::size_t> jumps;
    for (std::size_t q = 0; q < d.size(); ++q) {
      if (d[q] == jump) jumps.push_back(q);
    }
    if (jumps.size() < 2) return LoopNest{};  // can't establish periodicity
    const std::size_t r = jumps[1] - jumps[0];
    if (r < 2) return LoopNest{};
    for (std::size_t j = 1; j < jumps.size(); ++j) {
      if (jumps[j] - jumps[j - 1] != r) return LoopNest{};
    }
    // The window before the first jump and after the last must also fit the
    // period, or the jumps are not actually periodic over the region.
    if (jumps[0] >= r || d.size() - 1 - jumps.back() >= r) return LoopNest{};
    const std::size_t phase = jumps[0] % r;
    if (have_class && (nest.outer_period != r || nest.phase != phase)) {
      return LoopNest{};  // classes disagree on the outer loop
    }
    nest.outer_period = r;
    nest.phase = phase;
    have_class = true;
  }
  nest.valid = have_class;
  return nest;
}

ProgramBuilder::ProgramBuilder(std::uint64_t vlen_bits, std::string name)
    : vlen_bits_(vlen_bits) {
  check(is_pow2(vlen_bits) && vlen_bits >= 64 && vlen_bits <= kMaxVlenBits,
        "VLEN must be a power of two in [64, 65536]");
  prog_.name = std::move(name);
}

void ProgramBuilder::scalar_cycles(std::uint32_t n) {
  if (n == 0) return;
  prog_.ops.emplace_back(ScalarOp{ScalarOp::Kind::kCycles, n});
}

void ProgramBuilder::scalar_load() {
  prog_.ops.emplace_back(ScalarOp{ScalarOp::Kind::kLoad, 1});
}

void ProgramBuilder::scalar_store() {
  prog_.ops.emplace_back(ScalarOp{ScalarOp::Kind::kStore, 1});
}

std::uint64_t ProgramBuilder::vlmax(Sew sew, Lmul lmul) const {
  return araxl::vlmax(vlen_bits_, Vtype{sew, lmul});
}

std::uint64_t ProgramBuilder::vsetvli(std::uint64_t avl, Sew sew, Lmul lmul) {
  vtype_ = Vtype{sew, lmul};
  vl_ = vsetvl_result(vlen_bits_, avl, vtype_);
  vtype_set_ = true;
  VInstr in;
  in.op = Op::kVsetvli;
  in.avl = avl;
  in.vtype = vtype_;
  prog_.ops.emplace_back(in);
  return vl_;
}

void ProgramBuilder::check_vreg(unsigned v, bool grouped) const {
  check(v < kNumVregs, "vector register index out of range");
  if (grouped && vtype_set_) {
    const unsigned group = vtype_.lmul.group_regs();
    check(v % group == 0, "vector register not aligned to LMUL group");
  }
}

VInstr ProgramBuilder::make(Op op, unsigned vd, unsigned vs1, unsigned vs2,
                            bool masked) const {
  check(vtype_set_, "vsetvli must precede vector instructions");
  const OpSpec& spec = op_spec(op);
  // Single-element accesses (vfmv.s.f destination, vfmv.f.s source) are
  // exempt from LMUL register-group alignment, as are mask destinations.
  const bool vd_grouped = !spec.writes_mask && op != Op::kVfmvSF;
  if (spec.writes_vd || spec.reads_vd) check_vreg(vd, vd_grouped);
  if (spec.reads_vs1) check_vreg(vs1);
  if (spec.reads_vs2) check_vreg(vs2, op != Op::kVfmvFS);
  if (masked && spec.writes_vd && !spec.writes_mask) {
    check(vd != 0, "masked op may not write v0");
  }
  VInstr in;
  in.op = op;
  in.vd = static_cast<std::uint8_t>(vd);
  in.vs1 = static_cast<std::uint8_t>(vs1);
  in.vs2 = static_cast<std::uint8_t>(vs2);
  in.masked = masked;
  return in;
}

void ProgramBuilder::push(VInstr in) { prog_.ops.emplace_back(in); }

// ---- memory ---------------------------------------------------------------

void ProgramBuilder::vle(unsigned vd, std::uint64_t addr, bool masked) {
  VInstr in = make(Op::kVle, vd, 0, 0, masked);
  in.addr = addr;
  push(in);
}

void ProgramBuilder::vse(unsigned vs3, std::uint64_t addr, bool masked) {
  VInstr in = make(Op::kVse, vs3, 0, 0, masked);
  in.addr = addr;
  push(in);
}

void ProgramBuilder::vlse(unsigned vd, std::uint64_t addr, std::int64_t stride_bytes) {
  VInstr in = make(Op::kVlse, vd, 0, 0, false);
  in.addr = addr;
  in.stride = stride_bytes;
  push(in);
}

void ProgramBuilder::vsse(unsigned vs3, std::uint64_t addr, std::int64_t stride_bytes) {
  VInstr in = make(Op::kVsse, vs3, 0, 0, false);
  in.addr = addr;
  in.stride = stride_bytes;
  push(in);
}

void ProgramBuilder::vluxei(unsigned vd, std::uint64_t base, unsigned index_vreg) {
  VInstr in = make(Op::kVluxei, vd, 0, index_vreg, false);
  in.addr = base;
  push(in);
}

void ProgramBuilder::vsuxei(unsigned vs3, std::uint64_t base, unsigned index_vreg) {
  VInstr in = make(Op::kVsuxei, vs3, 0, index_vreg, false);
  in.addr = base;
  push(in);
}

// ---- floating point ---------------------------------------------------------

namespace {
VInstr with_fs(VInstr in, double fs) {
  in.fs = fs;
  return in;
}
VInstr with_acc(VInstr in) {
  in.fs_from_acc = true;
  return in;
}
}  // namespace

void ProgramBuilder::vfadd_vv(unsigned vd, unsigned vs2, unsigned vs1, bool masked) {
  push(make(Op::kVfaddVV, vd, vs1, vs2, masked));
}
void ProgramBuilder::vfadd_vf(unsigned vd, unsigned vs2, double fs, bool masked) {
  push(with_fs(make(Op::kVfaddVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfsub_vv(unsigned vd, unsigned vs2, unsigned vs1, bool masked) {
  push(make(Op::kVfsubVV, vd, vs1, vs2, masked));
}
void ProgramBuilder::vfsub_vf(unsigned vd, unsigned vs2, double fs, bool masked) {
  push(with_fs(make(Op::kVfsubVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfrsub_vf(unsigned vd, unsigned vs2, double fs, bool masked) {
  push(with_fs(make(Op::kVfrsubVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfmul_vv(unsigned vd, unsigned vs2, unsigned vs1, bool masked) {
  push(make(Op::kVfmulVV, vd, vs1, vs2, masked));
}
void ProgramBuilder::vfmul_vf(unsigned vd, unsigned vs2, double fs, bool masked) {
  push(with_fs(make(Op::kVfmulVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfdiv_vv(unsigned vd, unsigned vs2, unsigned vs1, bool masked) {
  push(make(Op::kVfdivVV, vd, vs1, vs2, masked));
}
void ProgramBuilder::vfdiv_vf(unsigned vd, unsigned vs2, double fs, bool masked) {
  push(with_fs(make(Op::kVfdivVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfrdiv_vf(unsigned vd, unsigned vs2, double fs, bool masked) {
  push(with_fs(make(Op::kVfrdivVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfmacc_vv(unsigned vd, unsigned vs1, unsigned vs2, bool masked) {
  push(make(Op::kVfmaccVV, vd, vs1, vs2, masked));
}
void ProgramBuilder::vfmacc_vf(unsigned vd, double fs, unsigned vs2, bool masked) {
  push(with_fs(make(Op::kVfmaccVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfnmsac_vv(unsigned vd, unsigned vs1, unsigned vs2, bool masked) {
  push(make(Op::kVfnmsacVV, vd, vs1, vs2, masked));
}
void ProgramBuilder::vfnmsac_vf(unsigned vd, double fs, unsigned vs2, bool masked) {
  push(with_fs(make(Op::kVfnmsacVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfmadd_vf(unsigned vd, double fs, unsigned vs2, bool masked) {
  push(with_fs(make(Op::kVfmaddVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfmadd_vv(unsigned vd, unsigned vs1, unsigned vs2, bool masked) {
  push(make(Op::kVfmaddVV, vd, vs1, vs2, masked));
}
void ProgramBuilder::vfmsac_vf(unsigned vd, double fs, unsigned vs2, bool masked) {
  push(with_fs(make(Op::kVfmsacVF, vd, 0, vs2, masked), fs));
}
void ProgramBuilder::vfmin_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVfminVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vfmin_vf(unsigned vd, unsigned vs2, double fs) {
  push(with_fs(make(Op::kVfminVF, vd, 0, vs2, false), fs));
}
void ProgramBuilder::vfmax_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVfmaxVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vfmax_vf(unsigned vd, unsigned vs2, double fs) {
  push(with_fs(make(Op::kVfmaxVF, vd, 0, vs2, false), fs));
}
void ProgramBuilder::vfsgnj_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVfsgnjVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vfsgnjn_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVfsgnjnVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vfabs(unsigned vd, unsigned vs) {
  // |x| = sgnj(x, +x is not enough); canonical expansion uses vfsgnjx, we
  // approximate with sgnj against a non-negative of itself via two ops is
  // overkill — model provides sgnj semantics, so reuse: vfsgnj.vv vd,vs,vs
  // only copies; use max(x, -x) instead to stay in the implemented subset.
  push(make(Op::kVfsgnjnVV, vd, vs, vs, false));  // vd = -vs
  push(make(Op::kVfmaxVV, vd, vd, vs, false));    // vd = max(vs, -vs)
}
void ProgramBuilder::vfneg(unsigned vd, unsigned vs) {
  push(make(Op::kVfsgnjnVV, vd, vs, vs, false));
}
void ProgramBuilder::vfcvt_x_f(unsigned vd, unsigned vs2) {
  push(make(Op::kVfcvtXF, vd, 0, vs2, false));
}
void ProgramBuilder::vfcvt_f_x(unsigned vd, unsigned vs2) {
  push(make(Op::kVfcvtFX, vd, 0, vs2, false));
}

// ---- integer / moves --------------------------------------------------------

void ProgramBuilder::vadd_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVaddVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vadd_vx(unsigned vd, unsigned vs2, std::int64_t xs) {
  VInstr in = make(Op::kVaddVX, vd, 0, vs2, false);
  in.xs = xs;
  push(in);
}
void ProgramBuilder::vsub_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVsubVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vsll_vx(unsigned vd, unsigned vs2, std::int64_t shamt) {
  VInstr in = make(Op::kVsllVX, vd, 0, vs2, false);
  in.xs = shamt;
  push(in);
}
void ProgramBuilder::vsrl_vx(unsigned vd, unsigned vs2, std::int64_t shamt) {
  VInstr in = make(Op::kVsrlVX, vd, 0, vs2, false);
  in.xs = shamt;
  push(in);
}
void ProgramBuilder::vand_vx(unsigned vd, unsigned vs2, std::int64_t xs) {
  VInstr in = make(Op::kVandVX, vd, 0, vs2, false);
  in.xs = xs;
  push(in);
}
void ProgramBuilder::vmv_v_x(unsigned vd, std::int64_t xs) {
  VInstr in = make(Op::kVmvVX, vd, 0, 0, false);
  in.xs = xs;
  push(in);
}
void ProgramBuilder::vmv_v_v(unsigned vd, unsigned vs1) {
  push(make(Op::kVmvVV, vd, vs1, 0, false));
}
void ProgramBuilder::vfmv_v_f(unsigned vd, double fs) {
  push(with_fs(make(Op::kVfmvVF, vd, 0, 0, false), fs));
}
void ProgramBuilder::vfmv_f_s(unsigned vs2) {
  push(make(Op::kVfmvFS, 0, 0, vs2, false));
}
void ProgramBuilder::vfmv_s_f(unsigned vd, double fs) {
  push(with_fs(make(Op::kVfmvSF, vd, 0, 0, false), fs));
}
void ProgramBuilder::vid_v(unsigned vd) { push(make(Op::kVidV, vd, 0, 0, false)); }

void ProgramBuilder::vfmul_vf_acc(unsigned vd, unsigned vs2) {
  push(with_acc(make(Op::kVfmulVF, vd, 0, vs2, false)));
}
void ProgramBuilder::vfadd_vf_acc(unsigned vd, unsigned vs2) {
  push(with_acc(make(Op::kVfaddVF, vd, 0, vs2, false)));
}
void ProgramBuilder::vfsub_vf_acc(unsigned vd, unsigned vs2, bool masked) {
  push(with_acc(make(Op::kVfsubVF, vd, 0, vs2, masked)));
}
void ProgramBuilder::vfrdiv_vf_acc(unsigned vd, unsigned vs2) {
  push(with_acc(make(Op::kVfrdivVF, vd, 0, vs2, false)));
}
void ProgramBuilder::vfmv_v_f_acc(unsigned vd) {
  push(with_acc(make(Op::kVfmvVF, vd, 0, 0, false)));
}

// ---- reductions -------------------------------------------------------------

void ProgramBuilder::vfredusum(unsigned vd, unsigned vs2, unsigned vs1) {
  // Scalar operand register vs1 and destination hold a single element; they
  // are exempt from LMUL group alignment per the RVV spec.
  check(vtype_set_, "vsetvli must precede vector instructions");
  check_vreg(vs2);
  check(vd < kNumVregs && vs1 < kNumVregs, "vector register index out of range");
  VInstr in;
  in.op = Op::kVfredusum;
  in.vd = static_cast<std::uint8_t>(vd);
  in.vs1 = static_cast<std::uint8_t>(vs1);
  in.vs2 = static_cast<std::uint8_t>(vs2);
  push(in);
}
void ProgramBuilder::vfredmax(unsigned vd, unsigned vs2, unsigned vs1) {
  check(vtype_set_, "vsetvli must precede vector instructions");
  check_vreg(vs2);
  check(vd < kNumVregs && vs1 < kNumVregs, "vector register index out of range");
  VInstr in;
  in.op = Op::kVfredmax;
  in.vd = static_cast<std::uint8_t>(vd);
  in.vs1 = static_cast<std::uint8_t>(vs1);
  in.vs2 = static_cast<std::uint8_t>(vs2);
  push(in);
}
void ProgramBuilder::vfredmin(unsigned vd, unsigned vs2, unsigned vs1) {
  check(vtype_set_, "vsetvli must precede vector instructions");
  check_vreg(vs2);
  check(vd < kNumVregs && vs1 < kNumVregs, "vector register index out of range");
  VInstr in;
  in.op = Op::kVfredmin;
  in.vd = static_cast<std::uint8_t>(vd);
  in.vs1 = static_cast<std::uint8_t>(vs1);
  in.vs2 = static_cast<std::uint8_t>(vs2);
  push(in);
}

// ---- permutation ------------------------------------------------------------

void ProgramBuilder::vfslide1up(unsigned vd, unsigned vs2, double fs) {
  check(vd != vs2, "slide destination must not overlap source");
  push(with_fs(make(Op::kVfslide1up, vd, 0, vs2, false), fs));
}
void ProgramBuilder::vfslide1down(unsigned vd, unsigned vs2, double fs) {
  push(with_fs(make(Op::kVfslide1down, vd, 0, vs2, false), fs));
}
void ProgramBuilder::vslideup_vx(unsigned vd, unsigned vs2, std::uint64_t amount) {
  check(vd != vs2, "slide destination must not overlap source");
  VInstr in = make(Op::kVslideupVX, vd, 0, vs2, false);
  in.xs = static_cast<std::int64_t>(amount);
  push(in);
}
void ProgramBuilder::vslidedown_vx(unsigned vd, unsigned vs2, std::uint64_t amount) {
  VInstr in = make(Op::kVslidedownVX, vd, 0, vs2, false);
  in.xs = static_cast<std::int64_t>(amount);
  push(in);
}

// ---- mask -------------------------------------------------------------------

void ProgramBuilder::vmfeq_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmfeqVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vmflt_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmfltVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vmfle_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmfleVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vmflt_vf(unsigned vd, unsigned vs2, double fs) {
  push(with_fs(make(Op::kVmfltVF, vd, 0, vs2, false), fs));
}
void ProgramBuilder::vmfle_vf(unsigned vd, unsigned vs2, double fs) {
  push(with_fs(make(Op::kVmfleVF, vd, 0, vs2, false), fs));
}
void ProgramBuilder::vmfgt_vf(unsigned vd, unsigned vs2, double fs) {
  push(with_fs(make(Op::kVmfgtVF, vd, 0, vs2, false), fs));
}
void ProgramBuilder::vmfge_vf(unsigned vd, unsigned vs2, double fs) {
  push(with_fs(make(Op::kVmfgeVF, vd, 0, vs2, false), fs));
}
void ProgramBuilder::vmand_mm(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmandMM, vd, vs1, vs2, false));
}
void ProgramBuilder::vmor_mm(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmorMM, vd, vs1, vs2, false));
}
void ProgramBuilder::vmxor_mm(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmxorMM, vd, vs1, vs2, false));
}
void ProgramBuilder::vmandn_mm(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmandnMM, vd, vs1, vs2, false));
}
void ProgramBuilder::vmerge_vvm(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmergeVVM, vd, vs1, vs2, true));
}
void ProgramBuilder::vfmerge_vfm(unsigned vd, unsigned vs2, double fs) {
  push(with_fs(make(Op::kVfmergeVFM, vd, 0, vs2, true), fs));
}

// ---- widening FP --------------------------------------------------------------

namespace {
void check_no_overlap(unsigned base_a, unsigned count_a, unsigned base_b,
                      unsigned count_b) {
  check(base_a + count_a <= base_b || base_b + count_b <= base_a,
        "destination group overlaps a source group");
}
}  // namespace

VInstr ProgramBuilder::make_widening(Op op, unsigned vd, unsigned vs1,
                                     unsigned vs2) {
  check(vtype_set_, "vsetvli must precede vector instructions");
  check(vtype_.sew == Sew::k32, "widening ops require SEW=32 sources");
  const unsigned g = vtype_.lmul.group_regs();
  check(vd < kNumVregs && vd % (2 * g) == 0,
        "widening destination must align to a 2xLMUL group");
  check_vreg(vs1);
  check_vreg(vs2);
  check_no_overlap(vd, 2 * g, vs1, g);
  check_no_overlap(vd, 2 * g, vs2, g);
  VInstr in;
  in.op = op;
  in.vd = static_cast<std::uint8_t>(vd);
  in.vs1 = static_cast<std::uint8_t>(vs1);
  in.vs2 = static_cast<std::uint8_t>(vs2);
  return in;
}

void ProgramBuilder::vfwadd_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make_widening(Op::kVfwaddVV, vd, vs1, vs2));
}
void ProgramBuilder::vfwsub_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make_widening(Op::kVfwsubVV, vd, vs1, vs2));
}
void ProgramBuilder::vfwmul_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make_widening(Op::kVfwmulVV, vd, vs1, vs2));
}
void ProgramBuilder::vfwmacc_vv(unsigned vd, unsigned vs1, unsigned vs2) {
  push(make_widening(Op::kVfwmaccVV, vd, vs1, vs2));
}
void ProgramBuilder::vfsqrt_v(unsigned vd, unsigned vs2) {
  push(make(Op::kVfsqrtV, vd, 0, vs2, false));
}

// ---- gather / compress ----------------------------------------------------------

void ProgramBuilder::vrgather_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  check(vd != vs2 && vd != vs1, "vrgather destination must not overlap sources");
  push(make(Op::kVrgatherVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vcompress_vm(unsigned vd, unsigned vs2, unsigned vs1) {
  check(vd != vs2 && vd != vs1, "vcompress destination must not overlap sources");
  check(vtype_set_, "vsetvli must precede vector instructions");
  check_vreg(vd);
  check_vreg(vs2);
  check(vs1 < kNumVregs, "vector register index out of range");  // mask reg
  VInstr in;
  in.op = Op::kVcompressVM;
  in.vd = static_cast<std::uint8_t>(vd);
  in.vs1 = static_cast<std::uint8_t>(vs1);
  in.vs2 = static_cast<std::uint8_t>(vs2);
  push(in);
}

// ---- mask population --------------------------------------------------------------

void ProgramBuilder::vcpop_m(unsigned vs2) {
  check(vtype_set_, "vsetvli must precede vector instructions");
  check(vs2 < kNumVregs, "vector register index out of range");
  VInstr in;
  in.op = Op::kVcpopM;
  in.vs2 = static_cast<std::uint8_t>(vs2);
  push(in);
}
void ProgramBuilder::vfirst_m(unsigned vs2) {
  check(vtype_set_, "vsetvli must precede vector instructions");
  check(vs2 < kNumVregs, "vector register index out of range");
  VInstr in;
  in.op = Op::kVfirstM;
  in.vs2 = static_cast<std::uint8_t>(vs2);
  push(in);
}
void ProgramBuilder::viota_m(unsigned vd, unsigned vs2) {
  check(vd != vs2, "viota destination must not overlap the mask source");
  VInstr in = make(Op::kViotaM, vd, 0, 0, false);
  in.vs2 = static_cast<std::uint8_t>(vs2);  // mask source: no group alignment
  check(vs2 < kNumVregs, "vector register index out of range");
  push(in);
}
void ProgramBuilder::vmsbf_m(unsigned vd, unsigned vs2) {
  check(vd != vs2, "mask-set ops must not overlap their source");
  push(make(Op::kVmsbfM, vd, 0, vs2, false));
}
void ProgramBuilder::vmsif_m(unsigned vd, unsigned vs2) {
  check(vd != vs2, "mask-set ops must not overlap their source");
  push(make(Op::kVmsifM, vd, 0, vs2, false));
}
void ProgramBuilder::vmsof_m(unsigned vd, unsigned vs2) {
  check(vd != vs2, "mask-set ops must not overlap their source");
  push(make(Op::kVmsofM, vd, 0, vs2, false));
}

// ---- additional integer -------------------------------------------------------------

void ProgramBuilder::vmul_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmulVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vmul_vx(unsigned vd, unsigned vs2, std::int64_t xs) {
  VInstr in = make(Op::kVmulVX, vd, 0, vs2, false);
  in.xs = xs;
  push(in);
}
void ProgramBuilder::vmacc_vv(unsigned vd, unsigned vs1, unsigned vs2) {
  push(make(Op::kVmaccVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vrsub_vx(unsigned vd, unsigned vs2, std::int64_t xs) {
  VInstr in = make(Op::kVrsubVX, vd, 0, vs2, false);
  in.xs = xs;
  push(in);
}
void ProgramBuilder::vmax_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVmaxVV, vd, vs1, vs2, false));
}
void ProgramBuilder::vmin_vv(unsigned vd, unsigned vs2, unsigned vs1) {
  push(make(Op::kVminVV, vd, vs1, vs2, false));
}

Program ProgramBuilder::take() {
  Program out = std::move(prog_);
  prog_ = Program{};
  prog_.name = out.name;
  vtype_set_ = false;
  vl_ = 0;
  return out;
}

}  // namespace araxl
