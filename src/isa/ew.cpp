#include "isa/ew.hpp"

#include "common/contracts.hpp"

namespace araxl {

Sew sew_from_bits(unsigned bits) {
  switch (bits) {
    case 8: return Sew::k8;
    case 16: return Sew::k16;
    case 32: return Sew::k32;
    case 64: return Sew::k64;
    default: fail("invalid SEW bit width");
  }
}

std::string_view sew_name(Sew s) {
  switch (s) {
    case Sew::k8: return "e8";
    case Sew::k16: return "e16";
    case Sew::k32: return "e32";
    case Sew::k64: return "e64";
  }
  return "?";
}

}  // namespace araxl
