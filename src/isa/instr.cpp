#include "isa/instr.hpp"

#include <array>

#include "common/contracts.hpp"

namespace araxl {
namespace {

// Shorthand for building the opcode property table. Flags are listed
// explicitly per opcode because almost every combination occurs at least
// once and a compact DSL would obscure the semantics.
struct SpecBuilder {
  OpSpec s;
  explicit SpecBuilder(std::string_view mnemonic, Unit unit) {
    s.mnemonic = mnemonic;
    s.unit = unit;
  }
  SpecBuilder& r1() { s.reads_vs1 = true; return *this; }
  SpecBuilder& r2() { s.reads_vs2 = true; return *this; }
  SpecBuilder& rd() { s.reads_vd = true; return *this; }
  SpecBuilder& wd() { s.writes_vd = true; return *this; }
  SpecBuilder& rmem() { s.reads_mem = true; return *this; }
  SpecBuilder& wmem() { s.writes_mem = true; return *this; }
  SpecBuilder& wmask() { s.writes_mask = true; return *this; }
  SpecBuilder& acc() { s.reads_scalar_acc_ok = true; return *this; }
  SpecBuilder& ret() { s.returns_scalar = true; return *this; }
  SpecBuilder& red() { s.is_reduction = true; return *this; }
  SpecBuilder& sld() { s.is_slide = true; return *this; }
  SpecBuilder& wide() { s.widens = true; return *this; }
  SpecBuilder& gat() { s.is_gather = true; return *this; }
  SpecBuilder& msrc() { s.reads_mask_src = true; return *this; }
  SpecBuilder& fl(std::uint8_t n) { s.flops_per_elem = n; return *this; }
  operator OpSpec() const { return s; }  // NOLINT(google-explicit-constructor)
};

using B = SpecBuilder;

const std::array<OpSpec, kNumOps> kSpecs = {
    // config
    OpSpec(B("vsetvli", Unit::kNone).ret()),
    // memory
    OpSpec(B("vle64.v", Unit::kLoad).wd().rmem()),
    OpSpec(B("vse64.v", Unit::kStore).rd().wmem()),
    OpSpec(B("vlse64.v", Unit::kLoad).wd().rmem()),
    OpSpec(B("vsse64.v", Unit::kStore).rd().wmem()),
    OpSpec(B("vluxei64.v", Unit::kLoad).r2().wd().rmem()),
    OpSpec(B("vsuxei64.v", Unit::kStore).r2().rd().wmem()),
    // fp arithmetic
    OpSpec(B("vfadd.vv", Unit::kFpu).r1().r2().wd().fl(1)),
    OpSpec(B("vfadd.vf", Unit::kFpu).r2().wd().acc().fl(1)),
    OpSpec(B("vfsub.vv", Unit::kFpu).r1().r2().wd().fl(1)),
    OpSpec(B("vfsub.vf", Unit::kFpu).r2().wd().acc().fl(1)),
    OpSpec(B("vfrsub.vf", Unit::kFpu).r2().wd().acc().fl(1)),
    OpSpec(B("vfmul.vv", Unit::kFpu).r1().r2().wd().fl(1)),
    OpSpec(B("vfmul.vf", Unit::kFpu).r2().wd().acc().fl(1)),
    OpSpec(B("vfdiv.vv", Unit::kFpu).r1().r2().wd().fl(1)),
    OpSpec(B("vfdiv.vf", Unit::kFpu).r2().wd().acc().fl(1)),
    OpSpec(B("vfrdiv.vf", Unit::kFpu).r2().wd().acc().fl(1)),
    OpSpec(B("vfmacc.vv", Unit::kFpu).r1().r2().rd().wd().fl(2)),
    OpSpec(B("vfmacc.vf", Unit::kFpu).r2().rd().wd().acc().fl(2)),
    OpSpec(B("vfnmsac.vv", Unit::kFpu).r1().r2().rd().wd().fl(2)),
    OpSpec(B("vfnmsac.vf", Unit::kFpu).r2().rd().wd().acc().fl(2)),
    OpSpec(B("vfmadd.vf", Unit::kFpu).r2().rd().wd().acc().fl(2)),
    OpSpec(B("vfmadd.vv", Unit::kFpu).r1().r2().rd().wd().fl(2)),
    OpSpec(B("vfmsac.vf", Unit::kFpu).r2().rd().wd().acc().fl(2)),
    OpSpec(B("vfmin.vv", Unit::kFpu).r1().r2().wd().fl(1)),
    OpSpec(B("vfmin.vf", Unit::kFpu).r2().wd().acc().fl(1)),
    OpSpec(B("vfmax.vv", Unit::kFpu).r1().r2().wd().fl(1)),
    OpSpec(B("vfmax.vf", Unit::kFpu).r2().wd().acc().fl(1)),
    OpSpec(B("vfsgnj.vv", Unit::kFpu).r1().r2().wd().fl(1)),
    OpSpec(B("vfsgnjn.vv", Unit::kFpu).r1().r2().wd().fl(1)),
    OpSpec(B("vfcvt.x.f.v", Unit::kFpu).r2().wd().fl(1)),
    OpSpec(B("vfcvt.f.x.v", Unit::kFpu).r2().wd().fl(1)),
    // integer / moves
    OpSpec(B("vadd.vv", Unit::kAlu).r1().r2().wd()),
    OpSpec(B("vadd.vx", Unit::kAlu).r2().wd()),
    OpSpec(B("vsub.vv", Unit::kAlu).r1().r2().wd()),
    OpSpec(B("vsll.vx", Unit::kAlu).r2().wd()),
    OpSpec(B("vsrl.vx", Unit::kAlu).r2().wd()),
    OpSpec(B("vand.vx", Unit::kAlu).r2().wd()),
    OpSpec(B("vmv.v.x", Unit::kAlu).wd()),
    OpSpec(B("vmv.v.v", Unit::kAlu).r1().wd()),
    OpSpec(B("vfmv.v.f", Unit::kAlu).wd().acc()),
    OpSpec(B("vfmv.f.s", Unit::kNone).r2().ret()),
    OpSpec(B("vfmv.s.f", Unit::kAlu).wd().acc()),
    OpSpec(B("vid.v", Unit::kAlu).wd()),
    // reductions
    OpSpec(B("vfredusum.vs", Unit::kFpu).r1().r2().wd().red().fl(1)),
    OpSpec(B("vfredmax.vs", Unit::kFpu).r1().r2().wd().red().fl(1)),
    OpSpec(B("vfredmin.vs", Unit::kFpu).r1().r2().wd().red().fl(1)),
    // permutation
    OpSpec(B("vfslide1up.vf", Unit::kSldu).r2().wd().acc().sld()),
    OpSpec(B("vfslide1down.vf", Unit::kSldu).r2().wd().acc().sld()),
    OpSpec(B("vslideup.vx", Unit::kSldu).r2().rd().wd().sld()),
    OpSpec(B("vslidedown.vx", Unit::kSldu).r2().wd().sld()),
    // mask
    OpSpec(B("vmfeq.vv", Unit::kFpu).r1().r2().wd().wmask()),
    OpSpec(B("vmflt.vv", Unit::kFpu).r1().r2().wd().wmask()),
    OpSpec(B("vmfle.vv", Unit::kFpu).r1().r2().wd().wmask()),
    OpSpec(B("vmflt.vf", Unit::kFpu).r2().wd().wmask().acc()),
    OpSpec(B("vmfle.vf", Unit::kFpu).r2().wd().wmask().acc()),
    OpSpec(B("vmfgt.vf", Unit::kFpu).r2().wd().wmask().acc()),
    OpSpec(B("vmfge.vf", Unit::kFpu).r2().wd().wmask().acc()),
    OpSpec(B("vmand.mm", Unit::kMasku).r1().r2().wd().wmask()),
    OpSpec(B("vmor.mm", Unit::kMasku).r1().r2().wd().wmask()),
    OpSpec(B("vmxor.mm", Unit::kMasku).r1().r2().wd().wmask()),
    OpSpec(B("vmandn.mm", Unit::kMasku).r1().r2().wd().wmask()),
    OpSpec(B("vmerge.vvm", Unit::kAlu).r1().r2().wd()),
    OpSpec(B("vfmerge.vfm", Unit::kAlu).r2().wd().acc()),
    // widening FP
    OpSpec(B("vfwadd.vv", Unit::kFpu).r1().r2().wd().wide().fl(1)),
    OpSpec(B("vfwsub.vv", Unit::kFpu).r1().r2().wd().wide().fl(1)),
    OpSpec(B("vfwmul.vv", Unit::kFpu).r1().r2().wd().wide().fl(1)),
    OpSpec(B("vfwmacc.vv", Unit::kFpu).r1().r2().rd().wd().wide().fl(2)),
    OpSpec(B("vfsqrt.v", Unit::kFpu).r2().wd().fl(1)),
    // gather / compress
    OpSpec(B("vrgather.vv", Unit::kSldu).r1().r2().wd().gat()),
    OpSpec(B("vcompress.vm", Unit::kSldu).r1().r2().wd().gat().msrc()),
    // mask population
    OpSpec(B("vcpop.m", Unit::kNone).r2().ret().msrc()),
    OpSpec(B("vfirst.m", Unit::kNone).r2().ret().msrc()),
    OpSpec(B("viota.m", Unit::kMasku).r2().wd().msrc()),
    OpSpec(B("vmsbf.m", Unit::kMasku).r2().wd().wmask().msrc()),
    OpSpec(B("vmsif.m", Unit::kMasku).r2().wd().wmask().msrc()),
    OpSpec(B("vmsof.m", Unit::kMasku).r2().wd().wmask().msrc()),
    // integer
    OpSpec(B("vmul.vv", Unit::kAlu).r1().r2().wd()),
    OpSpec(B("vmul.vx", Unit::kAlu).r2().wd()),
    OpSpec(B("vmacc.vv", Unit::kAlu).r1().r2().rd().wd()),
    OpSpec(B("vrsub.vx", Unit::kAlu).r2().wd()),
    OpSpec(B("vmax.vv", Unit::kAlu).r1().r2().wd()),
    OpSpec(B("vmin.vv", Unit::kAlu).r1().r2().wd()),
};

}  // namespace

const OpSpec& op_spec(Op op) {
  const auto idx = static_cast<std::size_t>(op);
  check(idx < kSpecs.size(), "unknown opcode");
  return kSpecs[idx];
}

bool is_mem_op(Op op) {
  const OpSpec& s = op_spec(op);
  return s.reads_mem || s.writes_mem;
}

bool is_arith_fp(Op op) { return op_spec(op).flops_per_elem > 0; }

}  // namespace araxl
