#include "obs/metrics.hpp"

#include <algorithm>

#include "common/fmt.hpp"
#include "common/table.hpp"
#include "store/json.hpp"

namespace araxl::obs {

namespace {

template <class Map, class Instrument>
Instrument* find_or_create(std::mutex& mu, Map& map, std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu);
  const auto it = map.find(name);
  if (it != map.end()) return it->second.get();
  auto inst = std::make_unique<Instrument>();
  Instrument* raw = inst.get();
  map.emplace(std::string(name), std::move(inst));
  return raw;
}

}  // namespace

Counter* MetricsRegistry::counter(std::string_view name) {
  return find_or_create<decltype(counters_), Counter>(mu_, counters_, name);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  return find_or_create<decltype(gauges_), Gauge>(mu_, gauges_, name);
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  return find_or_create<decltype(histograms_), Histogram>(mu_, histograms_,
                                                          name);
}

std::string MetricsRegistry::to_json() const {
  // The three maps are merged into one name-ordered stream so the output
  // is stable no matter which kind an instrument is.
  const std::lock_guard<std::mutex> lock(mu_);
  struct Entry {
    std::string_view name;
    std::string body;
  };
  std::vector<Entry> entries;
  entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    entries.push_back({name, store::json_u64(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    entries.push_back({name, store::json_u64(g->value())});
  }
  for (const auto& [name, h] : histograms_) {
    std::string body = "{\"count\":" + store::json_u64(h->count()) +
                       ",\"sum\":" + store::json_u64(h->sum()) +
                       ",\"max\":" + store::json_u64(h->max()) +
                       ",\"buckets\":{";
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      if (!first) body += ",";
      first = false;
      // Bucket b covers [2^(b-1), 2^b); label with its exclusive bound.
      const std::uint64_t bound =
          b >= 64 ? 0 : (std::uint64_t{1} << b);  // 0 renders as "inf"
      body += "\"<" + (b >= 64 ? std::string("inf") : store::json_u64(bound)) +
              "\":" + store::json_u64(n);
    }
    body += "}}";
    entries.push_back({name, std::move(body)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  std::string out = "{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + store::json_escape(entries[i].name) + "\":" + entries[i].body;
  }
  out += "}";
  return out;
}

std::vector<MetricsRegistry::Row> MetricsRegistry::rows() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, "counter", c->value(), 0, 0});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, "gauge", g->value(), 0, 0});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back({name, "histogram", h->count(), h->sum(), h->max()});
  }
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::render_table() const {
  TextTable table({"metric", "kind", "value", "sum", "max"});
  table.align_right(2);
  table.align_right(3);
  table.align_right(4);
  for (const Row& r : rows()) {
    table.add_row({r.name, r.kind, fmt_group(r.value),
                   r.kind == "histogram" ? fmt_group(r.sum) : std::string("-"),
                   r.kind == "histogram" ? fmt_group(r.max) : std::string("-")});
  }
  return table.render();
}

}  // namespace araxl::obs
