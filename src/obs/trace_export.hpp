// Chrome-trace-event exporter (Perfetto / chrome://tracing compatible).
//
// Serializes per-job instruction traces and engine markers into the JSON
// trace-event format:
//   * one "process" per job (pid = job index, process_name metadata),
//   * one "thread" per execution unit (tid = Unit index; tid 0 is the
//     engine row carrying scheduler/batching markers),
//   * one "X" complete event per traced vector instruction, spanning
//     dispatch -> completion, with issue/first-result in args,
//   * one "i" instant event per engine marker (wakeups, batch engage /
//     clamp / reject with the typed rejection reason).
//
// Timestamps are simulation cycles, never wall clock, and jobs are
// exported in job-index order — the file is byte-deterministic across
// worker counts and repeated runs (the CI artifact relies on this).
// Load the file at https://ui.perfetto.dev or chrome://tracing; the "ts"
// unit renders as microseconds but reads as cycles.
#ifndef ARAXL_OBS_TRACE_EXPORT_HPP
#define ARAXL_OBS_TRACE_EXPORT_HPP

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace araxl::obs {

/// One job's contribution to the exported timeline. `trace` may be null
/// (e.g. a cache-replayed job that never simulated) — the job still gets
/// its process_name metadata so job indices stay dense and deterministic.
struct TraceExportJob {
  std::string name;                  ///< process name, e.g. "axpy/64 bpl=4096"
  const InstrTrace* trace = nullptr; ///< not owned; may be null
};

/// Renders the full trace-event JSON document (an object with a single
/// "traceEvents" array, trailing newline included).
[[nodiscard]] std::string export_chrome_trace(
    const std::vector<TraceExportJob>& jobs);

}  // namespace araxl::obs

#endif  // ARAXL_OBS_TRACE_EXPORT_HPP
