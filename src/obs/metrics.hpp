// Lightweight metrics registry: named counters, gauges, and power-of-two
// histograms for observing the simulator itself.
//
// Design constraints, in order:
//   * near-zero cost when disabled — every instrumented site holds a raw
//     pointer that is nullptr when no registry is attached, so the off
//     path is one branch and no atomic traffic;
//   * thread-safe when enabled — sweep workers share one registry, so
//     instruments are relaxed atomics and the registry map is mutex-
//     guarded (instrument pointers stay stable across registrations:
//     the map owns each instrument behind a unique_ptr);
//   * deterministic output — `to_json()` / `render_table()` emit
//     instruments in name order, so a rollup is a pure function of the
//     counted events, not of registration or thread order.
//
// Naming convention: dot-separated lowercase paths, coarse-to-fine —
// `engine.unit.fpu.busy_cycles`, `runner.phase.simulate_ns`,
// `store.flush_bytes`, `engine.batch.reject.liveness_gate`.
#ifndef ARAXL_OBS_METRICS_HPP
#define ARAXL_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace araxl::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (set, not accumulated).
class Gauge {
 public:
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Power-of-two-bucket histogram over u64 samples. Bucket b counts
/// samples whose bit width is b (bucket 0 holds the value 0, bucket 1
/// holds 1, bucket 2 holds 2..3, ...), which is exact enough for
/// occupancy / size / duration distributions at a fixed 65-slot cost.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Folds a locally accumulated distribution in — the bulk equivalent of
  /// calling observe() once per sample. Lets a hot loop count into plain
  /// (non-atomic) storage and pay the atomic traffic once.
  void merge_counts(const std::array<std::uint64_t, kBuckets>& buckets,
                    std::uint64_t count, std::uint64_t sum,
                    std::uint64_t max_seen) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets[b] != 0) {
        buckets_[b].fetch_add(buckets[b], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (max_seen > prev && !max_.compare_exchange_weak(
                                  prev, max_seen, std::memory_order_relaxed)) {
    }
  }

  /// Bucket index for a sample: its bit width (0 for the value 0).
  static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    std::size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Named instrument namespace. counter()/gauge()/histogram() find-or-
/// create by name and return a stable pointer that outlives further
/// registrations (valid for the registry's lifetime).
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// One flat JSON object, instruments in name order: counters/gauges as
  /// numbers, histograms as {count,sum,max,buckets:{"<2^k": n, ...}}
  /// (zero buckets omitted). Deterministic for a given set of samples.
  [[nodiscard]] std::string to_json() const;

  /// Human rollup: one aligned row per instrument, name-sorted.
  [[nodiscard]] std::string render_table() const;

  /// Snapshot rows for programmatic consumers (name-sorted; histograms
  /// summarized as count/sum/max).
  struct Row {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "histogram"
    std::uint64_t value = 0;  // counter/gauge value, histogram count
    std::uint64_t sum = 0;    // histogram only
    std::uint64_t max = 0;    // histogram only
  };
  [[nodiscard]] std::vector<Row> rows() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace araxl::obs

#endif  // ARAXL_OBS_METRICS_HPP
