#include "obs/trace_export.hpp"

#include <array>
#include <cstddef>

#include "store/json.hpp"

namespace araxl::obs {

namespace {

using store::json_escape;
using store::json_u64;

void append_metadata(std::string& out, std::uint64_t pid, std::uint64_t tid,
                     std::string_view what, std::string_view name) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":" + json_u64(pid) +
         ",\"tid\":" + json_u64(tid) + ",\"args\":{\"name\":\"" +
         json_escape(std::string(name)) + "\"}}";
}

std::string marker_name(const SimMarker& m) {
  switch (m.kind) {
    case SimMarkerKind::kWakeup:
      return "wakeup";
    case SimMarkerKind::kBatchEngage:
      return "batch_engage";
    case SimMarkerKind::kBatchClamp:
      return "batch_clamp";
    case SimMarkerKind::kBatchWarmup:
      return "batch_warmup";
    case SimMarkerKind::kBatchReject:
      return "batch_reject(" +
             std::string(batch_reject_name(
                 static_cast<BatchReject>(m.arg < kNumBatchRejects ? m.arg
                                                                   : 0))) +
             ")";
  }
  return "marker";
}

std::string_view marker_arg_key(SimMarkerKind kind) {
  switch (kind) {
    case SimMarkerKind::kWakeup:
      return "occupancy";
    case SimMarkerKind::kBatchEngage:
    case SimMarkerKind::kBatchClamp:
    case SimMarkerKind::kBatchWarmup:
      return "iterations";
    case SimMarkerKind::kBatchReject:
      return "reason";
  }
  return "arg";
}

}  // namespace

std::string export_chrome_trace(const std::vector<TraceExportJob>& jobs) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const TraceExportJob& job = jobs[j];
    std::string ev;
    append_metadata(ev, j, 0, "process_name", job.name);
    emit(ev);
    if (job.trace == nullptr) continue;

    // Thread rows: tid 0 is the engine (markers), tids 1.. are the units.
    // Only name threads that actually carry events, so an idle unit does
    // not clutter the timeline.
    std::array<bool, kNumUnits> unit_used{};
    for (const TraceRecord& rec : job.trace->records()) {
      const auto u = static_cast<std::size_t>(rec.unit);
      if (u < kNumUnits) unit_used[u] = true;
    }
    if (!job.trace->markers().empty()) {
      ev.clear();
      append_metadata(ev, j, 0, "thread_name", "engine");
      emit(ev);
    }
    for (std::size_t u = 1; u < kNumUnits; ++u) {
      if (!unit_used[u]) continue;
      ev.clear();
      append_metadata(ev, j, u, "thread_name",
                      unit_name(static_cast<Unit>(u)));
      emit(ev);
    }

    for (const TraceRecord& rec : job.trace->records()) {
      const Cycle dur =
          rec.completed > rec.dispatched ? rec.completed - rec.dispatched : 0;
      ev = "{\"name\":\"" + json_escape(rec.text) +
           "\",\"cat\":\"instr\",\"ph\":\"X\",\"ts\":" +
           json_u64(rec.dispatched) + ",\"dur\":" + json_u64(dur) +
           ",\"pid\":" + json_u64(j) +
           ",\"tid\":" + json_u64(static_cast<std::uint64_t>(rec.unit)) +
           ",\"args\":{\"id\":" + json_u64(rec.id) +
           ",\"vl\":" + json_u64(rec.vl) +
           ",\"issued\":" + json_u64(rec.issued) +
           ",\"first_result\":" + json_u64(rec.first_result);
      // Dominant stall annotation: only present when the attributor charged
      // byte-slots to this instruction, so non-FPU spans stay unchanged.
      if (rec.stall_reason < kNumStallReasons) {
        ev += ",\"stall\":\"";
        ev += stall_reason_name(static_cast<StallReason>(rec.stall_reason));
        ev += "\",\"stall_slots\":" + json_u64(rec.stall_slots);
      }
      ev += "}}";
      emit(ev);
    }

    for (const SimMarker& m : job.trace->markers()) {
      ev = "{\"name\":\"" + json_escape(marker_name(m)) +
           "\",\"cat\":\"engine\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
           json_u64(m.cycle) + ",\"pid\":" + json_u64(j) +
           ",\"tid\":0,\"args\":{\"" + std::string(marker_arg_key(m.kind)) +
           "\":" + json_u64(m.arg) + "}}";
      emit(ev);
    }
  }

  out += "],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

}  // namespace araxl::obs
