// Event-scheduling primitives for the time-skipping simulation kernel.
//
// The event-driven timing engine does not tick every cycle; it processes
// one "wakeup" cycle exactly, collects the earliest future cycle at which
// machine state can change (instruction arrival, unit start, retirement,
// reduction phase boundary, CVA6 becoming free, ...), fast-forwards the
// in-flight work across the gap in closed form, and jumps there.
//
// `EventHorizon` is the sorted-horizon flavour of that scheduler: a
// running minimum over proposed wake cycles, anchored at the current
// cycle so stale proposals (<= now) are ignored.  `WakeupWatchdog` is the
// companion liveness check: instead of hashing all in-flight state every
// few thousand simulated cycles (the cycle-stepped engine's old scheme),
// it counts scheduler wakeups between progress notifications, which is
// O(1) per wakeup and trips immediately when the horizon goes empty.
#ifndef ARAXL_SIM_SCHEDULER_HPP
#define ARAXL_SIM_SCHEDULER_HPP

#include <cstdint>

#include "sim/cycle.hpp"

namespace araxl {

/// Running minimum of proposed future wake cycles.
class EventHorizon {
 public:
  /// Starts a fresh horizon; proposals at or before `now` are ignored.
  void reset(Cycle now) noexcept {
    now_ = now;
    next_ = kNeverCycle;
  }

  /// Proposes a wake at `at`; keeps the earliest strictly-future proposal.
  void propose(Cycle at) noexcept {
    if (at > now_ && at < next_) next_ = at;
  }

  /// True when no future wake has been proposed (quiescent machine).
  [[nodiscard]] bool empty() const noexcept { return next_ == kNeverCycle; }

  /// Earliest proposed wake cycle (kNeverCycle when empty()).
  [[nodiscard]] Cycle next() const noexcept { return next_; }

  /// Cycle the horizon was anchored at.
  [[nodiscard]] Cycle now() const noexcept { return now_; }

 private:
  Cycle now_ = 0;
  Cycle next_ = kNeverCycle;
};

/// Liveness watchdog counting scheduler wakeups instead of hashing state.
///
/// The engine calls `note_progress()` whenever observable work happens
/// (elements produced, bytes moved, an instruction issued/dispatched/
/// retired) and `note_wakeup()` once per scheduler wakeup; `stuck()`
/// reports when the wakeup budget since the last progress is exhausted.
class WakeupWatchdog {
 public:
  explicit WakeupWatchdog(std::uint64_t budget = kDefaultBudget) noexcept
      : budget_(budget) {}

  void reset() noexcept {
    wakeups_total_ = 0;
    wakeups_since_progress_ = 0;
    progress_total_ = 0;
  }

  /// Records `events` units of observable work. A steady-state loop batch
  /// retires K whole iterations inside a single wakeup and must report
  /// K progress notes, not one: the progress total is what liveness
  /// diagnostics (and the batching regression tests) compare against the
  /// wakeup count, so folding a batch into one note would make a long
  /// fast-forward look like a near-stuck machine.
  void note_progress(std::uint64_t events = 1) noexcept {
    wakeups_since_progress_ = 0;
    progress_total_ += events;
  }

  void note_wakeup() noexcept {
    ++wakeups_total_;
    ++wakeups_since_progress_;
  }

  [[nodiscard]] bool stuck() const noexcept {
    return wakeups_since_progress_ > budget_;
  }

  [[nodiscard]] std::uint64_t wakeups_total() const noexcept {
    return wakeups_total_;
  }

  /// Total progress events noted since reset() (batches count per
  /// iteration).
  [[nodiscard]] std::uint64_t progress_total() const noexcept {
    return progress_total_;
  }

  /// Default wakeup budget: a healthy machine retires work every handful
  /// of wakeups; even pathological-but-live schedules stay well below this.
  static constexpr std::uint64_t kDefaultBudget = 1u << 20;

 private:
  std::uint64_t budget_;
  std::uint64_t wakeups_total_ = 0;
  std::uint64_t wakeups_since_progress_ = 0;
  std::uint64_t progress_total_ = 0;
};

}  // namespace araxl

#endif  // ARAXL_SIM_SCHEDULER_HPP
