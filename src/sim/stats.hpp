// Run statistics collected by the timing engine. These counters are the
// measurement interface of the whole reproduction: FPU utilization,
// DP-FLOP/cycle, and the per-unit busy breakdown that the paper's Figures 6
// and 7 are built from.
#ifndef ARAXL_SIM_STATS_HPP
#define ARAXL_SIM_STATS_HPP

#include <array>
#include <cstdint>
#include <string>

#include "sim/cycle.hpp"

namespace araxl {

/// Execution units of a vector cluster (aggregated machine-wide by the
/// timing engine; see DESIGN.md §3).
enum class Unit : std::uint8_t {
  kNone = 0,  // vsetvli and other non-executing ops
  kFpu,       // FMA-capable floating-point pipeline (one per lane)
  kAlu,       // integer/move/merge pipeline (one per lane)
  kLoad,      // VLSU load path (through the GLSU on AraXL)
  kStore,     // VLSU store path
  kSldu,      // slide unit (ring-connected on AraXL)
  kMasku,     // mask unit
};

inline constexpr std::size_t kNumUnits = 7;

/// Human-readable unit name ("fpu", "load", ...).
std::string_view unit_name(Unit u);

/// Why steady-state loop batching declined to fast-forward at a period
/// boundary. Every rejection in the event engine is counted under exactly
/// one of these, which is the diagnosis interface for "batched_iterations
/// is 0 on this row" (see `araxl stats` and the trace markers).
enum class BatchReject : std::uint8_t {
  kAddrProgression = 0,  ///< a mem op's addresses break the single
                         ///< arithmetic-progression gate inside the region
  kLivenessGate,         ///< an in-flight op is still < 1 period into the
                         ///< region, so no whole iteration can retire
  kSnapshotMismatch,     ///< consecutive period-boundary snapshots differ
                         ///< (machine not in steady state yet)
  kVlTail,               ///< the region ends on a smaller vsetvli grant
                         ///< (strip-mine tail iteration)
  kGrantChange,          ///< the region ends on a vsetvli whose vtype/grant
                         ///< changes (not a tail — a different loop shape)
};

inline constexpr std::size_t kNumBatchRejects = 5;

/// Stable short name for a rejection reason ("addr_progression", ...);
/// used as the JSON/CSV column suffix and the metric/trace-marker label.
std::string_view batch_reject_name(BatchReject r);

/// Why a (cycle × lane-FPU byte-slot) did not carry a result. Every slot of
/// every executed cycle is attributed to exactly one reason (or to
/// `fpu_busy_slots` when an FPU was producing into it), so the taxonomy is a
/// partition: sum(stall_cycles[]) + fpu_busy_slots == cycles * total_lanes * 8.
/// Both timing kernels compute the attribution bit-identically (differential
/// tests demand it), which is what lets `araxl report` explain a utilization
/// number instead of merely quoting it.
enum class StallReason : std::uint8_t {
  kIssuePressure = 0,     ///< no FPU work in flight: frontend/issue/dispatch
                          ///< could not keep the FPUs fed (Fig. 7's REQI
                          ///< pressure at scale lands here)
  kRawDependency,         ///< the acting FPU op exists but is rate-limited by
                          ///< a chained non-mem, non-slide producer (RAW)
  kStructuralUnit,        ///< the acting FPU op is dispatched but still in its
                          ///< fixed unit start-up latency, or only non-FPU
                          ///< arithmetic (ALU) work is in flight
  kMemLatency,            ///< waiting on the first beat of an in-flight load
                          ///< (GLSU/L2 latency, not throughput)
  kMemBandwidth,          ///< a load producer is streaming but its byte/cycle
                          ///< rate caps FPU progress (or only mem ops are in
                          ///< flight past their first beat)
  kReductionSlideLatency, ///< inter-lane/inter-cluster reduction or slide
                          ///< phases (ring latency) gate progress
  kDrainTail,             ///< program fully issued and machine empty of
                          ///< FPU-feeding work: the final writeback/retire
                          ///< drain of the last ops
};

inline constexpr std::size_t kNumStallReasons = 7;

/// Stable short name for a stall reason ("issue_pressure", ...); used as the
/// JSON/CSV key, the metric name suffix and the trace-span annotation.
std::string_view stall_reason_name(StallReason r);

/// Counters for one simulated program run.
struct RunStats {
  Cycle cycles = 0;                  ///< total runtime in cycles
  std::uint64_t total_lanes = 0;     ///< lanes × clusters of the machine
  std::uint64_t vinstrs = 0;         ///< vector instructions issued
  std::uint64_t scalar_ops = 0;      ///< scalar (CVA6) operations retired
  std::uint64_t flops = 0;           ///< DP-FLOP executed (FMA counts 2)
  std::uint64_t fpu_result_elems = 0;///< element results produced by FPUs
  std::uint64_t mem_read_bytes = 0;  ///< bytes read from L2
  std::uint64_t mem_write_bytes = 0; ///< bytes written to L2
  std::uint64_t issue_stall_cycles = 0;  ///< CVA6 cycles stalled on REQI ack
  std::uint64_t scalar_wait_cycles = 0;  ///< CVA6 cycles waiting on vector results
  std::array<std::uint64_t, kNumUnits> unit_busy_elems{};  ///< element slots per unit

  // ---- cycle-attribution stall taxonomy (byte-slot units) -----------------
  // One lane-cycle is 8 byte-slots (a lane datapath is 64 bits wide). The
  // two counters below partition the whole slot universe of a run:
  //   sum(stall_cycles[]) + fpu_busy_slots == cycles * total_lanes * 8
  // For a pure-FP64 kernel this divides down to the element-level identity
  // sum/8 + fpu_result_elems == cycles * total_lanes. Byte-slots (not
  // elements) keep the partition exact for SEW<64 and widening ops, where a
  // lane produces more than one element per cycle. Both counters are
  // measurements, not provenance: the oracle, the event engine, and batched
  // runs must agree bit for bit (they are inside operator==).
  std::array<std::uint64_t, kNumStallReasons> stall_cycles{};  ///< lost byte-slots per reason
  std::uint64_t fpu_busy_slots = 0;  ///< byte-slots that carried an FPU result

  // ---- engine provenance (how the run was simulated, not what it did) -----
  // Excluded from operator== on purpose: the cycle-stepped oracle touches
  // every cycle while the event engine wakes up orders of magnitude less
  // often, yet both must agree on every counter above. Reporters zero these
  // by default so caches/shards/worker-count `cmp` contracts keep holding.
  std::uint64_t wakeups_total = 0;        ///< scheduler wakeups (oracle: cycles)
  std::uint64_t batched_iterations = 0;   ///< loop iterations fast-forwarded
                                          ///< by steady-state batching
  /// Batching rejections by reason, indexed by BatchReject. Like the two
  /// counters above these are event-engine provenance: the oracle never
  /// attempts batching, so its array stays zero.
  std::array<std::uint64_t, kNumBatchRejects> batch_rejects{};
  /// Engagements whose boundary snapshots matched only after canonicalizing
  /// timing-inert fields (warmup fast-forward projected past the fill
  /// transient instead of waiting for it to drain).
  std::uint64_t warmup_projected = 0;
  /// Batches clamped short of the region end by a per-op progression break
  /// (nested-loop row boundary): the batch retires up to the break and the
  /// batcher re-arms on the far side.
  std::uint64_t batch_clamps = 0;

  /// Fraction of lane-FPU slots that produced a valid result — the paper's
  /// FPU-utilization metric (Fig. 6 lines, Fig. 7 drops).
  [[nodiscard]] double fpu_util() const {
    if (cycles == 0 || total_lanes == 0) return 0.0;
    return static_cast<double>(fpu_result_elems) /
           (static_cast<double>(cycles) * static_cast<double>(total_lanes));
  }

  /// Achieved DP-FLOP per cycle (paper's performance metric before the
  /// frequency model is applied).
  [[nodiscard]] double flop_per_cycle() const {
    return cycles == 0 ? 0.0 : static_cast<double>(flops) / static_cast<double>(cycles);
  }

  /// GFLOPS at a given clock frequency in GHz.
  [[nodiscard]] double gflops(double freq_ghz) const { return flop_per_cycle() * freq_ghz; }

  /// Multi-line human-readable dump (used by examples).
  [[nodiscard]] std::string summary() const;

  /// Field-wise equality over the *measurement* counters: the event-driven
  /// engine must reproduce the cycle-stepped oracle's counters bit for bit
  /// (differential tests). The provenance counters (wakeups_total,
  /// batched_iterations) legitimately differ between engines and are not
  /// compared.
  friend bool operator==(const RunStats& a, const RunStats& b) {
    return a.cycles == b.cycles && a.total_lanes == b.total_lanes &&
           a.vinstrs == b.vinstrs && a.scalar_ops == b.scalar_ops &&
           a.flops == b.flops && a.fpu_result_elems == b.fpu_result_elems &&
           a.mem_read_bytes == b.mem_read_bytes &&
           a.mem_write_bytes == b.mem_write_bytes &&
           a.issue_stall_cycles == b.issue_stall_cycles &&
           a.scalar_wait_cycles == b.scalar_wait_cycles &&
           a.unit_busy_elems == b.unit_busy_elems &&
           a.stall_cycles == b.stall_cycles &&
           a.fpu_busy_slots == b.fpu_busy_slots;
  }
  friend bool operator!=(const RunStats& a, const RunStats& b) {
    return !(a == b);
  }
};

}  // namespace araxl

#endif  // ARAXL_SIM_STATS_HPP
