// Latency/queue building blocks for the interconnect models.
//
// `DelayLine` models a fixed-latency pipelined channel (one push per cycle,
// items pop `latency` cycles later).  `BoundedQueue` models an elastic
// buffer with backpressure.  Both are deliberately simple value types; the
// timing engine advances them explicitly each cycle.
#ifndef ARAXL_SIM_PIPE_HPP
#define ARAXL_SIM_PIPE_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "sim/cycle.hpp"

namespace araxl {

/// Fixed-latency pipelined channel. Fully elastic in occupancy (it models a
/// register chain, one slot per cycle of latency is never exceeded because
/// the caller pushes at most once per cycle).
template <typename T>
class DelayLine {
 public:
  explicit DelayLine(Cycle latency) : latency_(latency) {}

  /// Latency in cycles between push and availability.
  [[nodiscard]] Cycle latency() const noexcept { return latency_; }
  void set_latency(Cycle latency) noexcept { latency_ = latency; }

  /// Enqueues `item` at time `now`; it becomes poppable at `now + latency`.
  void push(Cycle now, T item) { items_.emplace_back(now + latency_, std::move(item)); }

  /// True iff the head item has matured at time `now`.
  [[nodiscard]] bool ready(Cycle now) const {
    return !items_.empty() && items_.front().first <= now;
  }

  /// Pops the head item; precondition: ready(now).
  T pop(Cycle now) {
    check(ready(now), "DelayLine::pop on non-ready channel");
    T item = std::move(items_.front().second);
    items_.pop_front();
    return item;
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

 private:
  Cycle latency_;
  std::deque<std::pair<Cycle, T>> items_;
};

/// FIFO with a capacity bound; `try_push` fails (backpressure) when full.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    check(capacity_ > 0, "queue capacity must be positive");
  }

  [[nodiscard]] bool full() const noexcept { return items_.size() >= capacity_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Pushes if space is available; returns false when full.
  [[nodiscard]] bool try_push(T item) {
    if (full()) return false;
    items_.push_back(std::move(item));
    return true;
  }

  /// Reference to the oldest element; precondition: !empty().
  [[nodiscard]] T& front() {
    check(!empty(), "front() on empty queue");
    return items_.front();
  }
  [[nodiscard]] const T& front() const {
    check(!empty(), "front() on empty queue");
    return items_.front();
  }

  void pop() {
    check(!empty(), "pop() on empty queue");
    items_.pop_front();
  }

  /// Iteration support (e.g. for hazard scans over queued instructions).
  [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
  [[nodiscard]] auto end() const noexcept { return items_.end(); }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
};

/// Tracks recent samples of a monotonically increasing counter so a
/// consumer can ask "what was the producer's count `lag` cycles ago?" —
/// the mechanism behind result-latency-aware operand chaining.
///
/// The cycle-stepped engine records one (cycle, value) change point per
/// advancing cycle.  The event-driven engine instead records *piecewise-
/// linear segments*: one entry describes a whole run of cycles over which
/// the counter grew at a constant (possibly fractional num/den) rate, and
/// `value_at_lag` interpolates inside the segment with the same integer
/// floor arithmetic the per-cycle path would have produced.  Both entry
/// kinds coexist in one ring of up to kDepth entries; since segments
/// compress long runs, the retained history always covers the single-digit
/// chaining lags consumers ask about.
class LaggedCounter {
 public:
  static constexpr std::size_t kDepth = 64;

  /// Normalized view of the segment covering one query cycle, for
  /// closed-form consumers (the event engine's bulk advancement).
  struct Piece {
    std::uint64_t value = 0;   ///< counter value at the query cycle
    std::uint64_t num = 0;     ///< per-cycle growth numerator (0 = constant)
    std::uint64_t den = 1;     ///< growth denominator
    std::uint64_t acc = 0;     ///< accumulator phase at the query cycle
    Cycle grow_until = 0;      ///< last cycle this growth persists (if num > 0)
    Cycle change_at = kNeverCycle;  ///< first cycle a newer entry takes over
  };

  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

  /// Records the counter value at cycle `now` (non-decreasing in both).
  void record(Cycle now, std::uint64_t value) {
    debug_check(count_ == 0 || value >= latest(), "counter must be monotonic");
    debug_check(count_ == 0 || now >= newest().hold, "time must be monotonic");
    if (count_ > 0 && newest().start == now && newest().hold == now) {
      newest() = Entry{now, value, 0, 1, 0, now};
      return;
    }
    push(Entry{now, value, 0, 1, 0, now});
  }

  /// Records a linear segment: for cycles w in [start, hold] the counter
  /// reads v0 + (acc + (w - start) * num) / den, constant afterwards until
  /// the next entry.  `v0` is the value after cycle `start`; acc < den.
  void record_ramp(Cycle start, std::uint64_t v0, std::uint64_t num,
                   std::uint64_t den, std::uint64_t acc, Cycle hold) {
    debug_check(den > 0 && acc < den, "ramp accumulator out of range");
    debug_check(hold >= start, "ramp must cover at least one cycle");
    debug_check(count_ == 0 || v0 >= latest(), "counter must be monotonic");
    debug_check(count_ == 0 || start > newest().hold, "time must be monotonic");
    if (count_ > 0) {
      // Extend a contiguous integer-slope run in place (keeps the ring
      // compact across fast-forward windows).
      Entry& n = newest();
      if (n.den == 1 && den == 1 && n.num == num && start == n.hold + 1 &&
          v0 == eval(n, n.hold) + num) {
        n.hold = hold;
        return;
      }
    }
    push(Entry{start, v0, num, den, acc, hold});
  }

  /// Value the counter had at (absolute) cycle `when`; 0 before history.
  [[nodiscard]] std::uint64_t value_at(Cycle when) const {
    for (std::size_t k = count_; k-- > 0;) {
      const Entry& e = ring_[(head_ + k) % kDepth];
      if (e.start <= when) return eval(e, when);
    }
    return 0;
  }

  /// Value the counter had at cycle `now - lag`; 0 before any history.
  [[nodiscard]] std::uint64_t value_at_lag(Cycle now, Cycle lag) const {
    if (lag > now) return 0;
    return value_at(now - lag);
  }

  /// Segment view at `when` for closed-form consumers.
  [[nodiscard]] Piece piece_at(Cycle when) const {
    for (std::size_t k = count_; k-- > 0;) {
      const Entry& e = ring_[(head_ + k) % kDepth];
      if (e.start > when) continue;
      Piece p;
      p.change_at = k + 1 < count_ ? ring_[(head_ + k + 1) % kDepth].start
                                   : kNeverCycle;
      p.value = eval(e, when);
      if (when < e.hold) {
        p.num = e.num;
        p.den = e.den;
        p.acc = (e.acc + (when - e.start) * e.num) % e.den;
        p.grow_until = e.hold;
      }
      return p;
    }
    Piece p;  // before any history: constant zero until the first entry
    p.change_at = count_ > 0 ? ring_[head_ % kDepth].start : kNeverCycle;
    return p;
  }

  [[nodiscard]] std::uint64_t latest() const noexcept {
    return count_ == 0 ? 0 : eval(ring_[(head_ + count_ - 1) % kDepth],
                                  ring_[(head_ + count_ - 1) % kDepth].hold);
  }

  /// Moves the whole recorded history `delta` cycles into the future — the
  /// loop batcher relabels a steady-state instruction's history when it
  /// fast-forwards K whole iterations (values are per-instruction produced
  /// counts and stay untouched; only the time axis shifts).
  void shift_time(Cycle delta) noexcept {
    for (std::size_t k = 0; k < count_; ++k) {
      Entry& e = ring_[(head_ + k) % kDepth];
      e.start += delta;
      e.hold += delta;
    }
  }

  /// Appends a canonical time-relative serialization of the history to
  /// `out` (cycles rebased to `base`): two histories serialize equally iff
  /// every consumer-visible query agrees under the same rebasing. Used by
  /// the loop batcher's steady-state snapshot comparison.
  void serialize_rel(Cycle base, std::vector<std::uint64_t>* out) const {
    out->push_back(count_);
    for (std::size_t k = 0; k < count_; ++k) {
      const Entry& e = ring_[(head_ + k) % kDepth];
      out->push_back(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(e.start) - static_cast<std::int64_t>(base)));
      out->push_back(e.value);
      out->push_back(e.num);
      out->push_back(e.den);
      out->push_back(e.acc);
      out->push_back(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(e.hold) - static_cast<std::int64_t>(base)));
    }
  }

 private:
  struct Entry {
    Cycle start = 0;           ///< first cycle of the segment
    std::uint64_t value = 0;   ///< counter value after cycle `start`
    std::uint64_t num = 0;     ///< per-cycle increment numerator
    std::uint64_t den = 1;     ///< denominator (1 = integer slope)
    std::uint64_t acc = 0;     ///< accumulator phase at `start` (< den)
    Cycle hold = 0;            ///< last growing cycle; constant afterwards
  };

  [[nodiscard]] static std::uint64_t eval(const Entry& e, Cycle w) noexcept {
    const Cycle cw = w < e.hold ? w : e.hold;
    return e.value + (e.acc + (cw - e.start) * e.num) / e.den;
  }

  [[nodiscard]] Entry& newest() { return ring_[(head_ + count_ - 1) % kDepth]; }

  void push(const Entry& e) {
    if (count_ == kDepth) {
      head_ = (head_ + 1) % kDepth;
      --count_;
    }
    ring_[(head_ + count_) % kDepth] = e;
    ++count_;
  }

  Entry ring_[kDepth] = {};
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Unbounded production log for stall attribution. Mirrors every history
/// record an FPU instruction makes into its `LaggedCounter`, but without the
/// ring's eviction: the stall attributor asks "how many results existed at
/// cycle w" for windows that can span arbitrarily many recorded pieces (the
/// event engine's fast-forward can overshoot a window by hundreds of
/// per-cycle divider records), and the ring legitimately forgets anything
/// older than its 64 retained entries. The tape is pruned after each
/// attribution step, so its live length is bounded by one attribution window
/// in practice; `base_*` preserve the pre-prune value so queries at or before
/// the pruned boundary still answer exactly.
class ProdTape {
 public:
  void clear() noexcept {
    pieces_.clear();
    base_cycle_ = 0;
    base_value_ = 0;
  }

  /// Mirrors LaggedCounter::record (point sample at `now`).
  void record(Cycle now, std::uint64_t value) {
    if (!pieces_.empty() && pieces_.back().start == now &&
        pieces_.back().hold == now) {
      pieces_.back() = Entry{now, value, 0, 1, 0, now};
      return;
    }
    pieces_.push_back(Entry{now, value, 0, 1, 0, now});
  }

  /// Mirrors LaggedCounter::record_ramp (same merge rule, same evaluation).
  void record_ramp(Cycle start, std::uint64_t v0, std::uint64_t num,
                   std::uint64_t den, std::uint64_t acc, Cycle hold) {
    if (!pieces_.empty()) {
      Entry& n = pieces_.back();
      if (n.den == 1 && den == 1 && n.num == num && start == n.hold + 1 &&
          v0 == eval(n, n.hold) + num) {
        n.hold = hold;
        return;
      }
    }
    pieces_.push_back(Entry{start, v0, num, den, acc, hold});
  }

  /// Value of the counter at cycle `when`; `base_value_` before history.
  [[nodiscard]] std::uint64_t value_at(Cycle when) const {
    for (std::size_t k = pieces_.size(); k-- > 0;) {
      const Entry& e = pieces_[k];
      if (e.start <= when) return eval(e, when);
    }
    return when >= base_cycle_ || base_cycle_ == 0 ? base_value_ : 0;
  }

  /// Drops pieces whose effect is fully captured at `through` (every future
  /// query will be at a later cycle). Keeps the value at `through` as the
  /// new base so boundary queries (`value_at(through)`) still answer.
  void prune(Cycle through) {
    base_value_ = value_at(through);
    base_cycle_ = through;
    // A piece is droppable once a successor covers every cycle after
    // `through` (queries walk newest-first and never look past it again).
    while (pieces_.size() > 1 && pieces_[1].start <= through + 1) {
      pieces_.pop_front();
    }
  }

  /// Time-axis relabel for the loop batcher (mirrors LaggedCounter).
  void shift_time(Cycle delta) noexcept {
    base_cycle_ += delta;
    for (Entry& e : pieces_) {
      e.start += delta;
      e.hold += delta;
    }
  }

 private:
  struct Entry {
    Cycle start = 0;
    std::uint64_t value = 0;
    std::uint64_t num = 0;
    std::uint64_t den = 1;
    std::uint64_t acc = 0;
    Cycle hold = 0;
  };

  [[nodiscard]] static std::uint64_t eval(const Entry& e, Cycle w) noexcept {
    const Cycle cw = w < e.hold ? w : e.hold;
    return e.value + (e.acc + (cw - e.start) * e.num) / e.den;
  }

  std::deque<Entry> pieces_;
  Cycle base_cycle_ = 0;
  std::uint64_t base_value_ = 0;
};

}  // namespace araxl

#endif  // ARAXL_SIM_PIPE_HPP
