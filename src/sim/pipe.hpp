// Latency/queue building blocks for the interconnect models.
//
// `DelayLine` models a fixed-latency pipelined channel (one push per cycle,
// items pop `latency` cycles later).  `BoundedQueue` models an elastic
// buffer with backpressure.  Both are deliberately simple value types; the
// timing engine advances them explicitly each cycle.
#ifndef ARAXL_SIM_PIPE_HPP
#define ARAXL_SIM_PIPE_HPP

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/contracts.hpp"
#include "sim/cycle.hpp"

namespace araxl {

/// Fixed-latency pipelined channel. Fully elastic in occupancy (it models a
/// register chain, one slot per cycle of latency is never exceeded because
/// the caller pushes at most once per cycle).
template <typename T>
class DelayLine {
 public:
  explicit DelayLine(Cycle latency) : latency_(latency) {}

  /// Latency in cycles between push and availability.
  [[nodiscard]] Cycle latency() const noexcept { return latency_; }
  void set_latency(Cycle latency) noexcept { latency_ = latency; }

  /// Enqueues `item` at time `now`; it becomes poppable at `now + latency`.
  void push(Cycle now, T item) { items_.emplace_back(now + latency_, std::move(item)); }

  /// True iff the head item has matured at time `now`.
  [[nodiscard]] bool ready(Cycle now) const {
    return !items_.empty() && items_.front().first <= now;
  }

  /// Pops the head item; precondition: ready(now).
  T pop(Cycle now) {
    check(ready(now), "DelayLine::pop on non-ready channel");
    T item = std::move(items_.front().second);
    items_.pop_front();
    return item;
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

 private:
  Cycle latency_;
  std::deque<std::pair<Cycle, T>> items_;
};

/// FIFO with a capacity bound; `try_push` fails (backpressure) when full.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    check(capacity_ > 0, "queue capacity must be positive");
  }

  [[nodiscard]] bool full() const noexcept { return items_.size() >= capacity_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Pushes if space is available; returns false when full.
  [[nodiscard]] bool try_push(T item) {
    if (full()) return false;
    items_.push_back(std::move(item));
    return true;
  }

  /// Reference to the oldest element; precondition: !empty().
  [[nodiscard]] T& front() {
    check(!empty(), "front() on empty queue");
    return items_.front();
  }
  [[nodiscard]] const T& front() const {
    check(!empty(), "front() on empty queue");
    return items_.front();
  }

  void pop() {
    check(!empty(), "pop() on empty queue");
    items_.pop_front();
  }

  /// Iteration support (e.g. for hazard scans over queued instructions).
  [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
  [[nodiscard]] auto end() const noexcept { return items_.end(); }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
};

/// Tracks recent samples of a monotonically increasing counter so a
/// consumer can ask "what was the producer's count `lag` cycles ago?" —
/// the mechanism behind result-latency-aware operand chaining.
///
/// Stores up to kDepth (cycle, value) change points; since the producer
/// records at most once per cycle and chaining lags are single-digit
/// cycles, the answer is always within the retained history.
class LaggedCounter {
 public:
  static constexpr std::size_t kDepth = 64;

  /// Records the counter value at cycle `now` (non-decreasing in both).
  void record(Cycle now, std::uint64_t value) {
    debug_check(count_ == 0 || value >= newest().value, "counter must be monotonic");
    debug_check(count_ == 0 || now >= newest().cycle, "time must be monotonic");
    if (count_ > 0 && newest().cycle == now) {
      newest().value = value;
      return;
    }
    if (count_ == kDepth) {
      head_ = (head_ + 1) % kDepth;
      --count_;
    }
    ring_[(head_ + count_) % kDepth] = Entry{now, value};
    ++count_;
  }

  /// Value the counter had at cycle `now - lag`; 0 before any history.
  [[nodiscard]] std::uint64_t value_at_lag(Cycle now, Cycle lag) const {
    if (lag > now) return 0;
    const Cycle when = now - lag;
    for (std::size_t k = count_; k-- > 0;) {
      const Entry& e = ring_[(head_ + k) % kDepth];
      if (e.cycle <= when) return e.value;
    }
    return 0;
  }

  [[nodiscard]] std::uint64_t latest() const noexcept {
    return count_ == 0 ? 0 : ring_[(head_ + count_ - 1) % kDepth].value;
  }

 private:
  struct Entry {
    Cycle cycle = 0;
    std::uint64_t value = 0;
  };

  [[nodiscard]] Entry& newest() { return ring_[(head_ + count_ - 1) % kDepth]; }

  Entry ring_[kDepth] = {};
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace araxl

#endif  // ARAXL_SIM_PIPE_HPP
