// Cooperative cancellation for simulation runs.
//
// A simulated job can only be stopped at a scheduler wakeup: the timing
// engines are single-threaded state machines, so preemption would leave
// the machine model inconsistent. Instead the driver hands the engine a
// `RunControl` and the engine polls it at a fixed wakeup cadence — a
// shutdown request (Ctrl-C on the CLI) or an expired wall-clock deadline
// raises `SimCancelled`, unwinding the run cleanly with the Machine's
// architectural state intact. The deadline is an injected predicate, not
// a time point, so tests drive it with a fake clock and the engine never
// reads the real clock itself.
//
// Error text raised here must stay free of wall-clock values: cancelled
// and timed-out jobs flow into sweep reports, and reports are pure
// functions of the job set (the byte-identity contract).
#ifndef ARAXL_SIM_CANCEL_HPP
#define ARAXL_SIM_CANCEL_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"

namespace araxl {

/// Why a cooperative cancellation fired.
enum class CancelReason : std::uint8_t { kShutdown, kDeadline };

/// Shared cancellation flag, set once and never cleared. `request()` is a
/// lock-free atomic store, safe to call from a POSIX signal handler; any
/// number of runs may poll one token concurrently.
class CancelToken {
 public:
  void request() noexcept { flag_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool requested() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Raised by the timing engines when a RunControl check fires mid-run.
class SimCancelled : public std::runtime_error {
 public:
  SimCancelled(CancelReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}
  [[nodiscard]] CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

/// Liveness-watchdog failure: the engine made no progress for a whole
/// wakeup budget (MachineConfig::watchdog_budget). A subclass of
/// ContractViolation so existing "deadlock throws" call sites and tests
/// keep working, but typed so the driver can classify it as a timeout-kind
/// job failure instead of a simulation bug.
class DeadlockError : public ContractViolation {
 public:
  using ContractViolation::ContractViolation;
};

/// Per-run cancellation policy, checked cooperatively at scheduler
/// wakeups. Default-constructed (both sources null) it is free: engines
/// skip polling entirely when `enabled()` is false.
struct RunControl {
  /// Sweep-wide shutdown token (SIGINT/SIGTERM on the CLI); null = none.
  const CancelToken* shutdown = nullptr;
  /// Wall-clock deadline probe; null = no deadline. Must be cheap — it is
  /// only invoked at the check cadence, never per cycle.
  std::function<bool()> deadline_exceeded;
  /// Wakeup-count mask between checks (power of two minus one). 1023
  /// bounds the overhead to one predicate call per ~1k wakeups while a
  /// runaway job is still caught within milliseconds.
  std::uint64_t check_mask = 1023;

  [[nodiscard]] bool enabled() const noexcept {
    return shutdown != nullptr || deadline_exceeded != nullptr;
  }

  /// Throws SimCancelled when shutdown was requested or the deadline has
  /// passed. Shutdown wins ties so a Ctrl-C is never misreported as a
  /// per-job timeout.
  void check_now() const {
    if (shutdown != nullptr && shutdown->requested()) {
      throw SimCancelled(CancelReason::kShutdown,
                         "run cancelled: shutdown requested");
    }
    if (deadline_exceeded && deadline_exceeded()) {
      throw SimCancelled(CancelReason::kDeadline, "job deadline exceeded");
    }
  }

  /// Cadenced check: `count` is any monotonically increasing per-wakeup
  /// counter (the engines use the watchdog's wakeup total).
  void poll(std::uint64_t count) const {
    if ((count & check_mask) == 0) check_now();
  }
};

}  // namespace araxl

#endif  // ARAXL_SIM_CANCEL_HPP
