#include "sim/stats.hpp"

#include "common/fmt.hpp"

namespace araxl {

std::string_view unit_name(Unit u) {
  switch (u) {
    case Unit::kNone: return "none";
    case Unit::kFpu: return "fpu";
    case Unit::kAlu: return "alu";
    case Unit::kLoad: return "load";
    case Unit::kStore: return "store";
    case Unit::kSldu: return "sldu";
    case Unit::kMasku: return "masku";
  }
  return "?";
}

std::string_view batch_reject_name(BatchReject r) {
  switch (r) {
    case BatchReject::kAddrProgression: return "addr_progression";
    case BatchReject::kLivenessGate: return "liveness_gate";
    case BatchReject::kSnapshotMismatch: return "snapshot_mismatch";
    case BatchReject::kVlTail: return "vl_tail";
    case BatchReject::kGrantChange: return "grant_change";
  }
  return "?";
}

std::string_view stall_reason_name(StallReason r) {
  switch (r) {
    case StallReason::kIssuePressure: return "issue_pressure";
    case StallReason::kRawDependency: return "raw_dependency";
    case StallReason::kStructuralUnit: return "structural_unit";
    case StallReason::kMemLatency: return "mem_latency";
    case StallReason::kMemBandwidth: return "mem_bandwidth";
    case StallReason::kReductionSlideLatency: return "reduction_slide_latency";
    case StallReason::kDrainTail: return "drain_tail";
  }
  return "?";
}

std::string RunStats::summary() const {
  std::string out;
  out += "cycles:            " + fmt_group(cycles) + "\n";
  out += "vector instrs:     " + fmt_group(vinstrs) + "\n";
  out += "scalar ops:        " + fmt_group(scalar_ops) + "\n";
  out += "DP-FLOP:           " + fmt_group(flops) + "\n";
  out += "DP-FLOP/cycle:     " + fmt_f(flop_per_cycle(), 2) + "\n";
  out += "FPU utilization:   " + fmt_pct(fpu_util(), 1) + "\n";
  out += "L2 read bytes:     " + fmt_group(mem_read_bytes) + "\n";
  out += "L2 write bytes:    " + fmt_group(mem_write_bytes) + "\n";
  for (std::size_t u = 1; u < kNumUnits; ++u) {
    out += "busy[" + std::string(unit_name(static_cast<Unit>(u))) + "]: ";
    out.append(12 - unit_name(static_cast<Unit>(u)).size(), ' ');
    out += fmt_group(unit_busy_elems[u]) + " element-slots\n";
  }
  const std::uint64_t slot_universe = cycles * total_lanes * 8;
  if (slot_universe != 0) {
    for (std::size_t r = 0; r < kNumStallReasons; ++r) {
      if (stall_cycles[r] == 0) continue;
      const std::string_view name = stall_reason_name(static_cast<StallReason>(r));
      out += "stall[" + std::string(name) + "]: ";
      out.append(name.size() < 23 ? 23 - name.size() : 1, ' ');
      out += fmt_pct(static_cast<double>(stall_cycles[r]) /
                         static_cast<double>(slot_universe),
                     1) +
             " of slots\n";
    }
  }
  out += "wakeups:           " + fmt_group(wakeups_total) + "\n";
  out += "batched iters:     " + fmt_group(batched_iterations) + "\n";
  if (batch_clamps != 0) {
    out += "batch clamps:      " + fmt_group(batch_clamps) + "\n";
  }
  if (warmup_projected != 0) {
    out += "warmup projected:  " + fmt_group(warmup_projected) + "\n";
  }
  for (std::size_t r = 0; r < kNumBatchRejects; ++r) {
    if (batch_rejects[r] == 0) continue;
    const std::string_view name = batch_reject_name(static_cast<BatchReject>(r));
    out += "batch reject[" + std::string(name) + "]: ";
    out.append(name.size() < 18 ? 18 - name.size() : 1, ' ');
    out += fmt_group(batch_rejects[r]) + "\n";
  }
  return out;
}

}  // namespace araxl
