// Core time types of the cycle-stepped simulation kernel.
#ifndef ARAXL_SIM_CYCLE_HPP
#define ARAXL_SIM_CYCLE_HPP

#include <cstdint>
#include <limits>

namespace araxl {

/// Simulation time in clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "not yet scheduled / never".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

}  // namespace araxl

#endif  // ARAXL_SIM_CYCLE_HPP
