#include "sim/scheduler.hpp"

// EventHorizon and WakeupWatchdog are header-only value types; this
// translation unit anchors the module.
