#include "driver/report.hpp"

#include <cstdio>
#include <fstream>

#include "common/contracts.hpp"
#include "common/fmt.hpp"
#include "ppa/area_model.hpp"
#include "ppa/freq_model.hpp"
#include "ppa/power_model.hpp"
#include "store/json.hpp"

namespace araxl::driver {

namespace {

// Serialization helpers shared with the result store (store/json.hpp):
// the warm-replay byte-identity contract allows no drift between the
// reporters and the store.
using store::json_escape;
std::string fnum(double v) { return store::json_double(v); }
std::string unum(std::uint64_t v) { return store::json_u64(v); }

std::string_view kind_name(MachineKind k) {
  return k == MachineKind::kAraXL ? "araxl" : "ara2";
}

std::string_view mode_name(TimingMode m) {
  return m == TimingMode::kEventDriven ? "event-driven" : "cycle-stepped";
}

/// PPA-model outputs for one finished job.
struct Ppa {
  double freq_ghz, area_mm2, power_w, gflops, gflops_per_w;
};

Ppa ppa_for(const MachineConfig& cfg, const RunStats& stats) {
  const FreqModel freq_model;
  const AreaModel area_model;
  const PowerModel power_model;
  Ppa p{};
  p.freq_ghz = freq_model.freq_ghz(cfg);
  p.area_mm2 = area_model.total_mm2(cfg);
  const double util = stats.fpu_util();
  p.power_w = power_model.power_w(cfg, p.freq_ghz, util);
  p.gflops = stats.gflops(p.freq_ghz);
  p.gflops_per_w =
      power_model.gflops_per_w(cfg, p.freq_ghz, stats.flop_per_cycle(), util);
  return p;
}

std::string config_json(const Job& job) {
  const MachineConfig& c = job.cfg;
  std::string out = "{";
  out += "\"label\":\"" + json_escape(job.config_label) + "\",";
  out += "\"name\":\"" + json_escape(c.name()) + "\",";
  out += "\"kind\":\"" + std::string(kind_name(c.kind)) + "\",";
  // Global cluster count: a hierarchical machine's groups partition the
  // clusters physically, and the three-level shape is recoverable from the
  // config label (flat configs serialize byte-identically to before).
  out += "\"clusters\":" + unum(c.topo.total_clusters()) + ",";
  out += "\"lanes_per_cluster\":" + unum(c.topo.lanes) + ",";
  out += "\"total_lanes\":" + unum(c.total_lanes()) + ",";
  out += "\"vlen_bits\":" + unum(c.effective_vlen()) + ",";
  out += "\"timing_mode\":\"" + std::string(mode_name(c.timing_mode)) + "\",";
  out += "\"reqi_regs\":" + unum(c.reqi_regs) + ",";
  out += "\"glsu_regs\":" + unum(c.glsu_regs) + ",";
  out += "\"ring_regs\":" + unum(c.ring_regs) + ",";
  out += "\"l2_latency\":" + unum(c.l2_latency);
  out += "}";
  return out;
}

std::string stats_json(const RunStats& s, const ReportOptions& opts) {
  std::string out = "{";
  out += "\"cycles\":" + unum(s.cycles) + ",";
  out += "\"vinstrs\":" + unum(s.vinstrs) + ",";
  out += "\"scalar_ops\":" + unum(s.scalar_ops) + ",";
  out += "\"flops\":" + unum(s.flops) + ",";
  out += "\"fpu_result_elems\":" + unum(s.fpu_result_elems) + ",";
  out += "\"mem_read_bytes\":" + unum(s.mem_read_bytes) + ",";
  out += "\"mem_write_bytes\":" + unum(s.mem_write_bytes) + ",";
  out += "\"issue_stall_cycles\":" + unum(s.issue_stall_cycles) + ",";
  out += "\"scalar_wait_cycles\":" + unum(s.scalar_wait_cycles) + ",";
  out += "\"unit_busy_elems\":{";
  for (std::size_t u = 0; u < kNumUnits; ++u) {
    if (u != 0) out += ",";
    out += '"';
    out += unit_name(static_cast<Unit>(u));
    out += "\":";
    out += unum(s.unit_busy_elems[u]);
  }
  out += "},";
  out += "\"wakeups_total\":" + unum(opts.live_provenance ? s.wakeups_total : 0) + ",";
  out += "\"batched_iterations\":" +
         unum(opts.live_provenance ? s.batched_iterations : 0) + ",";
  // Typed batching-rejection counters: provenance like batched_iterations
  // (the oracle never attempts batching; replays would drift), so zeroed
  // unless live_provenance.
  out += "\"batch_rejects\":{";
  for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
    if (i != 0) out += ",";
    out += '"';
    out += batch_reject_name(static_cast<BatchReject>(i));
    out += "\":";
    out += unum(opts.live_provenance ? s.batch_rejects[i] : 0);
  }
  out += "},";
  out += "\"batch_clamps\":" + unum(opts.live_provenance ? s.batch_clamps : 0) + ",";
  out += "\"warmup_projected\":" +
         unum(opts.live_provenance ? s.warmup_projected : 0) + ",";
  // Stall taxonomy: exact measurements (bit-identical across engines and
  // batching), but reported like provenance — zeroed by default so the
  // default-report surface stays a stable, minimal contract. The store
  // persists the live values; `araxl report` reads them from there.
  out += "\"stall_cycles\":{";
  for (std::size_t i = 0; i < kNumStallReasons; ++i) {
    if (i != 0) out += ",";
    out += '"';
    out += stall_reason_name(static_cast<StallReason>(i));
    out += "\":";
    out += unum(opts.live_provenance ? s.stall_cycles[i] : 0);
  }
  out += "},";
  out += "\"fpu_busy_slots\":" +
         unum(opts.live_provenance ? s.fpu_busy_slots : 0) + ",";
  out += "\"fpu_util\":" + fnum(s.fpu_util()) + ",";
  out += "\"flop_per_cycle\":" + fnum(s.flop_per_cycle());
  out += "}";
  return out;
}

std::string result_json(const JobResult& r, const ReportOptions& opts) {
  std::string out = "{";
  out += "\"index\":" + unum(r.job.index) + ",";
  out += "\"kernel\":\"" + json_escape(r.job.kernel) + "\",";
  out += "\"bytes_per_lane\":" + unum(r.job.bytes_per_lane) + ",";
  out += "\"seed\":" + unum(r.job.seed) + ",";
  out += std::string("\"cache_hit\":") +
         (opts.live_cache_flags && r.cache_hit ? "true" : "false") + ",";
  // Attempts are provenance like cache_hit: a job that needed a retry must
  // still report byte-identically to a clean first-try run.
  out += "\"attempts\":" + unum(opts.live_provenance ? r.attempts : 0) + ",";
  out += "\"config\":" + config_json(r.job) + ",";
  out += std::string("\"ok\":") + (r.ok ? "true" : "false") + ",";
  // Failure classification; "ok" for successful jobs (driver/errors.hpp).
  out += "\"status\":\"" + std::string(error_kind_name(r.error_kind)) + "\",";
  if (!r.ok) {
    out += "\"error\":\"" + json_escape(r.error) + "\"";
    out += "}";
    return out;
  }
  out += "\"stats\":" + stats_json(r.stats, opts) + ",";
  const Ppa p = ppa_for(r.job.cfg, r.stats);
  out += "\"ppa\":{";
  out += "\"freq_ghz\":" + fnum(p.freq_ghz) + ",";
  out += "\"area_mm2\":" + fnum(p.area_mm2) + ",";
  out += "\"power_w\":" + fnum(p.power_w) + ",";
  out += "\"gflops\":" + fnum(p.gflops) + ",";
  out += "\"gflops_per_w\":" + fnum(p.gflops_per_w);
  out += "},";
  if (r.verified) {
    out += "\"verify\":{";
    out += "\"checked\":" + unum(r.verify.checked) + ",";
    out += "\"max_rel_err\":" + fnum(r.verify.max_rel_err) + ",";
    out += "\"tolerance\":" + fnum(r.tolerance);
    out += "}";
  } else {
    out += "\"verify\":null";
  }
  out += "}";
  return out;
}

}  // namespace

std::string json_record(const JobResult& r, const ReportOptions& opts) {
  return result_json(r, opts);
}

std::string to_json(const std::vector<JobResult>& results,
                    const ReportOptions& opts) {
  std::string out = "{\"results\":[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out += result_json(results[i], opts);
    if (i + 1 != results.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

std::string csv_header() {
  return
      "index,config,kernel,bytes_per_lane,seed,cache_hit,attempts,"
      "wakeups_total,"
      "batched_iterations,"
      "reject_addr_progression,reject_liveness_gate,reject_snapshot_mismatch,"
      "reject_vl_tail,reject_grant_change,batch_clamps,warmup_projected,"
      "stall_issue_pressure,stall_raw_dependency,stall_structural_unit,"
      "stall_mem_latency,stall_mem_bandwidth,stall_reduction_slide_latency,"
      "stall_drain_tail,fpu_busy_slots,kind,clusters,"
      "lanes_per_cluster,"
      "total_lanes,vlen_bits,ok,status,cycles,flops,fpu_util,flop_per_cycle,"
      "freq_ghz,area_mm2,power_w,gflops,gflops_per_w,max_rel_err,error\n";
}

std::string csv_row(const JobResult& r, const ReportOptions& opts) {
  std::string out;
  {
    const MachineConfig& c = r.job.cfg;
    out += unum(r.job.index) + ",";
    out += r.job.config_label + ",";
    out += r.job.kernel + ",";
    out += unum(r.job.bytes_per_lane) + ",";
    out += unum(r.job.seed) + ",";
    out += (opts.live_cache_flags && r.cache_hit) ? "1," : "0,";
    out += unum(opts.live_provenance ? r.attempts : 0) + ",";
    out += unum(opts.live_provenance ? r.stats.wakeups_total : 0) + ",";
    out += unum(opts.live_provenance ? r.stats.batched_iterations : 0) + ",";
    for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
      out += unum(opts.live_provenance ? r.stats.batch_rejects[i] : 0) + ",";
    }
    out += unum(opts.live_provenance ? r.stats.batch_clamps : 0) + ",";
    out += unum(opts.live_provenance ? r.stats.warmup_projected : 0) + ",";
    for (std::size_t i = 0; i < kNumStallReasons; ++i) {
      out += unum(opts.live_provenance ? r.stats.stall_cycles[i] : 0) + ",";
    }
    out += unum(opts.live_provenance ? r.stats.fpu_busy_slots : 0) + ",";
    out += std::string(kind_name(c.kind)) + ",";
    out += unum(c.topo.total_clusters()) + ",";
    out += unum(c.topo.lanes) + ",";
    out += unum(c.total_lanes()) + ",";
    out += unum(c.effective_vlen()) + ",";
    out += r.ok ? "1," : "0,";
    out += std::string(error_kind_name(r.error_kind)) + ",";
    if (r.ok) {
      const Ppa p = ppa_for(c, r.stats);
      out += unum(r.stats.cycles) + ",";
      out += unum(r.stats.flops) + ",";
      out += fnum(r.stats.fpu_util()) + ",";
      out += fnum(r.stats.flop_per_cycle()) + ",";
      out += fnum(p.freq_ghz) + ",";
      out += fnum(p.area_mm2) + ",";
      out += fnum(p.power_w) + ",";
      out += fnum(p.gflops) + ",";
      out += fnum(p.gflops_per_w) + ",";
      // Empty when verification was skipped — 0 would read as "verified
      // perfectly".
      out += (r.verified ? fnum(r.verify.max_rel_err) : "") + ",";
    } else {
      out += ",,,,,,,,,,";
    }
    // Errors can contain commas (source locations); quote the field.
    std::string err = r.error;
    for (std::size_t pos = 0; (pos = err.find('"', pos)) != std::string::npos;
         pos += 2) {
      err.replace(pos, 1, "\"\"");
    }
    out += "\"" + err + "\"\n";
  }
  return out;
}

std::string to_csv(const std::vector<JobResult>& results,
                   const ReportOptions& opts) {
  std::string out = csv_header();
  for (const JobResult& r : results) out += csv_row(r, opts);
  return out;
}

void write_report(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  std::ofstream f(path, std::ios::binary);
  check(f.good(), "cannot open report file for writing: " + path);
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  check(f.good(), "failed writing report file: " + path);
}

}  // namespace araxl::driver
