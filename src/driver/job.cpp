#include "driver/job.hpp"

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "driver/registry.hpp"

namespace araxl::driver {

std::vector<Job> expand(const SweepSpec& spec) {
  check(!spec.configs.empty(), "sweep needs at least one config");
  check(!spec.kernels.empty(), "sweep needs at least one kernel");
  check(!spec.bytes_per_lane.empty(),
        "sweep needs at least one bytes-per-lane point");
  const KernelRegistry& registry = KernelRegistry::instance();
  for (const std::string& k : spec.kernels) (void)registry.at(k);
  for (const ConfigPoint& c : spec.configs) c.cfg.validate();

  const Rng master(spec.base_seed);
  std::vector<Job> jobs;
  jobs.reserve(spec.job_count());
  for (const ConfigPoint& c : spec.configs) {
    for (const std::string& k : spec.kernels) {
      for (const std::uint64_t bpl : spec.bytes_per_lane) {
        Job job;
        job.index = jobs.size();
        job.config_label = c.label.empty() ? c.cfg.name() : c.label;
        job.cfg = c.cfg;
        job.kernel = k;
        job.bytes_per_lane = bpl;
        // fork() is const: each job's seed depends only on (base_seed,
        // index), never on expansion or execution order.
        job.seed =
            spec.base_seed == 0 ? 0 : master.fork(job.index).next_u64();
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

std::vector<Job> filter_shard(std::vector<Job> jobs, ShardSpec shard) {
  check(shard.count >= 1, "shard count must be at least 1");
  check(shard.index >= 1 && shard.index <= shard.count,
        "shard index must be in 1..count");
  if (shard.count == 1) return jobs;
  std::vector<Job> mine;
  mine.reserve(jobs.size() / shard.count + 1);
  for (Job& job : jobs) {
    if (job.index % shard.count == shard.index - 1) mine.push_back(std::move(job));
  }
  return mine;
}

}  // namespace araxl::driver
