#include "driver/spec.hpp"

#include <charconv>

#include "common/contracts.hpp"

namespace araxl::driver {

namespace {

std::uint64_t parse_u64(std::string_view s, std::string_view what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  check(ec == std::errc() && ptr == s.data() + s.size(),
        "bad number in " + std::string(what) + ": '" + std::string(s) + "'");
  return v;
}

}  // namespace

std::vector<std::string> split_list(std::string_view csv) {
  std::vector<std::string> out;
  while (!csv.empty()) {
    const std::size_t comma = csv.find(',');
    const std::string_view piece = csv.substr(0, comma);
    check(!piece.empty(), "empty element in comma-separated list");
    out.emplace_back(piece);
    if (comma == std::string_view::npos) break;
    csv.remove_prefix(comma + 1);
  }
  check(!out.empty(), "empty comma-separated list");
  return out;
}

std::vector<std::uint64_t> parse_u64_list(std::string_view csv) {
  std::vector<std::uint64_t> out;
  for (const std::string& piece : split_list(csv)) {
    out.push_back(parse_u64(piece, "list"));
  }
  return out;
}

ConfigPoint parse_config_spec(std::string_view spec) {
  const std::string label(spec);
  std::vector<std::string> parts;
  {
    std::string_view rest = spec;
    while (!rest.empty()) {
      const std::size_t colon = rest.find(':');
      parts.emplace_back(rest.substr(0, colon));
      if (colon == std::string_view::npos) break;
      rest.remove_prefix(colon + 1);
    }
  }
  check(parts.size() >= 2, "config spec needs kind:lanes — got '" + label + "'");

  MachineConfig cfg;
  const std::string& kind = parts[0];
  const std::string& shape = parts[1];
  const std::size_t x = shape.find('x');
  if (kind == "araxl") {
    if (x == std::string::npos) {
      cfg = MachineConfig::araxl(
          static_cast<unsigned>(parse_u64(shape, label)));
    } else {
      const std::size_t x2 = shape.find('x', x + 1);
      if (x2 == std::string::npos) {
        cfg = MachineConfig::araxl_shaped(
            static_cast<unsigned>(parse_u64(shape.substr(0, x), label)),
            static_cast<unsigned>(parse_u64(shape.substr(x + 1), label)));
      } else {
        // Three-level hierarchical shape: groups x clusters x lanes.
        cfg = MachineConfig::araxl_hier(
            static_cast<unsigned>(parse_u64(shape.substr(0, x), label)),
            static_cast<unsigned>(
                parse_u64(shape.substr(x + 1, x2 - x - 1), label)),
            static_cast<unsigned>(parse_u64(shape.substr(x2 + 1), label)));
      }
    }
  } else if (kind == "ara2") {
    check(x == std::string::npos, "ara2 takes a plain lane count: " + label);
    cfg = MachineConfig::ara2(static_cast<unsigned>(parse_u64(shape, label)));
  } else {
    fail("unknown machine kind '" + kind + "' in config spec '" + label + "'");
  }

  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::string& knob = parts[i];
    const std::size_t eq = knob.find('=');
    check(eq != std::string::npos,
          "config knob must be key=value in '" + label + "'");
    const std::string key = knob.substr(0, eq);
    const std::string val = knob.substr(eq + 1);
    if (key == "groups") {
      // Re-split the machine's clusters into N groups, preserving the
      // total lane count: araxl:128:groups=8 is 8 groups x 4 clusters.
      const unsigned groups = static_cast<unsigned>(parse_u64(val, label));
      const unsigned total = cfg.topo.total_clusters();
      check(groups >= 1 && total % groups == 0,
            "groups must divide the cluster count in '" + label + "'");
      cfg.topo = Topology{total / groups, cfg.topo.lanes, groups};
    } else if (key == "glsu") {
      cfg.glsu_regs = static_cast<unsigned>(parse_u64(val, label));
    } else if (key == "reqi") {
      cfg.reqi_regs = static_cast<unsigned>(parse_u64(val, label));
    } else if (key == "ring") {
      cfg.ring_regs = static_cast<unsigned>(parse_u64(val, label));
    } else if (key == "l2") {
      cfg.l2_latency = static_cast<unsigned>(parse_u64(val, label));
    } else if (key == "vlen") {
      cfg.vlen_bits = parse_u64(val, label);
    } else if (key == "mode") {
      if (val == "event") {
        cfg.timing_mode = TimingMode::kEventDriven;
      } else if (val == "cycle") {
        cfg.timing_mode = TimingMode::kCycleStepped;
      } else {
        fail("mode must be 'event' or 'cycle' in '" + label + "'");
      }
    } else {
      fail("unknown config knob '" + key + "' in '" + label + "'");
    }
  }
  cfg.validate();
  return ConfigPoint{label, cfg};
}

ShardSpec parse_shard_spec(std::string_view spec) {
  const std::size_t slash = spec.find('/');
  check(slash != std::string_view::npos && slash > 0 && slash + 1 < spec.size(),
        "shard spec must be i/N (e.g. 2/4): '" + std::string(spec) + "'");
  ShardSpec shard;
  shard.index = static_cast<unsigned>(parse_u64(spec.substr(0, slash), "shard"));
  shard.count = static_cast<unsigned>(parse_u64(spec.substr(slash + 1), "shard"));
  check(shard.count >= 1 && shard.index >= 1 && shard.index <= shard.count,
        "shard index must be in 1..count: '" + std::string(spec) + "'");
  return shard;
}

}  // namespace araxl::driver
