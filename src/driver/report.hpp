// Sweep reporters: JSON and CSV emission of driver results.
//
// Reports are pure functions of the result vector — no timestamps, host
// names, or wall-clock durations — so the same sweep produces byte-
// identical files whether it ran on 1 worker or 8 (the driver's
// reproducibility contract, asserted by tests and CI). Each record carries
// full config provenance (topology, VLEN, latency knobs, timing mode),
// the raw RunStats counters, derived metrics, the PPA-model outputs
// (frequency, area, power, GFLOPS, GFLOPS/W), and verification status.
#ifndef ARAXL_DRIVER_REPORT_HPP
#define ARAXL_DRIVER_REPORT_HPP

#include <string>
#include <vector>

#include "driver/runner.hpp"

namespace araxl::driver {

/// Reporter knobs. Both formats carry a `cache_hit` provenance column
/// (simulated vs replayed-from-store); by default it is zeroed so a warm
/// rerun or a merged shard set stays byte-identical to the cold unsharded
/// report (the `cmp`-based determinism contract). `live_cache_flags`
/// reports the real per-job values instead.
struct ReportOptions {
  bool live_cache_flags = false;
  /// Report the real engine-provenance counters (`wakeups_total`,
  /// `batched_iterations`, the typed `batch_rejects` breakdown, per-job
  /// retry `attempts`) instead of zeros. Like `cache_hit`, these are
  /// zeroed by default: replayed-from-store results carry no provenance
  /// (the store persists measurements, not how they were simulated), and
  /// the oracle wakes every cycle — live values would break the
  /// byte-identity `cmp`s between warm/cold and sharded/unsharded runs.
  bool live_provenance = false;
};

/// Whole-sweep JSON document: {"results": [...]} ordered by job index.
[[nodiscard]] std::string to_json(const std::vector<JobResult>& results,
                                  const ReportOptions& opts = {});

/// One CSV header line plus one row per job, ordered by job index.
[[nodiscard]] std::string to_csv(const std::vector<JobResult>& results,
                                 const ReportOptions& opts = {});

// Per-record serializers — the exact building blocks of to_json/to_csv,
// exposed so the serve-layer job ledger can persist each finished job's
// record text as a worker completes it and `araxl merge --ledger` can
// reassemble a report byte-identical to a single-process sweep (the same
// bytes, produced by the same code, only stored one record at a time).

/// One JSON record as it appears inside to_json's "results" array (no
/// surrounding framing, no trailing comma/newline).
[[nodiscard]] std::string json_record(const JobResult& r,
                                      const ReportOptions& opts = {});

/// The CSV header line to_csv emits, including the trailing newline.
[[nodiscard]] std::string csv_header();

/// One CSV data row as to_csv emits it, including the trailing newline.
[[nodiscard]] std::string csv_row(const JobResult& r,
                                  const ReportOptions& opts = {});

/// Writes `content` to `path` ("-" means stdout); throws ContractViolation
/// when the file cannot be opened.
void write_report(const std::string& path, const std::string& content);

}  // namespace araxl::driver

#endif  // ARAXL_DRIVER_REPORT_HPP
