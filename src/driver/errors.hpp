// Typed job errors and the retry policy.
//
// Every way a job can fail is classified into one `ErrorKind`, replacing
// the runner's bare error string as the decision surface: the retry policy
// keys off the kind (only transient kinds are worth a second attempt), the
// CLI exit-code contract keys off whether any kind is present, and reports
// carry the kind as a per-job `status` column. The error *message* remains
// for humans; nothing may branch on its text — and messages must never
// embed wall-clock values, because failed jobs flow into reports and
// reports are pure functions of the job set.
#ifndef ARAXL_DRIVER_ERRORS_HPP
#define ARAXL_DRIVER_ERRORS_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace araxl::driver {

/// Failure taxonomy for one job. Listed roughly from "your sweep is wrong"
/// to "the infrastructure hiccuped".
enum class ErrorKind : std::uint8_t {
  kNone = 0,          ///< no error (ok job)
  kConfig,            ///< invalid MachineConfig / unknown kernel
  kSimulation,        ///< contract violation or crash inside the simulator
  kVerifyFailed,      ///< golden verification exceeded tolerance
  kOracleDivergence,  ///< event-driven stats != cycle-stepped oracle
  kTimeout,           ///< wall-clock deadline or liveness watchdog fired
  kStoreIo,           ///< result-store I/O failed (job itself may be ok)
  kInjected,          ///< deterministic fault-injection harness fired
  kCancelled,         ///< cooperative shutdown (SIGINT/SIGTERM) cancelled it
};

/// Stable lowercase name ("ok", "config", ..., "cancelled") — the report
/// `status` vocabulary. Round-trips with parse via report consumers.
[[nodiscard]] std::string_view error_kind_name(ErrorKind kind);

/// A classified job failure. Thrown inside the runner where the kind is
/// known precisely (verification, oracle divergence, injected faults);
/// exceptions of other types are classified at the catch site.
class JobError : public std::runtime_error {
 public:
  JobError(ErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

/// Bounded-attempt retry with exponential backoff. Only transient kinds
/// are retried: a config error, a verification failure, or an oracle
/// divergence is deterministic — the retry would fail identically — and a
/// timeout already consumed a full deadline budget. Injected faults model
/// the transient infrastructure failures (flaky disk, preempted worker)
/// that retries exist for.
struct RetryPolicy {
  /// Total execution attempts per job (1 = no retry).
  unsigned max_attempts = 3;
  /// Backoff before retry k (1-based) is `backoff_ms * mult^(k-1)`, capped.
  std::uint64_t backoff_ms = 100;
  double backoff_mult = 2.0;
  std::uint64_t max_backoff_ms = 5000;
  /// Also retry timeout-kind failures (off by default: a hung job usually
  /// hangs again, and each attempt burns a whole deadline).
  bool retry_timeouts = false;

  [[nodiscard]] bool retryable(ErrorKind kind) const {
    if (kind == ErrorKind::kInjected) return true;
    if (kind == ErrorKind::kTimeout) return retry_timeouts;
    return false;
  }

  /// Backoff (ms) before retry `retry_index` (1-based: the sleep after the
  /// first failed attempt is backoff(1)). The undithered schedule — the
  /// runner applies backoff_jittered() on top.
  [[nodiscard]] std::uint64_t backoff(unsigned retry_index) const {
    double ms = static_cast<double>(backoff_ms);
    for (unsigned i = 1; i < retry_index; ++i) ms *= backoff_mult;
    const double cap = static_cast<double>(max_backoff_ms);
    return static_cast<std::uint64_t>(ms < cap ? ms : cap);
  }

  /// backoff() scaled by a deterministic jitter factor in [0.5, 1.5),
  /// keyed on (job fingerprint, retry_index) via the same splitmix64
  /// finalizer the fault injector uses. Without jitter, a re-dispatched
  /// fleet whose workers all hit the same transient store fault retries in
  /// lockstep against the shared file; with it the retry times spread out,
  /// yet remain exactly reproducible — the same job backs off the same
  /// number of milliseconds in every run, worker count, and shard layout.
  /// An empty fingerprint (no store, no faults: nothing to thunder against)
  /// returns the undithered backoff().
  [[nodiscard]] std::uint64_t backoff_jittered(
      unsigned retry_index, std::string_view fingerprint) const;
};

}  // namespace araxl::driver

#endif  // ARAXL_DRIVER_ERRORS_HPP
