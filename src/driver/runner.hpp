// Thread-pooled batch runner with fault tolerance.
//
// Executes expanded jobs on a worker pool. Every job gets its own Machine
// and Kernel instance (Machines are non-movable and self-referencing, so
// workers construct them in place), runs build -> simulate -> verify, and
// reports into a result slot indexed by job order — results are therefore
// deterministic and byte-stable across worker counts.
//
// Failure handling is layered (see driver/errors.hpp for the taxonomy):
//   * every throw — including non-std::exception throws — is isolated
//     into that job's result; the rest of the sweep proceeds;
//   * failures are classified into ErrorKind, and transient kinds are
//     retried with bounded exponential backoff (clock and sleeper are
//     injectable so tests run on a fake clock);
//   * a wall-clock `job_timeout_s` and the liveness watchdog cancel hung
//     or runaway jobs cooperatively at scheduler wakeups (timeout-kind
//     failure, never a stuck worker thread);
//   * a `CancelToken` (SIGINT/SIGTERM on the CLI) cancels queued and
//     running jobs cooperatively; finished results are kept and the store
//     already holds them, so a rerun resumes where the sweep stopped;
//   * store put()/flush() failures degrade to cache-off-with-warning —
//     a successfully simulated result is never failed by cache I/O.
#ifndef ARAXL_DRIVER_RUNNER_HPP
#define ARAXL_DRIVER_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/faults.hpp"
#include "driver/errors.hpp"
#include "driver/job.hpp"
#include "kernels/common.hpp"
#include "obs/metrics.hpp"
#include "sim/cancel.hpp"
#include "sim/stats.hpp"
#include "store/result_store.hpp"
#include "trace/trace.hpp"

namespace araxl::driver {

/// Outcome of one job. `ok` means simulate + verify (when enabled)
/// succeeded; otherwise `error_kind`/`error` say what went wrong.
struct JobResult {
  Job job;
  bool ok = false;
  RunStats stats;
  VerifyResult verify;
  double tolerance = 0.0;
  bool verified = false;   ///< verification was requested and ran
  bool cache_hit = false;  ///< replayed from the result store, not simulated
  /// Failure classification (kNone iff ok). Reports carry it as the
  /// per-job `status` column; the retry policy keys off it.
  ErrorKind error_kind = ErrorKind::kNone;
  std::string error;
  /// Execution attempts consumed (>1 means retries happened). Provenance:
  /// reports zero it by default so retried runs stay byte-identical.
  unsigned attempts = 1;
  /// The job simulated fine but its store put()/flush() failed; the result
  /// is served without caching (surfaced in the sweep summary, never a
  /// job failure).
  bool store_degraded = false;
  std::string store_warning;  ///< degradation detail (empty when healthy)
  /// Instruction trace captured during simulation; only filled when
  /// RunnerOptions::capture_trace is set and the job actually simulated
  /// (cache replays have no trace). shared_ptr so JobResult stays copyable.
  std::shared_ptr<InstrTrace> trace;
};

struct RunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned workers = 1;
  /// Check machine results against each kernel's golden reference.
  bool verify = true;
  /// Differential mode: re-run every job under TimingMode::kCycleStepped
  /// and fail the job unless RunStats match the event-driven run bit for
  /// bit (the EngineEquivalence contract, driven at sweep scale).
  bool check_oracle = false;
  /// Persistent result store; nullptr disables caching entirely. With a
  /// store, each job first looks up its fingerprint and replays a hit
  /// instead of simulating; every simulated success is put() + flush()ed,
  /// so an interrupted sweep resumes where it stopped.
  store::ResultStore* store = nullptr;
  /// Consult the store before simulating (false = write-only caching).
  bool use_cache = true;
  /// Recompute every job and overwrite its store entry even on a hit.
  bool refresh = false;
  /// Cache salt; empty selects store::build_version(). Tests override it
  /// to model results written by a different build.
  std::string cache_salt;

  // ---- fault tolerance ------------------------------------------------------
  /// Per-job wall-clock deadline in seconds; 0 disables. Checked
  /// cooperatively at scheduler wakeups — an expired job unwinds with a
  /// timeout-kind failure and an intact worker thread.
  double job_timeout_s = 0.0;
  /// Liveness-watchdog override applied to every job's MachineConfig
  /// (wakeups without progress before the engine declares a runaway);
  /// 0 keeps each config's own setting. Excluded from fingerprints.
  std::uint64_t watchdog_budget = 0;
  /// Bounded-attempt retry with exponential backoff for transient kinds.
  RetryPolicy retry;
  /// Sweep-wide cooperative shutdown token (CLI signal handling); jobs
  /// not yet started fail as kCancelled immediately, running jobs unwind
  /// at their next wakeup check. Null = never cancelled.
  const CancelToken* cancel = nullptr;
  /// Deterministic fault injection (store I/O + per-fingerprint job
  /// faults); null = no injection. Not owned.
  FaultInjector* faults = nullptr;
  /// Monotonic clock in milliseconds; defaults to std::chrono::steady_clock.
  /// Tests inject a fake to drive deadlines and observe backoff.
  std::function<std::uint64_t()> clock_ms;
  /// Retry-backoff sleeper; defaults to std::this_thread::sleep_for.
  std::function<void(std::uint64_t ms)> sleep_ms;
  /// Liveness pulse, invoked from the engine's cooperative check cadence
  /// (roughly every `RunControl::check_mask + 1` wakeups) while a job
  /// simulates. This is how a serve-layer worker renews its lease
  /// mid-simulation: a multi-minute job would otherwise look dead to the
  /// fleet and be speculatively re-dispatched. Must be cheap and must not
  /// throw; rate-limit internally (the callee decides when a pulse is due,
  /// on the injectable clock). Null (the default) costs nothing.
  std::function<void()> pulse;

  /// Progress callback; invoked serially (under an internal lock) as jobs
  /// finish, with the number completed so far.
  std::function<void(const JobResult&, std::size_t done, std::size_t total)>
      progress;
  /// Test hook: mutate machine state between simulation and verification
  /// (used to prove the golden verifiers catch corrupted results).
  std::function<void(Machine&, const Job&)> corrupt_before_verify;

  // ---- observability --------------------------------------------------------
  /// Optional metrics sink (not owned; must outlive the sweep). Thread-safe
  /// — all workers share it. Null (the default) disables all instrumentation
  /// at near-zero cost. Metrics are pure observers: simulated results and
  /// reports are identical with or without a registry attached.
  obs::MetricsRegistry* metrics = nullptr;
  /// Capture a per-job InstrTrace (with batching/wakeup markers enabled)
  /// into JobResult::trace for every simulated job — the feed for the
  /// Chrome-trace exporter (obs/trace_export.hpp). Cache hits carry no
  /// trace, so callers wanting complete traces should disable the cache.
  bool capture_trace = false;
};

/// Runs one job synchronously on the calling thread, including the retry
/// loop. Never throws: every failure mode is folded into the result.
JobResult run_job(const Job& job, const RunnerOptions& opts);

/// Runs all jobs on `opts.workers` threads; the result vector is indexed
/// by job order regardless of completion order.
std::vector<JobResult> run_jobs(const std::vector<Job>& jobs,
                                const RunnerOptions& opts);

/// expand() + run_jobs() in one call.
std::vector<JobResult> run_sweep(const SweepSpec& spec,
                                 const RunnerOptions& opts);

}  // namespace araxl::driver

#endif  // ARAXL_DRIVER_RUNNER_HPP
