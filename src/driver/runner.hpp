// Thread-pooled batch runner.
//
// Executes expanded jobs on a worker pool. Every job gets its own Machine
// and Kernel instance (Machines are non-movable and self-referencing, so
// workers construct them in place), runs build -> simulate -> verify, and
// reports into a result slot indexed by job order — results are therefore
// deterministic and byte-stable across worker counts. A job that throws
// (bad config, contract violation, failed verification) is isolated: its
// result carries the error and the rest of the sweep proceeds.
#ifndef ARAXL_DRIVER_RUNNER_HPP
#define ARAXL_DRIVER_RUNNER_HPP

#include <functional>
#include <string>
#include <vector>

#include "driver/job.hpp"
#include "kernels/common.hpp"
#include "sim/stats.hpp"
#include "store/result_store.hpp"

namespace araxl::driver {

/// Outcome of one job. `ok` means simulate + verify (when enabled)
/// succeeded; otherwise `error` says what went wrong.
struct JobResult {
  Job job;
  bool ok = false;
  RunStats stats;
  VerifyResult verify;
  double tolerance = 0.0;
  bool verified = false;   ///< verification was requested and ran
  bool cache_hit = false;  ///< replayed from the result store, not simulated
  std::string error;
};

struct RunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned workers = 1;
  /// Check machine results against each kernel's golden reference.
  bool verify = true;
  /// Differential mode: re-run every job under TimingMode::kCycleStepped
  /// and fail the job unless RunStats match the event-driven run bit for
  /// bit (the EngineEquivalence contract, driven at sweep scale).
  bool check_oracle = false;
  /// Persistent result store; nullptr disables caching entirely. With a
  /// store, each job first looks up its fingerprint and replays a hit
  /// instead of simulating; every simulated success is put() + flush()ed,
  /// so an interrupted sweep resumes where it stopped.
  store::ResultStore* store = nullptr;
  /// Consult the store before simulating (false = write-only caching).
  bool use_cache = true;
  /// Recompute every job and overwrite its store entry even on a hit.
  bool refresh = false;
  /// Cache salt; empty selects store::build_version(). Tests override it
  /// to model results written by a different build.
  std::string cache_salt;
  /// Progress callback; invoked serially (under an internal lock) as jobs
  /// finish, with the number completed so far.
  std::function<void(const JobResult&, std::size_t done, std::size_t total)>
      progress;
  /// Test hook: mutate machine state between simulation and verification
  /// (used to prove the golden verifiers catch corrupted results).
  std::function<void(Machine&, const Job&)> corrupt_before_verify;
};

/// Runs one job synchronously on the calling thread.
JobResult run_job(const Job& job, const RunnerOptions& opts);

/// Runs all jobs on `opts.workers` threads; the result vector is indexed
/// by job order regardless of completion order.
std::vector<JobResult> run_jobs(const std::vector<Job>& jobs,
                                const RunnerOptions& opts);

/// expand() + run_jobs() in one call.
std::vector<JobResult> run_sweep(const SweepSpec& spec,
                                 const RunnerOptions& opts);

}  // namespace araxl::driver

#endif  // ARAXL_DRIVER_RUNNER_HPP
