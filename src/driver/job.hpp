// Sweep specification and job expansion.
//
// A `SweepSpec` is the declarative form of every experiment in this repo:
// a config grid x kernel list x weak-scaling points, exactly the structure
// of the paper's Fig. 6 / Fig. 7 studies. `expand()` flattens the cross
// product into independent `Job`s whose seeds are derived purely from
// (base_seed, job index) via `Rng::fork`, so a sweep's results are
// bit-reproducible no matter how many workers execute it or in what order.
#ifndef ARAXL_DRIVER_JOB_HPP
#define ARAXL_DRIVER_JOB_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "machine/config.hpp"

namespace araxl::driver {

/// One named point of the config grid. The label is the user's spec string
/// ("araxl:64", "araxl:64:glsu=4", ...) and flows into reports as
/// provenance alongside the full MachineConfig.
struct ConfigPoint {
  std::string label;
  MachineConfig cfg;
};

/// Declarative sweep: every config runs every kernel at every
/// bytes-per-lane point.
struct SweepSpec {
  std::vector<ConfigPoint> configs;
  std::vector<std::string> kernels;
  std::vector<std::uint64_t> bytes_per_lane;
  /// Master seed for input generation; 0 keeps each kernel's legacy fixed
  /// inputs (reproduces the committed figure numbers exactly).
  std::uint64_t base_seed = 0;

  [[nodiscard]] std::size_t job_count() const {
    return configs.size() * kernels.size() * bytes_per_lane.size();
  }
};

/// One independent unit of work: a kernel at one weak-scaling point on one
/// machine configuration.
struct Job {
  std::size_t index = 0;  ///< position in the expanded sweep (stable)
  std::string config_label;
  MachineConfig cfg;
  std::string kernel;
  std::uint64_t bytes_per_lane = 0;
  /// Input-seed base for Kernel::seed_inputs (0 = legacy fixed inputs).
  std::uint64_t seed = 0;
};

/// Flattens the cross product, config-major then kernel then
/// bytes-per-lane; throws ContractViolation on an unknown kernel name or
/// an empty axis.
std::vector<Job> expand(const SweepSpec& spec);

/// One slice of a sweep distributed over `count` executors ("--shard i/N",
/// 1-based). The identity slice is {1, 1}.
struct ShardSpec {
  unsigned index = 1;
  unsigned count = 1;
};

/// Deterministically selects this shard's jobs: job i belongs to shard
/// (i mod count) + 1. Global job indices (and therefore seeds and report
/// records) are untouched, so shard reports merge back byte-identically.
std::vector<Job> filter_shard(std::vector<Job> jobs, ShardSpec shard);

}  // namespace araxl::driver

#endif  // ARAXL_DRIVER_JOB_HPP
