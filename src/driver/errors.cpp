#include "driver/errors.hpp"

namespace araxl::driver {

std::string_view error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone: return "ok";
    case ErrorKind::kConfig: return "config";
    case ErrorKind::kSimulation: return "simulation";
    case ErrorKind::kVerifyFailed: return "verify_failed";
    case ErrorKind::kOracleDivergence: return "oracle_divergence";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kStoreIo: return "store_io";
    case ErrorKind::kInjected: return "injected";
    case ErrorKind::kCancelled: return "cancelled";
  }
  return "unknown";
}

}  // namespace araxl::driver
