#include "driver/errors.hpp"

namespace araxl::driver {

namespace {

/// splitmix64 finalizer — same full-avalanche mix as common/faults.cpp.
constexpr std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

std::uint64_t RetryPolicy::backoff_jittered(
    unsigned retry_index, std::string_view fingerprint) const {
  const std::uint64_t base = backoff(retry_index);
  if (base == 0 || fingerprint.empty()) return base;
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : fingerprint) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  h = mix(h ^ mix(retry_index));
  // 53 uniform mantissa bits onto [0.5, 1.5).
  const double factor = 0.5 + static_cast<double>(h >> 11) * 0x1.0p-53;
  double ms = static_cast<double>(base) * factor;
  const double cap = static_cast<double>(max_backoff_ms);
  if (ms > cap) ms = cap;
  if (ms < 1.0) ms = 1.0;  // a zero sleep would defeat the backoff entirely
  return static_cast<std::uint64_t>(ms);
}

std::string_view error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone: return "ok";
    case ErrorKind::kConfig: return "config";
    case ErrorKind::kSimulation: return "simulation";
    case ErrorKind::kVerifyFailed: return "verify_failed";
    case ErrorKind::kOracleDivergence: return "oracle_divergence";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kStoreIo: return "store_io";
    case ErrorKind::kInjected: return "injected";
    case ErrorKind::kCancelled: return "cancelled";
  }
  return "unknown";
}

}  // namespace araxl::driver
