#include "driver/registry.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace araxl::driver {

namespace {

// The paper's Fig. 6 weak-scaling grid; kernels without a special grid
// sweep these points by default.
const std::vector<std::uint64_t> kDefaultBplGrid = {64, 128, 256, 512};

}  // namespace

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

KernelRegistry::KernelRegistry() {
  // Auto-register everything src/kernels/ exports. Instantiating each
  // kernel once captures its name and Table-I metadata; the stored factory
  // re-resolves by name so entries stay in sync with `make_kernel`.
  const auto register_set = [this](std::vector<std::unique_ptr<Kernel>> set,
                                   bool extension) {
    for (const auto& k : set) {
      KernelInfo info;
      info.name = std::string(k->name());
      info.factory = [name = info.name] { return make_kernel(name); };
      info.default_bpl_grid = kDefaultBplGrid;
      info.max_perf_factor = k->max_perf_factor();
      info.extension = extension;
      add(std::move(info));
    }
  };
  register_set(make_all_kernels(), /*extension=*/false);
  register_set(make_extension_kernels(), /*extension=*/true);
}

void KernelRegistry::add(KernelInfo info) {
  check(static_cast<bool>(info.factory), "kernel factory must not be null");
  check(!info.name.empty(), "kernel name must not be empty");
  check(find(info.name) == nullptr, "duplicate kernel registration");
  infos_.push_back(std::move(info));
}

const KernelInfo* KernelRegistry::find(std::string_view name) const {
  for (const KernelInfo& info : infos_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

const KernelInfo& KernelRegistry::at(std::string_view name) const {
  const KernelInfo* info = find(name);
  if (info == nullptr) fail("unknown kernel: " + std::string(name));
  return *info;
}

std::unique_ptr<Kernel> KernelRegistry::make(std::string_view name) const {
  return at(name).factory();
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(infos_.size());
  for (const KernelInfo& info : infos_) out.push_back(info.name);
  return out;
}

std::vector<std::string> KernelRegistry::paper_names() const {
  std::vector<std::string> out;
  for (const KernelInfo& info : infos_) {
    if (!info.extension) out.push_back(info.name);
  }
  return out;
}

}  // namespace araxl::driver
