// Kernel registry — the driver's catalog of runnable workloads.
//
// Each entry bundles what a sweep needs to know about one kernel: a factory
// producing the program builder + input generator + golden verifier (the
// `Kernel` object), the paper's default weak-scaling grid, and Table-I
// metadata. The registry auto-populates from every kernel in src/kernels/
// (the six Table-I kernels plus the extension set), so a kernel added to
// `make_all_kernels()` / `make_extension_kernels()` is immediately
// sweepable from the CLI with no driver changes. Tests may `add()` extra
// synthetic kernels (e.g. vl==0 probes).
#ifndef ARAXL_DRIVER_REGISTRY_HPP
#define ARAXL_DRIVER_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kernels/common.hpp"

namespace araxl::driver {

/// One registered kernel.
struct KernelInfo {
  std::string name;
  std::function<std::unique_ptr<Kernel>()> factory;
  /// Default weak-scaling grid in bytes/lane (paper Fig. 6 points).
  std::vector<std::uint64_t> default_bpl_grid;
  /// Table-I "Max Perf" factor (DP-FLOP/cycle per lane).
  double max_perf_factor = 0.0;
  /// True for kernels beyond the paper's Table-I benchmark set.
  bool extension = false;
};

/// Process-wide kernel catalog. Reads are lock-free and thread-safe once
/// construction finishes; `add()` is for test setup (single-threaded,
/// before workers start).
class KernelRegistry {
 public:
  /// The singleton, auto-registered with every kernel in src/kernels/ on
  /// first use.
  static KernelRegistry& instance();

  /// Registers an extra kernel; throws ContractViolation on a duplicate
  /// name or a null factory.
  void add(KernelInfo info);

  /// Entry for `name`, or nullptr when unknown.
  [[nodiscard]] const KernelInfo* find(std::string_view name) const;

  /// Entry for `name`; throws ContractViolation when unknown.
  [[nodiscard]] const KernelInfo& at(std::string_view name) const;

  /// Fresh kernel instance for `name`; throws when unknown.
  [[nodiscard]] std::unique_ptr<Kernel> make(std::string_view name) const;

  /// All registered names in registration order (paper order first).
  [[nodiscard]] std::vector<std::string> names() const;

  /// The six Table-I kernel names, in paper order.
  [[nodiscard]] std::vector<std::string> paper_names() const;

  [[nodiscard]] std::size_t size() const { return infos_.size(); }

 private:
  KernelRegistry();

  std::vector<KernelInfo> infos_;
};

}  // namespace araxl::driver

#endif  // ARAXL_DRIVER_REGISTRY_HPP
