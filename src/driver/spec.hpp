// Textual sweep-axis specs, shared by the araxl CLI and tests.
//
// Config grammar (colon-separated, label = the spec string itself):
//   araxl:<lanes>              e.g. araxl:64   (paper 4-lane clusters)
//   araxl:<clusters>x<lpc>     e.g. araxl:8x8  (shape exploration)
//   ara2:<lanes>               e.g. ara2:8     (lumped baseline)
// followed by optional knob suffixes:
//   :glsu=<n> :reqi=<n> :ring=<n>   interface register cuts (Fig. 5/7)
//   :l2=<cycles>                    L2 latency
//   :vlen=<bits>                    explicit register length
//   :mode=cycle|event               timing kernel selection
// e.g. "araxl:64:glsu=4" is the Fig. 7a variant.
#ifndef ARAXL_DRIVER_SPEC_HPP
#define ARAXL_DRIVER_SPEC_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "driver/job.hpp"

namespace araxl::driver {

/// Parses one config spec; throws ContractViolation with the offending
/// spec on any syntax or validation error.
[[nodiscard]] ConfigPoint parse_config_spec(std::string_view spec);

/// Splits "a,b,c" (empty pieces rejected).
[[nodiscard]] std::vector<std::string> split_list(std::string_view csv);

/// Parses "64,128,256" into integers; throws on junk.
[[nodiscard]] std::vector<std::uint64_t> parse_u64_list(std::string_view csv);

/// Parses a "--shard i/N" spec ("2/4"); throws on junk or i outside 1..N.
[[nodiscard]] ShardSpec parse_shard_spec(std::string_view spec);

}  // namespace araxl::driver

#endif  // ARAXL_DRIVER_SPEC_HPP
