#include "driver/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "common/contracts.hpp"
#include "common/fmt.hpp"
#include "driver/registry.hpp"
#include "machine/machine.hpp"
#include "store/version.hpp"

namespace araxl::driver {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

store::JobKey key_for(const Job& job, const RunnerOptions& opts) {
  store::JobKey key;
  key.config = store::canonical_config(job.cfg);
  key.kernel = job.kernel;
  key.bytes_per_lane = job.bytes_per_lane;
  key.seed = job.seed;
  key.version =
      opts.cache_salt.empty() ? store::build_version() : opts.cache_salt;
  return key;
}

// Caching only applies to clean production runs: the oracle-check and the
// corruption test hook must always simulate.
bool cacheable(const RunnerOptions& opts) {
  return opts.store != nullptr && !opts.check_oracle &&
         !opts.corrupt_before_verify;
}

/// Replays a stored result as a JobResult, or nullopt when the entry
/// cannot satisfy this run (e.g. verification is required but the cached
/// run never verified). Replay is projected onto the requested options so
/// a warm run's report is byte-identical to the cold run's.
std::optional<JobResult> replay(const Job& job, const RunnerOptions& opts,
                                const store::StoredResult& hit) {
  if (opts.verify && !hit.verified) return std::nullopt;
  JobResult res;
  res.job = job;
  res.stats = hit.stats;
  res.cache_hit = true;
  if (opts.verify) {
    res.verified = true;
    res.verify = hit.verify;
    res.tolerance = hit.tolerance;
  }
  res.ok = true;
  return res;
}

/// Resets `res` to a clean classified failure (partial successes from a
/// half-run attempt must not leak stats into reports).
void fill_error(JobResult& res, ErrorKind kind, std::string msg) {
  const Job job = res.job;
  res = JobResult{};
  res.job = job;
  res.ok = false;
  res.error_kind = kind;
  res.error = std::move(msg);
}

/// Cancellation policy for one attempt: the sweep-wide shutdown token plus
/// this attempt's wall-clock deadline (captured at attempt start, so each
/// retry gets a fresh budget).
RunControl make_control(const RunnerOptions& opts) {
  RunControl ctl;
  ctl.shutdown = opts.cancel;
  std::function<bool()> deadline;
  if (opts.job_timeout_s > 0.0) {
    std::function<std::uint64_t()> clock =
        opts.clock_ms ? opts.clock_ms : std::function<std::uint64_t()>(steady_ms);
    const std::uint64_t start = clock();
    const std::uint64_t budget_ms =
        static_cast<std::uint64_t>(opts.job_timeout_s * 1000.0);
    deadline = [clock = std::move(clock), start, budget_ms] {
      return clock() - start >= budget_ms;
    };
  }
  if (opts.pulse) {
    // The pulse rides the deadline probe: the engines already call it at
    // the cooperative check cadence, so a lease heartbeat costs no extra
    // polling surface in the timing kernels.
    ctl.deadline_exceeded = [pulse = opts.pulse,
                             deadline = std::move(deadline)] {
      pulse();
      return deadline && deadline();
    };
  } else {
    ctl.deadline_exceeded = std::move(deadline);
  }
  return ctl;
}

/// The injected-hang fault: spin cooperatively until the deadline or a
/// shutdown request fires (both raise SimCancelled) — a deterministic
/// stand-in for a wedged simulation that proves a hung job cannot wedge
/// its worker thread.
[[noreturn]] void hang_cooperatively(const RunnerOptions& opts,
                                     const RunControl& ctl) {
  if (!ctl.enabled()) {
    throw JobError(ErrorKind::kInjected,
                   "injected hang with no deadline or shutdown token "
                   "configured — refusing to hang the worker forever");
  }
  for (;;) {
    ctl.check_now();  // throws when the deadline/shutdown fires
    if (opts.sleep_ms) {
      opts.sleep_ms(1);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

// Runs the job body; throws classified JobErrors (and lets engine-level
// SimCancelled / DeadlockError propagate) so run_attempt can funnel every
// failure kind into the same isolated-failure path.
JobResult execute(const Job& job, const RunnerOptions& opts,
                  const RunControl& ctl) {
  JobResult res;
  res.job = job;

  const KernelRegistry& registry = KernelRegistry::instance();
  try {
    job.cfg.validate();
    (void)registry.at(job.kernel);
  } catch (const ContractViolation& e) {
    throw JobError(ErrorKind::kConfig, e.what());
  }

  MachineConfig cfg = job.cfg;
  if (opts.watchdog_budget != 0) cfg.watchdog_budget = opts.watchdog_budget;
  const RunControl* control = ctl.enabled() ? &ctl : nullptr;

  obs::MetricsRegistry* mx = opts.metrics;
  const std::uint64_t t0 = mx != nullptr ? steady_ns() : 0;

  Machine m(cfg);
  auto kernel = registry.make(job.kernel);
  kernel->seed_inputs(job.seed);
  const Program prog = kernel->build(m, job.bytes_per_lane);
  const std::uint64_t t_built = mx != nullptr ? steady_ns() : 0;

  InstrTrace* trace = nullptr;
  if (opts.capture_trace) {
    res.trace = std::make_shared<InstrTrace>();
    res.trace->enable_markers();
    trace = res.trace.get();
  }
  res.stats = m.run(prog, trace, control, mx);
  if (mx != nullptr) {
    const std::uint64_t t_sim = steady_ns();
    mx->counter("runner.phase.build_ns")->add(t_built - t0);
    mx->counter("runner.phase.simulate_ns")->add(t_sim - t_built);
    mx->counter("runner.jobs_simulated")->inc();
  }

  if (opts.check_oracle) {
    const std::uint64_t t_pre = mx != nullptr ? steady_ns() : 0;
    // Fresh machine + kernel: build() writes inputs into machine memory,
    // so the oracle run needs its own architectural state. The oracle run
    // is deliberately unmetered — its engine counters would double-count
    // every unit cycle against the run under test.
    MachineConfig oracle_cfg = cfg;
    oracle_cfg.timing_mode = TimingMode::kCycleStepped;
    Machine oracle(oracle_cfg);
    auto oracle_kernel = registry.make(job.kernel);
    oracle_kernel->seed_inputs(job.seed);
    const Program oracle_prog = oracle_kernel->build(oracle, job.bytes_per_lane);
    const RunStats oracle_stats = oracle.run(oracle_prog, nullptr, control);
    if (mx != nullptr) {
      mx->counter("runner.phase.oracle_ns")->add(steady_ns() - t_pre);
    }
    if (!(res.stats == oracle_stats)) {
      throw JobError(ErrorKind::kOracleDivergence,
                     "event-driven RunStats diverge from the cycle-stepped "
                     "oracle");
    }
  }

  if (opts.corrupt_before_verify) opts.corrupt_before_verify(m, job);

  if (opts.verify) {
    const std::uint64_t t_pre = mx != nullptr ? steady_ns() : 0;
    res.verified = true;
    res.tolerance = kernel->tolerance();
    res.verify = kernel->verify(m);
    if (mx != nullptr) {
      mx->counter("runner.phase.verify_ns")->add(steady_ns() - t_pre);
    }
    if (!res.verify.ok(res.tolerance)) {
      throw JobError(
          ErrorKind::kVerifyFailed,
          strprintf("golden verification failed: max_rel_err=%.3e > tol=%.3e",
                    res.verify.max_rel_err, res.tolerance));
    }
  }
  res.ok = true;
  return res;
}

/// One execution attempt, every failure mode folded into the result:
/// typed JobErrors keep their kind, engine-level cancellations map to
/// timeout/cancelled, a tripped watchdog maps to timeout, and anything
/// else — including non-std::exception throws — is isolated as a
/// simulation-kind failure instead of unwinding into the worker pool
/// (where it would std::terminate the process).
JobResult run_attempt(const Job& job, const RunnerOptions& opts,
                      const store::JobKey& key, const std::string& fp,
                      unsigned attempt) {
  JobResult res;
  res.job = job;
  try {
    if (opts.cancel != nullptr && opts.cancel->requested()) {
      throw SimCancelled(CancelReason::kShutdown,
                         "cancelled before start: shutdown requested");
    }
    if (opts.faults != nullptr && !fp.empty()) {
      const RunControl hang_ctl = make_control(opts);
      switch (opts.faults->job_fault(fp, attempt)) {
        case FaultInjector::JobFault::kTransient:
          throw JobError(ErrorKind::kInjected,
                         strprintf("injected transient job fault (attempt %u)",
                                   attempt));
        case FaultInjector::JobFault::kPermanent:
          throw JobError(ErrorKind::kInjected, "injected permanent job fault");
        case FaultInjector::JobFault::kHang:
          hang_cooperatively(opts, hang_ctl);
        case FaultInjector::JobFault::kNone:
          break;
      }
    }
    if (cacheable(opts)) {
      if (opts.use_cache && !opts.refresh) {
        if (const auto hit = opts.store->find(fp)) {
          if (auto replayed = replay(job, opts, *hit)) {
            if (opts.metrics != nullptr) {
              opts.metrics->counter("runner.cache_hits")->inc();
            }
            return *replayed;
          }
        }
      }
      const RunControl ctl = make_control(opts);
      res = execute(job, opts, ctl);
      store::StoredResult rec;
      rec.fingerprint = fp;
      rec.version = key.version;
      rec.config = key.config;
      rec.label = job.config_label;
      rec.kernel = job.kernel;
      rec.bytes_per_lane = job.bytes_per_lane;
      rec.seed = job.seed;
      rec.stats = res.stats;
      rec.verified = res.verified;
      rec.tolerance = res.tolerance;
      rec.verify = res.verify;
      try {
        const std::uint64_t t_pre = opts.metrics != nullptr ? steady_ns() : 0;
        opts.store->put(std::move(rec));
        opts.store->flush();
        if (opts.metrics != nullptr) {
          opts.metrics->counter("runner.phase.store_ns")
              ->add(steady_ns() - t_pre);
        }
      } catch (const store::StoreIoError& e) {
        // A successfully simulated result is never failed by cache I/O:
        // degrade to cache-off-with-warning (the job is still ok, the
        // sweep summary surfaces the warning, a rerun re-simulates).
        res.store_degraded = true;
        res.store_warning = e.what();
      }
      return res;
    }
    const RunControl ctl = make_control(opts);
    return execute(job, opts, ctl);
  } catch (const SimCancelled& e) {
    fill_error(res,
               e.reason() == CancelReason::kDeadline ? ErrorKind::kTimeout
                                                     : ErrorKind::kCancelled,
               e.what());
  } catch (const JobError& e) {
    fill_error(res, e.kind(), e.what());
  } catch (const DeadlockError& e) {
    fill_error(res, ErrorKind::kTimeout,
               std::string("liveness watchdog: ") + e.what());
  } catch (const store::StoreIoError& e) {
    fill_error(res, ErrorKind::kStoreIo, e.what());
  } catch (const ContractViolation& e) {
    fill_error(res, ErrorKind::kSimulation, e.what());
  } catch (const std::exception& e) {
    fill_error(res, ErrorKind::kSimulation, e.what());
  } catch (...) {
    fill_error(res, ErrorKind::kSimulation,
               "non-std::exception thrown by job (isolated by the runner)");
  }
  return res;
}

}  // namespace

JobResult run_job(const Job& job, const RunnerOptions& opts) {
  JobResult res;
  res.job = job;
  try {
    store::JobKey key;
    std::string fp;
    if (opts.store != nullptr || opts.faults != nullptr) {
      key = key_for(job, opts);
      fp = store::fingerprint(key);
    }
    const unsigned max_attempts = std::max(1u, opts.retry.max_attempts);
    for (unsigned attempt = 1;; ++attempt) {
      res = run_attempt(job, opts, key, fp, attempt);
      res.attempts = attempt;
      if (res.ok || !opts.retry.retryable(res.error_kind) ||
          attempt >= max_attempts) {
        return res;
      }
      if (opts.metrics != nullptr) opts.metrics->counter("runner.retries")->inc();
      // Shutdown pre-empts backoff sleeps: a Ctrl-C must not wait out the
      // exponential schedule before the sweep can wind down.
      if (opts.cancel != nullptr && opts.cancel->requested()) return res;
      const std::uint64_t ms = opts.retry.backoff_jittered(attempt, fp);
      if (opts.sleep_ms) {
        opts.sleep_ms(ms);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
    }
  } catch (const ContractViolation& e) {
    // Fingerprinting an unbuildable config lands here, before any attempt.
    fill_error(res, ErrorKind::kConfig, e.what());
  } catch (const std::exception& e) {
    fill_error(res, ErrorKind::kSimulation, e.what());
  } catch (...) {
    fill_error(res, ErrorKind::kSimulation,
               "non-std::exception thrown by job (isolated by the runner)");
  }
  return res;
}

std::vector<JobResult> run_jobs(const std::vector<Job>& jobs,
                                const RunnerOptions& opts) {
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  unsigned workers = opts.workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, jobs.size()));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = run_job(jobs[i], opts);
      } catch (...) {
        // run_job isolates everything; this is the last line of defence so
        // a pool thread can never unwind into std::terminate.
        JobResult r;
        r.job = jobs[i];
        r.error_kind = ErrorKind::kSimulation;
        r.error = "internal: run_job threw past its isolation";
        results[i] = std::move(r);
      }
      const std::size_t finished = done.fetch_add(1) + 1;
      if (opts.progress) {
        const std::lock_guard<std::mutex> lock(progress_mu);
        opts.progress(results[i], finished, jobs.size());
      }
    }
  };

  if (workers == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

std::vector<JobResult> run_sweep(const SweepSpec& spec,
                                 const RunnerOptions& opts) {
  return run_jobs(expand(spec), opts);
}

}  // namespace araxl::driver
