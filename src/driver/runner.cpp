#include "driver/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "common/contracts.hpp"
#include "common/fmt.hpp"
#include "driver/registry.hpp"
#include "machine/machine.hpp"
#include "store/version.hpp"

namespace araxl::driver {

namespace {

store::JobKey key_for(const Job& job, const RunnerOptions& opts) {
  store::JobKey key;
  key.config = store::canonical_config(job.cfg);
  key.kernel = job.kernel;
  key.bytes_per_lane = job.bytes_per_lane;
  key.seed = job.seed;
  key.version =
      opts.cache_salt.empty() ? store::build_version() : opts.cache_salt;
  return key;
}

// Caching only applies to clean production runs: the oracle-check and the
// corruption test hook must always simulate.
bool cacheable(const RunnerOptions& opts) {
  return opts.store != nullptr && !opts.check_oracle &&
         !opts.corrupt_before_verify;
}

/// Replays a stored result as a JobResult, or nullopt when the entry
/// cannot satisfy this run (e.g. verification is required but the cached
/// run never verified). Replay is projected onto the requested options so
/// a warm run's report is byte-identical to the cold run's.
std::optional<JobResult> replay(const Job& job, const RunnerOptions& opts,
                                const store::StoredResult& hit) {
  if (opts.verify && !hit.verified) return std::nullopt;
  JobResult res;
  res.job = job;
  res.stats = hit.stats;
  res.cache_hit = true;
  if (opts.verify) {
    res.verified = true;
    res.verify = hit.verify;
    res.tolerance = hit.tolerance;
  }
  res.ok = true;
  return res;
}

// Runs the job body; throws on any failure so run_job can funnel every
// error kind (config validation, simulation contract, verification) into
// the same isolated-failure path.
JobResult execute(const Job& job, const RunnerOptions& opts) {
  JobResult res;
  res.job = job;

  job.cfg.validate();
  const KernelRegistry& registry = KernelRegistry::instance();

  Machine m(job.cfg);
  auto kernel = registry.make(job.kernel);
  kernel->seed_inputs(job.seed);
  const Program prog = kernel->build(m, job.bytes_per_lane);
  res.stats = m.run(prog);

  if (opts.check_oracle) {
    // Fresh machine + kernel: build() writes inputs into machine memory,
    // so the oracle run needs its own architectural state.
    MachineConfig oracle_cfg = job.cfg;
    oracle_cfg.timing_mode = TimingMode::kCycleStepped;
    Machine oracle(oracle_cfg);
    auto oracle_kernel = registry.make(job.kernel);
    oracle_kernel->seed_inputs(job.seed);
    const Program oracle_prog = oracle_kernel->build(oracle, job.bytes_per_lane);
    const RunStats oracle_stats = oracle.run(oracle_prog);
    check(res.stats == oracle_stats,
          "event-driven RunStats diverge from the cycle-stepped oracle");
  }

  if (opts.corrupt_before_verify) opts.corrupt_before_verify(m, job);

  if (opts.verify) {
    res.verified = true;
    res.tolerance = kernel->tolerance();
    res.verify = kernel->verify(m);
    if (!res.verify.ok(res.tolerance)) {
      fail(strprintf("golden verification failed: max_rel_err=%.3e > tol=%.3e",
                     res.verify.max_rel_err, res.tolerance));
    }
  }
  res.ok = true;
  return res;
}

}  // namespace

JobResult run_job(const Job& job, const RunnerOptions& opts) {
  try {
    if (cacheable(opts)) {
      const store::JobKey key = key_for(job, opts);
      const std::string fp = store::fingerprint(key);
      if (opts.use_cache && !opts.refresh) {
        if (const auto hit = opts.store->find(fp)) {
          if (auto replayed = replay(job, opts, *hit)) return *replayed;
        }
      }
      JobResult res = execute(job, opts);
      store::StoredResult rec;
      rec.fingerprint = fp;
      rec.version = key.version;
      rec.config = key.config;
      rec.label = job.config_label;
      rec.kernel = job.kernel;
      rec.bytes_per_lane = job.bytes_per_lane;
      rec.seed = job.seed;
      rec.stats = res.stats;
      rec.verified = res.verified;
      rec.tolerance = res.tolerance;
      rec.verify = res.verify;
      opts.store->put(std::move(rec));
      opts.store->flush();
      return res;
    }
    return execute(job, opts);
  } catch (const std::exception& e) {
    JobResult res;
    res.job = job;
    res.ok = false;
    res.error = e.what();
    return res;
  }
}

std::vector<JobResult> run_jobs(const std::vector<Job>& jobs,
                                const RunnerOptions& opts) {
  std::vector<JobResult> results(jobs.size());
  if (jobs.empty()) return results;

  unsigned workers = opts.workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, jobs.size()));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      results[i] = run_job(jobs[i], opts);
      const std::size_t finished = done.fetch_add(1) + 1;
      if (opts.progress) {
        const std::lock_guard<std::mutex> lock(progress_mu);
        opts.progress(results[i], finished, jobs.size());
      }
    }
  };

  if (workers == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

std::vector<JobResult> run_sweep(const SweepSpec& spec,
                                 const RunnerOptions& opts) {
  return run_jobs(expand(spec), opts);
}

}  // namespace araxl::driver
