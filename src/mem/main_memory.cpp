#include "mem/main_memory.hpp"

#include <cstring>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#define ARAXL_MEM_HAVE_MMAP 1
#include <sys/mman.h>
#else
#define ARAXL_MEM_HAVE_MMAP 0
#endif

namespace araxl {

MainMemory::MainMemory(std::uint64_t size_bytes) : size_(size_bytes) {
  check(size_bytes > 0, "memory size must be positive");
#if ARAXL_MEM_HAVE_MMAP
  // Anonymous private mappings are zero-filled on first touch, so a fresh
  // Machine pays only for the pages its workload actually uses.
  void* p = ::mmap(nullptr, size_bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    data_ = static_cast<std::uint8_t*>(p);
    mapped_ = true;
    return;
  }
#endif
  data_ = new std::uint8_t[size_bytes]();
}

MainMemory::~MainMemory() {
#if ARAXL_MEM_HAVE_MMAP
  if (mapped_) {
    ::munmap(data_, size_);
    return;
  }
#endif
  delete[] data_;
}

void MainMemory::read(std::uint64_t addr, std::span<std::uint8_t> out) const {
  bounds(addr, out.size());
  std::memcpy(out.data(), data_ + addr, out.size());
}

void MainMemory::write(std::uint64_t addr, std::span<const std::uint8_t> in) {
  bounds(addr, in.size());
  std::memcpy(data_ + addr, in.data(), in.size());
}

void MainMemory::store_doubles(std::uint64_t addr, std::span<const double> values) {
  bounds(addr, values.size() * sizeof(double));
  std::memcpy(data_ + addr, values.data(), values.size() * sizeof(double));
}

std::vector<double> MainMemory::load_doubles(std::uint64_t addr,
                                             std::size_t count) const {
  bounds(addr, count * sizeof(double));
  std::vector<double> out(count);
  std::memcpy(out.data(), data_ + addr, count * sizeof(double));
  return out;
}

}  // namespace araxl
