#include "mem/main_memory.hpp"

#include <algorithm>

namespace araxl {

MainMemory::MainMemory(std::uint64_t size_bytes) : bytes_(size_bytes, 0) {
  check(size_bytes > 0, "memory size must be positive");
}

void MainMemory::read(std::uint64_t addr, std::span<std::uint8_t> out) const {
  bounds(addr, out.size());
  std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void MainMemory::write(std::uint64_t addr, std::span<const std::uint8_t> in) {
  bounds(addr, in.size());
  std::memcpy(bytes_.data() + addr, in.data(), in.size());
}

void MainMemory::store_doubles(std::uint64_t addr, std::span<const double> values) {
  bounds(addr, values.size() * sizeof(double));
  std::memcpy(bytes_.data() + addr, values.data(), values.size() * sizeof(double));
}

std::vector<double> MainMemory::load_doubles(std::uint64_t addr,
                                             std::size_t count) const {
  bounds(addr, count * sizeof(double));
  std::vector<double> out(count);
  std::memcpy(out.data(), bytes_.data() + addr, count * sizeof(double));
  return out;
}

}  // namespace araxl
