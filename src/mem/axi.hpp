// AXI-style request decomposition. The GLSU's Addrgen stage splits vector
// memory requests into bursts that respect bus width and the AXI 4-KiB
// boundary rule; the beat counts drive the timing model and the Align stage
// cost (misaligned first beats).
#ifndef ARAXL_MEM_AXI_HPP
#define ARAXL_MEM_AXI_HPP

#include <cstdint>
#include <vector>

namespace araxl {

/// One AXI burst: contiguous, within a 4-KiB page.
struct AxiBurst {
  std::uint64_t addr = 0;
  std::uint64_t len_bytes = 0;
  /// Number of data beats on a bus of `bus_bytes` (set by split function).
  std::uint64_t beats = 0;
};

/// Splits [addr, addr+len) into bursts that do not cross 4-KiB boundaries
/// and computes per-burst beat counts for the given bus width.
/// Misalignment costs an extra beat whenever the first byte is not
/// bus-aligned (the Align stage shifts it into place).
std::vector<AxiBurst> split_bursts(std::uint64_t addr, std::uint64_t len_bytes,
                                   std::uint64_t bus_bytes);

/// Total data beats needed to move [addr, addr+len) over a `bus_bytes` bus,
/// including the misalignment penalty beat per burst.
std::uint64_t total_beats(std::uint64_t addr, std::uint64_t len_bytes,
                          std::uint64_t bus_bytes);

}  // namespace araxl

#endif  // ARAXL_MEM_AXI_HPP
