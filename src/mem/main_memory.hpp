// Flat L2 memory model. AraXL's clusters see L2 through the GLSU; the
// functional side is a plain byte-addressable store with typed accessors,
// while all timing (latency, bandwidth, beats) is modelled in the GLSU and
// the timing engine.
#ifndef ARAXL_MEM_MAIN_MEMORY_HPP
#define ARAXL_MEM_MAIN_MEMORY_HPP

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/contracts.hpp"

namespace araxl {

/// Byte-addressable main memory (the paper assumes an L2 of at least
/// 16 MiB to fit the benchmarks; we default to 64 MiB).
class MainMemory {
 public:
  static constexpr std::uint64_t kDefaultSize = 64ull << 20;

  explicit MainMemory(std::uint64_t size_bytes = kDefaultSize);

  [[nodiscard]] std::uint64_t size() const noexcept { return bytes_.size(); }

  void read(std::uint64_t addr, std::span<std::uint8_t> out) const;
  void write(std::uint64_t addr, std::span<const std::uint8_t> in);

  /// Typed scalar accessors (little-endian, matching RISC-V).
  template <typename T>
  [[nodiscard]] T load(std::uint64_t addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    bounds(addr, sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + addr, sizeof(T));
    return v;
  }

  template <typename T>
  void store(std::uint64_t addr, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bounds(addr, sizeof(T));
    std::memcpy(bytes_.data() + addr, &v, sizeof(T));
  }

  /// Bounds-checked raw window (single check for a whole bulk transfer).
  [[nodiscard]] const std::uint8_t* raw(std::uint64_t addr,
                                        std::uint64_t len) const {
    bounds(addr, len);
    return bytes_.data() + addr;
  }
  [[nodiscard]] std::uint8_t* raw(std::uint64_t addr, std::uint64_t len) {
    bounds(addr, len);
    return bytes_.data() + addr;
  }

  /// Bulk helpers for workload setup/verification.
  void store_doubles(std::uint64_t addr, std::span<const double> values);
  [[nodiscard]] std::vector<double> load_doubles(std::uint64_t addr,
                                                 std::size_t count) const;

  void fill(std::uint8_t value) { std::fill(bytes_.begin(), bytes_.end(), value); }

 private:
  void bounds(std::uint64_t addr, std::uint64_t len) const {
    check(addr + len <= bytes_.size() && addr + len >= addr,
          "memory access out of bounds");
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace araxl

#endif  // ARAXL_MEM_MAIN_MEMORY_HPP
