// Flat L2 memory model. AraXL's clusters see L2 through the GLSU; the
// functional side is a plain byte-addressable store with typed accessors,
// while all timing (latency, bandwidth, beats) is modelled in the GLSU and
// the timing engine.
#ifndef ARAXL_MEM_MAIN_MEMORY_HPP
#define ARAXL_MEM_MAIN_MEMORY_HPP

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/contracts.hpp"

namespace araxl {

/// Byte-addressable main memory (the paper assumes an L2 of at least
/// 16 MiB to fit the benchmarks; we default to 64 MiB).
///
/// Backed by an anonymous mmap where available: pages are zero-on-demand,
/// so constructing a Machine costs O(pages actually touched), not O(64 MiB)
/// — this is what keeps per-job setup cheap when the sweep driver spins up
/// hundreds of short-lived Machines across worker threads.
class MainMemory {
 public:
  static constexpr std::uint64_t kDefaultSize = 64ull << 20;

  explicit MainMemory(std::uint64_t size_bytes = kDefaultSize);
  ~MainMemory();

  // Referenced by the functional engine for the Machine's lifetime.
  MainMemory(const MainMemory&) = delete;
  MainMemory& operator=(const MainMemory&) = delete;

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  void read(std::uint64_t addr, std::span<std::uint8_t> out) const;
  void write(std::uint64_t addr, std::span<const std::uint8_t> in);

  /// Typed scalar accessors (little-endian, matching RISC-V).
  template <typename T>
  [[nodiscard]] T load(std::uint64_t addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    bounds(addr, sizeof(T));
    T v;
    std::memcpy(&v, data_ + addr, sizeof(T));
    return v;
  }

  template <typename T>
  void store(std::uint64_t addr, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bounds(addr, sizeof(T));
    std::memcpy(data_ + addr, &v, sizeof(T));
  }

  /// Bounds-checked raw window (single check for a whole bulk transfer).
  [[nodiscard]] const std::uint8_t* raw(std::uint64_t addr,
                                        std::uint64_t len) const {
    bounds(addr, len);
    return data_ + addr;
  }
  [[nodiscard]] std::uint8_t* raw(std::uint64_t addr, std::uint64_t len) {
    bounds(addr, len);
    return data_ + addr;
  }

  /// Bulk helpers for workload setup/verification.
  void store_doubles(std::uint64_t addr, std::span<const double> values);
  [[nodiscard]] std::vector<double> load_doubles(std::uint64_t addr,
                                                 std::size_t count) const;

  void fill(std::uint8_t value) { std::memset(data_, value, size_); }

 private:
  void bounds(std::uint64_t addr, std::uint64_t len) const {
    check(addr + len <= size_ && addr + len >= addr,
          "memory access out of bounds");
  }

  std::uint64_t size_ = 0;
  std::uint8_t* data_ = nullptr;
  bool mapped_ = false;  ///< data_ came from mmap, not new[]
};

}  // namespace araxl

#endif  // ARAXL_MEM_MAIN_MEMORY_HPP
