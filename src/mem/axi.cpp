#include "mem/axi.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/contracts.hpp"

namespace araxl {

namespace {
constexpr std::uint64_t kAxiPage = 4096;
}

std::vector<AxiBurst> split_bursts(std::uint64_t addr, std::uint64_t len_bytes,
                                   std::uint64_t bus_bytes) {
  check(is_pow2(bus_bytes), "bus width must be a power of two");
  std::vector<AxiBurst> bursts;
  std::uint64_t cur = addr;
  std::uint64_t remaining = len_bytes;
  while (remaining > 0) {
    const std::uint64_t page_end = align_down(cur, kAxiPage) + kAxiPage;
    const std::uint64_t chunk = std::min(remaining, page_end - cur);
    AxiBurst b;
    b.addr = cur;
    b.len_bytes = chunk;
    // Beats: aligned span plus one extra when the head is misaligned w.r.t.
    // the bus (the Align stage folds the shifted head into a second beat).
    const std::uint64_t first = align_down(cur, bus_bytes);
    const std::uint64_t last = align_up(cur + chunk, bus_bytes);
    b.beats = (last - first) / bus_bytes;
    bursts.push_back(b);
    cur += chunk;
    remaining -= chunk;
  }
  return bursts;
}

std::uint64_t total_beats(std::uint64_t addr, std::uint64_t len_bytes,
                          std::uint64_t bus_bytes) {
  std::uint64_t beats = 0;
  for (const auto& b : split_bursts(addr, len_bytes, bus_bytes)) beats += b.beats;
  return beats;
}

}  // namespace araxl
