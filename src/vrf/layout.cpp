#include "vrf/layout.hpp"

namespace araxl {

MaskBitLoc mask_bit_loc(const VrfMapping& map, MaskLayout layout, std::uint64_t i) {
  MaskBitLoc loc;
  switch (layout) {
    case MaskLayout::kStandard: {
      // Logical byte i/8; logical 64-bit word w = i/64 is mapped like an
      // 8-byte element, and the byte keeps its offset within the word.
      const std::uint64_t word = i / 64;
      const unsigned byte_in_word = static_cast<unsigned>((i / 8) % 8);
      loc.cluster = map.cluster_of(word);
      loc.lane = map.lane_of(word);
      loc.byte_offset = map.row_of(word) * 8 + byte_in_word;
      loc.bit = static_cast<unsigned>(i % 8);
      return loc;
    }
    case MaskLayout::kLaneLocal: {
      // The bit for element i lives with element i: same cluster/lane, bit
      // position = the element's row within the lane.
      const std::uint64_t row = map.row_of(i);
      loc.cluster = map.cluster_of(i);
      loc.lane = map.lane_of(i);
      loc.byte_offset = row / 8;
      loc.bit = static_cast<unsigned>(row % 8);
      return loc;
    }
  }
  fail("unknown mask layout");
}

double mask_locality_fraction(const VrfMapping& map, MaskLayout layout,
                              std::uint64_t vl) {
  if (vl == 0) return 1.0;
  std::uint64_t local = 0;
  for (std::uint64_t i = 0; i < vl; ++i) {
    const MaskBitLoc m = mask_bit_loc(map, layout, i);
    if (m.cluster == map.cluster_of(i) && m.lane == map.lane_of(i)) ++local;
  }
  return static_cast<double>(local) / static_cast<double>(vl);
}

}  // namespace araxl
