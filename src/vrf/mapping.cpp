#include "vrf/mapping.hpp"

#include "common/bits.hpp"
#include "isa/vtype.hpp"  // kMaxVlenBits, kNumVregs

namespace araxl {

VrfMapping::VrfMapping(Topology topo, std::uint64_t vlen_bits)
    : topo_(topo), vlen_bits_(vlen_bits) {
  check(topo.clusters >= 1 && topo.lanes >= 1, "topology must be non-empty");
  check(is_pow2(topo.clusters) && is_pow2(topo.lanes),
        "cluster and lane counts must be powers of two");
  check(is_pow2(vlen_bits) && vlen_bits >= 64 && vlen_bits <= kMaxVlenBits,
        "VLEN must be a power of two in [64, 65536]");
  check(vlen_bits % (64ull * topo.total_lanes()) == 0,
        "each lane must hold whole 64-bit words of every register");
  slice_bytes_ = vlen_bits_ / 8 / topo_.total_lanes();
}

VregLoc VrfMapping::element_loc(unsigned base_vreg, std::uint64_t idx,
                                unsigned ew_bytes) const {
  debug_check(ew_bytes == 1 || ew_bytes == 2 || ew_bytes == 4 || ew_bytes == 8,
              "invalid element width");
  const std::uint64_t epr = elems_per_reg(ew_bytes);
  const unsigned vreg = base_vreg + static_cast<unsigned>(idx / epr);
  check(vreg < kNumVregs, "element index spills past v31");
  const std::uint64_t j = idx % epr;
  VregLoc loc;
  loc.vreg = vreg;
  loc.cluster = cluster_of(j);
  loc.lane = lane_of(j);
  loc.byte_offset = row_of(j) * ew_bytes;
  debug_check(loc.byte_offset + ew_bytes <= slice_bytes_, "slice overflow");
  return loc;
}

}  // namespace araxl
