#include "vrf/mapping.hpp"

#include <bit>

#include "common/bits.hpp"

namespace araxl {

VrfMapping::VrfMapping(Topology topo, std::uint64_t vlen_bits)
    : topo_(topo), vlen_bits_(vlen_bits) {
  check(topo.clusters >= 1 && topo.lanes >= 1 && topo.groups >= 1,
        "topology must be non-empty");
  check(is_pow2(topo.clusters) && is_pow2(topo.lanes) && is_pow2(topo.groups),
        "group/cluster/lane counts must be powers of two");
  check(is_pow2(vlen_bits) && vlen_bits >= 64 && vlen_bits <= kMaxVlenBits,
        "VLEN must be a power of two in [64, 65536]");
  check(vlen_bits % (64ull * topo.total_lanes()) == 0,
        "each lane must hold whole 64-bit words of every register");
  slice_bytes_ = vlen_bits_ / 8 / topo_.total_lanes();
  lanes_shift_ = static_cast<unsigned>(std::countr_zero(topo_.lanes));
  // The mapping flattens the hierarchy: clusters are numbered globally, so
  // all shifts/masks run over total_clusters() and the group level is
  // purely a physical (timing/PPA) notion.
  total_shift_ = lanes_shift_ +
                 static_cast<unsigned>(std::countr_zero(topo_.total_clusters()));
  vlen_bytes_shift_ = static_cast<unsigned>(std::countr_zero(vlen_bits_ >> 3));
  lanes_mask_ = topo_.lanes - 1;
  clusters_mask_ = topo_.total_clusters() - 1;
}

}  // namespace araxl
