// Physical Vector Register File.
//
// Storage is organized exactly as in the hardware: each (cluster, lane)
// pair owns a chunk holding its slice of all 32 architectural registers
// (e.g. 128 B x 32 = 4 KiB per lane at VLEN = 1024 bits/lane). All
// functional reads/writes go through the element mapping, so the mapping
// and layout logic is exercised by every simulated instruction.
#ifndef ARAXL_VRF_VRF_HPP
#define ARAXL_VRF_VRF_HPP

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "vrf/layout.hpp"
#include "vrf/mapping.hpp"

namespace araxl {

class Vrf {
 public:
  Vrf(Topology topo, std::uint64_t vlen_bits, MaskLayout mask_layout);

  [[nodiscard]] const VrfMapping& mapping() const noexcept { return map_; }
  [[nodiscard]] MaskLayout mask_layout() const noexcept { return mask_layout_; }

  // ---- raw element access (idx counts from base_vreg across LMUL) --------
  // Inline, with fixed-size copies per element width: every functional
  // element read/write funnels through these, and a variable-length memcpy
  // would cost a libc call per element.
  [[nodiscard]] std::uint64_t read_elem(unsigned base_vreg, std::uint64_t idx,
                                        unsigned ew_bytes) const {
    const VregLoc loc = map_.element_loc(base_vreg, idx, ew_bytes);
    const std::uint8_t* p =
        &bytes_[chunk_index(loc.cluster, loc.lane, loc.vreg, loc.byte_offset)];
    std::uint64_t bits = 0;
    switch (ew_bytes) {
      case 1: std::memcpy(&bits, p, 1); break;
      case 2: std::memcpy(&bits, p, 2); break;
      case 4: std::memcpy(&bits, p, 4); break;
      default: std::memcpy(&bits, p, 8); break;
    }
    return bits;
  }
  void write_elem(unsigned base_vreg, std::uint64_t idx, unsigned ew_bytes,
                  std::uint64_t bits) {
    const VregLoc loc = map_.element_loc(base_vreg, idx, ew_bytes);
    std::uint8_t* p =
        &bytes_[chunk_index(loc.cluster, loc.lane, loc.vreg, loc.byte_offset)];
    switch (ew_bytes) {
      case 1: std::memcpy(p, &bits, 1); break;
      case 2: std::memcpy(p, &bits, 2); break;
      case 4: std::memcpy(p, &bits, 4); break;
      default: std::memcpy(p, &bits, 8); break;
    }
  }

  // ---- typed convenience (inline so the width constant-folds) -------------
  [[nodiscard]] double read_f64(unsigned base_vreg, std::uint64_t idx) const {
    return std::bit_cast<double>(read_elem(base_vreg, idx, 8));
  }
  void write_f64(unsigned base_vreg, std::uint64_t idx, double v) {
    write_elem(base_vreg, idx, 8, std::bit_cast<std::uint64_t>(v));
  }
  [[nodiscard]] float read_f32(unsigned base_vreg, std::uint64_t idx) const {
    return std::bit_cast<float>(
        static_cast<std::uint32_t>(read_elem(base_vreg, idx, 4)));
  }
  void write_f32(unsigned base_vreg, std::uint64_t idx, float v) {
    write_elem(base_vreg, idx, 4, std::bit_cast<std::uint32_t>(v));
  }
  [[nodiscard]] std::int64_t read_i64(unsigned base_vreg,
                                      std::uint64_t idx) const {
    return static_cast<std::int64_t>(read_elem(base_vreg, idx, 8));
  }
  void write_i64(unsigned base_vreg, std::uint64_t idx, std::int64_t v) {
    write_elem(base_vreg, idx, 8, static_cast<std::uint64_t>(v));
  }

  /// Reads `count` doubles starting at element 0 (test/verification aid).
  [[nodiscard]] std::vector<double> read_f64_slice(unsigned base_vreg,
                                                   std::uint64_t count) const;

  // ---- bulk element streams (unit-stride memory fast path) ----------------
  // Move `vl` elements of width `ew_bytes` between a packed buffer (element
  // order) and the mapped register file, equivalent to element-by-element
  // read_elem/write_elem but walking the (row, lane) structure directly.
  void write_stream(unsigned base_vreg, std::uint64_t vl, unsigned ew_bytes,
                    const std::uint8_t* src);
  void read_stream(unsigned base_vreg, std::uint64_t vl, unsigned ew_bytes,
                   std::uint8_t* dst) const;

  // ---- mask registers ------------------------------------------------------
  [[nodiscard]] bool mask_bit(unsigned vreg, std::uint64_t i) const;
  void set_mask_bit(unsigned vreg, std::uint64_t i, bool value);

  /// Converts mask register `vreg` (first `bits` bits) between layouts —
  /// the reshuffle operation of paper §III-B.5. Returns the number of bits
  /// that had to move to a different lane (the ring traffic the timing
  /// model charges for).
  std::uint64_t reshuffle_mask(unsigned vreg, MaskLayout from, MaskLayout to,
                               std::uint64_t bits);

  // ---- introspection (layout tests) ---------------------------------------
  /// Raw byte inside one lane's slice of a register.
  [[nodiscard]] std::uint8_t lane_byte(unsigned cluster, unsigned lane,
                                       unsigned vreg, std::uint64_t offset) const;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return bytes_.size(); }

 private:
  [[nodiscard]] std::size_t chunk_index(unsigned cluster, unsigned lane,
                                        unsigned vreg, std::uint64_t offset) const {
    debug_check(cluster < map_.topology().clusters &&
                    lane < map_.topology().lanes && vreg < kNumVregs &&
                    offset < map_.slice_bytes(),
                "VRF index out of range");
    const std::size_t lane_flat = cluster * map_.topology().lanes + lane;
    return (lane_flat * kNumVregs + vreg) * map_.slice_bytes() + offset;
  }
  [[nodiscard]] bool mask_bit_in(unsigned vreg, std::uint64_t i,
                                 MaskLayout layout) const;
  void set_mask_bit_in(unsigned vreg, std::uint64_t i, MaskLayout layout, bool value);

  VrfMapping map_;
  MaskLayout mask_layout_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace araxl

#endif  // ARAXL_VRF_VRF_HPP
