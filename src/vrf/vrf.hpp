// Physical Vector Register File.
//
// Lane storage is organized exactly as in the hardware: each (cluster,
// lane) pair owns a chunk holding its slice of all 32 architectural
// registers (e.g. 128 B x 32 = 4 KiB per lane at VLEN = 1024 bits/lane).
// All functional reads/writes resolve through the element mapping, so the
// mapping and layout logic is exercised by every simulated instruction.
//
// On top of the lane storage sits a *lazy packed mirror*: one
// element-order image per architectural register, tagged with the element
// width it was packed at. Whole-register unit-stride streams (the bulk
// load/store and bulk-arithmetic fast paths) read and write the mirror
// with a single memcpy; the lane-interleaved transpose is deferred until
// something actually touches lane bytes (per-element access at another
// width, mask bits, layout introspection), at which point the dirty
// mirror is flushed through the same mapped walk as before. Values and
// final lane bytes are identical either way — only *when* the transpose
// happens changes — so the hardware-layout tests and both timing engines
// see exactly the bytes they always did.
#ifndef ARAXL_VRF_VRF_HPP
#define ARAXL_VRF_VRF_HPP

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "vrf/layout.hpp"
#include "vrf/mapping.hpp"

namespace araxl {

class Vrf {
 public:
  Vrf(Topology topo, std::uint64_t vlen_bits, MaskLayout mask_layout);

  [[nodiscard]] const VrfMapping& mapping() const noexcept { return map_; }
  [[nodiscard]] MaskLayout mask_layout() const noexcept { return mask_layout_; }

  // ---- raw element access (idx counts from base_vreg across LMUL) --------
  // Inline, with fixed-size copies per element width: every functional
  // element read/write funnels through these, and a variable-length memcpy
  // would cost a libc call per element. When the register's packed mirror
  // is valid at this width the element is served from it directly (packed
  // offset is shift/mask math); otherwise a dirty mirror is flushed first
  // so the lane bytes are current.
  [[nodiscard]] std::uint64_t read_elem(unsigned base_vreg, std::uint64_t idx,
                                        unsigned ew_bytes) const {
    const VregLoc loc = map_.element_loc(base_vreg, idx, ew_bytes);
    const std::uint8_t* p;
    if (mirror_state_[loc.vreg] != MirrorState::kInvalid &&
        mirror_ew_[loc.vreg] == ew_bytes) {
      const std::uint64_t j = idx & (map_.elems_per_reg(ew_bytes) - 1);
      p = mirror_.data() + loc.vreg * reg_bytes_ + j * ew_bytes;
    } else {
      flush_mirror(loc.vreg);
      p = &bytes_[chunk_index(loc.cluster, loc.lane, loc.vreg, loc.byte_offset)];
    }
    std::uint64_t bits = 0;
    switch (ew_bytes) {
      case 1: std::memcpy(&bits, p, 1); break;
      case 2: std::memcpy(&bits, p, 2); break;
      case 4: std::memcpy(&bits, p, 4); break;
      default: std::memcpy(&bits, p, 8); break;
    }
    return bits;
  }
  void write_elem(unsigned base_vreg, std::uint64_t idx, unsigned ew_bytes,
                  std::uint64_t bits) {
    const VregLoc loc = map_.element_loc(base_vreg, idx, ew_bytes);
    std::uint8_t* p;
    if (mirror_state_[loc.vreg] != MirrorState::kInvalid &&
        mirror_ew_[loc.vreg] == ew_bytes) {
      const std::uint64_t j = idx & (map_.elems_per_reg(ew_bytes) - 1);
      p = mirror_.data() + loc.vreg * reg_bytes_ + j * ew_bytes;
      mirror_state_[loc.vreg] = MirrorState::kDirty;
    } else {
      flush_mirror(loc.vreg);
      mirror_state_[loc.vreg] = MirrorState::kInvalid;
      p = &bytes_[chunk_index(loc.cluster, loc.lane, loc.vreg, loc.byte_offset)];
    }
    switch (ew_bytes) {
      case 1: std::memcpy(p, &bits, 1); break;
      case 2: std::memcpy(p, &bits, 2); break;
      case 4: std::memcpy(p, &bits, 4); break;
      default: std::memcpy(p, &bits, 8); break;
    }
  }

  // ---- typed convenience (inline so the width constant-folds) -------------
  [[nodiscard]] double read_f64(unsigned base_vreg, std::uint64_t idx) const {
    return std::bit_cast<double>(read_elem(base_vreg, idx, 8));
  }
  void write_f64(unsigned base_vreg, std::uint64_t idx, double v) {
    write_elem(base_vreg, idx, 8, std::bit_cast<std::uint64_t>(v));
  }
  [[nodiscard]] float read_f32(unsigned base_vreg, std::uint64_t idx) const {
    return std::bit_cast<float>(
        static_cast<std::uint32_t>(read_elem(base_vreg, idx, 4)));
  }
  void write_f32(unsigned base_vreg, std::uint64_t idx, float v) {
    write_elem(base_vreg, idx, 4, std::bit_cast<std::uint32_t>(v));
  }
  [[nodiscard]] std::int64_t read_i64(unsigned base_vreg,
                                      std::uint64_t idx) const {
    return static_cast<std::int64_t>(read_elem(base_vreg, idx, 8));
  }
  void write_i64(unsigned base_vreg, std::uint64_t idx, std::int64_t v) {
    write_elem(base_vreg, idx, 8, static_cast<std::uint64_t>(v));
  }

  /// Reads `count` doubles starting at element 0 (test/verification aid).
  [[nodiscard]] std::vector<double> read_f64_slice(unsigned base_vreg,
                                                   std::uint64_t count) const;

  // ---- bulk element streams (unit-stride memory fast path) ----------------
  // Move `vl` elements of width `ew_bytes` between a packed buffer (element
  // order) and the mapped register file, equivalent to element-by-element
  // read_elem/write_elem but served from the packed mirror when possible
  // and otherwise walking the (row, lane) structure directly.
  void write_stream(unsigned base_vreg, std::uint64_t vl, unsigned ew_bytes,
                    const std::uint8_t* src);
  void read_stream(unsigned base_vreg, std::uint64_t vl, unsigned ew_bytes,
                   std::uint8_t* dst) const;

  // ---- direct packed spans (bulk-arithmetic zero-copy path) ---------------
  // Consecutive architectural registers are laid out consecutively in the
  // packed mirror, so an LMUL group is a single contiguous element-order
  // span once each register's mirror is valid at the requested width (the
  // accessors adopt any register that isn't). Bulk arithmetic can then
  // compute directly in the mirror instead of staging operands through
  // scratch buffers.

  /// Span covering `vl` elements of width `ew_bytes` from `base_vreg`,
  /// valid until the next write to any covered register.
  [[nodiscard]] const std::uint8_t* packed_read_span(unsigned base_vreg,
                                                     std::uint64_t vl,
                                                     unsigned ew_bytes) const;
  /// Same span for writing `vl` elements; marks the covered registers
  /// dirty at `ew_bytes`, so the caller is committed to writing all `vl`
  /// elements. When `reads` is set the op also consumes the existing
  /// destination elements, which are guaranteed present in the span (as
  /// is the untouched tail of a partially covered final register).
  [[nodiscard]] std::uint8_t* packed_write_span(unsigned base_vreg,
                                                std::uint64_t vl,
                                                unsigned ew_bytes, bool reads);

  // ---- mask registers ------------------------------------------------------
  [[nodiscard]] bool mask_bit(unsigned vreg, std::uint64_t i) const;
  void set_mask_bit(unsigned vreg, std::uint64_t i, bool value);

  /// Converts mask register `vreg` (first `bits` bits) between layouts —
  /// the reshuffle operation of paper §III-B.5. Returns the number of bits
  /// that had to move to a different lane (the ring traffic the timing
  /// model charges for).
  std::uint64_t reshuffle_mask(unsigned vreg, MaskLayout from, MaskLayout to,
                               std::uint64_t bits);

  // ---- introspection (layout tests) ---------------------------------------
  /// Raw byte inside one lane's slice of a register.
  [[nodiscard]] std::uint8_t lane_byte(unsigned cluster, unsigned lane,
                                       unsigned vreg, std::uint64_t offset) const;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return bytes_.size(); }

 private:
  /// Packed-mirror lifecycle per architectural register. kClean: mirror and
  /// lane bytes agree. kDirty: the mirror holds newer data than the lane
  /// bytes (a deferred transpose). kInvalid: lane bytes are authoritative.
  enum class MirrorState : std::uint8_t { kInvalid, kClean, kDirty };

  [[nodiscard]] std::size_t chunk_index(unsigned cluster, unsigned lane,
                                        unsigned vreg, std::uint64_t offset) const {
    debug_check(cluster < map_.topology().clusters &&
                    lane < map_.topology().lanes && vreg < kNumVregs &&
                    offset < map_.slice_bytes(),
                "VRF index out of range");
    const std::size_t lane_flat = cluster * map_.topology().lanes + lane;
    return (lane_flat * kNumVregs + vreg) * map_.slice_bytes() + offset;
  }
  [[nodiscard]] bool mask_bit_in(unsigned vreg, std::uint64_t i,
                                 MaskLayout layout) const;
  void set_mask_bit_in(unsigned vreg, std::uint64_t i, MaskLayout layout, bool value);

  /// Materializes a dirty mirror into the lane bytes. The inline wrapper
  /// keeps the common no-op check out of the transpose path. Const because
  /// flushing is observable only through timing, never through values —
  /// read-side accessors must be able to trigger it.
  void flush_mirror(unsigned vreg) const {
    if (mirror_state_[vreg] == MirrorState::kDirty) flush_mirror_slow(vreg);
  }
  void flush_mirror_slow(unsigned vreg) const;
  /// Makes the mirror valid at `ew_bytes` (no-op when it already is):
  /// flushes a dirty other-width mirror, then transposes the lane bytes
  /// into packed order. One full-register transpose that every later
  /// stream or span access to the register amortizes away.
  void adopt_mirror(unsigned vreg, unsigned ew_bytes) const;

  VrfMapping map_;
  MaskLayout mask_layout_;
  std::uint64_t reg_bytes_ = 0;  ///< bytes per architectural register
  // Mutable: the mirror is a representation cache over the logical register
  // contents; const readers may flush it without changing any value.
  mutable std::vector<std::uint8_t> bytes_;
  mutable std::vector<std::uint8_t> mirror_;
  mutable std::array<MirrorState, kNumVregs> mirror_state_{};
  mutable std::array<std::uint8_t, kNumVregs> mirror_ew_{};
};

}  // namespace araxl

#endif  // ARAXL_VRF_VRF_HPP
