// Physical Vector Register File.
//
// Storage is organized exactly as in the hardware: each (cluster, lane)
// pair owns a chunk holding its slice of all 32 architectural registers
// (e.g. 128 B x 32 = 4 KiB per lane at VLEN = 1024 bits/lane). All
// functional reads/writes go through the element mapping, so the mapping
// and layout logic is exercised by every simulated instruction.
#ifndef ARAXL_VRF_VRF_HPP
#define ARAXL_VRF_VRF_HPP

#include <cstdint>
#include <vector>

#include "vrf/layout.hpp"
#include "vrf/mapping.hpp"

namespace araxl {

class Vrf {
 public:
  Vrf(Topology topo, std::uint64_t vlen_bits, MaskLayout mask_layout);

  [[nodiscard]] const VrfMapping& mapping() const noexcept { return map_; }
  [[nodiscard]] MaskLayout mask_layout() const noexcept { return mask_layout_; }

  // ---- raw element access (idx counts from base_vreg across LMUL) --------
  [[nodiscard]] std::uint64_t read_elem(unsigned base_vreg, std::uint64_t idx,
                                        unsigned ew_bytes) const;
  void write_elem(unsigned base_vreg, std::uint64_t idx, unsigned ew_bytes,
                  std::uint64_t bits);

  // ---- typed convenience --------------------------------------------------
  [[nodiscard]] double read_f64(unsigned base_vreg, std::uint64_t idx) const;
  void write_f64(unsigned base_vreg, std::uint64_t idx, double v);
  [[nodiscard]] float read_f32(unsigned base_vreg, std::uint64_t idx) const;
  void write_f32(unsigned base_vreg, std::uint64_t idx, float v);
  [[nodiscard]] std::int64_t read_i64(unsigned base_vreg, std::uint64_t idx) const;
  void write_i64(unsigned base_vreg, std::uint64_t idx, std::int64_t v);

  /// Reads `count` doubles starting at element 0 (test/verification aid).
  [[nodiscard]] std::vector<double> read_f64_slice(unsigned base_vreg,
                                                   std::uint64_t count) const;

  // ---- mask registers ------------------------------------------------------
  [[nodiscard]] bool mask_bit(unsigned vreg, std::uint64_t i) const;
  void set_mask_bit(unsigned vreg, std::uint64_t i, bool value);

  /// Converts mask register `vreg` (first `bits` bits) between layouts —
  /// the reshuffle operation of paper §III-B.5. Returns the number of bits
  /// that had to move to a different lane (the ring traffic the timing
  /// model charges for).
  std::uint64_t reshuffle_mask(unsigned vreg, MaskLayout from, MaskLayout to,
                               std::uint64_t bits);

  // ---- introspection (layout tests) ---------------------------------------
  /// Raw byte inside one lane's slice of a register.
  [[nodiscard]] std::uint8_t lane_byte(unsigned cluster, unsigned lane,
                                       unsigned vreg, std::uint64_t offset) const;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return bytes_.size(); }

 private:
  [[nodiscard]] std::size_t chunk_index(unsigned cluster, unsigned lane,
                                        unsigned vreg, std::uint64_t offset) const;
  [[nodiscard]] bool mask_bit_in(unsigned vreg, std::uint64_t i,
                                 MaskLayout layout) const;
  void set_mask_bit_in(unsigned vreg, std::uint64_t i, MaskLayout layout, bool value);

  VrfMapping map_;
  MaskLayout mask_layout_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace araxl

#endif  // ARAXL_VRF_VRF_HPP
