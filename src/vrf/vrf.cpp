#include "vrf/vrf.hpp"

#include <bit>
#include <cstring>

#include "isa/instr.hpp"

namespace araxl {

Vrf::Vrf(Topology topo, std::uint64_t vlen_bits, MaskLayout mask_layout)
    : map_(topo, vlen_bits), mask_layout_(mask_layout) {
  bytes_.assign(static_cast<std::size_t>(topo.total_lanes()) * kNumVregs *
                    map_.slice_bytes(),
                0);
}

std::vector<double> Vrf::read_f64_slice(unsigned base_vreg,
                                        std::uint64_t count) const {
  std::vector<double> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(read_f64(base_vreg, i));
  return out;
}

namespace {

/// Streams `vl` packed elements to/from the mapped register file. The
/// mapping sends element j to flat lane (j mod TL) at row (j div TL). The
/// walk is lane-major: for one lane all rows of a register are contiguous
/// in VRF storage, so the inner loop touches the register file sequentially
/// and only the (cache-resident) packed buffer is accessed with a stride.
/// The element-major order used previously made every VRF access jump by
/// kNumVregs * slice bytes — a 4 KiB stride at 64 lanes that turned each
/// whole-register stream into a cache-miss chain.
template <unsigned kEw, bool kWrite, typename Bytes, typename Buf>
void stream_elems(const VrfMapping& map, Bytes* vrf_bytes, unsigned base_vreg,
                  std::uint64_t vl, Buf* buf) {
  const unsigned total_lanes = map.topology().total_lanes();
  const std::uint64_t slice = map.slice_bytes();
  const std::uint64_t lane_stride = kNumVregs * slice;  // next flat lane
  const std::uint64_t epr = map.elems_per_reg(kEw);
  const std::uint64_t buf_row = std::uint64_t{total_lanes} * kEw;
  std::uint64_t done = 0;
  unsigned vreg = base_vreg;
  while (done < vl) {
    check(vreg < kNumVregs, "element index spills past v31");
    const std::uint64_t in_reg = std::min<std::uint64_t>(vl - done, epr);
    Bytes* reg_base = vrf_bytes + vreg * slice;
    for (std::uint64_t l = 0; l < total_lanes && l < in_reg; ++l) {
      const std::uint64_t rows = (in_reg - l + total_lanes - 1) / total_lanes;
      Bytes* p = reg_base + l * lane_stride;
      Buf* q = buf + l * kEw;
      for (std::uint64_t r = 0; r < rows; ++r, p += kEw, q += buf_row) {
        if constexpr (kWrite) {
          std::memcpy(p, q, kEw);
        } else {
          std::memcpy(q, p, kEw);
        }
      }
    }
    buf += in_reg * kEw;
    done += in_reg;
    ++vreg;
  }
}

template <bool kWrite, typename Bytes, typename Buf>
void stream_dispatch(const VrfMapping& map, Bytes* vrf_bytes,
                     unsigned base_vreg, std::uint64_t vl, unsigned ew,
                     Buf* buf) {
  switch (ew) {
    case 1: stream_elems<1, kWrite>(map, vrf_bytes, base_vreg, vl, buf); break;
    case 2: stream_elems<2, kWrite>(map, vrf_bytes, base_vreg, vl, buf); break;
    case 4: stream_elems<4, kWrite>(map, vrf_bytes, base_vreg, vl, buf); break;
    case 8: stream_elems<8, kWrite>(map, vrf_bytes, base_vreg, vl, buf); break;
    default: fail("invalid element width");
  }
}

}  // namespace

void Vrf::write_stream(unsigned base_vreg, std::uint64_t vl, unsigned ew_bytes,
                       const std::uint8_t* src) {
  stream_dispatch<true>(map_, bytes_.data(), base_vreg, vl, ew_bytes, src);
}

void Vrf::read_stream(unsigned base_vreg, std::uint64_t vl, unsigned ew_bytes,
                      std::uint8_t* dst) const {
  stream_dispatch<false>(map_, bytes_.data(), base_vreg, vl, ew_bytes, dst);
}

bool Vrf::mask_bit_in(unsigned vreg, std::uint64_t i, MaskLayout layout) const {
  const MaskBitLoc loc = mask_bit_loc(map_, layout, i);
  const std::uint8_t byte =
      bytes_[chunk_index(loc.cluster, loc.lane, vreg, loc.byte_offset)];
  return ((byte >> loc.bit) & 1u) != 0;
}

void Vrf::set_mask_bit_in(unsigned vreg, std::uint64_t i, MaskLayout layout,
                          bool value) {
  const MaskBitLoc loc = mask_bit_loc(map_, layout, i);
  std::uint8_t& byte =
      bytes_[chunk_index(loc.cluster, loc.lane, vreg, loc.byte_offset)];
  if (value) {
    byte = static_cast<std::uint8_t>(byte | (1u << loc.bit));
  } else {
    byte = static_cast<std::uint8_t>(byte & ~(1u << loc.bit));
  }
}

bool Vrf::mask_bit(unsigned vreg, std::uint64_t i) const {
  return mask_bit_in(vreg, i, mask_layout_);
}

void Vrf::set_mask_bit(unsigned vreg, std::uint64_t i, bool value) {
  set_mask_bit_in(vreg, i, mask_layout_, value);
}

std::uint64_t Vrf::reshuffle_mask(unsigned vreg, MaskLayout from, MaskLayout to,
                                  std::uint64_t bits) {
  std::vector<bool> values(bits);
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < bits; ++i) {
    values[i] = mask_bit_in(vreg, i, from);
    const MaskBitLoc a = mask_bit_loc(map_, from, i);
    const MaskBitLoc b = mask_bit_loc(map_, to, i);
    if (a.cluster != b.cluster || a.lane != b.lane) ++moved;
  }
  // Clear both encodings' footprints before rewriting to avoid stale bits.
  for (std::uint64_t i = 0; i < bits; ++i) {
    set_mask_bit_in(vreg, i, from, false);
  }
  for (std::uint64_t i = 0; i < bits; ++i) {
    set_mask_bit_in(vreg, i, to, values[i]);
  }
  return moved;
}

std::uint8_t Vrf::lane_byte(unsigned cluster, unsigned lane, unsigned vreg,
                            std::uint64_t offset) const {
  return bytes_[chunk_index(cluster, lane, vreg, offset)];
}

}  // namespace araxl
