#include "vrf/vrf.hpp"

#include <bit>
#include <cstring>

#include "isa/instr.hpp"

namespace araxl {

Vrf::Vrf(Topology topo, std::uint64_t vlen_bits, MaskLayout mask_layout)
    : map_(topo, vlen_bits), mask_layout_(mask_layout) {
  bytes_.assign(static_cast<std::size_t>(topo.total_lanes()) * kNumVregs *
                    map_.slice_bytes(),
                0);
  reg_bytes_ = map_.slice_bytes() * map_.topology().total_lanes();
  mirror_.assign(static_cast<std::size_t>(kNumVregs) * reg_bytes_, 0);
  mirror_state_.fill(MirrorState::kInvalid);
  mirror_ew_.fill(0);
}

std::vector<double> Vrf::read_f64_slice(unsigned base_vreg,
                                        std::uint64_t count) const {
  std::vector<double> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(read_f64(base_vreg, i));
  return out;
}

namespace {

/// Streams `in_reg` packed elements of ONE register between a packed buffer
/// and the lane-interleaved storage. The mapping sends element j to flat
/// lane (j mod TL) at row (j div TL). The walk is lane-major: for one lane
/// all rows of a register are contiguous in VRF storage, so the inner loop
/// touches the register file sequentially and only the (cache-resident)
/// packed buffer is accessed with a stride. The element-major order used
/// previously made every VRF access jump by kNumVregs * slice bytes — a
/// 4 KiB stride at 64 lanes that turned each whole-register stream into a
/// cache-miss chain.
template <unsigned kEw, bool kWrite, typename Bytes, typename Buf>
void stream_reg(const VrfMapping& map, Bytes* reg_base, std::uint64_t in_reg,
                Buf* buf) {
  const unsigned total_lanes = map.topology().total_lanes();
  const std::uint64_t lane_stride = kNumVregs * map.slice_bytes();
  const std::uint64_t buf_row = std::uint64_t{total_lanes} * kEw;
  for (std::uint64_t l = 0; l < total_lanes && l < in_reg; ++l) {
    const std::uint64_t rows = (in_reg - l + total_lanes - 1) / total_lanes;
    Bytes* p = reg_base + l * lane_stride;
    Buf* q = buf + l * kEw;
    for (std::uint64_t r = 0; r < rows; ++r, p += kEw, q += buf_row) {
      if constexpr (kWrite) {
        std::memcpy(p, q, kEw);
      } else {
        std::memcpy(q, p, kEw);
      }
    }
  }
}

template <bool kWrite, typename Bytes, typename Buf>
void stream_reg_dispatch(const VrfMapping& map, Bytes* reg_base,
                         std::uint64_t in_reg, unsigned ew, Buf* buf) {
  switch (ew) {
    case 1: stream_reg<1, kWrite>(map, reg_base, in_reg, buf); break;
    case 2: stream_reg<2, kWrite>(map, reg_base, in_reg, buf); break;
    case 4: stream_reg<4, kWrite>(map, reg_base, in_reg, buf); break;
    case 8: stream_reg<8, kWrite>(map, reg_base, in_reg, buf); break;
    default: fail("invalid element width");
  }
}

}  // namespace

void Vrf::flush_mirror_slow(unsigned vreg) const {
  const unsigned ew = mirror_ew_[vreg];
  stream_reg_dispatch<true>(map_, bytes_.data() + vreg * map_.slice_bytes(),
                            map_.elems_per_reg(ew), ew,
                            mirror_.data() + vreg * reg_bytes_);
  mirror_state_[vreg] = MirrorState::kClean;
}

void Vrf::adopt_mirror(unsigned vreg, unsigned ew_bytes) const {
  if (mirror_state_[vreg] != MirrorState::kInvalid &&
      mirror_ew_[vreg] == ew_bytes) {
    return;
  }
  // A dirty mirror at another width holds newer data than the lane bytes;
  // materialize it first so the adoption transpose reads current values.
  flush_mirror(vreg);
  stream_reg_dispatch<false>(
      map_,
      const_cast<const std::uint8_t*>(bytes_.data()) + vreg * map_.slice_bytes(),
      map_.elems_per_reg(ew_bytes), ew_bytes, mirror_.data() + vreg * reg_bytes_);
  mirror_state_[vreg] = MirrorState::kClean;
  mirror_ew_[vreg] = static_cast<std::uint8_t>(ew_bytes);
}

void Vrf::write_stream(unsigned base_vreg, std::uint64_t vl, unsigned ew_bytes,
                       const std::uint8_t* src) {
  const std::uint64_t epr = map_.elems_per_reg(ew_bytes);
  std::uint64_t done = 0;
  unsigned vreg = base_vreg;
  while (done < vl) {
    check(vreg < kNumVregs, "element index spills past v31");
    const std::uint64_t in_reg = std::min<std::uint64_t>(vl - done, epr);
    const std::uint8_t* seg = src + done * ew_bytes;
    if (in_reg == epr) {
      // Whole register: the packed image IS the write — defer the lane
      // transpose until someone actually looks at lane bytes.
      std::memcpy(mirror_.data() + vreg * reg_bytes_, seg, epr * ew_bytes);
      mirror_ew_[vreg] = static_cast<std::uint8_t>(ew_bytes);
    } else {
      // Partial strip: adopt the register into the mirror (one full
      // transpose-read; free if already valid at this width) so the
      // untouched tail is represented, then overwrite the prefix. The
      // adoption pays for itself on the next access — short-vl kernels
      // touch the same registers every loop iteration.
      adopt_mirror(vreg, ew_bytes);
      std::memcpy(mirror_.data() + vreg * reg_bytes_, seg, in_reg * ew_bytes);
    }
    mirror_state_[vreg] = MirrorState::kDirty;
    done += in_reg;
    ++vreg;
  }
}

void Vrf::read_stream(unsigned base_vreg, std::uint64_t vl, unsigned ew_bytes,
                      std::uint8_t* dst) const {
  const std::uint64_t epr = map_.elems_per_reg(ew_bytes);
  std::uint64_t done = 0;
  unsigned vreg = base_vreg;
  while (done < vl) {
    check(vreg < kNumVregs, "element index spills past v31");
    const std::uint64_t in_reg = std::min<std::uint64_t>(vl - done, epr);
    std::uint8_t* seg = dst + done * ew_bytes;
    // A packed prefix of a valid mirror is exactly the requested stream;
    // adopting (no-op when already valid at this width) caches the
    // transpose for every later access to the register.
    adopt_mirror(vreg, ew_bytes);
    std::memcpy(seg, mirror_.data() + vreg * reg_bytes_, in_reg * ew_bytes);
    done += in_reg;
    ++vreg;
  }
}

const std::uint8_t* Vrf::packed_read_span(unsigned base_vreg, std::uint64_t vl,
                                          unsigned ew_bytes) const {
  const std::uint64_t epr = map_.elems_per_reg(ew_bytes);
  const unsigned nregs = static_cast<unsigned>((vl + epr - 1) / epr);
  check(base_vreg + nregs <= kNumVregs, "element index spills past v31");
  for (unsigned v = base_vreg; v < base_vreg + nregs; ++v) {
    adopt_mirror(v, ew_bytes);
  }
  return mirror_.data() + base_vreg * reg_bytes_;
}

std::uint8_t* Vrf::packed_write_span(unsigned base_vreg, std::uint64_t vl,
                                     unsigned ew_bytes, bool reads) {
  const std::uint64_t epr = map_.elems_per_reg(ew_bytes);
  const unsigned nregs = static_cast<unsigned>((vl + epr - 1) / epr);
  check(base_vreg + nregs <= kNumVregs, "element index spills past v31");
  for (unsigned v = base_vreg; v < base_vreg + nregs; ++v) {
    const bool fully_covered = (v + 1 - base_vreg) * epr <= vl;
    if (reads || !fully_covered) {
      // The op consumes existing elements (or leaves a tail untouched):
      // the mirror must represent them before the caller writes through.
      adopt_mirror(v, ew_bytes);
    }
    mirror_state_[v] = MirrorState::kDirty;
    mirror_ew_[v] = static_cast<std::uint8_t>(ew_bytes);
  }
  return mirror_.data() + base_vreg * reg_bytes_;
}

bool Vrf::mask_bit_in(unsigned vreg, std::uint64_t i, MaskLayout layout) const {
  flush_mirror(vreg);
  const MaskBitLoc loc = mask_bit_loc(map_, layout, i);
  const std::uint8_t byte =
      bytes_[chunk_index(loc.cluster, loc.lane, vreg, loc.byte_offset)];
  return ((byte >> loc.bit) & 1u) != 0;
}

void Vrf::set_mask_bit_in(unsigned vreg, std::uint64_t i, MaskLayout layout,
                          bool value) {
  flush_mirror(vreg);
  mirror_state_[vreg] = MirrorState::kInvalid;
  const MaskBitLoc loc = mask_bit_loc(map_, layout, i);
  std::uint8_t& byte =
      bytes_[chunk_index(loc.cluster, loc.lane, vreg, loc.byte_offset)];
  if (value) {
    byte = static_cast<std::uint8_t>(byte | (1u << loc.bit));
  } else {
    byte = static_cast<std::uint8_t>(byte & ~(1u << loc.bit));
  }
}

bool Vrf::mask_bit(unsigned vreg, std::uint64_t i) const {
  return mask_bit_in(vreg, i, mask_layout_);
}

void Vrf::set_mask_bit(unsigned vreg, std::uint64_t i, bool value) {
  set_mask_bit_in(vreg, i, mask_layout_, value);
}

std::uint64_t Vrf::reshuffle_mask(unsigned vreg, MaskLayout from, MaskLayout to,
                                  std::uint64_t bits) {
  std::vector<bool> values(bits);
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < bits; ++i) {
    values[i] = mask_bit_in(vreg, i, from);
    const MaskBitLoc a = mask_bit_loc(map_, from, i);
    const MaskBitLoc b = mask_bit_loc(map_, to, i);
    if (a.cluster != b.cluster || a.lane != b.lane) ++moved;
  }
  // Clear both encodings' footprints before rewriting to avoid stale bits.
  for (std::uint64_t i = 0; i < bits; ++i) {
    set_mask_bit_in(vreg, i, from, false);
  }
  for (std::uint64_t i = 0; i < bits; ++i) {
    set_mask_bit_in(vreg, i, to, values[i]);
  }
  return moved;
}

std::uint8_t Vrf::lane_byte(unsigned cluster, unsigned lane, unsigned vreg,
                            std::uint64_t offset) const {
  flush_mirror(vreg);
  return bytes_[chunk_index(cluster, lane, vreg, offset)];
}

}  // namespace araxl
