#include "vrf/vrf.hpp"

#include <bit>
#include <cstring>

#include "isa/instr.hpp"

namespace araxl {

Vrf::Vrf(Topology topo, std::uint64_t vlen_bits, MaskLayout mask_layout)
    : map_(topo, vlen_bits), mask_layout_(mask_layout) {
  bytes_.assign(static_cast<std::size_t>(topo.total_lanes()) * kNumVregs *
                    map_.slice_bytes(),
                0);
}

std::size_t Vrf::chunk_index(unsigned cluster, unsigned lane, unsigned vreg,
                             std::uint64_t offset) const {
  debug_check(cluster < map_.topology().clusters && lane < map_.topology().lanes &&
                  vreg < kNumVregs && offset < map_.slice_bytes(),
              "VRF index out of range");
  const std::size_t lane_flat = cluster * map_.topology().lanes + lane;
  return (lane_flat * kNumVregs + vreg) * map_.slice_bytes() + offset;
}

std::uint64_t Vrf::read_elem(unsigned base_vreg, std::uint64_t idx,
                             unsigned ew_bytes) const {
  const VregLoc loc = map_.element_loc(base_vreg, idx, ew_bytes);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &bytes_[chunk_index(loc.cluster, loc.lane, loc.vreg,
                                         loc.byte_offset)],
              ew_bytes);
  return bits;
}

void Vrf::write_elem(unsigned base_vreg, std::uint64_t idx, unsigned ew_bytes,
                     std::uint64_t bits) {
  const VregLoc loc = map_.element_loc(base_vreg, idx, ew_bytes);
  std::memcpy(&bytes_[chunk_index(loc.cluster, loc.lane, loc.vreg, loc.byte_offset)],
              &bits, ew_bytes);
}

double Vrf::read_f64(unsigned base_vreg, std::uint64_t idx) const {
  return std::bit_cast<double>(read_elem(base_vreg, idx, 8));
}
void Vrf::write_f64(unsigned base_vreg, std::uint64_t idx, double v) {
  write_elem(base_vreg, idx, 8, std::bit_cast<std::uint64_t>(v));
}
float Vrf::read_f32(unsigned base_vreg, std::uint64_t idx) const {
  return std::bit_cast<float>(
      static_cast<std::uint32_t>(read_elem(base_vreg, idx, 4)));
}
void Vrf::write_f32(unsigned base_vreg, std::uint64_t idx, float v) {
  write_elem(base_vreg, idx, 4, std::bit_cast<std::uint32_t>(v));
}
std::int64_t Vrf::read_i64(unsigned base_vreg, std::uint64_t idx) const {
  return static_cast<std::int64_t>(read_elem(base_vreg, idx, 8));
}
void Vrf::write_i64(unsigned base_vreg, std::uint64_t idx, std::int64_t v) {
  write_elem(base_vreg, idx, 8, static_cast<std::uint64_t>(v));
}

std::vector<double> Vrf::read_f64_slice(unsigned base_vreg,
                                        std::uint64_t count) const {
  std::vector<double> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(read_f64(base_vreg, i));
  return out;
}

bool Vrf::mask_bit_in(unsigned vreg, std::uint64_t i, MaskLayout layout) const {
  const MaskBitLoc loc = mask_bit_loc(map_, layout, i);
  const std::uint8_t byte =
      bytes_[chunk_index(loc.cluster, loc.lane, vreg, loc.byte_offset)];
  return ((byte >> loc.bit) & 1u) != 0;
}

void Vrf::set_mask_bit_in(unsigned vreg, std::uint64_t i, MaskLayout layout,
                          bool value) {
  const MaskBitLoc loc = mask_bit_loc(map_, layout, i);
  std::uint8_t& byte =
      bytes_[chunk_index(loc.cluster, loc.lane, vreg, loc.byte_offset)];
  if (value) {
    byte = static_cast<std::uint8_t>(byte | (1u << loc.bit));
  } else {
    byte = static_cast<std::uint8_t>(byte & ~(1u << loc.bit));
  }
}

bool Vrf::mask_bit(unsigned vreg, std::uint64_t i) const {
  return mask_bit_in(vreg, i, mask_layout_);
}

void Vrf::set_mask_bit(unsigned vreg, std::uint64_t i, bool value) {
  set_mask_bit_in(vreg, i, mask_layout_, value);
}

std::uint64_t Vrf::reshuffle_mask(unsigned vreg, MaskLayout from, MaskLayout to,
                                  std::uint64_t bits) {
  std::vector<bool> values(bits);
  std::uint64_t moved = 0;
  for (std::uint64_t i = 0; i < bits; ++i) {
    values[i] = mask_bit_in(vreg, i, from);
    const MaskBitLoc a = mask_bit_loc(map_, from, i);
    const MaskBitLoc b = mask_bit_loc(map_, to, i);
    if (a.cluster != b.cluster || a.lane != b.lane) ++moved;
  }
  // Clear both encodings' footprints before rewriting to avoid stale bits.
  for (std::uint64_t i = 0; i < bits; ++i) {
    set_mask_bit_in(vreg, i, from, false);
  }
  for (std::uint64_t i = 0; i < bits; ++i) {
    set_mask_bit_in(vreg, i, to, values[i]);
  }
  return moved;
}

std::uint8_t Vrf::lane_byte(unsigned cluster, unsigned lane, unsigned vreg,
                            std::uint64_t offset) const {
  return bytes_[chunk_index(cluster, lane, vreg, offset)];
}

}  // namespace araxl
