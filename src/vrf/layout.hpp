// Mask byte layouts (paper §III-B.5).
//
// Ara2 keeps masks in the standard RVV layout — bit i of the logical
// register — whose bytes land in lanes according to the 64-bit-word
// mapping, so using a mask requires distributing single bits across all
// lanes through an all-to-all MASKU. AraXL introduces a dedicated layout
// that stores the mask bit of element i inside the lane that owns element
// i, making mask consumption entirely lane-local; converting a register
// between layouts is the explicit "reshuffle" operation routed through
// SLDU + RINGI.
#ifndef ARAXL_VRF_LAYOUT_HPP
#define ARAXL_VRF_LAYOUT_HPP

#include <cstdint>

#include "vrf/mapping.hpp"

namespace araxl {

enum class MaskLayout : std::uint8_t {
  kStandard,   ///< RVV bitstring order (Ara2): bit i at logical byte i/8
  kLaneLocal,  ///< AraXL encoding: bit of element i inside element i's lane
};

/// Physical home (cluster, lane, byte offset within the lane's slice of the
/// mask register, plus bit position) of mask bit `i` under `layout`.
struct MaskBitLoc {
  unsigned cluster = 0;
  unsigned lane = 0;
  std::uint64_t byte_offset = 0;
  unsigned bit = 0;
};

MaskBitLoc mask_bit_loc(const VrfMapping& map, MaskLayout layout, std::uint64_t i);

/// Fraction of the first `vl` mask bits that live in the same lane as the
/// element they guard. 1.0 for kLaneLocal by construction; ~1/total_lanes
/// for kStandard — the quantity behind Ara2's A2A MASKU traffic.
double mask_locality_fraction(const VrfMapping& map, MaskLayout layout,
                              std::uint64_t vl);

}  // namespace araxl

#endif  // ARAXL_VRF_LAYOUT_HPP
