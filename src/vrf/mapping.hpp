// Memory-to-VRF element mapping (paper §III-B.2).
//
// Ara2 maps element i to lane i (mod L) regardless of element width so that
// mixed-width operations never reshuffle bytes between lanes. AraXL extends
// the mapping hierarchically: element i lives in cluster ⌊i/L⌋ (mod C),
// lane i (mod L), at row ⌊i/(L·C)⌋ of that lane's slice of the register.
// Here C is the *total* (global) cluster count: the group level of a
// hierarchical machine partitions clusters physically but never changes
// where an element lives.
#ifndef ARAXL_VRF_MAPPING_HPP
#define ARAXL_VRF_MAPPING_HPP

#include <cstdint>

#include "common/contracts.hpp"
#include "isa/vtype.hpp"  // kNumVregs

namespace araxl {

/// Machine shape: G groups x C clusters x L lanes (Ara2 is modelled as
/// G=1, C=1). The flat two-level form — groups == 1 — is the default and
/// covers every configuration of the paper; groups > 1 describes the
/// hierarchical machines beyond 64 lanes (§V), where each group owns a
/// local cluster ring and the groups are themselves joined by a second-
/// level ring. The element mapping is hierarchy-blind: clusters are
/// numbered globally 0..total_clusters()-1 (group g owns the contiguous
/// block [g*C, (g+1)*C)), so adding a group level never reshuffles data.
struct Topology {
  unsigned clusters = 1;  ///< clusters per group
  unsigned lanes = 4;     ///< lanes per cluster
  unsigned groups = 1;    ///< second hierarchy level (1 = flat machine)

  [[nodiscard]] constexpr unsigned total_clusters() const noexcept {
    return groups * clusters;
  }
  [[nodiscard]] constexpr unsigned total_lanes() const noexcept {
    return total_clusters() * lanes;
  }
  friend bool operator==(const Topology&, const Topology&) = default;
};

/// Physical home of one element (or mask bit) of a vector register.
struct VregLoc {
  unsigned vreg = 0;          ///< architectural register (after LMUL spill)
  unsigned cluster = 0;
  unsigned lane = 0;
  std::uint64_t byte_offset = 0;  ///< within this lane's slice of the vreg
};

/// Pure mapping math shared by the VRF, the VLSU shuffle logic, and the
/// layout tests.
///
/// Every shape parameter (clusters, lanes, VLEN, element width) is a power
/// of two by contract, so the whole mapping reduces to shifts and masks —
/// this is the innermost loop of the functional engine (several accesses
/// per element per instruction), where hardware division is measurable.
class VrfMapping {
 public:
  VrfMapping(Topology topo, std::uint64_t vlen_bits);

  [[nodiscard]] Topology topology() const noexcept { return topo_; }
  [[nodiscard]] std::uint64_t vlen_bits() const noexcept { return vlen_bits_; }

  /// Bytes each lane contributes to one architectural register.
  [[nodiscard]] std::uint64_t slice_bytes() const noexcept { return slice_bytes_; }

  /// Elements of width `ew_bytes` held by one architectural register.
  [[nodiscard]] std::uint64_t elems_per_reg(unsigned ew_bytes) const {
    return (vlen_bits_ >> 3) >> ew_shift(ew_bytes);
  }

  /// Physical home of element `idx` of the group starting at `base_vreg`
  /// (idx may exceed one register under LMUL > 1). Inline: this sits in
  /// the innermost functional-execution loop.
  [[nodiscard]] VregLoc element_loc(unsigned base_vreg, std::uint64_t idx,
                                    unsigned ew_bytes) const {
    debug_check(ew_bytes == 1 || ew_bytes == 2 || ew_bytes == 4 || ew_bytes == 8,
                "invalid element width");
    const unsigned ews = ew_shift(ew_bytes);
    const unsigned epr_shift = vlen_bytes_shift_ - ews;
    const unsigned vreg = base_vreg + static_cast<unsigned>(idx >> epr_shift);
    check(vreg < kNumVregs, "element index spills past v31");
    const std::uint64_t j = idx & ((std::uint64_t{1} << epr_shift) - 1);
    VregLoc loc;
    loc.vreg = vreg;
    loc.cluster = cluster_of(j);
    loc.lane = lane_of(j);
    loc.byte_offset = row_of(j) << ews;
    debug_check(loc.byte_offset + ew_bytes <= slice_bytes_, "slice overflow");
    return loc;
  }

  /// Cluster that owns element `idx` (EW-independent, the key property of
  /// the Ara2/AraXL mapping).
  [[nodiscard]] unsigned cluster_of(std::uint64_t idx) const noexcept {
    return static_cast<unsigned>((idx >> lanes_shift_) & clusters_mask_);
  }
  /// Lane (within its cluster) that owns element `idx`.
  [[nodiscard]] unsigned lane_of(std::uint64_t idx) const noexcept {
    return static_cast<unsigned>(idx & lanes_mask_);
  }
  /// Row of element `idx` within its lane's slice.
  [[nodiscard]] std::uint64_t row_of(std::uint64_t idx) const noexcept {
    return idx >> total_shift_;
  }

  /// log2 of a (power-of-two) element width in bytes.
  [[nodiscard]] static unsigned ew_shift(unsigned ew_bytes) noexcept {
    // 1, 2, 4, 8 -> 0, 1, 2, 3 without a branch or count instruction.
    return (0x30210u >> (ew_bytes * 2)) & 0x3u;
  }

 private:
  Topology topo_;
  std::uint64_t vlen_bits_;
  std::uint64_t slice_bytes_;
  unsigned lanes_shift_ = 0;     ///< log2(lanes)
  unsigned total_shift_ = 0;     ///< log2(clusters * lanes)
  unsigned vlen_bytes_shift_ = 0;  ///< log2(VLEN / 8)
  std::uint64_t lanes_mask_ = 0;
  std::uint64_t clusters_mask_ = 0;
};

}  // namespace araxl

#endif  // ARAXL_VRF_MAPPING_HPP
