// Memory-to-VRF element mapping (paper §III-B.2).
//
// Ara2 maps element i to lane i (mod L) regardless of element width so that
// mixed-width operations never reshuffle bytes between lanes. AraXL extends
// the mapping hierarchically: element i lives in cluster ⌊i/L⌋ (mod C),
// lane i (mod L), at row ⌊i/(L·C)⌋ of that lane's slice of the register.
#ifndef ARAXL_VRF_MAPPING_HPP
#define ARAXL_VRF_MAPPING_HPP

#include <cstdint>

#include "common/contracts.hpp"

namespace araxl {

/// Machine shape: C clusters of L lanes (Ara2 is modelled as C=1).
struct Topology {
  unsigned clusters = 1;
  unsigned lanes = 4;

  [[nodiscard]] constexpr unsigned total_lanes() const noexcept {
    return clusters * lanes;
  }
  friend bool operator==(const Topology&, const Topology&) = default;
};

/// Physical home of one element (or mask bit) of a vector register.
struct VregLoc {
  unsigned vreg = 0;          ///< architectural register (after LMUL spill)
  unsigned cluster = 0;
  unsigned lane = 0;
  std::uint64_t byte_offset = 0;  ///< within this lane's slice of the vreg
};

/// Pure mapping math shared by the VRF, the VLSU shuffle logic, and the
/// layout tests.
class VrfMapping {
 public:
  VrfMapping(Topology topo, std::uint64_t vlen_bits);

  [[nodiscard]] Topology topology() const noexcept { return topo_; }
  [[nodiscard]] std::uint64_t vlen_bits() const noexcept { return vlen_bits_; }

  /// Bytes each lane contributes to one architectural register.
  [[nodiscard]] std::uint64_t slice_bytes() const noexcept { return slice_bytes_; }

  /// Elements of width `ew_bytes` held by one architectural register.
  [[nodiscard]] std::uint64_t elems_per_reg(unsigned ew_bytes) const {
    return vlen_bits_ / 8 / ew_bytes;
  }

  /// Physical home of element `idx` of the group starting at `base_vreg`
  /// (idx may exceed one register under LMUL > 1).
  [[nodiscard]] VregLoc element_loc(unsigned base_vreg, std::uint64_t idx,
                                    unsigned ew_bytes) const;

  /// Cluster that owns element `idx` (EW-independent, the key property of
  /// the Ara2/AraXL mapping).
  [[nodiscard]] unsigned cluster_of(std::uint64_t idx) const noexcept {
    return static_cast<unsigned>((idx / topo_.lanes) % topo_.clusters);
  }
  /// Lane (within its cluster) that owns element `idx`.
  [[nodiscard]] unsigned lane_of(std::uint64_t idx) const noexcept {
    return static_cast<unsigned>(idx % topo_.lanes);
  }
  /// Row of element `idx` within its lane's slice.
  [[nodiscard]] std::uint64_t row_of(std::uint64_t idx) const noexcept {
    return idx / topo_.total_lanes();
  }

 private:
  Topology topo_;
  std::uint64_t vlen_bits_;
  std::uint64_t slice_bytes_;
};

}  // namespace araxl

#endif  // ARAXL_VRF_MAPPING_HPP
