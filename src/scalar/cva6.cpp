#include "scalar/cva6.hpp"

// Cva6Model is header-only; this translation unit anchors the module.
