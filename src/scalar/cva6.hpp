// CVA6 scalar core issue model — paper §III-A.
//
// The scalar core's influence on the vector evaluation is limited to (a)
// the cycles its scalar bookkeeping consumes between vector issues, (b)
// the d-cache latency of scalar loads feeding .vf operands, and (c) the
// REQI handshake, which lives in ReqiModel. This model prices (a) and (b).
#ifndef ARAXL_SCALAR_CVA6_HPP
#define ARAXL_SCALAR_CVA6_HPP

#include "isa/program.hpp"
#include "machine/config.hpp"
#include "sim/cycle.hpp"

namespace araxl {

class Cva6Model {
 public:
  explicit Cva6Model(const MachineConfig& cfg) : cfg_(&cfg) {}

  /// Cycles CVA6 is busy executing one scalar op.
  [[nodiscard]] Cycle scalar_cost(const ScalarOp& op) const {
    switch (op.kind) {
      case ScalarOp::Kind::kCycles: return op.count;
      case ScalarOp::Kind::kLoad: return cfg_->dcache_load_latency;
      case ScalarOp::Kind::kStore: return 1;
    }
    return 1;
  }

 private:
  const MachineConfig* cfg_;
};

}  // namespace araxl

#endif  // ARAXL_SCALAR_CVA6_HPP
