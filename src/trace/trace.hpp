// Instruction-level timing trace.
//
// When a trace sink is attached to Machine::run, the timing engine records
// one record per vector instruction: issue (CVA6), dispatch (sequencer ->
// unit queue), first result, and completion, plus the executing unit. The
// Gantt renderer turns a window of the trace into an ASCII timeline —
// the fastest way to see chaining, unit overlap and interface stalls.
#ifndef ARAXL_TRACE_TRACE_HPP
#define ARAXL_TRACE_TRACE_HPP

#include <string>
#include <vector>

#include "sim/cycle.hpp"
#include "sim/stats.hpp"

namespace araxl {

struct TraceRecord {
  std::uint64_t id = 0;       ///< in-flight id (monotonic in dispatch order)
  std::uint64_t prog_index = 0;  ///< index of the op in Program::ops
  std::string text;           ///< disassembly
  Unit unit = Unit::kNone;
  std::uint64_t vl = 0;
  Cycle issued = 0;           ///< accepted by CVA6
  Cycle dispatched = 0;       ///< entered its unit queue
  Cycle first_result = 0;     ///< first element produced (0 if none)
  Cycle completed = 0;        ///< retired
  /// Dominant stall reason charged to this instruction's lifetime window
  /// (index into StallReason; kNumStallReasons when nothing was charged)
  /// and the byte-slots charged under it — the "why was this span long"
  /// annotation the Perfetto exporter surfaces.
  std::uint8_t stall_reason = static_cast<std::uint8_t>(kNumStallReasons);
  std::uint64_t stall_slots = 0;
};

/// Engine-level instants worth a timeline marker: scheduler wakeups and
/// the batching decisions (engage / clamp / reject). Recorded only when a
/// trace sink opts in (`enable_markers`) — the default-off gate keeps the
/// plain tracing path and the replayed-trace byte-identity contracts
/// untouched.
enum class SimMarkerKind : std::uint8_t {
  kWakeup = 0,    ///< one scheduler wakeup (arg: in-flight occupancy)
  kBatchEngage,   ///< apply_batch retired iterations (arg: K)
  kBatchClamp,    ///< a batch was clamped short of the region end (arg: K)
  kBatchReject,   ///< batching declined (arg: BatchReject reason index)
  kBatchWarmup,   ///< engage whose snapshots matched only after projecting
                  ///< timing-inert warmup fields (arg: K)
};

struct SimMarker {
  Cycle cycle = 0;
  SimMarkerKind kind = SimMarkerKind::kWakeup;
  std::uint64_t arg = 0;
};

class InstrTrace {
 public:
  void add(TraceRecord rec) { records_.push_back(std::move(rec)); }
  void clear() {
    records_.clear();
    markers_.clear();
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// Opts this trace into engine marker collection (wakeups, batching
  /// decisions). Off by default: markers are a timeline-export feature,
  /// not part of the per-instruction record contract.
  void enable_markers() noexcept { markers_enabled_ = true; }
  [[nodiscard]] bool markers_enabled() const noexcept {
    return markers_enabled_;
  }
  void mark(Cycle cycle, SimMarkerKind kind, std::uint64_t arg = 0) {
    if (markers_enabled_) markers_.push_back({cycle, kind, arg});
  }
  [[nodiscard]] const std::vector<SimMarker>& markers() const noexcept {
    return markers_;
  }

  /// ASCII Gantt chart of records whose lifetime intersects
  /// [from_cycle, to_cycle); `width` columns of timeline. '.' marks queue
  /// wait, '=' execution, '#' the first-result cycle.
  [[nodiscard]] std::string gantt(Cycle from_cycle, Cycle to_cycle,
                                  unsigned width = 80,
                                  std::size_t max_rows = 40) const;

 private:
  std::vector<TraceRecord> records_;
  std::vector<SimMarker> markers_;
  bool markers_enabled_ = false;
};

}  // namespace araxl

#endif  // ARAXL_TRACE_TRACE_HPP
