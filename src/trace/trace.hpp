// Instruction-level timing trace.
//
// When a trace sink is attached to Machine::run, the timing engine records
// one record per vector instruction: issue (CVA6), dispatch (sequencer ->
// unit queue), first result, and completion, plus the executing unit. The
// Gantt renderer turns a window of the trace into an ASCII timeline —
// the fastest way to see chaining, unit overlap and interface stalls.
#ifndef ARAXL_TRACE_TRACE_HPP
#define ARAXL_TRACE_TRACE_HPP

#include <string>
#include <vector>

#include "sim/cycle.hpp"
#include "sim/stats.hpp"

namespace araxl {

struct TraceRecord {
  std::uint64_t id = 0;       ///< in-flight id (monotonic in dispatch order)
  std::uint64_t prog_index = 0;  ///< index of the op in Program::ops
  std::string text;           ///< disassembly
  Unit unit = Unit::kNone;
  std::uint64_t vl = 0;
  Cycle issued = 0;           ///< accepted by CVA6
  Cycle dispatched = 0;       ///< entered its unit queue
  Cycle first_result = 0;     ///< first element produced (0 if none)
  Cycle completed = 0;        ///< retired
};

class InstrTrace {
 public:
  void add(TraceRecord rec) { records_.push_back(std::move(rec)); }
  void clear() { records_.clear(); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// ASCII Gantt chart of records whose lifetime intersects
  /// [from_cycle, to_cycle); `width` columns of timeline. '.' marks queue
  /// wait, '=' execution, '#' the first-result cycle.
  [[nodiscard]] std::string gantt(Cycle from_cycle, Cycle to_cycle,
                                  unsigned width = 80,
                                  std::size_t max_rows = 40) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace araxl

#endif  // ARAXL_TRACE_TRACE_HPP
