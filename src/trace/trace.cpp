#include "trace/trace.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/fmt.hpp"

namespace araxl {

std::string InstrTrace::gantt(Cycle from_cycle, Cycle to_cycle, unsigned width,
                              std::size_t max_rows) const {
  check(to_cycle > from_cycle, "empty trace window");
  check(width >= 10, "gantt needs at least 10 columns");
  const double scale =
      static_cast<double>(width) / static_cast<double>(to_cycle - from_cycle);
  const auto col = [&](Cycle t) -> long {
    return static_cast<long>(static_cast<double>(t - from_cycle) * scale);
  };

  std::string out = strprintf("cycles %llu .. %llu (1 column ~ %.1f cycles)\n",
                              static_cast<unsigned long long>(from_cycle),
                              static_cast<unsigned long long>(to_cycle),
                              1.0 / scale);
  std::size_t rows = 0;
  for (const TraceRecord& r : records_) {
    if (r.completed <= from_cycle || r.dispatched >= to_cycle) continue;
    if (rows++ >= max_rows) {
      out += "  ... (more instructions in window)\n";
      break;
    }
    std::string bar(width, ' ');
    const long c0 = std::clamp(col(r.dispatched), 0L, static_cast<long>(width) - 1);
    const long c1 = std::clamp(col(r.completed), c0, static_cast<long>(width) - 1);
    const long cs = std::clamp(r.first_result > 0 ? col(r.first_result) : c0, c0, c1);
    for (long c = c0; c <= c1; ++c) bar[static_cast<std::size_t>(c)] = c < cs ? '.' : '=';
    if (r.first_result > 0) bar[static_cast<std::size_t>(cs)] = '#';
    std::string label = std::string(unit_name(r.unit)) + " " + r.text;
    if (label.size() > 28) label.resize(28);
    out += strprintf("%-28s |%s|\n", label.c_str(), bar.c_str());
  }
  if (rows == 0) out += "  (no instructions in window)\n";
  return out;
}

}  // namespace araxl
