#include "serve/worker.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/contracts.hpp"
#include "common/fmt.hpp"
#include "driver/report.hpp"
#include "driver/spec.hpp"
#include "store/fingerprint.hpp"
#include "store/version.hpp"

namespace araxl::serve {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Commit retries for a failed done-record append. Transient ledger I/O
/// (injected torn writes) must not discard a finished simulation: the
/// record is retried as a whole line, and the loader dedupes.
constexpr unsigned kCommitAttempts = 4;

struct HeartbeatState {
  const WorkerOptions* opts = nullptr;
  std::string lease_dir;
  Lease lease;
  std::uint64_t period_ms = 0;
  std::uint64_t last_ms = 0;
  std::uint64_t renewals = 0;
};

}  // namespace

std::uint64_t median_done_duration_ms(const LedgerLoad& led) {
  std::vector<std::uint64_t> durations;
  durations.reserve(led.done_count);
  for (const std::optional<DoneRecord>& rec : led.done) {
    if (rec.has_value()) durations.push_back(rec->duration_ms);
  }
  if (durations.empty()) return 0;
  const std::size_t mid = durations.size() / 2;
  std::nth_element(durations.begin(), durations.begin() + mid,
                   durations.end());
  return durations[mid];
}

std::optional<WorkItem> find_work(
    const LedgerLoad& led, const std::vector<std::optional<Lease>>& leases,
    const std::string& self, std::uint64_t now_ms, std::uint64_t start,
    const SpeculationPolicy& policy) {
  const std::size_t n = led.done.size();
  check(leases.size() == n, "find_work: lease vector size mismatch");
  if (n == 0) return std::nullopt;

  // Straggler threshold: only meaningful once enough jobs have finished
  // for the median to say what "normal" looks like.
  std::uint64_t straggler_age_ms = 0;
  if (led.done_count >= policy.min_done) {
    const std::uint64_t median = median_done_duration_ms(led);
    const double scaled =
        policy.straggler_mult * static_cast<double>(median);
    straggler_age_ms = std::max<std::uint64_t>(
        policy.floor_ms, static_cast<std::uint64_t>(scaled));
  }

  std::optional<WorkItem> expired;
  std::optional<WorkItem> straggler;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (static_cast<std::size_t>(start) + k) % n;
    if (led.done[i].has_value()) continue;
    const std::optional<Lease>& lease = leases[i];
    if (!lease.has_value()) {
      // Unclaimed (or corrupt-lease) job: the best possible work — return
      // immediately, fresh claims are also the cheapest to arbitrate.
      return WorkItem{static_cast<std::uint64_t>(i), WorkKind::kFresh,
                      std::nullopt};
    }
    if (now_ms >= lease->expires_ms) {
      if (!expired.has_value()) {
        expired = WorkItem{static_cast<std::uint64_t>(i), WorkKind::kExpired,
                           lease};
      }
      continue;
    }
    // Live lease. Speculate only against *other* workers' long-running
    // jobs: re-claiming our own lease would just duplicate our own work.
    if (straggler_age_ms > 0 && lease->worker != self &&
        now_ms - lease->claimed_ms > straggler_age_ms &&
        !straggler.has_value()) {
      straggler = WorkItem{static_cast<std::uint64_t>(i),
                           WorkKind::kStraggler, lease};
    }
  }
  if (expired.has_value()) return expired;
  return straggler;
}

std::vector<driver::Job> expand_ledger_jobs(const LedgerSpec& spec) {
  driver::SweepSpec sweep;
  sweep.configs.reserve(spec.configs.size());
  for (const std::string& cfg : spec.configs) {
    sweep.configs.push_back(driver::parse_config_spec(cfg));
  }
  sweep.kernels = spec.kernels;
  sweep.bytes_per_lane = spec.bytes_per_lane;
  sweep.base_seed = spec.base_seed;
  std::vector<driver::Job> jobs = driver::expand(sweep);
  check(jobs.size() == spec.jobs,
        "ledger job expansion does not match the header count");
  return jobs;
}

WorkerReport run_worker(const WorkerOptions& opts) {
  check(!opts.worker_id.empty(), "worker needs a non-empty id");
  check(opts.lease_ttl_ms > 0, "worker lease TTL must be positive");

  LedgerLoad led = ledger_load(opts.ledger_path);
  const std::string version = opts.runner.cache_salt.empty()
                                  ? store::build_version()
                                  : opts.runner.cache_salt;
  check(led.spec.version == version,
        "ledger was enqueued by build '" + led.spec.version +
            "' but this worker is '" + version +
            "' — mixed builds would break report byte-identity");
  const std::vector<driver::Job> jobs = expand_ledger_jobs(led.spec);

  const std::string lease_dir = lease_dir_for(opts.ledger_path);
  ensure_lease_dir(lease_dir);

  const auto clock = opts.runner.clock_ms
                         ? opts.runner.clock_ms
                         : std::function<std::uint64_t()>(steady_ms);
  const auto sleep = opts.runner.sleep_ms
                         ? opts.runner.sleep_ms
                         : std::function<void(std::uint64_t)>([](std::uint64_t ms) {
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(ms));
                           });
  const std::uint64_t heartbeat_ms =
      opts.heartbeat_ms != 0 ? opts.heartbeat_ms
                             : std::max<std::uint64_t>(1, opts.lease_ttl_ms / 3);
  const auto log = [&](const std::string& msg) {
    if (opts.log) opts.log("[" + opts.worker_id + "] " + msg);
  };
  const auto cancelled = [&] {
    return opts.runner.cancel != nullptr && opts.runner.cancel->requested();
  };
  // Rotate each worker's scan start so a fleet doesn't serialize on job 0.
  const std::uint64_t scan_start = store::hash64(opts.worker_id);

  WorkerReport report;
  log(strprintf("worker starting: %zu jobs, lease ttl %llu ms, heartbeat "
                "%llu ms",
                jobs.size(),
                static_cast<unsigned long long>(opts.lease_ttl_ms),
                static_cast<unsigned long long>(heartbeat_ms)));

  for (;;) {
    if (cancelled()) {
      report.cancelled = true;
      break;
    }
    led = ledger_load(opts.ledger_path);
    if (led.complete()) break;

    std::vector<std::optional<Lease>> leases(led.done.size());
    for (std::size_t i = 0; i < led.done.size(); ++i) {
      if (!led.done[i].has_value()) leases[i] = read_lease(lease_dir, i);
    }
    const std::uint64_t now = clock();
    const std::optional<WorkItem> work =
        find_work(led, leases, opts.worker_id, now, scan_start,
                  opts.speculation);
    if (!work.has_value()) {
      sleep(opts.poll_ms);  // everything pending is leased and healthy
      continue;
    }

    std::optional<Lease> lease;
    switch (work->kind) {
      case WorkKind::kFresh:
        lease = try_claim(lease_dir, work->job, opts.worker_id, now,
                          opts.lease_ttl_ms, opts.runner.faults);
        break;
      case WorkKind::kExpired:
      case WorkKind::kStraggler:
        lease = take_over(lease_dir, *work->lease, opts.worker_id, now,
                          opts.lease_ttl_ms, opts.runner.faults);
        break;
    }
    if (!lease.has_value()) continue;  // lost the race or injected drop
    if (work->kind == WorkKind::kExpired) {
      ++report.takeovers;
      log(strprintf("job %llu: taking over expired lease from %s (gen %llu)",
                    static_cast<unsigned long long>(work->job),
                    work->lease->worker.c_str(),
                    static_cast<unsigned long long>(lease->generation)));
    } else if (work->kind == WorkKind::kStraggler) {
      ++report.speculations;
      log(strprintf("job %llu: speculatively re-dispatching straggler held "
                    "by %s",
                    static_cast<unsigned long long>(work->job),
                    work->lease->worker.c_str()));
    }

    const driver::Job& job = jobs[static_cast<std::size_t>(work->job)];

    // Per-job runner options: the ledger header decides verification, and
    // the pulse hook renews our lease at the engine's check cadence.
    driver::RunnerOptions ropts = opts.runner;
    ropts.verify = led.spec.verify;
    HeartbeatState hb;
    hb.opts = &opts;
    hb.lease_dir = lease_dir;
    hb.lease = *lease;
    hb.period_ms = heartbeat_ms;
    hb.last_ms = now;
    const std::uint64_t job_index = work->job;
    ropts.pulse = [&hb, &clock, &opts, &log, job_index] {
      const std::uint64_t t = clock();
      if (t - hb.last_ms < hb.period_ms) return;
      hb.last_ms = t;
      if (const std::optional<Lease> renewed =
              renew(hb.lease_dir, hb.lease, t, opts.lease_ttl_ms,
                    opts.runner.faults)) {
        hb.lease = *renewed;
        ++hb.renewals;
        log(strprintf("[heartbeat] job %llu lease renewed (renewal %llu)",
                      static_cast<unsigned long long>(job_index),
                      static_cast<unsigned long long>(hb.renewals)));
      }
      // A dropped or lost renewal is not fatal: we keep computing. If the
      // lease truly expired, another worker re-dispatches and our eventual
      // completion is deduped — at-least-once by construction.
    };

    const std::uint64_t t0 = clock();
    const driver::JobResult res = driver::run_job(job, ropts);
    const std::uint64_t duration = clock() - t0;
    report.renewals += hb.renewals;

    if (res.error_kind == driver::ErrorKind::kCancelled) {
      // Graceful drain: unwind without a done record so the job is
      // re-dispatched; release the lease immediately rather than making
      // the fleet wait out the TTL.
      release(lease_dir, hb.lease);
      report.cancelled = true;
      log(strprintf("job %llu: cancelled mid-flight, lease released",
                    static_cast<unsigned long long>(work->job)));
      break;
    }

    DoneRecord rec;
    rec.job = work->job;
    rec.fingerprint = store::fingerprint(
        store::JobKey{store::canonical_config(job.cfg), job.kernel,
                      job.bytes_per_lane, job.seed, version});
    rec.worker = opts.worker_id;
    rec.status = std::string(driver::error_kind_name(res.error_kind));
    rec.attempts = res.attempts;
    rec.duration_ms = duration;
    rec.json_record = driver::json_record(res);
    rec.csv_row = driver::csv_row(res);

    bool committed = false;
    for (unsigned attempt = 1; attempt <= kCommitAttempts; ++attempt) {
      try {
        ledger_append_done(opts.ledger_path, rec, opts.runner.faults,
                           opts.fsync);
        committed = true;
        break;
      } catch (const store::StoreIoError& e) {
        if (attempt == kCommitAttempts) {
          log(strprintf("job %llu: dropping completion after %u commit "
                        "attempts: %s",
                        static_cast<unsigned long long>(work->job),
                        kCommitAttempts, e.what()));
          break;
        }
        sleep(opts.runner.retry.backoff_jittered(attempt, rec.fingerprint));
      }
    }
    ++report.executed;
    if (res.ok) {
      ++report.ok;
    } else {
      ++report.failed;
      log(strprintf("job %llu: terminal failure (%s): %s",
                    static_cast<unsigned long long>(work->job),
                    rec.status.c_str(), res.error.c_str()));
    }
    if (!committed) ++report.commit_drops;
    // Commit or no commit, the lease is released: with a committed record
    // the job is done; without one, releasing lets another worker retry
    // immediately instead of waiting out the TTL.
    release(lease_dir, hb.lease);
  }

  log(strprintf("worker done: %zu executed (%zu ok, %zu failed), "
                "%zu takeovers, %zu speculations, %llu renewals%s",
                report.executed, report.ok, report.failed, report.takeovers,
                report.speculations,
                static_cast<unsigned long long>(report.renewals),
                report.cancelled ? ", cancelled" : ""));
  return report;
}

}  // namespace araxl::serve
