#include "serve/lease.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>

#include "common/contracts.hpp"
#include "common/faults.hpp"
#include "common/fmt.hpp"
#include "store/fingerprint.hpp"
#include "store/json.hpp"

namespace araxl::serve {

namespace {

constexpr std::string_view kCheckMarker = ",\"check\":\"";

std::string with_check(std::string line) {
  const std::string check = strprintf(
      "%016llx", static_cast<unsigned long long>(store::hash64(line)));
  line.insert(line.size() - 1, std::string(kCheckMarker) + check + "\"");
  return line;
}

std::uint64_t field_u64(const store::JsonValue& obj, std::string_view key) {
  const store::JsonValue* v = obj.get(key);
  check(v != nullptr, "lease is missing field '" + std::string(key) + "'");
  return v->as_u64();
}

/// Writes `content` to `path` in one shot; false on any I/O error.
bool write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f.good()) return false;
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  f.flush();
  return f.good();
}

/// Rewrites a lease file via unique-temp + atomic rename. Last rename
/// wins; the caller must read back to learn whether it did.
bool rewrite(const std::string& dir, const Lease& lease) {
  const std::string target = lease_path(dir, lease.job);
  // Temp name unique per (worker, generation): two concurrent rewriters
  // must not clobber each other's temp files.
  const std::string tmp = target + "." + lease.worker + "." +
                          std::to_string(lease.generation) + ".tmp";
  if (!write_file(tmp, serialize_lease(lease) + "\n")) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), target.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// Did our rewrite survive the race? Owner and generation must both match:
/// a concurrent takeover writes a foreign worker id and a bumped
/// generation, and last-rename-wins means the file is the single truth.
bool read_back_owns(const std::string& dir, const Lease& mine) {
  const std::optional<Lease> now = read_lease(dir, mine.job);
  return now.has_value() && now->worker == mine.worker &&
         now->generation == mine.generation;
}

}  // namespace

std::string lease_dir_for(const std::string& ledger_path) {
  return ledger_path + ".leases";
}

void ensure_lease_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return;
  fail("cannot create lease directory: " + dir);
}

std::string lease_path(const std::string& dir, std::uint64_t job) {
  return dir + "/job-" + std::to_string(job) + ".lease";
}

std::string serialize_lease(const Lease& lease) {
  std::string out = "{";
  out += "\"job\":" + store::json_u64(lease.job) + ",";
  out += "\"worker\":\"" + store::json_escape(lease.worker) + "\",";
  out += "\"gen\":" + store::json_u64(lease.generation) + ",";
  out += "\"claimed_ms\":" + store::json_u64(lease.claimed_ms) + ",";
  out += "\"expires_ms\":" + store::json_u64(lease.expires_ms);
  out += "}";
  return with_check(std::move(out));
}

Lease parse_lease(std::string_view line) {
  const store::JsonValue doc = store::parse_json(line);
  const std::size_t marker = line.rfind(kCheckMarker);
  check(marker != std::string_view::npos, "lease has no checksum");
  std::string body(line.substr(0, marker));
  body += "}";
  const store::JsonValue* stored = doc.get("check");
  check(stored != nullptr, "lease has no checksum");
  const std::string computed = strprintf(
      "%016llx", static_cast<unsigned long long>(store::hash64(body)));
  check(stored->as_string() == computed, "lease checksum mismatch");
  Lease lease;
  lease.job = field_u64(doc, "job");
  const store::JsonValue* worker = doc.get("worker");
  check(worker != nullptr, "lease is missing field 'worker'");
  lease.worker = worker->as_string();
  lease.generation = field_u64(doc, "gen");
  lease.claimed_ms = field_u64(doc, "claimed_ms");
  lease.expires_ms = field_u64(doc, "expires_ms");
  return lease;
}

std::optional<Lease> read_lease(const std::string& dir, std::uint64_t job) {
  std::ifstream f(lease_path(dir, job), std::ios::binary);
  if (!f.good()) return std::nullopt;
  std::string line;
  if (!std::getline(f, line) || line.empty()) return std::nullopt;
  try {
    return parse_lease(line);
  } catch (const ContractViolation&) {
    return std::nullopt;  // torn by a crashed writer: reads as claimable
  }
}

std::optional<Lease> try_claim(const std::string& dir, std::uint64_t job,
                               const std::string& worker,
                               std::uint64_t now_ms, std::uint64_t ttl_ms,
                               FaultInjector* faults) {
  if (faults != nullptr && faults->lease_claim_fails()) return std::nullopt;
  Lease lease;
  lease.job = job;
  lease.worker = worker;
  lease.generation = 1;
  lease.claimed_ms = now_ms;
  lease.expires_ms = now_ms + ttl_ms;
  const std::string path = lease_path(dir, job);
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return std::nullopt;  // EEXIST: someone else holds it
  const std::string line = serialize_lease(lease) + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (off != line.size()) {
    // A torn claim file parses as corrupt and reads as claimable; drop it
    // so the next scan can claim cleanly.
    std::remove(path.c_str());
    return std::nullopt;
  }
  return lease;
}

std::optional<Lease> take_over(const std::string& dir, const Lease& prev,
                               const std::string& worker,
                               std::uint64_t now_ms, std::uint64_t ttl_ms,
                               FaultInjector* faults) {
  if (faults != nullptr && faults->lease_claim_fails()) return std::nullopt;
  Lease lease;
  lease.job = prev.job;
  lease.worker = worker;
  lease.generation = prev.generation + 1;
  lease.claimed_ms = now_ms;
  lease.expires_ms = now_ms + ttl_ms;
  if (!rewrite(dir, lease)) return std::nullopt;
  if (!read_back_owns(dir, lease)) return std::nullopt;  // lost the race
  return lease;
}

std::optional<Lease> renew(const std::string& dir, const Lease& mine,
                           std::uint64_t now_ms, std::uint64_t ttl_ms,
                           FaultInjector* faults) {
  if (faults != nullptr && faults->lease_renew_fails()) return std::nullopt;
  // Before rewriting, confirm we still own the file: blindly renewing
  // after a takeover would displace the new owner's lease with a stale
  // generation.
  if (!read_back_owns(dir, mine)) return std::nullopt;
  Lease lease = mine;
  lease.expires_ms = now_ms + ttl_ms;
  if (!rewrite(dir, lease)) return std::nullopt;
  if (!read_back_owns(dir, lease)) return std::nullopt;
  return lease;
}

void release(const std::string& dir, const Lease& mine) {
  if (!read_back_owns(dir, mine)) return;  // taken over: not ours to drop
  std::remove(lease_path(dir, mine.job).c_str());
}

}  // namespace araxl::serve
