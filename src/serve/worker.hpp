// Fleet worker — pulls jobs from a sweep ledger under lease and executes
// them through the driver runner.
//
// Any number of worker *processes* point at one ledger and coordinate
// purely through the filesystem: the ledger says what is done, the lease
// directory says what is in flight, and everything else is re-derived
// (workers re-expand the job list from the ledger header). The loop:
//
//   scan:    reload done state; pick work — an unclaimed job first, then a
//            job whose lease expired (its worker is presumed dead), then —
//            only when nothing else is left — a straggler: a live lease
//            whose age exceeds a multiple of the fleet's median job time
//            (speculative re-dispatch, the tail-latency cure);
//   claim:   O_EXCL create for fresh jobs, generation-bumping takeover for
//            expired/straggling ones;
//   run:     driver::run_job with the full PR-6 substrate (typed errors,
//            retry/backoff with fingerprint jitter, deadlines, fault
//            injection). While the simulation runs, a pulse hook renews
//            the lease on the injectable clock (heartbeat), so a long job
//            does not read as dead;
//   commit:  append a done record carrying the job's exact report texts,
//            release the lease. A SIGTERM mid-job unwinds cooperatively:
//            the lease is released, *no* done record is written, and the
//            job is simply re-dispatched — graceful drain.
//
// Execution is at-least-once: a kill -9'd worker leaves an orphaned lease
// that expires and is re-claimed; a worker that lost its lease mid-job
// still finishes and appends a duplicate done record, which the ledger
// dedupes. Either way the final report is byte-identical to a clean
// single-process sweep.
#ifndef ARAXL_SERVE_WORKER_HPP
#define ARAXL_SERVE_WORKER_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "driver/runner.hpp"
#include "serve/ledger.hpp"
#include "serve/lease.hpp"

namespace araxl::serve {

/// Straggler speculation knobs (pure policy, unit-tested on a fake clock).
struct SpeculationPolicy {
  /// A live lease is a straggler when its age exceeds
  /// `max(floor_ms, straggler_mult * median done duration)`.
  double straggler_mult = 3.0;
  std::uint64_t floor_ms = 2000;
  /// Minimum done records before the median is trusted at all.
  std::size_t min_done = 3;
};

struct WorkerOptions {
  std::string ledger_path;
  /// Stable worker id — the lease owner string, the done-record `worker`
  /// field, and the log prefix. Must be unique per process in a fleet.
  std::string worker_id;
  /// Lease time-to-live: a worker silent for this long is presumed dead.
  std::uint64_t lease_ttl_ms = 15000;
  /// Heartbeat renewal period; 0 means lease_ttl_ms / 3 (three missed
  /// beats before expiry — one dropped renewal never kills a live worker).
  std::uint64_t heartbeat_ms = 0;
  SpeculationPolicy speculation;
  /// Idle wait between scans when no work is claimable.
  std::uint64_t poll_ms = 200;
  /// fsync ledger appends (crash-durable completions).
  bool fsync = false;
  /// Execution options passed through to driver::run_job: store, retry,
  /// deadlines, cancel token, fault injection, clock/sleep injection.
  /// `runner.verify` is overridden by the ledger header (the enqueuer
  /// decides); `runner.pulse` is owned by the worker (lease heartbeat).
  driver::RunnerOptions runner;
  /// Stderr-style log sink; null silences the worker.
  std::function<void(const std::string&)> log;
};

/// What one worker process did, for the exit summary.
struct WorkerReport {
  std::size_t executed = 0;      ///< jobs run to a terminal status
  std::size_t ok = 0;            ///< of those, successes
  std::size_t failed = 0;        ///< of those, terminal failures
  std::size_t takeovers = 0;     ///< expired-lease re-dispatches claimed
  std::size_t speculations = 0;  ///< straggler re-dispatches claimed
  std::uint64_t renewals = 0;    ///< successful heartbeat renewals
  std::size_t commit_drops = 0;  ///< done appends abandoned after retries
  bool cancelled = false;        ///< drained by a shutdown request
};

/// Runs the worker loop until the ledger is complete or shutdown is
/// requested. Throws ContractViolation on an unusable ledger (missing,
/// corrupt header, build-version mismatch).
WorkerReport run_worker(const WorkerOptions& opts);

// ---- pure scheduling helpers (exposed for fake-clock tests) ----------------

/// Median duration_ms over the ledger's done records (0 when none).
[[nodiscard]] std::uint64_t median_done_duration_ms(const LedgerLoad& led);

enum class WorkKind : std::uint8_t { kFresh, kExpired, kStraggler };

struct WorkItem {
  std::uint64_t job = 0;
  WorkKind kind = WorkKind::kFresh;
  std::optional<Lease> lease;  ///< current holder, for kExpired/kStraggler
};

/// Picks the next job to claim. `leases[i]` is job i's current lease (as
/// read from the lease dir; nullopt = unclaimed), `start` rotates the scan
/// so a fleet's workers don't all fight over job 0, `self` prevents a
/// worker from speculating against its own leases. Fresh work beats
/// expired work beats stragglers; nullopt means nothing is claimable now.
[[nodiscard]] std::optional<WorkItem> find_work(
    const LedgerLoad& led, const std::vector<std::optional<Lease>>& leases,
    const std::string& self, std::uint64_t now_ms, std::uint64_t start,
    const SpeculationPolicy& policy);

/// Re-expands the ledger header's declarative axes into the job list
/// (parse_config_spec + expand — the exact single-process path). Throws
/// ContractViolation when the expansion does not match `spec.jobs`.
[[nodiscard]] std::vector<driver::Job> expand_ledger_jobs(
    const LedgerSpec& spec);

}  // namespace araxl::serve

#endif  // ARAXL_SERVE_WORKER_HPP
