#include "serve/ledger.hpp"

#include <fstream>

#include "common/contracts.hpp"
#include "common/faults.hpp"
#include "common/fmt.hpp"
#include "driver/report.hpp"
#include "store/appendio.hpp"
#include "store/fingerprint.hpp"
#include "store/json.hpp"
#include "store/result_store.hpp"

namespace araxl::serve {

namespace {

using store::json_escape;
using store::JsonValue;
using store::parse_json;

// Same checksummed-line discipline as the result store: the line ends in
// `,"check":"<16-hex hash64>"` over the text with the check spliced out.
constexpr std::string_view kCheckMarker = ",\"check\":\"";

std::string with_check(std::string line) {
  const std::string check = strprintf(
      "%016llx", static_cast<unsigned long long>(store::hash64(line)));
  line.insert(line.size() - 1, std::string(kCheckMarker) + check + "\"");
  return line;
}

/// Verifies the trailing checksum; throws ContractViolation on mismatch.
void verify_check(std::string_view line, const JsonValue& doc) {
  const std::size_t marker = line.rfind(kCheckMarker);
  check(marker != std::string_view::npos, "ledger line has no checksum");
  std::string body(line.substr(0, marker));
  body += "}";
  const JsonValue* stored = doc.get("check");
  check(stored != nullptr, "ledger line has no checksum");
  const std::string computed = strprintf(
      "%016llx", static_cast<unsigned long long>(store::hash64(body)));
  check(stored->as_string() == computed, "ledger line checksum mismatch");
}

std::uint64_t field_u64(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.get(key);
  check(v != nullptr, "ledger line is missing field '" + std::string(key) + "'");
  return v->as_u64();
}

std::string field_string(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.get(key);
  check(v != nullptr, "ledger line is missing field '" + std::string(key) + "'");
  return v->as_string();
}

std::vector<std::string> field_strings(const JsonValue& obj,
                                       std::string_view key) {
  const JsonValue* v = obj.get(key);
  check(v != nullptr && v->kind == JsonValue::Kind::kArray,
        "ledger header is missing array field '" + std::string(key) + "'");
  std::vector<std::string> out;
  out.reserve(v->items.size());
  for (const JsonValue& item : v->items) out.push_back(item.as_string());
  return out;
}

/// At-least-once dedupe: does `next` supersede `prev` for the same job?
/// An "ok" verdict is never displaced by a failure (a speculative re-run
/// that lost the race and then failed must not regress the report);
/// between equal classes the later line wins (append-only: later = newer).
bool supersedes(const DoneRecord& prev, const DoneRecord& next) {
  if (prev.status == "ok" && next.status != "ok") return false;
  return true;
}

void append_line(const std::string& path, std::string line,
                 FaultInjector* faults, bool fsync) {
  line += '\n';
  store::AppendFaults af;
  if (faults != nullptr) {
    af.open_fails = [faults] { return faults->ledger_open_fails(); };
    af.short_write = [faults](std::size_t len) {
      return faults->ledger_short_write(len);
    };
  }
  (void)store::append_lines(path, line, af, fsync);
}

}  // namespace

std::string serialize_header(const LedgerSpec& spec) {
  std::string out = "{\"type\":\"sweep\",";
  out += "\"version\":\"" + json_escape(spec.version) + "\",";
  out += "\"configs\":[";
  for (std::size_t i = 0; i < spec.configs.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(spec.configs[i]) + "\"";
  }
  out += "],";
  out += "\"kernels\":[";
  for (std::size_t i = 0; i < spec.kernels.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(spec.kernels[i]) + "\"";
  }
  out += "],";
  out += "\"bpl\":[";
  for (std::size_t i = 0; i < spec.bytes_per_lane.size(); ++i) {
    if (i != 0) out += ",";
    out += store::json_u64(spec.bytes_per_lane[i]);
  }
  out += "],";
  out += "\"base_seed\":" + store::json_u64(spec.base_seed) + ",";
  out += std::string("\"verify\":") + (spec.verify ? "true" : "false") + ",";
  out += "\"jobs\":" + store::json_u64(spec.jobs);
  out += "}";
  return with_check(std::move(out));
}

LedgerSpec parse_header(std::string_view line) {
  const JsonValue doc = parse_json(line);
  verify_check(line, doc);
  check(field_string(doc, "type") == "sweep",
        "ledger header has the wrong type");
  LedgerSpec spec;
  spec.version = field_string(doc, "version");
  spec.configs = field_strings(doc, "configs");
  spec.kernels = field_strings(doc, "kernels");
  const JsonValue* bpl = doc.get("bpl");
  check(bpl != nullptr && bpl->kind == JsonValue::Kind::kArray,
        "ledger header is missing array field 'bpl'");
  for (const JsonValue& item : bpl->items) {
    spec.bytes_per_lane.push_back(item.as_u64());
  }
  spec.base_seed = field_u64(doc, "base_seed");
  const JsonValue* verify = doc.get("verify");
  check(verify != nullptr, "ledger header is missing 'verify'");
  spec.verify = verify->as_bool();
  spec.jobs = field_u64(doc, "jobs");
  check(!spec.configs.empty() && !spec.kernels.empty() &&
            !spec.bytes_per_lane.empty(),
        "ledger header has an empty sweep axis");
  check(spec.jobs == spec.configs.size() * spec.kernels.size() *
                         spec.bytes_per_lane.size(),
        "ledger header job count does not match its axes");
  return spec;
}

std::string serialize_done(const DoneRecord& rec) {
  std::string out = "{\"type\":\"done\",";
  out += "\"job\":" + store::json_u64(rec.job) + ",";
  out += "\"fp\":\"" + json_escape(rec.fingerprint) + "\",";
  out += "\"worker\":\"" + json_escape(rec.worker) + "\",";
  out += "\"status\":\"" + json_escape(rec.status) + "\",";
  out += "\"attempts\":" + store::json_u64(rec.attempts) + ",";
  out += "\"duration_ms\":" + store::json_u64(rec.duration_ms) + ",";
  out += "\"json\":\"" + json_escape(rec.json_record) + "\",";
  out += "\"csv\":\"" + json_escape(rec.csv_row) + "\"";
  out += "}";
  return with_check(std::move(out));
}

DoneRecord parse_done(std::string_view line) {
  const JsonValue doc = parse_json(line);
  verify_check(line, doc);
  check(field_string(doc, "type") == "done", "ledger line has the wrong type");
  DoneRecord rec;
  rec.job = field_u64(doc, "job");
  rec.fingerprint = field_string(doc, "fp");
  rec.worker = field_string(doc, "worker");
  rec.status = field_string(doc, "status");
  rec.attempts = field_u64(doc, "attempts");
  rec.duration_ms = field_u64(doc, "duration_ms");
  rec.json_record = field_string(doc, "json");
  rec.csv_row = field_string(doc, "csv");
  check(!rec.json_record.empty() && !rec.csv_row.empty(),
        "ledger done record has empty report texts");
  return rec;
}

void ledger_create(const std::string& path, const LedgerSpec& spec,
                   FaultInjector* faults, bool fsync) {
  check(!spec.configs.empty() && !spec.kernels.empty() &&
            !spec.bytes_per_lane.empty(),
        "cannot enqueue a sweep with an empty axis");
  check(spec.jobs == spec.configs.size() * spec.kernels.size() *
                         spec.bytes_per_lane.size(),
        "ledger spec job count does not match its axes");
  {
    std::ifstream probe(path, std::ios::binary);
    check(!probe.good(), "ledger already exists (refusing to truncate a live "
                         "fleet's history): " + path);
  }
  append_line(path, serialize_header(spec), faults, fsync);
  if (fsync) store::fsync_parent_dir(path);  // make the new name durable
}

LedgerLoad ledger_load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.good(), "cannot open ledger: " + path);
  LedgerLoad led;
  bool have_header = false;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    if (!have_header) {
      // The header must be the first intact line; a torn first line means
      // the enqueue itself crashed and the ledger is unusable.
      led.spec = parse_header(line);
      led.done.assign(static_cast<std::size_t>(led.spec.jobs), std::nullopt);
      have_header = true;
      continue;
    }
    DoneRecord rec;
    try {
      rec = parse_done(line);
    } catch (const ContractViolation&) {
      ++led.bad_lines;  // torn or corrupt — the job stays pending
      continue;
    }
    if (rec.job >= led.spec.jobs) {
      ++led.bad_lines;  // out-of-range index: treat like corruption
      continue;
    }
    std::optional<DoneRecord>& slot = led.done[static_cast<std::size_t>(rec.job)];
    if (!slot.has_value()) {
      slot = std::move(rec);
      ++led.done_count;
    } else {
      ++led.duplicates;
      if (supersedes(*slot, rec)) slot = std::move(rec);
    }
  }
  check(have_header, "ledger has no valid header line: " + path);
  return led;
}

void ledger_append_done(const std::string& path, const DoneRecord& rec,
                        FaultInjector* faults, bool fsync) {
  append_line(path, serialize_done(rec), faults, fsync);
}

std::string ledger_report_json(const LedgerLoad& led) {
  check(led.complete(),
        strprintf("ledger is incomplete: %zu of %zu jobs done",
                  led.done_count, static_cast<std::size_t>(led.spec.jobs)));
  // Identical framing to driver::to_json — the record texts were produced
  // by driver::json_record as each job finished, so the assembled document
  // is the single-process report byte for byte.
  std::string out = "{\"results\":[\n";
  for (std::size_t i = 0; i < led.done.size(); ++i) {
    out += led.done[i]->json_record;
    if (i + 1 != led.done.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

std::string ledger_report_csv(const LedgerLoad& led) {
  check(led.complete(),
        strprintf("ledger is incomplete: %zu of %zu jobs done",
                  led.done_count, static_cast<std::size_t>(led.spec.jobs)));
  std::string out = driver::csv_header();
  for (const std::optional<DoneRecord>& rec : led.done) out += rec->csv_row;
  return out;
}

}  // namespace araxl::serve
