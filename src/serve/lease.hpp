// Filesystem job leases — mutual exclusion (best-effort) for fleet workers.
//
// One lease file per job lives in `<ledger>.leases/`:
//
//   * a *fresh claim* creates `job-<index>.lease` with O_CREAT|O_EXCL —
//     the kernel arbitrates, exactly one creator wins;
//   * *renewal* (the heartbeat) and *takeover* (of an expired or straggling
//     lease) rewrite the file via unique-temp + rename. Rename is atomic
//     but last-writer-wins, so after every rewrite the writer reads the
//     file back: if the owner is no longer us, we lost the race;
//   * each takeover bumps a generation counter, so a stale owner's read-
//     back sees a foreign (worker, generation) and knows it was displaced.
//
// The race windows this leaves open (two workers both executing one job
// for a while) are deliberate: execution is at-least-once and completions
// are idempotent — the ledger dedupes done records and the store dedupes
// by fingerprint — so leases only need to make double work *rare*, never
// impossible. Timestamps are milliseconds on the injectable driver clock
// (CLOCK_MONOTONIC by default, which is machine-wide on Linux, so values
// written by one process compare correctly in another on the same host —
// the fleet is same-host by design, coordinating through one filesystem).
#ifndef ARAXL_SERVE_LEASE_HPP
#define ARAXL_SERVE_LEASE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace araxl {
class FaultInjector;
}

namespace araxl::serve {

/// One job's lease as stored on disk.
struct Lease {
  std::uint64_t job = 0;
  std::string worker;            ///< current owner
  std::uint64_t generation = 0;  ///< bumped on every takeover
  std::uint64_t claimed_ms = 0;  ///< when the *current owner* took the job
  std::uint64_t expires_ms = 0;  ///< owner is presumed dead past this
};

/// `<ledger>.leases` — the lease directory for a ledger path.
[[nodiscard]] std::string lease_dir_for(const std::string& ledger_path);

/// Creates the lease directory (and ignores it already existing).
void ensure_lease_dir(const std::string& dir);

/// Path of job `index`'s lease file inside `dir`.
[[nodiscard]] std::string lease_path(const std::string& dir,
                                     std::uint64_t job);

/// Reads and validates a lease file; nullopt when absent or corrupt (a
/// corrupt lease reads as claimable — worst case a job runs twice).
[[nodiscard]] std::optional<Lease> read_lease(const std::string& dir,
                                              std::uint64_t job);

/// Atomically claims an unclaimed job (O_CREAT|O_EXCL). Returns the lease
/// on success, nullopt when another worker holds the file or the claim
/// fault site fires. Never blocks.
[[nodiscard]] std::optional<Lease> try_claim(
    const std::string& dir, std::uint64_t job, const std::string& worker,
    std::uint64_t now_ms, std::uint64_t ttl_ms,
    FaultInjector* faults = nullptr);

/// Takes over an existing lease (expired or straggling): rewrites the file
/// with us as owner and `prev.generation + 1`, then reads back to confirm
/// we won any concurrent rewrite race. Returns the new lease on success.
[[nodiscard]] std::optional<Lease> take_over(
    const std::string& dir, const Lease& prev, const std::string& worker,
    std::uint64_t now_ms, std::uint64_t ttl_ms,
    FaultInjector* faults = nullptr);

/// Renews `mine`'s expiry (the heartbeat). Returns the renewed lease, or
/// nullopt when the renewal was dropped (injected fault) or the read-back
/// shows another worker took the lease over — the caller has lost
/// ownership and its eventual completion will simply be a duplicate.
[[nodiscard]] std::optional<Lease> renew(
    const std::string& dir, const Lease& mine, std::uint64_t now_ms,
    std::uint64_t ttl_ms, FaultInjector* faults = nullptr);

/// Releases a lease we own (unlink). A lease held by someone else (we were
/// taken over mid-job) is left alone.
void release(const std::string& dir, const Lease& mine);

// ---- serialization (exposed for tests) ------------------------------------
[[nodiscard]] std::string serialize_lease(const Lease& lease);
[[nodiscard]] Lease parse_lease(std::string_view line);

}  // namespace araxl::serve

#endif  // ARAXL_SERVE_LEASE_HPP
