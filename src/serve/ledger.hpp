// Crash-safe sweep job ledger — the coordination substrate of `araxl
// serve` / `araxl worker`.
//
// A ledger is one append-only JSONL file shared by every process of a
// fleet, following the result store's durability discipline exactly (the
// same checksummed-line format, torn-tail healing, and corruption-tolerant
// loading, via store/appendio.hpp):
//
//   * line 1 is the sweep header: the declarative SweepSpec axes (config
//     spec strings, kernels, bytes-per-lane points, base seed), the
//     expanded job count, and the build version. Workers re-expand the
//     job list from the header, so the ledger never stores per-job
//     configs — `expand()` is deterministic and the header is tiny;
//   * every subsequent line is a `done` record: one worker's terminal
//     verdict on one job, carrying the job's *exact report record text*
//     (the JSON record and CSV row produced by driver::json_record /
//     driver::csv_row as the job finished). `araxl merge --ledger`
//     reassembles those verbatim texts inside the standard framing, which
//     is how a fleet's final report is byte-identical to a single-process
//     sweep: same bytes, same serializers, just persisted one record at a
//     time;
//   * execution is at-least-once, so duplicate done records for one job
//     are expected (lease expiry re-dispatch, straggler speculation).
//     Loading dedupes: an "ok" record is never superseded by a failure,
//     otherwise the later line wins.
//
// Unlike reports, the ledger is operational state, not an artifact — done
// records may carry wall-clock durations (the straggler detector feeds on
// them). The report texts embedded in them remain pure.
#ifndef ARAXL_SERVE_LEDGER_HPP
#define ARAXL_SERVE_LEDGER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace araxl {
class FaultInjector;
}

namespace araxl::serve {

/// The declarative sweep a ledger coordinates — the header line. Axes are
/// kept in their textual spec form so workers re-expand jobs with the same
/// parse_config_spec + expand path a single-process sweep uses.
struct LedgerSpec {
  std::vector<std::string> configs;  ///< config spec strings ("araxl:64",…)
  std::vector<std::string> kernels;
  std::vector<std::uint64_t> bytes_per_lane;
  std::uint64_t base_seed = 0;
  bool verify = true;
  /// Build version stamp (store::build_version()). Workers refuse a
  /// mismatched ledger: mixing builds in one fleet would break the
  /// byte-identity contract (and the store fingerprints would miss anyway).
  std::string version;
  /// Expanded job count, cross-checked against re-expansion on load.
  std::uint64_t jobs = 0;
};

/// One worker's terminal verdict on one job.
struct DoneRecord {
  std::uint64_t job = 0;     ///< global job index
  std::string fingerprint;   ///< store fingerprint (dedupe / audit key)
  std::string worker;        ///< worker id that produced it
  std::string status;        ///< error_kind_name vocabulary ("ok", …)
  std::uint64_t attempts = 1;
  std::uint64_t duration_ms = 0;  ///< wall-clock execution time (see above)
  std::string json_record;   ///< driver::json_record text, verbatim
  std::string csv_row;       ///< driver::csv_row text, verbatim (with '\n')
};

/// What ledger_load() saw on disk.
struct LedgerLoad {
  LedgerSpec spec;
  /// Best done record per job index (size == spec.jobs). At-least-once
  /// dedupe: "ok" beats any failure; between equals the later line wins.
  std::vector<std::optional<DoneRecord>> done;
  std::size_t done_count = 0;  ///< jobs with a done record
  std::size_t bad_lines = 0;   ///< torn / corrupt / out-of-range lines
  std::size_t duplicates = 0;  ///< superseded duplicate done records

  [[nodiscard]] bool complete() const { return done_count == spec.jobs; }
};

/// Writes the header line into a fresh ledger at `path`. Refuses (throws
/// ContractViolation) when the file already exists — a ledger is enqueued
/// once; re-running serve against a live fleet must not truncate history.
void ledger_create(const std::string& path, const LedgerSpec& spec,
                   FaultInjector* faults = nullptr, bool fsync = false);

/// Loads and validates a ledger. Throws ContractViolation when the file is
/// missing or no valid header line survives; corrupt or torn done lines
/// are skipped and counted, never fatal (the affected jobs simply remain
/// pending and get re-dispatched).
[[nodiscard]] LedgerLoad ledger_load(const std::string& path);

/// Appends one done record (torn-tail healing + optional fsync, fault
/// sites ledger.open / ledger.write). Throws StoreIoError on failure —
/// injected or real; the caller retries or releases the job's lease so
/// another worker re-executes it.
void ledger_append_done(const std::string& path, const DoneRecord& rec,
                        FaultInjector* faults = nullptr, bool fsync = false);

// ---- serialization (exposed for tests) ------------------------------------
[[nodiscard]] std::string serialize_header(const LedgerSpec& spec);
[[nodiscard]] LedgerSpec parse_header(std::string_view line);
[[nodiscard]] std::string serialize_done(const DoneRecord& rec);
[[nodiscard]] DoneRecord parse_done(std::string_view line);

// ---- final-report assembly -------------------------------------------------

/// Reassembles the sweep's JSON report from a complete ledger — byte-
/// identical to driver::to_json over a single-process run of the same
/// spec. Throws ContractViolation when any job lacks a done record (an
/// incomplete fleet cannot reproduce the report).
[[nodiscard]] std::string ledger_report_json(const LedgerLoad& led);

/// CSV counterpart of ledger_report_json (driver::csv_header framing).
[[nodiscard]] std::string ledger_report_csv(const LedgerLoad& led);

}  // namespace araxl::serve

#endif  // ARAXL_SERVE_LEDGER_HPP
