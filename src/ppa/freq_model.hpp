// Maximum-frequency model — paper §IV-D.a (22 nm, typical corner, 0.8 V).
//
// AraXL closes timing at 1.40 GHz up to 32 lanes because the A2A critical
// paths of Ara2 (align/shuffle in the VLSU, bit-level MASKU) were replaced
// with pipelined interconnects; the 64-lane instance degrades to 1.15 GHz
// due to floorplan-induced routing congestion. Ara2's frequency falls with
// lane count as the all-to-all wiring grows (1.08 GHz at 16 lanes).
#ifndef ARAXL_PPA_FREQ_MODEL_HPP
#define ARAXL_PPA_FREQ_MODEL_HPP

#include "machine/config.hpp"

namespace araxl {

class FreqModel {
 public:
  /// Maximum clock frequency in GHz (TT corner, 0.8 V, 25 C).
  [[nodiscard]] double freq_ghz(const MachineConfig& cfg) const {
    if (cfg.kind == MachineKind::kAraXL) {
      // Congestion hotspots appear when the cluster ring exceeds 8 stops
      // (paper: 1.15 GHz at 64 lanes, 1.40 GHz up to 32).
      return cfg.topo.clusters <= 8 ? 1.40 : 1.15;
    }
    // Ara2: the A2A units put the lane count in the critical path.
    return 1.40 - 0.02 * cfg.topo.lanes;
  }
};

}  // namespace araxl

#endif  // ARAXL_PPA_FREQ_MODEL_HPP
