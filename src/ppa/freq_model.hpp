// Maximum-frequency model — paper §IV-D.a (22 nm, typical corner, 0.8 V).
//
// AraXL closes timing at 1.40 GHz up to 32 lanes because the A2A critical
// paths of Ara2 (align/shuffle in the VLSU, bit-level MASKU) were replaced
// with pipelined interconnects; the 64-lane instance degrades to 1.15 GHz
// due to floorplan-induced routing congestion. Ara2's frequency falls with
// lane count as the all-to-all wiring grows (1.08 GHz at 16 lanes).
//
// Both rules are derived from the interconnect descriptor, calibrated on
// the paper's published points: congestion tracks the longest single
// physical ring (16 stops at 64 lanes flat => 1.15 GHz; up to 8 stops =>
// 1.40 GHz), which is exactly what the hierarchical topologies fix — a
// 128-lane 4x8x4 machine keeps every ring at <= 8 stops and holds the
// 1.40 GHz corner.
#ifndef ARAXL_PPA_FREQ_MODEL_HPP
#define ARAXL_PPA_FREQ_MODEL_HPP

#include "interconnect/spec.hpp"
#include "machine/config.hpp"

namespace araxl {

/// Frequency floor for the lumped A2A extrapolation: the linear wiring
/// penalty is only calibrated inside Ara2's 2..16-lane range, and the raw
/// line (1.40 - 0.02 * lanes) would cross zero past ~70 lanes.
inline constexpr double kAra2FreqFloorGhz = 0.25;

class FreqModel {
 public:
  /// Maximum clock frequency in GHz (TT corner, 0.8 V, 25 C).
  [[nodiscard]] double freq_ghz(const MachineConfig& cfg) const {
    const InterconnectSpec spec = cfg.interconnect();
    if (spec.lumped) {
      // Lumped A2A units put the lane count in the critical path.
      const double f = 1.40 - 0.02 * spec.topo.lanes;
      return f > kAra2FreqFloorGhz ? f : kAra2FreqFloorGhz;
    }
    // Congestion hotspots appear when any single ring exceeds 8 stops
    // (paper: 1.15 GHz at 64 lanes — a flat 16-stop ring — and 1.40 GHz
    // up to 32 lanes).
    return spec.max_ring_stops() <= 8 ? 1.40 : 1.15;
  }
};

}  // namespace araxl

#endif  // ARAXL_PPA_FREQ_MODEL_HPP
