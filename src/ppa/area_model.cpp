#include "ppa/area_model.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace araxl {
namespace {

// ---- AraXL calibration constants (kGE), from Fig. 9 and Table II ----------
constexpr double kLaneKge = 627.0;        // 16 lanes -> 10032
constexpr double kClusterMasku = 82.0;    // 4 clusters -> 328
constexpr double kClusterSldu = 100.0;    // (425 - 25 RINGI) / 4
constexpr double kClusterVlsu = 54.0;     // (507 - 291 GLSU) / 4
constexpr double kClusterSeqDisp = 25.0;  // (134 - 34 REQI) / 4
constexpr double kClusterGlue = 69.625;   // closes Table II "Clusters" = 11354
constexpr double kCva6Kge = 930.0;        // paper: 936/901/931 (P&R noise)

// GLSU: linear per-cluster datapath + quadratic shuffle wiring; fits
// 291/618/1385 at C = 4/8/16 within 0.4%. In a hierarchical machine the
// quadratic wiring applies within one distribution level: per-group
// shuffles of clusters_per_group endpoints plus a top-level shuffle of
// groups endpoints.
constexpr double kGlsuLin = 68.25;
constexpr double kGlsuQuad = 1.125;

// RINGI: per-ring-stop cost + constant control per ring; fits 25/44/76 on
// the flat machines. Hierarchical machines add the group-level ring's
// stops and one control block per physical ring.
constexpr double kRingiLin = 4.25;
constexpr double kRingiConst = 8.0;

// REQI anchors (the broadcast tree grows superlinearly in fanout but the
// three published points do not fit a clean polynomial; interpolate).
struct Anchor {
  unsigned c;
  double kge;
};
constexpr Anchor kReqiAnchors[] = {{2, 18.0}, {4, 34.0}, {8, 81.0}, {16, 144.0}};

/// Flat broadcast tree of `clusters` endpoints (paper-calibrated).
double reqi_flat_kge(unsigned clusters) {
  const auto n = std::size(kReqiAnchors);
  if (clusters <= kReqiAnchors[0].c) {
    return kReqiAnchors[0].kge * clusters / kReqiAnchors[0].c;
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (clusters <= kReqiAnchors[i].c) {
      const auto& lo = kReqiAnchors[i - 1];
      const auto& hi = kReqiAnchors[i];
      const double t = static_cast<double>(clusters - lo.c) / (hi.c - lo.c);
      return lo.kge + t * (hi.kge - lo.kge);
    }
  }
  // Extrapolate at the last anchor's per-cluster slope.
  const auto& last = kReqiAnchors[n - 1];
  return last.kge * clusters / last.c;
}

// ---- Ara2 calibration constants (kGE), from Fig. 9 -------------------------
constexpr double kAra2LaneKge = 628.0;      // 16 lanes -> 10048
constexpr double kAra2MaskuQuad = 1105.0 / 256.0;  // bit-level A2A: O(L^2)
constexpr double kAra2SlduLin = 196.0 / 16.0;
constexpr double kAra2VlsuQuad = 1677.0 / 256.0;   // align+shuffle A2A: O(L^2)
constexpr double kAra2SeqDispLin = 52.0 / 16.0;
constexpr double kAra2Cva6 = 904.0;
constexpr double kAra2GlueLin = 791.0 / 16.0;      // closes Fig. 9 total 14773

}  // namespace

double AreaBreakdown::total_kge() const {
  double sum = 0.0;
  for (const AreaBlock& b : blocks) sum += b.kge;
  return sum;
}

double AreaBreakdown::block_kge(std::string_view name) const {
  for (const AreaBlock& b : blocks) {
    if (b.name == name) return b.kge;
  }
  return 0.0;
}

double AreaModel::lane_kge(bool lumped) const {
  return lumped ? kAra2LaneKge : kLaneKge;
}

double AreaModel::cluster_kge() const {
  return 4 * kLaneKge + kClusterMasku + kClusterSldu + kClusterVlsu +
         kClusterSeqDisp + kClusterGlue;
}

double AreaModel::glsu_kge(const InterconnectSpec& spec) const {
  const Topology& topo = spec.topo;
  if (topo.groups > 1) {
    // Per-cluster datapath everywhere; quadratic shuffle wiring inside
    // each group's distribution level plus the group-level distribution.
    const double cpg = topo.clusters;
    const double g = topo.groups;
    return kGlsuLin * topo.total_clusters() +
           kGlsuQuad * (cpg * cpg * g + g * g);
  }
  const double c = topo.clusters;
  // Residual correction keeps the 16-cluster anchor exact (paper: 1385).
  const double fit = kGlsuLin * c + kGlsuQuad * c * c;
  return topo.clusters == 16 ? fit + 5.0 : fit;
}

double AreaModel::ringi_kge(const InterconnectSpec& spec) const {
  const Topology& topo = spec.topo;
  if (topo.groups > 1) {
    // Stops on every ring (per-group cluster rings + the group-level
    // ring), one control block per physical ring.
    return kRingiLin * spec.total_ring_stops() +
           kRingiConst * (topo.groups + 1);
  }
  const double fit = kRingiLin * topo.clusters + kRingiConst;
  return topo.clusters == 8 ? fit + 2.0 : fit;  // anchor: 44 at 8 clusters
}

double AreaModel::reqi_kge(const InterconnectSpec& spec) const {
  const Topology& topo = spec.topo;
  if (topo.groups > 1) {
    // Tree of trees: a root stage fanning out to the groups, then one
    // paper-calibrated tree per group.
    return topo.groups * reqi_flat_kge(topo.clusters) +
           reqi_flat_kge(topo.groups);
  }
  return reqi_flat_kge(topo.clusters);
}

double AreaModel::cva6_kge(const InterconnectSpec& spec) const {
  if (spec.lumped) return kAra2Cva6;
  // Paper Table II: 936 / 901 / 931 for 4/8/16 clusters (place-and-route
  // variation around a constant core); reproduce the flat anchors.
  if (spec.topo.groups == 1) {
    switch (spec.topo.clusters) {
      case 4: return 936.0;
      case 8: return 901.0;
      case 16: return 931.0;
      default: break;
    }
  }
  return kCva6Kge;
}

AreaBreakdown AreaModel::breakdown(const MachineConfig& cfg) const {
  const InterconnectSpec spec = cfg.interconnect();
  AreaBreakdown out;
  if (!spec.lumped) {
    out.blocks.push_back(
        {"Clusters", cluster_kge() * spec.topo.total_clusters()});
    out.blocks.push_back({"CVA6", cva6_kge(spec)});
    out.blocks.push_back({"GLSU", glsu_kge(spec)});
    out.blocks.push_back({"RINGI", ringi_kge(spec)});
    out.blocks.push_back({"REQI", reqi_kge(spec)});
  } else {
    const unsigned l = spec.topo.lanes;
    out.blocks.push_back({"LANES", kAra2LaneKge * l});
    out.blocks.push_back({"MASKU", kAra2MaskuQuad * l * l});
    out.blocks.push_back({"SLDU", kAra2SlduLin * l});
    out.blocks.push_back({"VLSU", kAra2VlsuQuad * l * l});
    out.blocks.push_back({"SEQ+DISP", kAra2SeqDispLin * l});
    out.blocks.push_back({"CVA6", kAra2Cva6});
    out.blocks.push_back({"glue", kAra2GlueLin * l});
  }
  return out;
}

AreaBreakdown AreaModel::fig9_breakdown(const MachineConfig& cfg) const {
  const InterconnectSpec spec = cfg.interconnect();
  if (spec.lumped) return breakdown(cfg);
  const unsigned c = spec.topo.total_clusters();
  AreaBreakdown out;
  out.blocks.push_back({"LANES", 4 * kLaneKge * c});
  out.blocks.push_back({"MASKU", kClusterMasku * c});
  out.blocks.push_back({"SLDU", kClusterSldu * c + ringi_kge(spec)});
  out.blocks.push_back({"VLSU", kClusterVlsu * c + glsu_kge(spec)});
  out.blocks.push_back({"SEQ+DISP", kClusterSeqDisp * c + reqi_kge(spec)});
  out.blocks.push_back({"CVA6", cva6_kge(spec)});
  out.blocks.push_back({"glue", kClusterGlue * c});
  return out;
}

double AreaModel::total_kge(const MachineConfig& cfg) const {
  return breakdown(cfg).total_kge();
}

double AreaModel::total_mm2(const MachineConfig& cfg) const {
  return total_kge(cfg) * kMm2PerKge;
}

}  // namespace araxl
