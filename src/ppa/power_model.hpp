// Power / energy-efficiency model — paper §IV-D.b (post-layout PrimeTime
// power at 0.8 V, TT, 25 C, running fmatmul in the long-vector regime).
//
// Energy per cycle decomposes into a per-lane term (FPU + VRF + operand
// path), a quadratic-in-clusters interconnect wiring term, and a fixed
// CVA6 + clock-tree term. The three coefficients are solved exactly from
// the paper's three published efficiency points (39.6 / 40.4 / 40.1 GFLOPS/W at
// 16/32/64 lanes); Ara2's higher per-lane energy (A2A toggling) is
// calibrated from its 30.3 GFLOPS/W.
#ifndef ARAXL_PPA_POWER_MODEL_HPP
#define ARAXL_PPA_POWER_MODEL_HPP

#include "machine/config.hpp"

namespace araxl {

class PowerModel {
 public:
  /// Dynamic + static energy per clock cycle in pJ while running a
  /// compute-bound kernel at FPU utilization `util` (0..1).
  [[nodiscard]] double energy_per_cycle_pj(const MachineConfig& cfg,
                                           double util) const;

  /// Total power in W at frequency `freq_ghz` and utilization `util`.
  [[nodiscard]] double power_w(const MachineConfig& cfg, double freq_ghz,
                               double util) const {
    return energy_per_cycle_pj(cfg, util) * freq_ghz * 1e-3;
  }

  /// Energy efficiency in GFLOPS/W given achieved DP-FLOP/cycle.
  [[nodiscard]] double gflops_per_w(const MachineConfig& cfg, double freq_ghz,
                                    double flop_per_cycle, double util) const {
    return flop_per_cycle * freq_ghz / power_w(cfg, freq_ghz, util);
  }
};

}  // namespace araxl

#endif  // ARAXL_PPA_POWER_MODEL_HPP
