// State-of-the-art survey data — paper Fig. 1 (VLEN vs FPUs landscape) and
// the external rows of Table III.
#ifndef ARAXL_PPA_SOA_HPP
#define ARAXL_PPA_SOA_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace araxl {

/// One processor in the Fig. 1 landscape.
struct SoaProcessor {
  std::string name;
  std::uint64_t vlen_bits;  ///< vector register bit width
  unsigned fpus;            ///< FPUs used by one vector instruction
  bool riscv;
};

/// The Fig. 1 survey set (positions as plotted by the paper; entries whose
/// public configurations are ranges use the figure's placement and are
/// commented in the implementation).
std::vector<SoaProcessor> fig1_landscape();

/// External comparison row of Table III (Vitruvius+; the paper's footnote:
/// scalar core and caches are not included in its efficiency metrics).
struct SoaPpaRow {
  std::string name;
  unsigned lanes;
  double freq_ghz;
  double max_perf_gflops;
  double energy_eff_gflops_w;
  double area_eff_gflops_mm2;
  std::string note;
};

SoaPpaRow vitruvius_row();

/// Older-generation NEC vector engine area efficiency the paper quotes in
/// §IV-E (10.16 DP-GFLOPS/mm^2 at 1.6 GHz).
double nec_ve_area_eff_gflops_mm2();

}  // namespace araxl

#endif  // ARAXL_PPA_SOA_HPP
