#include "ppa/soa.hpp"

namespace araxl {

std::vector<SoaProcessor> fig1_landscape() {
  // VLEN/FPU placements follow the paper's Fig. 1. For commercial cores
  // whose shipping configurations are ranges (SiFive, Andes,
  // Semidynamics), the figure's plotted point is used; the paper's §II text
  // fixes Andes AX45MPV at 16 FPUs / 1024-bit VLEN and Semidynamics at 32
  // FPUs / 4096-bit VLEN.
  return {
      {"2L-Ara2", 2048, 2, true},
      {"4L-Ara2", 4096, 4, true},
      {"8L-Ara2", 8192, 8, true},
      {"16L-Ara2", 16384, 16, true},
      {"16L-AraXL", 16384, 16, true},
      {"32L-AraXL", 32768, 32, true},
      {"64L-AraXL", 65536, 64, true},
      {"Vitruvius+", 16384, 8, true},
      {"SiFive P270", 256, 1, true},
      {"SiFive X280/P670", 512, 2, true},
      {"SiFive X390", 1024, 4, true},
      {"Andes AX45MPV", 1024, 16, true},
      {"Semidynamics", 4096, 32, true},
      {"Spatz", 512, 4, true},
      {"Vicuna-small", 128, 1, true},
      {"Vicuna-fast", 2048, 8, true},
      {"Arrow", 512, 1, true},
      {"Fugaku A64FX", 512, 32, false},   // 2048-bit is the SVE ISA ceiling
      {"NEC VE30", 16384, 32, false},     // 32 lanes per core, VLEN 16 Kibit
  };
}

SoaPpaRow vitruvius_row() {
  return {"Vitruvius+", 8, 1.40, 22.4, 47.3, 17.23,
          "scalar core and caches not included"};
}

double nec_ve_area_eff_gflops_mm2() { return 10.16; }

}  // namespace araxl
