#include "ppa/freq_model.hpp"

// FreqModel is header-only; this translation unit anchors the module.
