// Slicing-tree floorplanner — reproduces the hierarchical physical layout
// of paper Fig. 8 (16-lane AraXL floorplan) from the area model.
//
// Blocks are placed by recursive area bisection with alternating cut
// directions inside a square die sized for a given core utilization, the
// standard first-order slicing floorplan used for early hierarchical P&R
// exploration. Invariants (no overlap, containment, area proportionality)
// are enforced by tests.
#ifndef ARAXL_PPA_FLOORPLAN_HPP
#define ARAXL_PPA_FLOORPLAN_HPP

#include <string>
#include <vector>

#include "ppa/area_model.hpp"

namespace araxl {

/// Axis-aligned placed block (mm).
struct PlacedBlock {
  std::string name;
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  [[nodiscard]] double area() const { return w * h; }
};

struct Floorplan {
  double die_w = 0.0;
  double die_h = 0.0;
  std::vector<PlacedBlock> blocks;

  /// ASCII rendering (roughly `cols` characters wide).
  [[nodiscard]] std::string render(unsigned cols = 72) const;
};

/// Floorplans a list of blocks into a square die at `utilization`
/// (fraction of die area covered by blocks; 0.8 is typical).
Floorplan slice_floorplan(const std::vector<AreaBlock>& blocks,
                          double utilization = 0.8);

/// Convenience: the Fig. 8 plan of a machine — CVA6 + top-level interfaces
/// + one block per cluster (AraXL) or per lane group + A2A units (Ara2).
Floorplan machine_floorplan(const MachineConfig& cfg);

}  // namespace araxl

#endif  // ARAXL_PPA_FLOORPLAN_HPP
