// Area model (kGE) for AraXL and the Ara2 baseline — paper §IV-D.
//
// The model is structural (per-lane, per-cluster and per-interface terms,
// with the quadratic all-to-all terms that limit Ara2's scalability) and is
// calibrated against the paper's published 22-nm numbers: the Fig. 9
// breakdown of the 16-lane instances and the Table II scaling of 16/32/64
// lanes. Anchored configurations reproduce the paper to the kGE; other
// configurations — including hierarchical (groups > 1) machines, whose
// interface terms are derived from the InterconnectSpec descriptor's ring-
// stop counts and broadcast-tree depth — follow the structural formulas.
#ifndef ARAXL_PPA_AREA_MODEL_HPP
#define ARAXL_PPA_AREA_MODEL_HPP

#include <string>
#include <vector>

#include "interconnect/spec.hpp"
#include "machine/config.hpp"

namespace araxl {

/// One named block of the area breakdown.
struct AreaBlock {
  std::string name;
  double kge = 0.0;
};

/// Full breakdown of one configuration.
struct AreaBreakdown {
  std::vector<AreaBlock> blocks;

  [[nodiscard]] double total_kge() const;
  [[nodiscard]] double block_kge(std::string_view name) const;  // 0 if absent
};

/// mm^2 per kGE in the paper's 22-nm node (fitted from the four
/// GFLOPS/mm^2 rows of Table III; ~0.201 um^2 per gate equivalent).
inline constexpr double kMm2PerKge = 2.01e-4;

class AreaModel {
 public:
  /// Breakdown in Table II structure for AraXL (Clusters / CVA6 / GLSU /
  /// RINGI / REQI) or Fig. 9 structure for Ara2 (lanes / MASKU / SLDU /
  /// VLSU / SEQ+DISP / CVA6 / glue).
  [[nodiscard]] AreaBreakdown breakdown(const MachineConfig& cfg) const;

  /// Fig. 9 style per-unit breakdown for AraXL where the top-level GLSU,
  /// RINGI and REQI areas are folded into VLSU, SLDU and SEQ+DISP
  /// respectively (matching the figure's caption).
  [[nodiscard]] AreaBreakdown fig9_breakdown(const MachineConfig& cfg) const;

  [[nodiscard]] double total_kge(const MachineConfig& cfg) const;
  [[nodiscard]] double total_mm2(const MachineConfig& cfg) const;

  // ---- individual structural terms (kGE) ----------------------------------
  /// One lane; the lumped (A2A) lane carries slightly more glue.
  [[nodiscard]] double lane_kge(bool lumped) const;
  [[nodiscard]] double cluster_kge() const;         ///< one 4-lane AraXL cluster
  /// Top-level interface areas, derived from the descriptor: GLSU shuffle
  /// wiring is quadratic within a distribution level, RINGI scales with the
  /// total ring-stop count, REQI with the broadcast-tree fanout per level.
  [[nodiscard]] double glsu_kge(const InterconnectSpec& spec) const;
  [[nodiscard]] double ringi_kge(const InterconnectSpec& spec) const;
  [[nodiscard]] double reqi_kge(const InterconnectSpec& spec) const;
  [[nodiscard]] double cva6_kge(const InterconnectSpec& spec) const;
};

}  // namespace araxl

#endif  // ARAXL_PPA_AREA_MODEL_HPP
