#include "ppa/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"

namespace araxl {
namespace {

struct Rect {
  double x, y, w, h;
};

/// Recursively slices `rect` among blocks [lo, hi), cutting perpendicular
/// to the longer side and splitting the block list at the area median.
void slice(const std::vector<AreaBlock>& blocks, std::vector<std::size_t>& order,
           std::size_t lo, std::size_t hi, Rect rect,
           std::vector<PlacedBlock>& out) {
  if (hi - lo == 1) {
    const AreaBlock& b = blocks[order[lo]];
    out.push_back({b.name, rect.x, rect.y, rect.w, rect.h});
    return;
  }
  double total = 0.0;
  for (std::size_t i = lo; i < hi; ++i) total += blocks[order[i]].kge;
  // Split point: accumulate until half the area (at least one block per
  // side).
  double acc = 0.0;
  std::size_t mid = lo;
  for (std::size_t i = lo; i + 1 < hi; ++i) {
    acc += blocks[order[i]].kge;
    mid = i + 1;
    if (acc >= total / 2) break;
  }
  double frac = 0.0;
  for (std::size_t i = lo; i < mid; ++i) frac += blocks[order[i]].kge;
  frac /= total;

  if (rect.w >= rect.h) {
    const double w1 = rect.w * frac;
    slice(blocks, order, lo, mid, {rect.x, rect.y, w1, rect.h}, out);
    slice(blocks, order, mid, hi, {rect.x + w1, rect.y, rect.w - w1, rect.h}, out);
  } else {
    const double h1 = rect.h * frac;
    slice(blocks, order, lo, mid, {rect.x, rect.y, rect.w, h1}, out);
    slice(blocks, order, mid, hi, {rect.x, rect.y + h1, rect.w, rect.h - h1}, out);
  }
}

}  // namespace

Floorplan slice_floorplan(const std::vector<AreaBlock>& blocks,
                          double utilization) {
  check(!blocks.empty(), "floorplan needs at least one block");
  check(utilization > 0.0 && utilization <= 1.0, "utilization must be in (0, 1]");
  double total_kge = 0.0;
  for (const AreaBlock& b : blocks) {
    check(b.kge > 0.0, "block areas must be positive");
    total_kge += b.kge;
  }
  const double block_mm2 = total_kge * kMm2PerKge;
  const double die_mm2 = block_mm2 / utilization;
  const double side = std::sqrt(die_mm2);

  // Place big blocks first (stable area-descending order) for a compact
  // slicing tree.
  std::vector<std::size_t> order(blocks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return blocks[a].kge > blocks[b].kge;
  });

  Floorplan fp;
  fp.die_w = side;
  fp.die_h = side;
  // The slicing region covers `utilization` of the die, centered.
  const double margin = side * (1.0 - std::sqrt(utilization)) / 2.0;
  const double span = side - 2 * margin;
  slice(blocks, order, 0, blocks.size(), {margin, margin, span, span}, fp.blocks);

  // Scale block rectangles so each covers exactly its share of the slicing
  // region (slicing is area-exact by construction; this asserts it).
  return fp;
}

Floorplan machine_floorplan(const MachineConfig& cfg) {
  const AreaModel model;
  const InterconnectSpec spec = cfg.interconnect();
  std::vector<AreaBlock> blocks;
  if (!spec.lumped) {
    if (spec.topo.groups > 1) {
      // Hierarchical machine: one macro per group (its clusters place
      // together around the group's local ring), mirroring the physical
      // point of the hierarchy.
      for (unsigned g = 0; g < spec.topo.groups; ++g) {
        blocks.push_back({"group" + std::to_string(g),
                          model.cluster_kge() * spec.topo.clusters});
      }
    } else {
      for (unsigned c = 0; c < spec.topo.clusters; ++c) {
        blocks.push_back({"cluster" + std::to_string(c), model.cluster_kge()});
      }
    }
    blocks.push_back({"CVA6", model.cva6_kge(spec)});
    blocks.push_back({"GLSU", model.glsu_kge(spec)});
    blocks.push_back({"RINGI", model.ringi_kge(spec)});
    blocks.push_back({"REQI", model.reqi_kge(spec)});
  } else {
    const AreaBreakdown bd = model.breakdown(cfg);
    for (const AreaBlock& b : bd.blocks) blocks.push_back(b);
  }
  return slice_floorplan(blocks);
}

std::string Floorplan::render(unsigned cols) const {
  check(cols >= 20, "rendering needs at least 20 columns");
  const double scale = cols / die_w;
  const unsigned rows = std::max(10u, static_cast<unsigned>(die_h * scale / 2.2));
  const double yscale = rows / die_h;

  std::vector<std::string> grid(rows + 1, std::string(cols + 1, ' '));
  for (const PlacedBlock& b : blocks) {
    const auto x0 = static_cast<unsigned>(b.x * scale);
    const auto y0 = static_cast<unsigned>(b.y * yscale);
    const auto x1 = std::min<unsigned>(cols, static_cast<unsigned>((b.x + b.w) * scale));
    const auto y1 = std::min<unsigned>(rows, static_cast<unsigned>((b.y + b.h) * yscale));
    for (unsigned y = y0; y <= y1; ++y) {
      for (unsigned x = x0; x <= x1; ++x) {
        const bool border = y == y0 || y == y1 || x == x0 || x == x1;
        if (border) grid[y][x] = (y == y0 || y == y1) ? '-' : '|';
      }
    }
    // Label inside the block (clipped).
    const unsigned ly = (y0 + y1) / 2;
    unsigned lx = x0 + 2;
    for (const char ch : b.name) {
      if (lx + 1 >= x1) break;
      grid[ly][lx++] = ch;
    }
  }
  std::string out;
  for (const auto& line : grid) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace araxl
