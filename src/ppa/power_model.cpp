#include "ppa/power_model.hpp"

#include "interconnect/spec.hpp"

namespace araxl {
namespace {

// AraXL energy-per-cycle coefficients (pJ), solved exactly from the three
// fmatmul power points implied by Table III (44.3 W.Eff 39.6 => 1.119 W at
// 1.40 GHz, etc.):  E = a*total_lanes + b*clusters^2 + c.
constexpr double kLanePj = 41.97;
constexpr double kWirePj = 1.469;
constexpr double kFixedPj = 104.0;

// Ara2: A2A interconnect toggling folds into a larger per-lane energy
// (30.3 GFLOPS/W at 16 lanes => 1.129 W at 1.08 GHz => 1045 pJ/cycle).
constexpr double kAra2LanePj = 58.8;
constexpr double kAra2FixedPj = 104.0;

// Fraction of the active-lane energy that is utilization-independent
// (clock tree, VRF standby, sequencers).
constexpr double kIdleFraction = 0.35;

}  // namespace

double PowerModel::energy_per_cycle_pj(const MachineConfig& cfg,
                                       double util) const {
  const double activity = kIdleFraction + (1.0 - kIdleFraction) * util;
  const InterconnectSpec spec = cfg.interconnect();
  if (spec.lumped) {
    return kAra2LanePj * spec.topo.lanes * activity + kAra2FixedPj;
  }
  // Interconnect wiring toggles quadratically within one distribution
  // level; a hierarchical machine pays per-group quadratics plus the
  // group-level term instead of one machine-wide quadratic (that locality
  // is the point of the hierarchy).
  const double cpg = spec.topo.clusters;
  const double g = spec.topo.groups;
  const double wire =
      g > 1 ? kWirePj * (cpg * cpg * g + g * g)
            : kWirePj * cpg * cpg;
  return kLanePj * cfg.total_lanes() * activity + wire + kFixedPj;
}

}  // namespace araxl
