// printf-style formatting into std::string. GCC 12 does not ship
// std::format, so benches and the disassembler use these thin wrappers.
#ifndef ARAXL_COMMON_FMT_HPP
#define ARAXL_COMMON_FMT_HPP

#include <string>

namespace araxl {

/// Formats a double with `prec` digits after the decimal point.
std::string fmt_f(double v, int prec = 2);

/// Formats a double as a percentage ("97.3%") with `prec` decimals.
std::string fmt_pct(double frac, int prec = 1);

/// Formats an integer with thousands separators ("12,641").
std::string fmt_group(std::uint64_t v);

/// Formats `v` with an engineering suffix (K/M/G) and `prec` decimals.
std::string fmt_eng(double v, int prec = 2);

/// sprintf-like convenience (bounded, for short strings).
std::string strprintf(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace araxl

#endif  // ARAXL_COMMON_FMT_HPP
