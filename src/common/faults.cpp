#include "common/faults.hpp"

#include <cstdlib>

#include "common/contracts.hpp"
#include "common/fmt.hpp"

namespace araxl {

namespace {

// Distinct site tags so "store.write=0.5,job=0.5" makes independent
// decisions at each site even for the same sequence number / fingerprint.
enum Site : std::uint64_t {
  kSiteStoreOpen = 1,
  kSiteStoreWrite = 2,
  kSiteStoreRename = 3,
  kSiteShortLen = 4,
  kSiteJobTransient = 5,
  kSiteJobPermanent = 6,
  kSiteJobHang = 7,
  kSiteLedgerOpen = 8,
  kSiteLedgerWrite = 9,
  kSiteLedgerShortLen = 10,
  kSiteLeaseClaim = 11,
  kSiteLeaseRenew = 12,
};

/// splitmix64 finalizer — full-avalanche 64-bit mix.
constexpr std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

/// Hash of (seed, site, key-bytes, extra) onto [0, 2^64).
std::uint64_t site_hash(std::uint64_t seed, std::uint64_t site,
                        std::string_view key, std::uint64_t extra) {
  std::uint64_t h = mix(seed + 0x9e3779b97f4a7c15ull * site);
  for (const char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;  // FNV step
  }
  return mix(h ^ mix(extra + site));
}

/// Hash onto the unit interval (53 uniform mantissa bits).
double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

double parse_rate(std::string_view item, std::string_view text) {
  check(!text.empty(), "fault spec item needs a rate: " + std::string(item));
  std::size_t used = 0;
  double rate = 0.0;
  try {
    rate = std::stod(std::string(text), &used);
  } catch (...) {
    fail("fault spec rate is not a number: " + std::string(item));
  }
  check(used == text.size() && rate >= 0.0 && rate <= 1.0,
        "fault spec rate must be in [0, 1]: " + std::string(item));
  return rate;
}

std::uint64_t parse_u64(std::string_view item, std::string_view text) {
  check(!text.empty(), "fault spec item needs a value: " + std::string(item));
  std::uint64_t v = 0;
  for (const char c : text) {
    check(c >= '0' && c <= '9',
          "fault spec value is not an integer: " + std::string(item));
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::string rate_str(double rate) {
  // Round-trippable short spelling for describe(); rates are user-typed
  // decimals, %g keeps them readable.
  return strprintf("%g", rate);
}

}  // namespace

FaultInjector::FaultInjector(std::string_view spec) {
  check(!spec.empty(), "fault spec is empty");
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    check(eq != std::string_view::npos,
          "fault spec item needs '=': " + std::string(item));
    const std::string_view key = item.substr(0, eq);
    std::string_view val = item.substr(eq + 1);
    if (key == "seed") {
      seed_ = parse_u64(item, val);
    } else if (key == "store.open") {
      store_open_rate_ = parse_rate(item, val);
    } else if (key == "store.write") {
      store_write_rate_ = parse_rate(item, val);
    } else if (key == "store.rename") {
      store_rename_rate_ = parse_rate(item, val);
    } else if (key == "ledger.open") {
      ledger_open_rate_ = parse_rate(item, val);
    } else if (key == "ledger.write") {
      ledger_write_rate_ = parse_rate(item, val);
    } else if (key == "lease.claim") {
      lease_claim_rate_ = parse_rate(item, val);
    } else if (key == "lease.renew") {
      lease_renew_rate_ = parse_rate(item, val);
    } else if (key == "job") {
      const std::size_t at = val.find('@');
      if (at != std::string_view::npos) {
        const std::uint64_t attempts = parse_u64(item, val.substr(at + 1));
        check(attempts >= 1 && attempts <= 1000,
              "fault spec 'job=<rate>@<attempts>' needs 1..1000 attempts: " +
                  std::string(item));
        transient_attempts_ = static_cast<unsigned>(attempts);
        val = val.substr(0, at);
      }
      job_transient_rate_ = parse_rate(item, val);
    } else if (key == "job.fail") {
      job_permanent_rate_ = parse_rate(item, val);
    } else if (key == "job.hang") {
      job_hang_rate_ = parse_rate(item, val);
    } else {
      fail("unknown fault spec item '" + std::string(key) +
           "' (seed, store.open, store.write, store.rename, ledger.open, "
           "ledger.write, lease.claim, lease.renew, job, job.fail, "
           "job.hang)");
    }
  }
}

std::unique_ptr<FaultInjector> FaultInjector::from_env() {
  const char* spec = std::getenv("ARAXL_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return nullptr;
  return std::make_unique<FaultInjector>(spec);
}

std::string FaultInjector::describe() const {
  std::string out = "seed=" + std::to_string(seed_);
  if (store_open_rate_ > 0) out += ",store.open=" + rate_str(store_open_rate_);
  if (store_write_rate_ > 0) {
    out += ",store.write=" + rate_str(store_write_rate_);
  }
  if (store_rename_rate_ > 0) {
    out += ",store.rename=" + rate_str(store_rename_rate_);
  }
  if (ledger_open_rate_ > 0) {
    out += ",ledger.open=" + rate_str(ledger_open_rate_);
  }
  if (ledger_write_rate_ > 0) {
    out += ",ledger.write=" + rate_str(ledger_write_rate_);
  }
  if (lease_claim_rate_ > 0) {
    out += ",lease.claim=" + rate_str(lease_claim_rate_);
  }
  if (lease_renew_rate_ > 0) {
    out += ",lease.renew=" + rate_str(lease_renew_rate_);
  }
  if (job_transient_rate_ > 0) {
    out += ",job=" + rate_str(job_transient_rate_);
    if (transient_attempts_ != 1) {
      out += "@" + std::to_string(transient_attempts_);
    }
  }
  if (job_permanent_rate_ > 0) out += ",job.fail=" + rate_str(job_permanent_rate_);
  if (job_hang_rate_ > 0) out += ",job.hang=" + rate_str(job_hang_rate_);
  return out;
}

bool FaultInjector::store_open_fails() {
  if (store_open_rate_ <= 0) return false;
  const std::uint64_t n = open_seq_.fetch_add(1, std::memory_order_relaxed);
  return unit(site_hash(seed_, kSiteStoreOpen, {}, n)) < store_open_rate_;
}

std::optional<std::size_t> FaultInjector::store_short_write(std::size_t len) {
  if (store_write_rate_ <= 0 || len == 0) return std::nullopt;
  const std::uint64_t n = write_seq_.fetch_add(1, std::memory_order_relaxed);
  if (unit(site_hash(seed_, kSiteStoreWrite, {}, n)) >= store_write_rate_) {
    return std::nullopt;
  }
  // Tear somewhere strictly inside the payload so the tail line is torn.
  const std::uint64_t cut = site_hash(seed_, kSiteShortLen, {}, n) % len;
  return static_cast<std::size_t>(cut);
}

bool FaultInjector::store_rename_fails() {
  if (store_rename_rate_ <= 0) return false;
  const std::uint64_t n = rename_seq_.fetch_add(1, std::memory_order_relaxed);
  return unit(site_hash(seed_, kSiteStoreRename, {}, n)) < store_rename_rate_;
}

bool FaultInjector::ledger_open_fails() {
  if (ledger_open_rate_ <= 0) return false;
  const std::uint64_t n =
      ledger_open_seq_.fetch_add(1, std::memory_order_relaxed);
  return unit(site_hash(seed_, kSiteLedgerOpen, {}, n)) < ledger_open_rate_;
}

std::optional<std::size_t> FaultInjector::ledger_short_write(std::size_t len) {
  if (ledger_write_rate_ <= 0 || len == 0) return std::nullopt;
  const std::uint64_t n =
      ledger_write_seq_.fetch_add(1, std::memory_order_relaxed);
  if (unit(site_hash(seed_, kSiteLedgerWrite, {}, n)) >= ledger_write_rate_) {
    return std::nullopt;
  }
  const std::uint64_t cut = site_hash(seed_, kSiteLedgerShortLen, {}, n) % len;
  return static_cast<std::size_t>(cut);
}

bool FaultInjector::lease_claim_fails() {
  if (lease_claim_rate_ <= 0) return false;
  const std::uint64_t n =
      lease_claim_seq_.fetch_add(1, std::memory_order_relaxed);
  return unit(site_hash(seed_, kSiteLeaseClaim, {}, n)) < lease_claim_rate_;
}

bool FaultInjector::lease_renew_fails() {
  if (lease_renew_rate_ <= 0) return false;
  const std::uint64_t n =
      lease_renew_seq_.fetch_add(1, std::memory_order_relaxed);
  return unit(site_hash(seed_, kSiteLeaseRenew, {}, n)) < lease_renew_rate_;
}

FaultInjector::JobFault FaultInjector::job_fault(std::string_view fingerprint,
                                                 unsigned attempt) const {
  if (job_hang_rate_ > 0 &&
      unit(site_hash(seed_, kSiteJobHang, fingerprint, 0)) < job_hang_rate_) {
    return JobFault::kHang;
  }
  if (job_permanent_rate_ > 0 &&
      unit(site_hash(seed_, kSiteJobPermanent, fingerprint, 0)) <
          job_permanent_rate_) {
    return JobFault::kPermanent;
  }
  if (job_transient_rate_ > 0 && attempt <= transient_attempts_ &&
      unit(site_hash(seed_, kSiteJobTransient, fingerprint, 0)) <
          job_transient_rate_) {
    return JobFault::kTransient;
  }
  return JobFault::kNone;
}

}  // namespace araxl
