// Deterministic fault injection — reproducible chaos for the driver stack.
//
// A `FaultInjector` turns a seed-driven spec string into failure decisions
// at well-defined sites: store file I/O (open failure, short write, rename
// failure) and per-fingerprint job faults in the runner (transient and
// permanent injected failures, cooperative hangs). Every decision is a
// pure hash of (seed, site, key), never a real RNG draw:
//
//   * job faults key on the job fingerprint, so the same jobs fail no
//     matter how many workers, shards, or resume runs execute the sweep —
//     a chaos run is exactly replayable, and a transient fault clears at
//     the same attempt number everywhere;
//   * store I/O faults key on a per-site operation sequence number, so a
//     single-threaded run replays exactly and a multi-worker run injects
//     the same fault density.
//
// Spec grammar (`--inject-faults <spec>` / `ARAXL_FAULTS`):
//
//   spec  := item (',' item)*
//   item  := 'seed=' <u64>
//          | 'store.open='   <rate>     open-for-append fails
//          | 'store.write='  <rate>     short write (torn line), then error
//          | 'store.rename=' <rate>     gc compaction rename fails
//          | 'ledger.open='  <rate>     serve-ledger open-for-append fails
//          | 'ledger.write=' <rate>     serve-ledger short write (torn line)
//          | 'lease.claim='  <rate>     worker lease claim/takeover fails
//          | 'lease.renew='  <rate>     worker heartbeat renewal fails
//          | 'job='          <rate> ['@' <attempts>]   transient job fault:
//                                       fails the first <attempts> (default
//                                       1) attempts, then succeeds
//          | 'job.fail='     <rate>     permanent job fault (every attempt)
//          | 'job.hang='     <rate>     cooperative hang until the job's
//                                       deadline or a shutdown request
//   rate  := probability in [0, 1]
//
// Example: "seed=7,store.write=0.2,job=0.3@2" — 20% of store appends tear,
// 30% of jobs fail their first two attempts then succeed.
#ifndef ARAXL_COMMON_FAULTS_HPP
#define ARAXL_COMMON_FAULTS_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace araxl {

class FaultInjector {
 public:
  /// Parses a spec; throws ContractViolation on unknown items, malformed
  /// numbers, or rates outside [0, 1].
  explicit FaultInjector(std::string_view spec);

  /// Injector from the ARAXL_FAULTS environment variable; nullptr when the
  /// variable is unset or empty.
  [[nodiscard]] static std::unique_ptr<FaultInjector> from_env();

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Canonical spec round-trip ("seed=7,job=0.3@2,..."), for logging.
  [[nodiscard]] std::string describe() const;

  // ---- store file-I/O sites (sequence-keyed, thread-safe) -----------------

  /// True when this append's open should fail.
  [[nodiscard]] bool store_open_fails();

  /// For an append of `len` bytes: the number of bytes to actually write
  /// before failing (a torn tail the loader must skip), or nullopt for no
  /// fault. The short length is itself seed-derived and always < len.
  [[nodiscard]] std::optional<std::size_t> store_short_write(std::size_t len);

  /// True when this compaction's rename should fail.
  [[nodiscard]] bool store_rename_fails();

  // ---- serve-layer sites (sequence-keyed, thread-safe) --------------------
  // The job ledger and worker leases are separate chaos targets from the
  // result store: a fleet run routinely injects torn ledger appends and
  // dropped heartbeats while leaving the store clean (or vice versa).

  /// True when this ledger append's open should fail.
  [[nodiscard]] bool ledger_open_fails();

  /// Like store_short_write(), for the serve-layer job ledger.
  [[nodiscard]] std::optional<std::size_t> ledger_short_write(std::size_t len);

  /// True when this lease claim (or expired-lease takeover) should fail —
  /// the worker skips the job and another claimant picks it up.
  [[nodiscard]] bool lease_claim_fails();

  /// True when this heartbeat renewal should be dropped — renewals are
  /// retried at the next pulse, and enough consecutive drops let the lease
  /// expire and the job be re-dispatched mid-flight (the at-least-once
  /// double-execution path).
  [[nodiscard]] bool lease_renew_fails();

  // ---- per-fingerprint job faults (pure, order-independent) ---------------

  enum class JobFault : std::uint8_t { kNone, kTransient, kPermanent, kHang };

  /// Fault decision for one execution attempt (1-based) of the job with
  /// this fingerprint. Purely a function of (seed, fingerprint, attempt):
  /// identical across worker counts, shards, and resume runs. Precedence
  /// when rates overlap: hang > permanent > transient.
  [[nodiscard]] JobFault job_fault(std::string_view fingerprint,
                                   unsigned attempt) const;

  /// Attempts a transient job fault keeps failing (the '@K' spec suffix).
  [[nodiscard]] unsigned transient_attempts() const noexcept {
    return transient_attempts_;
  }

 private:
  std::uint64_t seed_ = 1;
  double store_open_rate_ = 0.0;
  double store_write_rate_ = 0.0;
  double store_rename_rate_ = 0.0;
  double ledger_open_rate_ = 0.0;
  double ledger_write_rate_ = 0.0;
  double lease_claim_rate_ = 0.0;
  double lease_renew_rate_ = 0.0;
  double job_transient_rate_ = 0.0;
  double job_permanent_rate_ = 0.0;
  double job_hang_rate_ = 0.0;
  unsigned transient_attempts_ = 1;

  std::atomic<std::uint64_t> open_seq_{0};
  std::atomic<std::uint64_t> write_seq_{0};
  std::atomic<std::uint64_t> rename_seq_{0};
  std::atomic<std::uint64_t> ledger_open_seq_{0};
  std::atomic<std::uint64_t> ledger_write_seq_{0};
  std::atomic<std::uint64_t> lease_claim_seq_{0};
  std::atomic<std::uint64_t> lease_renew_seq_{0};
};

}  // namespace araxl

#endif  // ARAXL_COMMON_FAULTS_HPP
