// Contract-checking helpers (C++ Core Guidelines I.6 / E.12 style).
//
// `check()` enforces preconditions and invariants that depend on user input
// or configuration and therefore must hold in release builds too; it throws
// `araxl::ContractViolation` with the offending source location so that unit
// tests can assert on misuse.  `debug_check()` compiles away in release
// builds and is reserved for hot-path internal invariants.
#ifndef ARAXL_COMMON_CONTRACTS_HPP
#define ARAXL_COMMON_CONTRACTS_HPP

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace araxl {

/// Exception thrown when a checked contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Throws ContractViolation annotated with the call site.
[[noreturn]] void fail(std::string_view msg,
                       std::source_location loc = std::source_location::current());

/// Enforced in all build types; use for config/user-facing preconditions.
inline void check(bool cond, std::string_view msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);
}

/// Cheap internal invariant; disabled when NDEBUG is defined.
inline void debug_check([[maybe_unused]] bool cond,
                        [[maybe_unused]] std::string_view msg = "internal invariant",
                        [[maybe_unused]] std::source_location loc =
                            std::source_location::current()) {
#ifndef NDEBUG
  if (!cond) fail(msg, loc);
#endif
}

}  // namespace araxl

#endif  // ARAXL_COMMON_CONTRACTS_HPP
