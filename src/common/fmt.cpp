#include "common/fmt.hpp"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace araxl {

std::string fmt_f(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_pct(double frac, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, frac * 100.0);
  return buf;
}

std::string fmt_group(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_eng(double v, int prec) {
  const char* suffix = "";
  double scaled = v;
  if (v >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    scaled = v / 1e3;
    suffix = "K";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%s", prec, scaled, suffix);
  return buf;
}

std::string strprintf(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace araxl
