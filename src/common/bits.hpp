// Small bit-manipulation helpers used across the address/alignment logic of
// the memory system and the VRF byte mapping.
#ifndef ARAXL_COMMON_BITS_HPP
#define ARAXL_COMMON_BITS_HPP

#include <bit>
#include <cstdint>

#include "common/contracts.hpp"

namespace araxl {

/// True iff `x` is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); precondition x > 0.
constexpr unsigned log2_floor(std::uint64_t x) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// ceil(log2(x)); precondition x > 0. log2_ceil(1) == 0.
constexpr unsigned log2_ceil(std::uint64_t x) noexcept {
  return x <= 1 ? 0u : log2_floor(x - 1) + 1u;
}

/// Rounds `x` down to a multiple of power-of-two `align`.
constexpr std::uint64_t align_down(std::uint64_t x, std::uint64_t align) noexcept {
  return x & ~(align - 1);
}

/// Rounds `x` up to a multiple of power-of-two `align`.
constexpr std::uint64_t align_up(std::uint64_t x, std::uint64_t align) noexcept {
  return (x + align - 1) & ~(align - 1);
}

/// Ceiling division for unsigned integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Extracts bits [lo, lo+width) of `x`.
constexpr std::uint64_t bits_of(std::uint64_t x, unsigned lo, unsigned width) noexcept {
  return width >= 64 ? (x >> lo) : ((x >> lo) & ((std::uint64_t{1} << width) - 1));
}

}  // namespace araxl

#endif  // ARAXL_COMMON_BITS_HPP
