#include "common/table.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace araxl {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), right_(header_.size(), false) {
  check(!header_.empty(), "table must have at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  check(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

void TextTable::align_right(std::size_t col) {
  check(col < right_.size(), "column index out of range");
  right_[col] = true;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto emit_rule = [&](std::string& out) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      out += '+';
      out.append(width[c] + 2, '-');
    }
    out += "+\n";
  };
  const auto emit_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = width[c] - cell.size();
      out += "| ";
      if (right_[c]) out.append(pad, ' ');
      out += cell;
      if (!right_[c]) out.append(pad, ' ');
      out += ' ';
    }
    out += "|\n";
  };

  std::string out;
  emit_rule(out);
  emit_row(out, header_);
  emit_rule(out);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule(out);
    } else {
      emit_row(out, row);
    }
  }
  emit_rule(out);
  return out;
}

}  // namespace araxl
