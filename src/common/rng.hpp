// Deterministic xoshiro256** PRNG. Tests and workload generators need
// reproducible pseudo-random data independent of the standard library's
// unspecified distributions, so we carry our own small generator.
#ifndef ARAXL_COMMON_RNG_HPP
#define ARAXL_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace araxl {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_unit() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_unit();
  }

  /// Derives an independent child generator for stream `stream` without
  /// advancing this generator. The child depends only on (parent state,
  /// stream), so parallel workers forking `master.fork(job_index)` get
  /// bit-identical streams regardless of thread count or fork order.
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream) const noexcept {
    // Fold the four state words and the stream index through splitmix64
    // finalizers; distinct streams land in well-separated seed space.
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const std::uint64_t s : state_) h = mix64(h ^ s);
    h = mix64(h ^ mix64(stream + 0x6a09e667f3bcc909ULL));
    return Rng(h);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  static constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace araxl

#endif  // ARAXL_COMMON_RNG_HPP
