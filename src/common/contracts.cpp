#include "common/contracts.hpp"

namespace araxl {

void fail(std::string_view msg, std::source_location loc) {
  std::string what;
  what.reserve(msg.size() + 128);
  what += "contract violation: ";
  what += msg;
  what += " [";
  what += loc.file_name();
  what += ':';
  what += std::to_string(loc.line());
  what += " in ";
  what += loc.function_name();
  what += ']';
  throw ContractViolation(what);
}

}  // namespace araxl
