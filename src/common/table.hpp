// Plain-text table renderer used by every bench binary to print the paper's
// tables and figure series in aligned columns.
#ifndef ARAXL_COMMON_TABLE_HPP
#define ARAXL_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace araxl {

/// Column-aligned text table with optional title and per-column right
/// alignment (numeric columns read better right-aligned).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next row.
  void add_rule();

  /// Marks column `col` as right-aligned.
  void align_right(std::size_t col);

  /// Renders the table, ending with a newline.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row encodes a rule
  std::vector<bool> right_;
};

}  // namespace araxl

#endif  // ARAXL_COMMON_TABLE_HPP
