#include "store/appendio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "store/result_store.hpp"

namespace araxl::store {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Writes all of `data`, looping over partial write(2) returns. Throws on
/// a real I/O error.
void write_all(int fd, const char* data, std::size_t len,
               const std::string& path) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StoreIoError("failed appending to " + path + ": " + errno_text());
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

AppendOutcome append_lines(const std::string& path, std::string_view payload,
                           const AppendFaults& faults, bool fsync_file) {
  AppendOutcome out;
  if (payload.empty()) return out;
  if (faults.open_fails && faults.open_fails()) {
    throw StoreIoError("injected open failure on " + path);
  }
  // O_RDWR, not O_WRONLY: the tail probe below preads the last byte, and
  // pread on a write-only descriptor fails with EBADF. O_APPEND still
  // makes every write land atomically at the (current) end of file.
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    throw StoreIoError("cannot open " + path + " for appending: " +
                       errno_text());
  }
  // A crashed (or fault-injected) writer can leave the file ending in a
  // torn, newline-less tail. Appending straight after it would merge our
  // first record into that garbage line and lose it — heal by starting on
  // a fresh line. (The loaders skip the blank line this may create when
  // two writers both heal.) Probing and appending are separate syscalls,
  // so two healers can race and both prepend a newline; that only yields
  // an extra blank line, which the loaders also skip.
  struct stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    char last = '\n';
    if (::pread(fd, &last, 1, st.st_size - 1) == 1 && last != '\n') {
      out.healed_tail = true;
    }
  }
  std::string buf;
  std::string_view body = payload;
  if (out.healed_tail) {
    buf.reserve(payload.size() + 1);
    buf.push_back('\n');
    buf.append(payload);
    body = buf;
  }
  bool torn = false;
  if (faults.short_write) {
    if (const auto cut = faults.short_write(payload.size())) {
      body = body.substr(0, (out.healed_tail ? 1 : 0) + *cut);
      torn = true;
    }
  }
  try {
    write_all(fd, body.data(), body.size(), path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (fsync_file && ::fsync(fd) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    throw StoreIoError("fsync failed on " + path + ": " + why);
  }
  ::close(fd);
  if (torn) {
    // Callers must retain the payload: a later append re-writes every
    // record as whole lines, and the loaders skip the torn line and dedupe
    // the rest.
    throw StoreIoError("injected short write to " + path);
  }
  out.bytes = payload.size();
  return out;
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);  // best effort: some filesystems refuse directory fsync
  ::close(fd);
}

}  // namespace araxl::store
