// Persistent result store — fingerprint → RunStats + verification +
// provenance, one JSON record per line.
//
// The store is what makes sweeps incremental and resumable: the runner
// consults it before simulating, appends after every finished job, and an
// interrupted or repeated sweep therefore only computes what is missing.
// Durability rules:
//   * the file is append-only in steady state: flush() appends the newly
//     put() records as whole lines, so many processes (shards sharing one
//     store) can interleave without clobbering each other, and a crash
//     mid-append loses at most one torn line — which the loader skips;
//   * compaction (gc) rewrites the whole store to `<path>.tmp` and
//     atomically renames it over `<path>`;
//   * loading is corruption-tolerant: unparseable lines, records whose
//     payload checksum fails, and records whose stored fingerprint does
//     not match one recomputed from their own provenance are skipped and
//     counted, never fatal — the affected jobs are simply recomputed;
//   * a duplicate fingerprint is superseded by the later record
//     (append-only semantics: later means newer).
#ifndef ARAXL_STORE_RESULT_STORE_HPP
#define ARAXL_STORE_RESULT_STORE_HPP

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernels/common.hpp"
#include "sim/stats.hpp"
#include "store/fingerprint.hpp"

namespace araxl {
class FaultInjector;
namespace obs {
class MetricsRegistry;
}
}  // namespace araxl

namespace araxl::store {

/// Store file-I/O failure (open, append, rename — real or injected).
/// Typed distinctly from ContractViolation so callers can degrade: the
/// runner turns a failed put()/flush() into a cache-off-with-warning
/// instead of failing a successfully simulated job, and the CLI maps it
/// to the internal/store exit code (3), not the usage code (2).
class StoreIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One cached job result with full provenance.
struct StoredResult {
  std::string fingerprint;  ///< fingerprint() of the key fields below
  std::string version;      ///< build salt that computed this result
  std::string config;       ///< canonical_config() serialization
  std::string label;        ///< display label (provenance only, not keyed)
  std::string kernel;
  std::uint64_t bytes_per_lane = 0;
  std::uint64_t seed = 0;
  RunStats stats;
  bool verified = false;
  double tolerance = 0.0;
  VerifyResult verify;
};

/// What load() saw on disk.
struct LoadReport {
  std::size_t lines = 0;          ///< non-empty lines in the file
  std::size_t loaded = 0;         ///< live records after dedup
  std::size_t bad_lines = 0;      ///< unparseable / checksum-failed lines
  std::size_t fp_mismatches = 0;  ///< fingerprint != recompute(provenance)
  std::size_t superseded = 0;     ///< older duplicates overwritten
};

/// Thread-safe store over one JSONL file. Opening a missing file yields an
/// empty store; the file is created on first flush().
class ResultStore {
 public:
  explicit ResultStore(std::string path);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const LoadReport& load_report() const { return load_report_; }
  [[nodiscard]] std::size_t size() const;

  /// Copy of the record for `fp`, if present (a copy so callers never hold
  /// references across concurrent put()s).
  [[nodiscard]] std::optional<StoredResult> find(const std::string& fp) const;

  /// Inserts or overwrites the record keyed by `r.fingerprint`.
  void put(StoredResult r);

  /// Appends all records put() since the last flush to the backing file,
  /// one line per record in one write. O(new records), not O(store):
  /// the runner calls it after every completed job, and concurrent
  /// writers sharing the file only ever add lines (an overwrite becomes a
  /// later line that supersedes on load). Throws StoreIoError on I/O
  /// failure; the unflushed records stay pending so a later flush retries
  /// them (a torn partial append is skipped by the loader).
  void flush();

  /// Installs a deterministic fault injector on this store's file I/O
  /// (open / short-write / rename sites); nullptr disables injection. Not
  /// owned; must outlive the store. Test/chaos harness only.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// When enabled, every flush() fsyncs the store file before returning
  /// and gc() fsyncs both the compacted temp file and the directory, so an
  /// acked record survives a power loss (not just a process crash). Off by
  /// default: page-cache durability is enough for the common workflows and
  /// fsync per job is measurably slower (`--fsync` / RunnerOptions opt in).
  void set_fsync(bool on) { fsync_ = on; }

  /// Installs an optional metrics sink (obs/metrics.hpp) counting flush
  /// traffic (store.flushes / store.flush_bytes / store.tail_heals);
  /// nullptr disables. Not owned; must outlive the store.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Drops every record whose version differs from `current_version`
  /// (stale entries can never be served — their fingerprints embed the old
  /// salt — so gc just reclaims the space) and compacts the file in place
  /// via an atomic temp-file + rename. Returns the number removed.
  std::size_t gc(const std::string& current_version);

  /// Snapshot of all live records in insertion order (for `araxl cache`).
  [[nodiscard]] std::vector<StoredResult> entries() const;

  // ---- serialization (exposed for tests) ----------------------------------
  /// One JSONL line (no trailing newline), ending in a `check` field that
  /// hashes the rest of the line.
  [[nodiscard]] static std::string serialize(const StoredResult& r);
  /// Parses and fully validates one line; throws ContractViolation on
  /// syntax, checksum, or fingerprint mismatch (the loader catches and
  /// counts).
  [[nodiscard]] static StoredResult deserialize(std::string_view line);

 private:
  void load();

  std::string path_;
  LoadReport load_report_;

  mutable std::mutex mu_;
  FaultInjector* faults_ = nullptr;                      // not owned
  bool fsync_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;              // not owned
  std::vector<StoredResult> records_;                    // insertion order
  std::unordered_map<std::string, std::size_t> index_;   // fp → records_ slot
  std::string pending_;  // serialized lines not yet appended to disk
};

}  // namespace araxl::store

#endif  // ARAXL_STORE_RESULT_STORE_HPP
