// Build/version fingerprint.
//
// The result store must never serve a result computed by different code:
// every cached entry is salted with this build version, so a new git
// revision (or a bump of the config schema below) silently invalidates the
// whole cache instead of replaying stale numbers.
#ifndef ARAXL_STORE_VERSION_HPP
#define ARAXL_STORE_VERSION_HPP

#include <string>
#include <string_view>

namespace araxl::store {

/// Version of the canonical MachineConfig serialization
/// (store/fingerprint.cpp). Bump whenever a field is added, removed, or
/// reinterpreted — old cache entries then stop matching by construction.
/// v2: Topology gained the hierarchical `groups` level.
inline constexpr unsigned kConfigSchemaVersion = 2;

/// Git revision baked in at configure time (CMake passes ARAXL_GIT_REVISION
/// to this translation unit); "unknown" in builds outside a git checkout.
[[nodiscard]] std::string_view git_revision();

/// The cache salt: "<git revision>+schema<N>". Also what `araxl --version`
/// prints.
[[nodiscard]] std::string build_version();

}  // namespace araxl::store

#endif  // ARAXL_STORE_VERSION_HPP
