#include "store/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/contracts.hpp"
#include "common/fmt.hpp"

namespace araxl::store {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    JsonValue v = value();
    skip_ws();
    check(pos_ == text_.size(), err("trailing characters after JSON value"));
    return v;
  }

 private:
  [[nodiscard]] std::string err(const std::string& what) const {
    return "JSON error at offset " + std::to_string(pos_) + ": " + what;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    check(pos_ < text_.size(), err("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    check(peek() == c, err(std::string("expected '") + c + "'"));
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void literal(std::string_view word) {
    check(text_.substr(pos_, word.size()) == word,
          err("bad literal (expected " + std::string(word) + ")"));
    pos_ += word.size();
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.text = string();
        return v;
      }
      case 't': {
        literal("true");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        literal("false");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        return v;
      }
      case 'n': {
        literal("null");
        return JsonValue{};
      }
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    for (;;) {
      std::string key = string();
      expect(':');
      v.fields.emplace_back(std::move(key), value());
      if (consume('}')) return v;
      expect(',');
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    for (;;) {
      v.items.push_back(value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      check(pos_ < text_.size(), err("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      check(pos_ < text_.size(), err("unterminated escape"));
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), err("truncated \\u escape"));
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            check(std::isxdigit(static_cast<unsigned char>(h)) != 0,
                  err("bad \\u escape"));
            code = code * 16 +
                   static_cast<unsigned>(h <= '9' ? h - '0'
                                                  : (h | 0x20) - 'a' + 10);
          }
          // The store only writes control characters this way; emit other
          // code points as UTF-8 so round trips stay lossless.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(err("unknown escape"));
      }
    }
  }

  JsonValue number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    check(pos_ > start, err("expected a value"));
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = std::string(text_.substr(start, pos_ - start));
    // Validate the spelling now so corrupt digits fail at parse time.
    (void)v.as_double();
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t JsonValue::as_u64() const {
  check(kind == Kind::kNumber, "JSON value is not a number");
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  check(ec == std::errc() && ptr == text.data() + text.size(),
        "JSON number is not an unsigned integer: '" + text + "'");
  return v;
}

double JsonValue::as_double() const {
  check(kind == Kind::kNumber, "JSON value is not a number");
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  check(end == text.c_str() + text.size() && !text.empty(),
        "bad JSON number: '" + text + "'");
  return v;
}

const std::string& JsonValue::as_string() const {
  check(kind == Kind::kString, "JSON value is not a string");
  return text;
}

bool JsonValue::as_bool() const {
  check(kind == Kind::kBool, "JSON value is not a bool");
  return boolean;
}

JsonValue parse_json(std::string_view text) { return Parser(text).document(); }

std::string json_u64(std::uint64_t v) {
  return strprintf("%llu", static_cast<unsigned long long>(v));
}

std::string json_double(double v) { return strprintf("%.17g", v); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace araxl::store
