// Minimal JSON reader for the result store and report merger.
//
// The store's JSONL records and the driver's reports are machine-written
// flat documents, but the loader must survive hand edits, truncation, and
// interleaved garbage — so this is a full (if small) recursive-descent
// parser rather than a regex scan. Numbers keep their raw source text:
// RunStats counters are 64-bit and must round-trip exactly, which a
// double-typed value cannot guarantee past 2^53.
#ifndef ARAXL_STORE_JSON_HPP
#define ARAXL_STORE_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace araxl::store {

/// One parsed JSON value. Numbers are kept as raw text and converted on
/// access so integer counters survive unscathed.
struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< string payload, or raw number spelling
  std::vector<JsonValue> items;                           ///< array elements
  std::vector<std::pair<std::string, JsonValue>> fields;  ///< object members

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;

  // Typed accessors; throw ContractViolation on kind/format mismatch.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;
};

/// Parses one complete JSON document (no trailing junk allowed); throws
/// ContractViolation with a position on any syntax error.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Escapes `s` for embedding in a JSON string literal (quotes, backslash,
/// control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

// Canonical number spellings, shared by the driver's reporters and the
// store's records. The warm-replay/merge byte-identity contract depends
// on a single definition: a replayed RunStats must serialize exactly as
// the simulated one did.
/// Decimal unsigned integer.
[[nodiscard]] std::string json_u64(std::uint64_t v);
/// %.17g — deterministic for a given double, exact on re-parse.
[[nodiscard]] std::string json_double(double v);

}  // namespace araxl::store

#endif  // ARAXL_STORE_JSON_HPP
