#include "store/merge.hpp"

#include <algorithm>
#include <cstdint>
#include <map>

#include "common/contracts.hpp"
#include "store/json.hpp"

namespace araxl::store {

namespace {

constexpr std::string_view kJsonHead = "{\"results\":[\n";
constexpr std::string_view kJsonTail = "]}\n";

/// Splits `text` into its '\n'-terminated lines (the final line may be
/// unterminated).
std::vector<std::string_view> lines_of(std::string_view text) {
  std::vector<std::string_view> lines;
  while (!text.empty()) {
    const std::size_t nl = text.find('\n');
    lines.push_back(text.substr(0, nl));
    if (nl == std::string_view::npos) break;
    text.remove_prefix(nl + 1);
  }
  return lines;
}

/// Validates index coverage 0..n-1 and rejects duplicates.
template <typename Map>
void check_contiguous(const Map& by_index) {
  std::uint64_t expect = 0;
  for (const auto& [index, text] : by_index) {
    check(index == expect,
          "merge inputs are missing job index " + std::to_string(expect) +
              " — a shard report is absent or incomplete");
    ++expect;
  }
}

}  // namespace

std::string merge_json_reports(const std::vector<std::string>& docs) {
  check(!docs.empty(), "merge needs at least one report");
  // Record text keyed by job index; std::map gives the sorted order back.
  std::map<std::uint64_t, std::string> by_index;
  for (const std::string& doc : docs) {
    check(doc.size() >= kJsonHead.size() + kJsonTail.size() &&
              doc.compare(0, kJsonHead.size(), kJsonHead) == 0 &&
              doc.compare(doc.size() - kJsonTail.size(), kJsonTail.size(),
                          kJsonTail) == 0,
          "input is not a driver JSON report ({\"results\":[...]})");
    const std::string_view body(doc.data() + kJsonHead.size(),
                                doc.size() - kJsonHead.size() - kJsonTail.size());
    for (std::string_view line : lines_of(body)) {
      if (line.empty()) continue;
      // to_json writes one record per line, comma-separated; strip the
      // separator but keep the record text itself byte-for-byte.
      if (line.back() == ',') line.remove_suffix(1);
      const JsonValue rec = parse_json(line);
      const JsonValue* index = rec.get("index");
      check(index != nullptr, "report record has no job index");
      const auto [it, inserted] =
          by_index.emplace(index->as_u64(), std::string(line));
      check(inserted || it->second == line,
            "conflicting records for job index " + index->text +
                " (same sweep sharded twice with different results?)");
    }
  }
  check_contiguous(by_index);

  std::string out(kJsonHead);
  std::size_t emitted = 0;
  for (const auto& [index, text] : by_index) {
    out += text;
    if (++emitted != by_index.size()) out += ",";
    out += "\n";
  }
  out += kJsonTail;
  return out;
}

std::string merge_csv_reports(const std::vector<std::string>& docs) {
  check(!docs.empty(), "merge needs at least one report");
  std::string header;
  std::map<std::uint64_t, std::string> by_index;
  for (const std::string& doc : docs) {
    const std::vector<std::string_view> lines = lines_of(doc);
    check(!lines.empty() && !lines[0].empty(),
          "input is not a driver CSV report (missing header)");
    if (header.empty()) {
      header = std::string(lines[0]);
    } else {
      check(header == lines[0], "CSV reports have mismatched headers");
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const std::string_view row = lines[i];
      if (row.empty()) continue;
      const std::size_t comma = row.find(',');
      check(comma != std::string_view::npos, "malformed CSV row");
      std::uint64_t index = 0;
      for (const char c : row.substr(0, comma)) {
        check(c >= '0' && c <= '9', "CSV row does not start with a job index");
        index = index * 10 + static_cast<std::uint64_t>(c - '0');
      }
      const auto [it, inserted] = by_index.emplace(index, std::string(row));
      check(inserted || it->second == row,
            "conflicting CSV rows for job index " + std::to_string(index));
    }
  }
  check_contiguous(by_index);

  std::string out = header + "\n";
  for (const auto& [index, row] : by_index) {
    out += row;
    out += "\n";
  }
  return out;
}

}  // namespace araxl::store
