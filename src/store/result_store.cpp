#include "store/result_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/faults.hpp"
#include "common/fmt.hpp"
#include "obs/metrics.hpp"
#include "store/appendio.hpp"
#include "store/json.hpp"

namespace araxl::store {

namespace {

// One shared definition with the reporters (store/json.hpp): the
// byte-identity contract allows no drift between the two serializers.
std::string fnum(double v) { return json_double(v); }
std::string unum(std::uint64_t v) { return json_u64(v); }

constexpr std::string_view kCheckMarker = ",\"check\":\"";

std::uint64_t field_u64(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.get(key);
  check(v != nullptr, "store record is missing field '" + std::string(key) + "'");
  return v->as_u64();
}

double field_double(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.get(key);
  check(v != nullptr, "store record is missing field '" + std::string(key) + "'");
  return v->as_double();
}

std::string field_string(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.get(key);
  check(v != nullptr, "store record is missing field '" + std::string(key) + "'");
  return v->as_string();
}

// Tolerant accessor for fields added after the seed schema: records written
// by older builds simply lack them, and 0 is the correct reading (no schema
// bump — the fingerprint already embeds the build version for keying).
std::uint64_t field_u64_or(const JsonValue& obj, std::string_view key,
                           std::uint64_t dflt) {
  const JsonValue* v = obj.get(key);
  return v == nullptr ? dflt : v->as_u64();
}

}  // namespace

std::string ResultStore::serialize(const StoredResult& r) {
  std::string out = "{";
  out += "\"fp\":\"" + json_escape(r.fingerprint) + "\",";
  out += "\"version\":\"" + json_escape(r.version) + "\",";
  out += "\"config\":\"" + json_escape(r.config) + "\",";
  out += "\"label\":\"" + json_escape(r.label) + "\",";
  out += "\"kernel\":\"" + json_escape(r.kernel) + "\",";
  out += "\"bpl\":" + unum(r.bytes_per_lane) + ",";
  out += "\"seed\":" + unum(r.seed) + ",";
  out += "\"stats\":{";
  out += "\"cycles\":" + unum(r.stats.cycles) + ",";
  out += "\"total_lanes\":" + unum(r.stats.total_lanes) + ",";
  out += "\"vinstrs\":" + unum(r.stats.vinstrs) + ",";
  out += "\"scalar_ops\":" + unum(r.stats.scalar_ops) + ",";
  out += "\"flops\":" + unum(r.stats.flops) + ",";
  out += "\"fpu_result_elems\":" + unum(r.stats.fpu_result_elems) + ",";
  out += "\"mem_read_bytes\":" + unum(r.stats.mem_read_bytes) + ",";
  out += "\"mem_write_bytes\":" + unum(r.stats.mem_write_bytes) + ",";
  out += "\"issue_stall_cycles\":" + unum(r.stats.issue_stall_cycles) + ",";
  out += "\"scalar_wait_cycles\":" + unum(r.stats.scalar_wait_cycles) + ",";
  out += "\"unit_busy_elems\":[";
  for (std::size_t u = 0; u < kNumUnits; ++u) {
    if (u != 0) out += ",";
    out += unum(r.stats.unit_busy_elems[u]);
  }
  out += "],";
  // Provenance fields (excluded from RunStats::operator== and zeroed in
  // default reports, but persisted so `araxl stats` can roll up batching
  // telemetry from a finished sweep without re-simulating).
  out += "\"wakeups_total\":" + unum(r.stats.wakeups_total) + ",";
  out += "\"batched_iterations\":" + unum(r.stats.batched_iterations) + ",";
  out += "\"batch_rejects\":[";
  for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
    if (i != 0) out += ",";
    out += unum(r.stats.batch_rejects[i]);
  }
  out += "],";
  out += "\"batch_clamps\":" + unum(r.stats.batch_clamps) + ",";
  out += "\"warmup_projected\":" + unum(r.stats.warmup_projected) + ",";
  // Stall taxonomy (indexed by StallReason): the real attribution is
  // persisted so `araxl report` / `araxl stats` can break down a sweep
  // from the store even though default reports zero these fields.
  out += "\"stall_cycles\":[";
  for (std::size_t i = 0; i < kNumStallReasons; ++i) {
    if (i != 0) out += ",";
    out += unum(r.stats.stall_cycles[i]);
  }
  out += "],";
  out += "\"fpu_busy_slots\":" + unum(r.stats.fpu_busy_slots);
  out += "},";
  out += std::string("\"verified\":") + (r.verified ? "true" : "false") + ",";
  out += "\"tolerance\":" + fnum(r.tolerance) + ",";
  out += "\"checked\":" + unum(r.verify.checked) + ",";
  out += "\"max_rel_err\":" + fnum(r.verify.max_rel_err);
  out += "}";
  // Payload checksum over the exact line text: flipped bits anywhere in
  // the record (including the stats) invalidate it.
  const std::string check = strprintf(
      "%016llx", static_cast<unsigned long long>(hash64(out)));
  out.insert(out.size() - 1, std::string(kCheckMarker) + check + "\"");
  return out;
}

StoredResult ResultStore::deserialize(std::string_view line) {
  // Verify the checksum against the literal text first: the checked
  // content is the line with the trailing `,"check":"..."` spliced out.
  const std::size_t marker = line.rfind(kCheckMarker);
  check(marker != std::string_view::npos, "store record has no checksum");
  std::string body(line.substr(0, marker));
  body += "}";
  const JsonValue doc = parse_json(line);
  const std::string& stored_check = field_string(doc, "check");
  const std::string computed = strprintf(
      "%016llx", static_cast<unsigned long long>(hash64(body)));
  check(stored_check == computed, "store record checksum mismatch");

  StoredResult r;
  r.fingerprint = field_string(doc, "fp");
  r.version = field_string(doc, "version");
  r.config = field_string(doc, "config");
  r.label = field_string(doc, "label");
  r.kernel = field_string(doc, "kernel");
  r.bytes_per_lane = field_u64(doc, "bpl");
  r.seed = field_u64(doc, "seed");

  const JsonValue* stats = doc.get("stats");
  check(stats != nullptr, "store record is missing stats");
  r.stats.cycles = field_u64(*stats, "cycles");
  r.stats.total_lanes = field_u64(*stats, "total_lanes");
  r.stats.vinstrs = field_u64(*stats, "vinstrs");
  r.stats.scalar_ops = field_u64(*stats, "scalar_ops");
  r.stats.flops = field_u64(*stats, "flops");
  r.stats.fpu_result_elems = field_u64(*stats, "fpu_result_elems");
  r.stats.mem_read_bytes = field_u64(*stats, "mem_read_bytes");
  r.stats.mem_write_bytes = field_u64(*stats, "mem_write_bytes");
  r.stats.issue_stall_cycles = field_u64(*stats, "issue_stall_cycles");
  r.stats.scalar_wait_cycles = field_u64(*stats, "scalar_wait_cycles");
  const JsonValue* busy = stats->get("unit_busy_elems");
  check(busy != nullptr && busy->kind == JsonValue::Kind::kArray &&
            busy->items.size() == kNumUnits,
        "store record has a malformed unit_busy_elems array");
  for (std::size_t u = 0; u < kNumUnits; ++u) {
    r.stats.unit_busy_elems[u] = busy->items[u].as_u64();
  }
  r.stats.wakeups_total = field_u64_or(*stats, "wakeups_total", 0);
  r.stats.batched_iterations = field_u64_or(*stats, "batched_iterations", 0);
  if (const JsonValue* rej = stats->get("batch_rejects")) {
    check(rej->kind == JsonValue::Kind::kArray &&
              rej->items.size() == kNumBatchRejects,
          "store record has a malformed batch_rejects array");
    for (std::size_t i = 0; i < kNumBatchRejects; ++i) {
      r.stats.batch_rejects[i] = rej->items[i].as_u64();
    }
  }
  // Pre-clamp/projection records simply lack these; zero is the correct
  // reading (those engines never clamped at a barrier or projected warmup).
  r.stats.batch_clamps = field_u64_or(*stats, "batch_clamps", 0);
  r.stats.warmup_projected = field_u64_or(*stats, "warmup_projected", 0);
  // Pre-attribution records simply lack these; zero is the correct reading.
  if (const JsonValue* st = stats->get("stall_cycles")) {
    check(st->kind == JsonValue::Kind::kArray &&
              st->items.size() == kNumStallReasons,
          "store record has a malformed stall_cycles array");
    for (std::size_t i = 0; i < kNumStallReasons; ++i) {
      r.stats.stall_cycles[i] = st->items[i].as_u64();
    }
  }
  r.stats.fpu_busy_slots = field_u64_or(*stats, "fpu_busy_slots", 0);

  const JsonValue* verified = doc.get("verified");
  check(verified != nullptr, "store record is missing 'verified'");
  r.verified = verified->as_bool();
  r.tolerance = field_double(doc, "tolerance");
  r.verify.checked = field_u64(doc, "checked");
  r.verify.max_rel_err = field_double(doc, "max_rel_err");

  // Finally, the stored fingerprint must match one recomputed from the
  // record's own provenance — a tampered key field (or a record written
  // under a different fingerprint scheme) is recomputed, never served.
  const std::string expect = fingerprint(
      JobKey{r.config, r.kernel, r.bytes_per_lane, r.seed, r.version});
  check(r.fingerprint == expect, "store record provenance fingerprint mismatch");
  return r;
}

ResultStore::ResultStore(std::string path) : path_(std::move(path)) { load(); }

void ResultStore::load() {
  std::ifstream f(path_, std::ios::binary);
  if (!f.good()) return;  // missing store: start empty, create on flush
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    ++load_report_.lines;
    StoredResult r;
    try {
      r = deserialize(line);
    } catch (const ContractViolation& e) {
      if (std::string_view(e.what()).find("provenance fingerprint") !=
          std::string_view::npos) {
        ++load_report_.fp_mismatches;
      } else {
        ++load_report_.bad_lines;
      }
      continue;
    }
    const auto [it, inserted] = index_.try_emplace(r.fingerprint, records_.size());
    if (inserted) {
      records_.push_back(std::move(r));
    } else {
      records_[it->second] = std::move(r);  // later line supersedes
      ++load_report_.superseded;
    }
  }
  load_report_.loaded = records_.size();
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::optional<StoredResult> ResultStore::find(const std::string& fp) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(fp);
  if (it == index_.end()) return std::nullopt;
  return records_[it->second];
}

void ResultStore::put(StoredResult r) {
  check(!r.fingerprint.empty(), "stored result needs a fingerprint");
  const std::lock_guard<std::mutex> lock(mu_);
  // Serialize now: an overwrite simply appends a later line, which
  // supersedes the earlier one on the next load.
  pending_ += serialize(r);
  pending_ += '\n';
  const auto [it, inserted] = index_.try_emplace(r.fingerprint, records_.size());
  if (inserted) {
    records_.push_back(std::move(r));
  } else {
    records_[it->second] = std::move(r);
  }
}

void ResultStore::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (pending_.empty()) return;
  // One append-mode write per flush (torn-tail healing, fault injection,
  // and optional fsync live in append_lines, shared with the serve-layer
  // job ledger): concurrent writers interleave at line granularity
  // (O_APPEND), and a torn line from a crash is skipped by the
  // corruption-tolerant loader. On failure pending_ is retained: a later
  // flush re-appends every record as whole lines, and the loader skips
  // the torn line and dedups the rest.
  AppendFaults faults;
  if (faults_ != nullptr) {
    faults.open_fails = [this] { return faults_->store_open_fails(); };
    faults.short_write = [this](std::size_t len) {
      return faults_->store_short_write(len);
    };
  }
  const AppendOutcome out = append_lines(path_, pending_, faults, fsync_);
  if (metrics_ != nullptr) {
    metrics_->counter("store.flushes")->inc();
    metrics_->counter("store.flush_bytes")->add(out.bytes);
    if (out.healed_tail) metrics_->counter("store.tail_heals")->inc();
  }
  pending_.clear();
}

std::size_t ResultStore::gc(const std::string& current_version) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<StoredResult> kept;
  kept.reserve(records_.size());
  for (StoredResult& r : records_) {
    if (r.version == current_version) kept.push_back(std::move(r));
  }
  const std::size_t removed = records_.size() - kept.size();
  records_ = std::move(kept);
  index_.clear();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    index_.emplace(records_[i].fingerprint, i);
  }
  // Compact: atomic temp-file + rename of the full surviving snapshot
  // (this is the one mutation that must not be an append).
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.good()) {
      throw StoreIoError("cannot open store temp file for writing: " + tmp);
    }
    for (const StoredResult& r : records_) {
      const std::string line = serialize(r);
      f.write(line.data(), static_cast<std::streamsize>(line.size()));
      f.put('\n');
    }
    f.flush();
    if (!f.good()) {
      throw StoreIoError("failed writing store temp file: " + tmp);
    }
  }
  if (fsync_) {
    // The rename below only atomically replaces *names*; without syncing
    // the temp file's data first, a power loss can leave the new name
    // pointing at a truncated file.
    const int fd = ::open(tmp.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
  }
  if (faults_ != nullptr && faults_->store_rename_fails()) {
    std::remove(tmp.c_str());  // a failed rename leaves the original intact
    throw StoreIoError("injected rename failure on store temp file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw StoreIoError("cannot rename store temp file over " + path_);
  }
  if (fsync_) fsync_parent_dir(path_);  // make the rename itself durable
  pending_.clear();
  return removed;
}

std::vector<StoredResult> ResultStore::entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

}  // namespace araxl::store
