// Shard-report merging.
//
// `araxl sweep --shard i/N` runs a deterministic slice of the expanded job
// list and emits a partial report whose records keep their *global* job
// indices. These functions combine any complete set of such partial
// reports back into one document that is byte-identical to the report of
// the unsharded run: record text is preserved verbatim (never re-parsed
// and re-serialized, so float formatting cannot drift) and only reordered
// by job index inside the standard framing.
#ifndef ARAXL_STORE_MERGE_HPP
#define ARAXL_STORE_MERGE_HPP

#include <string>
#include <vector>

namespace araxl::store {

/// Merges driver JSON reports ({"results":[...]} as written by
/// driver::to_json). Throws ContractViolation on malformed framing,
/// duplicate job indices, or gaps (an incomplete shard set cannot
/// reproduce the unsharded report).
[[nodiscard]] std::string merge_json_reports(
    const std::vector<std::string>& docs);

/// Merges driver CSV reports (header + one row per job). All inputs must
/// share the same header; same duplicate/gap rules as the JSON merge.
[[nodiscard]] std::string merge_csv_reports(
    const std::vector<std::string>& docs);

}  // namespace araxl::store

#endif  // ARAXL_STORE_MERGE_HPP
