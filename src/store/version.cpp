#include "store/version.hpp"

// cmake/gitrev.cmake regenerates this header on every build (touching it
// only when the revision or dirty-diff hash changes), so one translation
// unit recompiles when — and only when — the fingerprint moves. Builds
// outside CMake (or outside a git checkout) fall back to "unknown".
#if defined(__has_include)
#if __has_include("araxl_git_revision.h")
#include "araxl_git_revision.h"
#endif
#endif
#ifndef ARAXL_GIT_REVISION
#define ARAXL_GIT_REVISION "unknown"
#endif

namespace araxl::store {

std::string_view git_revision() { return ARAXL_GIT_REVISION; }

std::string build_version() {
  return std::string(git_revision()) + "+schema" +
         std::to_string(kConfigSchemaVersion);
}

}  // namespace araxl::store
