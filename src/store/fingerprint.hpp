// Canonical job fingerprints — the result store's cache key.
//
// A job is identified by *what it computes*: the machine configuration,
// the kernel, the weak-scaling point, the input seed, and the build
// version that produced the simulator. The configuration is serialized
// canonically (fixed field order, derived values instead of raw
// spellings), so semantically identical configs — an explicit VLEN equal
// to the paper's rule, the event-driven engine vs its bit-identical
// cycle-stepped oracle, different CLI labels — hash to the same key.
#ifndef ARAXL_STORE_FINGERPRINT_HPP
#define ARAXL_STORE_FINGERPRINT_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "machine/config.hpp"

namespace araxl::store {

/// Canonical, versioned serialization of every MachineConfig field that
/// can influence simulation results. Stable across labels and across
/// spellings of the same semantics: `vlen_bits` is folded to
/// `effective_vlen()`, and `timing_mode` is omitted because the two
/// engines are bit-identical by contract (enforced by EngineEquivalence*).
[[nodiscard]] std::string canonical_config(const MachineConfig& cfg);

/// Everything that identifies one unit of simulation work.
struct JobKey {
  std::string config;  ///< canonical_config() of the machine
  std::string kernel;
  std::uint64_t bytes_per_lane = 0;
  std::uint64_t seed = 0;
  std::string version;  ///< build salt (store::build_version())
};

/// 64-bit FNV-1a with a tweakable basis (exposed for the store's record
/// checksums).
[[nodiscard]] std::uint64_t hash64(std::string_view data,
                                   std::uint64_t basis_tweak = 0);

/// Stable 128-bit fingerprint of a JobKey as 32 lowercase hex characters.
[[nodiscard]] std::string fingerprint(const JobKey& key);

}  // namespace araxl::store

#endif  // ARAXL_STORE_FINGERPRINT_HPP
