// Shared append-only JSONL file discipline.
//
// The result store (store/result_store.cpp) and the serve layer's job
// ledger (serve/ledger.cpp) persist the same way: whole checksummed lines
// appended to one file that many processes may share. This helper owns the
// mechanics both need so the durability rules have a single definition:
//   * torn-tail healing — a crashed (or fault-injected) writer can leave
//     the file ending in a newline-less fragment; appending straight after
//     it would merge the next record into that garbage line, so an append
//     that finds a torn tail starts with a fresh newline;
//   * one O_APPEND write per batch — concurrent writers interleave at line
//     granularity and a crash mid-write loses at most one torn line, which
//     the corruption-tolerant loaders skip;
//   * optional fsync-on-append — without it an acked record can sit in the
//     page cache across a power loss; with it the append is durable before
//     the call returns (and directory fsync makes a freshly created file's
//     name durable too).
#ifndef ARAXL_STORE_APPENDIO_HPP
#define ARAXL_STORE_APPENDIO_HPP

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace araxl::store {

/// Injectable failure decisions for one append site. Each JSONL file class
/// keys its own FaultInjector sites (store.open/store.write vs
/// ledger.open/ledger.write) so chaos specs can target them independently.
struct AppendFaults {
  /// True when this append's open should fail.
  std::function<bool()> open_fails;
  /// Bytes to actually write before failing (a torn tail), or nullopt.
  std::function<std::optional<std::size_t>(std::size_t len)> short_write;
};

/// What one append did (for metrics).
struct AppendOutcome {
  std::size_t bytes = 0;    ///< payload bytes written
  bool healed_tail = false; ///< a torn tail was terminated first
};

/// Appends `payload` (one or more whole '\n'-terminated lines) to `path`,
/// healing a torn tail, honouring injected faults, and optionally
/// fsync()ing the file before returning. Throws StoreIoError (declared in
/// store/result_store.hpp) on open/write/sync failure — injected or real.
/// On a short (torn) write the payload must be retried in full later; the
/// loaders skip the torn line and dedupe re-appended records.
AppendOutcome append_lines(const std::string& path, std::string_view payload,
                           const AppendFaults& faults, bool fsync_file);

/// fsync()s the directory containing `path`, making a rename or file
/// creation in it durable. Errors are swallowed: directory fsync is a
/// best-effort hardening step and some filesystems refuse it.
void fsync_parent_dir(const std::string& path);

}  // namespace araxl::store

#endif  // ARAXL_STORE_APPENDIO_HPP
