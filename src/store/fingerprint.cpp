#include "store/fingerprint.hpp"

#include "common/fmt.hpp"
#include "store/version.hpp"

namespace araxl::store {

std::string canonical_config(const MachineConfig& cfg) {
  // Fixed order, fixed spellings, `;`-separated `key=value`. Every field
  // of MachineConfig that can change simulation results must appear here;
  // adding one requires bumping kConfigSchemaVersion (store/version.hpp).
  std::string out = "cfg-v" + std::to_string(kConfigSchemaVersion) + ";";
  out += "kind=";
  out += cfg.kind == MachineKind::kAraXL ? "araxl" : "ara2";
  const auto field = [&out](const char* key, std::uint64_t v) {
    out += ";";
    out += key;
    out += "=";
    out += std::to_string(v);
  };
  field("clusters", cfg.topo.clusters);
  field("lanes", cfg.topo.lanes);
  field("groups", cfg.topo.groups);
  // Derived value, not the raw spelling: vlen_bits=0 and an explicit VLEN
  // equal to the configuration rule are the same machine.
  field("vlen", cfg.effective_vlen());
  field("mem", cfg.mem_size_bytes);
  field("reqi", cfg.reqi_regs);
  field("glsu", cfg.glsu_regs);
  field("ring", cfg.ring_regs);
  field("fpu_lat", cfg.fpu_latency);
  field("alu_lat", cfg.alu_latency);
  field("sldu_lat", cfg.sldu_latency);
  field("load_lag", cfg.load_chain_lag);
  field("div", cfg.div_cycles_per_elem);
  field("start", cfg.unit_start_latency);
  field("uq", cfg.unit_queue_depth);
  field("sq", cfg.seq_queue_depth);
  field("dcache", cfg.dcache_load_latency);
  field("l2", cfg.l2_latency);
  field("red_step", cfg.red_step_latency);
  field("red_add", cfg.red_add_latency);
  field("wb", cfg.writeback_latency);
  // timing_mode deliberately omitted: kEventDriven and kCycleStepped are
  // bit-identical by contract, so either engine's result serves both.
  return out;
}

std::uint64_t hash64(std::string_view data, std::uint64_t basis_tweak) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ basis_tweak;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string fingerprint(const JobKey& key) {
  // One flat serialization; '\x1f' separators keep fields from bleeding
  // into each other (a kernel name cannot alias part of a config string).
  std::string flat = key.config;
  flat += '\x1f';
  flat += key.kernel;
  flat += '\x1f';
  flat += std::to_string(key.bytes_per_lane);
  flat += '\x1f';
  flat += std::to_string(key.seed);
  flat += '\x1f';
  flat += key.version;
  // Two independently-seeded 64-bit FNV passes give a 128-bit key; at the
  // sweep scales this repo runs (thousands of jobs) collisions are
  // negligible, and the store additionally verifies provenance on load.
  const std::uint64_t lo = hash64(flat, 0);
  const std::uint64_t hi = hash64(flat, 0x9e3779b97f4a7c15ULL);
  return strprintf("%016llx%016llx", static_cast<unsigned long long>(hi),
                   static_cast<unsigned long long>(lo));
}

}  // namespace araxl::store
