// axpy — y[i] += a*x[i] (extension kernel, not in Table I).
//
// The canonical steady-state streaming loop: every strip-mine iteration
// issues the same vsetvli/vle/vle/vfmacc/vse signature against addresses
// advancing by one arithmetic progression, which makes it the reference
// workload for the event-driven engine's loop batching (and the registry
// twin of the hand-built AXPY program in bench/sim_speed.cpp, so sweeps
// and `araxl stats` can diagnose the same shape the bench measures).
// Like the STREAM triad it is read-bandwidth bound: 16 bytes read per
// 2 DP-FLOP caps throughput at LC DP-FLOP/cycle.
#include <cmath>

#include "common/contracts.hpp"
#include "kernels/common.hpp"

namespace araxl {
namespace {

class AxpyKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "axpy"; }
  [[nodiscard]] double max_perf_factor() const override { return 1.0; }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul4; }

  Program build(Machine& m, std::uint64_t bytes_per_lane) override {
    const MachineConfig& cfg = m.config();
    n_ = elems_for_bytes_per_lane(cfg, bytes_per_lane);
    x_ = random_doubles(n_, -1.0, 1.0, input_seed(0x75));
    y_ = random_doubles(n_, -1.0, 1.0, input_seed(0x76));

    MemLayout layout;
    x_addr_ = layout.alloc(n_ * 8);
    y_addr_ = layout.alloc(n_ * 8);
    m.mem().store_doubles(x_addr_, x_);
    m.mem().store_doubles(y_addr_, y_);

    // Same shape as the bench's build_axpy: a fixed register pair per
    // iteration (no double-buffering) keeps the op signature periodic.
    ProgramBuilder pb(cfg.effective_vlen(), "axpy");
    std::uint64_t done = 0;
    while (done < n_) {
      const std::uint64_t vl = pb.vsetvli(n_ - done, Sew::k64, kLmul4);
      pb.vle(8, x_addr_ + done * 8);
      pb.vle(16, y_addr_ + done * 8);
      pb.vfmacc_vf(16, kA, 8);  // y += a*x in place
      pb.vse(16, y_addr_ + done * 8);
      done += vl;
    }
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override { return 2ull * n_; }

  [[nodiscard]] VerifyResult verify(const Machine& m) const override {
    std::vector<double> expected(n_);
    for (std::uint64_t i = 0; i < n_; ++i) {
      expected[i] = std::fma(kA, x_[i], y_[i]);
    }
    return compare_doubles(expected, m.mem().load_doubles(y_addr_, n_));
  }

  [[nodiscard]] double tolerance() const override { return 0.0; }

 private:
  static constexpr double kA = 1.5;
  std::uint64_t n_ = 0;
  std::vector<double> x_;
  std::vector<double> y_;
  std::uint64_t x_addr_ = 0;
  std::uint64_t y_addr_ = 0;
};

}  // namespace

std::unique_ptr<Kernel> make_axpy() { return std::make_unique<AxpyKernel>(); }

}  // namespace araxl
