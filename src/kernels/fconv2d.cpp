// fconv2d — 2D convolution of a 256xN input with a 7x7 filter (Table I).
//
// Follows the Ara fconv2d structure: vectors run along the N columns. For
// each output row, the seven input rows stream through the lanes once; six
// chained vfslide1down's per input row produce the shifted views for the
// seven filter columns, each consumed by a vfmacc.vf. The slide fill values
// (column VL, VL+1, ... of the strip) are injected as scalars, exactly like
// the reference kernel forwards the next strip's head elements.
// Per output row: 49 FMA slots vs 42 slide slots and 7 loads, so the FPU is
// the bottleneck => up to 2 LC DP-FLOP/cycle (97% utilization in the paper).
#include <cmath>

#include "common/contracts.hpp"
#include "kernels/common.hpp"

namespace araxl {
namespace {

constexpr unsigned kRows = 256;  // output rows
constexpr unsigned kF = 7;       // filter size

class Fconv2dKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "fconv2d"; }
  [[nodiscard]] double max_perf_factor() const override { return 2.0; }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul2; }

  Program build(Machine& m, std::uint64_t bytes_per_lane) override {
    const MachineConfig& cfg = m.config();
    n_ = elems_for_bytes_per_lane(cfg, bytes_per_lane);
    in_cols_ = n_ + kF - 1;  // column halo for the valid convolution

    in_ = random_doubles((kRows + kF - 1) * in_cols_, -1.0, 1.0, input_seed(0xC0));
    f_ = random_doubles(kF * kF, -0.5, 0.5, input_seed(0xF1));

    MemLayout layout;
    in_addr_ = layout.alloc(in_.size() * 8);
    out_addr_ = layout.alloc(std::uint64_t{kRows} * n_ * 8);
    m.mem().store_doubles(in_addr_, in_);

    ProgramBuilder pb(cfg.effective_vlen(), "fconv2d");
    // Register map (LMUL=2 groups): row buffers v4/v6 alternate, slide
    // buffers v8..v18 rotate (6 deep to stay clear of in-flight readers),
    // accumulator v24.
    const unsigned rowbuf[2] = {4, 6};
    const unsigned slidebuf[6] = {8, 10, 12, 14, 16, 18};
    const unsigned acc = 24;

    std::uint64_t col = 0;
    while (col < n_) {
      const std::uint64_t vl = pb.vsetvli(n_ - col, Sew::k64, kLmul2);
      for (unsigned r = 0; r < kRows; ++r) {
        pb.vfmv_v_f(acc, 0.0);
        unsigned slide_rot = 0;
        for (unsigned dr = 0; dr < kF; ++dr) {
          const unsigned row = rowbuf[dr % 2];
          const std::uint64_t row_base =
              in_addr_ + (std::uint64_t{r + dr} * in_cols_ + col) * 8;
          pb.vle(row, row_base);
          pb.vfmacc_vf(acc, f_[dr * kF + 0], row);
          unsigned cur = row;
          for (unsigned dc = 1; dc < kF; ++dc) {
            const unsigned nxt = slidebuf[slide_rot++ % 6];
            // Fill value: the element just past the strip, column
            // col + vl - 1 + dc of input row r+dr.
            const double fill =
                in_[(std::uint64_t{r + dr} * in_cols_) + col + vl - 1 + dc];
            pb.vfslide1down(nxt, cur, fill);
            pb.vfmacc_vf(acc, f_[dr * kF + dc], nxt);
            cur = nxt;
          }
          pb.scalar_load();   // filter/input pointer reload
          pb.scalar_cycles(1);
        }
        pb.vse(acc, out_addr_ + (std::uint64_t{r} * n_ + col) * 8);
        pb.scalar_cycles(2);
      }
      col += vl;
    }
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override {
    return 2ull * kF * kF * kRows * n_;
  }

  [[nodiscard]] VerifyResult verify(const Machine& m) const override {
    std::vector<double> expected(std::uint64_t{kRows} * n_);
    for (unsigned r = 0; r < kRows; ++r) {
      for (std::uint64_t c = 0; c < n_; ++c) {
        double acc = 0.0;
        for (unsigned dr = 0; dr < kF; ++dr) {
          for (unsigned dc = 0; dc < kF; ++dc) {
            acc = std::fma(in_[(std::uint64_t{r + dr} * in_cols_) + c + dc],
                           f_[dr * kF + dc], acc);
          }
        }
        expected[std::uint64_t{r} * n_ + c] = acc;
      }
    }
    return compare_doubles(expected,
                           m.mem().load_doubles(out_addr_, std::uint64_t{kRows} * n_));
  }

  [[nodiscard]] double tolerance() const override { return 0.0; }  // same dataflow

 private:
  std::uint64_t n_ = 0;
  std::uint64_t in_cols_ = 0;
  std::vector<double> in_;
  std::vector<double> f_;
  std::uint64_t in_addr_ = 0;
  std::uint64_t out_addr_ = 0;
};

}  // namespace

std::unique_ptr<Kernel> make_fconv2d() { return std::make_unique<Fconv2dKernel>(); }

}  // namespace araxl
