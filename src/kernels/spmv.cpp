// spmv — sparse matrix-vector product y = A*x, CSR format (extension
// kernel, not in the paper's Table I).
//
// The paper motivates long vectors with sparse workloads (SpMV/HPCG on
// long-vector architectures, refs [5]-[8]); this kernel exercises exactly
// the paths those workloads hit: indexed gathers through the GLSU's
// element-granular path ("supported, albeit at lower throughput") and one
// reduction per row. Rows are strip-mined over LMUL=4 groups.
#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "kernels/common.hpp"

namespace araxl {
namespace {

constexpr unsigned kRowsPerLaneByte = 4;  // rows scale mildly with machine size

class SpmvKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "spmv"; }
  [[nodiscard]] double max_perf_factor() const override {
    // Indexed gathers move one element per cluster per cycle: the gather,
    // not the FPU, bounds throughput.
    return 0.25;
  }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul4; }

  Program build(Machine& m, std::uint64_t bytes_per_lane) override {
    const MachineConfig& cfg = m.config();
    cols_ = elems_for_bytes_per_lane(cfg, bytes_per_lane);
    rows_ = kRowsPerLaneByte * cfg.topo.total_clusters() * 8;
    const std::uint64_t avg_nnz = std::max<std::uint64_t>(8, cols_ / 16);

    // Random CSR structure (sorted unique columns per row).
    Rng rng(input_seed(0x5B));
    row_ptr_.assign(rows_ + 1, 0);
    cols_idx_.clear();
    vals_.clear();
    for (std::uint64_t r = 0; r < rows_; ++r) {
      const std::uint64_t nnz = 1 + rng.next_below(2 * avg_nnz);
      std::uint64_t col = rng.next_below(std::max<std::uint64_t>(1, cols_ / 4));
      for (std::uint64_t k = 0; k < nnz && col < cols_; ++k) {
        cols_idx_.push_back(col);
        vals_.push_back(rng.next_double(-1.0, 1.0));
        col += 1 + rng.next_below(std::max<std::uint64_t>(1, 3 * cols_ / nnz / 4));
      }
      row_ptr_[r + 1] = cols_idx_.size();
    }
    x_ = random_doubles(cols_, -1.0, 1.0, input_seed(0x5C));

    MemLayout layout;
    vals_addr_ = layout.alloc(vals_.size() * 8);
    // Column indices are stored pre-scaled to byte offsets, as a vectorized
    // CSR kernel would keep them for vluxei.
    idx_addr_ = layout.alloc(cols_idx_.size() * 8);
    x_addr_ = layout.alloc(cols_ * 8);
    y_addr_ = layout.alloc(rows_ * 8);
    m.mem().store_doubles(vals_addr_, vals_);
    for (std::size_t k = 0; k < cols_idx_.size(); ++k) {
      m.mem().store<std::uint64_t>(idx_addr_ + k * 8, cols_idx_[k] * 8);
    }
    m.mem().store_doubles(x_addr_, x_);

    ProgramBuilder pb(cfg.effective_vlen(), "spmv");
    for (std::uint64_t r = 0; r < rows_; ++r) {
      std::uint64_t k = row_ptr_[r];
      const std::uint64_t kend = row_ptr_[r + 1];
      pb.vsetvli(1, Sew::k64, kLmul4);
      // Hack-free accumulate: seed the row sum register with 0.
      pb.vfmv_s_f(28, 0.0);
      while (k < kend) {
        const std::uint64_t vl = pb.vsetvli(kend - k, Sew::k64, kLmul4);
        pb.vle(4, vals_addr_ + k * 8);     // values
        pb.vle(8, idx_addr_ + k * 8);      // byte offsets into x
        pb.vluxei(12, x_addr_, 8);         // gather x[cols]
        pb.vfmul_vv(16, 4, 12);
        pb.vfredusum(28, 16, 28);
        pb.scalar_cycles(2);
        k += vl;
      }
      // Store the scalar row result through a vl=1 vector store.
      pb.vsetvli(1, Sew::k64, kLmul4);
      pb.vse(28, y_addr_ + r * 8);
      pb.scalar_cycles(3);
    }
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override {
    return 2ull * vals_.size();
  }

  [[nodiscard]] VerifyResult verify(const Machine& m) const override {
    std::vector<double> expected(rows_);
    for (std::uint64_t r = 0; r < rows_; ++r) {
      double acc = 0.0;
      for (std::uint64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        acc += vals_[k] * x_[cols_idx_[k]];
      }
      expected[r] = acc;
    }
    return compare_doubles(expected, m.mem().load_doubles(y_addr_, rows_));
  }

  [[nodiscard]] double tolerance() const override { return 1e-10; }

 private:
  std::uint64_t rows_ = 0;
  std::uint64_t cols_ = 0;
  std::vector<std::uint64_t> row_ptr_;
  std::vector<std::uint64_t> cols_idx_;
  std::vector<double> vals_;
  std::vector<double> x_;
  std::uint64_t vals_addr_ = 0;
  std::uint64_t idx_addr_ = 0;
  std::uint64_t x_addr_ = 0;
  std::uint64_t y_addr_ = 0;
};

}  // namespace

std::unique_ptr<Kernel> make_spmv() { return std::make_unique<SpmvKernel>(); }

}  // namespace araxl
