// fdotproduct — dot = sum(A[i]*B[i]) over N elements (Table I, LMUL=8).
//
// Strip-mined vfmacc.vv accumulation into an LMUL=8 register group, with a
// single vfredusum at the end (at 16384 B/lane and 64 lanes this is exactly
// the paper's "strip-mined over 16 loop iterations" case). Memory-bound:
// two 8-byte read streams against 8 bytes/lane/cycle of read bandwidth cap
// the kernel at ~1 element per lane per 2 cycles, i.e. LC DP-FLOP/cycle.
#include <cmath>

#include "common/contracts.hpp"
#include "kernels/common.hpp"

namespace araxl {
namespace {

class FdotproductKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "fdotproduct"; }
  [[nodiscard]] double max_perf_factor() const override { return 1.0; }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul8; }

  Program build(Machine& m, std::uint64_t bytes_per_lane) override {
    const MachineConfig& cfg = m.config();
    n_ = elems_for_bytes_per_lane(cfg, bytes_per_lane);

    a_ = random_doubles(n_, -1.0, 1.0, input_seed(0xD0));
    b_ = random_doubles(n_, -1.0, 1.0, input_seed(0xD1));

    MemLayout layout;
    a_addr_ = layout.alloc(n_ * 8);
    b_addr_ = layout.alloc(n_ * 8);
    res_addr_ = layout.alloc(8);
    m.mem().store_doubles(a_addr_, a_);
    m.mem().store_doubles(b_addr_, b_);

    ProgramBuilder pb(cfg.effective_vlen(), "fdotproduct");
    // LMUL=8 register groups: a -> v0, b -> v8, accumulator -> v16; v24
    // holds the reduction seed/result (single registers v24/v25).
    const std::uint64_t first_vl = pb.vsetvli(n_, Sew::k64, kLmul8);
    acc_elems_ = first_vl;
    pb.vfmv_v_f(16, 0.0);   // zero the accumulator group
    pb.vfmv_s_f(24, 0.0);   // reduction seed

    std::uint64_t done = 0;
    while (done < n_) {
      const std::uint64_t vl = pb.vsetvli(n_ - done, Sew::k64, kLmul8);
      pb.vle(0, a_addr_ + done * 8);
      pb.vle(8, b_addr_ + done * 8);
      pb.vfmacc_vv(16, 0, 8);
      pb.scalar_cycles(2);  // pointer bumps + branch
      done += vl;
    }
    pb.vsetvli(acc_elems_, Sew::k64, kLmul8);
    pb.vfredusum(25, 16, 24);
    pb.vfmv_f_s(25);
    pb.scalar_store();  // fsd of the scalar result
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override { return 2ull * n_; }

  [[nodiscard]] VerifyResult verify(const Machine& m) const override {
    // Reference: accumulate per lane-strip position exactly like the
    // machine (vfmacc into position i%VL, then an ordered sweep) would be
    // overkill — a compensated scalar sum with a relative tolerance is the
    // honest check for an unordered reduction.
    double expected = 0.0;
    for (std::uint64_t i = 0; i < n_; ++i) expected = std::fma(a_[i], b_[i], expected);
    VerifyResult r;
    r.checked = 1;
    const double actual = m.scalar_acc();
    r.max_rel_err =
        std::abs(expected - actual) / std::max(std::abs(expected), 1.0);
    return r;
  }

  [[nodiscard]] double tolerance() const override { return 1e-10; }

 private:
  std::uint64_t n_ = 0;
  std::uint64_t acc_elems_ = 0;
  std::vector<double> a_;
  std::vector<double> b_;
  std::uint64_t a_addr_ = 0;
  std::uint64_t b_addr_ = 0;
  std::uint64_t res_addr_ = 0;
};

}  // namespace

std::unique_ptr<Kernel> make_fdotproduct() {
  return std::make_unique<FdotproductKernel>();
}

}  // namespace araxl
