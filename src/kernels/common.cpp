#include "kernels/common.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace araxl {

std::unique_ptr<Kernel> make_fmatmul();
std::unique_ptr<Kernel> make_fconv2d();
std::unique_ptr<Kernel> make_jacobi2d();
std::unique_ptr<Kernel> make_fdotproduct();
std::unique_ptr<Kernel> make_fexp();
std::unique_ptr<Kernel> make_fsoftmax();
std::unique_ptr<Kernel> make_spmv();
std::unique_ptr<Kernel> make_stream_triad();
std::unique_ptr<Kernel> make_axpy();

std::vector<std::unique_ptr<Kernel>> make_all_kernels() {
  std::vector<std::unique_ptr<Kernel>> out;
  out.push_back(make_fmatmul());
  out.push_back(make_fconv2d());
  out.push_back(make_jacobi2d());
  out.push_back(make_fdotproduct());
  out.push_back(make_fexp());
  out.push_back(make_fsoftmax());
  return out;
}

std::vector<std::unique_ptr<Kernel>> make_extension_kernels() {
  std::vector<std::unique_ptr<Kernel>> out;
  out.push_back(make_spmv());
  out.push_back(make_stream_triad());
  out.push_back(make_axpy());
  return out;
}

std::unique_ptr<Kernel> make_kernel(std::string_view name) {
  if (name == "fmatmul") return make_fmatmul();
  if (name == "fconv2d") return make_fconv2d();
  if (name == "jacobi2d") return make_jacobi2d();
  if (name == "fdotproduct") return make_fdotproduct();
  if (name == "exp") return make_fexp();
  if (name == "softmax") return make_fsoftmax();
  if (name == "spmv") return make_spmv();
  if (name == "stream_triad") return make_stream_triad();
  if (name == "axpy") return make_axpy();
  fail("unknown kernel name");
}

std::uint64_t elems_for_bytes_per_lane(const MachineConfig& cfg,
                                       std::uint64_t bytes_per_lane) {
  check(bytes_per_lane % 8 == 0, "bytes per lane must be a multiple of 8");
  return bytes_per_lane * cfg.total_lanes() / 8;
}

std::vector<double> random_doubles(std::uint64_t n, double lo, double hi,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.next_double(lo, hi);
  return out;
}

VerifyResult compare_doubles(const std::vector<double>& expected,
                             const std::vector<double>& actual) {
  check(expected.size() == actual.size(), "size mismatch in verification");
  VerifyResult r;
  r.checked = expected.size();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const double denom = std::max(std::abs(expected[i]), 1.0);
    r.max_rel_err = std::max(r.max_rel_err,
                             std::abs(expected[i] - actual[i]) / denom);
  }
  return r;
}

std::uint64_t MemLayout::alloc(std::uint64_t bytes) {
  const std::uint64_t base = align_up(cursor_, align_);
  cursor_ = base + bytes;
  return base;
}

std::uint64_t MemLayout::alloc_misaligned(std::uint64_t bytes, std::uint64_t skew) {
  return alloc(bytes + skew) + skew;
}

}  // namespace araxl
