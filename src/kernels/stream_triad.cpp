// stream_triad — a[i] = b[i] + s*c[i] (extension kernel, not in Table I).
//
// The STREAM triad is pure streaming: 16 bytes read + 8 bytes written per
// element against 2 DP-FLOP. With AraXL's 8 B/lane/cycle read channel the
// read streams bound throughput at half an element per lane per cycle,
// i.e. LC DP-FLOP/cycle — a bandwidth-utilization probe for the GLSU.
#include <cmath>

#include "common/contracts.hpp"
#include "kernels/common.hpp"

namespace araxl {
namespace {

class StreamTriadKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "stream_triad"; }
  [[nodiscard]] double max_perf_factor() const override { return 1.0; }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul8; }

  Program build(Machine& m, std::uint64_t bytes_per_lane) override {
    const MachineConfig& cfg = m.config();
    n_ = elems_for_bytes_per_lane(cfg, bytes_per_lane);
    b_ = random_doubles(n_, -1.0, 1.0, input_seed(0x71));
    c_ = random_doubles(n_, -1.0, 1.0, input_seed(0x72));

    MemLayout layout;
    a_addr_ = layout.alloc(n_ * 8);
    b_addr_ = layout.alloc(n_ * 8);
    c_addr_ = layout.alloc(n_ * 8);
    m.mem().store_doubles(b_addr_, b_);
    m.mem().store_doubles(c_addr_, c_);

    ProgramBuilder pb(cfg.effective_vlen(), "stream_triad");
    std::uint64_t done = 0;
    unsigned flip = 0;
    while (done < n_) {
      const std::uint64_t vl = pb.vsetvli(n_ - done, Sew::k64, kLmul8);
      // Double-buffer between the two LMUL=8 group pairs (v0/v8, v16/v24).
      const unsigned bb = flip % 2 == 0 ? 0 : 16;
      const unsigned cc = flip % 2 == 0 ? 8 : 24;
      ++flip;
      pb.vle(bb, b_addr_ + done * 8);
      pb.vle(cc, c_addr_ + done * 8);
      pb.vfmacc_vf(bb, kScale, cc);  // b += s*c in place
      pb.vse(bb, a_addr_ + done * 8);
      pb.scalar_cycles(2);
      done += vl;
    }
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override { return 2ull * n_; }

  [[nodiscard]] VerifyResult verify(const Machine& m) const override {
    std::vector<double> expected(n_);
    for (std::uint64_t i = 0; i < n_; ++i) {
      expected[i] = std::fma(kScale, c_[i], b_[i]);
    }
    return compare_doubles(expected, m.mem().load_doubles(a_addr_, n_));
  }

  [[nodiscard]] double tolerance() const override { return 0.0; }

 private:
  static constexpr double kScale = 3.0;
  std::uint64_t n_ = 0;
  std::vector<double> b_;
  std::vector<double> c_;
  std::uint64_t a_addr_ = 0;
  std::uint64_t b_addr_ = 0;
  std::uint64_t c_addr_ = 0;
};

}  // namespace

std::unique_ptr<Kernel> make_stream_triad() {
  return std::make_unique<StreamTriadKernel>();
}

}  // namespace araxl
