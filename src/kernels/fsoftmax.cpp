// softmax — row-wise softmax of a 64xN matrix (Table I, LMUL=1).
//
// Per row, the numerically stable three-pass formulation:
//   1. m = max(row)                    (strip-mined vfredmax chain)
//   2. e = exp(row - m), s = sum(e)    (exp core + vfredusum chain;
//                                       e spilled to a scratch buffer)
//   3. out = e * (1/s)                 (the reciprocal is computed on the
//                                       vector divider with vl=1, then
//                                       broadcast through the scalar path)
// The two reductions per strip are what make softmax the paper's most
// reduction-sensitive kernel (7.3x scaling at 64 lanes instead of 8x).
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "kernels/common.hpp"
#include "kernels/exp_core.hpp"

namespace araxl {
namespace {

constexpr unsigned kRows = 64;

class FsoftmaxKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "softmax"; }
  [[nodiscard]] double max_perf_factor() const override {
    // exp core + subtract + two reduction passes + final scale.
    return static_cast<double>(kExpFlops + 4) / (kExpFpuSlots + 4);
  }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul1; }

  Program build(Machine& m, std::uint64_t bytes_per_lane) override {
    const MachineConfig& cfg = m.config();
    n_ = elems_for_bytes_per_lane(cfg, bytes_per_lane);
    x_ = random_doubles(std::uint64_t{kRows} * n_, -8.0, 8.0, input_seed(0x50));

    MemLayout layout;
    x_addr_ = layout.alloc(x_.size() * 8);
    y_addr_ = layout.alloc(x_.size() * 8);
    scratch_addr_ = layout.alloc(n_ * 8);
    m.mem().store_doubles(x_addr_, x_);

    ProgramBuilder pb(cfg.effective_vlen(), "softmax");
    ExpRegs regs;
    regs.x = 6;  // exp input is the shifted row (v6), loaded rows use v4/v5

    for (unsigned row = 0; row < kRows; ++row) {
      const std::uint64_t row_base = x_addr_ + std::uint64_t{row} * n_ * 8;
      const std::uint64_t out_base = y_addr_ + std::uint64_t{row} * n_ * 8;

      // Pass 1: running max across strips (seed v30, result v30).
      pb.vsetvli(n_, Sew::k64, kLmul1);
      pb.vfmv_s_f(30, -std::numeric_limits<double>::infinity());
      std::uint64_t done = 0;
      unsigned flip = 0;
      while (done < n_) {
        const std::uint64_t vl = pb.vsetvli(n_ - done, Sew::k64, kLmul1);
        const unsigned xv = 4 + (flip++ % 2);
        pb.vle(xv, row_base + done * 8);
        pb.vfredmax(30, xv, 30);
        pb.scalar_cycles(2);
        done += vl;
      }
      pb.vfmv_f_s(30);  // scalar accumulator := row max

      // Pass 2: e = exp(x - max) to scratch, s = running sum (seed v31).
      pb.vsetvli(n_, Sew::k64, kLmul1);
      pb.vfmv_s_f(31, 0.0);
      done = 0;
      while (done < n_) {
        const std::uint64_t vl = pb.vsetvli(n_ - done, Sew::k64, kLmul1);
        const unsigned xv = 4 + (flip++ % 2);
        pb.vle(xv, row_base + done * 8);
        pb.vfsub_vf_acc(regs.x, xv);  // x - max (scalar from accumulator)
        emit_exp_core(pb, regs);
        pb.vse(regs.out, scratch_addr_ + done * 8);
        pb.vfredusum(31, regs.out, 31);
        pb.scalar_cycles(2);
        done += vl;
      }
      pb.vfmv_f_s(31);  // scalar accumulator := sum

      // Reciprocal on the vector divider with vl=1: v28 = 1.0 / sum.
      pb.vsetvli(1, Sew::k64, kLmul1);
      pb.vfmv_s_f(28, 1.0);
      pb.vfdiv_vv(28, 28, 31);
      pb.vfmv_f_s(28);  // scalar accumulator := 1/sum

      // Pass 3: normalize from scratch.
      done = 0;
      while (done < n_) {
        const std::uint64_t vl = pb.vsetvli(n_ - done, Sew::k64, kLmul1);
        const unsigned ev = 4 + (flip++ % 2);
        pb.vle(ev, scratch_addr_ + done * 8);
        pb.vfmul_vf_acc(8, ev);
        pb.vse(8, out_base + done * 8);
        pb.scalar_cycles(2);
        done += vl;
      }
      pb.scalar_cycles(3);  // row loop bookkeeping
    }
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override {
    return std::uint64_t{kExpFlops + 4} * kRows * n_;
  }

  [[nodiscard]] VerifyResult verify(const Machine& m) const override {
    std::vector<double> expected(x_.size());
    for (unsigned r = 0; r < kRows; ++r) {
      const double* row = x_.data() + std::uint64_t{r} * n_;
      double mx = -std::numeric_limits<double>::infinity();
      for (std::uint64_t c = 0; c < n_; ++c) mx = std::max(mx, row[c]);
      double sum = 0.0;
      for (std::uint64_t c = 0; c < n_; ++c) sum += std::exp(row[c] - mx);
      for (std::uint64_t c = 0; c < n_; ++c) {
        expected[std::uint64_t{r} * n_ + c] = std::exp(row[c] - mx) / sum;
      }
    }
    return compare_doubles(expected, m.mem().load_doubles(y_addr_, x_.size()));
  }

  [[nodiscard]] double tolerance() const override { return 1e-10; }

 private:
  std::uint64_t n_ = 0;
  std::vector<double> x_;
  std::uint64_t x_addr_ = 0;
  std::uint64_t y_addr_ = 0;
  std::uint64_t scratch_addr_ = 0;
};

}  // namespace

std::unique_ptr<Kernel> make_fsoftmax() { return std::make_unique<FsoftmaxKernel>(); }

}  // namespace araxl
