// fmatmul — C[64xN] = A[64x256] * B[256xN] (paper Table I).
//
// The structure follows the Ara matmul kernel: vectors run along the N
// columns of B/C; rows of C are blocked so a block of accumulator register
// groups stays resident while the k-loop streams rows of B through a
// double-buffered register pair; each vfmacc.vf takes its scalar from A via
// a scalar d-cache load. Peak: one FMA per lane per cycle = 2 LC DP-FLOP.
#include <cmath>

#include "common/contracts.hpp"
#include "kernels/common.hpp"

namespace araxl {
namespace {

constexpr unsigned kM = 64;   // rows of A / C
constexpr unsigned kK = 256;  // columns of A = rows of B

class FmatmulKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "fmatmul"; }
  [[nodiscard]] double max_perf_factor() const override { return 2.0; }

  [[nodiscard]] Lmul lmul(std::uint64_t bytes_per_lane) const override {
    if (bytes_per_lane <= 128) return kLmul1;
    if (bytes_per_lane <= 256) return kLmul2;
    return kLmul4;
  }

  Program build(Machine& m, std::uint64_t bytes_per_lane) override {
    const MachineConfig& cfg = m.config();
    n_ = elems_for_bytes_per_lane(cfg, bytes_per_lane);
    const Lmul ml = lmul(bytes_per_lane);
    const unsigned g = ml.group_regs();
    const unsigned rb = g >= 4 ? 4 : 8;  // row block sized to the register budget

    a_ = random_doubles(kM * kK, -1.0, 1.0, input_seed(0xA));
    b_ = random_doubles(kK * n_, -1.0, 1.0, input_seed(0xB));

    MemLayout layout;
    a_addr_ = layout.alloc(a_.size() * 8);
    b_addr_ = layout.alloc(b_.size() * 8);
    c_addr_ = layout.alloc(kM * n_ * 8);
    m.mem().store_doubles(a_addr_, a_);
    m.mem().store_doubles(b_addr_, b_);

    ProgramBuilder pb(cfg.effective_vlen(), "fmatmul");
    const unsigned acc0 = 16;         // accumulators: v16 .. v16+rb*g
    const unsigned bbuf[2] = {8, 8 + g};

    std::uint64_t col = 0;
    while (col < n_) {
      const std::uint64_t vl = pb.vsetvli(n_ - col, Sew::k64, ml);
      for (unsigned i0 = 0; i0 < kM; i0 += rb) {
        for (unsigned i = 0; i < rb; ++i) pb.vfmv_v_f(acc0 + i * g, 0.0);
        for (unsigned k = 0; k < kK; ++k) {
          const unsigned bb = bbuf[k % 2];
          pb.vle(bb, b_addr_ + (std::uint64_t{k} * n_ + col) * 8);
          for (unsigned i = 0; i < rb; ++i) {
            pb.scalar_load();     // fld of A[i0+i][k]
            pb.scalar_cycles(1);  // row-pointer bump (CVA6 is single-issue)
            pb.vfmacc_vf(acc0 + i * g, a_[(i0 + i) * kK + k], bb);
          }
          pb.scalar_cycles(1);  // pointer bump + branch
        }
        for (unsigned i = 0; i < rb; ++i) {
          pb.vse(acc0 + i * g, c_addr_ + ((i0 + i) * n_ + col) * 8);
        }
        pb.scalar_cycles(2);
      }
      col += vl;
    }
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override {
    return 2ull * kM * kK * n_;
  }

  [[nodiscard]] VerifyResult verify(const Machine& m) const override {
    std::vector<double> expected(kM * n_);
    for (unsigned i = 0; i < kM; ++i) {
      for (std::uint64_t j = 0; j < n_; ++j) {
        double acc = 0.0;
        for (unsigned k = 0; k < kK; ++k) {
          acc = std::fma(a_[i * kK + k], b_[std::uint64_t{k} * n_ + j], acc);
        }
        expected[i * n_ + j] = acc;
      }
    }
    return compare_doubles(expected, m.mem().load_doubles(c_addr_, kM * n_));
  }

  [[nodiscard]] double tolerance() const override { return 0.0; }  // same dataflow

 private:
  std::uint64_t n_ = 0;
  std::vector<double> a_;
  std::vector<double> b_;
  std::uint64_t a_addr_ = 0;
  std::uint64_t b_addr_ = 0;
  std::uint64_t c_addr_ = 0;
};

}  // namespace

std::unique_ptr<Kernel> make_fmatmul() { return std::make_unique<FmatmulKernel>(); }

}  // namespace araxl
