// Benchmark kernel framework (paper Table I).
//
// Each kernel knows how to (a) size its problem for a weak-scaling point —
// the paper's "B/lane" metric: bytes of vector data each lane processes per
// register, so N = bytes_per_lane x total_lanes / 8 for DP elements — (b)
// generate its input data and vector program for a given machine, and (c)
// verify the machine's results against a scalar golden reference.
#ifndef ARAXL_KERNELS_COMMON_HPP
#define ARAXL_KERNELS_COMMON_HPP

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "machine/machine.hpp"

namespace araxl {

/// Result of verifying a kernel run.
struct VerifyResult {
  double max_rel_err = 0.0;
  std::uint64_t checked = 0;

  [[nodiscard]] bool ok(double tol) const { return max_rel_err <= tol; }
};

/// Interface of one Table-I benchmark kernel.
class Kernel {
 public:
  virtual ~Kernel() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Paper Table I "Max Perf" in DP-FLOP/cycle per total lane (2.0 for
  /// fmatmul/fconv2d, 1.0 for jacobi2d/fdotproduct, ...).
  [[nodiscard]] virtual double max_perf_factor() const = 0;

  /// LMUL the kernel uses at a given weak-scaling point (Table I).
  [[nodiscard]] virtual Lmul lmul(std::uint64_t bytes_per_lane) const = 0;

  /// Generates inputs into `m.mem()` and returns the vector program for the
  /// weak-scaling point `bytes_per_lane`. May be called repeatedly with
  /// different machines/sizes; state for verify() refers to the last build.
  virtual Program build(Machine& m, std::uint64_t bytes_per_lane) = 0;

  /// Useful DP-FLOP of the last built problem (the paper's accounting).
  [[nodiscard]] virtual std::uint64_t useful_flops() const = 0;

  /// Compares machine results (in memory) against the scalar reference.
  [[nodiscard]] virtual VerifyResult verify(const Machine& m) const = 0;

  /// Verification tolerance (relative); exact-dataflow kernels use 0.
  [[nodiscard]] virtual double tolerance() const { return 1e-12; }

  /// Re-seeds input generation for the next build(). Base 0 (the default)
  /// keeps each kernel's legacy fixed inputs; the parallel driver gives
  /// every job its own base so no two jobs share an input stream.
  void seed_inputs(std::uint64_t base) noexcept { seed_base_ = base; }

 protected:
  /// Seed for one input buffer. `tag` is the kernel's legacy per-buffer
  /// constant; under a non-zero base each (base, tag) pair forks its own
  /// independent stream.
  [[nodiscard]] std::uint64_t input_seed(std::uint64_t tag) const noexcept {
    return seed_base_ == 0 ? tag : Rng(seed_base_).fork(tag).next_u64();
  }

 private:
  std::uint64_t seed_base_ = 0;
};

/// All six Table-I kernels in paper order.
std::vector<std::unique_ptr<Kernel>> make_all_kernels();

/// Extension kernels beyond the paper's benchmark set: "spmv" (CSR sparse
/// matrix-vector product over the indexed-access path), "stream_triad"
/// (bandwidth probe), and "axpy" (the steady-state loop-batching
/// reference workload).
std::vector<std::unique_ptr<Kernel>> make_extension_kernels();

/// Factory by name ("fmatmul", "fconv2d", "jacobi2d", "fdotproduct",
/// "exp", "softmax", "spmv", "stream_triad", "axpy"); throws on unknown
/// names.
std::unique_ptr<Kernel> make_kernel(std::string_view name);

// ---- shared helpers ---------------------------------------------------------

/// DP elements per vector for a weak-scaling point: N = B/lane x lanes / 8.
std::uint64_t elems_for_bytes_per_lane(const MachineConfig& cfg,
                                       std::uint64_t bytes_per_lane);

/// Deterministic input data in [lo, hi).
std::vector<double> random_doubles(std::uint64_t n, double lo, double hi,
                                   std::uint64_t seed);

/// Max relative error between two spans (absolute error for tiny values).
VerifyResult compare_doubles(const std::vector<double>& expected,
                             const std::vector<double>& actual);

/// Simple bump allocator for laying out kernel buffers in main memory.
class MemLayout {
 public:
  explicit MemLayout(std::uint64_t base = 1u << 20, std::uint64_t align = 4096)
      : cursor_(base), align_(align) {}

  /// Reserves `bytes` and returns the base address.
  std::uint64_t alloc(std::uint64_t bytes);

  /// Reserves `bytes` and deliberately misaligns the base by `skew` bytes
  /// (for misalignment tests).
  std::uint64_t alloc_misaligned(std::uint64_t bytes, std::uint64_t skew);

 private:
  std::uint64_t cursor_;
  std::uint64_t align_;
};

}  // namespace araxl

#endif  // ARAXL_KERNELS_COMMON_HPP
