// exp — elementwise exponential over N elements (Table I, LMUL=1).
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "kernels/common.hpp"
#include "kernels/exp_core.hpp"

namespace araxl {

namespace {

constexpr double kLog2E = 1.4426950408889634074;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kOverflowX = 709.782712893384;
constexpr double kUnderflowX = -745.133219101941;

// Taylor coefficients 1/k! for k = 0..11.
constexpr double kCoeff[12] = {
    1.0,
    1.0,
    1.0 / 2,
    1.0 / 6,
    1.0 / 24,
    1.0 / 120,
    1.0 / 720,
    1.0 / 5040,
    1.0 / 40320,
    1.0 / 362880,
    1.0 / 3628800,
    1.0 / 39916800,
};

}  // namespace

void emit_exp_core(ProgramBuilder& pb, const ExpRegs& regs) {
  check(pb.vtype().sew == Sew::k64 && pb.vtype().lmul.log2 == 0,
        "exp core requires e64, m1");
  // Range reduction: k = round(x*log2e), r = x - k*ln2 (Cody-Waite split).
  pb.vfmul_vf(regs.k0, regs.x, kLog2E);
  pb.vfcvt_x_f(regs.ki, regs.k0);
  pb.vfcvt_f_x(regs.kf, regs.ki);
  pb.vfmul_vf(regs.t, regs.kf, kLn2Hi);
  pb.vfsub_vv(regs.r, regs.x, regs.t);
  pb.vfnmsac_vf(regs.r, kLn2Lo, regs.kf);
  // Degree-11 Horner polynomial for e^r.
  pb.vfmv_v_f(regs.p, kCoeff[11]);
  for (int k = 10; k >= 0; --k) {
    pb.vfmv_v_f(regs.coeff, kCoeff[k]);
    pb.vfmadd_vv(regs.p, regs.r, regs.coeff);
  }
  // Reconstruction: out = p * 2^k with 2^k built in the exponent field.
  pb.vadd_vx(regs.scale, regs.ki, 1023);
  pb.vsll_vx(regs.scale, regs.scale, 52);
  pb.vfmul_vv(regs.out, regs.p, regs.scale);
  // Clamp via mask compare + merge (overflow -> +inf, underflow -> 0).
  pb.vmfgt_vf(0, regs.x, kOverflowX);
  pb.vfmerge_vfm(regs.out, regs.out, std::numeric_limits<double>::infinity());
  pb.vmflt_vf(0, regs.x, kUnderflowX);
  pb.vfmerge_vfm(regs.out, regs.out, 0.0);
}

namespace {

class FexpKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "exp"; }
  [[nodiscard]] double max_perf_factor() const override {
    return static_cast<double>(kExpFlops) / kExpFpuSlots;
  }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul1; }

  Program build(Machine& m, std::uint64_t bytes_per_lane) override {
    const MachineConfig& cfg = m.config();
    n_ = elems_for_bytes_per_lane(cfg, bytes_per_lane);
    x_ = random_doubles(n_, -30.0, 30.0, input_seed(0xE0));

    MemLayout layout;
    x_addr_ = layout.alloc(n_ * 8);
    y_addr_ = layout.alloc(n_ * 8);
    m.mem().store_doubles(x_addr_, x_);

    ProgramBuilder pb(cfg.effective_vlen(), "exp");
    ExpRegs regs;
    std::uint64_t done = 0;
    unsigned flip = 0;
    while (done < n_) {
      const std::uint64_t vl = pb.vsetvli(n_ - done, Sew::k64, kLmul1);
      regs.x = 4 + (flip++ % 2);  // double-buffer the input register
      pb.vle(regs.x, x_addr_ + done * 8);
      emit_exp_core(pb, regs);
      pb.vse(regs.out, y_addr_ + done * 8);
      pb.scalar_cycles(2);  // pointer bumps + branch
      done += vl;
    }
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override {
    return std::uint64_t{kExpFlops} * n_;
  }

  [[nodiscard]] VerifyResult verify(const Machine& m) const override {
    std::vector<double> expected(n_);
    for (std::uint64_t i = 0; i < n_; ++i) expected[i] = std::exp(x_[i]);
    return compare_doubles(expected, m.mem().load_doubles(y_addr_, n_));
  }

  [[nodiscard]] double tolerance() const override { return 1e-12; }

 private:
  std::uint64_t n_ = 0;
  std::vector<double> x_;
  std::uint64_t x_addr_ = 0;
  std::uint64_t y_addr_ = 0;
};

}  // namespace

std::unique_ptr<Kernel> make_fexp() { return std::make_unique<FexpKernel>(); }

}  // namespace araxl
