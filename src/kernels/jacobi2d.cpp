// jacobi2d — 5-point Jacobi stencil over a 256xN grid (Table I).
//
// Out[r][c] = 0.2*(In[r][c] + In[r-1][c] + In[r+1][c] + In[r][c-1] +
// In[r][c+1]), computed with a halo'd input so every output element is
// interior. Row buffers rotate three-deep (each input row is loaded once
// per strip); the column neighbours come from slide1up/slide1down of the
// center row. Five single-FLOP FPU slots per element => peak LC DP-FLOP.
#include <cmath>

#include "common/contracts.hpp"
#include "kernels/common.hpp"

namespace araxl {
namespace {

constexpr unsigned kRows = 256;  // output rows
constexpr double kW = 0.2;

class Jacobi2dKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "jacobi2d"; }
  [[nodiscard]] double max_perf_factor() const override { return 1.0; }
  [[nodiscard]] Lmul lmul(std::uint64_t) const override { return kLmul4; }

  Program build(Machine& m, std::uint64_t bytes_per_lane) override {
    const MachineConfig& cfg = m.config();
    n_ = elems_for_bytes_per_lane(cfg, bytes_per_lane);
    // One halo column on each side, then pad the input pitch up to a
    // multiple of the lane count so the per-row load address advances by a
    // bus-aligned step (bus width is 8 bytes x total lanes). The stores
    // already step by n_*8, which is lane-aligned; with both progressions
    // bus-phase-periodic the whole row loop becomes batchable.
    in_cols_ = n_ + 2;
    const std::uint64_t lanes = cfg.total_lanes();
    in_cols_ += (lanes - in_cols_ % lanes) % lanes;

    in_ = random_doubles((kRows + 2) * in_cols_, -1.0, 1.0, input_seed(0x1A));

    MemLayout layout;
    in_addr_ = layout.alloc(in_.size() * 8);
    out_addr_ = layout.alloc(std::uint64_t{kRows} * n_ * 8);
    m.mem().store_doubles(in_addr_, in_);

    ProgramBuilder pb(cfg.effective_vlen(), "jacobi2d");
    // Register map (LMUL=4 groups): rows v4/v8/v12 rotate, slides v16/v20,
    // temporaries v24/v28.
    const unsigned rowreg[3] = {4, 8, 12};
    const unsigned left = 16;
    const unsigned right = 20;
    const unsigned t1 = 24;
    const unsigned t2 = 28;

    const auto row_center_addr = [&](unsigned input_row, std::uint64_t col) {
      return in_addr_ + (std::uint64_t{input_row} * in_cols_ + col + 1) * 8;
    };

    std::uint64_t col = 0;
    while (col < n_) {
      const std::uint64_t vl = pb.vsetvli(n_ - col, Sew::k64, kLmul4);
      // Prime the first two input rows of this strip.
      pb.vle(rowreg[0], row_center_addr(0, col));
      pb.vle(rowreg[1], row_center_addr(1, col));
      for (unsigned r = 0; r < kRows; ++r) {
        const unsigned up = rowreg[r % 3];
        const unsigned center = rowreg[(r + 1) % 3];
        const unsigned down = rowreg[(r + 2) % 3];
        pb.vle(down, row_center_addr(r + 2, col));
        const std::uint64_t crow = std::uint64_t{r + 1} * in_cols_;
        pb.vfslide1up(left, center, in_[crow + col]);
        pb.vfslide1down(right, center, in_[crow + col + 1 + vl]);
        pb.vfadd_vv(t1, up, down);
        pb.vfadd_vv(t2, left, right);
        pb.vfadd_vv(t1, t1, t2);
        pb.vfadd_vv(t1, t1, center);
        pb.vfmul_vf(t1, t1, kW);
        pb.vse(t1, out_addr_ + (std::uint64_t{r} * n_ + col) * 8);
        pb.scalar_cycles(3);  // row pointer bumps + branch
      }
      col += vl;
    }
    return pb.take();
  }

  [[nodiscard]] std::uint64_t useful_flops() const override {
    return 5ull * kRows * n_;
  }

  [[nodiscard]] VerifyResult verify(const Machine& m) const override {
    std::vector<double> expected(std::uint64_t{kRows} * n_);
    for (unsigned r = 0; r < kRows; ++r) {
      for (std::uint64_t c = 0; c < n_; ++c) {
        const std::uint64_t up = std::uint64_t{r} * in_cols_ + c + 1;
        const std::uint64_t mid = std::uint64_t{r + 1} * in_cols_ + c + 1;
        const std::uint64_t down = std::uint64_t{r + 2} * in_cols_ + c + 1;
        const double sum =
            ((in_[up] + in_[down]) + (in_[mid - 1] + in_[mid + 1])) + in_[mid];
        expected[std::uint64_t{r} * n_ + c] = sum * kW;
      }
    }
    return compare_doubles(expected,
                           m.mem().load_doubles(out_addr_, std::uint64_t{kRows} * n_));
  }

  [[nodiscard]] double tolerance() const override { return 0.0; }  // same dataflow

 private:
  std::uint64_t n_ = 0;
  std::uint64_t in_cols_ = 0;
  std::vector<double> in_;
  std::uint64_t in_addr_ = 0;
  std::uint64_t out_addr_ = 0;
};

}  // namespace

std::unique_ptr<Kernel> make_jacobi2d() { return std::make_unique<Jacobi2dKernel>(); }

}  // namespace araxl
