// Vectorized double-precision exponential: the code sequence shared by the
// exp and softmax kernels (paper Table I).
//
// Cody-Waite range reduction (x = k*ln2 + r, |r| <= ln2/2) followed by a
// degree-11 Taylor polynomial in Horner form and an exponent-field
// reconstruction of 2^k, with overflow/underflow handled by compare masks
// and merges — the "basic mask operations" the paper attributes to exp.
// Instruction mix per element: 20 FPU-busy slots carrying 30 DP-FLOP
// (the paper's own exp kernel reports 21 slots / 28 FLOP; see
// EXPERIMENTS.md for the accounting difference).
#ifndef ARAXL_KERNELS_EXP_CORE_HPP
#define ARAXL_KERNELS_EXP_CORE_HPP

#include "isa/program.hpp"

namespace araxl {

/// Register map used by the exp sequence (all LMUL=1 single registers;
/// v0 is clobbered as the clamp mask).
struct ExpRegs {
  unsigned x = 4;       ///< input (read only)
  unsigned k0 = 8;      ///< x * log2(e)
  unsigned ki = 9;      ///< round-to-int of k0
  unsigned kf = 10;     ///< ki back to double
  unsigned t = 11;      ///< kf * ln2_hi
  unsigned r = 12;      ///< reduced argument
  unsigned p = 13;      ///< polynomial accumulator
  unsigned coeff = 14;  ///< broadcast coefficient
  unsigned scale = 15;  ///< 2^k via exponent-field construction
  unsigned out = 16;    ///< result
};

/// Emits the exp sequence computing out = exp(x) elementwise under the
/// builder's current vtype (must be e64).
void emit_exp_core(ProgramBuilder& pb, const ExpRegs& regs);

/// FPU-busy instruction slots per element of the sequence (for the
/// Table-I instruction-mix accounting).
constexpr unsigned kExpFpuSlots = 20;
/// DP-FLOP per element of the sequence.
constexpr unsigned kExpFlops = 30;

}  // namespace araxl

#endif  // ARAXL_KERNELS_EXP_CORE_HPP
