// Lane-group execution model.
//
// Every lane carries one 64-bit FMA-capable FPU and one 64-bit ALU; a
// vector instruction executes SIMD across all lanes of all clusters, so the
// machine-wide element throughput of an arithmetic unit is
// total_lanes x (64 / EW) per cycle. Divisions occupy the unpipelined
// divider for div_cycles_per_elem cycles per element. Rates are expressed
// in 1/256ths of an element per cycle so fractional throughputs accumulate
// exactly in integer arithmetic.
#ifndef ARAXL_LANE_LANE_GROUP_HPP
#define ARAXL_LANE_LANE_GROUP_HPP

#include <cstdint>

#include "isa/instr.hpp"
#include "machine/config.hpp"

namespace araxl {

class LaneGroupModel {
 public:
  explicit LaneGroupModel(const MachineConfig& cfg) : cfg_(&cfg) {}

  /// Element throughput x256 of `op` at element width `ew` bytes on the
  /// unit that executes it (memory units excluded — the GLSU model owns
  /// those).
  [[nodiscard]] std::uint64_t rate256(Op op, unsigned ew) const;

  /// Result latency of a unit: cycles between an element being produced
  /// and a chained consumer being able to read it.
  [[nodiscard]] unsigned chain_lag(Unit u) const;

  /// Dispatch -> first-result latency for lane-resident units.
  [[nodiscard]] unsigned start_latency() const { return cfg_->unit_start_latency; }

 private:
  const MachineConfig* cfg_;
};

}  // namespace araxl

#endif  // ARAXL_LANE_LANE_GROUP_HPP
