#include "lane/lane_group.hpp"

#include <algorithm>

namespace araxl {

std::uint64_t LaneGroupModel::rate256(Op op, unsigned ew) const {
  const std::uint64_t lanes = cfg_->total_lanes();
  const OpSpec& spec = op_spec(op);
  if (spec.widens) ew = std::min(8u, ew * 2);  // destination width limits
  const std::uint64_t simd = 8 / ew;
  switch (spec.unit) {
    case Unit::kFpu: {
      const bool div = op == Op::kVfdivVV || op == Op::kVfdivVF ||
                       op == Op::kVfrdivVF || op == Op::kVfsqrtV;
      const std::uint64_t full = lanes * simd * 256;
      return div ? full / cfg_->div_cycles_per_elem : full;
    }
    case Unit::kAlu:
    case Unit::kSldu: return lanes * simd * 256;
    case Unit::kMasku: return lanes * 8 * 256;  // single-bit mask elements
    default: return lanes * simd * 256;
  }
}

unsigned LaneGroupModel::chain_lag(Unit u) const {
  switch (u) {
    case Unit::kFpu: return cfg_->fpu_latency;
    case Unit::kAlu: return cfg_->alu_latency;
    case Unit::kMasku: return cfg_->alu_latency;
    case Unit::kSldu: return cfg_->sldu_latency;
    case Unit::kLoad: return cfg_->load_chain_lag;
    case Unit::kStore: return 2;
    case Unit::kNone: return 0;
  }
  return 0;
}

}  // namespace araxl
