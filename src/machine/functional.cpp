#include "machine/functional.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/contracts.hpp"

namespace araxl {

namespace {

// binary16 <-> binary64. All FP arithmetic in this engine runs in double;
// like the SEW=32 float cast, the narrowing conversion rounds exactly once
// on writeback (round-to-nearest-even), so bulk and per-element paths agree
// bit for bit.
double f16_to_f64(std::uint16_t h) {
  const int exp = (h >> 10) & 0x1F;
  const std::uint32_t frac = h & 0x3FF;
  double v;
  if (exp == 0x1F) {
    v = frac != 0 ? std::numeric_limits<double>::quiet_NaN()
                  : std::numeric_limits<double>::infinity();
  } else if (exp == 0) {
    v = std::ldexp(static_cast<double>(frac), -24);  // subnormal or zero
  } else {
    v = std::ldexp(static_cast<double>(frac + 1024), exp - 25);
  }
  return (h & 0x8000) != 0 ? -v : v;
}

std::uint16_t f64_to_f16(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  const auto sign = static_cast<std::uint16_t>((bits >> 48) & 0x8000);
  const int e = static_cast<int>((bits >> 52) & 0x7FF);
  const std::uint64_t mant = bits & 0xFFFFFFFFFFFFFULL;
  if (e == 0x7FF) {  // inf / NaN (NaN payloads canonicalised to quiet)
    return static_cast<std::uint16_t>(sign | 0x7C00 | (mant != 0 ? 0x200 : 0));
  }
  int he = e - 1023 + 15;
  if (he >= 31) return static_cast<std::uint16_t>(sign | 0x7C00);  // -> inf
  std::uint64_t sig = mant | (e != 0 ? (1ULL << 52) : 0);
  int shift = 42;  // 52-bit significand -> 10-bit fraction
  if (he <= 0) {   // subnormal target: shift the hidden bit into the fraction
    shift += 1 - he;
    he = 0;
  }
  if (shift >= 64) return sign;  // below half the smallest subnormal
  const std::uint64_t keep = sig >> shift;
  const std::uint64_t rem = sig & ((1ULL << shift) - 1);
  const std::uint64_t half = 1ULL << (shift - 1);
  std::uint64_t rounded = keep;
  if (rem > half || (rem == half && (keep & 1) != 0)) ++rounded;
  if (he == 0) {
    // A carry out of the fraction lands on the exponent-1 bit, which is
    // already the correct smallest-normal encoding.
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // `keep` includes the hidden bit (1024). The plain addition lets a carry
  // to 2048 bump the exponent, and he==30 overflowing to 31 produces the
  // infinity encoding — both intentional.
  return static_cast<std::uint16_t>(
      sign + (static_cast<std::uint64_t>(he) << 10) + rounded - 1024);
}

}  // namespace

FunctionalEngine::FunctionalEngine(const MachineConfig& cfg, Vrf& vrf,
                                   MainMemory& mem)
    : cfg_(cfg), vrf_(vrf), mem_(mem) {}

double FunctionalEngine::read_f(unsigned reg, std::uint64_t i) const {
  switch (vtype_.sew) {
    case Sew::k64: return vrf_.read_f64(reg, i);
    case Sew::k32: return static_cast<double>(vrf_.read_f32(reg, i));
    case Sew::k16:
      return f16_to_f64(static_cast<std::uint16_t>(vrf_.read_elem(reg, i, 2)));
    default: fail("FP operations require SEW of 16, 32 or 64");
  }
}

void FunctionalEngine::write_f(unsigned reg, std::uint64_t i, double v) {
  switch (vtype_.sew) {
    case Sew::k64: vrf_.write_f64(reg, i, v); return;
    case Sew::k32: vrf_.write_f32(reg, i, static_cast<float>(v)); return;
    case Sew::k16: vrf_.write_elem(reg, i, 2, f64_to_f16(v)); return;
    default: fail("FP operations require SEW of 16, 32 or 64");
  }
}

std::uint64_t FunctionalEngine::read_x(unsigned reg, std::uint64_t i) const {
  return vrf_.read_elem(reg, i, ew_bytes());
}

void FunctionalEngine::write_x(unsigned reg, std::uint64_t i, std::uint64_t v) {
  vrf_.write_elem(reg, i, ew_bytes(), v);
}

bool FunctionalEngine::active(const VInstr& in, std::uint64_t i) const {
  return !in.masked || vrf_.mask_bit(0, i);
}

void FunctionalEngine::exec(const VInstr& in) {
  if (in.op == Op::kVsetvli) {
    vtype_ = in.vtype;
    vl_ = vsetvl_result(cfg_.effective_vlen(), in.avl, in.vtype);
    return;
  }
  const OpSpec& spec = op_spec(in.op);
  if (in.op == Op::kVfmvFS) {
    // Reads element 0 regardless of vl.
    scalar_acc_ = read_f(in.vs2, 0);
    return;
  }
  if (in.op == Op::kVcpopM || in.op == Op::kVfirstM) {
    exec_mask_population(in);  // handles vl == 0 (count 0 / index -1)
    return;
  }
  if (vl_ == 0) return;

  if (spec.reads_mem || spec.writes_mem) {
    exec_memory(in);
  } else if (spec.widens) {
    exec_widening(in);
  } else if (spec.is_gather) {
    exec_gather(in);
  } else if (in.op == Op::kViotaM || in.op == Op::kVmsbfM ||
             in.op == Op::kVmsifM || in.op == Op::kVmsofM) {
    exec_mask_population(in);
  } else if (spec.is_reduction) {
    exec_reduction(in);
  } else if (spec.is_slide) {
    exec_slide(in);
  } else if (spec.writes_mask || spec.unit == Unit::kMasku) {
    exec_mask(in);
  } else if (spec.unit == Unit::kFpu) {
    exec_fp(in);
  } else {
    exec_int(in);
  }
}

void FunctionalEngine::exec_widening(const VInstr& in) {
  check(vtype_.sew == Sew::k32, "widening requires SEW=32");
  for (std::uint64_t i = 0; i < vl_; ++i) {
    if (!active(in, i)) continue;
    const double a = static_cast<double>(vrf_.read_f32(in.vs2, i));
    const double b = static_cast<double>(vrf_.read_f32(in.vs1, i));
    double result = 0.0;
    switch (in.op) {
      case Op::kVfwaddVV: result = a + b; break;
      case Op::kVfwsubVV: result = a - b; break;
      case Op::kVfwmulVV: result = a * b; break;
      case Op::kVfwmaccVV:
        result = std::fma(b, a, vrf_.read_f64(in.vd, i));
        break;
      default: fail("unhandled widening op");
    }
    vrf_.write_f64(in.vd, i, result);
  }
}

void FunctionalEngine::exec_gather(const VInstr& in) {
  const unsigned ew = ew_bytes();
  const std::uint64_t vlmax_now = vlmax(cfg_.effective_vlen(), vtype_);
  if (in.op == Op::kVrgatherVV) {
    for (std::uint64_t i = 0; i < vl_; ++i) {
      if (!active(in, i)) continue;
      const std::uint64_t idx = vrf_.read_elem(in.vs1, i, ew);
      vrf_.write_elem(in.vd, i, ew,
                      idx < vlmax_now ? vrf_.read_elem(in.vs2, idx, ew) : 0);
    }
    return;
  }
  // vcompress.vm: pack active elements; tail of vd is left undisturbed.
  std::uint64_t k = 0;
  for (std::uint64_t i = 0; i < vl_; ++i) {
    if (!vrf_.mask_bit(in.vs1, i)) continue;
    vrf_.write_elem(in.vd, k++, ew, vrf_.read_elem(in.vs2, i, ew));
  }
}

void FunctionalEngine::exec_mask_population(const VInstr& in) {
  switch (in.op) {
    case Op::kVcpopM: {
      std::int64_t count = 0;
      for (std::uint64_t i = 0; i < vl_; ++i) {
        if (vrf_.mask_bit(in.vs2, i) && active(in, i)) ++count;
      }
      scalar_iacc_ = count;
      scalar_acc_ = static_cast<double>(count);
      return;
    }
    case Op::kVfirstM: {
      std::int64_t first = -1;
      for (std::uint64_t i = 0; i < vl_; ++i) {
        if (vrf_.mask_bit(in.vs2, i) && active(in, i)) {
          first = static_cast<std::int64_t>(i);
          break;
        }
      }
      scalar_iacc_ = first;
      scalar_acc_ = static_cast<double>(first);
      return;
    }
    case Op::kViotaM: {
      std::uint64_t count = 0;
      for (std::uint64_t i = 0; i < vl_; ++i) {
        if (active(in, i)) write_x(in.vd, i, count);
        if (vrf_.mask_bit(in.vs2, i)) ++count;
      }
      return;
    }
    case Op::kVmsbfM:
    case Op::kVmsifM:
    case Op::kVmsofM: {
      bool seen = false;
      for (std::uint64_t i = 0; i < vl_; ++i) {
        const bool bit = vrf_.mask_bit(in.vs2, i);
        bool out = false;
        if (!seen) {
          if (bit) {
            seen = true;
            out = in.op != Op::kVmsbfM;  // msif/msof include the first
          } else {
            out = in.op != Op::kVmsofM;  // msbf/msif set before the first
          }
        }
        if (active(in, i)) vrf_.set_mask_bit(in.vd, i, out);
      }
      return;
    }
    default: fail("unhandled mask-population op");
  }
}

void FunctionalEngine::exec_memory(const VInstr& in) {
  const unsigned ew = ew_bytes();
  // Unit-stride, unmasked accesses (the overwhelmingly common case) move
  // as one bounds-checked stream between memory and the mapped VRF.
  if ((in.op == Op::kVle || in.op == Op::kVse) && !in.masked) {
    const std::uint64_t total = vl_ * ew;
    if (in.op == Op::kVle) {
      vrf_.write_stream(in.vd, vl_, ew, mem_.raw(in.addr, total));
    } else {
      vrf_.read_stream(in.vd, vl_, ew, mem_.raw(in.addr, total));
    }
    return;
  }
  if ((in.op == Op::kVlse || in.op == Op::kVsse) && !in.masked &&
      exec_memory_bulk_strided(in)) {
    return;
  }
  if ((in.op == Op::kVle || in.op == Op::kVse) && in.masked &&
      exec_memory_bulk_masked_unit(in)) {
    return;
  }
  const auto elem_addr = [&](std::uint64_t i) -> std::uint64_t {
    switch (in.op) {
      case Op::kVle:
      case Op::kVse: return in.addr + i * ew;
      case Op::kVlse:
      case Op::kVsse:
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(in.addr) +
                                          static_cast<std::int64_t>(i) * in.stride);
      case Op::kVluxei:
      case Op::kVsuxei: return in.addr + vrf_.read_elem(in.vs2, i, ew);
      default: fail("not a memory op");
    }
  };

  const bool is_load = op_spec(in.op).reads_mem;
  for (std::uint64_t i = 0; i < vl_; ++i) {
    if (!active(in, i)) continue;
    const std::uint64_t a = elem_addr(i);
    if (is_load) {
      std::uint64_t bits = 0;
      switch (ew) {
        case 1: bits = mem_.load<std::uint8_t>(a); break;
        case 2: bits = mem_.load<std::uint16_t>(a); break;
        case 4: bits = mem_.load<std::uint32_t>(a); break;
        case 8: bits = mem_.load<std::uint64_t>(a); break;
        default: fail("bad element width");
      }
      vrf_.write_elem(in.vd, i, ew, bits);
    } else {
      const std::uint64_t bits = vrf_.read_elem(in.vd, i, ew);
      switch (ew) {
        case 1: mem_.store<std::uint8_t>(a, static_cast<std::uint8_t>(bits)); break;
        case 2: mem_.store<std::uint16_t>(a, static_cast<std::uint16_t>(bits)); break;
        case 4: mem_.store<std::uint32_t>(a, static_cast<std::uint32_t>(bits)); break;
        case 8: mem_.store<std::uint64_t>(a, bits); break;
        default: fail("bad element width");
      }
    }
  }
}

bool FunctionalEngine::exec_memory_bulk_strided(const VInstr& in) {
  const unsigned ew = ew_bytes();
  const std::int64_t stride = in.stride;
  // Address math must agree with the per-element path (signed stride on an
  // unsigned base). Widen to 128 bits so huge strides cannot wrap; any
  // transfer that leaves [0, mem) falls back to the per-element loop,
  // which reports the out-of-bounds element exactly as before.
  if (in.addr > mem_.size()) return false;
  const __int128 first_a = static_cast<__int128>(in.addr);
  const __int128 last_a =
      first_a + static_cast<__int128>(vl_ - 1) * static_cast<__int128>(stride);
  const __int128 lo = stride < 0 ? last_a : first_a;
  const __int128 hi = (stride < 0 ? first_a : last_a) + ew;
  if (lo < 0 || hi > static_cast<__int128>(mem_.size())) return false;

  const std::uint64_t umin = static_cast<std::uint64_t>(lo);
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - umin;
  const bool is_load = in.op == Op::kVlse;
  buf_mem_.resize(vl_ * ew);
  std::uint8_t* buf = buf_mem_.data();

  // Fixed-width copies so the compiler lowers each to a plain load/store.
  const auto stream = [&]<unsigned kW>() {
    if (is_load) {
      const std::uint8_t* first = mem_.raw(umin, span) + (in.addr - umin);
      for (std::uint64_t i = 0; i < vl_; ++i) {
        std::memcpy(buf + i * kW, first + static_cast<std::int64_t>(i) * stride,
                    kW);
      }
      vrf_.write_stream(in.vd, vl_, kW, buf);
    } else {
      // Ascending element order keeps the architectural overlap semantics
      // (stride 0 or |stride| < ew: the later element wins).
      vrf_.read_stream(in.vd, vl_, kW, buf);
      std::uint8_t* first = mem_.raw(umin, span) + (in.addr - umin);
      for (std::uint64_t i = 0; i < vl_; ++i) {
        std::memcpy(first + static_cast<std::int64_t>(i) * stride, buf + i * kW,
                    kW);
      }
    }
  };
  switch (ew) {
    case 1: stream.template operator()<1>(); break;
    case 2: stream.template operator()<2>(); break;
    case 4: stream.template operator()<4>(); break;
    case 8: stream.template operator()<8>(); break;
    default: return false;
  }
  return true;
}

bool FunctionalEngine::exec_memory_bulk_masked_unit(const VInstr& in) {
  const unsigned ew = ew_bytes();
  const std::uint64_t total = vl_ * ew;
  // One bounds check for the whole range. Any out-of-bounds byte falls back
  // to the per-element loop, which reports the exact faulting active element
  // (a range whose out-of-bounds elements are all inactive also falls back —
  // that only costs speed, never correctness).
  if (in.addr > mem_.size() || total > mem_.size() - in.addr) return false;
  const bool is_load = in.op == Op::kVle;
  buf_mem_.resize(total);
  std::uint8_t* buf = buf_mem_.data();
  std::uint8_t* ram = mem_.raw(in.addr, total);

  // Fixed-width copies so the compiler lowers each to a plain load/store.
  const auto stream = [&]<unsigned kW>() {
    // Both directions route through the current vd stream: a masked load
    // merges into vd (inactive elements keep their old value), and a masked
    // store sources vd and touches only the active elements of memory.
    vrf_.read_stream(in.vd, vl_, kW, buf);
    if (is_load) {
      for (std::uint64_t i = 0; i < vl_; ++i) {
        if (vrf_.mask_bit(0, i)) std::memcpy(buf + i * kW, ram + i * kW, kW);
      }
      vrf_.write_stream(in.vd, vl_, kW, buf);
    } else {
      for (std::uint64_t i = 0; i < vl_; ++i) {
        if (vrf_.mask_bit(0, i)) std::memcpy(ram + i * kW, buf + i * kW, kW);
      }
    }
  };
  switch (ew) {
    case 1: stream.template operator()<1>(); break;
    case 2: stream.template operator()<2>(); break;
    case 4: stream.template operator()<4>(); break;
    case 8: stream.template operator()<8>(); break;
    default: return false;
  }
  return true;
}

bool FunctionalEngine::exec_fp_bulk(const VInstr& in) {
  if (in.masked) return false;
  const unsigned ew = ew_bytes();
  if (ew != 2 && ew != 4 && ew != 8) return false;
  const OpSpec& spec = op_spec(in.op);
  const std::uint64_t n = vl_;
  const double fs = scalar_of(in);
  // The opcode kernel, shared by both data paths below. Returns false for
  // ops this bulk path doesn't cover (conversions etc. take the
  // per-element path); probing with cnt == 0 answers "covered?" without
  // touching any data.
  const auto compute = [&](double* d, const double* a, const double* b,
                           std::uint64_t cnt) -> bool {
    switch (in.op) {
      case Op::kVfaddVV: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = a[i] + b[i]; break;
      case Op::kVfaddVF: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = a[i] + fs; break;
      case Op::kVfsubVV: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = a[i] - b[i]; break;
      case Op::kVfsubVF: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = a[i] - fs; break;
      case Op::kVfrsubVF: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = fs - a[i]; break;
      case Op::kVfmulVV: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = a[i] * b[i]; break;
      case Op::kVfmulVF: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = a[i] * fs; break;
      case Op::kVfdivVV: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = a[i] / b[i]; break;
      case Op::kVfdivVF: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = a[i] / fs; break;
      case Op::kVfrdivVF: for (std::uint64_t i = 0; i < cnt; ++i) d[i] = fs / a[i]; break;
      case Op::kVfmaccVV:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fma(b[i], a[i], d[i]);
        break;
      case Op::kVfmaccVF:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fma(fs, a[i], d[i]);
        break;
      case Op::kVfnmsacVV:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fma(-b[i], a[i], d[i]);
        break;
      case Op::kVfnmsacVF:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fma(-fs, a[i], d[i]);
        break;
      case Op::kVfmaddVF:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fma(d[i], fs, a[i]);
        break;
      case Op::kVfmaddVV:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fma(d[i], b[i], a[i]);
        break;
      case Op::kVfmsacVF:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fma(fs, a[i], -d[i]);
        break;
      case Op::kVfminVV:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fmin(a[i], b[i]);
        break;
      case Op::kVfminVF:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fmin(a[i], fs);
        break;
      case Op::kVfmaxVV:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fmax(a[i], b[i]);
        break;
      case Op::kVfmaxVF:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::fmax(a[i], fs);
        break;
      case Op::kVfsgnjVV:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::copysign(a[i], b[i]);
        break;
      case Op::kVfsgnjnVV:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::copysign(a[i], -b[i]);
        break;
      case Op::kVfsqrtV:
        for (std::uint64_t i = 0; i < cnt; ++i) d[i] = std::sqrt(a[i]);
        break;
      default: return false;
    }
    return true;
  };
  if (!compute(nullptr, nullptr, nullptr, 0)) return false;

  // SEW-64 zero-copy path: at SEW 64 the packed mirror bytes ARE the
  // doubles, so when every operand group's mirror is valid the op computes
  // directly in the mirror — no staging copies at all. Source and
  // destination groups must coincide exactly or not overlap (the RVV
  // legality rule the kernels follow); a shifted overlap would make the
  // in-place elementwise loop read already-written elements where the
  // staged path below reads the old ones.
  if (ew == 8) {
    const std::uint64_t epr = vrf_.mapping().elems_per_reg(8);
    const auto group_regs = static_cast<unsigned>((n + epr - 1) / epr);
    const auto clean = [&](unsigned src) {
      return src == in.vd || src + group_regs <= in.vd ||
             in.vd + group_regs <= src;
    };
    if (clean(in.vs2) && (!spec.reads_vs1 || clean(in.vs1))) {
      const std::uint8_t* a8 = vrf_.packed_read_span(in.vs2, n, 8);
      const std::uint8_t* b8 =
          spec.reads_vs1 ? vrf_.packed_read_span(in.vs1, n, 8) : nullptr;
      std::uint8_t* d8 = vrf_.packed_write_span(in.vd, n, 8, spec.reads_vd);
      compute(reinterpret_cast<double*>(d8), reinterpret_cast<const double*>(a8),
              reinterpret_cast<const double*>(b8), n);
      return true;
    }
  }

  const auto as_bytes = [](std::vector<double>& v) {
    return reinterpret_cast<std::uint8_t*>(v.data());
  };
  // Stream a register into a double buffer, widening narrow elements. The
  // widening is exact (f16/f32 -> f64 is injective), so computing in double
  // and narrowing once on writeback matches the per-element path bit for
  // bit — that path also reads wide, computes in double, and rounds once
  // inside write_f.
  const auto load_wide = [&](unsigned reg, std::vector<double>& dst) {
    dst.resize(n);
    if (ew == 8) {
      vrf_.read_stream(reg, n, 8, as_bytes(dst));
      return;
    }
    buf_mem_.resize(n * ew);
    vrf_.read_stream(reg, n, ew, buf_mem_.data());
    if (ew == 4) {
      for (std::uint64_t i = 0; i < n; ++i) {
        float f = 0.0F;
        std::memcpy(&f, buf_mem_.data() + i * 4, 4);
        dst[i] = static_cast<double>(f);
      }
    } else {
      for (std::uint64_t i = 0; i < n; ++i) {
        std::uint16_t h = 0;
        std::memcpy(&h, buf_mem_.data() + i * 2, 2);
        dst[i] = f16_to_f64(h);
      }
    }
  };

  // Gather the operand streams this opcode needs.
  load_wide(in.vs2, buf_s2_);
  const double* a = buf_s2_.data();
  const double* b = nullptr;
  if (spec.reads_vs1) {
    load_wide(in.vs1, buf_s1_);
    b = buf_s1_.data();
  }
  buf_d_.resize(n);
  double* d = buf_d_.data();
  if (spec.reads_vd) load_wide(in.vd, buf_d_);

  compute(d, a, b, n);
  if (ew == 8) {
    vrf_.write_stream(in.vd, n, 8, as_bytes(buf_d_));
  } else {
    // Narrow once on writeback — the single rounding step shared with
    // write_f on the per-element path.
    buf_mem_.resize(n * ew);
    if (ew == 4) {
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto f = static_cast<float>(d[i]);
        std::memcpy(buf_mem_.data() + i * 4, &f, 4);
      }
    } else {
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint16_t h = f64_to_f16(d[i]);
        std::memcpy(buf_mem_.data() + i * 2, &h, 2);
      }
    }
    vrf_.write_stream(in.vd, n, ew, buf_mem_.data());
  }
  return true;
}

void FunctionalEngine::exec_fp(const VInstr& in) {
  if (exec_fp_bulk(in)) return;
  const double fs = scalar_of(in);
  for (std::uint64_t i = 0; i < vl_; ++i) {
    if (!active(in, i)) continue;
    double result = 0.0;
    switch (in.op) {
      case Op::kVfaddVV: result = read_f(in.vs2, i) + read_f(in.vs1, i); break;
      case Op::kVfaddVF: result = read_f(in.vs2, i) + fs; break;
      case Op::kVfsubVV: result = read_f(in.vs2, i) - read_f(in.vs1, i); break;
      case Op::kVfsubVF: result = read_f(in.vs2, i) - fs; break;
      case Op::kVfrsubVF: result = fs - read_f(in.vs2, i); break;
      case Op::kVfmulVV: result = read_f(in.vs2, i) * read_f(in.vs1, i); break;
      case Op::kVfmulVF: result = read_f(in.vs2, i) * fs; break;
      case Op::kVfdivVV: result = read_f(in.vs2, i) / read_f(in.vs1, i); break;
      case Op::kVfdivVF: result = read_f(in.vs2, i) / fs; break;
      case Op::kVfrdivVF: result = fs / read_f(in.vs2, i); break;
      case Op::kVfmaccVV:
        result = std::fma(read_f(in.vs1, i), read_f(in.vs2, i), read_f(in.vd, i));
        break;
      case Op::kVfmaccVF:
        result = std::fma(fs, read_f(in.vs2, i), read_f(in.vd, i));
        break;
      case Op::kVfnmsacVV:
        result = std::fma(-read_f(in.vs1, i), read_f(in.vs2, i), read_f(in.vd, i));
        break;
      case Op::kVfnmsacVF:
        result = std::fma(-fs, read_f(in.vs2, i), read_f(in.vd, i));
        break;
      case Op::kVfmaddVF:
        result = std::fma(read_f(in.vd, i), fs, read_f(in.vs2, i));
        break;
      case Op::kVfmaddVV:
        result = std::fma(read_f(in.vd, i), read_f(in.vs1, i), read_f(in.vs2, i));
        break;
      case Op::kVfmsacVF:
        result = std::fma(fs, read_f(in.vs2, i), -read_f(in.vd, i));
        break;
      case Op::kVfminVV: result = std::fmin(read_f(in.vs2, i), read_f(in.vs1, i)); break;
      case Op::kVfminVF: result = std::fmin(read_f(in.vs2, i), fs); break;
      case Op::kVfmaxVV: result = std::fmax(read_f(in.vs2, i), read_f(in.vs1, i)); break;
      case Op::kVfmaxVF: result = std::fmax(read_f(in.vs2, i), fs); break;
      case Op::kVfsgnjVV:
        result = std::copysign(read_f(in.vs2, i), read_f(in.vs1, i));
        break;
      case Op::kVfsgnjnVV:
        result = std::copysign(read_f(in.vs2, i), -read_f(in.vs1, i));
        break;
      case Op::kVfcvtXF: {
        const double r = std::nearbyint(read_f(in.vs2, i));
        write_x(in.vd, i, static_cast<std::uint64_t>(static_cast<std::int64_t>(r)));
        continue;
      }
      case Op::kVfcvtFX: {
        const auto x = static_cast<std::int64_t>(read_x(in.vs2, i));
        result = static_cast<double>(x);
        break;
      }
      case Op::kVfsqrtV: result = std::sqrt(read_f(in.vs2, i)); break;
      default: fail("unhandled FP op");
    }
    write_f(in.vd, i, result);
  }
}

template <typename T>
void FunctionalEngine::exec_int_bulk_t(const VInstr& in) {
  const OpSpec& spec = op_spec(in.op);
  const std::uint64_t n = vl_;
  constexpr unsigned kW = sizeof(T);
  const unsigned bits = kW * 8;
  const T xs = static_cast<T>(static_cast<std::uint64_t>(in.xs));

  const bool needs_vs2 = in.op != Op::kVmvVX && in.op != Op::kVidV &&
                         in.op != Op::kVmvVV;
  const T* a = nullptr;
  if (needs_vs2) {
    buf_i2_.resize(n * kW);
    vrf_.read_stream(in.vs2, n, kW, buf_i2_.data());
    a = reinterpret_cast<const T*>(buf_i2_.data());
  }
  const T* b = nullptr;
  if (spec.reads_vs1) {
    buf_i1_.resize(n * kW);
    vrf_.read_stream(in.vs1, n, kW, buf_i1_.data());
    b = reinterpret_cast<const T*>(buf_i1_.data());
  }
  buf_id_.resize(n * kW);
  T* d = reinterpret_cast<T*>(buf_id_.data());
  if (spec.reads_vd) vrf_.read_stream(in.vd, n, kW, buf_id_.data());

  using S = std::make_signed_t<T>;
  switch (in.op) {
    case Op::kVaddVV: for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(a[i] + b[i]); break;
    case Op::kVaddVX: for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(a[i] + xs); break;
    case Op::kVsubVV: for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(a[i] - b[i]); break;
    case Op::kVsllVX: {
      const unsigned sh = static_cast<unsigned>(static_cast<std::uint64_t>(in.xs) % bits);
      for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(a[i] << sh);
      break;
    }
    case Op::kVsrlVX: {
      const unsigned sh = static_cast<unsigned>(static_cast<std::uint64_t>(in.xs) % bits);
      for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(a[i] >> sh);
      break;
    }
    case Op::kVandVX: for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(a[i] & xs); break;
    case Op::kVmvVX: for (std::uint64_t i = 0; i < n; ++i) d[i] = xs; break;
    case Op::kVmvVV: for (std::uint64_t i = 0; i < n; ++i) d[i] = b[i]; break;
    case Op::kVidV: for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(i); break;
    case Op::kVmulVV: for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(a[i] * b[i]); break;
    case Op::kVmulVX: for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(a[i] * xs); break;
    case Op::kVmaccVV:
      for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(d[i] + b[i] * a[i]);
      break;
    case Op::kVrsubVX: for (std::uint64_t i = 0; i < n; ++i) d[i] = static_cast<T>(xs - a[i]); break;
    case Op::kVmaxVV:
      for (std::uint64_t i = 0; i < n; ++i) {
        d[i] = static_cast<T>(std::max(static_cast<S>(a[i]), static_cast<S>(b[i])));
      }
      break;
    case Op::kVminVV:
      for (std::uint64_t i = 0; i < n; ++i) {
        d[i] = static_cast<T>(std::min(static_cast<S>(a[i]), static_cast<S>(b[i])));
      }
      break;
    default: fail("op not in the bulk integer set");
  }
  vrf_.write_stream(in.vd, n, kW, buf_id_.data());
}

bool FunctionalEngine::exec_int_bulk(const VInstr& in) {
  if (in.masked) return false;
  switch (in.op) {
    case Op::kVaddVV: case Op::kVaddVX: case Op::kVsubVV: case Op::kVsllVX:
    case Op::kVsrlVX: case Op::kVandVX: case Op::kVmvVX: case Op::kVmvVV:
    case Op::kVidV: case Op::kVmulVV: case Op::kVmulVX: case Op::kVmaccVV:
    case Op::kVrsubVX: case Op::kVmaxVV: case Op::kVminVV: break;
    default: return false;  // merges, FP moves: per-element fallback
  }
  switch (ew_bytes()) {
    case 1: exec_int_bulk_t<std::uint8_t>(in); return true;
    case 2: exec_int_bulk_t<std::uint16_t>(in); return true;
    case 4: exec_int_bulk_t<std::uint32_t>(in); return true;
    case 8: exec_int_bulk_t<std::uint64_t>(in); return true;
    default: return false;
  }
}

void FunctionalEngine::exec_int(const VInstr& in) {
  if (exec_int_bulk(in)) return;
  const unsigned bits = sew_bits(vtype_.sew);
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  const auto xs = static_cast<std::uint64_t>(in.xs);
  for (std::uint64_t i = 0; i < vl_; ++i) {
    if (!active(in, i) && in.op != Op::kVmergeVVM && in.op != Op::kVfmergeVFM) {
      continue;
    }
    switch (in.op) {
      case Op::kVaddVV: write_x(in.vd, i, (read_x(in.vs2, i) + read_x(in.vs1, i)) & mask); break;
      case Op::kVaddVX: write_x(in.vd, i, (read_x(in.vs2, i) + xs) & mask); break;
      case Op::kVsubVV: write_x(in.vd, i, (read_x(in.vs2, i) - read_x(in.vs1, i)) & mask); break;
      case Op::kVsllVX: write_x(in.vd, i, (read_x(in.vs2, i) << (xs % bits)) & mask); break;
      case Op::kVsrlVX: write_x(in.vd, i, (read_x(in.vs2, i) & mask) >> (xs % bits)); break;
      case Op::kVandVX: write_x(in.vd, i, read_x(in.vs2, i) & xs & mask); break;
      case Op::kVmvVX: write_x(in.vd, i, xs & mask); break;
      case Op::kVmvVV: write_x(in.vd, i, read_x(in.vs1, i)); break;
      case Op::kVfmvVF: write_f(in.vd, i, scalar_of(in)); break;
      case Op::kVfmvSF:
        if (i == 0) write_f(in.vd, 0, scalar_of(in));
        break;
      case Op::kVidV: write_x(in.vd, i, i & mask); break;
      case Op::kVmergeVVM:
        write_x(in.vd, i, vrf_.mask_bit(0, i) ? read_x(in.vs1, i) : read_x(in.vs2, i));
        break;
      case Op::kVfmergeVFM:
        if (vrf_.mask_bit(0, i)) {
          write_f(in.vd, i, scalar_of(in));
        } else {
          write_x(in.vd, i, read_x(in.vs2, i));
        }
        break;
      case Op::kVmulVV:
        write_x(in.vd, i, (read_x(in.vs2, i) * read_x(in.vs1, i)) & mask);
        break;
      case Op::kVmulVX: write_x(in.vd, i, (read_x(in.vs2, i) * xs) & mask); break;
      case Op::kVmaccVV:
        write_x(in.vd, i,
                (read_x(in.vd, i) + read_x(in.vs1, i) * read_x(in.vs2, i)) & mask);
        break;
      case Op::kVrsubVX: write_x(in.vd, i, (xs - read_x(in.vs2, i)) & mask); break;
      case Op::kVmaxVV:
      case Op::kVminVV: {
        // Signed comparison at the current SEW: sign-extend stored bits.
        const auto sext = [&](std::uint64_t v) -> std::int64_t {
          if (bits >= 64) return static_cast<std::int64_t>(v);
          const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
          return static_cast<std::int64_t>(((v & mask) ^ sign) - sign);
        };
        const std::int64_t a = sext(read_x(in.vs2, i));
        const std::int64_t b = sext(read_x(in.vs1, i));
        const std::int64_t r =
            in.op == Op::kVmaxVV ? std::max(a, b) : std::min(a, b);
        write_x(in.vd, i, static_cast<std::uint64_t>(r) & mask);
        break;
      }
      default: fail("unhandled integer/move op");
    }
  }
}

void FunctionalEngine::exec_reduction(const VInstr& in) {
  double acc = read_f(in.vs1, 0);
  if (vtype_.sew == Sew::k64 && !in.masked) {
    // Bulk path: one stream read, then a pure accumulate loop.
    buf_s2_.resize(vl_);
    vrf_.read_stream(in.vs2, vl_, 8,
                     reinterpret_cast<std::uint8_t*>(buf_s2_.data()));
    const double* v = buf_s2_.data();
    switch (in.op) {
      case Op::kVfredusum:
        for (std::uint64_t i = 0; i < vl_; ++i) acc += v[i];
        break;
      case Op::kVfredmax:
        for (std::uint64_t i = 0; i < vl_; ++i) acc = std::fmax(acc, v[i]);
        break;
      case Op::kVfredmin:
        for (std::uint64_t i = 0; i < vl_; ++i) acc = std::fmin(acc, v[i]);
        break;
      default: fail("unhandled reduction");
    }
    write_f(in.vd, 0, acc);
    return;
  }
  for (std::uint64_t i = 0; i < vl_; ++i) {
    if (!active(in, i)) continue;
    const double v = read_f(in.vs2, i);
    switch (in.op) {
      case Op::kVfredusum: acc += v; break;
      case Op::kVfredmax: acc = std::fmax(acc, v); break;
      case Op::kVfredmin: acc = std::fmin(acc, v); break;
      default: fail("unhandled reduction");
    }
  }
  write_f(in.vd, 0, acc);
}

bool FunctionalEngine::exec_slide_bulk64(const VInstr& in) {
  if (in.masked || vtype_.sew != Sew::k64) return false;
  if (in.op != Op::kVfslide1up && in.op != Op::kVfslide1down) return false;
  const std::uint64_t n = vl_;
  buf_s2_.resize(n);
  vrf_.read_stream(in.vs2, n, 8, reinterpret_cast<std::uint8_t*>(buf_s2_.data()));
  buf_d_.resize(n);
  if (in.op == Op::kVfslide1up) {
    std::memmove(buf_d_.data() + 1, buf_s2_.data(), (n - 1) * sizeof(double));
    buf_d_[0] = scalar_of(in);
  } else {
    std::memmove(buf_d_.data(), buf_s2_.data() + 1, (n - 1) * sizeof(double));
    buf_d_[n - 1] = scalar_of(in);
  }
  vrf_.write_stream(in.vd, n, 8, reinterpret_cast<std::uint8_t*>(buf_d_.data()));
  return true;
}

void FunctionalEngine::exec_slide(const VInstr& in) {
  if (exec_slide_bulk64(in)) return;
  const std::uint64_t vlmax_now = vlmax(cfg_.effective_vlen(), vtype_);
  switch (in.op) {
    case Op::kVfslide1up: {
      // vd must not overlap vs2 (enforced by the builder): descending copy
      // is safe either way.
      for (std::uint64_t i = vl_; i-- > 1;) {
        if (active(in, i)) write_f(in.vd, i, read_f(in.vs2, i - 1));
      }
      if (active(in, 0)) write_f(in.vd, 0, scalar_of(in));
      return;
    }
    case Op::kVfslide1down: {
      for (std::uint64_t i = 0; i + 1 < vl_; ++i) {
        if (active(in, i)) write_f(in.vd, i, read_f(in.vs2, i + 1));
      }
      if (vl_ > 0 && active(in, vl_ - 1)) write_f(in.vd, vl_ - 1, scalar_of(in));
      return;
    }
    case Op::kVslideupVX: {
      const auto k = static_cast<std::uint64_t>(in.xs);
      for (std::uint64_t i = vl_; i-- > k;) {
        if (active(in, i)) write_x(in.vd, i, read_x(in.vs2, i - k));
      }
      return;  // elements [0, k) remain undisturbed
    }
    case Op::kVslidedownVX: {
      const auto k = static_cast<std::uint64_t>(in.xs);
      for (std::uint64_t i = 0; i < vl_; ++i) {
        if (!active(in, i)) continue;
        const std::uint64_t src = i + k;
        write_x(in.vd, i, src < vlmax_now ? read_x(in.vs2, src) : 0);
      }
      return;
    }
    default: fail("unhandled slide");
  }
}

bool FunctionalEngine::exec_mask_bulk(const VInstr& in) {
  if (in.masked) return false;
  const std::uint64_t n = vl_;
  switch (in.op) {
    // Mask-logical: one dedicated loop per opcode over the bit accessors —
    // no per-element opcode switch or mask-predicate re-test.
    case Op::kVmandMM:
      for (std::uint64_t i = 0; i < n; ++i) {
        vrf_.set_mask_bit(in.vd, i, vrf_.mask_bit(in.vs2, i) && vrf_.mask_bit(in.vs1, i));
      }
      return true;
    case Op::kVmorMM:
      for (std::uint64_t i = 0; i < n; ++i) {
        vrf_.set_mask_bit(in.vd, i, vrf_.mask_bit(in.vs2, i) || vrf_.mask_bit(in.vs1, i));
      }
      return true;
    case Op::kVmxorMM:
      for (std::uint64_t i = 0; i < n; ++i) {
        vrf_.set_mask_bit(in.vd, i, vrf_.mask_bit(in.vs2, i) != vrf_.mask_bit(in.vs1, i));
      }
      return true;
    case Op::kVmandnMM:
      for (std::uint64_t i = 0; i < n; ++i) {
        vrf_.set_mask_bit(in.vd, i, vrf_.mask_bit(in.vs2, i) && !vrf_.mask_bit(in.vs1, i));
      }
      return true;
    default: break;
  }
  if (vtype_.sew != Sew::k64) return false;
  // SEW=64 compares: gather the operand streams once, then a tight
  // compare-and-set loop per opcode.
  buf_s2_.resize(n);
  vrf_.read_stream(in.vs2, n, 8, reinterpret_cast<std::uint8_t*>(buf_s2_.data()));
  const double* a = buf_s2_.data();
  const double fs = scalar_of(in);
  const double* b = nullptr;
  if (op_spec(in.op).reads_vs1) {
    buf_s1_.resize(n);
    vrf_.read_stream(in.vs1, n, 8, reinterpret_cast<std::uint8_t*>(buf_s1_.data()));
    b = buf_s1_.data();
  }
  switch (in.op) {
    case Op::kVmfeqVV:
      for (std::uint64_t i = 0; i < n; ++i) vrf_.set_mask_bit(in.vd, i, a[i] == b[i]);
      return true;
    case Op::kVmfltVV:
      for (std::uint64_t i = 0; i < n; ++i) vrf_.set_mask_bit(in.vd, i, a[i] < b[i]);
      return true;
    case Op::kVmfleVV:
      for (std::uint64_t i = 0; i < n; ++i) vrf_.set_mask_bit(in.vd, i, a[i] <= b[i]);
      return true;
    case Op::kVmfltVF:
      for (std::uint64_t i = 0; i < n; ++i) vrf_.set_mask_bit(in.vd, i, a[i] < fs);
      return true;
    case Op::kVmfleVF:
      for (std::uint64_t i = 0; i < n; ++i) vrf_.set_mask_bit(in.vd, i, a[i] <= fs);
      return true;
    case Op::kVmfgtVF:
      for (std::uint64_t i = 0; i < n; ++i) vrf_.set_mask_bit(in.vd, i, a[i] > fs);
      return true;
    case Op::kVmfgeVF:
      for (std::uint64_t i = 0; i < n; ++i) vrf_.set_mask_bit(in.vd, i, a[i] >= fs);
      return true;
    default: return false;
  }
}

void FunctionalEngine::exec_mask(const VInstr& in) {
  if (exec_mask_bulk(in)) return;
  const double fs = scalar_of(in);
  for (std::uint64_t i = 0; i < vl_; ++i) {
    if (!active(in, i)) continue;
    bool bit = false;
    switch (in.op) {
      case Op::kVmfeqVV: bit = read_f(in.vs2, i) == read_f(in.vs1, i); break;
      case Op::kVmfltVV: bit = read_f(in.vs2, i) < read_f(in.vs1, i); break;
      case Op::kVmfleVV: bit = read_f(in.vs2, i) <= read_f(in.vs1, i); break;
      case Op::kVmfltVF: bit = read_f(in.vs2, i) < fs; break;
      case Op::kVmfleVF: bit = read_f(in.vs2, i) <= fs; break;
      case Op::kVmfgtVF: bit = read_f(in.vs2, i) > fs; break;
      case Op::kVmfgeVF: bit = read_f(in.vs2, i) >= fs; break;
      case Op::kVmandMM: bit = vrf_.mask_bit(in.vs2, i) && vrf_.mask_bit(in.vs1, i); break;
      case Op::kVmorMM: bit = vrf_.mask_bit(in.vs2, i) || vrf_.mask_bit(in.vs1, i); break;
      case Op::kVmxorMM: bit = vrf_.mask_bit(in.vs2, i) != vrf_.mask_bit(in.vs1, i); break;
      case Op::kVmandnMM:
        bit = vrf_.mask_bit(in.vs2, i) && !vrf_.mask_bit(in.vs1, i);
        break;
      default: fail("unhandled mask op");
    }
    vrf_.set_mask_bit(in.vd, i, bit);
  }
}

}  // namespace araxl
