#include "machine/config.hpp"

#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "interconnect/spec.hpp"
#include "isa/vtype.hpp"

namespace araxl {

InterconnectSpec MachineConfig::interconnect() const {
  InterconnectKnobs knobs;
  knobs.reqi_regs = reqi_regs;
  knobs.glsu_regs = glsu_regs;
  knobs.ring_regs = ring_regs;
  knobs.l2_latency = l2_latency;
  knobs.red_add_latency = red_add_latency;
  knobs.bus_bytes = mem_bytes_per_cycle();
  return kind == MachineKind::kAraXL ? InterconnectSpec::araxl(topo, knobs)
                                     : InterconnectSpec::ara2(topo, knobs);
}

std::uint64_t MachineConfig::effective_vlen() const {
  if (vlen_bits != 0) return vlen_bits;
  return std::min<std::uint64_t>(1024ull * total_lanes(), kMaxVlenBits);
}

void MachineConfig::validate() const {
  check(topo.clusters >= 1 && topo.lanes >= 1 && topo.groups >= 1,
        "empty topology");
  check(is_pow2(topo.clusters) && is_pow2(topo.lanes) && is_pow2(topo.groups),
        "group/cluster/lane counts must be powers of two");
  if (kind == MachineKind::kAra2) {
    check(topo.clusters == 1 && topo.groups == 1,
          "Ara2 is a lumped (single-cluster) design");
    check(topo.lanes <= 16, "Ara2 does not scale past 16 lanes (paper SII)");
  } else {
    // The paper's building block is the 4-lane cluster (the most
    // energy-efficient Ara2 configuration); 2- and 8-lane clusters are
    // allowed for design-space exploration (bench/ablation_cluster_shape).
    check(topo.lanes >= 2 && topo.lanes <= 8,
          "AraXL clusters are 2-8 lanes (4 is the paper's building block)");
    check(topo.clusters >= 2, "AraXL needs at least two clusters per group");
    // A single physical ring tops out at the paper's 16-stop 64-lane
    // instance; larger machines must be expressed hierarchically.
    check(topo.clusters <= 16, "a cluster ring holds at most 16 stops");
    check(topo.groups <= 16, "the group-level ring holds at most 16 stops");
  }
  check(effective_vlen() <= kMaxVlenBits, "VLEN exceeds the RVV 1.0 maximum");
  check(effective_vlen() % (64ull * total_lanes()) == 0,
        "VLEN must give each lane whole 64-bit words");
  check(unit_queue_depth >= 1 && seq_queue_depth >= 1, "queues must be non-empty");
  check(div_cycles_per_elem >= 1, "divider occupancy must be at least 1");
}

std::string MachineConfig::name() const {
  return std::to_string(total_lanes()) +
         (kind == MachineKind::kAraXL ? "L-AraXL" : "L-Ara2");
}

MachineConfig MachineConfig::araxl(unsigned total_lanes) {
  check(total_lanes >= 8 && total_lanes % 4 == 0,
        "AraXL instances have at least two 4-lane clusters");
  const unsigned clusters = total_lanes / 4;
  if (clusters > 16) {
    // Past the 16-stop flat ring (64 lanes): hierarchical, 8-cluster
    // groups — the largest ring inside the 1.40 GHz timing corner.
    check(clusters % 8 == 0,
          "hierarchical AraXL lane counts must fill whole 8-cluster groups "
          "(use araxl_hier for other shapes)");
    return araxl_hier(clusters / 8, 8, 4);
  }
  MachineConfig cfg;
  cfg.kind = MachineKind::kAraXL;
  cfg.topo = Topology{clusters, 4};
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::araxl_shaped(unsigned clusters,
                                          unsigned lanes_per_cluster) {
  MachineConfig cfg;
  cfg.kind = MachineKind::kAraXL;
  cfg.topo = Topology{clusters, lanes_per_cluster};
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::araxl_hier(unsigned groups,
                                        unsigned clusters_per_group,
                                        unsigned lanes_per_cluster) {
  check(groups >= 1, "hierarchical AraXL needs at least one group");
  MachineConfig cfg;
  cfg.kind = MachineKind::kAraXL;
  cfg.topo = Topology{clusters_per_group, lanes_per_cluster, groups};
  cfg.validate();
  return cfg;
}

MachineConfig MachineConfig::ara2(unsigned lanes) {
  MachineConfig cfg;
  cfg.kind = MachineKind::kAra2;
  cfg.topo = Topology{1, lanes};
  cfg.validate();
  return cfg;
}

}  // namespace araxl
