#include "machine/timing.hpp"

#include <algorithm>

#include "cluster/sequencer.hpp"
#include "cluster/vlsu.hpp"
#include "common/bits.hpp"
#include "common/contracts.hpp"
#include "isa/disasm.hpp"
#include "obs/metrics.hpp"

namespace araxl {

bool mem_range(const VInstr& in, std::uint64_t vl, unsigned ew, std::uint64_t* lo,
               std::uint64_t* hi) {
  switch (in.op) {
    case Op::kVle:
    case Op::kVse:
    case Op::kVlse:
    case Op::kVsse: {
      if (vl == 0) {  // zero-element ops touch no memory at all
        *lo = in.addr;
        *hi = in.addr;
        return true;
      }
      if (in.op == Op::kVle || in.op == Op::kVse) {
        *lo = in.addr;
        *hi = in.addr + vl * ew;
        return true;
      }
      const std::int64_t span = in.stride * static_cast<std::int64_t>(vl - 1);
      const std::int64_t a = static_cast<std::int64_t>(in.addr);
      *lo = static_cast<std::uint64_t>(std::min(a, a + span));
      *hi = static_cast<std::uint64_t>(std::max(a, a + span)) + ew;
      return true;
    }
    default: return false;  // indexed: unknown footprint
  }
}

namespace {

/// Unit tick order within a cycle (tick_units walks units in enum order).
constexpr unsigned unit_order(Unit u) { return static_cast<unsigned>(u); }

}  // namespace

TimingEngine::TimingEngine(const MachineConfig& cfg, FunctionalEngine& fn,
                           InstrTrace* trace, const EngineInstruments* metrics)
    : cfg_(cfg), fn_(fn), trace_(trace), metrics_(metrics),
      ispec_(cfg.interconnect()),
      reqi_(ispec_), glsu_(ispec_), ring_(ispec_), lanes_(cfg), cva6_(cfg),
      watchdog_(cfg.watchdog_budget == 0 ? WakeupWatchdog::kDefaultBudget
                                         : cfg.watchdog_budget) {}

void EngineInstruments::bind(obs::MetricsRegistry* reg) {
  if (reg == registry) return;
  registry = reg;
  if (reg == nullptr) return;
  for (std::size_t u = 1; u < kNumUnits; ++u) {
    const std::string base =
        "engine.unit." + std::string(unit_name(static_cast<Unit>(u)));
    unit_busy[u] = reg->counter(base + ".busy_cycles");
    unit_stall[u] = reg->counter(base + ".stall_cycles");
    unit_idle[u] = reg->counter(base + ".idle_cycles");
  }
  for (std::size_t r = 0; r < kNumBatchRejects; ++r) {
    batch_reject[r] = reg->counter(
        "engine.batch.reject." +
        std::string(batch_reject_name(static_cast<BatchReject>(r))));
  }
  for (std::size_t r = 0; r < kNumStallReasons; ++r) {
    stall[r] = reg->counter(
        "engine.stall." +
        std::string(stall_reason_name(static_cast<StallReason>(r))));
  }
  occupancy = reg->histogram("engine.inflight_occupancy");
  runs = reg->counter("engine.runs");
  cycles = reg->counter("engine.cycles");
  wakeups = reg->counter("engine.wakeups");
  batched_iterations = reg->counter("engine.batched_iterations");
  warmup_projected = reg->counter("engine.batch.warmup_projected");
  batch_clamps = reg->counter("engine.batch.clamps");
}

void TimingEngine::metrics_account_units(Cycle t, Cycle span) {
  (void)t;
  if (metrics_ == nullptr || span == 0) return;
  for (std::size_t u = 1; u < kNumUnits; ++u) {
    const auto& q = unitq_[u];
    if (q.empty()) {
      acc_unit_idle_[u] += span;
      continue;
    }
    // Busy while the head is still producing elements; stalled when it
    // has finished producing but cannot retire yet (chain lag, reduction
    // phases, a blocked queue front).
    const Inflight& head = pool_.at(q.front());
    if (head.finished_producing()) {
      acc_unit_stall_[u] += span;
    } else {
      acc_unit_busy_[u] += span;
    }
  }
  const std::uint64_t occ = pool_.active();
  ++acc_occ_buckets_[obs::Histogram::bucket_of(occ)];
  ++acc_occ_count_;
  acc_occ_sum_ += occ;
  if (occ > acc_occ_max_) acc_occ_max_ = occ;
}

void TimingEngine::metrics_end_run() {
  if (metrics_ == nullptr) return;
  for (std::size_t u = 1; u < kNumUnits; ++u) {
    if (acc_unit_busy_[u] != 0) metrics_->unit_busy[u]->add(acc_unit_busy_[u]);
    if (acc_unit_stall_[u] != 0) {
      metrics_->unit_stall[u]->add(acc_unit_stall_[u]);
    }
    if (acc_unit_idle_[u] != 0) metrics_->unit_idle[u]->add(acc_unit_idle_[u]);
  }
  metrics_->occupancy->merge_counts(acc_occ_buckets_, acc_occ_count_,
                                    acc_occ_sum_, acc_occ_max_);
  metrics_->runs->inc();
  metrics_->cycles->add(stats_.cycles);
  metrics_->wakeups->add(stats_.wakeups_total);
  metrics_->batched_iterations->add(stats_.batched_iterations);
  metrics_->warmup_projected->add(stats_.warmup_projected);
  metrics_->batch_clamps->add(stats_.batch_clamps);
  // Stall metrics are folded from the finished RunStats instead of being
  // added per charged sub-span: the per-slot path in attribute_piece is the
  // hottest loop in the engine, and a registry test there erodes the
  // metrics-overhead budget as instrumented sites grow. Folding here also
  // covers the batched K× stall deltas, which never passed through
  // attribute_piece at all.
  for (std::size_t r = 0; r < kNumStallReasons; ++r) {
    metrics_->stall[r]->add(stats_.stall_cycles[r]);
  }
  // An engine can be driven through run() more than once (differential
  // tests); the accumulators are per-run, so clear them after folding.
  acc_unit_busy_ = {};
  acc_unit_stall_ = {};
  acc_unit_idle_ = {};
  acc_occ_buckets_ = {};
  acc_occ_count_ = acc_occ_sum_ = acc_occ_max_ = 0;
}

void TimingEngine::count_batch_reject(BatchReject r, Cycle t) {
  const auto idx = static_cast<std::size_t>(r);
  ++stats_.batch_rejects[idx];
  if (metrics_ != nullptr) metrics_->batch_reject[idx]->inc();
  if (trace_ != nullptr) trace_->mark(t, SimMarkerKind::kBatchReject, idx);
}

const Inflight* TimingEngine::find(const RegRef& ref) const {
  return ref.id == 0 ? nullptr : pool_.get(ref.slot, ref.id);
}

bool TimingEngine::full_dep_visible(Cycle t, const Dep& d,
                                    const Inflight& p) const {
  if (p.finished_at == kNeverCycle) return false;
  return t > p.finished_at || (t == p.finished_at && d.producer_ticks_first);
}

std::uint64_t TimingEngine::avail_elems(Cycle t, const Inflight& instr) const {
  std::uint64_t avail = instr.vl;
  for (const Dep& d : instr.deps) {
    const Inflight* p = pool_.get(d.slot, d.producer);
    if (p == nullptr) continue;  // retired: fully available
    std::uint64_t pa;
    if (d.full) {
      pa = full_dep_visible(t, d, *p) ? instr.vl : 0;
    } else {
      const std::uint64_t raw = p->hist.value_at_lag(t, d.lag);
      const std::int64_t adj = static_cast<std::int64_t>(raw) - d.offset;
      pa = adj < 0 ? 0 : static_cast<std::uint64_t>(adj);
    }
    avail = std::min(avail, pa);
  }
  return avail;
}

void TimingEngine::account(Unit u, const Inflight& instr, std::uint64_t adv) {
  stats_.unit_busy_elems[static_cast<std::size_t>(u)] += adv;
  if (u == Unit::kFpu) {
    stats_.fpu_result_elems += adv;
    // Busy byte-slots are counted at production time (the stall attributor
    // charges only the shortfall of each attributed span); widening ops
    // occupy destination-width slots, matching rate256's quota adjustment.
    stats_.fpu_busy_slots += adv * fpu_slot_width(instr);
  }
  stats_.flops += adv * instr.spec->flops_per_elem;
  watchdog_.note_progress();
}

Cycle TimingEngine::reduction_done_at(const Inflight& instr, Cycle finish) const {
  // Mirror of the advance_red_phases chain: inter-lane log-tree, ring
  // log-tree across clusters, SIMD-word reduce, scalar writeback.
  Cycle done = finish +
               static_cast<Cycle>(log2_ceil(cfg_.topo.lanes)) * cfg_.red_step_latency;
  done += ring_.reduction_tree_cycles();
  if (instr.ew < 8) {
    done += static_cast<Cycle>(log2_ceil(8 / instr.ew)) * cfg_.red_step_latency;
  }
  done += cfg_.writeback_latency;
  return done;
}

void TimingEngine::finish_producing(Cycle t, Inflight& instr) {
  instr.finished_at = t;
  if (instr.spec->is_reduction) {
    // Enter the inter-lane phase; advance_red_phases() walks the rest.
    instr.red_phase = RedPhase::kInterLane;
    instr.red_phase_end =
        t + static_cast<Cycle>(log2_ceil(cfg_.topo.lanes)) * cfg_.red_step_latency;
    instr.projected_done = reduction_done_at(instr, t);
    return;
  }
  instr.completed_at = t + lanes_.chain_lag(instr.unit);
}

void TimingEngine::advance_red_phases(Cycle t, Inflight& instr) {
  while (instr.red_phase != RedPhase::kDone && t >= instr.red_phase_end) {
    const Cycle base = instr.red_phase_end;
    switch (instr.red_phase) {
      case RedPhase::kInterLane:
        // Next: inter-cluster log-tree over the ring (paper §III-B.4).
        instr.red_phase = RedPhase::kInterCluster;
        instr.red_phase_end = base + ring_.reduction_tree_cycles();
        break;
      case RedPhase::kInterCluster: {
        const Cycle dur = instr.ew < 8
                              ? static_cast<Cycle>(log2_ceil(8 / instr.ew)) *
                                    cfg_.red_step_latency
                              : 0;
        instr.red_phase = RedPhase::kSimd;
        instr.red_phase_end = base + dur;
        break;
      }
      case RedPhase::kSimd:
        instr.red_phase = RedPhase::kWriteback;
        instr.red_phase_end = base + cfg_.writeback_latency;
        break;
      case RedPhase::kWriteback:
        instr.red_phase = RedPhase::kDone;
        instr.completed_at = base;
        // Tree combine steps perform total_lanes-1 additional adds.
        stats_.flops += cfg_.total_lanes() - 1;
        break;
      case RedPhase::kIntraLane:
      case RedPhase::kDone: return;
    }
  }
}

std::uint64_t TimingEngine::head_rate256(const Inflight& instr) const {
  std::uint64_t r256 = lanes_.rate256(instr.in.op, instr.ew);
  if (instr.unit == Unit::kSldu &&
      (ring_.long_slide(slide_offset(instr.in)) ||
       (instr.spec->is_gather && ring_.present()))) {
    // Long slides and gathers/compressions funnel through the 64-bit ring
    // links: one element per cluster per cycle.
    r256 = std::uint64_t{ispec_.topo.total_clusters()} * (8 / instr.ew) * 256;
  }
  if (instr.unit == Unit::kLoad || instr.unit == Unit::kStore) {
    // Element-granular strided/indexed beats from the per-cluster addrgens.
    r256 = std::uint64_t{ispec_.topo.total_clusters()} * 256;
  }
  return r256;
}

void TimingEngine::advance_arith(Cycle t, Inflight& instr) {
  if (t < instr.start_at) return;
  instr.rate_acc += head_rate256(instr);
  const std::uint64_t quota = instr.rate_acc >> 8;
  instr.rate_acc &= 0xFF;  // unused whole-element slots are lost, not banked
  if (quota == 0) return;
  const std::uint64_t avail = avail_elems(t, instr);
  if (avail <= instr.produced) return;
  const std::uint64_t adv =
      std::min({quota, avail - instr.produced, instr.vl - instr.produced});
  if (adv == 0) return;
  if (instr.produced == 0) instr.first_result_at = t;
  instr.produced += adv;
  instr.hist.record(t, instr.produced);
  if (instr.unit == Unit::kFpu) instr.tape.record(t, instr.produced);
  account(instr.unit, instr, adv);
  if (instr.finished_producing()) finish_producing(t, instr);
}

void TimingEngine::advance_load(Cycle t, Inflight& instr) {
  if (t < instr.start_at) return;
  if (elementwise_mem_op(instr.in.op)) {
    advance_arith(t, instr);  // element-granular beats
    return;
  }
  const std::uint64_t raw_total = instr.head_skew + instr.bytes_total;
  const std::uint64_t grant = glsu_.grant_bytes(raw_total - instr.bytes_done);
  if (grant == 0) return;
  instr.bytes_done += grant;
  const std::uint64_t useful =
      instr.bytes_done > instr.head_skew ? instr.bytes_done - instr.head_skew : 0;
  const std::uint64_t new_produced =
      std::min<std::uint64_t>(instr.vl, useful / instr.ew);
  if (new_produced > instr.produced) {
    if (instr.produced == 0) instr.first_result_at = t;
    account(instr.unit, instr, new_produced - instr.produced);
    instr.produced = new_produced;
    instr.hist.record(t, instr.produced);
    if (instr.finished_producing()) instr.finished_at = t;
  }
  if (instr.bytes_done >= raw_total && instr.finished_producing()) {
    instr.completed_at = t + lanes_.chain_lag(Unit::kLoad);
  }
}

void TimingEngine::advance_store(Cycle t, Inflight& instr) {
  if (t < instr.start_at) return;
  if (elementwise_mem_op(instr.in.op)) {
    advance_arith(t, instr);
    return;
  }
  const std::uint64_t avail = avail_elems(t, instr);
  const std::uint64_t raw_total = instr.head_skew + instr.bytes_total;
  const std::uint64_t sendable =
      std::min(raw_total, instr.head_skew + avail * instr.ew);
  if (sendable <= instr.bytes_done) return;
  const std::uint64_t grant = glsu_.grant_bytes(sendable - instr.bytes_done);
  instr.bytes_done += grant;
  const std::uint64_t useful =
      instr.bytes_done > instr.head_skew ? instr.bytes_done - instr.head_skew : 0;
  const std::uint64_t new_produced =
      std::min<std::uint64_t>(instr.vl, useful / instr.ew);
  if (new_produced > instr.produced) {
    if (instr.produced == 0) instr.first_result_at = t;
    account(instr.unit, instr, new_produced - instr.produced);
    instr.produced = new_produced;
    instr.hist.record(t, instr.produced);
    if (instr.finished_producing()) instr.finished_at = t;
  }
  if (instr.bytes_done >= raw_total) {
    instr.completed_at = t + lanes_.chain_lag(Unit::kStore);
  }
}

void TimingEngine::advance_head(Cycle t, Inflight& instr) {
  if (instr.advanced_until >= t) return;  // fast-forwarded past this cycle
  instr.advanced_until = t;
  switch (instr.unit) {
    case Unit::kLoad: advance_load(t, instr); break;
    case Unit::kStore: advance_store(t, instr); break;
    default: advance_arith(t, instr); break;
  }
}

void TimingEngine::tick_unit(Cycle t, Unit u) {
  auto& q = unitq_[static_cast<std::size_t>(u)];
  bool head_found = false;
  for (const std::uint32_t slot : q) {
    Inflight& instr = pool_.at(slot);
    if (instr.spec->is_reduction && instr.finished_producing() &&
        instr.red_phase != RedPhase::kDone) {
      advance_red_phases(t, instr);
    }
    // Head = first instruction still producing *as of cycle t*. A
    // fast-forwarded instruction may already hold produced == vl with a
    // finished_at in the future; its successor must not advance before
    // that cycle. Strictly before: in the finishing cycle itself the
    // instruction still occupies the head slot (the oracle's scan reads
    // finished_producing() before the advance that completes it).
    const bool done_by_t =
        instr.finished_at != kNeverCycle && instr.finished_at < t;
    if (!head_found && !done_by_t) {
      head_found = true;
      advance_head(t, instr);
    }
  }
}

void TimingEngine::tick_units(Cycle t) {
  for (std::size_t u = 1; u < kNumUnits; ++u) {
    tick_unit(t, static_cast<Unit>(u));
  }
}

void TimingEngine::release_claims(const Inflight& instr) {
  for (unsigned r = instr.write_base; r < instr.write_base + instr.write_count;
       ++r) {
    if (regs_[r].writer.id == instr.id) regs_[r].writer = RegRef{};
  }
  for (unsigned g = 0; g < instr.read_groups; ++g) {
    for (unsigned r = instr.read_base[g]; r < instr.read_base[g] + instr.read_count[g];
         ++r) {
      auto& readers = regs_[r].readers;
      readers.erase(std::remove_if(readers.begin(), readers.end(),
                                   [&](const RegRef& e) { return e.id == instr.id; }),
                    readers.end());
    }
  }
}

void TimingEngine::retire(Cycle t) {
  for (auto& q : unitq_) {
    while (!q.empty()) {
      Inflight& instr = pool_.at(q.front());
      debug_check(instr.id != 0, "queued instruction missing from pool");
      if (instr.completed_at > t) break;
      if (instr.unit == Unit::kFpu) {
        // Production at the retire cycle itself has not been attributed yet
        // (attribute_range runs after step_cycle); with a zero FPU chain lag
        // the instruction can produce and retire in the same cycle, taking
        // its tape with it. Park those byte-slots so the next attribution
        // keeps the partition total. (Unreachable with default latencies.)
        const std::uint64_t at_t = instr.tape.value_at(t);
        const std::uint64_t before = t == 0 ? 0 : instr.tape.value_at(t - 1);
        retired_busy_pending_ += fpu_slot_width(instr) * (at_t - before);
      }
      if (trace_ != nullptr) {
        TraceRecord rec;
        rec.id = instr.id;
        rec.prog_index = instr.prog_index;
        rec.text = disasm(instr.in);
        rec.unit = instr.unit;
        rec.vl = instr.vl;
        rec.issued = instr.issued_at;
        rec.dispatched = instr.dispatched_at;
        rec.first_result =
            instr.first_result_at == kNeverCycle ? 0 : instr.first_result_at;
        rec.completed = instr.completed_at;
        std::uint64_t best = 0;
        for (std::size_t r = 0; r < kNumStallReasons; ++r) {
          if (instr.stall_acc[r] > best) {
            best = instr.stall_acc[r];
            rec.stall_reason = static_cast<std::uint8_t>(r);
          }
        }
        rec.stall_slots = best;
        trace_->add(rec);
      }
      release_claims(instr);
      pool_.release(q.front());
      q.pop_front();
      watchdog_.note_progress();
    }
  }
}

bool TimingEngine::mem_conflict(const Pending& p) const {
  const OpSpec& spec = op_spec(p.in.op);
  if (!spec.reads_mem && !spec.writes_mem) return false;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  const bool bounded = mem_range(p.in, p.vl, p.ew, &lo, &hi);
  // A load must not race an in-flight store over the same bytes (and vice
  // versa). Same-kind ops are ordered by their in-order unit queue.
  const Unit other = spec.reads_mem ? Unit::kStore : Unit::kLoad;
  for (const std::uint32_t slot : unitq_[static_cast<std::size_t>(other)]) {
    const Inflight& o = pool_.at(slot);
    std::uint64_t olo = 0;
    std::uint64_t ohi = 0;
    if (!bounded || !mem_range(o.in, o.vl, o.ew, &olo, &ohi)) return true;
    if (lo < ohi && olo < hi) return true;
  }
  return false;
}

void TimingEngine::tick_dispatch(Cycle t) {
  if (seq_.empty() || seq_.front().arrive_at > t) return;
  const Pending& p = seq_.front();
  const OpSpec& spec = op_spec(p.in.op);
  const Unit unit = spec.unit;
  auto& q = unitq_[static_cast<std::size_t>(unit)];
  if (q.size() >= cfg_.unit_queue_depth) return;
  if (mem_conflict(p)) return;

  const auto [wb, wc] = write_group(p.in, p.group_regs);
  const ReadGroups rgs = read_groups(p.in, p.group_regs);

  // WAW/WAR hazards: cross-unit conflicts stall dispatch; same-unit
  // conflicts are safe because units execute strictly in order.
  for (unsigned r = wb; r < wb + wc; ++r) {
    if (const Inflight* w = find(regs_[r].writer); w != nullptr && w->unit != unit) {
      return;
    }
    for (const RegRef& rid : regs_[r].readers) {
      if (const Inflight* rd = find(rid); rd != nullptr && rd->unit != unit) return;
    }
  }

  std::uint32_t slot = 0;
  Inflight& instr = pool_.alloc(next_id_++, &slot);
  instr.in = p.in;
  instr.prog_index = p.prog_index;
  instr.spec = &spec;
  instr.vl = p.vl;
  instr.ew = p.ew;
  instr.unit = unit;
  instr.issued_at = p.issued_at;
  instr.dispatched_at = t;
  instr.advanced_until = t;  // first advance opportunity is t + 1

  // RAW chaining dependencies on in-flight producers of the source groups.
  const std::int64_t offset = spec.is_slide ? slide_offset(p.in) : 0;
  for (unsigned g = 0; g < rgs.n; ++g) {
    const bool is_vd_source = spec.reads_vd && rgs.base[g] == p.in.vd;
    for (unsigned r = rgs.base[g]; r < rgs.base[g] + rgs.count[g]; ++r) {
      const Inflight* w = find(regs_[r].writer);
      if (w == nullptr) continue;
      Dep d;
      d.producer = w->id;
      d.slot = regs_[r].writer.slot;
      d.lag = lanes_.chain_lag(w->unit);
      d.offset = (spec.is_slide && !is_vd_source) ? offset : 0;
      // Reduction seeds need the producer finished; gathers read arbitrary
      // source elements, so they cannot chain either.
      d.full = (spec.is_reduction && rgs.base[g] == p.in.vs1 && rgs.count[g] == 1) ||
               spec.is_gather;
      d.producer_ticks_first = unit_order(w->unit) < unit_order(unit);
      const bool dup =
          std::any_of(instr.deps.begin(), instr.deps.end(),
                      [&](const Dep& e) { return e.producer == d.producer; });
      if (!dup) instr.deps.push_back(d);
    }
  }

  // Claim registers.
  instr.write_base = wb;
  instr.write_count = wc;
  for (unsigned r = wb; r < wb + wc; ++r) regs_[r].writer = RegRef{slot, instr.id};
  instr.read_groups = rgs.n;
  for (unsigned g = 0; g < rgs.n; ++g) {
    instr.read_base[g] = rgs.base[g];
    instr.read_count[g] = rgs.count[g];
    for (unsigned r = rgs.base[g]; r < rgs.base[g] + rgs.count[g]; ++r) {
      regs_[r].readers.push_back(RegRef{slot, instr.id});
    }
  }

  // Start latency and memory setup.
  switch (unit) {
    case Unit::kLoad:
      instr.start_at = t + glsu_.load_latency();
      instr.bytes_total = p.vl * p.ew;
      if (!elementwise_mem_op(p.in.op)) instr.head_skew = glsu_.head_skew(p.in.addr);
      stats_.mem_read_bytes += instr.bytes_total;
      break;
    case Unit::kStore:
      instr.start_at = t + glsu_.store_latency();
      instr.bytes_total = p.vl * p.ew;
      if (!elementwise_mem_op(p.in.op)) instr.head_skew = glsu_.head_skew(p.in.addr);
      stats_.mem_write_bytes += instr.bytes_total;
      break;
    case Unit::kSldu:
      instr.start_at =
          t + lanes_.start_latency() + ring_.slide_start_penalty(slide_offset(p.in));
      break;
    default:
      instr.start_at = t + lanes_.start_latency();
      break;
  }

  q.push_back(slot);
  seq_.pop_front();
  dispatched_this_cycle_ = true;
  watchdog_.note_progress();
}

bool TimingEngine::reg_pending_write(unsigned reg) const {
  if (find(regs_[reg].writer) != nullptr) return true;
  for (const Pending& p : seq_) {
    const auto [wb, wc] = write_group(p.in, p.group_regs);
    if (reg >= wb && reg < wb + wc) return true;
  }
  return false;
}

void TimingEngine::tick_cva6(Cycle t) {
  if (t < cva6_free_ || pc_ >= prog_->ops.size()) return;
  const ProgOp& op = prog_->ops[pc_];

  if (const auto* s = std::get_if<ScalarOp>(&op)) {
    cva6_free_ = t + cva6_.scalar_cost(*s);
    ++stats_.scalar_ops;
    ++pc_;
    watchdog_.note_progress();
    return;
  }

  const VInstr& in = std::get<VInstr>(op);
  if (in.op == Op::kVsetvli) {
    fn_.exec(in);
    cva6_free_ = t + reqi_.ack_latency() + 1;
    ++stats_.vinstrs;
    ++pc_;
    watchdog_.note_progress();
    return;
  }
  const OpSpec& spec = op_spec(in.op);
  if (spec.returns_scalar) {
    // vfmv.f.s / vcpop.m / vfirst.m: CVA6 blocks until the producing vector
    // instruction has fully retired, then the scalar crosses the REQI
    // response path.
    if (reg_pending_write(in.vs2)) {
      ++stats_.scalar_wait_cycles;
      cva6_stall_ = Cva6Stall::kScalarWait;
      return;
    }
    fn_.exec(in);
    cva6_free_ = t + reqi_.ack_latency();
    ++stats_.vinstrs;
    ++pc_;
    watchdog_.note_progress();
    return;
  }

  if (seq_.size() >= cfg_.seq_queue_depth) {
    ++stats_.issue_stall_cycles;
    cva6_stall_ = Cva6Stall::kSeqFull;
    return;
  }

  Pending p;
  p.in = in;
  p.prog_index = pc_;
  p.vl = in.op == Op::kVfmvSF ? std::min<std::uint64_t>(1, fn_.vl()) : fn_.vl();
  p.ew = sew_bytes(fn_.vtype().sew);
  p.group_regs = fn_.vtype().lmul.group_regs();
  p.issued_at = t;
  p.arrive_at = t + reqi_.fwd_latency();
  fn_.exec(in);  // architectural effects in program order
  ++stats_.vinstrs;
  ++pc_;
  watchdog_.note_progress();
  cva6_free_ = t + reqi_.ack_latency();
  if (p.vl == 0) return;  // nothing to execute
  seq_.push_back(p);
}

// ---------------------------------------------------------------------------
// Cycle-attribution stall taxonomy.
//
// Every (cycle × lane-FPU byte-slot) of a run is attributed to exactly one
// StallReason, or counted in fpu_busy_slots at production time (account()),
// so the two always partition the slot universe:
//
//   sum(stall_cycles[]) + fpu_busy_slots == cycles * total_lanes * 8
//
// Both kernels call the same attribute_range: the oracle once per executed
// cycle, the event engine once per wakeup cycle plus once per fast-forward
// window, and the loop batcher multiplies the recorded per-iteration deltas
// by exactly K. Bit-identity between the three holds because every input the
// classifier reads is either constant across a fast-forward window (queue
// membership, seq_, pc_, cva6_stall_ — no dispatch/retire/issue can happen
// inside one by construction) or monotone-stable (finished_at /
// first_result_at are written once, so "set and <= u" evaluates the same on
// the oracle's online state and the event engine's fast-forwarded state),
// and per-cycle FPU production is replayed exactly from the instruction's
// ProdTape (an eviction-free mirror of its LaggedCounter history).

unsigned TimingEngine::fpu_slot_width(const Inflight& instr) {
  unsigned ew = instr.ew;
  if (instr.spec->widens) ew = std::min(8u, ew * 2);
  return ew;
}

Cycle TimingEngine::mem_first_beat_min() const {
  Cycle m = kNeverCycle;
  for (const Unit u : {Unit::kLoad, Unit::kStore}) {
    for (const std::uint32_t slot : unitq_[static_cast<std::size_t>(u)]) {
      const Inflight& instr = pool_.at(slot);
      if (instr.first_result_at < m) m = instr.first_result_at;
    }
  }
  return m;
}

StallReason TimingEngine::classify_dep_limited(const Inflight& acting) const {
  // Fixed-priority blame (mem > reduction/slide > any RAW) — an argmin over
  // per-producer binding-ness would be tie-break-sensitive across the two
  // kernels; a fixed priority is deterministic and matches how the paper
  // discusses utilization losses (memory first, ring latency second).
  bool red_slide = false;
  bool raw = false;
  for (const Dep& d : acting.deps) {
    const Inflight* p = pool_.get(d.slot, d.producer);
    if (p == nullptr) continue;  // retired producers no longer limit anything
    if (p->unit == Unit::kLoad) return StallReason::kMemLatency;
    if (p->unit == Unit::kSldu || p->spec->is_reduction) red_slide = true;
    else raw = true;
  }
  if (red_slide) return StallReason::kReductionSlideLatency;
  if (raw) return StallReason::kRawDependency;
  // No live producer: the unit's own throughput (divider rate, fractional
  // rate remainders) is the limiter.
  return StallReason::kStructuralUnit;
}

StallReason TimingEngine::classify_no_fpu(Cycle u) const {
  (void)u;
  const auto& fq = unitq_[static_cast<std::size_t>(Unit::kFpu)];
  // (a) A finished reduction holding the FPU queue front is in its
  // inter-lane/ring/writeback phases — the ring latency gates progress.
  if (!fq.empty() && pool_.at(fq.front()).spec->is_reduction) {
    return StallReason::kReductionSlideLatency;
  }
  // (b) FPU work exists but has not reached a unit queue: frontend pressure.
  for (const Pending& p : seq_) {
    if (op_spec(p.in.op).unit == Unit::kFpu) return StallReason::kIssuePressure;
  }
  // (c) CVA6 blocked on a scalar-returning op: blame the producer's kind.
  if (cva6_stall_ == Cva6Stall::kScalarWait && pc_ < prog_->ops.size()) {
    if (const auto* in = std::get_if<VInstr>(&prog_->ops[pc_])) {
      const unsigned reg = in->vs2;
      for (auto it = seq_.rbegin(); it != seq_.rend(); ++it) {
        const auto [wb, wc] = write_group(it->in, it->group_regs);
        if (reg >= wb && reg < wb + wc) {
          return op_spec(it->in.op).is_reduction
                     ? StallReason::kReductionSlideLatency
                     : StallReason::kIssuePressure;
        }
      }
      if (const Inflight* w = find(regs_[reg].writer); w != nullptr) {
        return w->spec->is_reduction ? StallReason::kReductionSlideLatency
                                     : StallReason::kIssuePressure;
      }
    }
    return StallReason::kIssuePressure;
  }
  // (d) handled by the caller (mem first-beat split); (e)–(g):
  if (!unitq_[static_cast<std::size_t>(Unit::kSldu)].empty() ||
      !unitq_[static_cast<std::size_t>(Unit::kMasku)].empty()) {
    return StallReason::kReductionSlideLatency;
  }
  if (!unitq_[static_cast<std::size_t>(Unit::kAlu)].empty()) {
    return StallReason::kStructuralUnit;
  }
  if (pc_ < prog_->ops.size() || !seq_.empty()) {
    return StallReason::kIssuePressure;
  }
  return StallReason::kDrainTail;
}

void TimingEngine::attribute_piece(Cycle x, Cycle y, Inflight* acting) {
  const std::uint64_t lane_slots = stats_.total_lanes * 8;
  auto charge = [&](StallReason r, Cycle cx, Cycle cy,
                    std::uint64_t produced_slots, Inflight* blame) {
    if (cy < cx) return;
    const std::uint64_t gross = (cy - cx + 1) * lane_slots;
    debug_check(produced_slots <= gross, "production exceeds slot universe");
    std::uint64_t slots = gross - produced_slots;
    // Fold in production parked by a same-cycle retire (zero chain lag only;
    // the retired instruction produced alone in that cycle, so the first
    // charged sub-span always absorbs it fully).
    const std::uint64_t absorb = std::min(slots, retired_busy_pending_);
    slots -= absorb;
    retired_busy_pending_ -= absorb;
    if (slots == 0) return;
    const auto idx = static_cast<std::size_t>(r);
    stats_.stall_cycles[idx] += slots;
    if (blame != nullptr) blame->stall_acc[idx] += slots;
  };

  if (acting == nullptr) {
    // No FPU instruction can produce in [x, y]; the reason is constant over
    // the piece except for the mem latency/bandwidth split at the first
    // in-flight beat.
    const auto& lq = unitq_[static_cast<std::size_t>(Unit::kLoad)];
    const auto& sq = unitq_[static_cast<std::size_t>(Unit::kStore)];
    const auto& fq = unitq_[static_cast<std::size_t>(Unit::kFpu)];
    const bool red_front =
        !fq.empty() && pool_.at(fq.front()).spec->is_reduction;
    const bool seq_fpu = [&] {
      for (const Pending& p : seq_) {
        if (op_spec(p.in.op).unit == Unit::kFpu) return true;
      }
      return false;
    }();
    if (!red_front && !seq_fpu && cva6_stall_ != Cva6Stall::kScalarWait &&
        (!lq.empty() || !sq.empty())) {
      // (d) memory-bound: waiting on the first in-flight beat is latency,
      // everything past it is bandwidth.
      Inflight* blame = !lq.empty() ? &pool_.at(lq.front()) : &pool_.at(sq.front());
      const Cycle m = mem_first_beat_min();
      if (m == kNeverCycle || m > y) {
        charge(StallReason::kMemLatency, x, y, 0, blame);
      } else if (m <= x) {
        charge(StallReason::kMemBandwidth, x, y, 0, blame);
      } else {
        charge(StallReason::kMemLatency, x, m - 1, 0, blame);
        charge(StallReason::kMemBandwidth, m, y, 0, blame);
      }
      return;
    }
    Inflight* blame = nullptr;
    if (red_front) {
      blame = &pool_.at(fq.front());
    } else if (!red_front && !seq_fpu &&
               cva6_stall_ != Cva6Stall::kScalarWait) {
      const auto& slq = unitq_[static_cast<std::size_t>(Unit::kSldu)];
      const auto& mq = unitq_[static_cast<std::size_t>(Unit::kMasku)];
      const auto& aq = unitq_[static_cast<std::size_t>(Unit::kAlu)];
      if (!slq.empty()) blame = &pool_.at(slq.front());
      else if (!mq.empty()) blame = &pool_.at(mq.front());
      else if (!aq.empty()) blame = &pool_.at(aq.front());
    }
    charge(classify_no_fpu(x), x, y, 0, blame);
    return;
  }

  Inflight& in = *acting;
  const unsigned sw = fpu_slot_width(in);
  // Production in [p, q] from the eviction-free tape (byte-slots).
  auto prod = [&](Cycle p, Cycle q) {
    const std::uint64_t hi = in.tape.value_at(q);
    const std::uint64_t lo = p == 0 ? 0 : in.tape.value_at(p - 1);
    return static_cast<std::uint64_t>(sw) * (hi - lo);
  };
  // (1) fixed unit start-up latency before the first possible result.
  if (in.start_at > x) {
    const Cycle e = std::min(y, in.start_at - 1);
    charge(StallReason::kStructuralUnit, x, e, 0, &in);
    if (e == y) return;
  }
  const Cycle s = std::max(x, in.start_at);
  // (2) producing span: shortfall goes to the fixed-priority dep blame.
  const StallReason r = classify_dep_limited(in);
  if (r == StallReason::kMemLatency) {
    // Split at the earliest first beat over the live load producers: before
    // it the dep cap is provably zero (latency); after it the producer's
    // byte rate is the limiter (bandwidth).
    Cycle dep_fr = kNeverCycle;
    for (const Dep& d : in.deps) {
      const Inflight* p = pool_.get(d.slot, d.producer);
      if (p != nullptr && p->unit == Unit::kLoad &&
          p->first_result_at < dep_fr) {
        dep_fr = p->first_result_at;
      }
    }
    if (dep_fr == kNeverCycle || dep_fr > y) {
      charge(StallReason::kMemLatency, s, y, prod(s, y), &in);
    } else if (dep_fr <= s) {
      charge(StallReason::kMemBandwidth, s, y, prod(s, y), &in);
    } else {
      charge(StallReason::kMemLatency, s, dep_fr - 1, prod(s, dep_fr - 1), &in);
      charge(StallReason::kMemBandwidth, dep_fr, y, prod(dep_fr, y), &in);
    }
    return;
  }
  charge(r, s, y, prod(s, y), &in);
}

void TimingEngine::attribute_range(Cycle a, Cycle b) {
  if (b < a) return;
  auto& fq = unitq_[static_cast<std::size_t>(Unit::kFpu)];
  Cycle u = a;
  while (u <= b) {
    // Acting head at u: first FPU-queue instruction not done producing
    // before u (tick_unit's head rule, evaluated on monotone-stable state).
    Inflight* acting = nullptr;
    Cycle end = b;
    for (const std::uint32_t slot : fq) {
      Inflight& instr = pool_.at(slot);
      if (instr.finished_at != kNeverCycle && instr.finished_at < u) continue;
      acting = &instr;
      if (instr.finished_at != kNeverCycle && instr.finished_at < end) {
        end = instr.finished_at;  // successor takes over at finished_at + 1
      }
      break;
    }
    attribute_piece(u, end, acting);
    u = end + 1;
  }
  for (const std::uint32_t slot : fq) pool_.at(slot).tape.prune(b);
  debug_check(retired_busy_pending_ == 0,
              "retired FPU production not absorbed by attribution");
}

bool TimingEngine::drained() const {
  return pc_ >= prog_->ops.size() && seq_.empty() && pool_.active() == 0;
}

void TimingEngine::step_cycle(Cycle t) {
  tick_units(t);
  retire(t);
  dispatched_this_cycle_ = false;
  cva6_stall_ = Cva6Stall::kNone;
  tick_dispatch(t);
  tick_cva6(t);
}

void TimingEngine::fail_deadlock(Cycle t) const {
  // Typed as DeadlockError so the driver classifies a tripped liveness
  // watchdog as a timeout-kind job failure, not a simulation bug. The
  // diagnostic is simulation-state only (cycles, ids) — deterministic, so
  // it is safe to embed in reports.
  std::string diag = "timing engine deadlock at pc " + std::to_string(pc_) +
                     ", cycle " + std::to_string(t);
  for (const auto& q : unitq_) {
    for (const std::uint32_t slot : q) {
      const Inflight& instr = pool_.at(slot);
      diag += "; #" + std::to_string(instr.id) + " " + disasm(instr.in) +
              " produced " + std::to_string(instr.produced) + "/" +
              std::to_string(instr.vl);
    }
  }
  throw DeadlockError(diag);
}

void TimingEngine::reset_run(const Program& prog) {
  prog_ = &prog;
  pc_ = 0;
  cva6_free_ = 0;
  stats_ = RunStats{};
  stats_.total_lanes = cfg_.total_lanes();
  next_id_ = 1;
  pool_.clear();
  seq_.clear();
  for (auto& q : unitq_) q.clear();
  for (auto& r : regs_) {
    r.writer = RegRef{};
    r.readers.clear();
  }
  dispatched_this_cycle_ = false;
  cva6_stall_ = Cva6Stall::kNone;
  retired_busy_pending_ = 0;
  watchdog_.reset();
  last_progress_events_ = 0;
  last_progress_cycle_ = 0;
  op_keys_.clear();
  loop_regions_.clear();
  loop_barriers_.clear();
  loop_last_engageable_.clear();
  loop_region_idx_ = 0;
  last_ckpt_pc_ = static_cast<std::size_t>(-1);
  ckpt_.valid = false;
}

RunStats TimingEngine::run(const Program& prog, const RunControl* control) {
  control_ = (control != nullptr && control->enabled()) ? control : nullptr;
  return cfg_.timing_mode == TimingMode::kCycleStepped ? run_cycle_stepped(prog)
                                                       : run_event_driven(prog);
}

RunStats TimingEngine::run_cycle_stepped(const Program& prog) {
  reset_run(prog);
  Cycle t = 0;
  while (!drained()) {
    step_cycle(t);
    attribute_range(t, t);
    if (metrics_ != nullptr) metrics_account_units(t, 1);
    if ((t & 0xFFF) == 0) {
      if (control_ != nullptr) control_->check_now();
      if (watchdog_.progress_total() != last_progress_events_) {
        last_progress_events_ = watchdog_.progress_total();
        last_progress_cycle_ = t;
      } else if (t - last_progress_cycle_ > 500000) {
        fail_deadlock(t);
      }
    }
    ++t;
  }
  stats_.cycles = t;
  stats_.wakeups_total = t;  // the oracle evaluates every cycle
  {
    std::uint64_t slots = stats_.fpu_busy_slots;
    for (std::size_t r = 0; r < kNumStallReasons; ++r) slots += stats_.stall_cycles[r];
    debug_check(slots == stats_.cycles * stats_.total_lanes * 8,
                "stall taxonomy does not partition the slot universe");
  }
  metrics_end_run();
  return stats_;
}

}  // namespace araxl
